// Command statemachine renders the state machine of a type, either as a
// textual transition table or as Graphviz DOT. It regenerates Figure 3 of
// the paper:
//
//	statemachine tnn:5,2          # the state machine in Figure 3, as text
//	statemachine -dot tnn:5,2     # the same as DOT (render with graphviz)
//	statemachine -json t.json     # a hand-written JSON type
//	statemachine -batch types.txt -analyze   # many types, one engine run
//
// With -export, the type itself is written as JSON (round-trippable with
// rcnum -json). With -analyze, each type's hierarchy summary (computed on
// the engine, honoring -parallel/-timeout/-progress) is appended.
//
// -batch reads additional type descriptors from a file ("-" for stdin),
// one per line (blank lines and #-comments skipped), and — combined with
// -analyze — analyzes every type in one flat engine pool run, so the
// level checks of all types interleave across workers and shared
// sub-decisions collapse in the cache, instead of each type serializing
// behind the previous one.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/cli"
	"repro/internal/registry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "statemachine:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("statemachine", flag.ContinueOnError)
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of text")
	export := fs.Bool("export", false, "emit the type as JSON")
	jsonFile := fs.String("json", "", "load the type from a JSON specification file")
	list := fs.Bool("list", false, "list registered type descriptors")
	analyze := fs.Bool("analyze", false, "append the type's hierarchy summary")
	batch := fs.String("batch", "", "read type descriptors from this file, one per line (\"-\" = stdin); with -analyze, all types run in one engine pass")
	ef := cli.AddEngineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Print(registry.Help())
		return nil
	}

	eng, cleanup, err := ef.Engine()
	if err != nil {
		return err
	}
	defer cleanup()

	var types []*repro.Type
	if *jsonFile != "" {
		data, err := os.ReadFile(*jsonFile)
		if err != nil {
			return err
		}
		var ft repro.Type
		if err := json.Unmarshal(data, &ft); err != nil {
			return fmt.Errorf("parse %s: %w", *jsonFile, err)
		}
		types = append(types, &ft)
	}
	descs := fs.Args()
	if *batch != "" {
		batchDescs, err := readBatchDescriptors(*batch)
		if err != nil {
			return err
		}
		descs = append(descs, batchDescs...)
	}
	for _, desc := range descs {
		ft, err := eng.Resolve(desc)
		if err != nil {
			return err
		}
		types = append(types, ft)
	}
	if len(types) == 0 {
		return fmt.Errorf("no types given (try: statemachine -list)")
	}

	// One flat pool run for every type's level checks: small types do not
	// serialize behind large ones, and duplicate descriptors collapse in
	// the cache.
	var analyses []*repro.Analysis
	if *analyze {
		var err error
		analyses, err = eng.AnalyzeAll(types)
		if err != nil {
			return err
		}
	}

	for i, ft := range types {
		switch {
		case *export:
			data, err := json.MarshalIndent(ft, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(data))
		case *dot:
			fmt.Print(ft.Dot())
		default:
			fmt.Print(ft.TransitionTable())
		}
		if *analyze {
			fmt.Println(analyses[i].Summary())
		}
	}
	ef.Summary(eng.Cache())
	return nil
}

// readBatchDescriptors loads a -batch file: one type descriptor per
// line, with blank lines and #-comments skipped.
func readBatchDescriptors(path string) ([]string, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("-batch: %w", err)
		}
		defer f.Close()
		r = f
	}
	var out []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("-batch: %w", err)
	}
	return out, nil
}
