// Command statemachine renders the state machine of a type, either as a
// textual transition table or as Graphviz DOT. It regenerates Figure 3 of
// the paper:
//
//	statemachine tnn:5,2          # the state machine in Figure 3, as text
//	statemachine -dot tnn:5,2     # the same as DOT (render with graphviz)
//	statemachine -json t.json     # a hand-written JSON type
//
// With -export, the type itself is written as JSON (round-trippable with
// rcnum -json). With -analyze, each type's hierarchy summary (computed on
// the engine, honoring -parallel/-timeout/-progress) is appended.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/cli"
	"repro/internal/registry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "statemachine:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("statemachine", flag.ContinueOnError)
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of text")
	export := fs.Bool("export", false, "emit the type as JSON")
	jsonFile := fs.String("json", "", "load the type from a JSON specification file")
	list := fs.Bool("list", false, "list registered type descriptors")
	analyze := fs.Bool("analyze", false, "append the type's hierarchy summary")
	ef := cli.AddEngineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Print(registry.Help())
		return nil
	}

	eng, cleanup, err := ef.Engine()
	if err != nil {
		return err
	}
	defer cleanup()

	var types []*repro.Type
	if *jsonFile != "" {
		data, err := os.ReadFile(*jsonFile)
		if err != nil {
			return err
		}
		var ft repro.Type
		if err := json.Unmarshal(data, &ft); err != nil {
			return fmt.Errorf("parse %s: %w", *jsonFile, err)
		}
		types = append(types, &ft)
	}
	for _, desc := range fs.Args() {
		ft, err := eng.Resolve(desc)
		if err != nil {
			return err
		}
		types = append(types, ft)
	}
	if len(types) == 0 {
		return fmt.Errorf("no types given (try: statemachine -list)")
	}

	for _, ft := range types {
		switch {
		case *export:
			data, err := json.MarshalIndent(ft, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(data))
		case *dot:
			fmt.Print(ft.Dot())
		default:
			fmt.Print(ft.TransitionTable())
		}
		if *analyze {
			a, err := eng.Analyze(ft)
			if err != nil {
				return err
			}
			fmt.Println(a.Summary())
		}
	}
	ef.Summary(eng.Cache())
	return nil
}
