// Command statemachine renders the state machine of a type, either as a
// textual transition table or as Graphviz DOT. It regenerates Figure 3 of
// the paper:
//
//	statemachine tnn:5,2          # the state machine in Figure 3, as text
//	statemachine -dot tnn:5,2     # the same as DOT (render with graphviz)
//	statemachine -json t.json     # a hand-written JSON type
//	statemachine -batch types.txt -analyze   # many types, one engine run
//	statemachine -check reqs.json            # one model-check batch
//
// With -export, the type itself is written as JSON (round-trippable with
// rcnum -json). With -analyze, each type's hierarchy summary (computed on
// the engine, honoring -parallel/-timeout/-progress) is appended.
//
// -batch reads additional type descriptors from a file ("-" for stdin),
// one per line (blank lines and #-comments skipped), and — combined with
// -analyze — analyzes every type in one flat engine pool run, so the
// level checks of all types interleave across workers and shared
// sub-decisions collapse in the cache, instead of each type serializing
// behind the previous one.
//
// -check reads a model-check batch as JSON — the same shape as the
// reprod service's POST /v1/check body: {"protocol":"cas-rec:2",
// "requests":[{"inputs":[0,1],"crashQuota":[1,1]}]} — and runs it as one
// Engine.CheckBatch: requests with the same inputs walk one shared
// exploration graph, per-item errors stay per-item, and the JSON result
// (per-request outcomes plus graph-reuse counters) lands on stdout.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/cli"
	"repro/internal/registry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "statemachine:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("statemachine", flag.ContinueOnError)
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of text")
	export := fs.Bool("export", false, "emit the type as JSON")
	jsonFile := fs.String("json", "", "load the type from a JSON specification file")
	list := fs.Bool("list", false, "list registered type descriptors")
	analyze := fs.Bool("analyze", false, "append the type's hierarchy summary")
	batch := fs.String("batch", "", "read type descriptors from this file, one per line (\"-\" = stdin); with -analyze, all types run in one engine pass")
	check := fs.String("check", "", "read a model-check batch (JSON: {\"protocol\":...,\"requests\":[...]}) from this file (\"-\" = stdin) and run one Engine.CheckBatch")
	ef := cli.AddEngineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Print(registry.Help())
		return nil
	}

	eng, cleanup, err := ef.Engine()
	if err != nil {
		return err
	}
	defer cleanup()

	if *check != "" {
		if err := runCheckBatch(eng, *check); err != nil {
			return err
		}
		ef.Summary(eng.Cache())
		return nil
	}

	var types []*repro.Type
	if *jsonFile != "" {
		data, err := os.ReadFile(*jsonFile)
		if err != nil {
			return err
		}
		var ft repro.Type
		if err := json.Unmarshal(data, &ft); err != nil {
			return fmt.Errorf("parse %s: %w", *jsonFile, err)
		}
		types = append(types, &ft)
	}
	descs := fs.Args()
	if *batch != "" {
		batchDescs, err := readBatchDescriptors(*batch)
		if err != nil {
			return err
		}
		descs = append(descs, batchDescs...)
	}
	for _, desc := range descs {
		ft, err := eng.Resolve(desc)
		if err != nil {
			return err
		}
		types = append(types, ft)
	}
	if len(types) == 0 {
		return fmt.Errorf("no types given (try: statemachine -list)")
	}

	// One flat pool run for every type's level checks: small types do not
	// serialize behind large ones, and duplicate descriptors collapse in
	// the cache.
	var analyses []*repro.Analysis
	if *analyze {
		var err error
		analyses, err = eng.AnalyzeAll(types)
		if err != nil {
			return err
		}
	}

	for i, ft := range types {
		switch {
		case *export:
			data, err := json.MarshalIndent(ft, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(data))
		case *dot:
			fmt.Print(ft.Dot())
		default:
			fmt.Print(ft.TransitionTable())
		}
		if *analyze {
			fmt.Println(analyses[i].Summary())
		}
	}
	ef.Summary(eng.Cache())
	return nil
}

// checkFile is the -check input: one protocol descriptor plus the
// request batch, using the same field names as POST /v1/check on the
// reprod service, so a request body works as a -check file unchanged.
type checkFile struct {
	Protocol string `json:"protocol"`
	Requests []struct {
		Inputs       []int `json:"inputs"`
		CrashQuota   []int `json:"crashQuota,omitempty"`
		MaxNodes     int   `json:"maxNodes,omitempty"`
		SkipLiveness bool  `json:"skipLiveness,omitempty"`
		TimeoutMs    int   `json:"timeoutMs,omitempty"`
	} `json:"requests"`
}

// checkResult is one -check outcome; checkOutput is the full rendering,
// one result per request (positionally aligned), plus the batch's
// graph-reuse counters.
type checkResult struct {
	Error      string   `json:"error,omitempty"`
	OK         bool     `json:"ok"`
	Nodes      int      `json:"nodes,omitempty"`
	Truncated  bool     `json:"truncated,omitempty"`
	Violations []string `json:"violations,omitempty"`
}

type checkOutput struct {
	Protocol string           `json:"protocol"`
	Results  []checkResult    `json:"results"`
	Graph    repro.GraphStats `json:"graph"`
}

// runCheckBatch loads a -check batch file and runs it as one
// Engine.CheckBatch: every request with the same inputs walks one shared
// exploration graph, and the whole batch runs concurrently on the
// engine's pool. Results are printed as JSON on stdout; per-item errors
// (malformed inputs) land in their item, not the exit status.
func runCheckBatch(eng *repro.Engine, path string) error {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("-check: %w", err)
		}
		defer f.Close()
		r = f
	}
	var cf checkFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cf); err != nil {
		return fmt.Errorf("-check: parse %s: %w", path, err)
	}
	if len(cf.Requests) == 0 {
		return fmt.Errorf("-check: %s has no requests", path)
	}
	pr, err := eng.ResolveProtocol(cf.Protocol)
	if err != nil {
		return fmt.Errorf("-check: %w", err)
	}
	reqs := make([]repro.CheckRequest, len(cf.Requests))
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	for i, item := range cf.Requests {
		reqs[i] = repro.CheckRequest{
			Inputs:       item.Inputs,
			CrashQuota:   item.CrashQuota,
			MaxNodes:     item.MaxNodes,
			SkipLiveness: item.SkipLiveness,
		}
		if item.TimeoutMs > 0 {
			// Per-item deadline, exactly as the /v1/check handler wires
			// timeoutMs: an expired item fails alone.
			ctx, c := context.WithTimeout(context.Background(), time.Duration(item.TimeoutMs)*time.Millisecond)
			cancels = append(cancels, c)
			reqs[i].Ctx = ctx
		}
	}
	items, gs, err := eng.CheckBatch(pr, reqs)
	if err != nil {
		return fmt.Errorf("-check: %w", err)
	}
	out := checkOutput{Protocol: cf.Protocol, Graph: gs, Results: make([]checkResult, len(items))}
	for i, it := range items {
		if it.Err != nil {
			out.Results[i].Error = it.Err.Error()
			continue
		}
		out.Results[i].OK = it.Result.OK()
		out.Results[i].Nodes = it.Result.Nodes
		out.Results[i].Truncated = it.Result.Truncated
		for _, v := range it.Result.Violations {
			out.Results[i].Violations = append(out.Results[i].Violations, v.String())
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

// readBatchDescriptors loads a -batch file: one type descriptor per
// line, with blank lines and #-comments skipped.
func readBatchDescriptors(path string) ([]string, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("-batch: %w", err)
		}
		defer f.Close()
		r = f
	}
	var out []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("-batch: %w", err)
	}
	return out, nil
}
