package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"

	"repro/internal/spec"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

func TestText(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"tnn:5,2"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"T[5,2]", "s --op0/0--> s0,1", "s_bot"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestDot(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-dot", "tas"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "->") {
		t.Errorf("not DOT output:\n%s", out)
	}
}

func TestExportRoundTrips(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-export", "tas"}) })
	if err != nil {
		t.Fatal(err)
	}
	var ft spec.FiniteType
	if err := json.Unmarshal([]byte(out), &ft); err != nil {
		t.Fatalf("export is not valid type JSON: %v", err)
	}
	if ft.Name() != "test-and-set" || !ft.Readable() {
		t.Errorf("round-trip lost structure: %s", ft.Name())
	}
}

func TestList(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-list"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "product:A,B") {
		t.Errorf("list missing entries:\n%s", out)
	}
}

func TestBatchAnalyze(t *testing.T) {
	dir := t.TempDir()
	file := dir + "/types.txt"
	if err := os.WriteFile(file, []byte("# the classical gap pair\ntas\n\nregister:2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"-batch", file, "-analyze", "sticky"})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Positional descriptors come first, then the batch file's, each with
	// its transition table and hierarchy summary.
	for _, want := range []string{"sticky-bit", "test-and-set", "register[2]", "cons", "rcons"} {
		if !strings.Contains(out, want) {
			t.Errorf("batch output missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "gap pair") {
		t.Errorf("comment line leaked into descriptors:\n%s", out)
	}
}

func TestCheckBatchMode(t *testing.T) {
	dir := t.TempDir()
	file := dir + "/reqs.json"
	// The same body shape POST /v1/check accepts, timeoutMs included.
	body := `{"protocol":"cas-rec:2","requests":[
		{"inputs":[0,1],"crashQuota":[1,1],"timeoutMs":30000},
		{"inputs":[0,1]},
		{"inputs":[0]}
	]}`
	if err := os.WriteFile(file, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error { return run([]string{"-check", file}) })
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Protocol string `json:"protocol"`
		Results  []struct {
			Error string `json:"error"`
			OK    bool   `json:"ok"`
			Nodes int    `json:"nodes"`
		} `json:"results"`
		Graph struct {
			Expanded uint64 `json:"expanded"`
			Reused   uint64 `json:"reused"`
		} `json:"graph"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("-check output is not valid JSON: %v\n%s", err, out)
	}
	if res.Protocol != "cas-rec:2" || len(res.Results) != 3 {
		t.Fatalf("unexpected result shape: %+v", res)
	}
	if !res.Results[0].OK || res.Results[0].Nodes == 0 || !res.Results[1].OK {
		t.Fatalf("well-formed items failed: %+v", res.Results)
	}
	if !strings.Contains(res.Results[2].Error, "inputs") {
		t.Fatalf("malformed item should carry a per-item inputs error: %+v", res.Results[2])
	}
	if res.Graph.Expanded == 0 || res.Graph.Reused == 0 {
		t.Fatalf("batch reported no graph sharing: %+v", res.Graph)
	}
}

func TestCheckBatchModeErrors(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-check", "/nonexistent/file"}) }); err == nil {
		t.Error("missing -check file should fail")
	}
	dir := t.TempDir()
	for name, body := range map[string]string{
		"bad-protocol.json": `{"protocol":"nope","requests":[{"inputs":[0,1]}]}`,
		"no-requests.json":  `{"protocol":"cas-rec:2","requests":[]}`,
		"bad-json.json":     `{"protocol":`,
	} {
		file := dir + "/" + name
		if err := os.WriteFile(file, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := capture(t, func() error { return run([]string{"-check", file}) }); err == nil {
			t.Errorf("%s should fail", name)
		}
	}
}

func TestBatchErrors(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-batch", "/nonexistent/file"}) }); err == nil {
		t.Error("missing -batch file should fail")
	}
}

func TestErrors(t *testing.T) {
	for _, args := range [][]string{{}, {"zzz"}} {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}
