package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

// TestFindsKnownSeed runs the seed window containing the frozen X4
// candidate.
func TestFindsKnownSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("search takes a few seconds")
	}
	out, err := capture(t, func() error {
		return run([]string{"-n", "4", "-seed", "1990", "-attempts", "10", "-sizes", "5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "seed=1994") {
		t.Errorf("expected to rediscover seed 1994:\n%s", out)
	}
}

func TestNoHitFails(t *testing.T) {
	// A tiny window with no hits must return an error.
	if _, err := capture(t, func() error {
		return run([]string{"-n", "4", "-seed", "1", "-attempts", "3", "-sizes", "5"})
	}); err == nil {
		t.Error("expected a no-candidate error")
	}
}

func TestArgErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "3"},
		{"-sizes", "x"},
		{"-sizes", "2"},
	} {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}
