// Command xsearch hunts for readable types with the X_n signature of the
// paper's corollary: consensus number n, recoverable consensus number n-2
// (n-discerning, (n-2)-recording, not (n-1)-recording). The frozen types
// types.XFour and types.XFive were found with this tool.
//
// Usage:
//
//	xsearch -n 4 -attempts 5000 -sizes 5,6
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/xsearch"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "xsearch:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("xsearch", flag.ContinueOnError)
	n := fs.Int("n", 4, "target consensus number (the signature is cons=n, rcons=n-2); n >= 4")
	attempts := fs.Int("attempts", 5000, "number of random candidates per size")
	seedStart := fs.Int64("seed", 1, "first seed")
	sizesArg := fs.String("sizes", "5,6,7", "comma-separated value-set sizes to sample")
	all := fs.Bool("all", false, "keep searching after the first hit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 4 {
		return fmt.Errorf("need -n >= 4 (DFFR Theorem 5 pins cons via the signature only for n >= 4)")
	}
	var sizes []int
	for _, part := range strings.Split(*sizesArg, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 3 {
			return fmt.Errorf("bad size %q", part)
		}
		sizes = append(sizes, v)
	}

	start := time.Now()
	found := 0
	for _, sz := range sizes {
		hits := xsearch.Search(*n, *seedStart, *attempts, []int{sz}, *attempts/4, func(done int) {
			fmt.Fprintf(os.Stderr, "size %d: %d/%d attempts (%s)\n",
				sz, done, *attempts, time.Since(start).Round(time.Millisecond))
		})
		for _, c := range hits {
			found++
			fmt.Printf("FOUND X%d candidate: seed=%d size=%d\n", *n, c.Seed, c.NumValues)
			fmt.Print(c.Type.TransitionTable())
			fmt.Println()
			if !*all {
				return nil
			}
		}
	}
	if found == 0 {
		return fmt.Errorf("no X%d candidate in %d attempts per size (try more attempts or other sizes)",
			*n, *attempts)
	}
	return nil
}
