// Command xsearch hunts for readable types with the X_n signature of the
// paper's corollary: consensus number n, recoverable consensus number n-2
// (n-discerning, (n-2)-recording, not (n-1)-recording). The frozen types
// types.XFour and types.XFive were found with this tool.
//
// Usage:
//
//	xsearch -n 4 -attempts 5000 -sizes 5,6
//	xsearch -n 4 -sizes 5,6,7 -parallel 3 -timeout 2m
//	xsearch -n 4 -sizes 6 -cache-file xsweep.repro   # resumable sweep
//
// Value-set sizes are searched concurrently on a worker pool (-parallel);
// hits are printed in size order once the sweep finishes, and per-size
// attempt progress always streams to stderr. -timeout also interrupts
// in-flight searches (polled once per attempt). Signature checks run on
// a shared analysis engine, so -cache-file persists every level decision:
// re-running after an interruption (or with a larger -attempts) skips
// straight through the seeds already decided.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cli"
	"repro/internal/pool"
	"repro/internal/xsearch"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "xsearch:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("xsearch", flag.ContinueOnError)
	n := fs.Int("n", 4, "target consensus number (the signature is cons=n, rcons=n-2); n >= 4")
	attempts := fs.Int("attempts", 5000, "number of random candidates per size")
	seedStart := fs.Int64("seed", 1, "first seed")
	sizesArg := fs.String("sizes", "5,6,7", "comma-separated value-set sizes to sample")
	all := fs.Bool("all", false, "keep searching after the first hit")
	ef := cli.AddEngineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 4 {
		return fmt.Errorf("need -n >= 4 (DFFR Theorem 5 pins cons via the signature only for n >= 4)")
	}
	var sizes []int
	for _, part := range strings.Split(*sizesArg, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 3 {
			return fmt.Errorf("bad size %q", part)
		}
		sizes = append(sizes, v)
	}

	ctx, cancel := ef.Context()
	defer cancel()

	start := time.Now()
	var mu sync.Mutex

	// Sizes are independent sample spaces: sweep them on a worker pool
	// and render hits in size order. The search polls the context per
	// attempt, so a deadline also interrupts in-flight searches — and in
	// the default first-hit mode (-all=false) a size that finds a
	// candidate cancels the rest of the sweep, preserving the serial
	// code's early exit.
	sctx := ctx
	stopEarly := func() {}
	if !*all {
		var cancelSweep context.CancelFunc
		sctx, cancelSweep = context.WithCancel(ctx)
		defer cancelSweep()
		stopEarly = cancelSweep
	}
	// Signature checks run through one shared engine: its cache
	// deduplicates repeated candidates, its auto-sharding hands workers
	// left over after one per size to each candidate's big level checks
	// (the -shard-threshold contract), and -cache-file persists every
	// decision so an interrupted or repeated sweep resumes across runs
	// instead of re-searching decided seeds. EngineOn keeps the engine
	// quiet — the sweep's own attempt progress is the tool's voice.
	eng, closeCache, err := ef.EngineOn(sctx)
	if err != nil {
		return err
	}
	defer closeCache()
	defer ef.Summary(eng.Cache())

	// Progress always streams to stderr, as it did before the engine
	// flags existed — long sweeps must not look hung. The shared
	// -progress flag is accepted for interface consistency. On
	// non-persistent sweeps the same beat caps the memo's memory:
	// random candidates have unique fingerprints with a near-zero
	// intra-run hit rate, so holding their decisions is pure cost and
	// the map is purged every interval. With -cache-file the map stays:
	// the warm-loaded entries ARE the resume (purging them would force
	// recomputation), and RAM then tracks the journal the user asked
	// for on disk.
	progressFor := func(sz int) func(done int) {
		return func(done int) {
			mu.Lock()
			fmt.Fprintf(os.Stderr, "size %d: %d/%d attempts (%s)\n",
				sz, done, *attempts, time.Since(start).Round(time.Millisecond))
			mu.Unlock()
			if ef.CacheFile == "" {
				eng.Cache().Purge()
			}
		}
	}
	hitsBySize := make([][]xsearch.Candidate, len(sizes))
	searched, _ := pool.Run(sctx, len(sizes), ef.Parallel, func(i int) error {
		sz := sizes[i]
		hitsBySize[i] = xsearch.SearchDecider(sctx, eng, *n, *seedStart, *attempts,
			[]int{sz}, *attempts/4, progressFor(sz))
		if len(hitsBySize[i]) > 0 {
			stopEarly()
		}
		return nil
	})

	found := 0
	for _, hits := range hitsBySize[:searched] {
		for _, c := range hits {
			found++
			fmt.Printf("FOUND X%d candidate: seed=%d size=%d\n", *n, c.Seed, c.NumValues)
			fmt.Print(c.Type.TransitionTable())
			fmt.Println()
			if !*all {
				return nil
			}
		}
	}
	if err := ctx.Err(); err != nil {
		if searched < len(sizes) {
			fmt.Fprintf(os.Stderr, "xsearch: stopped after %d/%d sizes (%v)\n", searched, len(sizes), err)
		} else {
			fmt.Fprintf(os.Stderr, "xsearch: %v — in-flight sizes returned partial results\n", err)
		}
		if found == 0 {
			return fmt.Errorf("stopped by %v before any X%d candidate was found (the attempt budget was not exhausted)",
				err, *n)
		}
		return nil
	}
	if found == 0 {
		return fmt.Errorf("no X%d candidate in %d attempts per size (try more attempts or other sizes)",
			*n, *attempts)
	}
	return nil
}
