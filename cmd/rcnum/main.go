// Command rcnum analyzes shared object types: it decides the n-discerning
// and n-recording properties for a range of process counts and derives the
// type's consensus number and recoverable consensus number (exact for
// readable types, per Ruppert's theorem and Theorem 14 of the paper).
//
// Usage:
//
//	rcnum [-n maxN] [-parallel k] [-timeout 30s] [-progress] [-witness] [-json file] <type>...
//	rcnum -list
//
// Type descriptors come from the registry, e.g. "tas", "tnn:5,2", "x4",
// "product:tas,register:2". With -json, the type is loaded from a JSON
// specification file instead. Level checks for all requested types run
// concurrently on the engine's worker pool.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/cli"
	"repro/internal/registry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rcnum:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rcnum", flag.ContinueOnError)
	maxN := fs.Int("n", 5, "largest process count to check")
	witness := fs.Bool("witness", false, "print discerning/recording witnesses")
	list := fs.Bool("list", false, "list registered type descriptors")
	jsonFile := fs.String("json", "", "load a type from a JSON specification file")
	ef := cli.AddEngineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Print(registry.Help())
		return nil
	}

	eng, cleanup, err := ef.Engine(repro.WithMaxN(*maxN))
	if err != nil {
		return err
	}
	defer cleanup()

	var typs []*repro.Type
	if *jsonFile != "" {
		data, err := os.ReadFile(*jsonFile)
		if err != nil {
			return err
		}
		var ft repro.Type
		if err := json.Unmarshal(data, &ft); err != nil {
			return fmt.Errorf("parse %s: %w", *jsonFile, err)
		}
		typs = append(typs, &ft)
	}
	for _, desc := range fs.Args() {
		ft, err := eng.Resolve(desc)
		if err != nil {
			return err
		}
		typs = append(typs, ft)
	}
	if len(typs) == 0 {
		return fmt.Errorf("no types given (try: rcnum -list)")
	}

	analyses, err := eng.AnalyzeAll(typs)
	if err != nil {
		return err
	}
	for _, a := range analyses {
		fmt.Println(a.Summary())
		fmt.Print(a.Spectrum())
		if !a.Readable {
			fmt.Println("note: type is not readable; the numbers above are decider indicators,")
			fmt.Println("      not exact hierarchy positions (Theorem 14 needs readability).")
		}
		if *witness {
			for n := 2; n <= *maxN; n++ {
				if w := a.DiscerningWitness[n]; w != nil {
					fmt.Printf("  %d-discerning witness: %s\n", n, w)
				}
				if w := a.RecordingWitness[n]; w != nil {
					fmt.Printf("  %d-recording witness:  %s\n", n, w)
				}
			}
		}
		if err := a.CheckTheorem13Consistency(); err != nil {
			fmt.Printf("THEOREM CONSISTENCY VIOLATION: %v\n", err)
		}
		fmt.Println()
	}
	ef.Summary(eng.Cache())
	return nil
}
