package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

func TestRunTAS(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-n", "3", "tas"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cons=2", "rcons=1", "discerning", "recording"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunNonReadableNote(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-n", "3", "tnn:3,1"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "not readable") {
		t.Errorf("missing non-readable note:\n%s", out)
	}
}

func TestRunWitness(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-n", "2", "-witness", "tas"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2-discerning witness") {
		t.Errorf("missing witness output:\n%s", out)
	}
}

func TestRunList(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-list"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tnn:n,n'") {
		t.Errorf("list output missing registry entries:\n%s", out)
	}
}

func TestRunJSON(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/tas.json"
	spec := `{
		"name": "json-tas",
		"values": ["0", "1"],
		"ops": ["TAS", "read"],
		"transitions": {
			"0/TAS": {"resp": 0, "next": "1"},
			"1/TAS": {"resp": 1, "next": "1"},
			"0/read": {"resp": 100, "next": "0"},
			"1/read": {"resp": 101, "next": "1"}
		}
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error { return run([]string{"-n", "3", "-json", path}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "json-tas") || !strings.Contains(out, "cons=2") {
		t.Errorf("json analysis wrong:\n%s", out)
	}
}

// captureStderr runs fn with os.Stderr redirected.
func captureStderr(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	runErr := fn()
	w.Close()
	os.Stderr = old
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

// TestRunCacheFile analyzes twice against one -cache-file: the second
// run must serve every decision from the warm cache, and -progress must
// close with the cache/store statistics summary.
func TestRunCacheFile(t *testing.T) {
	cache := t.TempDir() + "/decisions"
	args := []string{"-n", "3", "-cache-file", cache, "-progress", "tas"}
	for run1st := range 2 {
		errs, err := captureStderr(t, func() error {
			out, err := capture(t, func() error { return run(args) })
			if err == nil && !strings.Contains(out, "cons=2") {
				t.Errorf("run %d output wrong:\n%s", run1st, out)
			}
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(errs, "[engine] cache:") || !strings.Contains(errs, "cache file "+cache) {
			t.Errorf("run %d missing stats summary on stderr:\n%s", run1st, errs)
		}
		if run1st == 1 && !strings.Contains(errs, "0 misses") {
			t.Errorf("second run recomputed decisions:\n%s", errs)
		}
	}
	if _, err := os.Stat(cache + ".journal"); err != nil {
		t.Fatalf("no journal written: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                 // no types
		{"nosuchtype"},     // unknown type
		{"-n", "1", "tas"}, // bad maxN
		{"-json", "/nonexistent/file.json"},
	} {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}
