// Command bench2json converts `go test -bench` text output into a stable
// JSON document, and compares two such documents as a perf-regression
// gate. CI uses it to start and extend the repo's benchmark trajectory:
// every run converts its bench output to BENCH_PR.json and uploads it as
// an artifact; once a baseline is committed, the gate fails the build on
// regressions beyond the tolerance.
//
// Usage:
//
//	go test -bench . -count 3 | bench2json -o BENCH_PR.json
//	bench2json -baseline BENCH_MAIN.json -tolerance 1.5 BENCH_PR.json
//
// Convert mode reads bench text from the argument file (or stdin) and
// writes JSON. Gate mode (-baseline) reads two JSON documents and exits
// nonzero if any benchmark present in both regressed: with -count > 1
// the comparison uses each benchmark's minimum ns/op, the standard
// noise-resistant statistic.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Run is one benchmark measurement line: the iteration count and the
// reported metrics (always "ns/op"; allocs and custom b.ReportMetric
// units when present).
type Run struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Benchmark aggregates the runs of one benchmark name (several with
// -count > 1).
type Benchmark struct {
	// Name is the benchmark name without the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix of the raw name (0 if absent).
	Procs int `json:"procs,omitempty"`
	// Runs are the individual measurements in input order.
	Runs []Run `json:"runs"`
	// MinNsPerOp is the minimum ns/op across runs, the gate statistic.
	MinNsPerOp float64 `json:"min_ns_per_op"`
	// MinAllocsPerOp is the minimum allocs/op across runs, present when
	// the benchmark reports allocations (b.ReportAllocs / -benchmem). A
	// pointer so documents from before the alloc gate — which lack the
	// field — stay distinguishable from a measured zero.
	MinAllocsPerOp *float64 `json:"min_allocs_per_op,omitempty"`
}

// Document is the converted bench output.
type Document struct {
	// Context carries the goos/goarch/pkg/cpu header lines.
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []*Benchmark      `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("bench2json", flag.ContinueOnError)
	out := fs.String("o", "", "write JSON here instead of stdout (convert mode)")
	baseline := fs.String("baseline", "", "baseline JSON document; switches to gate mode")
	tolerance := fs.Float64("tolerance", 1.5, "gate mode: fail when current min ns/op exceeds baseline times this factor")
	allocTolerance := fs.Float64("alloc-tolerance", 1.1, "gate mode: fail when current min allocs/op exceeds baseline times this factor (plus 2 allocs absolute slack)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baseline != "" {
		if fs.NArg() != 1 {
			return fmt.Errorf("gate mode needs exactly one current JSON document, got %d args", fs.NArg())
		}
		return gate(*baseline, fs.Arg(0), *tolerance, *allocTolerance, stdout)
	}

	in := stdin
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	} else if fs.NArg() > 1 {
		return fmt.Errorf("convert mode takes at most one input file, got %d args", fs.NArg())
	}
	doc, err := Parse(in)
	if err != nil {
		return err
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Parse converts `go test -bench` text output into a Document. Lines it
// does not recognize (test chatter, PASS/ok trailers) are skipped, so
// piping a whole `go test` run through it is fine.
func Parse(r io.Reader) (*Document, error) {
	doc := &Document{Context: map[string]string{}}
	byName := map[string]*Benchmark{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				doc.Context[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A measurement line is "Name iterations value unit [value unit]...".
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		run := Run{Iterations: iters, Metrics: map[string]float64{}}
		bad := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				bad = true
				break
			}
			run.Metrics[fields[i+1]] = v
		}
		if bad {
			continue
		}
		if _, ok := run.Metrics["ns/op"]; !ok {
			continue
		}
		name, procs := splitProcs(fields[0])
		b := byName[name]
		if b == nil {
			b = &Benchmark{Name: name, Procs: procs}
			byName[name] = b
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
		b.Runs = append(b.Runs, run)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, b := range doc.Benchmarks {
		b.MinNsPerOp = b.Runs[0].Metrics["ns/op"]
		for _, r := range b.Runs[1:] {
			if v := r.Metrics["ns/op"]; v < b.MinNsPerOp {
				b.MinNsPerOp = v
			}
		}
		for _, r := range b.Runs {
			v, ok := r.Metrics["allocs/op"]
			if !ok {
				continue
			}
			if b.MinAllocsPerOp == nil || v < *b.MinAllocsPerOp {
				b.MinAllocsPerOp = &v
			}
		}
	}
	return doc, nil
}

// splitProcs strips the trailing -GOMAXPROCS suffix go test appends to
// benchmark names ("BenchmarkFoo/case-8" -> "BenchmarkFoo/case", 8).
func splitProcs(raw string) (string, int) {
	i := strings.LastIndex(raw, "-")
	if i < 0 {
		return raw, 0
	}
	procs, err := strconv.Atoi(raw[i+1:])
	if err != nil || procs <= 0 {
		return raw, 0
	}
	return raw[:i], procs
}

// gate compares current against baseline and errors on regressions. Only
// benchmarks present in both documents are compared, so adding or
// removing benchmarks never trips the gate.
func gate(baselinePath, currentPath string, tolerance, allocTolerance float64, w io.Writer) error {
	base, err := load(baselinePath)
	if err != nil {
		return err
	}
	cur, err := load(currentPath)
	if err != nil {
		return err
	}
	// A baseline records the CPU it was measured on. Comparing ns/op
	// across different CPU models measures the hardware, not the code,
	// so the gate is strict only when both documents name the same CPU;
	// on a mismatch — or when either side could not record its CPU at
	// all — it demotes itself to advisory: regressions are reported but
	// do not fail the run. Refresh the baseline from the current runner
	// class to re-arm it.
	advisory := false
	if bc, cc := base.Context["cpu"], cur.Context["cpu"]; bc == "" || cc == "" || bc != cc {
		advisory = true
		fmt.Fprintf(w, "perf gate: baseline CPU %q vs current CPU %q; gate is advisory only\n", bc, cc)
	}
	baseBy := map[string]*Benchmark{}
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	var regressions []string
	// Allocation counts are a property of the code, not the hardware, so
	// the alloc gate stays armed even when a CPU mismatch demotes the
	// ns/op gate to advisory. Collected separately for that reason.
	var allocRegressions []string
	compared := 0
	for _, c := range cur.Benchmarks {
		b, ok := baseBy[c.Name]
		if !ok || b.MinNsPerOp <= 0 {
			continue
		}
		compared++
		ratio := c.MinNsPerOp / b.MinNsPerOp
		if ratio > tolerance {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%.2fx > %.2fx tolerance)",
					c.Name, c.MinNsPerOp, b.MinNsPerOp, ratio, tolerance))
		}
		// The alloc comparison needs both sides measured: a benchmark that
		// gained or lost ReportAllocs between runs is skipped, never failed.
		// The 2-alloc absolute slack keeps the ratio check meaningful near
		// zero (0 -> 1 alloc is an infinite ratio but rarely a regression
		// worth failing a build over; 0 -> 3 is).
		if b.MinAllocsPerOp != nil && c.MinAllocsPerOp != nil {
			ba, ca := *b.MinAllocsPerOp, *c.MinAllocsPerOp
			if ca > ba*allocTolerance && ca-ba > 2 {
				allocRegressions = append(allocRegressions,
					fmt.Sprintf("%s: %.0f allocs/op vs baseline %.0f (tolerance %.2fx + 2)",
						c.Name, ca, ba, allocTolerance))
			}
		}
	}
	sort.Strings(regressions)
	sort.Strings(allocRegressions)
	for _, r := range regressions {
		fmt.Fprintln(w, "REGRESSION", r)
	}
	for _, r := range allocRegressions {
		fmt.Fprintln(w, "ALLOC REGRESSION", r)
	}
	fmt.Fprintf(w, "perf gate: %d benchmarks compared, %d time regressions, %d alloc regressions (tolerance %.2fx, alloc %.2fx)\n",
		compared, len(regressions), len(allocRegressions), tolerance, allocTolerance)
	if len(allocRegressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed on allocations", len(allocRegressions))
	}
	if len(regressions) > 0 && !advisory {
		return fmt.Errorf("%d benchmark(s) regressed", len(regressions))
	}
	if compared == 0 && len(base.Benchmarks) > 0 {
		// An armed baseline with an empty intersection means the gate is
		// guarding nothing — a renamed benchmark set or a broken bench
		// run must not pass vacuously. In advisory (CPU-mismatch) mode
		// the gate was not going to fail anything anyway, so report
		// without failing there too.
		msg := fmt.Sprintf("no benchmarks in common with the baseline (%d baseline, %d current): gate is vacuous",
			len(base.Benchmarks), len(cur.Benchmarks))
		if advisory {
			fmt.Fprintln(w, "perf gate:", msg)
			return nil
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}

func load(path string) (*Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}
