package main

import (
	"io"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkShardedLevelCheck/discern/shards=1-8         	       3	  81569996 ns/op
BenchmarkShardedLevelCheck/discern/shards=1-8         	       3	  80111111 ns/op
BenchmarkShardedLevelCheck/discern/shards=4-8         	       3	  21002384 ns/op
BenchmarkAblationCrashBudget/quota=1-8                	       2	   1500000 ns/op	      7052 nodes
some unrelated test output
PASS
ok  	repro	0.272s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Context["goos"] != "linux" || doc.Context["cpu"] == "" {
		t.Errorf("context not captured: %v", doc.Context)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkShardedLevelCheck/discern/shards=1" || b.Procs != 8 {
		t.Errorf("bad first benchmark: %+v", b)
	}
	if len(b.Runs) != 2 || b.MinNsPerOp != 80111111 {
		t.Errorf("-count runs not aggregated to min: %+v", b)
	}
	quota := doc.Benchmarks[2]
	if quota.Runs[0].Metrics["nodes"] != 7052 {
		t.Errorf("custom metric lost: %+v", quota.Runs[0])
	}
}

func TestGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name, text string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := run([]string{"-o", path}, strings.NewReader(text), io.Discard); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", sample)

	// Identical current: gate passes.
	var out strings.Builder
	if err := run([]string{"-baseline", base, "-tolerance", "1.5", base}, nil, &out); err != nil {
		t.Fatalf("identical docs must pass the gate: %v (%s)", err, out.String())
	}
	if !strings.Contains(out.String(), "3 benchmarks compared, 0 regressions") {
		t.Errorf("unexpected gate summary: %s", out.String())
	}

	// A 2x regression on one benchmark: gate fails and names it.
	regressed := strings.Replace(sample, "  21002384 ns/op", "  63002384 ns/op", 1)
	cur := write("cur.json", regressed)
	out.Reset()
	err := run([]string{"-baseline", base, "-tolerance", "1.5", cur}, nil, &out)
	if err == nil {
		t.Fatal("2x regression must fail a 1.5x gate")
	}
	if !strings.Contains(out.String(), "REGRESSION BenchmarkShardedLevelCheck/discern/shards=4") {
		t.Errorf("regression not named: %s", out.String())
	}

	// A benchmark only in the current doc never trips the gate.
	extra := sample + "BenchmarkBrandNew-8 	 1	 999999999 ns/op\n"
	curExtra := write("extra.json", extra)
	out.Reset()
	if err := run([]string{"-baseline", base, "-tolerance", "1.5", curExtra}, nil, &out); err != nil {
		t.Fatalf("new benchmark must not trip the gate: %v", err)
	}

	// Zero overlap against a non-empty baseline is a vacuous gate and
	// must fail, not pass silently (same CPU, so the gate is strict).
	disjoint := write("disjoint.json",
		"cpu: Intel(R) Xeon(R) Processor @ 2.70GHz\nBenchmarkRenamed-8 	 1	 1000 ns/op\n")
	out.Reset()
	if err := run([]string{"-baseline", base, "-tolerance", "1.5", disjoint}, nil, &out); err == nil {
		t.Fatal("disjoint benchmark sets must fail the gate as vacuous")
	}

	// The same regression from a runner that could not record its CPU:
	// cross-hardware ns/op comparison is meaningless, so advisory.
	noCPU := write("nocpu.json", strings.Replace(regressed,
		"cpu: Intel(R) Xeon(R) Processor @ 2.70GHz\n", "", 1))
	out.Reset()
	if err := run([]string{"-baseline", base, "-tolerance", "1.5", noCPU}, nil, &out); err != nil {
		t.Fatalf("missing-CPU comparison must be advisory, got %v", err)
	}
	if !strings.Contains(out.String(), "advisory") {
		t.Errorf("missing-CPU mode not reported: %s", out.String())
	}

	// The same 2x regression measured on a different CPU model: ns/op
	// across machines measures the hardware, so the gate demotes itself
	// to advisory — report, but pass.
	otherCPU := strings.Replace(regressed, "cpu: Intel(R) Xeon(R) Processor @ 2.70GHz",
		"cpu: AMD EPYC 7B13", 1)
	curOther := write("othercpu.json", otherCPU)
	out.Reset()
	if err := run([]string{"-baseline", base, "-tolerance", "1.5", curOther}, nil, &out); err != nil {
		t.Fatalf("cross-CPU comparison must be advisory, got %v", err)
	}
	if !strings.Contains(out.String(), "advisory") ||
		!strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("advisory mode must still report the regression: %s", out.String())
	}
}
