package main

import (
	"io"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkShardedLevelCheck/discern/shards=1-8         	       3	  81569996 ns/op
BenchmarkShardedLevelCheck/discern/shards=1-8         	       3	  80111111 ns/op
BenchmarkShardedLevelCheck/discern/shards=4-8         	       3	  21002384 ns/op
BenchmarkAblationCrashBudget/quota=1-8                	       2	   1500000 ns/op	      7052 nodes
some unrelated test output
PASS
ok  	repro	0.272s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Context["goos"] != "linux" || doc.Context["cpu"] == "" {
		t.Errorf("context not captured: %v", doc.Context)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkShardedLevelCheck/discern/shards=1" || b.Procs != 8 {
		t.Errorf("bad first benchmark: %+v", b)
	}
	if len(b.Runs) != 2 || b.MinNsPerOp != 80111111 {
		t.Errorf("-count runs not aggregated to min: %+v", b)
	}
	quota := doc.Benchmarks[2]
	if quota.Runs[0].Metrics["nodes"] != 7052 {
		t.Errorf("custom metric lost: %+v", quota.Runs[0])
	}
}

func TestGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name, text string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := run([]string{"-o", path}, strings.NewReader(text), io.Discard); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", sample)

	// Identical current: gate passes.
	var out strings.Builder
	if err := run([]string{"-baseline", base, "-tolerance", "1.5", base}, nil, &out); err != nil {
		t.Fatalf("identical docs must pass the gate: %v (%s)", err, out.String())
	}
	if !strings.Contains(out.String(), "3 benchmarks compared, 0 time regressions, 0 alloc regressions") {
		t.Errorf("unexpected gate summary: %s", out.String())
	}

	// A 2x regression on one benchmark: gate fails and names it.
	regressed := strings.Replace(sample, "  21002384 ns/op", "  63002384 ns/op", 1)
	cur := write("cur.json", regressed)
	out.Reset()
	err := run([]string{"-baseline", base, "-tolerance", "1.5", cur}, nil, &out)
	if err == nil {
		t.Fatal("2x regression must fail a 1.5x gate")
	}
	if !strings.Contains(out.String(), "REGRESSION BenchmarkShardedLevelCheck/discern/shards=4") {
		t.Errorf("regression not named: %s", out.String())
	}

	// A benchmark only in the current doc never trips the gate.
	extra := sample + "BenchmarkBrandNew-8 	 1	 999999999 ns/op\n"
	curExtra := write("extra.json", extra)
	out.Reset()
	if err := run([]string{"-baseline", base, "-tolerance", "1.5", curExtra}, nil, &out); err != nil {
		t.Fatalf("new benchmark must not trip the gate: %v", err)
	}

	// Zero overlap against a non-empty baseline is a vacuous gate and
	// must fail, not pass silently (same CPU, so the gate is strict).
	disjoint := write("disjoint.json",
		"cpu: Intel(R) Xeon(R) Processor @ 2.70GHz\nBenchmarkRenamed-8 	 1	 1000 ns/op\n")
	out.Reset()
	if err := run([]string{"-baseline", base, "-tolerance", "1.5", disjoint}, nil, &out); err == nil {
		t.Fatal("disjoint benchmark sets must fail the gate as vacuous")
	}

	// The same regression from a runner that could not record its CPU:
	// cross-hardware ns/op comparison is meaningless, so advisory.
	noCPU := write("nocpu.json", strings.Replace(regressed,
		"cpu: Intel(R) Xeon(R) Processor @ 2.70GHz\n", "", 1))
	out.Reset()
	if err := run([]string{"-baseline", base, "-tolerance", "1.5", noCPU}, nil, &out); err != nil {
		t.Fatalf("missing-CPU comparison must be advisory, got %v", err)
	}
	if !strings.Contains(out.String(), "advisory") {
		t.Errorf("missing-CPU mode not reported: %s", out.String())
	}

	// The same 2x regression measured on a different CPU model: ns/op
	// across machines measures the hardware, so the gate demotes itself
	// to advisory — report, but pass.
	otherCPU := strings.Replace(regressed, "cpu: Intel(R) Xeon(R) Processor @ 2.70GHz",
		"cpu: AMD EPYC 7B13", 1)
	curOther := write("othercpu.json", otherCPU)
	out.Reset()
	if err := run([]string{"-baseline", base, "-tolerance", "1.5", curOther}, nil, &out); err != nil {
		t.Fatalf("cross-CPU comparison must be advisory, got %v", err)
	}
	if !strings.Contains(out.String(), "advisory") ||
		!strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("advisory mode must still report the regression: %s", out.String())
	}
}

// allocSample is -benchmem output: ns/op plus B/op and allocs/op.
const allocSample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkEngineCheckWarm/bare-8         	    5000	    240000 ns/op	     512 B/op	      10 allocs/op
BenchmarkEngineCheckWarm/bare-8         	    5000	    238000 ns/op	     520 B/op	      12 allocs/op
BenchmarkEngineCheckWarm/instrumented-8 	    5000	    241000 ns/op	     512 B/op	      10 allocs/op
PASS
`

func TestParseAllocs(t *testing.T) {
	doc, err := Parse(strings.NewReader(allocSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.MinAllocsPerOp == nil || *b.MinAllocsPerOp != 10 {
		t.Errorf("min allocs/op not aggregated: %+v", b.MinAllocsPerOp)
	}
	// Benchmarks without -benchmem leave the field nil (and absent from
	// the JSON), the old document shape.
	noAlloc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if noAlloc.Benchmarks[0].MinAllocsPerOp != nil {
		t.Errorf("alloc stat invented for a benchmark that reported none")
	}
}

func TestGateAllocs(t *testing.T) {
	dir := t.TempDir()
	write := func(name, text string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := run([]string{"-o", path}, strings.NewReader(text), io.Discard); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", allocSample)

	// Identical: passes.
	var out strings.Builder
	if err := run([]string{"-baseline", base, base}, nil, &out); err != nil {
		t.Fatalf("identical docs must pass: %v (%s)", err, out.String())
	}

	// +1 alloc is within the 2-alloc absolute slack even though the
	// ratio (11/10 = 1.1x) sits at the tolerance boundary.
	oneUp := strings.Replace(allocSample, "      10 allocs/op\nBenchmarkEngineCheckWarm/bare", "      11 allocs/op\nBenchmarkEngineCheckWarm/bare", 1)
	curOne := write("one.json", oneUp)
	out.Reset()
	if err := run([]string{"-baseline", base, curOne}, nil, &out); err != nil {
		t.Fatalf("+1 alloc must pass the slack: %v (%s)", err, out.String())
	}

	// 10 -> 20 allocs on the warm path: fail and name the benchmark.
	regressed := strings.ReplaceAll(allocSample, "      10 allocs/op", "      20 allocs/op")
	regressed = strings.Replace(regressed, "      12 allocs/op", "      22 allocs/op", 1)
	cur := write("cur.json", regressed)
	out.Reset()
	err := run([]string{"-baseline", base, cur}, nil, &out)
	if err == nil {
		t.Fatalf("2x alloc regression must fail the gate: %s", out.String())
	}
	if !strings.Contains(out.String(), "ALLOC REGRESSION BenchmarkEngineCheckWarm/bare") {
		t.Errorf("alloc regression not named: %s", out.String())
	}

	// The same alloc regression on a different CPU: the ns/op gate is
	// advisory, but allocation counts are hardware-independent, so the
	// alloc gate stays armed.
	otherCPU := strings.Replace(regressed, "cpu: Intel(R) Xeon(R) Processor @ 2.70GHz",
		"cpu: AMD EPYC 7B13", 1)
	curOther := write("othercpu.json", otherCPU)
	out.Reset()
	if err := run([]string{"-baseline", base, curOther}, nil, &out); err == nil {
		t.Fatalf("alloc gate must stay strict across CPUs: %s", out.String())
	}

	// A baseline from before the alloc gate (no alloc stats at all)
	// never trips it: nothing to compare against.
	oldBase := write("oldbase.json", strings.ReplaceAll(strings.ReplaceAll(allocSample,
		"	     512 B/op	      10 allocs/op", ""), "	     520 B/op	      12 allocs/op", ""))
	out.Reset()
	if err := run([]string{"-baseline", oldBase, cur}, nil, &out); err != nil {
		t.Fatalf("nil-alloc baseline must not trip the alloc gate: %v (%s)", err, out.String())
	}
}
