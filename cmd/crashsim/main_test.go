package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

func TestTnnWithinBound(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-algo", "tnn", "-n", "4", "-nprime", "2",
			"-procs", "2", "-seeds", "10"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0 violations") {
		t.Errorf("expected clean runs:\n%s", out)
	}
}

func TestCASStorm(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-algo", "cas", "-procs", "3", "-seeds", "5",
			"-adversary", "storm"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0 violations") {
		t.Errorf("expected clean runs:\n%s", out)
	}
}

func TestBudgetAdversary(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-algo", "tnn", "-n", "5", "-nprime", "3",
			"-procs", "3", "-seeds", "8", "-adversary", "budget"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0 violations") {
		t.Errorf("expected clean runs:\n%s", out)
	}
}

func TestVerbose(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-algo", "cas", "-procs", "2", "-seeds", "1",
			"-adversary", "rr", "-v"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "decisions:") {
		t.Errorf("verbose output missing schedule render:\n%s", out)
	}
}

func TestArgErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-algo", "nosuch"},
		{"-algo", "tnn", "-n", "2", "-nprime", "2"},
		{"-algo", "tas", "-procs", "3"},
		{"-algo", "cas", "-adversary", "nosuch"},
	} {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}
