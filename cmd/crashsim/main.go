// Command crashsim runs the paper's consensus algorithms on the
// concurrent crash-recovery runtime under a configurable adversary and
// reports the schedule, decisions and statistics.
//
// Usage:
//
//	crashsim -algo tnn -n 5 -nprime 3 -procs 3 -seeds 100 -crash 0.4
//	crashsim -algo cas -procs 4 -adversary storm
//	crashsim -algo tas -procs 2 -redecide     # Golab's separation, live
//
// Adversaries: rr (round-robin, crash-free), random (seeded, -crash
// probability), storm (deterministic crash bursts), budget (the paper's
// E*_z discipline).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/adversary"
	"repro/internal/algo"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "crashsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("crashsim", flag.ContinueOnError)
	algoName := fs.String("algo", "tnn", "algorithm: tnn | cas | tas")
	n := fs.Int("n", 5, "T_{n,n'} parameter n (tnn only)")
	nPrime := fs.Int("nprime", 3, "T_{n,n'} parameter n' (tnn only)")
	procs := fs.Int("procs", 3, "number of processes")
	seeds := fs.Int("seeds", 50, "number of adversary seeds to run")
	crashProb := fs.Float64("crash", 0.3, "crash probability (random/budget adversaries)")
	maxCrashes := fs.Int("maxcrashes", 4, "max crashes per process (random adversary)")
	advName := fs.String("adversary", "random", "adversary: rr | random | storm | budget")
	verbose := fs.Bool("v", false, "print every run's schedule")
	redecide := fs.Bool("redecide", false, "after each run, crash every process post-decision and re-run solo")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var a *algo.Algorithm
	switch *algoName {
	case "tnn":
		if *nPrime >= *n || *nPrime < 1 {
			return fmt.Errorf("need n > n' >= 1")
		}
		if *procs > *nPrime {
			fmt.Printf("note: procs=%d exceeds n'=%d — the paper predicts failures\n",
				*procs, *nPrime)
		}
		a = algo.TnnRecoverable(*n, *nPrime)
	case "cas":
		a = algo.CASRecoverable()
	case "tas":
		if *procs != 2 {
			return fmt.Errorf("the tas algorithm is for exactly 2 processes")
		}
		a = algo.TASConsensus()
	default:
		return fmt.Errorf("unknown algorithm %q", *algoName)
	}

	newAdv := func(seed int64) sim.Adversary {
		switch *advName {
		case "rr":
			return &adversary.RoundRobin{}
		case "random":
			return adversary.NewRandom(seed, *crashProb, *maxCrashes)
		case "storm":
			targets := make([]int, *procs)
			for p := range targets {
				targets[p] = p
			}
			return &adversary.CrashStorm{Targets: targets, Times: *maxCrashes}
		case "budget":
			return adversary.NewBudgeted(seed, *procs, 1, *crashProb)
		default:
			return nil
		}
	}
	if newAdv(0) == nil {
		return fmt.Errorf("unknown adversary %q", *advName)
	}

	programs := make([]sim.Program, *procs)
	for p := range programs {
		programs[p] = a.Program(p)
	}

	var totalSteps, totalCrashes, violations, flips int
	for seed := int64(0); seed < int64(*seeds); seed++ {
		inputs := make([]int, *procs)
		for p := range inputs {
			inputs[p] = int(seed>>uint(p)) & 1
		}
		res, err := sim.Run(a.Cells, programs, inputs, newAdv(seed), sim.Options{})
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		totalSteps += res.Steps
		totalCrashes += res.Crashes
		if *verbose {
			fmt.Printf("seed %-4d inputs %v: %s\n", seed, inputs, trace.Summary(res.Schedule))
			fmt.Print(trace.Render(res.Schedule, nil, res.Decisions))
		}
		if err := res.VerifyConsensus(inputs); err != nil {
			violations++
			fmt.Printf("seed %-4d inputs %v: VIOLATION: %v\n", seed, inputs, err)
			fmt.Printf("  schedule: %s\n", res.Schedule)
		}
		if *redecide {
			for p := 0; p < *procs; p++ {
				if re := sim.RunSolo(res.Store, a.Program(p), p, inputs[p]); re != res.Decisions[p] {
					flips++
					fmt.Printf("seed %-4d: p%d decided %d, re-decided %d after crash-after-decide\n",
						seed, p, res.Decisions[p], re)
				}
			}
		}
	}
	fmt.Printf("\n%s, %d procs, %d seeds (%s adversary): %d steps, %d crashes, %d violations",
		a.Name, *procs, *seeds, *advName, totalSteps, totalCrashes, violations)
	if *redecide {
		fmt.Printf(", %d re-decision flips", flips)
	}
	fmt.Println()
	if violations > 0 || flips > 0 {
		os.Exit(2)
	}
	return nil
}
