// Command crashsim runs the paper's consensus algorithms on the
// concurrent crash-recovery runtime under a configurable adversary and
// reports the schedule, decisions and statistics.
//
// Usage:
//
//	crashsim -algo tnn -n 5 -nprime 3 -procs 3 -seeds 100 -crash 0.4
//	crashsim -algo cas -procs 4 -adversary storm
//	crashsim -algo tas -procs 2 -redecide     # Golab's separation, live
//	crashsim -algo tnn -seeds 5000 -parallel 8 -timeout 1m
//
// Adversaries: rr (round-robin, crash-free), random (seeded, -crash
// probability), storm (deterministic crash bursts), budget (the paper's
// E*_z discipline). Seeds are independent, so the sweep runs on a worker
// pool (-parallel); output stays in seed order regardless of width.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/adversary"
	"repro/internal/algo"
	"repro/internal/cli"
	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "crashsim:", err)
		os.Exit(1)
	}
}

// seedResult is one seed's aggregated outcome, rendered later in order.
type seedResult struct {
	steps, crashes int
	violation      bool
	flips          int
	output         string
	err            error
}

func run(args []string) error {
	fs := flag.NewFlagSet("crashsim", flag.ContinueOnError)
	algoName := fs.String("algo", "tnn", "algorithm: tnn | cas | tas")
	n := fs.Int("n", 5, "T_{n,n'} parameter n (tnn only)")
	nPrime := fs.Int("nprime", 3, "T_{n,n'} parameter n' (tnn only)")
	procs := fs.Int("procs", 3, "number of processes")
	seeds := fs.Int("seeds", 50, "number of adversary seeds to run")
	crashProb := fs.Float64("crash", 0.3, "crash probability (random/budget adversaries)")
	maxCrashes := fs.Int("maxcrashes", 4, "max crashes per process (random adversary)")
	advName := fs.String("adversary", "random", "adversary: rr | random | storm | budget")
	verbose := fs.Bool("v", false, "print every run's schedule")
	redecide := fs.Bool("redecide", false, "after each run, crash every process post-decision and re-run solo")
	ef := cli.AddEngineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// crashsim simulates algorithms; it runs no level decisions, so the
	// decider-oriented engine flags have nothing to act on here.
	if ef.CacheFile != "" {
		fmt.Fprintln(os.Stderr, "crashsim: note: -cache-file ignored (no level decisions to persist)")
	}
	if ef.ShardThreshold != 0 {
		fmt.Fprintln(os.Stderr, "crashsim: note: -shard-threshold ignored (no level checks to shard)")
	}

	var a *algo.Algorithm
	switch *algoName {
	case "tnn":
		if *nPrime >= *n || *nPrime < 1 {
			return fmt.Errorf("need n > n' >= 1")
		}
		if *procs > *nPrime {
			fmt.Printf("note: procs=%d exceeds n'=%d — the paper predicts failures\n",
				*procs, *nPrime)
		}
		a = algo.TnnRecoverable(*n, *nPrime)
	case "cas":
		a = algo.CASRecoverable()
	case "tas":
		if *procs != 2 {
			return fmt.Errorf("the tas algorithm is for exactly 2 processes")
		}
		a = algo.TASConsensus()
	default:
		return fmt.Errorf("unknown algorithm %q", *algoName)
	}

	newAdv := func(seed int64) sim.Adversary {
		switch *advName {
		case "rr":
			return &adversary.RoundRobin{}
		case "random":
			return adversary.NewRandom(seed, *crashProb, *maxCrashes)
		case "storm":
			targets := make([]int, *procs)
			for p := range targets {
				targets[p] = p
			}
			return &adversary.CrashStorm{Targets: targets, Times: *maxCrashes}
		case "budget":
			return adversary.NewBudgeted(seed, *procs, 1, *crashProb)
		default:
			return nil
		}
	}
	if newAdv(0) == nil {
		return fmt.Errorf("unknown adversary %q", *advName)
	}

	ctx, cancel := ef.Context()
	defer cancel()

	// Seeds are independent; sweep them on a worker pool and render the
	// collected per-seed output in seed order afterwards.
	runSeed := func(seed int64) seedResult {
		var r seedResult
		var b strings.Builder
		inputs := make([]int, *procs)
		for p := range inputs {
			inputs[p] = int(seed>>uint(p)) & 1
		}
		programs := make([]sim.Program, *procs)
		for p := range programs {
			programs[p] = a.Program(p)
		}
		res, err := sim.Run(a.Cells, programs, inputs, newAdv(seed), sim.Options{})
		if err != nil {
			r.err = fmt.Errorf("seed %d: %w", seed, err)
			return r
		}
		r.steps = res.Steps
		r.crashes = res.Crashes
		if *verbose {
			fmt.Fprintf(&b, "seed %-4d inputs %v: %s\n", seed, inputs, trace.Summary(res.Schedule))
			b.WriteString(trace.Render(res.Schedule, nil, res.Decisions))
		}
		if err := res.VerifyConsensus(inputs); err != nil {
			r.violation = true
			fmt.Fprintf(&b, "seed %-4d inputs %v: VIOLATION: %v\n", seed, inputs, err)
			fmt.Fprintf(&b, "  schedule: %s\n", res.Schedule)
		}
		if *redecide {
			for p := 0; p < *procs; p++ {
				if re := sim.RunSolo(res.Store, a.Program(p), p, inputs[p]); re != res.Decisions[p] {
					r.flips++
					fmt.Fprintf(&b, "seed %-4d: p%d decided %d, re-decided %d after crash-after-decide\n",
						seed, p, res.Decisions[p], re)
				}
			}
		}
		r.output = b.String()
		return r
	}

	if *seeds < 0 {
		*seeds = 0
	}
	// Stream results in seed order as the pool advances: a completed
	// seed is parked only until every earlier seed has printed, so
	// memory is bounded by the out-of-order window rather than the
	// whole sweep, and a violation at seed 3 is visible while late
	// seeds are still running.
	var (
		mu                                          sync.Mutex
		pending                                     = make(map[int]seedResult)
		next                                        int
		totalSteps, totalCrashes, violations, flips int
	)
	progressEvery := *seeds / 10
	if progressEvery < 1 {
		progressEvery = 1
	}
	finish := func(i int, r seedResult) {
		mu.Lock()
		defer mu.Unlock()
		pending[i] = r
		for {
			r, ok := pending[next]
			if !ok {
				return
			}
			delete(pending, next)
			next++
			if r.output != "" {
				fmt.Print(r.output)
			}
			totalSteps += r.steps
			totalCrashes += r.crashes
			if r.violation {
				violations++
			}
			flips += r.flips
			if ef.Progress && next%progressEvery == 0 {
				fmt.Fprintf(os.Stderr, "crashsim: %d/%d seeds done (%d violations)\n",
					next, *seeds, violations)
			}
		}
	}
	ran, err := pool.Run(ctx, *seeds, ef.Parallel, func(i int) error {
		r := runSeed(int64(i))
		if r.err != nil {
			return r.err
		}
		finish(i, r)
		return nil
	})
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil && ran < *seeds {
		fmt.Printf("note: stopped after %d/%d seeds (%v)\n", ran, *seeds, err)
	}
	fmt.Printf("\n%s, %d procs, %d seeds (%s adversary): %d steps, %d crashes, %d violations",
		a.Name, *procs, ran, *advName, totalSteps, totalCrashes, violations)
	if *redecide {
		fmt.Printf(", %d re-decision flips", flips)
	}
	fmt.Println()
	if violations > 0 || flips > 0 {
		os.Exit(2)
	}
	return nil
}
