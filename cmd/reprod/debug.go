package main

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/serve"
)

// testHookDebugServing, when non-nil, observes the debug listener's
// bound address (tests grab the ephemeral port through it).
var testHookDebugServing func(addr string)

// debugMux builds the private -debug-addr surface: the full
// net/http/pprof suite plus the Prometheus exposition and a health
// probe. The handlers are registered explicitly on a private mux — not
// http.DefaultServeMux — so nothing here leaks onto the public API
// listener, and nothing a third-party import registers globally leaks
// here.
func debugMux(srv *serve.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /metrics", srv.MetricsHandler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok"}` + "\n"))
	})
	return mux
}

// startDebugServer binds the -debug-addr listener and serves the debug
// mux on it. Profile endpoints stream for minutes, so the server sets
// no write timeout; it is shut down alongside the public server.
func startDebugServer(addr string, srv *serve.Server) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	hs := &http.Server{
		Handler:           debugMux(srv),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if testHookDebugServing != nil {
		testHookDebugServing(ln.Addr().String())
	}
	go hs.Serve(ln)
	return hs, nil
}
