package main

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// serveFor runs the server with args plus a run deadline, invoking fn
// once the listener is up, and returns run's error.
func serveFor(t *testing.T, args []string, d time.Duration, fn func(base string)) error {
	t.Helper()
	addrc := make(chan string, 1)
	testHookServing = func(addr string) { addrc <- addr }
	defer func() { testHookServing = nil }()

	done := make(chan error, 1)
	go func() { done <- run(append(args, "-addr", "127.0.0.1:0", "-timeout", d.String())) }()
	select {
	case addr := <-addrc:
		fn("http://" + addr)
	case err := <-done:
		t.Fatalf("server exited before listening: %v", err)
	}
	select {
	case err := <-done:
		return err
	case <-time.After(d + 10*time.Second):
		t.Fatal("server did not exit at its -timeout")
		return nil
	}
}

func TestServeAndShutdown(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "decisions")
	err := serveFor(t, []string{"-cache-file", cache, "-max-n", "3"}, 2*time.Second, func(base string) {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatalf("healthz: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("healthz = %d", resp.StatusCode)
		}

		resp, err = http.Post(base+"/v1/analyze", "application/json", strings.NewReader(`{"type":"tas"}`))
		if err != nil {
			t.Fatalf("analyze: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("analyze = %d", resp.StatusCode)
		}
		var body struct {
			Analysis struct {
				ConsensusNumber string `json:"consensusNumber"`
			} `json:"analysis"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		if body.Analysis.ConsensusNumber != "2" {
			t.Errorf("tas consensus number = %q, want 2", body.Analysis.ConsensusNumber)
		}
	})
	// The -timeout deadline ends the run through the graceful path.
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-max-n", "1"},
		{"-addr", "not an address"},
		{"unexpected-positional"},
		{"-cache-file", "/nonexistent-dir/sub/decisions"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}
