package main

import (
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// serveFor runs the server with args plus a run deadline, invoking fn
// once the listener is up, and returns run's error.
func serveFor(t *testing.T, args []string, d time.Duration, fn func(base string)) error {
	t.Helper()
	addrc := make(chan string, 1)
	testHookServing = func(addr string) { addrc <- addr }
	defer func() { testHookServing = nil }()

	done := make(chan error, 1)
	go func() { done <- run(append(args, "-addr", "127.0.0.1:0", "-timeout", d.String())) }()
	select {
	case addr := <-addrc:
		fn("http://" + addr)
	case err := <-done:
		t.Fatalf("server exited before listening: %v", err)
	}
	select {
	case err := <-done:
		return err
	case <-time.After(d + 10*time.Second):
		t.Fatal("server did not exit at its -timeout")
		return nil
	}
}

func TestServeAndShutdown(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "decisions")
	err := serveFor(t, []string{"-cache-file", cache, "-max-n", "3"}, 2*time.Second, func(base string) {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatalf("healthz: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("healthz = %d", resp.StatusCode)
		}

		resp, err = http.Post(base+"/v1/analyze", "application/json", strings.NewReader(`{"type":"tas"}`))
		if err != nil {
			t.Fatalf("analyze: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("analyze = %d", resp.StatusCode)
		}
		var body struct {
			Analysis struct {
				ConsensusNumber string `json:"consensusNumber"`
			} `json:"analysis"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		if body.Analysis.ConsensusNumber != "2" {
			t.Errorf("tas consensus number = %q, want 2", body.Analysis.ConsensusNumber)
		}

		// Batched model checking over a shared exploration graph.
		resp, err = http.Post(base+"/v1/check", "application/json", strings.NewReader(
			`{"protocol":"cas-wf:2","requests":[{"inputs":[0,1]},{"inputs":[0,1]}]}`))
		if err != nil {
			t.Fatalf("check: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("check = %d", resp.StatusCode)
		}
		var check struct {
			Results []struct {
				OK    bool   `json:"ok"`
				Error string `json:"error"`
			} `json:"results"`
			Graph struct {
				Reused uint64 `json:"reused"`
			} `json:"graph"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&check); err != nil {
			t.Fatal(err)
		}
		if len(check.Results) != 2 || !check.Results[0].OK || !check.Results[1].OK {
			t.Errorf("check results wrong: %+v", check.Results)
		}
		if check.Graph.Reused == 0 {
			t.Errorf("identical check requests reported no graph reuse")
		}

		// Prometheus export.
		resp, err = http.Get(base + "/metrics")
		if err != nil {
			t.Fatalf("metrics: %v", err)
		}
		defer resp.Body.Close()
		var metrics strings.Builder
		if _, err := io.Copy(&metrics, resp.Body); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(metrics.String(), `reprod_requests_total{endpoint="check",code="2xx"} 1`) {
			t.Errorf("metrics missing check counter:\n%s", metrics.String())
		}
	})
	// The -timeout deadline ends the run through the graceful path.
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestAutoCompaction runs the server with a fast -compact-every against
// a real cache file: decisions computed for an analyze request must be
// folded into a snapshot by the periodic compactor while requests are
// still being served, and the shutdown path must drain cleanly.
func TestAutoCompaction(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "decisions")
	err := serveFor(t, []string{"-cache-file", cache, "-max-n", "2", "-compact-every", "50ms"},
		2*time.Second, func(base string) {
			resp, err := http.Post(base+"/v1/analyze", "application/json", strings.NewReader(`{"type":"tas"}`))
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("analyze = %d", resp.StatusCode)
			}
			// Wait out at least one compaction tick, then confirm the
			// snapshot exists via stats.
			deadline := time.Now().Add(time.Second)
			for {
				resp, err := http.Get(base + "/v1/stats")
				if err != nil {
					t.Fatalf("stats: %v", err)
				}
				var stats struct {
					Store *struct {
						SnapshotBytes int64 `json:"snapshotBytes"`
					} `json:"store"`
				}
				err = json.NewDecoder(resp.Body).Decode(&stats)
				resp.Body.Close()
				if err != nil {
					t.Fatal(err)
				}
				if stats.Store != nil && stats.Store.SnapshotBytes > 0 {
					return
				}
				if time.Now().After(deadline) {
					t.Fatal("periodic compaction never produced a snapshot")
				}
				time.Sleep(20 * time.Millisecond)
			}
		})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestCompactOnDemand drives POST /v1/compact through the real binary
// wiring (store + serve + shutdown flush).
func TestCompactOnDemand(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "decisions")
	err := serveFor(t, []string{"-cache-file", cache, "-max-n", "2"}, 2*time.Second, func(base string) {
		resp, err := http.Post(base+"/v1/analyze", "application/json", strings.NewReader(`{"type":"tas"}`))
		if err != nil {
			t.Fatalf("analyze: %v", err)
		}
		resp.Body.Close()
		resp, err = http.Post(base+"/v1/compact", "application/json", nil)
		if err != nil {
			t.Fatalf("compact: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compact = %d", resp.StatusCode)
		}
		var body struct {
			Compacted bool `json:"compacted"`
			Store     struct {
				SnapshotBytes int64 `json:"snapshotBytes"`
			} `json:"store"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		if !body.Compacted || body.Store.SnapshotBytes == 0 {
			t.Fatalf("compact response: %+v", body)
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-max-n", "1"},
		{"-addr", "not an address"},
		{"unexpected-positional"},
		{"-cache-file", "/nonexistent-dir/sub/decisions"},
		{"-max-jobs", "0"},
		{"-max-jobs", "-3"},
		{"-job-queue", "0"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

// TestDebugListener runs the server with -debug-addr and checks the
// private surface: pprof index and profile endpoints answer, /metrics
// serves the exposition — and none of it is reachable on the public
// listener.
func TestDebugListener(t *testing.T) {
	dbgc := make(chan string, 1)
	testHookDebugServing = func(addr string) { dbgc <- addr }
	defer func() { testHookDebugServing = nil }()

	err := serveFor(t, []string{"-max-n", "2", "-debug-addr", "127.0.0.1:0"}, 2*time.Second,
		func(base string) {
			var dbg string
			select {
			case addr := <-dbgc:
				dbg = "http://" + addr
			case <-time.After(5 * time.Second):
				t.Fatal("debug listener never came up")
			}
			for path, want := range map[string]string{
				"/debug/pprof/":        "goroutine",
				"/debug/pprof/cmdline": "reprod",
				"/metrics":             "reprod_uptime_seconds",
				"/healthz":             "ok",
			} {
				resp, err := http.Get(dbg + path)
				if err != nil {
					t.Fatalf("debug %s: %v", path, err)
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), want) {
					t.Errorf("debug %s = %d, body missing %q", path, resp.StatusCode, want)
				}
			}
			// pprof must stay off the public listener.
			resp, err := http.Get(base + "/debug/pprof/")
			if err != nil {
				t.Fatalf("public pprof probe: %v", err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Errorf("public /debug/pprof/ = %d, want 404", resp.StatusCode)
			}
		})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}
