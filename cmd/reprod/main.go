// Command reprod serves the analysis engine over HTTP: a long-lived
// process answering type-analysis requests from one shared decision
// cache, optionally persisted to disk so decisions survive restarts.
//
// Usage:
//
//	reprod -addr :8080 -cache-file decisions.repro
//	reprod -addr 127.0.0.1:0 -max-n 5 -request-timeout 30s -max-concurrent 16
//
// Endpoints (see internal/serve):
//
//	POST /v1/analyze    {"type":"tnn:5,2","maxN":5}
//	POST /v1/batch      {"types":["tas","x4"],"maxN":4}
//	POST /v1/check      {"protocol":"cas-rec:2","requests":[{"inputs":[0,1],"crashQuota":[1,1]}]}
//	POST /v1/protocols  (register a JSON protocol descriptor; returns its structural fingerprint)
//	GET  /v1/protocols/{fingerprint}
//	POST /v1/jobs       {"kind":"check","check":{...}} (async; also "analyze", "theorem13")
//	GET  /v1/jobs/{id}  (DELETE cancels; /v1/jobs/{id}/events streams progress as SSE)
//	POST /v1/compact    (fold the -cache-file journal into a fresh snapshot)
//	GET  /healthz
//	GET  /v1/stats
//	GET  /metrics       (Prometheus text format)
//
// /v1/check model-checks a batch of requests against one registry-named
// protocol over a shared exploration graph: requests with the same
// inputs expand common state-space prefixes once (reuse shows up in
// /v1/stats under "graph"). Item errors and timeouts (timeoutMs) are
// per-item; -check-max-nodes caps one item's explored state space. The
// graphs live in a server-wide cache (-graph-cache-budget bounds its
// total node count), so repeated traffic for the same protocol and
// inputs walks warm graphs across requests — cache traffic shows up in
// /v1/stats under "graphCache". With -graph-dir set, expanded graphs
// additionally persist to disk: a cache miss warm-loads the previously
// expanded graph instead of re-expanding (so a restarted server serves
// known protocols with zero expansions), dirty graphs spill
// asynchronously, and shutdown flushes the remainder — persistence
// traffic shows up under "graphStore" and the reprod_graph_store_*
// metrics.
//
// POST /v1/protocols accepts a user-written state-machine descriptor
// (see internal/protodef), validates and compiles it, and registers it
// under its structural fingerprint — a name-independent hash of the
// reachable state machine (internal/model.Fingerprint). A descriptor
// structurally identical to a registry protocol gets the registry
// build's fingerprint, so fingerprint-addressed requests
// ("protocolFingerprint" in /v1/analyze, /v1/check, and job payloads)
// share cached exploration graphs with registry-named traffic.
//
// POST /v1/jobs runs analyze/check/theorem13 work asynchronously on a
// bounded worker pool: -max-jobs jobs run concurrently, -job-queue
// bounds the waiting queue (beyond it submissions answer 429), and
// GET /v1/jobs/{id}/events streams engine progress as Server-Sent
// Events until the job's terminal event. Shutdown drains jobs first —
// queued jobs cancel, streams end with a terminal event — before the
// HTTP listener and the decision journal close.
//
// With -cache-file set, -compact-every additionally folds the decision
// journal into a fresh snapshot on a timer (drain-safe: shutdown waits
// for an in-flight compaction before the final flush), and
// POST /v1/compact does the same on demand.
//
// Observability: every request is traced end to end. The server logs
// one structured JSON line per request to stderr (level via -log-level)
// carrying the request's X-Request-Id — client-supplied or generated,
// echoed on the response header and in error envelopes. Requests slower
// than -slow-request log a warn line with per-stage engine timings
// attached. Latency histograms per endpoint and per engine graph phase
// are exported on /metrics. With -debug-addr set, a private listener
// additionally serves the net/http/pprof suite and /metrics off the
// public mux (see the README's Observability section).
//
// The shared engine flags apply: -parallel sizes each request's worker
// pool, -shard-threshold tunes single-level sharding, -cache-file
// persists the decision cache (journal + snapshot), -timeout bounds the
// whole serving run (useful for smoke tests), and -progress logs cache
// and store statistics on shutdown. SIGINT/SIGTERM shut down
// gracefully: in-flight requests finish, then the journal is flushed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"slices"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/serve"
)

// testHookServing, when non-nil, observes the bound address once the
// listener is up (tests grab the ephemeral port through it).
var testHookServing func(addr string)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "reprod:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("reprod", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks one)")
	maxN := fs.Int("max-n", serve.DefaultMaxN, "default and ceiling for a request's analysis bound")
	reqTimeout := fs.Duration("request-timeout", serve.DefaultRequestTimeout,
		"per-request analysis deadline (negative = none)")
	maxConc := fs.Int("max-concurrent", 0, "concurrent analysis requests (0 = 2x -parallel)")
	batchLimit := fs.Int("batch-limit", serve.DefaultBatchLimit, "max type descriptors per batch request (also max items per check request)")
	checkMaxNodes := fs.Int("check-max-nodes", serve.DefaultCheckMaxNodes,
		"default and ceiling for one model-check item's explored state space, in nodes")
	compactEvery := fs.Duration("compact-every", 0,
		"fold the -cache-file journal into a fresh snapshot at this interval (0 = only on demand via POST /v1/compact)")
	ef := cli.AddEngineFlags(fs)
	jf := cli.AddJobFlags(fs)
	of := cli.AddObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *maxN < 2 {
		return fmt.Errorf("need -max-n >= 2, got %d", *maxN)
	}
	if err := jf.Validate(); err != nil {
		return err
	}
	// Validate -backend at startup: a typo should stop the server from
	// coming up, not answer invalid_argument on every request.
	if ef.Backend != "" && !slices.Contains(repro.Backends(), ef.Backend) {
		return fmt.Errorf("-backend: unknown backend %q (valid: %s)",
			ef.Backend, strings.Join(repro.Backends(), ", "))
	}
	if err := of.Validate(); err != nil {
		return err
	}
	logLevel, err := of.Level()
	if err != nil {
		return err
	}

	runCtx, cancelRun := ef.Context()
	defer cancelRun()
	ctx, stop := signal.NotifyContext(runCtx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	pc, err := ef.OpenCache()
	if err != nil {
		return err
	}
	cache := repro.NewCache()
	if pc != nil {
		cache = pc.Cache()
		fmt.Fprintf(os.Stderr, "reprod: cache file %s (%d decisions warm-loaded)\n",
			pc.Path(), pc.Stats().Loaded)
	}
	gs, err := ef.OpenGraphStore()
	if err != nil {
		return err
	}

	cfg := serve.Config{
		Cache:            cache,
		Store:            pc,
		MaxN:             *maxN,
		Parallelism:      ef.Parallel,
		ShardThreshold:   ef.ShardThreshold,
		DefaultBackend:   ef.Backend,
		RequestTimeout:   *reqTimeout,
		MaxConcurrent:    *maxConc,
		BatchLimit:       *batchLimit,
		CheckMaxNodes:    *checkMaxNodes,
		GraphCacheBudget: ef.GraphCacheBudget,
		JobWorkers:       jf.MaxJobs,
		JobQueue:         jf.JobQueue,
		Logger:           obs.NewLogger(os.Stderr, logLevel),
		SlowRequest:      of.SlowRequest,
	}
	if gs != nil {
		cfg.GraphStore = gs
		fmt.Fprintf(os.Stderr, "reprod: graph dir %s (exploration graphs persist across restarts)\n", ef.GraphDir)
	}
	srv := serve.New(cfg)

	// Periodic auto-compaction: fold the journal into a fresh snapshot on
	// a timer. The ticker goroutine signals compactorDone when it exits;
	// shutdown waits on it BEFORE closing the store, so a compaction can
	// never race the final flush-and-close (drain-safe by construction —
	// Compact itself is serialized with appends on the store's flusher).
	compactorDone := make(chan struct{})
	if *compactEvery > 0 && pc != nil {
		go func() {
			defer close(compactorDone)
			tick := time.NewTicker(*compactEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if err := pc.Compact(); err != nil {
						fmt.Fprintln(os.Stderr, "reprod: compact:", err)
					}
				}
			}
		}()
	} else {
		close(compactorDone)
	}
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}

	// The optional private debug listener: pprof + /metrics, off the
	// public mux. Closed last — profiling a hung drain is exactly when
	// it is needed.
	var dhs *http.Server
	if of.DebugAddr != "" {
		dhs, err = startDebugServer(of.DebugAddr, srv)
		if err != nil {
			if pc != nil {
				pc.Close()
			}
			return fmt.Errorf("debug listener: %w", err)
		}
		fmt.Fprintf(os.Stderr, "reprod: debug listener (pprof, metrics) on %s\n", of.DebugAddr)
		defer dhs.Close()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		if pc != nil {
			pc.Close()
		}
		return err
	}
	fmt.Fprintf(os.Stderr, "reprod: listening on %s\n", ln.Addr())
	if testHookServing != nil {
		testHookServing(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		drainCtx, cancelDrain := context.WithTimeout(context.Background(), 10*time.Second)
		srv.Shutdown(drainCtx) // no listener left, but jobs may still be running
		cancelDrain()
		if ferr := srv.FlushGraphs(); ferr != nil {
			fmt.Fprintln(os.Stderr, "reprod: flushing graphs:", ferr)
		}
		if pc != nil {
			cancelRun() // stops the auto-compactor before the store closes
			<-compactorDone
			pc.Close()
		}
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown, strictly ordered: (1) drain the async job
	// subsystem — queued jobs cancel, running jobs stop, every SSE event
	// stream ends with a terminal event; (2) then the HTTP server can
	// drain, since the now-closed streams release their handlers;
	// (3) only after all job and request work has stopped, wait out the
	// auto-compactor and flush the decision journal, so nothing appends
	// decisions after the final write. Unregister the signal handler
	// first so a second SIGINT/SIGTERM falls back to the default action
	// and can force-quit a drain that is taking too long.
	stop()
	fmt.Fprintln(os.Stderr, "reprod: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "reprod: draining jobs:", err)
	}
	shutErr := hs.Shutdown(shutCtx)
	if errors.Is(shutErr, context.DeadlineExceeded) {
		hs.Close()
	}
	// (4) With jobs drained and requests finished, no engine is growing a
	// graph: spill still-dirty exploration graphs to the -graph-dir store.
	if err := srv.FlushGraphs(); err != nil {
		fmt.Fprintln(os.Stderr, "reprod: flushing graphs:", err)
	}
	ef.Summary(cache)
	if pc != nil {
		<-compactorDone // ctx is done; wait out any in-flight compaction
		if err := pc.Close(); err != nil {
			return fmt.Errorf("flushing cache file: %w", err)
		}
	}
	return shutErr
}
