package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

func TestSingleExperimentText(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-only", "E1"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E1", "PASS", "1/1 experiments passed"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestMarkdown(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-only", "E1,E8", "-markdown"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"### E1", "### E8", "**Paper claim.**"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownFilter(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-only", "E99"}) }); err == nil {
		t.Error("unknown experiment id should fail")
	}
}
