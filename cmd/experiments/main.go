// Command experiments runs the reproduction suite E1..E11 (every figure,
// lemma and derived table documented in DESIGN.md) and prints
// paper-vs-measured rows. Its markdown output is the measured section of
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments                # run everything, text report
//	experiments -only E4,E5    # a subset
//	experiments -markdown      # EXPERIMENTS.md body
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	only := fs.String("only", "", "comma-separated experiment IDs to run (default all)")
	markdown := fs.Bool("markdown", false, "emit markdown instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var filter []string
	if *only != "" {
		filter = strings.Split(*only, ",")
	}
	outcomes := report.PaperSuite().RunAll(filter)
	if len(outcomes) == 0 {
		return fmt.Errorf("no experiments matched %q (have %v)",
			*only, report.PaperSuite().IDs())
	}
	report.SortByID(outcomes)
	if *markdown {
		fmt.Print(report.Markdown(outcomes))
	} else {
		fmt.Print(report.Render(outcomes))
	}
	for _, o := range outcomes {
		if !o.Pass {
			return fmt.Errorf("experiment %s failed", o.ID)
		}
	}
	return nil
}
