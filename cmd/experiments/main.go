// Command experiments runs the reproduction suite E1..E15 (every figure,
// lemma and derived table documented in DESIGN.md) and prints
// paper-vs-measured rows. Its markdown output is the measured section of
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments                # run everything, text report
//	experiments -only E4,E5    # a subset
//	experiments -markdown      # EXPERIMENTS.md body
//	experiments -parallel 8    # run experiments on a worker pool
//	experiments -timeout 2m    # best-effort bound: skips experiments
//	                           # not yet started when the deadline fires
//	                           # (a running experiment finishes)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	only := fs.String("only", "", "comma-separated experiment IDs to run (default all)")
	markdown := fs.Bool("markdown", false, "emit markdown instead of text")
	ef := cli.AddEngineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var filter []string
	if *only != "" {
		filter = strings.Split(*only, ",")
	}
	ctx, cancel := ef.Context()
	defer cancel()

	// The analysis-heavy experiments run on an engine so their level
	// decisions are memoized across experiments — and, with -cache-file,
	// across runs: a repeated (or deadline-cut and retried) sweep reuses
	// every decision already persisted. EngineOn keeps the engine quiet:
	// the suite's own per-experiment progress is the tool's voice.
	eng, closeCache, err := ef.EngineOn(ctx)
	if err != nil {
		return err
	}
	defer closeCache()
	defer ef.Summary(eng.Cache())

	var onDone func(report.Outcome)
	if ef.Progress {
		onDone = func(o report.Outcome) {
			status := "PASS"
			switch {
			case o.Skipped:
				status = "SKIP"
			case !o.Pass:
				status = "FAIL"
			}
			fmt.Fprintf(os.Stderr, "experiments: %s done [%s]\n", o.ID, status)
		}
	}
	outcomes := report.PaperSuiteWith(eng).RunAllOpts(ctx, filter, ef.Parallel, onDone)
	if len(outcomes) == 0 {
		return fmt.Errorf("no experiments matched %q (have %v)",
			*only, report.PaperSuite().IDs())
	}
	report.SortByID(outcomes)
	if *markdown {
		fmt.Print(report.Markdown(outcomes))
	} else {
		fmt.Print(report.Render(outcomes))
	}
	skipped := 0
	for _, o := range outcomes {
		if o.Skipped {
			skipped++
			continue
		}
		if !o.Pass {
			return fmt.Errorf("experiment %s failed", o.ID)
		}
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d experiment(s) skipped (deadline); the ones that ran all passed\n", skipped)
	}
	return nil
}
