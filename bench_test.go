package repro

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/adversary"
	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/decider"
	"repro/internal/discern"
	"repro/internal/engine"
	"repro/internal/graphstore"
	"repro/internal/lineariz"
	"repro/internal/model"
	"repro/internal/proto"
	"repro/internal/record"
	"repro/internal/sim"
	"repro/internal/types"
	"repro/internal/universal"
	"repro/internal/xsearch"
)

// The benchmarks below regenerate every experiment of DESIGN.md's
// per-experiment index (E1..E11) plus the ablations called out in
// DESIGN.md Section 5. They are organized one benchmark per experiment;
// sub-benchmarks sweep the experiment's parameters.

// BenchmarkE1Figure3 regenerates the Figure 3 state machine (type
// construction + transition-table rendering).
func BenchmarkE1Figure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ft := types.Tnn(5, 2)
		if len(ft.TransitionTable()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkE2TnnWaitFree model-checks the wait-free algorithm (Lemma 15
// lower bound) for a sweep of n.
func BenchmarkE2TnnWaitFree(b *testing.B) {
	for _, c := range []struct{ n, np int }{{3, 2}, {4, 2}, {5, 2}} {
		b.Run(fmt.Sprintf("n=%d", c.n), func(b *testing.B) {
			pr := proto.NewTnnWaitFree(c.n, c.np, c.n)
			inputs := make([]int, c.n)
			for p := range inputs {
				inputs[p] = p % 2
			}
			for i := 0; i < b.N; i++ {
				res, err := model.Check(pr, model.CheckOpts{Inputs: inputs})
				if err != nil || !res.OK() {
					b.Fatalf("check failed: %v %v", err, res.Violations)
				}
			}
		})
	}
}

// BenchmarkE3TnnUpperBound finds the violating execution for n+1
// processes (Lemma 15 upper bound).
func BenchmarkE3TnnUpperBound(b *testing.B) {
	pr := proto.NewTnnWaitFree(3, 2, 4)
	inputs := []int{1, 1, 1, 1}
	for i := 0; i < b.N; i++ {
		res, err := model.Check(pr, model.CheckOpts{Inputs: inputs})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Violations) == 0 {
			b.Fatal("expected a violation")
		}
	}
}

// BenchmarkE4TnnRecoverable model-checks the recoverable algorithm under
// crash budgets (Lemma 16 lower bound), sweeping the crash quota.
func BenchmarkE4TnnRecoverable(b *testing.B) {
	for _, crashes := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("crashes=%d", crashes), func(b *testing.B) {
			pr := proto.NewTnnRecoverable(4, 2, 2)
			quota := []int{crashes, crashes}
			for i := 0; i < b.N; i++ {
				res, err := model.Check(pr, model.CheckOpts{Inputs: []int{0, 1}, CrashQuota: quota})
				if err != nil || !res.OK() {
					b.Fatalf("check failed: %v", err)
				}
			}
		})
	}
}

// BenchmarkE5TnnRecoverableUpperBound finds the crash-burn counterexample
// for n'+1 processes (Lemma 16 upper bound).
func BenchmarkE5TnnRecoverableUpperBound(b *testing.B) {
	pr := proto.NewTnnRecoverable(4, 2, 3)
	quota := []int{2, 2, 2}
	for i := 0; i < b.N; i++ {
		res, err := model.Check(pr, model.CheckOpts{Inputs: []int{1, 0, 1}, CrashQuota: quota})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Violations) == 0 {
			b.Fatal("expected a violation")
		}
	}
}

// BenchmarkE6CriticalSearch measures the critical-execution search
// (Lemma 6a) plus Observation 11 classification.
func BenchmarkE6CriticalSearch(b *testing.B) {
	for _, n := range []int{2, 3} {
		b.Run(fmt.Sprintf("cas-n=%d", n), func(b *testing.B) {
			pr := proto.NewCASWaitFree(n)
			inputs := make([]int, n)
			for p := range inputs {
				inputs[p] = p % 2
			}
			for i := 0; i < b.N; i++ {
				res, err := model.Check(pr, model.CheckOpts{Inputs: inputs})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := model.FindCritical(res); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7Robustness analyzes product objects against components.
func BenchmarkE7Robustness(b *testing.B) {
	a1, a2 := types.TestAndSet(), types.Swap(2)
	for i := 0; i < b.N; i++ {
		p := types.Product(a1, a2)
		if _, err := core.Analyze(p, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8TAS runs Golab's separation: decider side and model-checker
// side.
func BenchmarkE8TAS(b *testing.B) {
	b.Run("deciders", func(b *testing.B) {
		ft := types.TestAndSet()
		for i := 0; i < b.N; i++ {
			if ok, _ := discern.IsNDiscerning(ft, 2); !ok {
				b.Fatal("TAS must be 2-discerning")
			}
			if ok, _ := record.IsNRecording(ft, 2); ok {
				b.Fatal("TAS must not be 2-recording")
			}
		}
	})
	b.Run("counterexample", func(b *testing.B) {
		pr := proto.NewTASConsensus()
		for i := 0; i < b.N; i++ {
			res, err := model.Check(pr, model.CheckOpts{Inputs: []int{1, 0}, CrashQuota: []int{2, 2}})
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Violations) == 0 {
				b.Fatal("expected violation")
			}
		}
	})
}

// BenchmarkE9XLike certifies the gap-2 families' signatures.
func BenchmarkE9XLike(b *testing.B) {
	b.Run("x4", func(b *testing.B) {
		ft := types.XFour()
		for i := 0; i < b.N; i++ {
			if !xsearch.HasXSignature(ft, 4) {
				b.Fatal("X4 signature lost")
			}
		}
	})
	b.Run("y5", func(b *testing.B) {
		ft := types.TnnReadable(5)
		for i := 0; i < b.N; i++ {
			if ok, _ := record.IsNRecording(ft, 4); !ok {
				b.Fatal("Y5 must be 4-recording")
			}
		}
	})
}

// BenchmarkE10Zoo regenerates the hierarchy table of the zoo.
func BenchmarkE10Zoo(b *testing.B) {
	zoo := []*Type{
		types.Register(2), types.TestAndSet(), types.Swap(2),
		types.FetchAdd(4), types.CompareAndSwap(2), types.StickyBit(),
	}
	for i := 0; i < b.N; i++ {
		for _, ft := range zoo {
			if _, err := core.Analyze(ft, 3); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE11Deciders measures decider cost growth with n — the
// "decidable in finite time" claim quantified.
func BenchmarkE11Deciders(b *testing.B) {
	ft := types.CompareAndSwap(2)
	for n := 2; n <= 6; n++ {
		b.Run(fmt.Sprintf("discern-n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if ok, _ := discern.IsNDiscerning(ft, n); !ok {
					b.Fatal("CAS must be discerning")
				}
			}
		})
		b.Run(fmt.Sprintf("record-n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if ok, _ := record.IsNRecording(ft, n); !ok {
					b.Fatal("CAS must be recording")
				}
			}
		})
	}
}

// BenchmarkE11SimThroughput measures simulator throughput (events/sec)
// under increasing crash rates.
func BenchmarkE11SimThroughput(b *testing.B) {
	for _, rate := range []float64{0, 0.2, 0.5} {
		b.Run(fmt.Sprintf("crash=%.1f", rate), func(b *testing.B) {
			a := algo.CASRecoverable()
			const procs = 4
			progs := make([]sim.Program, procs)
			for p := range progs {
				progs[p] = a.Program(p)
			}
			inputs := []int{0, 1, 0, 1}
			events := 0
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(a.Cells, progs, inputs,
					adversary.NewRandom(int64(i), rate, 4), sim.Options{})
				if err != nil {
					b.Fatal(err)
				}
				events += res.Steps + res.Crashes
			}
			b.ReportMetric(float64(events)/float64(b.N), "events/run")
		})
	}
}

// BenchmarkEngineAnalyzeParallel measures the engine's worker pool on
// multi-level types, sweeping pool widths: workers=1 is the serial
// baseline, wider pools quantify the speedup from running independent
// (property, n) level checks concurrently. Each iteration uses a fresh
// cache so the decider work is really re-done.
func BenchmarkEngineAnalyzeParallel(b *testing.B) {
	workerSet := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		workerSet = append(workerSet, n)
	}
	for _, tc := range []struct {
		name string
		t    *Type
		maxN int
	}{
		{"tnn52", types.Tnn(5, 2), 5},
		{"x5", types.XFive(), 5},
	} {
		for _, workers := range workerSet {
			b.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					eng := engine.New(
						engine.WithParallelism(workers),
						engine.WithMaxN(tc.maxN),
						engine.WithCache(engine.NewCache()),
					)
					if _, err := eng.Analyze(tc.t); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkBitsetLevelCheck compares the level-decider backends head to
// head on the hard negative instance: a full n=6 sweep over Tnn(5,2)
// (consensus number 5, so every operation assignment is checked and no
// witness short-circuits the enumeration), serial, both properties. The
// search/bitset ratio is backend=bitset's headline number; allocs/op
// (via -benchmem in CI) pins the bitset backend's scratch pooling — the
// packed-word sweep must not allocate per assignment.
func BenchmarkBitsetLevelCheck(b *testing.B) {
	ft := types.Tnn(5, 2)
	const n = 6
	ctx := context.Background()
	for _, name := range []string{"search", "bitset"} {
		d, err := decider.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("discern/backend="+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ok, _, err := d.IsNDiscerning(ctx, ft, n)
				if err != nil || ok {
					b.Fatalf("tnn(5,2) must not be 6-discerning: ok=%v err=%v", ok, err)
				}
			}
		})
		b.Run("record/backend="+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ok, _, err := d.IsNRecording(ctx, ft, n)
				if err != nil || ok {
					b.Fatalf("tnn(5,2) must not be 6-recording: ok=%v err=%v", ok, err)
				}
			}
		})
	}
}

// BenchmarkShardedLevelCheck measures sharding a SINGLE large-n level
// check — the workload PR 1's across-level pool cannot parallelize. The
// level is a full negative sweep (Tnn(5,2) has consensus number 5, so no
// 6-discerning witness exists and every operation assignment is
// checked), which makes the sharded work perfectly determined: shards=1
// is the serial baseline, shards=4 is the CI speedup gate (>1.5x on a
// 4-core runner), wider shard counts quantify the scaling headroom.
func BenchmarkShardedLevelCheck(b *testing.B) {
	ft := types.Tnn(5, 2)
	const n = 6
	shardSet := []int{1, 2, 4}
	if c := runtime.NumCPU(); c > 4 {
		shardSet = append(shardSet, c)
	}
	ctx := context.Background()
	for _, shards := range shardSet {
		b.Run(fmt.Sprintf("discern/shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ok, _, err := discern.ShardedIsNDiscerning(ctx, ft, n, shards, discern.ShardOptions{})
				if err != nil || ok {
					b.Fatalf("tnn(5,2) must not be 6-discerning: ok=%v err=%v", ok, err)
				}
			}
		})
	}
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("record/shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ok, _, err := record.ShardedIsNRecording(ctx, ft, n, shards, record.ShardOptions{})
				if err != nil || ok {
					b.Fatalf("tnn(5,2) must not be 6-recording: ok=%v err=%v", ok, err)
				}
			}
		})
	}
}

// BenchmarkShardedLevelCheckSteal is the scheduler ablation for the
// sharded level check: the work-stealing chunk queue versus the
// contiguous-range baseline on the same Tnn(5,2) n=6 negative instance.
// With contiguous ranges the uneven per-rank enumeration cost leaves
// some shards idle while others churn; the chunk queue rebalances, so
// steal/shards=k should scale strictly better than contiguous/shards=k
// for k > 1 while returning byte-identical results (difftest enforces
// the identity; this benchmark tracks the scaling gap).
func BenchmarkShardedLevelCheckSteal(b *testing.B) {
	ft := types.Tnn(5, 2)
	const n = 6
	shardSet := []int{2, 4}
	if c := runtime.NumCPU(); c > 4 {
		shardSet = append(shardSet, c)
	}
	ctx := context.Background()
	for _, shards := range shardSet {
		for _, contiguous := range []bool{false, true} {
			mode := "steal"
			if contiguous {
				mode = "contiguous"
			}
			b.Run(fmt.Sprintf("%s/shards=%d", mode, shards), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ok, _, err := discern.ShardedIsNDiscerning(ctx, ft, n, shards,
						discern.ShardOptions{Contiguous: contiguous})
					if err != nil || ok {
						b.Fatalf("tnn(5,2) must not be 6-discerning: ok=%v err=%v", ok, err)
					}
				}
			})
		}
	}
}

// BenchmarkGraphInternWarm measures the packed-word graph walk in
// isolation: one model.Graph is built and fully expanded by a priming
// Check, then every iteration re-walks the interned graph. No engine,
// cache, or event layer — allocs/op here is the floor the interning
// dictionary, open-addressed walk overlay, and pooled frontiers buy on
// the hot path (only the per-call Result and its arenas remain).
func BenchmarkGraphInternWarm(b *testing.B) {
	pr := proto.NewCASWaitFree(2)
	inputs := []int{0, 1}
	g, err := model.NewGraph(pr, inputs)
	if err != nil {
		b.Fatal(err)
	}
	opts := model.CheckOpts{Inputs: inputs}
	if _, err := g.Check(opts); err != nil { // prime: expand every node
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Check(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphCacheCheckBatch measures the engine-resident graph
// cache: one batch of mixed-quota check requests against one protocol,
// cold (a fresh engine per iteration: every graph is built and expanded
// from scratch) versus warm (one long-lived engine: after the first
// iteration every walk runs over a fully expanded cached graph and
// expands nothing). The warm/cold ratio is the cross-call amortization
// the cache buys; allocs/op on the warm path is the hot-walk allocation
// figure the 128-bit fingerprint index and pooled frontiers target.
func BenchmarkGraphCacheCheckBatch(b *testing.B) {
	// Four distinct input vectors on the 5-process wait-free protocol:
	// each is its own graph, so a cold batch pays four full state-space
	// expansions and a warm one pays none — the shape of repeated
	// /v1/check traffic against a long-lived server.
	pr := proto.NewTnnWaitFree(5, 2, 5)
	reqs := []engine.CheckRequest{
		{Inputs: []int{1, 0, 1, 0, 1}},
		{Inputs: []int{0, 1, 0, 1, 0}},
		{Inputs: []int{1, 1, 0, 0, 1}},
		{Inputs: []int{0, 0, 1, 1, 0}},
	}
	runBatch := func(b *testing.B, e *engine.Engine) {
		items, _, err := e.CheckBatch(pr, reqs)
		if err != nil {
			b.Fatal(err)
		}
		for i, it := range items {
			if it.Err != nil || !it.OK() {
				b.Fatalf("item %d failed: %v", i, it.Err)
			}
		}
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runBatch(b, engine.New(engine.WithParallelism(1)))
		}
	})
	b.Run("warm", func(b *testing.B) {
		e := engine.New(engine.WithParallelism(1))
		runBatch(b, e) // prime the graph cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runBatch(b, e)
		}
	})
}

// BenchmarkEngineCheckWarm pins the allocation cost of the warm Check
// hot path — a single request walking an already-expanded cached graph,
// the steady state of repeated /v1/check traffic. The instrumented
// variant runs the identical workload with engine metrics histograms
// attached; CI's alloc gate compares both against the baseline, so a
// change that makes observability allocate on the warm path fails the
// build rather than landing silently.
func BenchmarkEngineCheckWarm(b *testing.B) {
	pr := proto.NewCASWaitFree(2)
	req := engine.CheckRequest{Inputs: []int{0, 1}}
	run := func(b *testing.B, e *engine.Engine) {
		if _, err := e.Check(pr, req); err != nil { // prime the graph cache
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Check(pr, req); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("bare", func(b *testing.B) {
		run(b, engine.New(engine.WithParallelism(1)))
	})
	b.Run("instrumented", func(b *testing.B) {
		run(b, engine.New(engine.WithParallelism(1), engine.WithMetrics(engine.NewMetrics())))
	})
}

// BenchmarkGraphStoreWarmStart measures what graph persistence buys a
// restarted process: a fresh engine serving a known protocol by
// re-expanding the state space from scratch (cold — the no-store
// restart cost) versus by importing the previously spilled graph from
// the on-disk store and walking it without a single expansion (warm).
// Every iteration builds a fresh cache (and, warm, a fresh store handle
// over the same directory), so the disk load and snapshot import are
// inside the measurement — the warm/cold ratio is the restart speedup.
func BenchmarkGraphStoreWarmStart(b *testing.B) {
	pr := proto.NewCASRecoverable(2)
	reqs := []engine.CheckRequest{
		{Inputs: []int{0, 1}},
		{Inputs: []int{0, 1}, CrashQuota: []int{1, 1}},
	}
	runChecks := func(b *testing.B, e *engine.Engine) {
		for _, req := range reqs {
			if _, err := e.Check(pr, req); err != nil {
				b.Fatal(err)
			}
		}
	}
	dir := b.TempDir()
	{
		// Populate the store once: one expansion, flushed to disk.
		gs, err := graphstore.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		gc := engine.NewGraphCache(0)
		gc.SetStore(gs)
		runChecks(b, engine.New(engine.WithGraphCache(gc), engine.WithParallelism(1)))
		if err := gc.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runChecks(b, engine.New(engine.WithParallelism(1)))
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			gs, err := graphstore.Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			gc := engine.NewGraphCache(0)
			gc.SetStore(gs)
			runChecks(b, engine.New(engine.WithGraphCache(gc), engine.WithParallelism(1)))
			st := gc.Stats()
			if st.Store == nil || st.Store.Loads == 0 || st.Store.Errors > 0 {
				b.Fatalf("warm restart did not load from the store: %+v", st.Store)
			}
		}
	})
}

// BenchmarkTheorem13Graph measures graph-backed Theorem 13 chains: the
// construction walking one shared exploration graph for all stages
// (shared, the default) versus re-exploring each stage on a one-shot
// graph (per-stage, the pre-cache behavior, kept as the
// FreshGraphPerStage ablation). The tas-reg case is the multi-walk
// chain: its colliding stage forces a second full exploration, which the
// shared graph serves without expanding a single new node.
func BenchmarkTheorem13Graph(b *testing.B) {
	cases := []struct {
		name   string
		pr     model.Protocol
		inputs []int
		quota  []int
		mayErr bool
	}{
		{"cas-rec2", proto.NewCASRecoverable(2), []int{1, 0}, []int{0, 2}, false},
		{"tnn-rec42", proto.NewTnnRecoverable(4, 2, 2), []int{1, 0}, []int{0, 2}, false},
		// tas-reg's chain legitimately dies at stage 1 (wait-free-only
		// algorithms are not crash-tolerant — that is Golab's
		// separation); both variants still pay stage 1's exploration,
		// which is the interesting one to amortize.
		{"tas-reg", proto.NewTASConsensus(), []int{1, 0}, []int{2, 2}, true},
	}
	for _, c := range cases {
		b.Run(c.name+"/shared", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				chain, err := model.Theorem13ChainOpts(c.pr, c.inputs, c.quota, model.ChainOpts{})
				if err != nil && !c.mayErr {
					b.Fatalf("chain failed: %v", err)
				}
				if len(chain.Stages) == 0 {
					b.Fatal("no stages")
				}
			}
		})
		b.Run(c.name+"/per-stage", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				chain, err := model.Theorem13ChainOpts(c.pr, c.inputs, c.quota,
					model.ChainOpts{FreshGraphPerStage: true})
				if err != nil && !c.mayErr {
					b.Fatalf("chain failed: %v", err)
				}
				if len(chain.Stages) == 0 {
					b.Fatal("no stages")
				}
			}
		})
	}
}

// BenchmarkEngineAnalyzeCached measures a warm-cache Analyze — the
// steady-state cost when a long-lived engine re-serves a known type.
func BenchmarkEngineAnalyzeCached(b *testing.B) {
	eng := engine.New(engine.WithMaxN(5))
	if _, err := eng.Analyze(types.Tnn(5, 2)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Analyze(types.Tnn(5, 2)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md Section 5) ---

// BenchmarkAblationDiscernNaive compares the naive operation-assignment
// enumeration against the symmetry-reduced default.
func BenchmarkAblationDiscernNaive(b *testing.B) {
	ft := types.Tnn(4, 2)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			discern.IsNDiscerningOpt(ft, 4, discern.Options{Naive: true})
		}
	})
	b.Run("reduced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			discern.IsNDiscerningOpt(ft, 4, discern.Options{})
		}
	})
}

// BenchmarkAblationRecordNaive is the recording-side ablation.
func BenchmarkAblationRecordNaive(b *testing.B) {
	ft := types.Tnn(4, 2)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			record.IsNRecordingOpt(ft, 4, record.Options{Naive: true})
		}
	})
	b.Run("reduced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			record.IsNRecordingOpt(ft, 4, record.Options{})
		}
	})
}

// BenchmarkAblationCrashBudget measures how the explored state space and
// cost grow with the crash quota (the engine-level analogue of choosing z
// in E*_z).
func BenchmarkAblationCrashBudget(b *testing.B) {
	for _, q := range []int{0, 1, 2, 3} {
		b.Run(fmt.Sprintf("quota=%d", q), func(b *testing.B) {
			pr := proto.NewTnnRecoverable(5, 3, 3)
			quota := []int{0, q, q}
			nodes := 0
			for i := 0; i < b.N; i++ {
				res, err := model.Check(pr, model.CheckOpts{Inputs: []int{0, 1, 1}, CrashQuota: quota})
				if err != nil {
					b.Fatal(err)
				}
				nodes = res.Nodes
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

// BenchmarkAblationPrefixSharing measures the shared-prefix DFS of the
// deciders against full per-schedule re-simulation.
func BenchmarkAblationPrefixSharing(b *testing.B) {
	ft := types.XFour()
	b.Run("discern-shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			discern.IsNDiscerningOpt(ft, 4, discern.Options{})
		}
	})
	b.Run("discern-noshare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			discern.IsNDiscerningOpt(ft, 4, discern.Options{NoPrefixSharing: true})
		}
	})
	b.Run("record-shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			record.IsNRecordingOpt(ft, 3, record.Options{})
		}
	})
	b.Run("record-noshare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			record.IsNRecordingOpt(ft, 3, record.Options{NoPrefixSharing: true})
		}
	})
}

// BenchmarkE12Universal measures the recoverable universal construction:
// operation latency without crashes and with a crash/recover on every
// invocation.
func BenchmarkE12Universal(b *testing.B) {
	ft := types.FetchAdd(64)
	faa, _ := ft.OpByName("FAA")
	b.Run("invoke", func(b *testing.B) {
		u, err := universal.New(ft, 0, 2)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := u.Invoke(0, faa); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("crash-recover", func(b *testing.B) {
		u, err := universal.New(ft, 0, 2)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			_, err := u.InvokeSteps(0, faa, 2) // crash mid-drive
			for err == universal.ErrCrashed {
				_, _, err = u.RecoverSteps(0, 16)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkXSearch measures the candidate sampling + signature check
// pipeline that discovered X4 and X5.
func BenchmarkXSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := xsearch.Sample(int64(i), 5)
		xsearch.HasXSignature(t, 4)
	}
}

// BenchmarkE13Chain measures the mechanized Theorem 13 construction.
func BenchmarkE13Chain(b *testing.B) {
	for _, c := range []struct {
		name  string
		pr    model.Protocol
		procs int
	}{
		{"cas2", proto.NewCASRecoverable(2), 2},
		{"tnn42", proto.NewTnnRecoverable(4, 2, 2), 2},
	} {
		b.Run(c.name, func(b *testing.B) {
			inputs := make([]int, c.procs)
			inputs[0] = 1
			quota := make([]int, c.procs)
			for p := 1; p < c.procs; p++ {
				quota[p] = 2
			}
			for i := 0; i < b.N; i++ {
				chain, err := model.Theorem13Chain(c.pr, inputs, quota)
				if err != nil || !chain.Recording {
					b.Fatalf("chain failed: %v", err)
				}
			}
		})
	}
}

// BenchmarkLineariz measures the Wing-Gong checker on store histories of
// growing size.
func BenchmarkLineariz(b *testing.B) {
	ft := types.FetchAdd(64)
	faa, _ := ft.OpByName("FAA")
	for _, size := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("ops=%d", size), func(b *testing.B) {
			// A sequential (worst case for memo reuse is concurrent, but
			// deterministic input keeps the bench stable) history.
			ops := make([]lineariz.Op, size)
			for i := range ops {
				ops[i] = lineariz.Op{
					ID: i + 1, Op: faa, Resp: Response(i % 64),
					Invoke: int64(2 * i), Respond: int64(2*i + 1),
				}
			}
			h := lineariz.History{Type: ft, Init: 0, Ops: ops}
			for i := 0; i < b.N; i++ {
				res, err := lineariz.Check(h)
				if err != nil || !res.Linearizable {
					b.Fatal("history rejected")
				}
			}
		})
	}
}

// BenchmarkModelStateSpace measures how the explored state space grows
// with the process count for the recoverable CAS protocol.
func BenchmarkModelStateSpace(b *testing.B) {
	for n := 2; n <= 4; n++ {
		b.Run(fmt.Sprintf("procs=%d", n), func(b *testing.B) {
			pr := proto.NewCASRecoverable(n)
			inputs := make([]int, n)
			inputs[0] = 1
			quota := make([]int, n)
			for p := 1; p < n; p++ {
				quota[p] = 1
			}
			nodes := 0
			for i := 0; i < b.N; i++ {
				res, err := model.Check(pr, model.CheckOpts{Inputs: inputs, CrashQuota: quota})
				if err != nil {
					b.Fatal(err)
				}
				nodes = res.Nodes
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}
