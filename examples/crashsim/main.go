// Crash-recovery simulation at scale: runs the recoverable consensus
// algorithms under thousands of random crash-injecting adversaries and
// reports statistics, then demonstrates Golab's separation live: the
// classic test-and-set consensus algorithm decides correctly, but a
// process that crashes AFTER deciding and recovers re-decides a different
// value over the same non-volatile memory.
//
//	go run ./examples/crashsim
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/adversary"
	"repro/internal/algo"
	"repro/internal/sim"
)

func main() {
	fmt.Println("=== Recoverable consensus under crash storms ===")
	fmt.Println()
	for _, tc := range []struct {
		alg   *algo.Algorithm
		procs int
	}{
		{algo.TnnRecoverable(5, 3), 3},
		{algo.TnnRecoverable(6, 4), 4},
		{algo.CASRecoverable(), 4},
	} {
		runs, steps, crashes := 0, 0, 0
		for seed := int64(0); seed < 500; seed++ {
			inputs := make([]int, tc.procs)
			for p := range inputs {
				inputs[p] = int(seed>>uint(p)) & 1
			}
			progs := make([]sim.Program, tc.procs)
			for p := range progs {
				progs[p] = tc.alg.Program(p)
			}
			res, err := sim.Run(tc.alg.Cells, progs, inputs,
				adversary.NewRandom(seed, 0.4, 5), sim.Options{})
			if err != nil {
				log.Fatal(err)
			}
			if err := res.VerifyConsensus(inputs); err != nil {
				log.Fatalf("%s seed %d: %v", tc.alg.Name, seed, err)
			}
			runs++
			steps += res.Steps
			crashes += res.Crashes
		}
		fmt.Printf("%-24s %d procs: %4d runs, %5d steps, %5d crashes injected — all consistent\n",
			tc.alg.Name, tc.procs, runs, steps, crashes)
	}

	fmt.Println()
	fmt.Println("=== Golab's separation, live (Experiment E8) ===")
	fmt.Println()
	tas := algo.TASConsensus()
	inputs := []int{1, 0}
	progs := []sim.Program{tas.Program(0), tas.Program(1)}
	res, err := sim.Run(tas.Cells, progs, inputs, &adversary.RoundRobin{}, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash-free run: p0 decided %d, p1 decided %d (inputs %v) — correct\n",
		res.Decisions[0], res.Decisions[1], inputs)

	// Now crash p0 after it decided: its local state is gone, the TAS bit
	// and registers persist. It re-runs from scratch.
	re := sim.RunSolo(res.Store, tas.Program(0), 0, inputs[0])
	fmt.Printf("p0 crashes after deciding and re-runs: it now decides %d\n", re)
	if re != res.Decisions[0] {
		fmt.Println()
		fmt.Println("p0 contradicted its own earlier output: the winner lost its own")
		fmt.Println("test-and-set on recovery and adopted the other process's value.")
		fmt.Println("No test-and-set + register algorithm can avoid this (Golab):")
		fmt.Println("TAS has consensus number 2 but recoverable consensus number 1,")
		fmt.Println("matching the deciders (2-discerning, not 2-recording).")
	}

	// Cross-check the live behavior against the engine's static analysis:
	// the deciders predict exactly the separation the simulation showed.
	eng := repro.New(repro.WithMaxN(3))
	a, err := eng.Analyze(repro.TestAndSet())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("engine cross-check: %s\n", a.Summary())
}
