// The T_{n,n'} tour (Section 4 of the paper): prints the Figure 3 state
// machine, runs the wait-free algorithm for n processes and the
// recoverable algorithm for n' processes under a crash-injecting
// adversary, and then shows both upper bounds failing: the wait-free
// algorithm with n+1 processes and the recoverable algorithm with n'+1
// processes (the crash-burn adversary of Lemma 16). The model-checking
// runs go through the engine facade, with a deadline guarding the
// exponential explorations.
//
//	go run ./examples/tnn
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/adversary"
	"repro/internal/algo"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/types"
)

const (
	n      = 5
	nPrime = 2
)

func main() {
	ft := types.Tnn(n, nPrime)
	fmt.Printf("=== Figure 3: the state machine of %s ===\n\n", ft.Name())
	fmt.Print(ft.TransitionTable())

	fmt.Printf("\n=== Wait-free consensus among n=%d processes (Lemma 15) ===\n\n", n)
	waitFree := algo.TnnWaitFree(n, nPrime)
	inputs := []int{1, 0, 0, 1, 0}
	progs := make([]sim.Program, n)
	for p := range progs {
		progs[p] = waitFree.Program(p)
	}
	res, err := sim.Run(waitFree.Cells, progs, inputs, &adversary.RoundRobin{}, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(trace.Render(res.Schedule, nil, res.Decisions))
	if err := res.VerifyConsensus(inputs); err != nil {
		log.Fatal(err)
	}
	fmt.Println("agreement + validity hold: everyone decided the first mover's input")

	fmt.Printf("\n=== Recoverable consensus among n'=%d processes (Lemma 16) ===\n\n", nPrime)
	rec := algo.TnnRecoverable(n, nPrime)
	rinputs := []int{1, 0}
	rprogs := []sim.Program{rec.Program(0), rec.Program(1)}
	res, err = sim.Run(rec.Cells, rprogs, rinputs, adversary.NewRandom(42, 0.35, 3), sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(trace.Render(res.Schedule, nil, res.Decisions))
	fmt.Println(trace.Summary(res.Schedule))
	if err := res.VerifyConsensus(rinputs); err != nil {
		log.Fatal(err)
	}
	fmt.Println("agreement + validity hold despite the crashes")

	fmt.Printf("\n=== Upper bounds: where the algorithms break ===\n\n")

	// The explorations below are exponential in the process count; an
	// engine with a deadline keeps them bounded.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	eng := repro.New(repro.WithContext(ctx))

	// Wait-free with n+1 processes: the model checker finds a violation.
	wf := proto.NewTnnWaitFree(n, nPrime, n+1)
	in := make([]int, n+1)
	for p := range in {
		in[p] = 1
	}
	chk, err := eng.Check(wf, repro.CheckRequest{Inputs: in})
	if err != nil {
		log.Fatal(err)
	}
	if len(chk.Violations) > 0 {
		fmt.Printf("wait-free with %d processes: %s\n", n+1, chk.Violations[0])
	}

	// Recoverable with n'+1 processes: the crash-burn adversary drives
	// the counter past n' and a recovering process reads bot.
	rp := proto.NewTnnRecoverable(n, nPrime, nPrime+1)
	rin := []int{1, 0, 1}
	chk, err = eng.Check(rp, repro.CheckRequest{Inputs: rin, CrashQuota: []int{2, 2, 2}})
	if err != nil {
		log.Fatal(err)
	}
	if len(chk.Violations) > 0 {
		fmt.Printf("recoverable with %d processes: %s\n", nPrime+1, chk.Violations[0])
	}
	fmt.Printf("\nconclusion: cons(T[%d,%d]) = %d and rcons(T[%d,%d]) = %d, as the paper proves.\n",
		n, nPrime, n, n, nPrime, nPrime)
}
