// Quickstart: define a custom shared object type, analyze it on the
// concurrent engine, and read off its position in Herlihy's consensus
// hierarchy and Golab's recoverable consensus hierarchy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro"
)

func main() {
	// A "fetch-and-double" object over Z_7: FAD returns the old value and
	// doubles it mod 7; Read returns the current value. Is it stronger
	// than a register? Can it survive crash-recovery?
	b := repro.NewType("fetch-and-double[7]")
	names := make([]string, 7)
	for i := range names {
		names[i] = fmt.Sprintf("%d", i)
	}
	b.Values(names...)
	b.Ops("FAD", "read")
	for v := 0; v < 7; v++ {
		b.Transition(names[v], "FAD", repro.Response(v), names[(2*v)%7])
	}
	b.ReadOp("read", 100)
	fad, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// One engine, many workloads: level checks for all three types run
	// concurrently on a worker pool, and every sub-decision is memoized.
	eng := repro.New(
		repro.WithParallelism(runtime.NumCPU()),
		repro.WithMaxN(5),
	)
	x4, err := eng.Resolve("x4") // registry descriptors work too
	if err != nil {
		log.Fatal(err)
	}
	analyses, err := eng.AnalyzeAll([]*repro.Type{fad, repro.TestAndSet(), x4})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range analyses {
		fmt.Println(a.Summary())
		fmt.Print(a.Spectrum())
		fmt.Println()
	}

	// Re-analyzing a type is ~free: the engine's cache already holds
	// every level decision.
	if _, err := eng.Analyze(fad); err != nil {
		log.Fatal(err)
	}
	hits, misses, _ := eng.Cache().Stats()
	fmt.Printf("cache after re-analysis: %d hits, %d misses\n\n", hits, misses)

	// The individual deciders expose the witnesses behind the numbers.
	if ok, w := repro.IsNDiscerning(fad, 2); ok {
		fmt.Printf("fetch-and-double is 2-discerning: %s\n", w)
	}
	if ok, _ := repro.IsNRecording(fad, 2); !ok {
		fmt.Println("fetch-and-double is NOT 2-recording: like test-and-set and")
		fmt.Println("fetch-and-add, it loses its consensus power under crash-recovery")
		fmt.Println("(Theorem 14: recoverable consensus number 1).")
	}
}
