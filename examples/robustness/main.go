// Robustness (Theorem 14): combining readable deterministic objects never
// yields more recoverable consensus power than the strongest individual
// type. This example measures the recording level of product objects
// against their components, and then probes the paper's OPEN PROBLEM:
// for non-readable components the recording level can exceed every
// component's level, so nothing like Theorem 14 is known there.
//
// The analyses run on one shared-cache engine: each component type is
// analyzed once even though it appears in several products, and the
// cache statistics at the end show how much the sweep reused.
//
//	go run ./examples/robustness
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro"
	"repro/internal/core"
)

func main() {
	const maxN = 3

	eng := repro.New(
		repro.WithParallelism(runtime.NumCPU()),
		repro.WithMaxN(maxN),
	)

	level := func(ft *repro.Type) string {
		a, err := eng.Analyze(ft)
		if err != nil {
			log.Fatal(err)
		}
		return core.LevelString(a.RecoverableConsensusNumber, maxN)
	}

	fmt.Println("=== Theorem 14 in action: readable components ===")
	fmt.Println()
	pairs := [][2]*repro.Type{
		{repro.TestAndSet(), repro.TestAndSet()},
		{repro.TestAndSet(), repro.Swap(2)},
		{repro.Swap(2), repro.FetchAdd(3)},
		{repro.TestAndSet(), repro.StickyBit()},
		{repro.Register(2), repro.Register(2)},
	}
	fmt.Printf("%-18s %-18s %10s %10s %12s\n", "A", "B", "rec(A)", "rec(B)", "rec(AxB)")
	for _, pc := range pairs {
		fmt.Printf("%-18s %-18s %10s %10s %12s\n",
			pc[0].Name(), pc[1].Name(), level(pc[0]), level(pc[1]),
			level(repro.Product(pc[0], pc[1])))
	}
	fmt.Println()
	fmt.Println("In every row the product's recording level is bounded by the")
	fmt.Println("strongest component — you cannot combine weak readable objects")
	fmt.Println("into a stronger recoverable-consensus primitive (Theorem 14).")

	fmt.Println()
	fmt.Println("=== The open problem: non-readable components (Section 5) ===")
	fmt.Println()
	q := repro.Queue(1)
	p := repro.Product(repro.TestAndSet(), q)
	fmt.Printf("recording level of queue[1] alone:        %s\n", level(q))
	fmt.Printf("recording level of test-and-set alone:    %s\n", level(repro.TestAndSet()))
	fmt.Printf("recording level of tas x queue[1]:        %s\n", level(p))
	fmt.Println()
	fmt.Println("The capacity-1 queue satisfies the n-recording DEFINITION at every n")
	fmt.Println("(its first enqueue freezes the winner), but it is not readable, so")
	fmt.Println("Theorem 14 does not convert that into recoverable consensus power —")
	fmt.Println("whether the hierarchy is robust for all deterministic types is the")
	fmt.Println("question the paper leaves open.")

	hits, misses, entries := eng.Cache().Stats()
	fmt.Println()
	fmt.Printf("engine cache over the whole sweep: %d hits, %d misses, %d distinct decisions\n",
		hits, misses, entries)
	fmt.Println("(repeated components cost nothing: identical types share one fingerprint)")
}
