// Universality (paper §1): recoverable consensus is universal — any
// object can be implemented in a recoverable wait-free manner from
// recoverable consensus objects and registers, with detectability: after
// a crash, a process can tell whether its interrupted operation took
// effect and recover its response.
//
// This example runs a recoverable, linearizable FIFO queue shared by four
// crash-prone processes. Operations are announced, agreed into a log via
// consensus cells (the role CAS plays in this repository's hierarchy
// analyses), and replayed; crashes are injected by bounding an
// invocation's shared-memory steps and the process then recovers.
//
//	go run ./examples/universal
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"

	"repro"
	"repro/internal/spec"
	"repro/internal/universal"
)

func main() {
	// The engine facade resolves registry descriptors; "queue:4" is the
	// bounded FIFO queue the universal construction wraps below.
	q, err := repro.Resolve("queue:4")
	if err != nil {
		log.Fatal(err)
	}
	u, err := universal.New(q, 0, 4)
	if err != nil {
		log.Fatal(err)
	}
	enq0, _ := q.OpByName("enq0")
	enq1, _ := q.OpByName("enq1")
	deq, _ := q.OpByName("deq")

	fmt.Println("four processes hammer a recoverable universal queue;")
	fmt.Println("every third invocation crashes mid-operation and recovers")
	fmt.Println()

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		crashes   int
		recovered int
	)
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			ops := []spec.Op{enq0, enq1, deq}
			for k := 0; k < 25; k++ {
				op := ops[rng.Intn(len(ops))]
				if k%3 == 2 {
					// Crash-prone invocation: tiny step budget, then
					// recover (possibly crashing again) until resolved.
					_, err := u.InvokeSteps(p, op, rng.Intn(3))
					nCrash := 0
					for errors.Is(err, universal.ErrCrashed) {
						nCrash++
						_, _, err = u.RecoverSteps(p, rng.Intn(3)+1)
					}
					if err != nil {
						log.Fatalf("p%d: %v", p, err)
					}
					mu.Lock()
					crashes += nCrash
					if nCrash > 0 {
						recovered++
					}
					mu.Unlock()
				} else {
					if _, err := u.Invoke(p, op); err != nil {
						log.Fatalf("p%d: %v", p, err)
					}
				}
			}
		}(p)
	}
	wg.Wait()

	logEntries := u.DedupedLog()
	fmt.Printf("linearized %d of 100 invocations; %d crashes injected; %d operations recovered\n",
		len(logEntries), crashes, recovered)
	fmt.Println("(invocations that crashed before announcing never took effect —")
	fmt.Println(" detectability gives exactly-once, not at-least-once, semantics)")
	fmt.Printf("final abstract queue value: %s\n", q.ValueName(u.Value()))

	// Verify the linearization: per-process program order is respected.
	last := make(map[int]int)
	for _, e := range logEntries {
		if e.Seq <= last[e.Pid] {
			log.Fatalf("linearization violates program order for p%d", e.Pid)
		}
		last[e.Pid] = e.Seq
	}
	fmt.Println("linearization respects every process's program order — consistent.")
	fmt.Println()
	fmt.Println("This is the \"recoverable consensus is universal\" half of the story:")
	fmt.Println("with objects of high recoverable consensus number (CAS-like cells),")
	fmt.Println("ANY object — here a queue, itself only consensus number 2 — becomes")
	fmt.Println("recoverable and linearizable, with detectability after crashes.")
}
