// Theorem 13, mechanized (Figures 1 and 2 of the paper): the main theorem
// says any recoverable wait-free consensus algorithm is built on an
// n-recording type, and its proof constructs a chain of configurations
// D0, D'0, ..., Dl, D'l — each D'i reached by a critical execution, each
// classified per Observation 11, with the v-hiding move (crash the forced
// suffix) and the colliding move (step and crash p_{n-1}) driving the
// chain toward an n-recording configuration.
//
// This example runs that construction through the engine facade on three
// recoverable algorithms and prints every stage: the starting schedule,
// the critical execution, the team structure (Lemma 7), and the
// classification. The engine's progress hook streams each stage's class
// as it is discovered.
//
//	go run ./examples/theorem13
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/proto"
	"repro/internal/report"
)

func main() {
	eng := repro.New(repro.WithProgress(report.ProgressWriter(os.Stderr)))
	cases := []struct {
		pr    repro.Protocol
		procs int
		note  string
	}{
		{proto.NewCASRecoverable(3), 3,
			"CAS records the first mover forever: the first critical configuration is already n-recording"},
		{proto.NewTnnRecoverable(4, 2, 2), 2,
			"the paper's own algorithm over T[4,2] within its bound n' = 2"},
		{proto.NewTnnRecoverable(4, 3, 3), 3,
			"T[4,3] with 3 processes"},
	}
	for _, c := range cases {
		fmt.Printf("=== %s ===\n(%s)\n\n", c.pr.Name(), c.note)
		inputs := make([]int, c.procs)
		inputs[0] = 1
		quota := make([]int, c.procs)
		for p := 1; p < c.procs; p++ {
			quota[p] = 2
		}
		chain, err := eng.Theorem13(c.pr, repro.CheckRequest{Inputs: inputs, CrashQuota: quota})
		if err != nil {
			log.Fatal(err)
		}
		for i, st := range chain.Stages {
			fmt.Printf("stage %d:\n", i)
			fmt.Printf("  start schedule:     [%s]\n", st.Start)
			fmt.Printf("  critical execution: [%s]\n", st.Info.Trace)
			fmt.Printf("  teams (Lemma 7):    %v\n", st.Info.Teams)
			fmt.Printf("  object (Lemma 9):   #%d\n", st.Info.Object)
			fmt.Printf("  class (Obs. 11):    %s\n", st.Info.Class)
		}
		if chain.Recording {
			fmt.Println("=> reached an n-recording configuration: the object's type")
			fmt.Println("   is n-recording, exactly as Theorem 13 concludes.")
		} else {
			fmt.Println("=> chain did not converge (outside the theorem's hypotheses)")
		}
		fmt.Println()
	}
}
