// Package repro is a library reproduction of "Determining Recoverable
// Consensus Numbers" (Sean Ovens, PODC 2024, arXiv:2405.04775).
//
// It makes the paper's theory executable for finite deterministic types:
//
//   - deciders for Ruppert's n-discerning property and DFFR's n-recording
//     property (package internal/discern, internal/record), which pin the
//     consensus number and — by the paper's Theorem 14 — the recoverable
//     consensus number of readable types exactly;
//   - the non-readable family T_{n,n'} of Section 4 with its wait-free and
//     recoverable consensus algorithms, plus readable separation families
//     (Y_n with gap 1; X4/X5 with the paper's gap 2);
//   - a crash-recovery shared-memory model checker (the "valency engine"),
//     with critical-execution search and Observation 11 classification;
//   - a concurrent simulation runtime with crash-injecting adversaries.
//
// This facade re-exports the main entry points; the sub-packages under
// internal/ carry the full API surface and documentation.
package repro

import (
	"repro/internal/core"
	"repro/internal/discern"
	"repro/internal/model"
	"repro/internal/record"
	"repro/internal/spec"
	"repro/internal/types"
)

// Re-exported core data types.
type (
	// Type is a deterministic sequential specification over finite sets of
	// values and operations.
	Type = spec.FiniteType
	// Value, Op and Response are the primitive identifiers of a Type.
	Value = spec.Value
	// Op identifies an operation of a Type.
	Op = spec.Op
	// Response is an operation response.
	Response = spec.Response
	// TypeBuilder constructs Types.
	TypeBuilder = spec.Builder
	// Analysis is a hierarchy analysis of one type.
	Analysis = core.Analysis
	// DiscernWitness certifies n-discerning.
	DiscernWitness = discern.Witness
	// RecordWitness certifies n-recording.
	RecordWitness = record.Witness
	// Protocol is a consensus protocol in model-checkable form.
	Protocol = model.Protocol
	// CheckResult is the outcome of model checking a protocol.
	CheckResult = model.Result
)

// Unbounded marks a hierarchy level that still holds at the search limit.
const Unbounded = core.Unbounded

// NewType returns a builder for a custom type.
func NewType(name string) *TypeBuilder { return spec.NewBuilder(name) }

// Analyze computes the discerning/recording spectrum of t for process
// counts 2..maxN and derives its consensus and recoverable consensus
// numbers (exact for readable types).
func Analyze(t *Type, maxN int) (*Analysis, error) { return core.Analyze(t, maxN) }

// IsNDiscerning decides Ruppert's n-discerning property (n >= 2).
func IsNDiscerning(t *Type, n int) (bool, *DiscernWitness) { return discern.IsNDiscerning(t, n) }

// IsNRecording decides DFFR's n-recording property (n >= 2).
func IsNRecording(t *Type, n int) (bool, *RecordWitness) { return record.IsNRecording(t, n) }

// CheckProtocol model-checks a consensus protocol under per-process crash
// quotas (see model.CheckOpts for details).
func CheckProtocol(p Protocol, inputs []int, crashQuota []int) (*CheckResult, error) {
	return model.Check(p, model.CheckOpts{Inputs: inputs, CrashQuota: crashQuota})
}

// FindCritical searches a checked protocol's state space for a critical
// execution (Lemma 6) and classifies the critical configuration per
// Observation 11.
func FindCritical(r *CheckResult) (*model.CriticalInfo, error) { return model.FindCritical(r) }

// Theorem13Chain mechanizes the paper's main proof (Figures 1-2): it
// iterates critical-execution search with the v-hiding and colliding
// moves until an n-recording configuration is reached.
func Theorem13Chain(p Protocol, inputs, crashQuota []int) (*model.Chain, error) {
	return model.Theorem13Chain(p, inputs, crashQuota)
}

// The type zoo.
var (
	// Tnn is the paper's T_{n,n'} (consensus number n, recoverable
	// consensus number n').
	Tnn = types.Tnn
	// TnnReadable is the readable chain family Y_n (cons n, rcons n-1).
	TnnReadable = types.TnnReadable
	// XFour is a readable type with cons 4 and rcons 2 (the paper's
	// corollary gap for n = 4).
	XFour = types.XFour
	// XFive is a readable type with cons 5 and rcons 3.
	XFive = types.XFive
	// Register, TestAndSet, Swap, FetchAdd, CompareAndSwap, StickyBit,
	// Queue, Counter, MaxRegister and Product build the classical zoo.
	Register       = types.Register
	TestAndSet     = types.TestAndSet
	Swap           = types.Swap
	FetchAdd       = types.FetchAdd
	CompareAndSwap = types.CompareAndSwap
	StickyBit      = types.StickyBit
	Queue          = types.Queue
	PeekQueue      = types.PeekQueue
	Stack          = types.Stack
	Counter        = types.Counter
	MaxRegister    = types.MaxRegister
	Product        = types.Product
)
