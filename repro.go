// Package repro is a library reproduction of "Determining Recoverable
// Consensus Numbers" (Sean Ovens, PODC 2024, arXiv:2405.04775).
//
// It makes the paper's theory executable for finite deterministic types:
//
//   - deciders for Ruppert's n-discerning property and DFFR's n-recording
//     property (package internal/discern, internal/record), which pin the
//     consensus number and — by the paper's Theorem 14 — the recoverable
//     consensus number of readable types exactly;
//   - the non-readable family T_{n,n'} of Section 4 with its wait-free and
//     recoverable consensus algorithms, plus readable separation families
//     (Y_n with gap 1; X4/X5 with the paper's gap 2);
//   - a crash-recovery shared-memory model checker (the "valency engine"),
//     with critical-execution search and Observation 11 classification;
//   - a concurrent simulation runtime with crash-injecting adversaries.
//
// # The Engine API
//
// The primary entry point is the Engine: a long-lived analysis object
// built once with functional options and reused across workloads. It runs
// the per-level property checks concurrently on a worker pool, memoizes
// sub-decisions in a cache shared across calls (and, via WithCache,
// across engines), honors context cancellation and deadlines in every
// search hot path, and reports structured progress events:
//
//	eng := repro.New(
//		repro.WithContext(ctx),
//		repro.WithParallelism(runtime.NumCPU()),
//		repro.WithMaxN(5),
//	)
//	t, err := eng.Resolve("tnn:5,2")
//	a, err := eng.Analyze(t)       // cons / rcons spectrum of one type
//	as, err := eng.AnalyzeAll(ts)  // many types, one flat pool run
//	res, err := eng.Check(p, repro.CheckRequest{Inputs: in, CrashQuota: q})
//	items, gs, err := eng.CheckBatch(p, reqs) // many checks, one shared graph
//	ch, err := eng.Theorem13(p, repro.CheckRequest{Inputs: in, CrashQuota: q})
//
// # Deprecated free functions
//
// The original flat facade (Analyze, CheckProtocol, Theorem13Chain, ...)
// is retained as thin wrappers over a lazily constructed default engine,
// so existing call sites keep compiling and now share that engine's
// decision cache. New code should construct its own Engine; the wrappers
// are documented as deprecated and will not grow new features.
//
// The sub-packages under internal/ carry the full API surface and
// documentation.
package repro

import (
	"context"
	"sync"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/discern"
	"repro/internal/engine"
	"repro/internal/graphstore"
	"repro/internal/model"
	"repro/internal/record"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/types"
)

// Re-exported core data types.
type (
	// Type is a deterministic sequential specification over finite sets of
	// values and operations.
	Type = spec.FiniteType
	// Value, Op and Response are the primitive identifiers of a Type.
	Value = spec.Value
	// Op identifies an operation of a Type.
	Op = spec.Op
	// Response is an operation response.
	Response = spec.Response
	// TypeBuilder constructs Types.
	TypeBuilder = spec.Builder
	// Analysis is a hierarchy analysis of one type.
	Analysis = core.Analysis
	// DiscernWitness certifies n-discerning.
	DiscernWitness = discern.Witness
	// RecordWitness certifies n-recording.
	RecordWitness = record.Witness
	// Protocol is a consensus protocol in model-checkable form.
	Protocol = model.Protocol
	// CheckResult is the outcome of model checking a protocol.
	CheckResult = model.Result
	// CheckItem is one Engine.CheckBatch outcome: a result or a
	// per-request error.
	CheckItem = engine.CheckItem
	// GraphStats counts shared-exploration-graph reuse in CheckBatch.
	GraphStats = model.GraphStats
)

// Engine API types, re-exported from internal/engine.
type (
	// Engine is the concurrent, option-configured analysis engine.
	Engine = engine.Engine
	// Option configures an Engine (see the With* constructors).
	Option = engine.Option
	// CheckRequest parameterizes Engine.Check and Engine.Theorem13.
	CheckRequest = engine.CheckRequest
	// Event is a structured progress report (see WithProgress).
	Event = engine.Event
	// Cache memoizes level decisions across calls and engines. Its
	// Stats method reports cumulative hits, misses and entry count —
	// the cmd tools print it under -progress, and cmd/reprod serves it
	// on /v1/stats.
	Cache = engine.Cache
	// Property names a level property in progress events.
	Property = engine.Property
	// GraphCache is a bounded LRU of live exploration graphs keyed by
	// protocol identity + inputs, shared by Check, CheckBatch and
	// Theorem13 — and, via WithGraphCache, across engines.
	GraphCache = engine.GraphCache
	// GraphCacheStats snapshots a GraphCache's hit/miss/eviction counters
	// and footprint (Engine.GraphCacheStats; cmd/reprod serves it on
	// /v1/stats and /metrics).
	GraphCacheStats = engine.GraphCacheStats
)

// HTTP client API types, re-exported from internal/client.
type (
	// Client is the typed client of the reprod HTTP service (cmd/reprod
	// -serve): typed methods for /v1/analyze, /v1/check, /v1/protocols
	// and /v1/jobs (including resumable job event streams), decoding the
	// service's coded error envelopes into *APIError values.
	Client = client.Client
	// ClientOption configures NewClient (see client.WithHTTPClient).
	ClientOption = client.Option
	// APIError is a decoded non-2xx server reply: HTTP status, stable
	// machine-readable code, human-readable message.
	APIError = client.APIError
	// JobEvent is one event of a job's resumable event stream.
	JobEvent = client.JobEvent
)

// NewClient builds a typed client for the reprod server at baseURL.
func NewClient(baseURL string, opts ...ClientOption) *Client { return client.New(baseURL, opts...) }

// IsAPICode reports whether err is an *APIError carrying the given
// stable error code (one of the serve.Code* constants, e.g.
// "queue_full").
func IsAPICode(err error, code string) bool { return client.IsCode(err, code) }

// The two level properties appearing in progress events.
const (
	Discerning = engine.Discerning
	Recording  = engine.Recording
)

// Unbounded marks a hierarchy level that still holds at the search limit.
const Unbounded = core.Unbounded

// New constructs an analysis Engine. With no options it uses
// context.Background(), a worker per CPU, a fresh private cache, maxN=5
// and the model checker's default state budget.
func New(opts ...Option) *Engine { return engine.New(opts...) }

// NewCache returns an empty decision cache for WithCache.
func NewCache() *Cache { return engine.NewCache() }

// PersistentCache is a disk-backed decision cache: a crash-safe
// append-only journal plus a compacted snapshot (see internal/store for
// the format). Its Cache method yields the warm-loaded *Cache to install
// with WithCache; Close flushes the journal.
type PersistentCache = store.Store

// OpenCache opens (creating if absent) the persistent decision cache at
// path and warm-loads every previously persisted decision:
//
//	pc, err := repro.OpenCache("decisions.repro")
//	defer pc.Close()
//	eng := repro.New(repro.WithCache(pc.Cache()))
//
// Every decision the engine computes from then on is journaled
// asynchronously; the next OpenCache on the same path serves it without
// recomputation. Corrupted file tails (torn writes) are detected by
// per-record checksums and truncated away. One process at a time may
// hold a given path open.
func OpenCache(path string) (*PersistentCache, error) { return store.Open(path) }

// WithContext installs the context that cancels every search the engine
// runs: level checks, model-checker explorations and Theorem 13 chains.
func WithContext(ctx context.Context) Option { return engine.WithContext(ctx) }

// WithParallelism sets the worker-pool width for level checks (values
// below 1 are clamped to 1; the default is runtime.NumCPU()).
func WithParallelism(k int) Option { return engine.WithParallelism(k) }

// WithProgress installs a progress-event consumer.
func WithProgress(fn func(Event)) Option { return engine.WithProgress(fn) }

// WithCache installs a shared decision cache.
func WithCache(c *Cache) Option { return engine.WithCache(c) }

// WithMaxN sets the largest process count Engine.Analyze checks.
func WithMaxN(n int) Option { return engine.WithMaxN(n) }

// WithBudget bounds the model checker's explored state space in nodes.
func WithBudget(states int) Option { return engine.WithBudget(states) }

// WithGraphCache installs a shared exploration-graph cache, letting
// several engines reuse expanded state spaces across Check, CheckBatch
// and Theorem13 calls.
func WithGraphCache(c *GraphCache) Option { return engine.WithGraphCache(c) }

// WithGraphCacheBudget bounds the engine's private exploration-graph
// cache in total interned nodes (0 = DefaultGraphCacheBudget; negative
// disables graph caching, restoring fresh-graph-per-call behavior).
func WithGraphCacheBudget(nodes int) Option { return engine.WithGraphCacheBudget(nodes) }

// NewGraphCache returns an empty exploration-graph cache for
// WithGraphCache (budget <= 0 selects DefaultGraphCacheBudget).
func NewGraphCache(budget int) *GraphCache { return engine.NewGraphCache(budget) }

// GraphStore is a crash-safe on-disk store of expanded exploration
// graphs (see internal/graphstore for the format). Install it on a
// GraphCache with SetStore: cache misses then warm-load previously
// expanded graphs instead of re-expanding, and expanded graphs spill
// back asynchronously. Call GraphCache.Flush before exit to persist
// still-dirty graphs.
type GraphStore = graphstore.Store

// OpenGraphStore opens (creating if absent) the exploration-graph store
// rooted at dir:
//
//	gs, err := repro.OpenGraphStore("graphs")
//	gc := repro.NewGraphCache(0)
//	gc.SetStore(gs)
//	eng := repro.New(repro.WithGraphCache(gc))
//	defer gc.Flush()
//
// One file per protocol-fingerprint + inputs key; corrupted file tails
// (torn writes, bit flips) are detected by per-page checksums and the
// intact prefix is served. One process at a time may own a directory.
func OpenGraphStore(dir string) (*GraphStore, error) { return graphstore.Open(dir) }

// DefaultGraphCacheBudget is the node budget WithGraphCacheBudget(0)
// resolves to.
const DefaultGraphCacheBudget = engine.DefaultGraphCacheBudget

// WithBackend selects the level-decider backend by name: "" or "search"
// (the recursive-search deciders, the default), "bitset" (the
// semi-symbolic frontier-sweep decider, n <= 16), or "auto" (bitset
// where it applies, search above). All backends return byte-identical
// results — see internal/decider.
func WithBackend(name string) Option { return engine.WithBackend(name) }

// Backends lists the registered level-decider backend names, sorted.
func Backends() []string { return engine.Backends() }

// WithShardThreshold controls auto-sharding of single level checks: a
// level whose operation-assignment count exceeds the threshold is split
// across the engine's idle workers, with results identical to the serial
// scan (0 = DefaultShardThreshold, negative = never shard).
func WithShardThreshold(assignments int) Option { return engine.WithShardThreshold(assignments) }

// DefaultShardThreshold is the assignment count WithShardThreshold(0)
// resolves to.
const DefaultShardThreshold = engine.DefaultShardThreshold

// Resolve parses a registry descriptor ("tas", "tnn:5,2", "x4",
// "product:tas,register:2", ...) into a type; unknown names error with
// the list of valid descriptors. It is the default engine's Resolve.
func Resolve(desc string) (*Type, error) { return Default().Resolve(desc) }

// ResolveProtocol parses a protocol registry descriptor ("tnn-wf:3,2",
// "tnn-rec:3,2", "cas-wf:2", "cas-rec:3", "tas-reg") into a
// model-checkable consensus protocol for Engine.Check, Engine.CheckBatch
// and Engine.Theorem13. It is the default engine's ResolveProtocol.
func ResolveProtocol(desc string) (Protocol, error) { return Default().ResolveProtocol(desc) }

// defaultEngine backs the deprecated free functions, so legacy call
// sites transparently share one decision cache.
var (
	defaultEngine     *Engine
	defaultEngineOnce sync.Once
)

// Default returns the process-wide engine behind the deprecated free
// functions: background context, per-CPU parallelism, one shared cache.
func Default() *Engine {
	defaultEngineOnce.Do(func() { defaultEngine = engine.New() })
	return defaultEngine
}

// NewType returns a builder for a custom type.
func NewType(name string) *TypeBuilder { return spec.NewBuilder(name) }

// Analyze computes the discerning/recording spectrum of t for process
// counts 2..maxN and derives its consensus and recoverable consensus
// numbers (exact for readable types).
//
// Deprecated: use New and Engine.Analyze (or Engine.AnalyzeTo for an
// explicit limit); this wrapper runs on the shared Default engine.
func Analyze(t *Type, maxN int) (*Analysis, error) { return Default().AnalyzeTo(t, maxN) }

// IsNDiscerning decides Ruppert's n-discerning property (n >= 2).
//
// Deprecated: use Engine.Analyze, whose per-level results are memoized;
// this wrapper calls the decider directly and caches nothing.
func IsNDiscerning(t *Type, n int) (bool, *DiscernWitness) { return discern.IsNDiscerning(t, n) }

// IsNRecording decides DFFR's n-recording property (n >= 2).
//
// Deprecated: use Engine.Analyze, whose per-level results are memoized;
// this wrapper calls the decider directly and caches nothing.
func IsNRecording(t *Type, n int) (bool, *RecordWitness) { return record.IsNRecording(t, n) }

// CheckProtocol model-checks a consensus protocol under per-process crash
// quotas (see model.CheckOpts for details).
//
// Deprecated: use New and Engine.Check, which add cancellation, state
// budgets and progress reporting; this wrapper runs on the Default engine.
func CheckProtocol(p Protocol, inputs []int, crashQuota []int) (*CheckResult, error) {
	return Default().Check(p, CheckRequest{Inputs: inputs, CrashQuota: crashQuota})
}

// FindCritical searches a checked protocol's state space for a critical
// execution (Lemma 6) and classifies the critical configuration per
// Observation 11.
func FindCritical(r *CheckResult) (*model.CriticalInfo, error) { return model.FindCritical(r) }

// Theorem13Chain mechanizes the paper's main proof (Figures 1-2): it
// iterates critical-execution search with the v-hiding and colliding
// moves until an n-recording configuration is reached.
//
// Deprecated: use New and Engine.Theorem13; this wrapper runs on the
// Default engine.
func Theorem13Chain(p Protocol, inputs, crashQuota []int) (*model.Chain, error) {
	return Default().Theorem13(p, CheckRequest{Inputs: inputs, CrashQuota: crashQuota})
}

// The type zoo.
var (
	// Tnn is the paper's T_{n,n'} (consensus number n, recoverable
	// consensus number n').
	Tnn = types.Tnn
	// TnnReadable is the readable chain family Y_n (cons n, rcons n-1).
	TnnReadable = types.TnnReadable
	// XFour is a readable type with cons 4 and rcons 2 (the paper's
	// corollary gap for n = 4).
	XFour = types.XFour
	// XFive is a readable type with cons 5 and rcons 3.
	XFive = types.XFive
	// Register, TestAndSet, Swap, FetchAdd, CompareAndSwap, StickyBit,
	// Queue, Counter, MaxRegister and Product build the classical zoo.
	Register       = types.Register
	TestAndSet     = types.TestAndSet
	Swap           = types.Swap
	FetchAdd       = types.FetchAdd
	CompareAndSwap = types.CompareAndSwap
	StickyBit      = types.StickyBit
	Queue          = types.Queue
	PeekQueue      = types.PeekQueue
	Stack          = types.Stack
	Counter        = types.Counter
	MaxRegister    = types.MaxRegister
	Product        = types.Product
	// Trivial is the one-value no-op type (cons 1).
	Trivial = types.Trivial
)
