package adversary

import (
	"testing"
)

func TestRoundRobinCycles(t *testing.T) {
	a := &RoundRobin{}
	crashes := make([]int, 3)
	runnable := []int{0, 1, 2}
	var order []int
	for i := 0; i < 6; i++ {
		p, crash := a.Next(runnable, crashes, i)
		if crash {
			t.Fatal("round robin must never crash")
		}
		order = append(order, p)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRoundRobinSkipsDecided(t *testing.T) {
	a := &RoundRobin{}
	crashes := make([]int, 3)
	// Only process 2 is runnable: it must be picked.
	for i := 0; i < 3; i++ {
		p, _ := a.Next([]int{2}, crashes, i)
		if p != 2 {
			t.Fatalf("picked %d, want 2", p)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	seq := func(seed int64) []int {
		a := NewRandom(seed, 0.5, 2)
		crashes := make([]int, 4)
		var out []int
		for i := 0; i < 50; i++ {
			p, crash := a.Next([]int{0, 1, 2, 3}, crashes, i)
			if crash {
				crashes[p]++
				out = append(out, -p-1)
			} else {
				out = append(out, p)
			}
		}
		return out
	}
	a, b := seq(42), seq(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestRandomRespectsMaxCrashes(t *testing.T) {
	a := NewRandom(1, 1.0, 2) // always crash when allowed
	crashes := make([]int, 2)
	for i := 0; i < 100; i++ {
		p, crash := a.Next([]int{0, 1}, crashes, i)
		if crash {
			crashes[p]++
		}
	}
	for p, c := range crashes {
		if c > 2 {
			t.Errorf("process %d crashed %d times, cap is 2", p, c)
		}
	}
}

func TestCrashStormCrashesTargets(t *testing.T) {
	a := &CrashStorm{Targets: []int{1}, Times: 2}
	crashes := make([]int, 2)
	crashCount := 0
	for i := 0; i < 10; i++ {
		p, crash := a.Next([]int{0, 1}, crashes, i)
		if crash {
			if p != 1 {
				t.Fatalf("crashed p%d, only p1 is a target", p)
			}
			crashCount++
		}
	}
	if crashCount != 2 {
		t.Errorf("crash count = %d, want 2", crashCount)
	}
}

// TestBudgetedNeverCrashesP0 and never exceeds the E*_z budget.
func TestBudgetedNeverCrashesP0(t *testing.T) {
	a := NewBudgeted(3, 3, 1, 1.0) // crash whenever allowed
	crashes := make([]int, 3)
	stepsBelow := func(p int, stepsOf []int) int {
		total := 0
		for q := 0; q < p; q++ {
			total += stepsOf[q]
		}
		return total
	}
	stepsOf := make([]int, 3)
	for i := 0; i < 500; i++ {
		p, crash := a.Next([]int{0, 1, 2}, crashes, i)
		if crash {
			if p == 0 {
				t.Fatal("budgeted adversary crashed p0")
			}
			crashes[p]++
			if crashes[p] > 1*3*stepsBelow(p, stepsOf) {
				t.Fatalf("crash budget exceeded for p%d", p)
			}
		} else {
			stepsOf[p]++
		}
	}
}
