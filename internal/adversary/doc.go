// Package adversary provides scheduling adversaries for the sim runtime:
// fair round-robin, seeded random with crash probability, crash storms
// targeting specific processes, and a budgeted adversary that respects the
// paper's E*_z crash-budget discipline (process p_i crashes at most
// z*n times the number of steps taken by p_0..p_{i-1}, and p_0 never
// crashes).
//
// Adversaries are deterministic for a given seed, so a sim run is
// reproducible from (algorithm, inputs, adversary seed) alone. One
// adversary value drives one run at a time — the sim runtime calls it
// from a single goroutine.
package adversary
