package adversary

import (
	"math/rand"

	"repro/internal/schedule"
	"repro/internal/sim"
)

// RoundRobin grants steps to runnable processes in cyclic order and never
// crashes anyone.
type RoundRobin struct {
	next int
}

var _ sim.Adversary = (*RoundRobin)(nil)

// Next implements sim.Adversary.
func (a *RoundRobin) Next(runnable []int, crashes []int, steps int) (int, bool) {
	for range crashes {
		p := a.next % len(crashes)
		a.next++
		for _, r := range runnable {
			if r == p {
				return p, false
			}
		}
	}
	return runnable[0], false
}

// Random schedules uniformly among runnable processes and crashes the
// scheduled process with probability CrashProb, up to MaxCrashes per
// process. The zero value never crashes anyone and needs a seed via
// NewRandom.
type Random struct {
	rng        *rand.Rand
	crashProb  float64
	maxCrashes int
}

var _ sim.Adversary = (*Random)(nil)

// NewRandom builds a seeded random adversary. maxCrashes bounds the
// crashes per process (recoverable wait-freedom admits infinite crash
// sequences, but a finite run must let processes finish).
func NewRandom(seed int64, crashProb float64, maxCrashes int) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed)), crashProb: crashProb, maxCrashes: maxCrashes}
}

// Next implements sim.Adversary.
func (a *Random) Next(runnable []int, crashes []int, steps int) (int, bool) {
	p := runnable[a.rng.Intn(len(runnable))]
	if a.crashProb > 0 && crashes[p] < a.maxCrashes && a.rng.Float64() < a.crashProb {
		return p, true
	}
	return p, false
}

// CrashStorm runs round-robin but crashes each process in Targets the
// first Times times it is about to take a step. It exercises the
// worst-case recovery paths deterministically.
type CrashStorm struct {
	Targets []int
	Times   int

	rr      RoundRobin
	crashed map[int]int
}

var _ sim.Adversary = (*CrashStorm)(nil)

// Next implements sim.Adversary.
func (a *CrashStorm) Next(runnable []int, crashes []int, steps int) (int, bool) {
	if a.crashed == nil {
		a.crashed = make(map[int]int)
	}
	p, _ := a.rr.Next(runnable, crashes, steps)
	for _, t := range a.Targets {
		if t == p && a.crashed[p] < a.Times {
			a.crashed[p]++
			return p, true
		}
	}
	return p, false
}

// Scripted replays a fixed schedule (for example a counterexample trace
// from the model checker), then falls back to round-robin when the script
// is exhausted or the scripted process is no longer runnable (the
// checker's traces may crash processes after they decided, which the
// runtime cannot express — such events are skipped).
type Scripted struct {
	Script schedule.Schedule

	pos int
	rr  RoundRobin
}

var _ sim.Adversary = (*Scripted)(nil)

// Next implements sim.Adversary.
func (a *Scripted) Next(runnable []int, crashes []int, steps int) (int, bool) {
	isRunnable := func(p int) bool {
		for _, r := range runnable {
			if r == p {
				return true
			}
		}
		return false
	}
	for a.pos < len(a.Script) {
		e := a.Script[a.pos]
		a.pos++
		if isRunnable(e.P) {
			return e.P, e.Crash
		}
	}
	return a.rr.Next(runnable, crashes, steps)
}

// Budgeted schedules randomly but only crashes process p when the paper's
// E*_z budget allows: p > 0 and crashes(p) < Z*N*steps(p_0..p_{p-1}).
// It is the runtime counterpart of schedule.Budget.
type Budgeted struct {
	N, Z int

	rng        *rand.Rand
	crashProb  float64
	stepsBelow []int // stepsBelow[p] = steps taken by processes < p... computed incrementally
	stepsOf    []int
	crashesOf  []int
}

var _ sim.Adversary = (*Budgeted)(nil)

// NewBudgeted builds the E*_z-respecting adversary for n processes.
func NewBudgeted(seed int64, n, z int, crashProb float64) *Budgeted {
	return &Budgeted{
		N: n, Z: z,
		rng:       rand.New(rand.NewSource(seed)),
		crashProb: crashProb,
		stepsOf:   make([]int, n),
		crashesOf: make([]int, n),
	}
}

// Next implements sim.Adversary.
func (a *Budgeted) Next(runnable []int, crashes []int, steps int) (int, bool) {
	p := runnable[a.rng.Intn(len(runnable))]
	if p > 0 && a.rng.Float64() < a.crashProb {
		lower := 0
		for q := 0; q < p; q++ {
			lower += a.stepsOf[q]
		}
		if a.crashesOf[p] < a.Z*a.N*lower {
			a.crashesOf[p]++
			return p, true
		}
	}
	a.stepsOf[p]++
	return p, false
}
