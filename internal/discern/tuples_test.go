package discern

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/spec"
)

// enumerateSerial reproduces the deciders' recursive enumeration order:
// lexicographic over non-decreasing tuples (or all tuples in naive mode).
func enumerateSerial(m, n int, naive bool) [][]spec.Op {
	var out [][]spec.Op
	ops := make([]spec.Op, n)
	var rec func(pos int)
	rec = func(pos int) {
		if pos == n {
			out = append(out, append([]spec.Op(nil), ops...))
			return
		}
		start := spec.Op(0)
		if !naive && pos > 0 {
			start = ops[pos-1]
		}
		for o := start; int(o) < m; o++ {
			ops[pos] = o
			rec(pos + 1)
		}
	}
	rec(0)
	return out
}

// TestTupleSpaceMatchesSerialOrder pins the space's rank order to the
// serial recursion order for a grid of (m, n, naive): Count matches the
// enumeration size, Unrank(i) is the i-th serially enumerated tuple,
// Rank inverts Unrank, and Next steps through the same sequence.
func TestTupleSpaceMatchesSerialOrder(t *testing.T) {
	for _, naive := range []bool{false, true} {
		for m := 1; m <= 5; m++ {
			for n := 2; n <= 5; n++ {
				t.Run(fmt.Sprintf("m=%d/n=%d/naive=%v", m, n, naive), func(t *testing.T) {
					want := enumerateSerial(m, n, naive)
					space := NewTupleSpace(m, n, naive)
					if got := space.Count(); got != int64(len(want)) {
						t.Fatalf("Count=%d, want %d", got, len(want))
					}
					cur := make([]spec.Op, n)
					space.Unrank(0, cur)
					ops := make([]spec.Op, n)
					for i, w := range want {
						space.Unrank(int64(i), ops)
						if !equalOps(ops, w) {
							t.Fatalf("Unrank(%d)=%v, want %v", i, ops, w)
						}
						if r := space.Rank(ops); r != int64(i) {
							t.Fatalf("Rank(%v)=%d, want %d", ops, r, i)
						}
						if !equalOps(cur, w) {
							t.Fatalf("Next-walk[%d]=%v, want %v", i, cur, w)
						}
						if space.Next(cur) != (i < len(want)-1) {
							t.Fatalf("Next at %d/%d returned wrong continuation", i, len(want))
						}
					}
				})
			}
		}
	}
}

// TestTupleSpaceSaturation: oversized spaces saturate instead of
// overflowing.
func TestTupleSpaceSaturation(t *testing.T) {
	if got := NewTupleSpace(1000, 40, false).Count(); got <= 0 {
		t.Errorf("huge reduced space: Count=%d, want positive", got)
	}
	if got := NewTupleSpace(100, 80, true).Count(); got != math.MaxInt64 {
		t.Errorf("huge naive space: Count=%d, want saturation", got)
	}
	if got := NewTupleSpace(0, 3, false).Count(); got != 0 {
		t.Errorf("empty op set: Count=%d, want 0", got)
	}
}

func equalOps(a, b []spec.Op) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
