package discern

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/spec"
)

// TestShardedMatchesSerial is the determinism gate of the sharded search:
// across seeded random types, n=2..4 and shard counts {1,2,7}, the
// sharded check must return the exact (verdict, witness) pair of the
// serial scan. Run under -race in CI, this also exercises the shard
// workers' sharing discipline.
func TestShardedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(90125))
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		ft := randomType(rng, 3+rng.Intn(3), 2+rng.Intn(2))
		for n := 2; n <= 4; n++ {
			wantOK, wantW, err := IsNDiscerningCtx(ctx, ft, n, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 2, 7} {
				ok, w, err := ShardedIsNDiscerning(ctx, ft, n, shards, ShardOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if ok != wantOK || !reflect.DeepEqual(w, wantW) {
					t.Fatalf("type %d n=%d shards=%d: got (%v, %v), serial (%v, %v)",
						i, n, shards, ok, w, wantOK, wantW)
				}
			}
		}
	}
}

// TestShardedNaiveMatchesSerial covers the ablation (naive) enumeration,
// whose tuple space and rank order differ from the reduced one.
func TestShardedNaiveMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7001))
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		ft := randomType(rng, 3+rng.Intn(2), 2)
		for _, shards := range []int{2, 7} {
			wantOK, wantW, err := IsNDiscerningCtx(ctx, ft, 3, Options{Naive: true})
			if err != nil {
				t.Fatal(err)
			}
			ok, w, err := ShardedIsNDiscerning(ctx, ft, 3, shards,
				ShardOptions{Options: Options{Naive: true}})
			if err != nil {
				t.Fatal(err)
			}
			if ok != wantOK || !reflect.DeepEqual(w, wantW) {
				t.Fatalf("type %d shards=%d: got (%v, %v), serial (%v, %v)",
					i, shards, ok, w, wantOK, wantW)
			}
		}
	}
}

// TestShardedWitnessVerifies: sharded witnesses pass the brute-force
// verifier, exactly like serial ones.
func TestShardedWitnessVerifies(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	found := 0
	for i := 0; i < 80 && found < 10; i++ {
		ft := randomType(rng, 4, 2)
		ok, w, err := ShardedIsNDiscerning(context.Background(), ft, 3, 4, ShardOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			found++
			verifyWitness(t, ft, w)
		}
	}
	if found == 0 {
		t.Skip("no 3-discerning random types in the sample")
	}
}

// TestShardedReports checks the per-shard progress reports: every shard
// reports exactly once, ranges tile [0, Count), and on a full scan of a
// non-discerning level the scanned counts add up to the whole space.
func TestShardedReports(t *testing.T) {
	ft := buildRegisterLike(t)
	const n, shards = 3, 4
	var mu sync.Mutex
	var reports []ShardReport
	ok, _, err := ShardedIsNDiscerning(context.Background(), ft, n, shards, ShardOptions{
		OnShard: func(r ShardReport) {
			mu.Lock()
			reports = append(reports, r)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("a register-like type must not be 3-discerning")
	}
	space := NewTupleSpace(ft.NumOps(), n, false)
	if len(reports) != shards {
		t.Fatalf("got %d shard reports, want %d", len(reports), shards)
	}
	var covered, scanned int64
	for _, r := range reports {
		if r.Shards != shards || r.Hi < r.Lo {
			t.Errorf("bad report %+v", r)
		}
		covered += r.Hi - r.Lo
		scanned += r.Scanned
	}
	if covered != space.Count() || scanned != space.Count() {
		t.Errorf("shards covered %d and scanned %d of %d assignments",
			covered, scanned, space.Count())
	}
}

// TestShardedCancellation: a canceled context surfaces as an error, and a
// pre-canceled context does not scan at all.
func TestShardedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(5))
	ft := randomType(rng, 4, 3)
	ok, w, err := ShardedIsNDiscerning(ctx, ft, 4, 4, ShardOptions{})
	if err == nil {
		t.Fatal("canceled sharded search must error")
	}
	if ok || w != nil {
		t.Fatalf("canceled search leaked a result: (%v, %v)", ok, w)
	}
}

// buildRegisterLike returns a small type with consensus number 1 (a
// read/write register), so every discerning level >= 2 is a full sweep.
func buildRegisterLike(t *testing.T) *spec.FiniteType {
	t.Helper()
	b := spec.NewBuilder("reg2")
	b.Values("v0", "v1")
	b.Ops("w0", "w1", "read")
	b.Transition("v0", "w0", 0, "v0")
	b.Transition("v1", "w0", 0, "v0")
	b.Transition("v0", "w1", 1, "v1")
	b.Transition("v1", "w1", 1, "v1")
	b.ReadOp("read", 100)
	return b.MustBuild()
}
