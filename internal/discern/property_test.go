package discern

import (
	"math/rand"
	"testing"

	"repro/internal/spec"
)

// randomType builds a random deterministic readable type with v values
// and m mutating operations plus a Read, with distinct responses per
// (value, op) pair.
func randomType(rng *rand.Rand, v, m int) *spec.FiniteType {
	b := spec.NewBuilder("random")
	names := make([]string, v)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	b.Values(names...)
	resp := spec.Response(0)
	for o := 0; o < m; o++ {
		opName := string(rune('A' + o))
		b.Ops(opName)
		for val := 0; val < v; val++ {
			b.Transition(names[val], opName, resp, names[rng.Intn(v)])
			resp++
		}
	}
	b.Ops("read")
	b.ReadOp("read", 1000)
	return b.MustBuild()
}

// TestMonotonicityOnRandomTypes: for random types, n-discerning implies
// (n-1)-discerning for n >= 3 (drop a process from the larger team).
func TestMonotonicityOnRandomTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for i := 0; i < 60; i++ {
		ft := randomType(rng, 3+rng.Intn(3), 2)
		for n := 3; n <= 4; n++ {
			okN, _ := IsNDiscerning(ft, n)
			okN1, _ := IsNDiscerning(ft, n-1)
			if okN && !okN1 {
				t.Fatalf("type %d: %d-discerning but not %d-discerning:\n%s",
					i, n, n-1, ft.TransitionTable())
			}
		}
	}
}

// TestPrefixSharingAblationAgrees: the ablation variant must compute the
// same verdicts as the default on random types.
func TestPrefixSharingAblationAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		ft := randomType(rng, 3+rng.Intn(2), 2)
		for n := 2; n <= 3; n++ {
			a, _ := IsNDiscerningOpt(ft, n, Options{})
			b, _ := IsNDiscerningOpt(ft, n, Options{NoPrefixSharing: true})
			if a != b {
				t.Fatalf("type %d n=%d: shared=%v noshare=%v", i, n, a, b)
			}
		}
	}
}

// TestWitnessesAlwaysVerify: every witness produced on random types
// passes the brute-force check.
func TestWitnessesAlwaysVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	found := 0
	for i := 0; i < 80 && found < 25; i++ {
		ft := randomType(rng, 4, 2)
		if ok, w := IsNDiscerning(ft, 3); ok {
			found++
			verifyWitness(t, ft, w)
		}
	}
	if found == 0 {
		t.Skip("no 3-discerning random types in the sample")
	}
}
