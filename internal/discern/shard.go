package discern

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/pool"
	"repro/internal/spec"
)

// ShardReport describes one finished worker of a sharded level search,
// for progress consumers. Reports are delivered from worker goroutines
// as each worker finishes; a consumer shared across workers must be safe
// for concurrent use.
type ShardReport struct {
	// Shard is the worker's index in [0, Shards).
	Shard int
	// Shards is the total worker count of the search.
	Shards int
	// Lo and Hi delimit the assignment ranks the worker touched: for a
	// contiguous search its fixed half-open range, for a work-stealing
	// search the bounds of its first and last claimed chunks (the claimed
	// set in between belongs to whichever worker got there first). Both
	// are -1 when the worker claimed nothing.
	Lo, Hi int64
	// Scanned counts the assignments the worker actually checked; early
	// exit (a lower-ranked witness elsewhere, or cancellation) may leave
	// it short of Hi-Lo.
	Scanned int64
	// Chunks counts the rank-queue chunks the worker claimed; 0 in a
	// contiguous search.
	Chunks int64
	// Found reports that the worker found a witnessing assignment.
	Found bool
	// Elapsed is the worker's wall-clock cost.
	Elapsed time.Duration
}

// ShardOptions configures a sharded level check.
type ShardOptions struct {
	// Options is the underlying decision procedure's configuration.
	Options
	// Contiguous selects the fixed contiguous-range split
	// (SearchShardedContiguous) instead of the default work-stealing
	// chunk queue. Both return byte-identical results; contiguous exists
	// as the scheduling ablation baseline and differential-test foil.
	Contiguous bool
	// OnShard, if non-nil, is called once per worker as it finishes, from
	// the worker's goroutine.
	OnShard func(ShardReport)
}

// noWitness is the best-rank sentinel meaning "no witness found yet".
const noWitness = math.MaxInt64

// atomicMin lowers a to at most v.
func atomicMin(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// SearchSharded scans space concurrently on `shards` workers of an
// internal/pool worker set, feeding them from a work-stealing chunk
// queue: the rank space is cut into fixed-size chunks and workers claim
// the next chunk with one atomic increment whenever they run dry, so an
// early-exiting or unlucky worker's leftover ranks are picked up by the
// others instead of idling a core — the scheduling weakness of fixed
// contiguous ranges on early-witness sweeps. check is called once per
// assignment with the decoded tuple (the slice is reused within a
// worker; check must copy anything it keeps) and returns non-nil to
// report a witnessing assignment; it must be deterministic and safe for
// concurrent use.
//
// The lowest-ranked witnessing assignment wins, which makes the outcome
// byte-identical to a serial lexicographic scan of the same space no
// matter how chunks interleave. The argument rests on two monotone
// facts: chunks are claimed in ascending rank order, and the global
// best-witness rank only ever decreases. A rank is skipped only when it
// provably exceeds an already-found witness rank (r > best at skip time
// implies r > final best), so every rank below the final best rank was
// actually scanned and rejected — the final best IS the serial scan's
// first witness. A worker that finds a witness stops (every rank it
// could still claim is higher); a worker whose next chunk starts above
// the best rank stops for the same reason.
//
// On cancellation the search returns ctx.Err() unless the winner was
// already determined: the lowest rank that went unscanned because of the
// cancellation (not because of pruning) is tracked, and the winning
// witness stands only if its rank is strictly below it.
func SearchSharded[W any](ctx context.Context, space TupleSpace, shards int, check func(ops []spec.Op) *W, onShard func(ShardReport)) (*W, error) {
	total := space.Count()
	if total <= 0 {
		return nil, ctx.Err()
	}
	if shards < 1 {
		shards = 1
	}
	if int64(shards) > total {
		shards = int(total)
	}
	// Chunk size balances claim traffic against stealing granularity:
	// aim for ~8 claims per worker on a full scan, clamped so tiny spaces
	// still split and huge ones do not degenerate into one claim.
	chunk := total / (int64(shards) * 8)
	if chunk < 16 {
		chunk = 16
	}
	if chunk > 65536 {
		chunk = 65536
	}
	numChunks := (total + chunk - 1) / chunk

	var next atomic.Int64
	var best atomic.Int64
	best.Store(noWitness)
	// minCanceled is the lowest rank known unscanned for a reason OTHER
	// than pruning — the bound cancellation validity is judged against.
	var minCanceled atomic.Int64
	minCanceled.Store(noWitness)
	wits := make([]*W, shards)
	witRank := make([]int64, shards)
	for i := range witRank {
		witRank[i] = noWitness
	}
	done := ctx.Done()

	pool.Run(ctx, shards, shards, func(s int) error {
		start := time.Now()
		ops := make([]spec.Op, space.n)
		var scanned, claimed int64
		firstLo, lastHi := int64(-1), int64(-1)
	claim:
		for {
			c := next.Add(1) - 1
			if c >= numChunks {
				break
			}
			lo := c * chunk
			hi := lo + chunk
			if hi > total {
				hi = total
			}
			if lo > best.Load() {
				// Ascending claims: this chunk and everything after it can
				// only hold ranks above an already-found witness.
				break
			}
			claimed++
			if firstLo < 0 {
				firstLo = lo
			}
			lastHi = hi
			space.Unrank(lo, ops)
			for r := lo; r < hi; r++ {
				if r > best.Load() {
					break claim // no rank this worker can still reach can win
				}
				select {
				case <-done:
					atomicMin(&minCanceled, r)
					break claim
				default:
				}
				scanned++
				if w := check(ops); w != nil {
					if r < witRank[s] {
						wits[s], witRank[s] = w, r
					}
					atomicMin(&best, r)
					break claim // every unclaimed rank is higher
				}
				space.Next(ops)
			}
		}
		if onShard != nil {
			onShard(ShardReport{Shard: s, Shards: shards, Lo: firstLo, Hi: lastHi,
				Scanned: scanned, Chunks: claimed, Found: wits[s] != nil,
				Elapsed: time.Since(start)})
		}
		return nil
	})

	// Chunks never claimed by anyone (cancellation mid-queue, or workers
	// that never started) are unscanned; if their ranks are not provably
	// above the best witness they count as canceled. Prune-stopped
	// leftovers start above the best rank and change nothing.
	if nc := next.Load(); nc < numChunks {
		if lo := nc * chunk; lo <= best.Load() {
			atomicMin(&minCanceled, lo)
		}
	}

	bestRank := best.Load()
	if bestRank != noWitness && bestRank < minCanceled.Load() {
		for s := range wits {
			if witRank[s] == bestRank {
				return wits[s], nil
			}
		}
	}
	if minCanceled.Load() != noWitness {
		return nil, ctx.Err()
	}
	return nil, nil
}

// SearchShardedContiguous is SearchSharded with the original fixed
// contiguous-range schedule: space is split into `shards` equal ranges,
// one worker per range, no stealing. Results are byte-identical to
// SearchSharded (and to a serial scan); the difference is purely
// scheduling — a worker that exhausts or prunes its range idles while
// others finish. Kept as the ablation baseline for the stealing
// schedule and as a foil for the differential tests.
func SearchShardedContiguous[W any](ctx context.Context, space TupleSpace, shards int, check func(ops []spec.Op) *W, onShard func(ShardReport)) (*W, error) {
	total := space.Count()
	if total <= 0 {
		return nil, ctx.Err()
	}
	if shards < 1 {
		shards = 1
	}
	if int64(shards) > total {
		shards = int(total)
	}
	base, rem := total/int64(shards), total%int64(shards)

	var best atomic.Int64
	best.Store(noWitness)
	wits := make([]*W, shards)
	canceled := make([]bool, shards)
	done := ctx.Done()

	fed, _ := pool.Run(ctx, shards, shards, func(s int) error {
		start := time.Now()
		lo := int64(s)*base + min(int64(s), rem)
		hi := lo + base
		if int64(s) < rem {
			hi++
		}
		ops := make([]spec.Op, space.n)
		space.Unrank(lo, ops)
		scanned := int64(0)
	scan:
		for r := lo; r < hi; r++ {
			if r > best.Load() {
				break // a lower-ranked witness exists; this shard cannot win
			}
			select {
			case <-done:
				canceled[s] = true
				break scan
			default:
			}
			scanned++
			if w := check(ops); w != nil {
				wits[s] = w
				atomicMin(&best, r)
				break scan
			}
			space.Next(ops)
		}
		if onShard != nil {
			onShard(ShardReport{Shard: s, Shards: shards, Lo: lo, Hi: hi,
				Scanned: scanned, Found: wits[s] != nil, Elapsed: time.Since(start)})
		}
		return nil
	})
	for s := fed; s < shards; s++ {
		canceled[s] = true // never started
	}

	// Contiguous ranges mean the lowest shard with a hit holds the
	// lowest-ranked witness. The win stands only if every shard below it
	// ran to completion: those shards scan strictly lower ranks, so they
	// never prune against `best` and either finished or were canceled.
	for s := 0; s < shards; s++ {
		if wits[s] != nil {
			for b := 0; b < s; b++ {
				if canceled[b] {
					return nil, ctx.Err()
				}
			}
			return wits[s], nil
		}
		if canceled[s] {
			return nil, ctx.Err()
		}
	}
	return nil, nil
}

// ShardedIsNDiscerning is IsNDiscerningCtx with the operation-assignment
// enumeration split across `shards` concurrent workers (work-stealing by
// default; opts.Contiguous selects the fixed-range baseline). It returns
// exactly what the serial scan returns — same verdict, same witness (the
// lowest-ranked witnessing assignment, completed by checkAssignment's
// deterministic choice of u and partition) — while a losing worker is
// cancelled as soon as it provably cannot hold the winning assignment.
// shards below 1 are clamped to 1.
func ShardedIsNDiscerning(ctx context.Context, t *spec.FiniteType, n, shards int, opts ShardOptions) (bool, *Witness, error) {
	if n < 2 {
		panic(fmt.Sprintf("discern: n-discerning is undefined for n=%d (need n >= 2)", n))
	}
	space := NewTupleSpace(t.NumOps(), n, opts.Naive)
	search := SearchSharded[Witness]
	if opts.Contiguous {
		search = SearchShardedContiguous[Witness]
	}
	w, err := search(ctx, space, shards, func(ops []spec.Op) *Witness {
		return checkAssignment(t, n, ops, opts.Options)
	}, opts.OnShard)
	if err != nil {
		return false, nil, err
	}
	return w != nil, w, nil
}
