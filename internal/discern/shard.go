package discern

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/pool"
	"repro/internal/spec"
)

// ShardReport describes one finished shard of a sharded level search, for
// progress consumers. Reports are delivered from worker goroutines as
// each shard finishes; a consumer shared across shards must be safe for
// concurrent use.
type ShardReport struct {
	// Shard is the shard's index in [0, Shards).
	Shard int
	// Shards is the total shard count of the search.
	Shards int
	// Lo and Hi delimit the shard's half-open assignment-rank range.
	Lo, Hi int64
	// Scanned counts the assignments the shard actually checked; early
	// exit (a lower-ranked witness elsewhere, or cancellation) may leave
	// it short of Hi-Lo.
	Scanned int64
	// Found reports that the shard found a witnessing assignment.
	Found bool
	// Elapsed is the shard's wall-clock cost.
	Elapsed time.Duration
}

// ShardOptions configures a sharded level check.
type ShardOptions struct {
	// Options is the underlying decision procedure's configuration.
	Options
	// OnShard, if non-nil, is called once per shard as it finishes, from
	// the shard's worker goroutine.
	OnShard func(ShardReport)
}

// noWitness is the best-rank sentinel meaning "no witness found yet".
const noWitness = math.MaxInt64

// SearchSharded splits space into `shards` contiguous rank ranges and
// scans them concurrently on an internal/pool worker set, one worker per
// shard. check is called once per assignment with the decoded tuple (the
// slice is reused within a shard; check must copy anything it keeps) and
// returns non-nil to report a witnessing assignment; it must be
// deterministic and safe for concurrent use.
//
// The lowest-ranked witnessing assignment wins, which makes the outcome
// identical to a serial lexicographic scan of the same space: within a
// shard the scan stops at its first (lowest-ranked) hit, and across
// shards the lowest shard with a hit is selected once every shard below
// it has finished. First-witness early exit cancels the losing shards —
// a shard whose remaining ranks all exceed an already-found witness rank
// stops scanning, since no assignment it could still find can win.
//
// On cancellation the search returns ctx.Err() unless the winner was
// already determined (every shard below the winning one had finished).
func SearchSharded[W any](ctx context.Context, space TupleSpace, shards int, check func(ops []spec.Op) *W, onShard func(ShardReport)) (*W, error) {
	total := space.Count()
	if total <= 0 {
		return nil, ctx.Err()
	}
	if shards < 1 {
		shards = 1
	}
	if int64(shards) > total {
		shards = int(total)
	}
	base, rem := total/int64(shards), total%int64(shards)

	var best atomic.Int64
	best.Store(noWitness)
	wits := make([]*W, shards)
	canceled := make([]bool, shards)
	done := ctx.Done()

	fed, _ := pool.Run(ctx, shards, shards, func(s int) error {
		start := time.Now()
		lo := int64(s)*base + min(int64(s), rem)
		hi := lo + base
		if int64(s) < rem {
			hi++
		}
		ops := make([]spec.Op, space.n)
		space.Unrank(lo, ops)
		scanned := int64(0)
	scan:
		for r := lo; r < hi; r++ {
			if r > best.Load() {
				break // a lower-ranked witness exists; this shard cannot win
			}
			select {
			case <-done:
				canceled[s] = true
				break scan
			default:
			}
			scanned++
			if w := check(ops); w != nil {
				wits[s] = w
				for {
					b := best.Load()
					if r >= b || best.CompareAndSwap(b, r) {
						break
					}
				}
				break scan
			}
			space.Next(ops)
		}
		if onShard != nil {
			onShard(ShardReport{Shard: s, Shards: shards, Lo: lo, Hi: hi,
				Scanned: scanned, Found: wits[s] != nil, Elapsed: time.Since(start)})
		}
		return nil
	})
	for s := fed; s < shards; s++ {
		canceled[s] = true // never started
	}

	// Contiguous ranges mean the lowest shard with a hit holds the
	// lowest-ranked witness. The win stands only if every shard below it
	// ran to completion: those shards scan strictly lower ranks, so they
	// never prune against `best` and either finished or were canceled.
	for s := 0; s < shards; s++ {
		if wits[s] != nil {
			for b := 0; b < s; b++ {
				if canceled[b] {
					return nil, ctx.Err()
				}
			}
			return wits[s], nil
		}
		if canceled[s] {
			return nil, ctx.Err()
		}
	}
	return nil, nil
}

// ShardedIsNDiscerning is IsNDiscerningCtx with the operation-assignment
// enumeration split across `shards` concurrent workers. It returns
// exactly what the serial scan returns — same verdict, same witness (the
// lowest-ranked witnessing assignment, completed by checkAssignment's
// deterministic choice of u and partition) — while a losing shard is
// cancelled as soon as it provably cannot hold the winning assignment.
// shards below 1 are clamped to 1.
func ShardedIsNDiscerning(ctx context.Context, t *spec.FiniteType, n, shards int, opts ShardOptions) (bool, *Witness, error) {
	if n < 2 {
		panic(fmt.Sprintf("discern: n-discerning is undefined for n=%d (need n >= 2)", n))
	}
	space := NewTupleSpace(t.NumOps(), n, opts.Naive)
	w, err := SearchSharded(ctx, space, shards, func(ops []spec.Op) *Witness {
		return checkAssignment(t, n, ops, opts.Options)
	}, opts.OnShard)
	if err != nil {
		return false, nil, err
	}
	return w != nil, w, nil
}
