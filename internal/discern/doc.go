// Package discern decides Ruppert's n-discerning property for finite
// deterministic types.
//
// A deterministic type T is n-discerning (Section 2 of the paper, adapted
// from Ruppert 2000) if there exist a value u, a partition of processes
// p_0..p_{n-1} into two nonempty teams T_0, T_1, and an operation o_i for
// each p_i, such that for every j the pair sets R_{0,j} and R_{1,j} are
// disjoint, where R_{x,j} collects the pairs (response of p_j's operation,
// resulting object value) over all schedules in S({p_0..p_{n-1}}) that
// contain p_j and start with a process in T_x.
//
// Ruppert proved that a deterministic, readable type has consensus number
// at least n if and only if it is n-discerning; the property is decidable
// in finite time for finite types, and this package is that decision
// procedure.
//
// Implementation: for a fixed value u and operation assignment, a partition
// (T_0, T_1) works iff no "constraint set" is split across teams, where a
// constraint set is the set of first-movers f that produce the same
// (response, value) pair for the same observer j. We union-find the
// first-movers within each constraint set; a valid partition exists iff the
// union-find has at least two components. This avoids enumerating the
// 2^n - 2 partitions.
//
// # Concurrency and byte-stability
//
// The deciders are pure functions of their inputs and safe for
// concurrent use. The operation-assignment space is enumerated through
// a deterministic rank/unrank TupleSpace, so sharded scans return
// exactly the serial decider's answer, including the same
// (lowest-ranked) witness. ShardedIsNDiscerning schedules shards over a
// work-stealing chunk queue: ranks are split into fixed-size chunks,
// workers atomically claim the next unclaimed chunk, and a shared
// best-rank bound prunes chunks that can no longer hold the first
// witness — a rank is only ever skipped when a strictly lower witness
// is already in hand, so the lowest-ranked witness is found regardless
// of claim interleaving. The pre-stealing contiguous-range split is
// kept behind ShardOptions.Contiguous as the cross-validated baseline.
// Witness JSON encoding round-trips byte-identically — the contract the
// persistent decision store relies on.
package discern
