package discern

import (
	"context"
	"fmt"

	"repro/internal/spec"
	"repro/internal/uf"
)

// Witness certifies that a type is n-discerning: the initial value U, the
// team of each process (Teams[i] is 0 or 1), and the operation assigned to
// each process.
type Witness struct {
	N     int
	U     spec.Value
	Teams []int
	Ops   []spec.Op
}

// String renders the witness compactly.
func (w *Witness) String() string {
	return fmt.Sprintf("u=%d teams=%v ops=%v", int(w.U), w.Teams, w.Ops)
}

// Clone returns a deep copy of the witness, so callers may mutate the
// copy's slices without affecting shared state (the engine's memo cache
// serves clones).
func (w *Witness) Clone() *Witness {
	if w == nil {
		return nil
	}
	return &Witness{
		N:     w.N,
		U:     w.U,
		Teams: append([]int(nil), w.Teams...),
		Ops:   append([]spec.Op(nil), w.Ops...),
	}
}

// Options configures the decision procedure.
type Options struct {
	// Naive disables the symmetry reduction over operation assignments
	// (all numOps^n assignments are tried instead of the numOps multisets
	// of size n). Used by ablation benchmarks and cross-checking tests.
	Naive bool
	// NoPrefixSharing disables the shared-prefix DFS over S(P): every
	// schedule is re-simulated from the initial value instead of reusing
	// the object value computed for its prefix. Used by the ablation
	// benchmarks (DESIGN.md Section 5).
	NoPrefixSharing bool
}

// IsNDiscerning reports whether t is n-discerning, for n >= 2, and returns
// a witness if it is. It panics if n < 2, since the property is undefined
// (the partition into two nonempty teams requires at least two processes).
func IsNDiscerning(t *spec.FiniteType, n int) (bool, *Witness) {
	return IsNDiscerningOpt(t, n, Options{})
}

// IsNDiscerningOpt is IsNDiscerning with explicit Options.
func IsNDiscerningOpt(t *spec.FiniteType, n int, opts Options) (bool, *Witness) {
	ok, w, _ := IsNDiscerningCtx(context.Background(), t, n, opts)
	return ok, w
}

// pollEvery is the number of enumeration recursion steps between context
// polls, in addition to the poll at every complete assignment: a power of
// two so the check compiles to a mask. Without it a type with many
// operations could sweep a deep prefix subtree — numOps^k partial tuples
// — between two complete assignments with cancellation pending.
const pollEvery = 256

// IsNDiscerningCtx is IsNDiscerningOpt with cancellation: the search is
// abandoned (returning ctx.Err()) as soon as the context is done. The
// context is polled once per operation assignment, the unit of work of
// the enumeration, and additionally every pollEvery recursion steps so a
// deep prefix sweep cannot delay cancellation.
func IsNDiscerningCtx(ctx context.Context, t *spec.FiniteType, n int, opts Options) (bool, *Witness, error) {
	if n < 2 {
		panic(fmt.Sprintf("discern: n-discerning is undefined for n=%d (need n >= 2)", n))
	}
	numOps := t.NumOps()
	ops := make([]spec.Op, n)
	done := ctx.Done()
	var canceled bool
	var steps uint
	var tryAll func(pos int) *Witness
	tryAll = func(pos int) *Witness {
		if steps++; steps&(pollEvery-1) == 0 {
			select {
			case <-done:
				canceled = true
				return nil
			default:
			}
		}
		if pos == n {
			select {
			case <-done:
				canceled = true
				return nil
			default:
			}
			if w := checkAssignment(t, n, ops, opts); w != nil {
				return w
			}
			return nil
		}
		start := spec.Op(0)
		if !opts.Naive && pos > 0 {
			// Symmetry reduction: processes are interchangeable, so only
			// non-decreasing operation tuples need to be tried.
			start = ops[pos-1]
		}
		for o := start; int(o) < numOps; o++ {
			ops[pos] = o
			if w := tryAll(pos + 1); w != nil {
				return w
			}
			if canceled {
				return nil
			}
		}
		return nil
	}
	if w := tryAll(0); w != nil {
		return true, w, nil
	}
	if canceled {
		return false, nil, ctx.Err()
	}
	return false, nil, nil
}

// pairKey identifies an observation by process j: its operation's response
// together with the object's resulting value at the end of the schedule.
type pairKey struct {
	j    int
	resp spec.Response
	val  spec.Value
}

// checkAssignment decides whether some (u, partition) completes the given
// operation assignment into an n-discerning witness, and returns the
// witness if so.
func checkAssignment(t *spec.FiniteType, n int, ops []spec.Op, opts Options) *Witness {
	for u := 0; u < t.NumValues(); u++ {
		var firstMask map[pairKey]uint32
		if opts.NoPrefixSharing {
			firstMask = observationsNoShare(t, n, ops, spec.Value(u))
		} else {
			firstMask = observations(t, n, ops, spec.Value(u))
		}
		if teams := colorObservations(n, firstMask); teams != nil {
			w := &Witness{N: n, U: spec.Value(u), Teams: teams, Ops: make([]spec.Op, n)}
			copy(w.Ops, ops)
			return w
		}
	}
	return nil
}

// observations collects, for every nonempty schedule in S(P) applied from
// u, the pair (response of each scheduled process, final value) bucketed
// by the schedule's first process, via a shared-prefix DFS (each prefix's
// object value is computed once).
func observations(t *spec.FiniteType, n int, ops []spec.Op, u spec.Value) map[pairKey]uint32 {
	firstMask := make(map[pairKey]uint32)
	inSched := make([]bool, n)
	resps := make([]spec.Response, n)
	order := make([]int, 0, n)
	var dfs func(val spec.Value, first int)
	dfs = func(val spec.Value, first int) {
		bit := uint32(1) << uint(first)
		for _, j := range order {
			firstMask[pairKey{j: j, resp: resps[j], val: val}] |= bit
		}
		for p := 0; p < n; p++ {
			if inSched[p] {
				continue
			}
			e := t.Apply(val, ops[p])
			inSched[p] = true
			resps[p] = e.Resp
			order = append(order, p)
			dfs(e.Next, first)
			order = order[:len(order)-1]
			inSched[p] = false
		}
	}
	for f := 0; f < n; f++ {
		e := t.Apply(u, ops[f])
		inSched[f] = true
		resps[f] = e.Resp
		order = append(order, f)
		dfs(e.Next, f)
		order = order[:len(order)-1]
		inSched[f] = false
	}
	return firstMask
}

// observationsNoShare is the ablation variant of observations: it
// enumerates the schedules identically but re-simulates each schedule
// from u in full instead of sharing prefix values.
func observationsNoShare(t *spec.FiniteType, n int, ops []spec.Op, u spec.Value) map[pairKey]uint32 {
	firstMask := make(map[pairKey]uint32)
	inSched := make([]bool, n)
	order := make([]int, 0, n)
	record := func() {
		// Full re-simulation of the current schedule.
		val := u
		resps := make([]spec.Response, len(order))
		for i, p := range order {
			e := t.Apply(val, ops[p])
			resps[i] = e.Resp
			val = e.Next
		}
		bit := uint32(1) << uint(order[0])
		for i, j := range order {
			firstMask[pairKey{j: j, resp: resps[i], val: val}] |= bit
		}
	}
	var rec func()
	rec = func() {
		if len(order) > 0 {
			record()
		}
		for p := 0; p < n; p++ {
			if inSched[p] {
				continue
			}
			inSched[p] = true
			order = append(order, p)
			rec()
			order = order[:len(order)-1]
			inSched[p] = false
		}
	}
	rec()
	return firstMask
}

// colorObservations finds a partition in which every observation's
// first-mover set is monochromatic: union-find over the masks; a valid
// partition exists iff at least two components remain.
func colorObservations(n int, firstMask map[pairKey]uint32) []int {
	groups := uf.New(n)
	for _, mask := range firstMask {
		groups.UniteMask(mask)
	}
	return groups.TwoColor()
}
