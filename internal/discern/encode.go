package discern

import (
	"encoding/json"
	"fmt"

	"repro/internal/spec"
)

// witnessJSON is the serialized form of a Witness. The field set and
// order are fixed, so marshaling is deterministic: the persistent
// decision store relies on decisions round-tripping byte-identically
// (same idiom as spec's typeJSON).
type witnessJSON struct {
	N     int   `json:"n"`
	U     int   `json:"u"`
	Teams []int `json:"teams"`
	Ops   []int `json:"ops"`
}

// MarshalJSON implements json.Marshaler.
func (w *Witness) MarshalJSON() ([]byte, error) {
	out := witnessJSON{
		N:     w.N,
		U:     int(w.U),
		Teams: w.Teams,
		Ops:   make([]int, len(w.Ops)),
	}
	for i, op := range w.Ops {
		out.Ops[i] = int(op)
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler. The decoded witness is
// validated structurally: one team bit and one operation per process.
// (Whether it actually certifies n-discerning for a given type can only
// be judged against that type, which the witness does not carry.)
func (w *Witness) UnmarshalJSON(data []byte) error {
	var in witnessJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if err := validateWitnessShape("discern", in.N, in.U, in.Teams, in.Ops); err != nil {
		return err
	}
	w.N = in.N
	w.U = spec.Value(in.U)
	w.Teams = append([]int(nil), in.Teams...)
	w.Ops = make([]spec.Op, len(in.Ops))
	for i, op := range in.Ops {
		w.Ops[i] = spec.Op(op)
	}
	return nil
}

// validateWitnessShape checks the common shape of discerning/recording
// witnesses: n >= 2 processes, a nonnegative starting value, a 0/1 team
// bit and a nonnegative operation index per process. record's codec
// shares it via an identical copy (the packages are intentionally
// independent).
func validateWitnessShape(kind string, n, u int, teams, ops []int) error {
	if n < 2 {
		return fmt.Errorf("%s witness: need n >= 2, got %d", kind, n)
	}
	if u < 0 {
		return fmt.Errorf("%s witness: negative starting value %d", kind, u)
	}
	if len(teams) != n {
		return fmt.Errorf("%s witness: want %d team bits, got %d", kind, n, len(teams))
	}
	if len(ops) != n {
		return fmt.Errorf("%s witness: want %d ops, got %d", kind, n, len(ops))
	}
	for i, team := range teams {
		if team != 0 && team != 1 {
			return fmt.Errorf("%s witness: team of process %d is %d, want 0 or 1", kind, i, team)
		}
	}
	for i, op := range ops {
		if op < 0 {
			return fmt.Errorf("%s witness: negative op %d for process %d", kind, op, i)
		}
	}
	return nil
}
