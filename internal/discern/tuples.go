package discern

import (
	"math"

	"repro/internal/spec"
)

// TupleSpace is the operation-assignment enumeration of one level check in
// rank-addressable form: the non-decreasing length-n tuples over the
// operation set (the symmetry-reduced space the deciders scan), or all
// numOps^n tuples in naive mode. Ranks follow lexicographic order, which
// is exactly the order the serial recursive enumeration in
// IsNDiscerningCtx / IsNRecordingCtx visits assignments — that shared
// order is what lets a sharded scan reproduce the serial result bit for
// bit (the lowest-ranked witnessing assignment wins either way).
//
// The zero value is not meaningful; construct with NewTupleSpace.
type TupleSpace struct {
	m, n  int
	naive bool
}

// NewTupleSpace describes the assignment space for n processes over a
// type with numOps operations. With naive=false the space is the
// C(numOps+n-1, n) non-decreasing tuples; with naive=true it is all
// numOps^n tuples (the ablation enumeration).
func NewTupleSpace(numOps, n int, naive bool) TupleSpace {
	return TupleSpace{m: numOps, n: n, naive: naive}
}

// Count returns the number of assignments in the space, saturating at
// math.MaxInt64 for spaces too large to count (which are far too large to
// enumerate anyway).
func (s TupleSpace) Count() int64 {
	if s.naive {
		return powSat(s.m, s.n)
	}
	return binom(s.m+s.n-1, s.n)
}

// Unrank writes the assignment with lexicographic rank r into out, which
// must have length n. r must be in [0, Count()).
func (s TupleSpace) Unrank(r int64, out []spec.Op) {
	if s.naive {
		for i := s.n - 1; i >= 0; i-- {
			out[i] = spec.Op(r % int64(s.m))
			r /= int64(s.m)
		}
		return
	}
	// Walk positions left to right; at position i with running minimum v
	// (tuples are non-decreasing, so out[i] >= out[i-1]), the block of
	// tuples fixing out[i]=v has size C(m-v+n-i-2, n-i-1): the remaining
	// n-i-1 positions range non-decreasingly over [v, m).
	v := 0
	for i := 0; i < s.n; i++ {
		for {
			c := binom(s.m-v+s.n-i-2, s.n-i-1)
			if r < c {
				break
			}
			r -= c
			v++
		}
		out[i] = spec.Op(v)
	}
}

// Rank returns the lexicographic rank of t, the inverse of Unrank. In the
// symmetry-reduced space t must be non-decreasing.
func (s TupleSpace) Rank(t []spec.Op) int64 {
	if s.naive {
		r := int64(0)
		for i := 0; i < s.n; i++ {
			r = r*int64(s.m) + int64(t[i])
		}
		return r
	}
	r := int64(0)
	v := 0
	for i := 0; i < s.n; i++ {
		for ; v < int(t[i]); v++ {
			r += binom(s.m-v+s.n-i-2, s.n-i-1)
		}
	}
	return r
}

// Next advances t to its lexicographic successor in place, returning
// false (and leaving t past the last tuple) when t was the final tuple.
func (s TupleSpace) Next(t []spec.Op) bool {
	if s.naive {
		for i := s.n - 1; i >= 0; i-- {
			if int(t[i]) < s.m-1 {
				t[i]++
				return true
			}
			t[i] = 0
		}
		return false
	}
	for i := s.n - 1; i >= 0; i-- {
		if int(t[i]) < s.m-1 {
			v := t[i] + 1
			for j := i; j < s.n; j++ {
				t[j] = v
			}
			return true
		}
	}
	return false
}

// binom computes C(a, b), saturating at math.MaxInt64.
func binom(a, b int) int64 {
	if b < 0 || b > a {
		return 0
	}
	if b > a-b {
		b = a - b
	}
	r := int64(1)
	for i := 1; i <= b; i++ {
		// The running product stays integral: after this step r equals
		// C(a-b+i, i).
		f := int64(a - b + i)
		if r > math.MaxInt64/f {
			return math.MaxInt64
		}
		r = r * f / int64(i)
	}
	return r
}

// powSat computes m^n, saturating at math.MaxInt64.
func powSat(m, n int) int64 {
	r := int64(1)
	for i := 0; i < n; i++ {
		if m == 0 {
			return 0
		}
		if r > math.MaxInt64/int64(m) {
			return math.MaxInt64
		}
		r *= int64(m)
	}
	return r
}
