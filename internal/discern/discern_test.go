package discern

import (
	"testing"

	"repro/internal/spec"
	"repro/internal/types"
)

// TestKnownConsensusNumbers checks the decider against the classical
// consensus hierarchy facts: for deterministic readable types, Ruppert's
// theorem says consensus number >= n iff n-discerning.
func TestKnownConsensusNumbers(t *testing.T) {
	tests := []struct {
		name string
		ft   *spec.FiniteType
		n    int
		want bool
	}{
		// Registers have consensus number 1.
		{"register not 2-discerning", types.Register(2), 2, false},
		{"register3 not 2-discerning", types.Register(3), 2, false},
		// Test-and-set has consensus number 2.
		{"tas 2-discerning", types.TestAndSet(), 2, true},
		{"tas not 3-discerning", types.TestAndSet(), 3, false},
		// Swap has consensus number 2.
		{"swap 2-discerning", types.Swap(3), 2, true},
		{"swap not 3-discerning", types.Swap(3), 3, false},
		// Fetch-and-add has consensus number 2.
		{"faa 2-discerning", types.FetchAdd(8), 2, true},
		{"faa not 3-discerning", types.FetchAdd(8), 3, false},
		// Queues have consensus number 2. Note the queue is NOT readable,
		// so Ruppert's iff does not apply: the bounded queue is in fact
		// 3-discerning by the letter of the definition (the decider found
		// a witness, re-verified by brute force below), which does not
		// imply consensus number 3 — the discerning-to-consensus
		// construction needs readability to observe the final value.
		{"queue 2-discerning", types.Queue(2), 2, true},
		{"queue 3-discerning (non-readable, no consensus implication)", types.Queue(2), 3, true},
		// CAS and sticky bits have unbounded consensus number.
		{"cas 2-discerning", types.CompareAndSwap(2), 2, true},
		{"cas 3-discerning", types.CompareAndSwap(2), 3, true},
		{"cas 4-discerning", types.CompareAndSwap(2), 4, true},
		{"sticky 3-discerning", types.StickyBit(), 3, true},
		{"sticky 4-discerning", types.StickyBit(), 4, true},
		// Counters with uninformative increments: consensus number 1.
		{"counter not 2-discerning", types.Counter(4), 2, false},
		// Max-registers: consensus number 1.
		{"maxreg not 2-discerning", types.MaxRegister(3), 2, false},
		// Trivial type: nothing.
		{"trivial not 2-discerning", types.Trivial(), 2, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, w := IsNDiscerning(tc.ft, tc.n)
			if got != tc.want {
				t.Errorf("IsNDiscerning(%s, %d) = %v, want %v", tc.ft.Name(), tc.n, got, tc.want)
			}
			if got && w == nil {
				t.Error("positive result must come with a witness")
			}
			if got {
				verifyWitness(t, tc.ft, w)
			}
		})
	}
}

// TestTnnDiscerningSpectrum checks Lemma 15's lower-bound side: T_{n,n'} is
// n-discerning (it has consensus number n), and the upper-bound side at the
// decider level: it is not (n+1)-discerning.
func TestTnnDiscerningSpectrum(t *testing.T) {
	cases := []struct{ n, np int }{{2, 1}, {3, 1}, {3, 2}, {4, 2}, {4, 3}, {5, 2}}
	for _, c := range cases {
		ft := types.Tnn(c.n, c.np)
		ok, w := IsNDiscerning(ft, c.n)
		if !ok {
			t.Errorf("T[%d,%d] should be %d-discerning", c.n, c.np, c.n)
		} else {
			verifyWitness(t, ft, w)
		}
		if c.n+1 <= 6 {
			if ok, _ := IsNDiscerning(ft, c.n+1); ok {
				t.Errorf("T[%d,%d] should not be %d-discerning", c.n, c.np, c.n+1)
			}
		}
	}
}

// TestMonotone checks that n-discerning implies (n-1)-discerning for the
// zoo (dropping a process from a witness yields a witness as long as both
// teams stay nonempty; the decider searches all witnesses, so the implied
// monotonicity must hold on concrete types).
func TestMonotone(t *testing.T) {
	for _, ft := range []*spec.FiniteType{
		types.TestAndSet(), types.CompareAndSwap(2), types.StickyBit(),
		types.Tnn(4, 2), types.Queue(2),
	} {
		prev := true
		for n := 5; n >= 2; n-- {
			ok, _ := IsNDiscerning(ft, n)
			if ok && !prev {
				// found n-discerning after (n+1)-discerning... that is
				// fine; the violation is (n+1)-discerning without
				// n-discerning, checked in the other direction below.
				_ = ok
			}
			prev = ok
		}
		for n := 2; n <= 4; n++ {
			okN, _ := IsNDiscerning(ft, n)
			okN1, _ := IsNDiscerning(ft, n+1)
			if okN1 && !okN {
				t.Errorf("%s: %d-discerning but not %d-discerning", ft.Name(), n+1, n)
			}
		}
	}
}

// TestNaiveMatchesReduced cross-checks the symmetry-reduced search against
// the naive search on the whole zoo for n = 2, 3.
func TestNaiveMatchesReduced(t *testing.T) {
	zoo := []*spec.FiniteType{
		types.Register(2), types.TestAndSet(), types.Swap(2), types.FetchAdd(3),
		types.CompareAndSwap(2), types.StickyBit(), types.Counter(3),
		types.Queue(1), types.Tnn(3, 1), types.Tnn(3, 2), types.Trivial(),
	}
	for _, ft := range zoo {
		for n := 2; n <= 3; n++ {
			fast, _ := IsNDiscerningOpt(ft, n, Options{})
			slow, _ := IsNDiscerningOpt(ft, n, Options{Naive: true})
			if fast != slow {
				t.Errorf("%s n=%d: reduced=%v naive=%v", ft.Name(), n, fast, slow)
			}
		}
	}
}

func TestPanicsOnSmallN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n=1")
		}
	}()
	IsNDiscerning(types.TestAndSet(), 1)
}

func TestWitnessString(t *testing.T) {
	ok, w := IsNDiscerning(types.TestAndSet(), 2)
	if !ok {
		t.Fatal("TAS should be 2-discerning")
	}
	if w.String() == "" {
		t.Error("empty witness string")
	}
}

// verifyWitness re-checks a witness by brute force directly against the
// definition: enumerate every schedule in S(P) containing each p_j and
// confirm R_{0,j} and R_{1,j} are disjoint.
func verifyWitness(t *testing.T, ft *spec.FiniteType, w *Witness) {
	t.Helper()
	n := w.N
	if len(w.Teams) != n || len(w.Ops) != n {
		t.Fatalf("witness arity mismatch: %v", w)
	}
	has0, has1 := false, false
	for _, team := range w.Teams {
		switch team {
		case 0:
			has0 = true
		case 1:
			has1 = true
		default:
			t.Fatalf("bad team value in witness: %v", w)
		}
	}
	if !has0 || !has1 {
		t.Fatalf("witness teams not both nonempty: %v", w)
	}

	type pair struct {
		resp spec.Response
		val  spec.Value
	}
	// R[x][j]
	R := [2][]map[pair]bool{}
	for x := 0; x < 2; x++ {
		R[x] = make([]map[pair]bool, n)
		for j := 0; j < n; j++ {
			R[x][j] = make(map[pair]bool)
		}
	}
	perm := make([]int, 0, n)
	used := make([]bool, n)
	var rec func()
	rec = func() {
		if len(perm) > 0 {
			// Simulate and record.
			v := w.U
			resps := make(map[int]spec.Response, len(perm))
			for _, p := range perm {
				e := ft.Apply(v, w.Ops[p])
				resps[p] = e.Resp
				v = e.Next
			}
			x := w.Teams[perm[0]]
			for _, j := range perm {
				R[x][j][pair{resps[j], v}] = true
			}
		}
		for p := 0; p < n; p++ {
			if used[p] {
				continue
			}
			used[p] = true
			perm = append(perm, p)
			rec()
			perm = perm[:len(perm)-1]
			used[p] = false
		}
	}
	rec()
	for j := 0; j < n; j++ {
		for p := range R[0][j] {
			if R[1][j][p] {
				t.Errorf("witness %v fails: R_{0,%d} and R_{1,%d} share (%d,%d)",
					w, j, j, p.resp, p.val)
			}
		}
	}
}
