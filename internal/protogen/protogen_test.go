package protogen

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/model"
	"repro/internal/protodef"
)

// TestGenerateDeterministic: Generate is a pure function of the seed,
// byte for byte — the whole point of seed-addressed artifacts.
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a.Descriptor, b.Descriptor) {
			t.Fatalf("seed %d: descriptors differ", seed)
		}
		if !reflect.DeepEqual(a.Inputs, b.Inputs) || !reflect.DeepEqual(a.CrashQuota, b.CrashQuota) {
			t.Fatalf("seed %d: inputs/quota differ", seed)
		}
		ja, err := json.Marshal(a.Descriptor)
		if err != nil {
			t.Fatal(err)
		}
		jb, _ := json.Marshal(b.Descriptor)
		if string(ja) != string(jb) {
			t.Fatalf("seed %d: JSON differs", seed)
		}
	}
}

// TestGenerateAlwaysCompiles sweeps a large seed range: every artifact
// compiles (Generate panics otherwise), validates as a model.Protocol,
// and respects the generator's documented dimension bounds.
func TestGenerateAlwaysCompiles(t *testing.T) {
	sawQuota, sawNoQuota := false, false
	for seed := uint64(0); seed < 500; seed++ {
		a := Generate(seed)
		if err := model.Validate(a.Compiled); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		d := a.Descriptor
		if d.Procs < 2 || d.Procs > 3 {
			t.Fatalf("seed %d: procs %d out of [2,3]", seed, d.Procs)
		}
		if len(d.Types) < 1 || len(d.Types) > 2 {
			t.Fatalf("seed %d: %d types", seed, len(d.Types))
		}
		for _, td := range d.Types {
			if len(td.Values) < 2 || len(td.Values) > 5 || len(td.Ops) < 1 || len(td.Ops) > 3 {
				t.Fatalf("seed %d: type %s dims out of range", seed, td.Name)
			}
		}
		if len(a.Inputs) != d.Procs {
			t.Fatalf("seed %d: %d inputs for %d procs", seed, len(a.Inputs), d.Procs)
		}
		if a.CrashQuota != nil {
			sawQuota = true
			if len(a.CrashQuota) != d.Procs {
				t.Fatalf("seed %d: quota length %d", seed, len(a.CrashQuota))
			}
		} else {
			sawNoQuota = true
		}
		if ts := a.Types(); len(ts) == 0 || len(ts) > len(d.Objects) {
			t.Fatalf("seed %d: Types() = %d", seed, len(ts))
		}
	}
	if !sawQuota || !sawNoQuota {
		t.Fatal("seed sweep never produced both crash-quota variants")
	}
}

// TestGenerateRoundTrips: generated descriptors survive the package's
// canonical export — Compile(Describe(Compile(d))) fingerprints equal.
// This keeps protogen output inside the same round-trip law the rest of
// the descriptor pipeline guarantees.
func TestGenerateRoundTrips(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		a := Generate(seed)
		want, err := model.Fingerprint(a.Compiled)
		if err != nil {
			t.Fatalf("seed %d: fingerprint: %v", seed, err)
		}
		exported, err := protodef.Describe(a.Compiled)
		if err != nil {
			t.Fatalf("seed %d: describe: %v", seed, err)
		}
		re, err := protodef.Compile(exported)
		if err != nil {
			t.Fatalf("seed %d: recompile: %v", seed, err)
		}
		got, err := model.Fingerprint(re)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("seed %d: fingerprint changed across Describe round-trip", seed)
		}
	}
}
