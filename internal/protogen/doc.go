// Package protogen generates random — but always well-formed — protocol
// descriptors for differential and property testing.
//
// Generate is a pure function of its seed: the same seed always yields
// the same descriptor, inputs, and crash quota, so any failure found by
// a randomized sweep is reproducible from the one-word seed alone (and
// can be committed as a golden artifact, see testdata/protogen in
// internal/decider/difftest).
//
// Every generated descriptor compiles. The generator guarantees this by
// construction rather than by retry:
//
//   - operation tables are emitted with exactly one transition per
//     value, so they are total;
//   - every machine state carries a "*" fallback successor, so every
//     response resolves;
//   - all names are drawn from fixed small pools within the package
//     budgets of internal/protodef.
//
// Dimensions are deliberately small (2–3 processes, 1–2 types of 2–5
// values and 1–3 operations, 1–2 objects, one shared machine of a
// handful of states): the differential oracle in
// internal/decider/difftest runs full level decisions and model checks
// over hundreds of artifacts, and small shapes keep that sweep fast
// while still covering response-name collisions, multi-object machines,
// and crash-quota variants.
package protogen
