package protogen

import (
	"fmt"

	"repro/internal/protodef"
	"repro/internal/spec"
)

// Artifact is one generated test case: a descriptor with its compiled
// protocol plus the per-process inputs and crash quota a model-checking
// sweep should run it under. Everything is a pure function of Seed.
type Artifact struct {
	// Seed reproduces the artifact via Generate(Seed).
	Seed uint64
	// Descriptor is the generated protocol definition.
	Descriptor *protodef.Descriptor
	// Compiled is Descriptor compiled; Generate panics if compilation
	// fails, so a non-nil Artifact always carries a runnable protocol.
	Compiled *protodef.Compiled
	// Inputs is one binary input per process.
	Inputs []int
	// CrashQuota bounds each process's crashes; nil means a crash-free
	// variant (roughly half of all seeds).
	CrashQuota []int
}

// Types returns the distinct object types of the compiled protocol, in
// object order. These are the inputs a level-decider backend consumes.
func (a *Artifact) Types() []*spec.FiniteType {
	var out []*spec.FiniteType
	seen := make(map[*spec.FiniteType]bool)
	for _, o := range a.Compiled.Objects() {
		if !seen[o.Type] {
			seen[o.Type] = true
			out = append(out, o.Type)
		}
	}
	return out
}

// rng is splitmix64: tiny, fast, and stable across Go releases — the
// generated corpus must not shift when the standard library's PRNG
// does.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n). n must be positive. The modulo bias is
// irrelevant here: n is always tiny relative to 2^64.
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// pick returns a uniformly chosen element of xs.
func (r *rng) pick(xs []string) string { return xs[r.intn(len(xs))] }

// respPool is the shared response-name pool. It is deliberately small so
// distinct operations (and distinct types) frequently reuse a name:
// response interning and cross-op response collisions are exactly where
// a level decider can go wrong.
var respPool = []string{"ack", "zero", "one", "old", "hit"}

// Generate builds the artifact for seed. It is deterministic and total:
// every seed yields a descriptor that compiles. A compile failure is a
// generator bug and panics rather than returning an error, so callers
// (tests, fuzz targets) never need a can't-happen error path.
func Generate(seed uint64) *Artifact {
	r := &rng{s: seed}
	d := &protodef.Descriptor{
		Name:  fmt.Sprintf("gen-%016x", seed),
		Procs: 2 + r.intn(2),
	}

	// Types: 1..2, each 2..5 values and 1..3 total operation tables.
	ntypes := 1 + r.intn(2)
	for ti := 0; ti < ntypes; ti++ {
		nvals := 2 + r.intn(4)
		values := make([]string, nvals)
		for v := range values {
			values[v] = fmt.Sprintf("v%d", v)
		}
		td := protodef.TypeDef{Name: fmt.Sprintf("T%d", ti), Values: values}
		nops := 1 + r.intn(3)
		for oi := 0; oi < nops; oi++ {
			od := protodef.OpDef{Name: fmt.Sprintf("op%d", oi)}
			for _, from := range values {
				od.Transitions = append(od.Transitions, protodef.TransitionDef{
					From: from,
					Resp: r.pick(respPool),
					To:   r.pick(values),
				})
			}
			td.Ops = append(td.Ops, od)
		}
		d.Types = append(d.Types, td)
	}

	// Objects: 1..2, each a random type with a random initial value.
	nobjs := 1 + r.intn(2)
	for oi := 0; oi < nobjs; oi++ {
		t := &d.Types[r.intn(ntypes)]
		d.Objects = append(d.Objects, protodef.ObjectDef{
			Type: t.Name,
			Init: r.pick(t.Values),
		})
	}

	// One shared machine: two decide states (binary consensus) plus 2..5
	// apply states. Every apply state has a "*" fallback, so totality
	// holds no matter which responses its operation can actually return;
	// explicit keys (when present) are drawn from the object type's own
	// response names, the only names compilation accepts.
	napply := 2 + r.intn(4)
	var m protodef.MachineDef
	all := make([]string, 0, napply+2)
	for si := 0; si < napply; si++ {
		all = append(all, fmt.Sprintf("s%d", si))
	}
	for out := 0; out < 2; out++ {
		out := out
		name := fmt.Sprintf("halt%d", out)
		all = append(all, name)
		m.States = append(m.States, protodef.StateDef{Name: name, Decide: &out})
	}
	for si := 0; si < napply; si++ {
		obj := r.intn(nobjs)
		td := typeByName(d, d.Objects[obj].Type)
		sd := protodef.StateDef{
			Name:  fmt.Sprintf("s%d", si),
			Apply: &protodef.ApplyDef{Obj: obj, Op: td.Ops[r.intn(len(td.Ops))].Name},
			Next:  map[string]string{"*": r.pick(all)},
		}
		if r.intn(2) == 0 {
			for i, k := 0, 1+r.intn(2); i < k; i++ {
				sd.Next[r.pick(respNames(td))] = r.pick(all)
			}
		}
		m.States = append(m.States, sd)
	}
	// Start on apply states so generated protocols take steps before
	// (possibly never) deciding; the two inputs may share a start.
	m.Init = []string{
		fmt.Sprintf("s%d", r.intn(napply)),
		fmt.Sprintf("s%d", r.intn(napply)),
	}
	d.Machines = []protodef.MachineDef{m}

	c, err := protodef.Compile(d)
	if err != nil {
		panic(fmt.Sprintf("protogen: seed %#x produced an uncompilable descriptor: %v", seed, err))
	}

	a := &Artifact{Seed: seed, Descriptor: d, Compiled: c}
	for p := 0; p < d.Procs; p++ {
		a.Inputs = append(a.Inputs, r.intn(2))
	}
	if r.intn(2) == 0 {
		a.CrashQuota = make([]int, d.Procs)
		for p := range a.CrashQuota {
			a.CrashQuota[p] = r.intn(2)
		}
	}
	return a
}

// typeByName finds a TypeDef by name. The generator only looks up names
// it just emitted, so a miss is impossible.
func typeByName(d *protodef.Descriptor, name string) *protodef.TypeDef {
	for i := range d.Types {
		if d.Types[i].Name == name {
			return &d.Types[i]
		}
	}
	panic("protogen: unknown type " + name)
}

// respNames collects the distinct response names of a type, in
// first-appearance order (the compiler's interning order).
func respNames(td *protodef.TypeDef) []string {
	var out []string
	seen := make(map[string]bool)
	for _, od := range td.Ops {
		for _, tr := range od.Transitions {
			if !seen[tr.Resp] {
				seen[tr.Resp] = true
				out = append(out, tr.Resp)
			}
		}
	}
	return out
}
