package decider

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/discern"
	"repro/internal/record"
	"repro/internal/spec"
)

// Default is the backend Get resolves the empty name to.
const Default = "search"

// Decider is one level-decider backend: an implementation of the two
// level checks plus their sharded variants. Implementations must be
// stateless or internally synchronized (one Decider value serves every
// engine in the process) and must reproduce the canonical results
// described in the package comment.
type Decider interface {
	// Name returns the backend's registry name.
	Name() string
	// IsNDiscerning decides whether t is n-discerning (n >= 2; panics
	// for n < 2, like discern.IsNDiscerningCtx), returning a witness on
	// a positive decision. The search is abandoned with ctx.Err() when
	// ctx is done.
	IsNDiscerning(ctx context.Context, t *spec.FiniteType, n int) (bool, *discern.Witness, error)
	// IsNRecording is IsNDiscerning for the recording property.
	IsNRecording(ctx context.Context, t *spec.FiniteType, n int) (bool, *record.Witness, error)
	// ShardedIsNDiscerning is IsNDiscerning with the assignment
	// enumeration split across shards concurrent workers (clamped to 1
	// from below), returning exactly the serial result. onShard, when
	// non-nil, receives one report per finished shard from that shard's
	// worker goroutine.
	ShardedIsNDiscerning(ctx context.Context, t *spec.FiniteType, n, shards int, onShard func(discern.ShardReport)) (bool, *discern.Witness, error)
	// ShardedIsNRecording is ShardedIsNDiscerning for the recording
	// property.
	ShardedIsNRecording(ctx context.Context, t *spec.FiniteType, n, shards int, onShard func(record.ShardReport)) (bool, *record.Witness, error)
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Decider)
)

// Register adds a backend under its Name. It panics on an empty name or
// a duplicate registration — backends are wired at init, and a silent
// overwrite would let two packages fight over a name.
func Register(d Decider) {
	name := d.Name()
	if name == "" {
		panic("decider: Register with empty name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("decider: backend %q registered twice", name))
	}
	registry[name] = d
}

// Get resolves a backend name. The empty string selects Default, so
// callers that never heard of backends keep the search decider. An
// unknown name errors with the list of registered backends.
func Get(name string) (Decider, error) {
	if name == "" {
		name = Default
	}
	registryMu.RLock()
	d, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("decider: unknown backend %q (valid: %s)", name, strings.Join(Names(), ", "))
	}
	return d, nil
}

// Names returns the registered backend names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	b := newBitsetDecider()
	Register(searchDecider{})
	Register(b)
	Register(autoDecider{search: searchDecider{}, bitset: b})
}

// autoDecider is the "auto" backend: per-call dispatch to the fastest
// backend that can serve the level. The bitset backend wins decisively
// wherever it applies but its packed observation tables cap out at
// n = BitsetMaxN, so auto picks bitset for n <= BitsetMaxN and the
// unbounded search decider above it. Both targets return canonical
// byte-identical results, so the dispatch is invisible in outputs —
// only in latency.
type autoDecider struct {
	search Decider
	bitset Decider
}

func (autoDecider) Name() string { return "auto" }

func (d autoDecider) pick(n int) Decider {
	if n <= BitsetMaxN {
		return d.bitset
	}
	return d.search
}

func (d autoDecider) IsNDiscerning(ctx context.Context, t *spec.FiniteType, n int) (bool, *discern.Witness, error) {
	return d.pick(n).IsNDiscerning(ctx, t, n)
}

func (d autoDecider) IsNRecording(ctx context.Context, t *spec.FiniteType, n int) (bool, *record.Witness, error) {
	return d.pick(n).IsNRecording(ctx, t, n)
}

func (d autoDecider) ShardedIsNDiscerning(ctx context.Context, t *spec.FiniteType, n, shards int, onShard func(discern.ShardReport)) (bool, *discern.Witness, error) {
	return d.pick(n).ShardedIsNDiscerning(ctx, t, n, shards, onShard)
}

func (d autoDecider) ShardedIsNRecording(ctx context.Context, t *spec.FiniteType, n, shards int, onShard func(record.ShardReport)) (bool, *record.Witness, error) {
	return d.pick(n).ShardedIsNRecording(ctx, t, n, shards, onShard)
}

// searchDecider is the "search" backend: the recursive-search deciders
// the repository grew up on, unchanged. It is the canonical semantics
// every other backend is differentially tested against.
type searchDecider struct{}

func (searchDecider) Name() string { return "search" }

func (searchDecider) IsNDiscerning(ctx context.Context, t *spec.FiniteType, n int) (bool, *discern.Witness, error) {
	return discern.IsNDiscerningCtx(ctx, t, n, discern.Options{})
}

func (searchDecider) IsNRecording(ctx context.Context, t *spec.FiniteType, n int) (bool, *record.Witness, error) {
	return record.IsNRecordingCtx(ctx, t, n, record.Options{})
}

func (searchDecider) ShardedIsNDiscerning(ctx context.Context, t *spec.FiniteType, n, shards int, onShard func(discern.ShardReport)) (bool, *discern.Witness, error) {
	return discern.ShardedIsNDiscerning(ctx, t, n, shards, discern.ShardOptions{OnShard: onShard})
}

func (searchDecider) ShardedIsNRecording(ctx context.Context, t *spec.FiniteType, n, shards int, onShard func(record.ShardReport)) (bool, *record.Witness, error) {
	return record.ShardedIsNRecording(ctx, t, n, shards, record.ShardOptions{OnShard: onShard})
}
