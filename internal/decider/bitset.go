package decider

import (
	"context"
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/discern"
	"repro/internal/record"
	"repro/internal/spec"
	"repro/internal/uf"
)

// BitsetMaxN is the largest process count the bitset backend accepts:
// its frontier arrays are indexed by schedule subset, so memory is
// O(2^n * numValues) words per worker. 16 is far beyond what assignment
// enumeration can sweep in practice while keeping the worst-case
// scratch small; larger n errors with a pointer at the search backend.
const BitsetMaxN = 16

// bitsetDecider is the "bitset" backend: a semi-symbolic level decider.
// It enumerates operation assignments exactly like the search backend
// (same symmetry-reduced tuple order), but decides each assignment with
// two subset-indexed frontier sweeps over packed words instead of a DFS
// over individual schedules:
//
//   - reach[set][v] is the packed first-mover set of all orderings of
//     exactly `set` that drive the object from u to value v, built by
//     one forward sweep over subsets in ascending mask order (every
//     superset has a larger mask, so each frontier is complete when
//     read).
//   - desc[set][v] is the packed bitset of final values reachable from
//     v by appending any ordering of any subset of the processes not in
//     `set`, built by one backward sweep in descending mask order.
//
// A schedule observation "process j saw response r and the object ended
// at value v" then decomposes as prefix-set + j + suffix: for every set
// B not containing j and every value b with reach[B][b] != 0, process j
// responds resp(b, ops[j]) and the final value ranges over
// desc[B+j][next(b, ops[j])] — so the per-(j, response, final-value)
// first-mover masks of ALL schedules accumulate in one pass over 2^n
// subsets. The masks feed the exact colorings of the search backend
// (union-find TwoColor for discerning, record.ColorFinal for
// recording), which makes the two backends' witnesses byte-identical.
type bitsetDecider struct{}

func newBitsetDecider() bitsetDecider { return bitsetDecider{} }

func (bitsetDecider) Name() string { return "bitset" }

func (bitsetDecider) IsNDiscerning(ctx context.Context, t *spec.FiniteType, n int) (bool, *discern.Witness, error) {
	return bitsetDecider{}.ShardedIsNDiscerning(ctx, t, n, 1, nil)
}

func (bitsetDecider) IsNRecording(ctx context.Context, t *spec.FiniteType, n int) (bool, *record.Witness, error) {
	return bitsetDecider{}.ShardedIsNRecording(ctx, t, n, 1, nil)
}

func (bitsetDecider) ShardedIsNDiscerning(ctx context.Context, t *spec.FiniteType, n, shards int, onShard func(discern.ShardReport)) (bool, *discern.Witness, error) {
	if n < 2 {
		panic(fmt.Sprintf("decider: n-discerning is undefined for n=%d (need n >= 2)", n))
	}
	l, err := newBitsetLevel(t, n)
	if err != nil {
		return false, nil, err
	}
	space := discern.NewTupleSpace(t.NumOps(), n, false)
	w, err := discern.SearchSharded(ctx, space, shards, l.checkDiscern, onShard)
	if err != nil {
		return false, nil, err
	}
	return w != nil, w, nil
}

func (bitsetDecider) ShardedIsNRecording(ctx context.Context, t *spec.FiniteType, n, shards int, onShard func(record.ShardReport)) (bool, *record.Witness, error) {
	if n < 2 {
		panic(fmt.Sprintf("decider: n-recording is undefined for n=%d (need n >= 2)", n))
	}
	l, err := newBitsetLevel(t, n)
	if err != nil {
		return false, nil, err
	}
	space := discern.NewTupleSpace(t.NumOps(), n, false)
	w, err := discern.SearchSharded(ctx, space, shards, l.checkRecord, onShard)
	if err != nil {
		return false, nil, err
	}
	return w != nil, w, nil
}

// bitsetLevel is one level check's precomputed context: the type's
// transition tables flattened to dense arrays plus a pool of per-worker
// sweep scratch (the check closures run concurrently under sharding).
type bitsetLevel struct {
	n, V, O int
	// R is the dense response-class count; respID[v*O+o] interns the
	// response of (value v, op o) into [0, R).
	R      int
	respID []int
	// next[v*O+o] is the successor value of (value v, op o).
	next []spec.Value
	pool sync.Pool
}

// bitsetScratch is one worker's sweep state, reused across assignments.
type bitsetScratch struct {
	// reach[set*V+v]: first-mover masks of orderings of exactly set
	// ending at value v (or-accumulated; zeroed per initial value).
	reach []uint32
	// desc[(set*V+v)*W .. +W]: bitset of final values reachable from v
	// past set (fully overwritten each sweep, no zeroing needed).
	desc []uint64
	// obs[(j*R+r)*V+v]: first-mover masks per observation (discerning).
	obs []uint32
	// finalMask[v]: first-mover masks per final value (recording).
	finalMask []uint32
}

// newBitsetLevel validates the dimensions and flattens t's tables.
func newBitsetLevel(t *spec.FiniteType, n int) (*bitsetLevel, error) {
	if n > BitsetMaxN {
		return nil, fmt.Errorf("decider: bitset backend supports n <= %d, got n=%d (use backend=search)", BitsetMaxN, n)
	}
	V, O := t.NumValues(), t.NumOps()
	l := &bitsetLevel{
		n: n, V: V, O: O,
		respID: make([]int, V*O),
		next:   make([]spec.Value, V*O),
	}
	seen := make(map[spec.Response]int)
	for v := 0; v < V; v++ {
		for o := 0; o < O; o++ {
			e := t.Apply(spec.Value(v), spec.Op(o))
			id, ok := seen[e.Resp]
			if !ok {
				id = len(seen)
				seen[e.Resp] = id
			}
			l.respID[v*O+o] = id
			l.next[v*O+o] = e.Next
		}
	}
	l.R = len(seen)
	W := l.words()
	size := 1 << n
	l.pool.New = func() any {
		return &bitsetScratch{
			reach:     make([]uint32, size*V),
			desc:      make([]uint64, size*V*W),
			obs:       make([]uint32, n*l.R*V),
			finalMask: make([]uint32, V),
		}
	}
	return l, nil
}

// words is the per-cell word count of the final-value bitsets.
func (l *bitsetLevel) words() int { return (l.V + 63) / 64 }

// sweep fills s.reach and s.desc for one (assignment, initial value).
func (l *bitsetLevel) sweep(s *bitsetScratch, ops []spec.Op, u spec.Value) {
	n, V, O, W := l.n, l.V, l.O, l.words()
	full := 1<<n - 1
	clear(s.reach[:(full+1)*V])

	// Forward: seed the singleton sets, then extend each completed
	// frontier by every unscheduled process. Ascending mask order makes
	// every reach[set] complete before any superset reads it.
	for f := 0; f < n; f++ {
		s.reach[(1<<f)*V+int(l.next[int(u)*O+int(ops[f])])] |= 1 << uint(f)
	}
	for set := 1; set <= full; set++ {
		if set == full {
			break // nothing left to extend
		}
		row := s.reach[set*V : (set+1)*V]
		for v, fm := range row {
			if fm == 0 {
				continue
			}
			rest := full &^ set
			for rest != 0 {
				p := bits.TrailingZeros32(uint32(rest))
				rest &= rest - 1
				s.reach[(set|1<<p)*V+int(l.next[v*O+int(ops[p])])] |= fm
			}
		}
	}

	// Backward: desc[full][v] = {v}; below, union over one-step
	// extensions. Descending mask order makes every desc[set|p]
	// complete before desc[set] reads it. Cells are fully overwritten.
	for set := full; set >= 0; set-- {
		rest := full &^ set
		for v := 0; v < V; v++ {
			cell := s.desc[(set*V+v)*W : (set*V+v+1)*W]
			clear(cell)
			cell[v>>6] = 1 << uint(v&63)
			r := rest
			for r != 0 {
				p := bits.TrailingZeros32(uint32(r))
				r &= r - 1
				child := s.desc[((set|1<<p)*V+int(l.next[v*O+int(ops[p])]))*W:]
				for w := 0; w < W; w++ {
					cell[w] |= child[w]
				}
			}
		}
	}
}

// accumulate merges one decomposition step into the observation masks:
// prefix-set B at value b (first movers fm, or the j-first case), then
// process j, then any suffix. Final values come from desc[B+j].
func (l *bitsetLevel) accumulate(s *bitsetScratch, ops []spec.Op, j int, set int, b int, fm uint32) {
	V, O, W := l.V, l.O, l.words()
	cell := int(b)*O + int(ops[j])
	r := l.respID[cell]
	after := (set | 1<<j) * V
	finals := s.desc[(after+int(l.next[cell]))*W:]
	base := (j*l.R + r) * V
	for w := 0; w < W; w++ {
		word := finals[w]
		for word != 0 {
			v := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			s.obs[base+v] |= fm
		}
	}
}

// checkDiscern decides one assignment for the discerning property,
// returning the witness of the smallest witnessing initial value.
func (l *bitsetLevel) checkDiscern(ops []spec.Op) *discern.Witness {
	s := l.pool.Get().(*bitsetScratch)
	defer l.pool.Put(s)
	n, V := l.n, l.V
	full := 1<<n - 1
	for u := 0; u < V; u++ {
		l.sweep(s, ops, spec.Value(u))
		clear(s.obs)
		for j := 0; j < n; j++ {
			// j first: empty prefix at value u, first mover j itself.
			l.accumulate(s, ops, j, 0, u, 1<<uint(j))
			// Nonempty prefixes: every set avoiding j, every value the
			// prefix can reach.
			for set := 1; set <= full; set++ {
				if set&(1<<j) != 0 {
					continue
				}
				row := s.reach[set*V : (set+1)*V]
				for b, fm := range row {
					if fm != 0 {
						l.accumulate(s, ops, j, set, b, fm)
					}
				}
			}
		}
		groups := uf.New(n)
		for _, fm := range s.obs {
			groups.UniteMask(fm)
		}
		if teams := groups.TwoColor(); teams != nil {
			return &discern.Witness{N: n, U: spec.Value(u), Teams: teams,
				Ops: append([]spec.Op(nil), ops...)}
		}
	}
	return nil
}

// checkRecord decides one assignment for the recording property. The
// final-value first-mover masks are the row sums of the forward sweep;
// record.ColorFinal turns them into the canonical team assignment.
func (l *bitsetLevel) checkRecord(ops []spec.Op) *record.Witness {
	s := l.pool.Get().(*bitsetScratch)
	defer l.pool.Put(s)
	n, V := l.n, l.V
	full := 1<<n - 1
	for u := 0; u < V; u++ {
		l.sweep(s, ops, spec.Value(u))
		clear(s.finalMask)
		for set := 1; set <= full; set++ {
			row := s.reach[set*V : (set+1)*V]
			for v, fm := range row {
				s.finalMask[v] |= fm
			}
		}
		masks := make(map[spec.Value]uint32, V)
		for v, fm := range s.finalMask {
			if fm != 0 {
				masks[spec.Value(v)] = fm
			}
		}
		if teams := record.ColorFinal(n, masks, spec.Value(u)); teams != nil {
			return &record.Witness{N: n, U: spec.Value(u), Teams: teams,
				Ops: append([]spec.Op(nil), ops...)}
		}
	}
	return nil
}
