// Package difftest is the differential oracle for level-decider
// backends: it runs every registered backend (internal/decider) over
// the same type and cross-checks the results, and it verifies positive
// witnesses against the property definitions with its own brute-force
// enumerator — code deliberately independent of both the recursive
// search and the bitset sweep, so a shared bug cannot vouch for itself.
//
// Check is the harness entry point. For one (type, n) it asserts, over
// all backends and all requested shard counts:
//
//   - every backend's decision agrees with every other's;
//   - witnesses are byte-identical across backends and across
//     serial-vs-sharded runs of one backend (the contract documented in
//     internal/decider);
//   - every positive witness independently verifies (VerifyDiscern,
//     VerifyRecord).
//
// The harness is driven three ways: a seeded sweep over protocols from
// internal/protogen (hundreds of seeds, n in 2..4, shard counts 1, 2
// and 7, race-enabled in CI), a golden corpus of committed descriptors
// under testdata/protogen replayed by name (regenerate with
// `go run ./internal/decider/difftest/gen`), and a native fuzz target
// (FuzzDifferential) that lets the fuzzer drive the seed space.
package difftest
