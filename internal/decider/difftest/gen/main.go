// Command gen regenerates the golden corpus under
// internal/decider/difftest/testdata/protogen: 25 protogen artifacts
// serialized as difftest.CorpusEntry JSON, one file per seed. Run it
// from the repository root after a deliberate generator change and
// commit the diff — the golden test replays the committed bytes, so an
// accidental generator drift shows up as a corpus diff, not a silent
// rewrite.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/decider/difftest"
	"repro/internal/protogen"
)

func main() {
	dir := flag.String("dir", filepath.Join("internal", "decider", "difftest", "testdata", "protogen"),
		"output directory for the corpus files")
	count := flag.Uint64("count", 25, "number of seeds to emit (seeds 0..count-1)")
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for seed := uint64(0); seed < *count; seed++ {
		a := protogen.Generate(seed)
		e := difftest.CorpusEntry{
			Seed:       a.Seed,
			Inputs:     a.Inputs,
			CrashQuota: a.CrashQuota,
			Descriptor: a.Descriptor,
		}
		data, err := json.MarshalIndent(&e, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		name := filepath.Join(*dir, fmt.Sprintf("gen-%04d.json", seed))
		if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %d corpus entries to %s\n", *count, *dir)
}
