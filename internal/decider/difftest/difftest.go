package difftest

import (
	"context"
	"fmt"
	"reflect"

	"repro/internal/decider"
	"repro/internal/discern"
	"repro/internal/protodef"
	"repro/internal/record"
	"repro/internal/spec"
)

// CorpusEntry is the on-disk form of one golden artifact under
// testdata/protogen: the generator seed it came from, the model-check
// parameters, and the full descriptor. The descriptor is committed
// verbatim — the golden test replays it as stored rather than
// regenerating from the seed, so generator changes cannot silently
// rewrite the corpus.
type CorpusEntry struct {
	Seed       uint64               `json:"seed"`
	Inputs     []int                `json:"inputs"`
	CrashQuota []int                `json:"crashQuota,omitempty"`
	Descriptor *protodef.Descriptor `json:"descriptor"`
}

// checkTeams validates the shared witness shape: one team per process,
// labels in {0, 1}, both teams nonempty, operations within the type.
func checkTeams(t *spec.FiniteType, n int, teams []int, ops []spec.Op) error {
	if len(teams) != n || len(ops) != n {
		return fmt.Errorf("witness has %d teams / %d ops for n=%d", len(teams), len(ops), n)
	}
	var seen [2]bool
	for i, team := range teams {
		if team != 0 && team != 1 {
			return fmt.Errorf("teams[%d] = %d, not a two-coloring", i, team)
		}
		seen[team] = true
	}
	if !seen[0] || !seen[1] {
		return fmt.Errorf("teams %v leave one side empty", teams)
	}
	for i, o := range ops {
		if int(o) < 0 || int(o) >= t.NumOps() {
			return fmt.Errorf("ops[%d] = %d out of range for %s", i, o, t.Name())
		}
	}
	return nil
}

// schedules enumerates every nonempty ordered schedule of distinct
// processes from {0..n-1} and calls visit with the schedule. The slice
// is reused across calls; visit must not retain it.
func schedules(n int, visit func(order []int)) {
	used := make([]bool, n)
	order := make([]int, 0, n)
	var rec func()
	rec = func() {
		if len(order) > 0 {
			visit(order)
		}
		for p := 0; p < n; p++ {
			if used[p] {
				continue
			}
			used[p] = true
			order = append(order, p)
			rec()
			order = order[:len(order)-1]
			used[p] = false
		}
	}
	rec()
}

// VerifyDiscern checks that w certifies t as n-discerning, by the
// definition: over every nonempty schedule of the assigned operations
// from U, each observation — a scheduled process together with its
// response and the schedule's final object value — must determine the
// first mover's team. The check re-simulates every schedule from U with
// nothing shared with the deciders under test.
func VerifyDiscern(t *spec.FiniteType, n int, w *discern.Witness) error {
	if w == nil {
		return fmt.Errorf("positive discerning decision with nil witness")
	}
	if w.N != n {
		return fmt.Errorf("witness N=%d for a n=%d decision", w.N, n)
	}
	if int(w.U) < 0 || int(w.U) >= t.NumValues() {
		return fmt.Errorf("witness U=%d out of range", w.U)
	}
	if err := checkTeams(t, n, w.Teams, w.Ops); err != nil {
		return err
	}
	type obs struct {
		j    int
		resp spec.Response
		val  spec.Value
	}
	team := make(map[obs]int)
	var bad error
	resps := make([]spec.Response, n)
	schedules(n, func(order []int) {
		if bad != nil {
			return
		}
		val := w.U
		for _, p := range order {
			e := t.Apply(val, w.Ops[p])
			resps[p] = e.Resp
			val = e.Next
		}
		first := w.Teams[order[0]]
		for _, j := range order {
			k := obs{j, resps[j], val}
			if prev, ok := team[k]; ok {
				if prev != first {
					bad = fmt.Errorf("observation (j=%d resp=%d final=%d) reachable from both teams (witness %s)",
						j, k.resp, k.val, w)
				}
			} else {
				team[k] = first
			}
		}
	})
	return bad
}

// VerifyRecord checks that w certifies t as n-recording: every final
// value reachable by a nonempty schedule from U must be producible from
// one team only (condition 1), and when U itself is producible, the team
// opposite U's producers must be a single process that cannot produce U
// (condition 2 — a lone opponent cannot fake the untouched value).
// Schedules are re-simulated from U independently of the deciders.
func VerifyRecord(t *spec.FiniteType, n int, w *record.Witness) error {
	if w == nil {
		return fmt.Errorf("positive recording decision with nil witness")
	}
	if w.N != n {
		return fmt.Errorf("witness N=%d for a n=%d decision", w.N, n)
	}
	if int(w.U) < 0 || int(w.U) >= t.NumValues() {
		return fmt.Errorf("witness U=%d out of range", w.U)
	}
	if err := checkTeams(t, n, w.Teams, w.Ops); err != nil {
		return err
	}
	// firstMask[v] = bitmask of first movers that can leave the object
	// at v via some nonempty schedule.
	firstMask := make(map[spec.Value]uint32)
	schedules(n, func(order []int) {
		val := w.U
		for _, p := range order {
			val = t.Apply(val, w.Ops[p]).Next
		}
		firstMask[val] |= 1 << uint(order[0])
	})
	for v, mask := range firstMask {
		team := -1
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			if team == -1 {
				team = w.Teams[i]
			} else if w.Teams[i] != team {
				return fmt.Errorf("final value %d producible from both teams (witness %s)", v, w)
			}
		}
	}
	maskU := firstMask[w.U]
	if maskU == 0 {
		return nil
	}
	producerTeam := -1
	for i := 0; i < n; i++ {
		if maskU&(1<<uint(i)) != 0 {
			producerTeam = w.Teams[i]
			break
		}
	}
	opposite := 1 - producerTeam
	lone := -1
	for i := 0; i < n; i++ {
		if w.Teams[i] != opposite {
			continue
		}
		if lone != -1 {
			return fmt.Errorf("U=%d producible but team %d has more than one process (witness %s)",
				w.U, opposite, w)
		}
		lone = i
	}
	if maskU&(1<<uint(lone)) != 0 {
		return fmt.Errorf("lone opponent p%d can itself produce U=%d (witness %s)", lone, w.U, w)
	}
	return nil
}

// Check is the differential oracle for one (type, n): it runs every
// registered backend serially and at each of the given shard counts,
// plus both shard schedulers (the work-stealing chunk queue and the
// contiguous-range baseline) at each count, and fails on any divergence
// — in decision, in witness bytes (across backends, serial-vs-sharded,
// or stealing-vs-contiguous), or in a positive witness that does not
// independently verify. shards entries must be >= 1; pass {1, 2, 7} to
// cover degenerate, even, and uneven sharding.
func Check(ctx context.Context, t *spec.FiniteType, n int, shards []int) error {
	names := decider.Names()
	if len(names) < 2 {
		return fmt.Errorf("differential test needs at least 2 backends, have %v", names)
	}

	// Discerning.
	var refOK bool
	var refW *discern.Witness
	for bi, name := range names {
		d, err := decider.Get(name)
		if err != nil {
			return err
		}
		ok, w, err := d.IsNDiscerning(ctx, t, n)
		if err != nil {
			return fmt.Errorf("%s: discerning n=%d: %w", name, n, err)
		}
		if ok {
			if err := VerifyDiscern(t, n, w); err != nil {
				return fmt.Errorf("%s: discerning n=%d witness invalid: %w", name, n, err)
			}
		} else if w != nil {
			return fmt.Errorf("%s: negative discerning decision carries a witness", name)
		}
		if bi == 0 {
			refOK, refW = ok, w
		} else if ok != refOK || !reflect.DeepEqual(w, refW) {
			return fmt.Errorf("discerning n=%d: %s says (%v, %v), %s says (%v, %v)",
				n, names[0], refOK, refW, name, ok, w)
		}
		for _, s := range shards {
			sok, sw, err := d.ShardedIsNDiscerning(ctx, t, n, s, nil)
			if err != nil {
				return fmt.Errorf("%s: discerning n=%d shards=%d: %w", name, n, s, err)
			}
			if sok != ok || !reflect.DeepEqual(sw, w) {
				return fmt.Errorf("%s: discerning n=%d shards=%d diverges from serial: (%v, %v) vs (%v, %v)",
					name, n, s, sok, sw, ok, w)
			}
		}
	}

	// Both shard schedulers, cross-validated directly against the serial
	// reference: the work-stealing chunk queue (the default every backend
	// above just exercised) and the contiguous-range baseline must both
	// reproduce the reference decision and witness bytes at every shard
	// count.
	for _, s := range shards {
		for _, contiguous := range []bool{false, true} {
			mode := "stealing"
			if contiguous {
				mode = "contiguous"
			}
			sok, sw, err := discern.ShardedIsNDiscerning(ctx, t, n, s,
				discern.ShardOptions{Contiguous: contiguous})
			if err != nil {
				return fmt.Errorf("%s: discerning n=%d shards=%d: %w", mode, n, s, err)
			}
			if sok != refOK || !reflect.DeepEqual(sw, refW) {
				return fmt.Errorf("%s: discerning n=%d shards=%d diverges from serial: (%v, %v) vs (%v, %v)",
					mode, n, s, sok, sw, refOK, refW)
			}
		}
	}

	// Recording.
	var refROK bool
	var refRW *record.Witness
	for bi, name := range names {
		d, err := decider.Get(name)
		if err != nil {
			return err
		}
		ok, w, err := d.IsNRecording(ctx, t, n)
		if err != nil {
			return fmt.Errorf("%s: recording n=%d: %w", name, n, err)
		}
		if ok {
			if err := VerifyRecord(t, n, w); err != nil {
				return fmt.Errorf("%s: recording n=%d witness invalid: %w", name, n, err)
			}
		} else if w != nil {
			return fmt.Errorf("%s: negative recording decision carries a witness", name)
		}
		if bi == 0 {
			refROK, refRW = ok, w
		} else if ok != refROK || !reflect.DeepEqual(w, refRW) {
			return fmt.Errorf("recording n=%d: %s says (%v, %v), %s says (%v, %v)",
				n, names[0], refROK, refRW, name, ok, w)
		}
		for _, s := range shards {
			sok, sw, err := d.ShardedIsNRecording(ctx, t, n, s, nil)
			if err != nil {
				return fmt.Errorf("%s: recording n=%d shards=%d: %w", name, n, s, err)
			}
			if sok != ok || !reflect.DeepEqual(sw, w) {
				return fmt.Errorf("%s: recording n=%d shards=%d diverges from serial: (%v, %v) vs (%v, %v)",
					name, n, s, sok, sw, ok, w)
			}
		}
	}
	for _, s := range shards {
		for _, contiguous := range []bool{false, true} {
			mode := "stealing"
			if contiguous {
				mode = "contiguous"
			}
			sok, sw, err := record.ShardedIsNRecording(ctx, t, n, s,
				record.ShardOptions{Contiguous: contiguous})
			if err != nil {
				return fmt.Errorf("%s: recording n=%d shards=%d: %w", mode, n, s, err)
			}
			if sok != refROK || !reflect.DeepEqual(sw, refRW) {
				return fmt.Errorf("%s: recording n=%d shards=%d diverges from serial: (%v, %v) vs (%v, %v)",
					mode, n, s, sok, sw, refROK, refRW)
			}
		}
	}
	return nil
}
