package difftest

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/protodef"
	"repro/internal/protogen"
	"repro/internal/spec"
	"repro/internal/types"
)

// diffShards covers degenerate (serial re-entry), even, and uneven
// shard splits in every differential run.
var diffShards = []int{1, 2, 7}

// TestDifferentialRandomProtocols is the main oracle sweep: 200 seeded
// protocols, every object type, n = 2..4, all shard counts — any
// divergence between backends, any invalid witness, and any
// serial-vs-sharded mismatch fails with the seed in the message.
// Run with -race in CI: the sharded variants exercise the bitset
// backend's scratch pooling across worker goroutines.
func TestDifferentialRandomProtocols(t *testing.T) {
	ctx := context.Background()
	for seed := uint64(0); seed < 200; seed++ {
		a := protogen.Generate(seed)
		for ti, ft := range a.Types() {
			for n := 2; n <= 4; n++ {
				if err := Check(ctx, ft, n, diffShards); err != nil {
					t.Fatalf("seed %d type %d (%s) n=%d: %v", seed, ti, ft.Name(), n, err)
				}
			}
		}
	}
}

// TestDifferentialRegistryTypes runs the oracle over curated registry
// types too — the shapes the paper actually talks about, which random
// tables only approximate.
func TestDifferentialRegistryTypes(t *testing.T) {
	ctx := context.Background()
	for _, ft := range []*spec.FiniteType{
		types.Register(2),
		types.TestAndSet(),
		types.Swap(2),
		types.FetchAdd(3),
		types.CompareAndSwap(2),
		types.StickyBit(),
		types.Queue(2),
		types.Tnn(3, 2),
	} {
		for n := 2; n <= 4; n++ {
			if err := Check(ctx, ft, n, diffShards); err != nil {
				t.Fatalf("%s n=%d: %v", ft.Name(), n, err)
			}
		}
	}
}

// TestDifferentialEngineCheck drives generated protocols through the
// full engine on both backends — analyses over the generated types and
// model checks under the artifact's inputs and crash quota — and
// compares outcomes. Model-check walks run no level decider, so this
// guards the backend plumbing (engine construction, caches, request
// validation) rather than the decision math.
func TestDifferentialEngineCheck(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		a := protogen.Generate(seed)
		search := engine.New(engine.WithBackend("search"), engine.WithCache(engine.NewCache()))
		bitset := engine.New(engine.WithBackend("bitset"), engine.WithCache(engine.NewCache()))
		for _, ft := range a.Types() {
			sa, err := search.AnalyzeTo(ft, 3)
			if err != nil {
				t.Fatalf("seed %d: search analyze: %v", seed, err)
			}
			ba, err := bitset.AnalyzeTo(ft, 3)
			if err != nil {
				t.Fatalf("seed %d: bitset analyze: %v", seed, err)
			}
			if !reflect.DeepEqual(sa, ba) {
				t.Fatalf("seed %d type %s: analyses diverged:\nsearch: %+v\nbitset: %+v",
					seed, ft.Name(), sa, ba)
			}
		}
		req := engine.CheckRequest{Inputs: a.Inputs, CrashQuota: a.CrashQuota, MaxNodes: 200_000}
		rs, err := search.Check(a.Compiled, req)
		if err != nil {
			t.Fatalf("seed %d: search check: %v", seed, err)
		}
		rb, err := bitset.Check(a.Compiled, req)
		if err != nil {
			t.Fatalf("seed %d: bitset check: %v", seed, err)
		}
		if rs.OK() != rb.OK() || rs.Nodes != rb.Nodes || len(rs.Violations) != len(rb.Violations) {
			t.Fatalf("seed %d: check diverged: search ok=%v nodes=%d viol=%d, bitset ok=%v nodes=%d viol=%d",
				seed, rs.OK(), rs.Nodes, len(rs.Violations), rb.OK(), rb.Nodes, len(rb.Violations))
		}
	}
}

// TestGoldenCorpus replays the committed corpus under testdata/protogen
// by name: each descriptor is compiled as stored (never regenerated
// from its seed) and pushed through the oracle and a cross-backend
// model check. Regenerate with `go run ./internal/decider/difftest/gen`
// after a deliberate generator change.
func TestGoldenCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "protogen", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 20 {
		t.Fatalf("golden corpus has %d entries, want >= 20 (run go run ./internal/decider/difftest/gen)", len(files))
	}
	ctx := context.Background()
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			var e CorpusEntry
			if err := json.Unmarshal(data, &e); err != nil {
				t.Fatal(err)
			}
			c, err := protodef.Compile(e.Descriptor)
			if err != nil {
				t.Fatalf("committed descriptor no longer compiles: %v", err)
			}
			seen := make(map[string]bool)
			for _, o := range c.Objects() {
				if seen[o.Type.Name()] {
					continue
				}
				seen[o.Type.Name()] = true
				for n := 2; n <= 3; n++ {
					if err := Check(ctx, o.Type, n, diffShards); err != nil {
						t.Fatalf("type %s n=%d: %v", o.Type.Name(), n, err)
					}
				}
			}
			search := engine.New(engine.WithBackend("search"), engine.WithCache(engine.NewCache()))
			bitset := engine.New(engine.WithBackend("bitset"), engine.WithCache(engine.NewCache()))
			req := engine.CheckRequest{Inputs: e.Inputs, CrashQuota: e.CrashQuota, MaxNodes: 200_000}
			rs, err := search.Check(c, req)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := bitset.Check(c, req)
			if err != nil {
				t.Fatal(err)
			}
			if rs.OK() != rb.OK() || rs.Nodes != rb.Nodes {
				t.Fatalf("check diverged: search ok=%v nodes=%d, bitset ok=%v nodes=%d",
					rs.OK(), rs.Nodes, rb.OK(), rb.Nodes)
			}
		})
	}
}

// FuzzDifferential hands the generator seed (and n) to the fuzzer: any
// input that makes the backends disagree, or produces an invalid
// witness, is a crash the fuzzer minimizes to a seed.
func FuzzDifferential(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(seed, uint8(seed))
	}
	f.Fuzz(func(t *testing.T, seed uint64, rawN uint8) {
		n := 2 + int(rawN%3)
		a := protogen.Generate(seed)
		for _, ft := range a.Types() {
			if err := Check(context.Background(), ft, n, []int{1, 3}); err != nil {
				t.Fatalf("seed %d n=%d: %v", seed, n, err)
			}
		}
	})
}
