// Package decider defines the pluggable level-decider backend interface
// and its registry: the seam between the engine's dispatch layer and the
// algorithms that decide the paper's two level properties (n-discerning,
// n-recording) for a finite type.
//
// Three backends register at init:
//
//   - "search" (the default) wraps the recursive-search deciders of
//     internal/discern and internal/record: a symmetry-reduced
//     enumeration of operation assignments with a shared-prefix DFS over
//     schedules per assignment.
//   - "bitset" is a semi-symbolic decider that encodes schedule
//     configurations and output histories as packed fixed-width words:
//     per assignment it sweeps subset-indexed frontier arrays (a forward
//     first-mover sweep and a backward descendant-final-value sweep)
//     instead of recursing over individual schedules, so observation
//     sets for all 2^n schedule prefixes are computed set-at-a-time.
//   - "auto" dispatches per call on n alone: "bitset" when
//     n <= BitsetMaxN (16 — the bitset backend's uint32 first-mover
//     mask and subset-index word widths cap it there), "search" above.
//     Because every backend is byte-identical, the switchover is
//     unobservable in results; "auto" simply picks the faster engine
//     for the level at hand.
//
// # The contract backends must honor
//
// Every backend must return results identical to the canonical "search"
// backend, byte for byte: the same decision, and on a positive decision
// the same witness — the lexicographically first witnessing operation
// assignment (in the symmetry-reduced tuple order of
// discern.TupleSpace), completed by the smallest witnessing initial
// value u and the deterministic team coloring of discern's
// union-find/TwoColor (discerning) or record.ColorFinal (recording).
// Sharded runs must equal serial runs exactly. This identity is what the
// differential oracle in internal/decider/difftest enforces over seeded
// random protocols (internal/protogen), and it is what lets the engine's
// decision cache stay backend-free: a decision computed by any backend
// is valid for all of them.
//
// Backends are selected by name: engine.WithBackend threads a name
// through the engine, the serve layer accepts a "backend" field on its
// analysis endpoints and jobs, and cmd tools share a -backend flag. Get
// resolves names, defaulting the empty string to "search" so existing
// callers and wire clients are unaffected.
package decider
