package decider

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/spec"
	"repro/internal/types"
)

func TestGetResolvesNames(t *testing.T) {
	d, err := Get("")
	if err != nil {
		t.Fatalf("Get(\"\"): %v", err)
	}
	if d.Name() != Default {
		t.Fatalf("Get(\"\") resolved to %q, want %q", d.Name(), Default)
	}
	for _, name := range []string{"search", "bitset", "auto"} {
		d, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if d.Name() != name {
			t.Fatalf("Get(%q).Name() = %q", name, d.Name())
		}
	}
	if _, err := Get("no-such-backend"); err == nil {
		t.Fatal("Get of unknown backend succeeded")
	}
}

func TestNamesSorted(t *testing.T) {
	got := Names()
	want := []string{"auto", "bitset", "search"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

// TestAutoDispatch pins the auto backend's switchover: bitset at and
// below BitsetMaxN (so large-n calls must not error the way a direct
// bitset call does), search above it, identical results either side.
func TestAutoDispatch(t *testing.T) {
	ctx := context.Background()
	auto, err := Get("auto")
	if err != nil {
		t.Fatal(err)
	}
	bitset, _ := Get("bitset")

	ft := types.Register(2)
	aOK, aW, err := auto.IsNDiscerning(ctx, ft, 2)
	if err != nil {
		t.Fatal(err)
	}
	bOK, bW, err := bitset.IsNDiscerning(ctx, ft, 2)
	if err != nil {
		t.Fatal(err)
	}
	if aOK != bOK || !reflect.DeepEqual(aW, bW) {
		t.Errorf("auto(n=2) = (%v,%v), bitset = (%v,%v)", aOK, aW, bOK, bW)
	}

	// The switchover itself: bitset at and below the cap, search above it
	// (running a real n=17 level check is exponential in n, so the pick
	// is asserted directly).
	ad, ok := auto.(autoDecider)
	if !ok {
		t.Fatalf("auto backend is %T, want autoDecider", auto)
	}
	if got := ad.pick(BitsetMaxN).Name(); got != "bitset" {
		t.Errorf("pick(%d) = %q, want bitset", BitsetMaxN, got)
	}
	if got := ad.pick(BitsetMaxN + 1).Name(); got != "search" {
		t.Errorf("pick(%d) = %q, want search", BitsetMaxN+1, got)
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(searchDecider{})
}

func TestBitsetRejectsLargeN(t *testing.T) {
	d, err := Get("bitset")
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = d.IsNDiscerning(context.Background(), types.Register(2), BitsetMaxN+1)
	if err == nil {
		t.Fatalf("bitset accepted n=%d", BitsetMaxN+1)
	}
}

func TestBitsetPanicsBelowTwo(t *testing.T) {
	d, err := Get("bitset")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("n=1 did not panic")
		}
	}()
	d.IsNDiscerning(context.Background(), types.Register(2), 1)
}

// zoo is the cross-backend equivalence corpus: a spread of object types
// whose level structure the repository already knows from the search
// backend's own tests.
func zoo() map[string]*spec.FiniteType {
	return map[string]*spec.FiniteType{
		"register2":   types.Register(2),
		"tas":         types.TestAndSet(),
		"swap2":       types.Swap(2),
		"fa3":         types.FetchAdd(3),
		"cas2":        types.CompareAndSwap(2),
		"sticky":      types.StickyBit(),
		"counter3":    types.Counter(3),
		"maxreg3":     types.MaxRegister(3),
		"queue2":      types.Queue(2),
		"stack2":      types.Stack(2),
		"trivial":     types.Trivial(),
		"tnn32":       types.Tnn(3, 2),
		"tnn42":       types.Tnn(4, 2),
		"swapXsticky": types.Product(types.Swap(2), types.StickyBit()),
	}
}

// TestBitsetMatchesSearch asserts the byte-identity contract directly on
// the zoo: same decision and DeepEqual witnesses for both properties,
// serial and sharded.
func TestBitsetMatchesSearch(t *testing.T) {
	ctx := context.Background()
	search, _ := Get("search")
	bitset, _ := Get("bitset")
	for name, ft := range zoo() {
		for n := 2; n <= 4; n++ {
			t.Run(fmt.Sprintf("%s/n=%d", name, n), func(t *testing.T) {
				sOK, sDW, err := search.IsNDiscerning(ctx, ft, n)
				if err != nil {
					t.Fatal(err)
				}
				bOK, bDW, err := bitset.IsNDiscerning(ctx, ft, n)
				if err != nil {
					t.Fatal(err)
				}
				if sOK != bOK || !reflect.DeepEqual(sDW, bDW) {
					t.Errorf("discerning diverged: search=(%v,%v) bitset=(%v,%v)", sOK, sDW, bOK, bDW)
				}
				sOK2, sRW, err := search.IsNRecording(ctx, ft, n)
				if err != nil {
					t.Fatal(err)
				}
				bOK2, bRW, err := bitset.IsNRecording(ctx, ft, n)
				if err != nil {
					t.Fatal(err)
				}
				if sOK2 != bOK2 || !reflect.DeepEqual(sRW, bRW) {
					t.Errorf("recording diverged: search=(%v,%v) bitset=(%v,%v)", sOK2, sRW, bOK2, bRW)
				}
				for _, shards := range []int{2, 7} {
					_, dw, err := bitset.ShardedIsNDiscerning(ctx, ft, n, shards, nil)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(dw, bDW) {
						t.Errorf("bitset sharded(%d) discern witness %v != serial %v", shards, dw, bDW)
					}
					_, rw, err := bitset.ShardedIsNRecording(ctx, ft, n, shards, nil)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(rw, bRW) {
						t.Errorf("bitset sharded(%d) record witness %v != serial %v", shards, rw, bRW)
					}
				}
			})
		}
	}
}

// TestBitsetHonorsCancellation mirrors the search deciders' contract:
// a canceled context aborts the sweep with ctx.Err().
func TestBitsetHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d, _ := Get("bitset")
	if _, _, err := d.IsNDiscerning(ctx, types.Tnn(4, 2), 4); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, _, err := d.IsNRecording(ctx, types.Tnn(4, 2), 4); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
