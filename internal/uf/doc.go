// Package uf provides a minimal union-find (disjoint-set) structure used by
// the discerning and recording deciders to compute which team partitions
// keep all constraint sets monochromatic. A UnionFind value is owned by
// one decider invocation and is not safe for concurrent use; deciders
// allocate one per (value, assignment) candidate.
package uf
