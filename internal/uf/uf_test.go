package uf

import (
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	u := New(5)
	if u.Len() != 5 {
		t.Fatalf("Len = %d", u.Len())
	}
	if u.SameComponent(0, 1) {
		t.Error("fresh elements should be separate")
	}
	u.Union(0, 1)
	u.Union(3, 4)
	if !u.SameComponent(0, 1) || !u.SameComponent(3, 4) {
		t.Error("unions not applied")
	}
	if u.SameComponent(1, 3) {
		t.Error("distinct components merged")
	}
	sizes, num := u.ComponentSizes()
	if num != 3 {
		t.Errorf("components = %d, want 3", num)
	}
	if sizes[0] != 2 || sizes[2] != 1 || sizes[3] != 2 {
		t.Errorf("sizes = %v", sizes)
	}
}

func TestUniteMask(t *testing.T) {
	u := New(6)
	u.UniteMask(0b101001) // {0, 3, 5}
	if !u.SameComponent(0, 3) || !u.SameComponent(3, 5) {
		t.Error("mask union failed")
	}
	if u.SameComponent(0, 1) {
		t.Error("unrelated element merged")
	}
	u.UniteMask(0b000010) // singleton: no-op
	if u.SameComponent(1, 0) {
		t.Error("singleton mask merged something")
	}
	u.UniteMask(0) // empty: no-op
}

func TestTwoColor(t *testing.T) {
	u := New(4)
	u.Union(0, 1)
	teams := u.TwoColor()
	if teams == nil {
		t.Fatal("expected a coloring")
	}
	if teams[0] != teams[1] {
		t.Error("component split across teams")
	}
	has0, has1 := false, false
	for _, c := range teams {
		if c == 0 {
			has0 = true
		} else {
			has1 = true
		}
	}
	if !has0 || !has1 {
		t.Error("both teams must be nonempty")
	}

	// One big component: no valid coloring.
	v := New(3)
	v.Union(0, 1)
	v.Union(1, 2)
	if v.TwoColor() != nil {
		t.Error("single component should not be colorable")
	}
}

// TestTwoColorProperty: whenever TwoColor succeeds, the coloring never
// splits a component and both teams are nonempty.
func TestTwoColorProperty(t *testing.T) {
	f := func(pairs []uint8, nRaw uint8) bool {
		n := int(nRaw%8) + 2
		u := New(n)
		for i := 0; i+1 < len(pairs); i += 2 {
			u.Union(int(pairs[i])%n, int(pairs[i+1])%n)
		}
		teams := u.TwoColor()
		if teams == nil {
			// Valid only if a single component remains.
			_, num := u.ComponentSizes()
			return num == 1
		}
		has := [2]bool{}
		for i := 0; i < n; i++ {
			has[teams[i]] = true
			for j := 0; j < n; j++ {
				if u.SameComponent(i, j) && teams[i] != teams[j] {
					return false
				}
			}
		}
		return has[0] && has[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
