package uf

// UnionFind is a union-find over the elements 0..n-1.
type UnionFind struct {
	parent []int
}

// New returns a UnionFind with n singleton components.
func New(n int) *UnionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &UnionFind{parent: p}
}

// Len returns the number of elements.
func (u *UnionFind) Len() int { return len(u.parent) }

// Find returns the representative of x's component.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the components of a and b.
func (u *UnionFind) Union(a, b int) {
	ra, rb := u.Find(a), u.Find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

// UniteMask merges all elements whose bit is set in mask into one
// component.
func (u *UnionFind) UniteMask(mask uint32) {
	first := -1
	for i := 0; i < len(u.parent); i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if first < 0 {
			first = i
		} else {
			u.Union(first, i)
		}
	}
}

// SameComponent reports whether a and b are in the same component.
func (u *UnionFind) SameComponent(a, b int) bool { return u.Find(a) == u.Find(b) }

// TwoColor returns a team assignment (0/1 per element) in which every
// component is monochromatic and both teams are nonempty, or nil if there
// is only one component. Element 0's component is always team 0.
func (u *UnionFind) TwoColor() []int {
	n := len(u.parent)
	r0 := u.Find(0)
	teams := make([]int, n)
	hasOther := false
	for i := 0; i < n; i++ {
		if u.Find(i) != r0 {
			teams[i] = 1
			hasOther = true
		}
	}
	if !hasOther {
		return nil
	}
	return teams
}

// ComponentSizes returns, for each element, the size of its component, and
// the number of distinct components.
func (u *UnionFind) ComponentSizes() (sizes []int, numComponents int) {
	n := len(u.parent)
	count := make(map[int]int, n)
	for i := 0; i < n; i++ {
		count[u.Find(i)]++
	}
	sizes = make([]int, n)
	for i := 0; i < n; i++ {
		sizes[i] = count[u.Find(i)]
	}
	return sizes, len(count)
}
