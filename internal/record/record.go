package record

import (
	"context"
	"fmt"

	"repro/internal/spec"
	"repro/internal/uf"
)

// Witness certifies that a type is n-recording.
type Witness struct {
	N     int
	U     spec.Value
	Teams []int
	Ops   []spec.Op
}

// String renders the witness compactly.
func (w *Witness) String() string {
	return fmt.Sprintf("u=%d teams=%v ops=%v", int(w.U), w.Teams, w.Ops)
}

// Clone returns a deep copy of the witness, so callers may mutate the
// copy's slices without affecting shared state (the engine's memo cache
// serves clones).
func (w *Witness) Clone() *Witness {
	if w == nil {
		return nil
	}
	return &Witness{
		N:     w.N,
		U:     w.U,
		Teams: append([]int(nil), w.Teams...),
		Ops:   append([]spec.Op(nil), w.Ops...),
	}
}

// Options configures the decision procedure.
type Options struct {
	// Naive disables the symmetry reduction over operation assignments.
	Naive bool
	// NoPrefixSharing re-simulates every schedule from the initial value
	// instead of sharing prefix values (ablation; see DESIGN.md).
	NoPrefixSharing bool
}

// IsNRecording reports whether t is n-recording, for n >= 2, and returns a
// witness if it is. It panics if n < 2 (the partition into two nonempty
// teams requires at least two processes).
func IsNRecording(t *spec.FiniteType, n int) (bool, *Witness) {
	return IsNRecordingOpt(t, n, Options{})
}

// IsNRecordingOpt is IsNRecording with explicit Options.
func IsNRecordingOpt(t *spec.FiniteType, n int, opts Options) (bool, *Witness) {
	ok, w, _ := IsNRecordingCtx(context.Background(), t, n, opts)
	return ok, w
}

// pollEvery is the number of enumeration recursion steps between context
// polls, in addition to the poll at every complete assignment (a power of
// two so the check compiles to a mask); see the matching constant in
// package discern.
const pollEvery = 256

// IsNRecordingCtx is IsNRecordingOpt with cancellation: the search is
// abandoned (returning ctx.Err()) as soon as the context is done, polled
// once per operation assignment and additionally every pollEvery
// recursion steps so a deep prefix sweep cannot delay cancellation.
func IsNRecordingCtx(ctx context.Context, t *spec.FiniteType, n int, opts Options) (bool, *Witness, error) {
	if n < 2 {
		panic(fmt.Sprintf("record: n-recording is undefined for n=%d (need n >= 2)", n))
	}
	numOps := t.NumOps()
	ops := make([]spec.Op, n)
	done := ctx.Done()
	var canceled bool
	var steps uint
	var tryAll func(pos int) *Witness
	tryAll = func(pos int) *Witness {
		if steps++; steps&(pollEvery-1) == 0 {
			select {
			case <-done:
				canceled = true
				return nil
			default:
			}
		}
		if pos == n {
			select {
			case <-done:
				canceled = true
				return nil
			default:
			}
			return checkAssignment(t, n, ops, opts)
		}
		start := spec.Op(0)
		if !opts.Naive && pos > 0 {
			start = ops[pos-1]
		}
		for o := start; int(o) < numOps; o++ {
			ops[pos] = o
			if w := tryAll(pos + 1); w != nil {
				return w
			}
			if canceled {
				return nil
			}
		}
		return nil
	}
	if w := tryAll(0); w != nil {
		return true, w, nil
	}
	if canceled {
		return false, nil, ctx.Err()
	}
	return false, nil, nil
}

func checkAssignment(t *spec.FiniteType, n int, ops []spec.Op, opts Options) *Witness {
	for u := 0; u < t.NumValues(); u++ {
		if teams := checkValueAssignment(t, n, ops, spec.Value(u), opts); teams != nil {
			w := &Witness{N: n, U: spec.Value(u), Teams: teams, Ops: make([]spec.Op, n)}
			copy(w.Ops, ops)
			return w
		}
	}
	return nil
}

// finalValues collects the final object value of every nonempty schedule
// in S(P) applied from u, as a map value -> bitmask of first movers,
// using a shared-prefix DFS.
func finalValues(t *spec.FiniteType, n int, ops []spec.Op, u spec.Value) map[spec.Value]uint32 {
	firstMask := make(map[spec.Value]uint32)
	inSched := make([]bool, n)
	var dfs func(val spec.Value, first int)
	dfs = func(val spec.Value, first int) {
		firstMask[val] |= uint32(1) << uint(first)
		for p := 0; p < n; p++ {
			if inSched[p] {
				continue
			}
			inSched[p] = true
			dfs(t.Apply(val, ops[p]).Next, first)
			inSched[p] = false
		}
	}
	for f := 0; f < n; f++ {
		inSched[f] = true
		dfs(t.Apply(u, ops[f]).Next, f)
		inSched[f] = false
	}
	return firstMask
}

// finalValuesNoShare is the ablation variant: every schedule is
// re-simulated from u in full.
func finalValuesNoShare(t *spec.FiniteType, n int, ops []spec.Op, u spec.Value) map[spec.Value]uint32 {
	firstMask := make(map[spec.Value]uint32)
	inSched := make([]bool, n)
	order := make([]int, 0, n)
	var rec func()
	rec = func() {
		if len(order) > 0 {
			val := u
			for _, p := range order {
				val = t.Apply(val, ops[p]).Next
			}
			firstMask[val] |= uint32(1) << uint(order[0])
		}
		for p := 0; p < n; p++ {
			if inSched[p] {
				continue
			}
			inSched[p] = true
			order = append(order, p)
			rec()
			order = order[:len(order)-1]
			inSched[p] = false
		}
	}
	rec()
	return firstMask
}

// checkValueAssignment decides whether some partition completes
// (u, ops) into an n-recording witness and returns the team assignment.
func checkValueAssignment(t *spec.FiniteType, n int, ops []spec.Op, u spec.Value, opts Options) []int {
	// firstMask[v] = bitmask of first-movers f such that some nonempty
	// schedule starting with f leaves the object with value v.
	var firstMask map[spec.Value]uint32
	if opts.NoPrefixSharing {
		firstMask = finalValuesNoShare(t, n, ops, u)
	} else {
		firstMask = finalValues(t, n, ops, u)
	}
	return ColorFinal(n, firstMask, u)
}

// ColorFinal turns one assignment's final-value observation sets into an
// n-recording team assignment, or nil when none exists. firstMask[v] is
// the bitmask of first movers f such that some nonempty schedule starting
// with f leaves the object with value v, computed from initial value u.
// The choice of partition is deterministic given firstMask, which is what
// lets alternative decider backends (internal/decider) reproduce the
// recursive search's witnesses bit for bit: any backend that derives the
// same observation sets colors them through this one function.
func ColorFinal(n int, firstMask map[spec.Value]uint32, u spec.Value) []int {
	// Condition 1: every firstMask set must be monochromatic.
	groups := uf.New(n)
	for _, mask := range firstMask {
		groups.UniteMask(mask)
	}

	maskU := firstMask[u]
	if maskU == 0 {
		// u is not producible by any nonempty schedule; condition 2 is
		// vacuous and any valid two-coloring works.
		return groups.TwoColor()
	}

	// u in U_x for the team x that hosts u's producers (they are all in
	// one component, or no valid coloring exists at all). Condition 2
	// forces the opposite team to be a single process, i.e. a singleton
	// component different from the producers' component.
	sizes, numComponents := groups.ComponentSizes()
	if numComponents < 2 {
		return nil
	}
	producer := -1
	for i := 0; i < n; i++ {
		if maskU&(1<<uint(i)) != 0 {
			producer = i
			break
		}
	}
	producerRoot := groups.Find(producer)
	for i := 0; i < n; i++ {
		if sizes[i] == 1 && groups.Find(i) != producerRoot {
			// Team 1 = {p_i}; team 0 = everything else (including all of
			// u's producers). Then u in U_0 and |T_1| = 1 as required, and
			// u cannot be in U_1 because p_i is not one of u's producers.
			teams := make([]int, n)
			teams[i] = 1
			return teams
		}
	}
	return nil
}
