package record

import (
	"testing"

	"repro/internal/spec"
	"repro/internal/types"
)

// TestKnownRecordingFacts checks the decider against the facts the paper
// and its predecessors establish:
//
//   - Golab: test-and-set (consensus number 2) cannot solve recoverable
//     consensus for 2 processes; by Theorem 13 it must not be 2-recording.
//   - CAS and sticky bits record the first mover in their value forever,
//     so they are n-recording for every n.
//   - Registers are not 2-recording (they are not even 2-discerning).
func TestKnownRecordingFacts(t *testing.T) {
	tests := []struct {
		name string
		ft   *spec.FiniteType
		n    int
		want bool
	}{
		{"tas not 2-recording (Golab)", types.TestAndSet(), 2, false},
		{"tas not 3-recording", types.TestAndSet(), 3, false},
		{"register not 2-recording", types.Register(2), 2, false},
		{"register3 not 2-recording", types.Register(3), 2, false},
		{"cas 2-recording", types.CompareAndSwap(2), 2, true},
		{"cas 3-recording", types.CompareAndSwap(2), 3, true},
		{"cas 4-recording", types.CompareAndSwap(2), 4, true},
		{"sticky 2-recording", types.StickyBit(), 2, true},
		{"sticky 4-recording", types.StickyBit(), 4, true},
		{"counter not 2-recording", types.Counter(4), 2, false},
		{"maxreg not 2-recording", types.MaxRegister(3), 2, false},
		{"trivial not 2-recording", types.Trivial(), 2, false},
		// Swap: the value records only the LAST writer, so the first
		// team is forgotten: not 2-recording.
		{"swap not 2-recording", types.Swap(3), 2, false},
		// Fetch-and-add: with one process per team applying FAA from 0,
		// the final value counts appliers but forgets order: not
		// 2-recording... except the paper's definition allows u in U_x
		// with a singleton opposite team. FAA values depend only on the
		// number of appliers, which is team-independent for schedules
		// longer than 1, so U_0 and U_1 intersect: not 2-recording.
		{"faa not 2-recording", types.FetchAdd(8), 2, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, w := IsNRecording(tc.ft, tc.n)
			if got != tc.want {
				t.Errorf("IsNRecording(%s, %d) = %v, want %v", tc.ft.Name(), tc.n, got, tc.want)
			}
			if got && w == nil {
				t.Error("positive result must come with a witness")
			}
			if got {
				verifyWitness(t, tc.ft, w)
			}
		})
	}
}

// TestTnnRecording documents the recording spectrum of T_{n,n'}. Theorem 13
// plus Lemma 16 imply T_{n,n'} is n'-recording for n' >= 2 (it solves
// recoverable consensus among n' processes). Because T_{n,n'} is not
// readable (for n' < n-1), being m-recording for m > n' does NOT contradict
// rcons = n': DFFR's sufficiency construction (Theorem 8) requires
// readability. In fact the op0/op1 values record the first mover for up to
// n-1 operations, so T_{n,n'} is m-recording for all m <= n-1.
func TestTnnRecording(t *testing.T) {
	cases := []struct {
		n, np, m int
		want     bool
	}{
		{3, 1, 2, true},  // values record first team with 2 procs
		{4, 2, 2, true},  // Theorem 13 consequence (rcons >= 2)
		{4, 2, 3, true},  // still records at 3 procs (3 <= n-1)
		{5, 2, 4, true},  // records up to n-1 = 4
		{3, 1, 3, false}, // 3 ops can exhaust to s_bot from both teams
		{4, 2, 4, false}, // n ops exhaust to s_bot
		{5, 2, 5, false},
	}
	for _, c := range cases {
		ft := types.Tnn(c.n, c.np)
		got, w := IsNRecording(ft, c.m)
		if got != c.want {
			t.Errorf("IsNRecording(T[%d,%d], %d) = %v, want %v", c.n, c.np, c.m, got, c.want)
		}
		if got {
			verifyWitness(t, ft, w)
		}
	}
}

// TestDiscernWithoutRecordGap exhibits the paper's headline gap at the
// decider level: test-and-set is 2-discerning yet not 2-recording, so its
// consensus number (2) strictly exceeds its recoverable consensus
// number (1).
func TestDiscernWithoutRecordGap(t *testing.T) {
	ft := types.TestAndSet()
	if ok, _ := IsNRecording(ft, 2); ok {
		t.Error("TAS must not be 2-recording")
	}
}

// TestNaiveMatchesReduced cross-checks the symmetry-reduced search against
// the naive one.
func TestNaiveMatchesReduced(t *testing.T) {
	zoo := []*spec.FiniteType{
		types.Register(2), types.TestAndSet(), types.Swap(2), types.FetchAdd(3),
		types.CompareAndSwap(2), types.StickyBit(), types.Counter(3),
		types.Queue(1), types.Tnn(3, 1), types.Tnn(3, 2), types.Trivial(),
	}
	for _, ft := range zoo {
		for n := 2; n <= 3; n++ {
			fast, _ := IsNRecordingOpt(ft, n, Options{})
			slow, _ := IsNRecordingOpt(ft, n, Options{Naive: true})
			if fast != slow {
				t.Errorf("%s n=%d: reduced=%v naive=%v", ft.Name(), n, fast, slow)
			}
		}
	}
}

func TestPanicsOnSmallN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n=1")
		}
	}()
	IsNRecording(types.TestAndSet(), 1)
}

func TestWitnessString(t *testing.T) {
	ok, w := IsNRecording(types.StickyBit(), 2)
	if !ok {
		t.Fatal("sticky bit should be 2-recording")
	}
	if w.String() == "" {
		t.Error("empty witness string")
	}
}

// verifyWitness re-checks a witness by brute force directly against the
// definition of n-recording.
func verifyWitness(t *testing.T, ft *spec.FiniteType, w *Witness) {
	t.Helper()
	n := w.N
	has0, has1 := false, false
	teamSize := [2]int{}
	for _, team := range w.Teams {
		if team != 0 && team != 1 {
			t.Fatalf("bad team in witness %v", w)
		}
		teamSize[team]++
		if team == 0 {
			has0 = true
		} else {
			has1 = true
		}
	}
	if !has0 || !has1 {
		t.Fatalf("witness teams not both nonempty: %v", w)
	}

	U := [2]map[spec.Value]bool{make(map[spec.Value]bool), make(map[spec.Value]bool)}
	perm := make([]int, 0, n)
	used := make([]bool, n)
	var rec func(val spec.Value)
	rec = func(val spec.Value) {
		if len(perm) > 0 {
			U[w.Teams[perm[0]]][val] = true
		}
		for p := 0; p < n; p++ {
			if used[p] {
				continue
			}
			used[p] = true
			perm = append(perm, p)
			rec(ft.Apply(val, w.Ops[p]).Next)
			perm = perm[:len(perm)-1]
			used[p] = false
		}
	}
	rec(w.U)

	for v := range U[0] {
		if U[1][v] {
			t.Errorf("witness %v fails: U_0 and U_1 share value %d", w, v)
		}
	}
	for x := 0; x < 2; x++ {
		if U[x][w.U] && teamSize[1-x] != 1 {
			t.Errorf("witness %v fails side condition: u in U_%d but |T_%d| = %d",
				w, x, 1-x, teamSize[1-x])
		}
	}
}
