package record

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
)

// TestShardedMatchesSerial mirrors the discerning-side determinism gate
// for the recording decider: seeded random types, n=2..4, shard counts
// {1,2,7}, byte-identical (verdict, witness) against the serial scan.
// Run under -race in CI.
func TestShardedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(60607))
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		ft := randomType(rng, 3+rng.Intn(3), 2+rng.Intn(2))
		for n := 2; n <= 4; n++ {
			wantOK, wantW, err := IsNRecordingCtx(ctx, ft, n, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 2, 7} {
				ok, w, err := ShardedIsNRecording(ctx, ft, n, shards, ShardOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if ok != wantOK || !reflect.DeepEqual(w, wantW) {
					t.Fatalf("type %d n=%d shards=%d: got (%v, %v), serial (%v, %v)",
						i, n, shards, ok, w, wantOK, wantW)
				}
			}
		}
	}
}

// TestShardedWitnessVerifies: sharded recording witnesses pass the
// brute-force verifier.
func TestShardedWitnessVerifies(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	found := 0
	for i := 0; i < 100 && found < 10; i++ {
		ft := randomType(rng, 4, 2)
		ok, w, err := ShardedIsNRecording(context.Background(), ft, 3, 4, ShardOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			found++
			verifyWitness(t, ft, w)
		}
	}
	if found == 0 {
		t.Skip("no 3-recording random types in the sample")
	}
}

// TestShardedCancellation: a pre-canceled context errors without leaking
// a result.
func TestShardedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(5))
	ft := randomType(rng, 4, 3)
	ok, w, err := ShardedIsNRecording(ctx, ft, 4, 4, ShardOptions{})
	if err == nil {
		t.Fatal("canceled sharded search must error")
	}
	if ok || w != nil {
		t.Fatalf("canceled search leaked a result: (%v, %v)", ok, w)
	}
}
