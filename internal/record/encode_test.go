package record

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/types"
)

// TestWitnessCodecRoundTrip round-trips real witnesses for n=2..4 and
// checks the bytes are stable (the persistent store's requirement).
func TestWitnessCodecRoundTrip(t *testing.T) {
	for n := 2; n <= 4; n++ {
		ok, w := IsNRecording(types.CompareAndSwap(2), n)
		if !ok {
			t.Fatalf("cas should be %d-recording", n)
		}
		b1, err := json.Marshal(w)
		if err != nil {
			t.Fatal(err)
		}
		var back Witness
		if err := json.Unmarshal(b1, &back); err != nil {
			t.Fatalf("decode %s: %v", b1, err)
		}
		b2, err := json.Marshal(&back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("n=%d witness not byte-stable:\n %s\n %s", n, b1, b2)
		}
		if back.String() != w.String() {
			t.Errorf("n=%d witness changed: %s vs %s", n, &back, w)
		}
	}
}

// TestWitnessDecodeRejectsMalformed pins the structural validation.
func TestWitnessDecodeRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		`{"n":1,"u":0,"teams":[0],"ops":[0]}`,      // n < 2
		`{"n":2,"u":0,"teams":[0],"ops":[0,1]}`,    // teams too short
		`{"n":2,"u":0,"teams":[0,2],"ops":[0,1]}`,  // team not 0/1
		`{"n":2,"u":0,"teams":[0,1],"ops":[0]}`,    // ops too short
		`{"n":2,"u":0,"teams":[0,1],"ops":[-1,0]}`, // negative op
		`{"n":2,"u":-1,"teams":[0,1],"ops":[0,0]}`, // negative value
		`{"n":2,"u":0,"teams":null,"ops":[0,0]}`,   // missing teams
		`not json`,
	} {
		var w Witness
		if err := json.Unmarshal([]byte(bad), &w); err == nil {
			t.Errorf("decode accepted %s", bad)
		}
	}
}
