// Package record decides the n-recording property of Delporte-Gallet,
// Fatourou, Fauconnier and Ruppert (PODC 2022), as defined in Section 2 of
// "Determining Recoverable Consensus Numbers".
//
// A deterministic type T is n-recording if there exist a value u, a
// partition of the processes p_0..p_{n-1} into two nonempty teams T_0, T_1,
// and an operation o_i for each p_i such that:
//
//  1. U_0 and U_1 are disjoint, where U_x is the set of object values
//     resulting from schedules in S({p_0..p_{n-1}}) whose first process is
//     in T_x, applied to an object with initial value u; and
//  2. if u is in U_x, then the opposite team T_{1-x} has exactly one
//     member.
//
// The paper's Theorem 13 shows n-recording is necessary for solving
// recoverable wait-free consensus among n processes with deterministic
// types; DFFR's Theorem 8 shows it is sufficient for deterministic,
// readable types. Together (Theorem 14) the recoverable consensus number
// of a deterministic readable type is exactly the largest n for which it
// is n-recording.
//
// Implementation mirrors package discern: for fixed (u, operation
// assignment), a partition is valid for condition 1 iff no constraint set
// (the first-movers producing a given final value) is split across teams;
// union-find gives the valid partitions directly, and condition 2 reduces
// to the existence of a singleton component outside the component of u's
// producers.
//
// # Concurrency and byte-stability
//
// As in package discern: deciders are pure and concurrency-safe, sharded
// scans (ShardedIsNRecording) return exactly the serial result with the
// same lowest-ranked witness, and witness JSON round-trips
// byte-identically for the persistent decision store.
package record
