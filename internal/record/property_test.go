package record

import (
	"math/rand"
	"testing"

	"repro/internal/spec"
)

// randomType builds a random deterministic readable type (distinct
// responses per (value, op) pair; responses are irrelevant to recording).
func randomType(rng *rand.Rand, v, m int) *spec.FiniteType {
	b := spec.NewBuilder("random")
	names := make([]string, v)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	b.Values(names...)
	resp := spec.Response(0)
	for o := 0; o < m; o++ {
		opName := string(rune('A' + o))
		b.Ops(opName)
		for val := 0; val < v; val++ {
			b.Transition(names[val], opName, resp, names[rng.Intn(v)])
			resp++
		}
	}
	b.Ops("read")
	b.ReadOp("read", 1000)
	return b.MustBuild()
}

// TestMonotonicityOnRandomTypes: n-recording implies (n-1)-recording for
// n >= 3 (drop a process from the team with more than one member; the
// U sets only shrink and the singleton side condition is preserved).
func TestMonotonicityOnRandomTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(515))
	for i := 0; i < 60; i++ {
		ft := randomType(rng, 3+rng.Intn(3), 2)
		for n := 3; n <= 4; n++ {
			okN, _ := IsNRecording(ft, n)
			okN1, _ := IsNRecording(ft, n-1)
			if okN && !okN1 {
				t.Fatalf("type %d: %d-recording but not %d-recording:\n%s",
					i, n, n-1, ft.TransitionTable())
			}
		}
	}
}

// TestPrefixSharingAblationAgrees: the ablation variant must agree with
// the default.
func TestPrefixSharingAblationAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for i := 0; i < 40; i++ {
		ft := randomType(rng, 3+rng.Intn(2), 2)
		for n := 2; n <= 3; n++ {
			a, _ := IsNRecordingOpt(ft, n, Options{})
			b, _ := IsNRecordingOpt(ft, n, Options{NoPrefixSharing: true})
			if a != b {
				t.Fatalf("type %d n=%d: shared=%v noshare=%v", i, n, a, b)
			}
		}
	}
}

// TestRecordingImpliesDiscerningNot: recording and discerning are
// genuinely different properties — exhibit random types where they
// diverge, and verify every produced witness.
func TestWitnessesAlwaysVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	found := 0
	for i := 0; i < 100 && found < 25; i++ {
		ft := randomType(rng, 4, 2)
		if ok, w := IsNRecording(ft, 3); ok {
			found++
			verifyWitness(t, ft, w)
		}
	}
	if found == 0 {
		t.Skip("no 3-recording random types in the sample")
	}
}
