package record

import (
	"context"
	"fmt"

	"repro/internal/discern"
	"repro/internal/spec"
)

// ShardReport describes one finished shard of a sharded level search; it
// is the same report type the discerning side emits, so one progress
// consumer serves both properties.
type ShardReport = discern.ShardReport

// ShardOptions configures a sharded recording check.
type ShardOptions struct {
	// Options is the underlying decision procedure's configuration.
	Options
	// Contiguous selects the fixed contiguous-range split instead of the
	// default work-stealing chunk queue, as in discern.ShardOptions.
	Contiguous bool
	// OnShard, if non-nil, is called once per shard as it finishes, from
	// the shard's worker goroutine.
	OnShard func(ShardReport)
}

// ShardedIsNRecording is IsNRecordingCtx with the operation-assignment
// enumeration split across `shards` concurrent workers, exactly as
// discern.ShardedIsNDiscerning shards the discerning scan: a
// work-stealing chunk queue over the same symmetry-reduced tuple space
// (or the contiguous-range baseline when opts.Contiguous is set),
// first-witness early exit, and deterministic lowest-ranked-witness
// selection so the sharded and serial runs return identical results.
// shards below 1 are clamped to 1.
func ShardedIsNRecording(ctx context.Context, t *spec.FiniteType, n, shards int, opts ShardOptions) (bool, *Witness, error) {
	if n < 2 {
		panic(fmt.Sprintf("record: n-recording is undefined for n=%d (need n >= 2)", n))
	}
	space := discern.NewTupleSpace(t.NumOps(), n, opts.Naive)
	search := discern.SearchSharded[Witness]
	if opts.Contiguous {
		search = discern.SearchShardedContiguous[Witness]
	}
	w, err := search(ctx, space, shards, func(ops []spec.Op) *Witness {
		return checkAssignment(t, n, ops, opts.Options)
	}, opts.OnShard)
	if err != nil {
		return false, nil, err
	}
	return w != nil, w, nil
}
