// Package algo implements the paper's consensus algorithms as runnable
// programs for the sim runtime (goroutines over non-volatile memory under
// a crash-injecting adversary). The same algorithms exist as step machines
// in internal/proto for exhaustive model checking; this package is the
// "systems" counterpart used by the examples and throughput benchmarks.
//
// Programs hold all volatile state in ordinary local variables, so the
// runtime's crash semantics (abort and restart the program function)
// erase exactly what the paper's model erases. An Algorithm value is
// immutable after construction and safe to share across concurrent runs;
// each run gets fresh Program closures.
package algo
