package algo

import (
	"fmt"

	"repro/internal/nvm"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/types"
)

// Algorithm couples the shared-memory layout with per-process programs.
type Algorithm struct {
	// Name identifies the algorithm.
	Name string
	// Cells is the non-volatile memory layout.
	Cells []nvm.Cell
	// Program returns process p's program.
	Program func(p int) sim.Program
}

// TnnWaitFree is the paper's one-shot wait-free consensus for n processes
// over a single T_{n,n'} object: apply op_input, decide the response. It
// must only be run crash-free (wait-free algorithms are not recoverable).
func TnnWaitFree(n, nPrime int) *Algorithm {
	ft := types.Tnn(n, nPrime)
	s, _ := ft.ValueByName("s")
	op0, _ := ft.OpByName("op0")
	op1, _ := ft.OpByName("op1")
	return &Algorithm{
		Name:  fmt.Sprintf("tnn-wait-free[%d,%d]", n, nPrime),
		Cells: []nvm.Cell{{Type: ft, Init: s}},
		Program: func(p int) sim.Program {
			return func(ctx *sim.Ctx) int {
				op := op0
				if ctx.Input() == 1 {
					op = op1
				}
				resp := ctx.Apply(0, op)
				return int(resp) // TnnResp0=0, TnnResp1=1
			}
		},
	}
}

// TnnRecoverable is the paper's recoverable wait-free consensus for n'
// processes over a single T_{n,n'} object (Section 4):
//
//	r := opR()
//	if r == s:        decide op_input()'s response
//	if r == s_{v,i}:  decide v
//	if r == bot:      decide 0   // unreachable with <= n' processes
//
// A crash restarts the program from the opR, which is exactly the paper's
// recovery structure.
func TnnRecoverable(n, nPrime int) *Algorithm {
	ft := types.Tnn(n, nPrime)
	s, _ := ft.ValueByName("s")
	op0, _ := ft.OpByName("op0")
	op1, _ := ft.OpByName("op1")
	opR, _ := ft.OpByName("opR")
	readS := ft.Apply(s, opR).Resp
	return &Algorithm{
		Name:  fmt.Sprintf("tnn-recoverable[%d,%d]", n, nPrime),
		Cells: []nvm.Cell{{Type: ft, Init: s}},
		Program: func(p int) sim.Program {
			return func(ctx *sim.Ctx) int {
				r := ctx.Apply(0, opR)
				switch {
				case r == readS:
					op := op0
					if ctx.Input() == 1 {
						op = op1
					}
					return int(ctx.Apply(0, op))
				case r == types.TnnRespBot:
					return 0
				default:
					// r identifies s_{v,i}: recover v from the value index.
					idx := int(r - types.RespReadBase)
					if idx >= 1 && idx <= n-1 {
						return 0
					}
					return 1
				}
			}
		},
	}
}

// CASRecoverable is the recoverable consensus baseline over one
// compare-and-swap object: read; if installed decide it; else CAS own
// input and decide the outcome. Correct for any number of processes and
// any individual-crash pattern.
func CASRecoverable() *Algorithm {
	ft := types.CompareAndSwap(2)
	bot, _ := ft.ValueByName("bot")
	cas0, _ := ft.OpByName("cas0")
	cas1, _ := ft.OpByName("cas1")
	read, _ := ft.OpByName("read")
	readBot := ft.Apply(bot, read).Resp
	return &Algorithm{
		Name:  "cas-recoverable",
		Cells: []nvm.Cell{{Type: ft, Init: bot}},
		Program: func(p int) sim.Program {
			return func(ctx *sim.Ctx) int {
				r := ctx.Apply(0, read)
				if r != readBot {
					return int(r-types.RespReadBase) - 1 // read:v_j -> j
				}
				op := cas0
				if ctx.Input() == 1 {
					op = cas1
				}
				out := ctx.Apply(0, op)
				if out == 100 { // success
					return ctx.Input()
				}
				return int(out - 200) // lost: decide installed value
			}
		},
	}
}

// TASConsensus is the classic crash-UNSAFE 2-process consensus from one
// test-and-set object and two registers (see internal/proto.TASConsensus).
// Running it under a crash-injecting adversary demonstrates Golab's
// separation at runtime (Experiment E8).
func TASConsensus() *Algorithm {
	tas := types.TestAndSet()
	reg := types.Register(3)
	tasZero, _ := tas.ValueByName("0")
	regInit, _ := reg.ValueByName("v2")
	tasOp, _ := tas.OpByName("TAS")
	read, _ := reg.OpByName("read")
	writeOp := func(x int) spec.Op {
		o, _ := reg.OpByName(fmt.Sprintf("write%d", x))
		return o
	}
	return &Algorithm{
		Name: "tas-register-2consensus",
		Cells: []nvm.Cell{
			{Type: tas, Init: tasZero},
			{Type: reg, Init: regInit},
			{Type: reg, Init: regInit},
		},
		Program: func(p int) sim.Program {
			return func(ctx *sim.Ctx) int {
				ctx.Apply(1+p, writeOp(ctx.Input()))
				if ctx.Apply(0, tasOp) == 0 {
					return ctx.Input() // won
				}
				v := int(ctx.Apply(1+(1-p), read) - types.RespReadBase)
				if v > 1 {
					v = 0 // other register unwritten: no valid decision
				}
				return v
			}
		},
	}
}
