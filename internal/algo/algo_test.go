package algo

import (
	"testing"

	"repro/internal/nvm"
	"repro/internal/sim"
)

// runSeq drives a set of programs sequentially (each to completion, in
// pid order) over a fresh store and returns the decisions. Sequential
// execution is enough for the algorithm-local semantics tested here; the
// interleaved and crashing behaviours are covered in internal/sim and
// internal/integration.
func runSeq(t *testing.T, a *Algorithm, inputs []int) []int {
	t.Helper()
	store, err := nvm.NewStore(a.Cells...)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, len(inputs))
	for p := range inputs {
		out[p] = sim.RunSolo(store, a.Program(p), p, inputs[p])
	}
	return out
}

func TestTnnWaitFreeFirstMoverWins(t *testing.T) {
	for _, inputs := range [][]int{{1, 0, 0}, {0, 1, 1}, {0, 0, 0}} {
		a := TnnWaitFree(3, 1)
		got := runSeq(t, a, inputs)
		for p, d := range got {
			if d != inputs[0] {
				t.Errorf("inputs %v: p%d decided %d, want first mover's %d",
					inputs, p, d, inputs[0])
			}
		}
	}
}

func TestTnnRecoverableFirstMoverWins(t *testing.T) {
	a := TnnRecoverable(5, 3)
	got := runSeq(t, a, []int{1, 0, 0})
	for p, d := range got {
		if d != 1 {
			t.Errorf("p%d decided %d, want 1", p, d)
		}
	}
}

func TestTnnRecoverableReRunStable(t *testing.T) {
	a := TnnRecoverable(5, 3)
	store, err := nvm.NewStore(a.Cells...)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []int{0, 1, 1}
	first := make([]int, 3)
	for p := range inputs {
		first[p] = sim.RunSolo(store, a.Program(p), p, inputs[p])
	}
	// Every re-run (crash after deciding) must reproduce the decision.
	for round := 0; round < 3; round++ {
		for p := range inputs {
			if re := sim.RunSolo(store, a.Program(p), p, inputs[p]); re != first[p] {
				t.Fatalf("round %d: p%d re-decided %d, want %d", round, p, re, first[p])
			}
		}
	}
}

func TestCASRecoverableFirstMoverWins(t *testing.T) {
	a := CASRecoverable()
	got := runSeq(t, a, []int{1, 0, 0, 1})
	for p, d := range got {
		if d != 1 {
			t.Errorf("p%d decided %d, want 1", p, d)
		}
	}
}

func TestTASSequentialCorrect(t *testing.T) {
	a := TASConsensus()
	got := runSeq(t, a, []int{0, 1})
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("sequential TAS run: %v, want both 0", got)
	}
}

func TestAlgorithmShapes(t *testing.T) {
	algs := []*Algorithm{
		TnnWaitFree(3, 2), TnnRecoverable(4, 2), CASRecoverable(), TASConsensus(),
	}
	for _, a := range algs {
		if a.Name == "" {
			t.Error("algorithm without a name")
		}
		if len(a.Cells) == 0 {
			t.Errorf("%s: no cells", a.Name)
		}
		if a.Program(0) == nil {
			t.Errorf("%s: nil program", a.Name)
		}
		for _, c := range a.Cells {
			if c.Type == nil {
				t.Errorf("%s: nil cell type", a.Name)
			}
		}
	}
}
