package core

import (
	"strings"
	"testing"

	"repro/internal/spec"
	"repro/internal/types"
)

func mustAnalyze(t *testing.T, ft *spec.FiniteType, maxN int) *Analysis {
	t.Helper()
	a, err := Analyze(ft, maxN)
	if err != nil {
		t.Fatalf("Analyze(%s): %v", ft.Name(), err)
	}
	return a
}

// TestHierarchyTable is Experiment E10 at unit-test scale: the consensus
// and recoverable consensus numbers of the zoo, checked against the
// published values.
func TestHierarchyTable(t *testing.T) {
	tests := []struct {
		name  string
		ft    *spec.FiniteType
		maxN  int
		cons  int
		rcons int
	}{
		{"register", types.Register(2), 4, 1, 1},
		{"tas", types.TestAndSet(), 4, 2, 1}, // Golab's gap: cons 2, rcons 1
		{"swap", types.Swap(2), 4, 2, 1},
		{"faa", types.FetchAdd(6), 4, 2, 1},
		{"cas", types.CompareAndSwap(2), 4, Unbounded, Unbounded},
		{"sticky", types.StickyBit(), 4, Unbounded, Unbounded},
		{"counter", types.Counter(3), 3, 1, 1},
		{"maxreg", types.MaxRegister(3), 3, 1, 1},
		{"trivial", types.Trivial(), 3, 1, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			a := mustAnalyze(t, tc.ft, tc.maxN)
			if a.ConsensusNumber != tc.cons {
				t.Errorf("cons(%s) = %s, want %s", tc.name,
					LevelString(a.ConsensusNumber, tc.maxN), LevelString(tc.cons, tc.maxN))
			}
			if a.RecoverableConsensusNumber != tc.rcons {
				t.Errorf("rcons(%s) = %s, want %s", tc.name,
					LevelString(a.RecoverableConsensusNumber, tc.maxN), LevelString(tc.rcons, tc.maxN))
			}
			if err := a.CheckTheorem13Consistency(); err != nil {
				t.Errorf("consistency: %v", err)
			}
		})
	}
}

// TestTnnIndicators documents the decider-level indicators for the
// non-readable T_{n,n'} family. The true values (cons=n, rcons=n') are
// established by the model-checking experiments; here we verify the
// indicator structure: discerning tops out exactly at n, recording at n-1
// (the type records the first mover for up to n-1 operations, but the
// recording property alone cannot be used for an algorithm without
// readability — which is exactly the paper's point in Section 4).
func TestTnnIndicators(t *testing.T) {
	cases := []struct{ n, np int }{{3, 1}, {4, 2}}
	for _, c := range cases {
		ft := types.Tnn(c.n, c.np)
		a := mustAnalyze(t, ft, c.n+1)
		if a.Readable {
			t.Errorf("T[%d,%d] should be non-readable", c.n, c.np)
		}
		if a.ConsensusNumber != c.n {
			t.Errorf("discerning level of T[%d,%d] = %v, want %d",
				c.n, c.np, a.ConsensusNumber, c.n)
		}
		if a.RecoverableConsensusNumber != c.n-1 {
			t.Errorf("recording level of T[%d,%d] = %v, want %d",
				c.n, c.np, a.RecoverableConsensusNumber, c.n-1)
		}
	}
}

func TestGap(t *testing.T) {
	a := mustAnalyze(t, types.TestAndSet(), 4)
	gap, ok := a.Gap()
	if !ok || gap != 1 {
		t.Errorf("TAS gap = (%d, %v), want (1, true)", gap, ok)
	}
	b := mustAnalyze(t, types.CompareAndSwap(2), 3)
	if _, ok := b.Gap(); ok {
		t.Error("CAS gap should be unavailable (unbounded at limit)")
	}
}

func TestAnalyzeRejectsSmallMaxN(t *testing.T) {
	if _, err := Analyze(types.TestAndSet(), 1); err == nil {
		t.Error("Analyze with maxN=1 should fail")
	}
}

func TestRendering(t *testing.T) {
	a := mustAnalyze(t, types.TestAndSet(), 3)
	if s := a.Summary(); !strings.Contains(s, "cons=2") || !strings.Contains(s, "rcons=1") {
		t.Errorf("Summary = %q", s)
	}
	sp := a.Spectrum()
	if !strings.Contains(sp, "discerning") || !strings.Contains(sp, "recording") {
		t.Errorf("Spectrum = %q", sp)
	}
	if got := LevelString(Unbounded, 5); got != ">=5" {
		t.Errorf("LevelString(Unbounded) = %q", got)
	}
	if got := LevelString(3, 5); got != "3" {
		t.Errorf("LevelString(3) = %q", got)
	}
}

// TestWitnessesPresent checks that every positive level has a witness.
func TestWitnessesPresent(t *testing.T) {
	a := mustAnalyze(t, types.CompareAndSwap(2), 4)
	for n := 2; n <= 4; n++ {
		if a.Discerning[n] && a.DiscerningWitness[n] == nil {
			t.Errorf("missing discerning witness at n=%d", n)
		}
		if a.Recording[n] && a.RecordingWitness[n] == nil {
			t.Errorf("missing recording witness at n=%d", n)
		}
	}
}

// TestRobustnessProducts is Experiment E7 at unit-test scale: composing two
// types into a product object must not raise the recording level above the
// max of the components. (For readable components this is the empirical
// content of Theorem 14's robustness; we check the decider-level analogue
// on product objects.)
func TestRobustnessProducts(t *testing.T) {
	pairs := []struct {
		name string
		a, b *spec.FiniteType
		maxN int
	}{
		{"tas x tas", types.TestAndSet(), types.TestAndSet(), 3},
		{"tas x register", types.TestAndSet(), types.Register(2), 3},
		{"swap x faa", types.Swap(2), types.FetchAdd(3), 3},
		{"register x register", types.Register(2), types.Register(2), 3},
	}
	for _, tc := range pairs {
		t.Run(tc.name, func(t *testing.T) {
			pa := mustAnalyze(t, tc.a, tc.maxN)
			pb := mustAnalyze(t, tc.b, tc.maxN)
			pp := mustAnalyze(t, types.Product(tc.a, tc.b), tc.maxN)
			maxRec := pa.RecoverableConsensusNumber
			if pb.RecoverableConsensusNumber > maxRec {
				maxRec = pb.RecoverableConsensusNumber
			}
			if pa.RecoverableConsensusNumber == Unbounded || pb.RecoverableConsensusNumber == Unbounded {
				maxRec = Unbounded
			}
			got := pp.RecoverableConsensusNumber
			if maxRec != Unbounded && (got == Unbounded || got > maxRec) {
				t.Errorf("product recording level %s exceeds max component %s",
					LevelString(got, tc.maxN), LevelString(maxRec, tc.maxN))
			}
		})
	}
}
