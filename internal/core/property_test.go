package core

import (
	"math/rand"
	"testing"

	"repro/internal/spec"
	"repro/internal/types"
)

// randomReadableType builds a random deterministic readable type.
func randomReadableType(rng *rand.Rand, v, m int) *spec.FiniteType {
	b := spec.NewBuilder("rand")
	names := make([]string, v)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	b.Values(names...)
	resp := spec.Response(0)
	for o := 0; o < m; o++ {
		opName := string(rune('A' + o))
		b.Ops(opName)
		for val := 0; val < v; val++ {
			b.Transition(names[val], opName, resp, names[rng.Intn(v)])
			resp++
		}
	}
	b.Ops("read")
	b.ReadOp("read", 1000)
	return b.MustBuild()
}

// TestRobustnessPropertyOnRandomReadableTypes is Theorem 14's empirical
// content as a property test: for random READABLE components, the
// recording level of the product never exceeds the max component level.
func TestRobustnessPropertyOnRandomReadableTypes(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes many product types")
	}
	rng := rand.New(rand.NewSource(1337))
	const maxN = 3
	leq := func(a, b int) bool {
		if b == Unbounded {
			return true
		}
		if a == Unbounded {
			return false
		}
		return a <= b
	}
	for i := 0; i < 25; i++ {
		a := randomReadableType(rng, 2+rng.Intn(2), 2)
		b := randomReadableType(rng, 2+rng.Intn(2), 2)
		la := mustAnalyze(t, a, maxN)
		lb := mustAnalyze(t, b, maxN)
		lp := mustAnalyze(t, types.Product(a, b), maxN)
		max := la.RecoverableConsensusNumber
		if max != Unbounded &&
			(lb.RecoverableConsensusNumber == Unbounded || lb.RecoverableConsensusNumber > max) {
			max = lb.RecoverableConsensusNumber
		}
		if !leq(lp.RecoverableConsensusNumber, max) {
			t.Fatalf("case %d: product recording level %v exceeds components (%v, %v)\nA:\n%s\nB:\n%s",
				i, lp.RecoverableConsensusNumber,
				la.RecoverableConsensusNumber, lb.RecoverableConsensusNumber,
				a.TransitionTable(), b.TransitionTable())
		}
	}
}

// TestConsRconsOrderOnRandomReadableTypes: for readable types the
// recoverable consensus number never exceeds the consensus number (every
// recoverable algorithm is also a wait-free algorithm when crashes never
// happen).
func TestConsRconsOrderOnRandomReadableTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	const maxN = 4
	for i := 0; i < 40; i++ {
		ft := randomReadableType(rng, 2+rng.Intn(3), 2)
		a := mustAnalyze(t, ft, maxN)
		cons, rcons := a.ConsensusNumber, a.RecoverableConsensusNumber
		if cons == Unbounded {
			continue
		}
		if rcons == Unbounded || rcons > cons {
			t.Fatalf("case %d: rcons %v > cons %v for readable type:\n%s",
				i, rcons, cons, ft.TransitionTable())
		}
		if err := a.CheckTheorem13Consistency(); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
	}
}
