package core

import (
	"fmt"
	"strings"

	"repro/internal/discern"
	"repro/internal/record"
	"repro/internal/spec"
)

// Unbounded is returned as a level when the property still holds at the
// search limit, meaning the number is at least the limit (CAS-like types
// hold at every n, i.e. consensus number infinity).
const Unbounded = -1

// Analysis is the result of analyzing one type up to a process-count limit.
type Analysis struct {
	// Type is the analyzed type.
	Type *spec.FiniteType
	// MaxN is the largest process count that was checked.
	MaxN int
	// Readable records whether the type supports a Read operation; it
	// determines whether the hierarchy numbers below are exact.
	Readable bool

	// Discerning[n] reports whether the type is n-discerning, for
	// 2 <= n <= MaxN.
	Discerning map[int]bool
	// Recording[n] reports whether the type is n-recording.
	Recording map[int]bool
	// DiscerningWitness[n] is a witness for each positive level.
	DiscerningWitness map[int]*discern.Witness
	// RecordingWitness[n] is a witness for each positive level.
	RecordingWitness map[int]*record.Witness

	// ConsensusNumber is the largest n <= MaxN with n-discerning (1 if
	// none), or Unbounded if discerning still holds at MaxN. Exact for
	// readable types (Ruppert); an unproven indicator otherwise.
	ConsensusNumber int
	// RecoverableConsensusNumber is the analogous level for n-recording.
	// Exact for readable types (Theorem 14); for non-readable types it is
	// only an upper-bound indicator (Theorem 13 direction).
	RecoverableConsensusNumber int
}

// Analyze computes the discerning/recording spectrum of t for all
// n in [2, maxN] and derives hierarchy positions. maxN must be >= 2.
func Analyze(t *spec.FiniteType, maxN int) (*Analysis, error) {
	if maxN < 2 {
		return nil, fmt.Errorf("core: need maxN >= 2, got %d", maxN)
	}
	a := &Analysis{
		Type:              t,
		MaxN:              maxN,
		Readable:          t.Readable(),
		Discerning:        make(map[int]bool, maxN-1),
		Recording:         make(map[int]bool, maxN-1),
		DiscerningWitness: make(map[int]*discern.Witness),
		RecordingWitness:  make(map[int]*record.Witness),
	}
	for n := 2; n <= maxN; n++ {
		okD, wD := discern.IsNDiscerning(t, n)
		a.Discerning[n] = okD
		if okD {
			a.DiscerningWitness[n] = wD
		}
		okR, wR := record.IsNRecording(t, n)
		a.Recording[n] = okR
		if okR {
			a.RecordingWitness[n] = wR
		}
	}
	a.ConsensusNumber = LevelOf(a.Discerning, maxN)
	a.RecoverableConsensusNumber = LevelOf(a.Recording, maxN)
	return a, nil
}

// LevelOf derives the hierarchy level from a property spectrum: the largest
// n at which the property holds, 1 if it never holds, Unbounded if it holds
// at the search limit. It is exported so the concurrent engine can derive
// levels from spectra it computed out of order, identically to Analyze.
func LevelOf(holds map[int]bool, maxN int) int {
	if holds[maxN] {
		return Unbounded
	}
	for n := maxN; n >= 2; n-- {
		if holds[n] {
			return n
		}
	}
	return 1
}

// LevelString renders a hierarchy level for display: "k", ">=maxN", with
// the search limit substituted for Unbounded.
func LevelString(level, maxN int) string {
	if level == Unbounded {
		return fmt.Sprintf(">=%d", maxN)
	}
	return fmt.Sprintf("%d", level)
}

// Gap returns cons - rcons when both numbers are bounded, and ok=false
// when either is Unbounded at the search limit.
func (a *Analysis) Gap() (gap int, ok bool) {
	if a.ConsensusNumber == Unbounded || a.RecoverableConsensusNumber == Unbounded {
		return 0, false
	}
	return a.ConsensusNumber - a.RecoverableConsensusNumber, true
}

// Summary renders a one-line summary of the analysis.
func (a *Analysis) Summary() string {
	exact := "exact (readable)"
	if !a.Readable {
		exact = "indicators only (non-readable)"
	}
	return fmt.Sprintf("%s: cons=%s rcons=%s [%s]",
		a.Type.Name(),
		LevelString(a.ConsensusNumber, a.MaxN),
		LevelString(a.RecoverableConsensusNumber, a.MaxN),
		exact)
}

// Spectrum renders the per-n property table.
func (a *Analysis) Spectrum() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n:          ")
	for n := 2; n <= a.MaxN; n++ {
		fmt.Fprintf(&b, " %3d", n)
	}
	fmt.Fprintf(&b, "\ndiscerning: ")
	for n := 2; n <= a.MaxN; n++ {
		fmt.Fprintf(&b, " %3s", yn(a.Discerning[n]))
	}
	fmt.Fprintf(&b, "\nrecording:  ")
	for n := 2; n <= a.MaxN; n++ {
		fmt.Fprintf(&b, " %3s", yn(a.Recording[n]))
	}
	b.WriteByte('\n')
	return b.String()
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// CheckTheorem13Consistency verifies, for a readable type, the structural
// consequence of Theorems 13/14 together with Ruppert's theorem and DFFR's
// Theorem 5 ("any deterministic readable type with consensus number n >= 4
// is (n-2)-recording"): rcons is between cons-2 and cons whenever
// cons >= 4. It returns an error describing any violation.
func (a *Analysis) CheckTheorem13Consistency() error {
	if !a.Readable {
		return nil // the theorems only constrain readable types
	}
	cons := a.ConsensusNumber
	rcons := a.RecoverableConsensusNumber
	if cons == Unbounded {
		return nil // no finite constraint observable at this limit
	}
	if rcons == Unbounded {
		return fmt.Errorf("%s: rcons unbounded but cons=%d bounded", a.Type.Name(), cons)
	}
	if rcons > cons {
		return fmt.Errorf("%s: rcons=%d exceeds cons=%d", a.Type.Name(), rcons, cons)
	}
	if cons >= 4 && rcons < cons-2 {
		return fmt.Errorf("%s: rcons=%d below cons-2=%d (violates DFFR Theorem 5)",
			a.Type.Name(), rcons, cons-2)
	}
	return nil
}
