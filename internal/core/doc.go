// Package core computes positions in Herlihy's consensus hierarchy and in
// Golab's recoverable consensus hierarchy for finite deterministic types —
// the paper's primary contribution made executable.
//
// For a deterministic, readable type T:
//
//   - Ruppert (2000): cons(T) >= n iff T is n-discerning, so the consensus
//     number of T is the largest n for which T is n-discerning (or 1 if T
//     is not even 2-discerning).
//   - Theorem 14 of the paper (Theorem 13 + DFFR Theorem 8): rcons(T) >= n
//     iff T is n-recording, so the recoverable consensus number of T is the
//     largest n for which T is n-recording (or 1).
//
// For non-readable deterministic types the paper's Theorem 13 still gives
// the *upper* bound direction for recording (solvable for n processes
// implies n-recording), but neither property is sufficient without
// readability, so only bounds are reported; the package is explicit about
// which numbers are exact and which are bounds.
//
// Analyze here is the serial reference implementation; the engine's
// concurrent Analyze is specified to return identical Analysis values,
// and the engine tests enforce that equivalence.
package core
