package core

import (
	"testing"

	"repro/internal/types"
)

// TestXFourSpectrum is Experiment E9: a concrete readable type realizing
// the paper's corollary for n = 4 — consensus number 4 and recoverable
// consensus number 2 (gap 2). Both numbers are exact because the type is
// readable (Ruppert; Theorem 14).
func TestXFourSpectrum(t *testing.T) {
	a := mustAnalyze(t, types.XFour(), 5)
	if !a.Readable {
		t.Fatal("X4 must be readable")
	}
	wantDiscern := map[int]bool{2: true, 3: true, 4: true, 5: false}
	wantRecord := map[int]bool{2: true, 3: false, 4: false, 5: false}
	for n := 2; n <= 5; n++ {
		if a.Discerning[n] != wantDiscern[n] {
			t.Errorf("X4 %d-discerning = %v, want %v", n, a.Discerning[n], wantDiscern[n])
		}
		if a.Recording[n] != wantRecord[n] {
			t.Errorf("X4 %d-recording = %v, want %v", n, a.Recording[n], wantRecord[n])
		}
	}
	if a.ConsensusNumber != 4 {
		t.Errorf("cons(X4) = %d, want 4", a.ConsensusNumber)
	}
	if a.RecoverableConsensusNumber != 2 {
		t.Errorf("rcons(X4) = %d, want 2", a.RecoverableConsensusNumber)
	}
	if gap, ok := a.Gap(); !ok || gap != 2 {
		t.Errorf("gap(X4) = (%d,%v), want (2,true)", gap, ok)
	}
	if err := a.CheckTheorem13Consistency(); err != nil {
		t.Errorf("consistency: %v", err)
	}
}

// TestXFiveSpectrum extends E9 to n = 5: consensus number 5, recoverable
// consensus number 3 (gap 2), both exact.
func TestXFiveSpectrum(t *testing.T) {
	if testing.Short() {
		t.Skip("6-discerning check takes a few seconds")
	}
	a := mustAnalyze(t, types.XFive(), 6)
	if !a.Readable {
		t.Fatal("X5 must be readable")
	}
	wantDiscern := map[int]bool{2: true, 3: true, 4: true, 5: true, 6: false}
	wantRecord := map[int]bool{2: true, 3: true, 4: false, 5: false, 6: false}
	for n := 2; n <= 6; n++ {
		if a.Discerning[n] != wantDiscern[n] {
			t.Errorf("X5 %d-discerning = %v, want %v", n, a.Discerning[n], wantDiscern[n])
		}
		if a.Recording[n] != wantRecord[n] {
			t.Errorf("X5 %d-recording = %v, want %v", n, a.Recording[n], wantRecord[n])
		}
	}
	if a.ConsensusNumber != 5 || a.RecoverableConsensusNumber != 3 {
		t.Errorf("X5: cons=%d rcons=%d, want 5/3", a.ConsensusNumber, a.RecoverableConsensusNumber)
	}
	if err := a.CheckTheorem13Consistency(); err != nil {
		t.Errorf("consistency: %v", err)
	}
}

// TestTnnReadableSpectrum certifies the gap-1 readable family Y_n: cons = n
// and rcons = n-1, exactly, for n in {3, 4, 5}.
func TestTnnReadableSpectrum(t *testing.T) {
	for n := 3; n <= 5; n++ {
		a := mustAnalyze(t, types.TnnReadable(n), n+1)
		if !a.Readable {
			t.Fatalf("Y[%d] must be readable", n)
		}
		if a.ConsensusNumber != n {
			t.Errorf("cons(Y[%d]) = %v, want %d", n, a.ConsensusNumber, n)
		}
		if a.RecoverableConsensusNumber != n-1 {
			t.Errorf("rcons(Y[%d]) = %v, want %d", n, a.RecoverableConsensusNumber, n-1)
		}
		if err := a.CheckTheorem13Consistency(); err != nil {
			t.Errorf("Y[%d] consistency: %v", n, err)
		}
	}
}
