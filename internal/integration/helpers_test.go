package integration

import "repro/internal/schedule"

// budget builds the E*_1 budget for n processes.
func budget(n int) schedule.Budget {
	return schedule.Budget{N: n, Z: 1}
}
