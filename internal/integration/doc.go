// Package integration cross-validates the two execution engines: the
// exhaustive model checker (internal/model + internal/proto) and the
// concurrent simulator (internal/sim + internal/algo) implement the same
// algorithms independently; replaying a simulator run's schedule inside
// the checker must produce the same decisions. The package contains only
// tests — there is no importable API.
package integration
