package integration

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/algo"
	"repro/internal/model"
	"repro/internal/proto"
	"repro/internal/sim"
)

// pair couples an algorithm's two implementations.
type pair struct {
	name  string
	proto func(procs int) model.Protocol
	algo  func() *algo.Algorithm
	procs int
}

func pairs() []pair {
	return []pair{
		{
			name:  "tnn-recoverable[4,2]",
			proto: func(n int) model.Protocol { return proto.NewTnnRecoverable(4, 2, n) },
			algo:  func() *algo.Algorithm { return algo.TnnRecoverable(4, 2) },
			procs: 2,
		},
		{
			name:  "tnn-recoverable[5,3]",
			proto: func(n int) model.Protocol { return proto.NewTnnRecoverable(5, 3, n) },
			algo:  func() *algo.Algorithm { return algo.TnnRecoverable(5, 3) },
			procs: 3,
		},
		{
			name:  "cas-recoverable",
			proto: func(n int) model.Protocol { return proto.NewCASRecoverable(n) },
			algo:  func() *algo.Algorithm { return algo.CASRecoverable() },
			procs: 3,
		},
		{
			name:  "tnn-wait-free[4,2]",
			proto: func(n int) model.Protocol { return proto.NewTnnWaitFree(4, 2, n) },
			algo:  func() *algo.Algorithm { return algo.TnnWaitFree(4, 2) },
			procs: 4,
		},
	}
}

// TestEnginesAgreeOnSchedules runs the simulator under many seeded
// adversaries and replays each produced schedule step-for-step in the
// model checker's configuration semantics; the decisions must match
// exactly.
func TestEnginesAgreeOnSchedules(t *testing.T) {
	for _, pc := range pairs() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			pr := pc.proto(pc.procs)
			a := pc.algo()
			for seed := int64(0); seed < 40; seed++ {
				inputs := make([]int, pc.procs)
				for p := range inputs {
					inputs[p] = int(seed>>uint(p)) & 1
				}
				progs := make([]sim.Program, pc.procs)
				for p := range progs {
					progs[p] = a.Program(p)
				}
				crashProb := 0.3
				if pc.name == "tnn-wait-free[4,2]" {
					crashProb = 0 // wait-free algorithms are not recoverable
				}
				res, err := sim.Run(a.Cells, progs, inputs,
					adversary.NewRandom(seed, crashProb, 3), sim.Options{})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}

				// Replay in the checker's semantics.
				cfg := model.Exec(pr, model.InitialConfig(pr, inputs), res.Schedule, inputs)
				for p := 0; p < pc.procs; p++ {
					got, ok := model.Decision(pr, cfg, p)
					if !ok {
						t.Fatalf("seed %d: p%d undecided after replaying [%s]",
							seed, p, res.Schedule)
					}
					if got != res.Decisions[p] {
						t.Fatalf("seed %d: engines disagree for p%d: sim=%d model=%d (schedule [%s])",
							seed, p, res.Decisions[p], got, res.Schedule)
					}
				}
			}
		})
	}
}

// TestSimScheduleAdmissible checks that the budgeted adversary's schedules
// are admissible E*_z executions per the exact schedule-level arithmetic.
func TestSimScheduleAdmissible(t *testing.T) {
	a := algo.TnnRecoverable(5, 3)
	const procs = 3
	for seed := int64(0); seed < 25; seed++ {
		adv := adversary.NewBudgeted(seed, procs, 1, 0.5)
		progs := make([]sim.Program, procs)
		for p := range progs {
			progs[p] = a.Program(p)
		}
		inputs := []int{1, 0, 1}
		res, err := sim.Run(a.Cells, progs, inputs, adv, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b := budget(procs)
		if !b.InEStar(res.Schedule) {
			t.Errorf("seed %d: schedule [%s] outside E*_1", seed, res.Schedule)
		}
	}
}

// TestScriptedReplayOfCheckerTrace replays a model-checker counterexample
// trace in the runtime via the Scripted adversary: the violating schedule
// found by exhaustive search must reproduce a disagreement between the
// runtime's decisions and re-decisions.
func TestScriptedReplayOfCheckerTrace(t *testing.T) {
	// Find the E5 counterexample: TnnRecoverable(3,1) with 2 processes.
	pr := proto.NewTnnRecoverable(3, 1, 2)
	inputs := []int{1, 0}
	res, err := model.Check(pr, model.CheckOpts{Inputs: inputs, CrashQuota: []int{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("checker found no violation for T[3,1] with 2 procs")
	}
	traceSchedule := res.Violations[0].Trace

	// Replay in the runtime. The runtime cannot crash decided processes,
	// so the Scripted adversary skips those events; the burn may then be
	// incomplete in the runtime — accept either a reproduced disagreement
	// or a re-decision flip via RunSolo.
	a := algo.TnnRecoverable(3, 1)
	progs := []sim.Program{a.Program(0), a.Program(1)}
	runRes, err := sim.Run(a.Cells, progs, inputs,
		&adversary.Scripted{Script: traceSchedule}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	disagrees := runRes.VerifyConsensus(inputs) != nil
	flip := false
	for p := 0; p < 2; p++ {
		if sim.RunSolo(runRes.Store, a.Program(p), p, inputs[p]) != runRes.Decisions[p] {
			flip = true
		}
	}
	if !disagrees && !flip {
		t.Errorf("replayed counterexample [%s] produced neither disagreement nor flip (decisions %v)",
			traceSchedule, runRes.Decisions)
	}
}

// TestCheckerSubsumesSimViolations: any consensus violation the simulator
// could ever produce within a crash budget must also be found by the
// exhaustive checker (spot-checked on the TAS algorithm, where both
// engines exhibit Golab's separation).
func TestCheckerSubsumesSimViolations(t *testing.T) {
	// Simulator side: re-decision flip after crash-after-decide.
	a := algo.TASConsensus()
	inputs := []int{1, 0}
	progs := []sim.Program{a.Program(0), a.Program(1)}
	res, err := sim.Run(a.Cells, progs, inputs, &adversary.RoundRobin{}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	flip := false
	for p := 0; p < 2; p++ {
		if sim.RunSolo(res.Store, a.Program(p), p, inputs[p]) != res.Decisions[p] {
			flip = true
		}
	}
	if !flip {
		t.Fatal("simulator did not exhibit the TAS flip")
	}

	// Checker side: the same failure mode as an explored violation.
	chk, err := model.Check(proto.NewTASConsensus(),
		model.CheckOpts{Inputs: inputs, CrashQuota: []int{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(chk.Violations) == 0 {
		t.Fatal("checker did not find the TAS violation")
	}
}
