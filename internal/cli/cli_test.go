package cli

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro"
)

// parse builds an EngineFlags from command-line args.
func parse(t *testing.T, args ...string) *EngineFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddEngineFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestEngineWithoutCacheFile(t *testing.T) {
	f := parse(t, "-parallel", "2")
	eng, cleanup, err := f.Engine()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	if eng == nil || f.Cache != nil {
		t.Fatalf("engine=%v cache=%v; want engine and no persistent cache", eng, f.Cache)
	}
}

func TestEngineCacheFilePersistsAcrossRuns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions")

	runOnce := func() (hits, misses uint64) {
		f := parse(t, "-parallel", "2", "-cache-file", path)
		eng, cleanup, err := f.Engine(repro.WithMaxN(3))
		if err != nil {
			t.Fatal(err)
		}
		defer cleanup()
		if f.Cache == nil {
			t.Fatal("-cache-file did not open a persistent cache")
		}
		if _, err := eng.Analyze(repro.TestAndSet()); err != nil {
			t.Fatal(err)
		}
		hits, misses, _ = eng.Cache().Stats()
		return hits, misses
	}

	_, misses1 := runOnce()
	if misses1 == 0 {
		t.Fatal("cold run computed nothing")
	}
	if _, err := os.Stat(path + ".journal"); err != nil {
		t.Fatalf("cleanup did not leave a journal: %v", err)
	}
	hits2, misses2 := runOnce()
	if misses2 != 0 || hits2 != misses1 {
		t.Fatalf("warm run: hits=%d misses=%d, want hits=%d misses=0", hits2, misses2, misses1)
	}
}

// TestEngineReuseAfterCleanupReopensStore guards against a stale memo:
// cleanup closes the store, so a second Engine on the same flags must
// open a fresh one (a closed store would silently persist nothing).
func TestEngineReuseAfterCleanupReopensStore(t *testing.T) {
	f := parse(t, "-parallel", "1", "-cache-file", filepath.Join(t.TempDir(), "decisions"))

	eng, cleanup, err := f.Engine(repro.WithMaxN(2))
	if err != nil {
		t.Fatal(err)
	}
	first := f.Cache
	if _, err := eng.Analyze(repro.TestAndSet()); err != nil {
		t.Fatal(err)
	}
	cleanup()
	if f.Cache != nil {
		t.Fatal("cleanup left the closed store memoized")
	}

	eng2, cleanup2, err := f.Engine(repro.WithMaxN(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup2()
	if f.Cache == nil || f.Cache == first {
		t.Fatalf("second Engine did not reopen the store (cache %p, first %p)", f.Cache, first)
	}
	if _, err := eng2.Analyze(repro.TestAndSet()); err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := eng2.Cache().Stats(); misses != 0 || hits == 0 {
		t.Fatalf("reopened store not warm: hits=%d misses=%d", hits, misses)
	}
}

func TestEngineCacheFileOpenError(t *testing.T) {
	f := parse(t, "-cache-file", filepath.Join(t.TempDir(), "no-such-dir", "sub", "decisions"))
	if _, _, err := f.Engine(); err == nil {
		t.Fatal("Engine accepted an unopenable -cache-file")
	}
}

func TestOpenCacheMemoizes(t *testing.T) {
	f := parse(t, "-cache-file", filepath.Join(t.TempDir(), "decisions"))
	pc1, err := f.OpenCache()
	if err != nil {
		t.Fatal(err)
	}
	defer pc1.Close()
	pc2, err := f.OpenCache()
	if err != nil || pc2 != pc1 {
		t.Fatalf("second OpenCache = (%v, %v), want the first store", pc2, err)
	}
}
