// Package cli carries the flag plumbing shared by the cmd tools and
// examples: every tool that drives the analysis engine registers the
// same -parallel, -timeout, -progress, -shard-threshold, -cache-file
// and -graph-cache-budget flags and builds its engine (and a
// cancellable context) through EngineFlags.
//
// # Ownership contract
//
// EngineFlags.Engine/EngineOn return a cleanup func the tool must defer:
// it cancels the run context and closes the -cache-file persistent store,
// flushing its journal. The -cache-file path follows the store's
// one-process-at-a-time ownership rule — two tools pointed at the same
// path concurrently would corrupt the journal, so don't. Within one
// tool, OpenCache memoizes the opened store so Engine and hand-built
// engines share a single store instance; a caller closing the store
// itself must clear the memo (see OpenCache) so later opens do not reuse
// a closed store.
package cli
