package cli

import (
	"flag"
	"fmt"

	"repro/internal/jobs"
)

// JobFlags is the parsed async-job flag set of a serving tool.
type JobFlags struct {
	// MaxJobs is the number of async jobs run concurrently (-max-jobs).
	MaxJobs int
	// JobQueue bounds the async jobs waiting to run; submissions beyond
	// it are rejected with HTTP 429 (-job-queue).
	JobQueue int
}

// AddJobFlags registers the shared async-job flags on fs and returns the
// struct the parsed values land in. Callers must Validate after parsing.
func AddJobFlags(fs *flag.FlagSet) *JobFlags {
	f := &JobFlags{}
	fs.IntVar(&f.MaxJobs, "max-jobs", jobs.DefaultWorkers,
		"async jobs (POST /v1/jobs) run concurrently")
	fs.IntVar(&f.JobQueue, "job-queue", jobs.DefaultQueueLimit,
		"async jobs queued beyond the running ones; further submissions are rejected with HTTP 429")
	return f
}

// Validate rejects non-positive values: a job subsystem with no workers
// or no queue can never serve a submission, so misconfiguration fails at
// startup instead of 429-ing every request.
func (f *JobFlags) Validate() error {
	if f.MaxJobs <= 0 {
		return fmt.Errorf("need -max-jobs >= 1, got %d", f.MaxJobs)
	}
	if f.JobQueue <= 0 {
		return fmt.Errorf("need -job-queue >= 1, got %d", f.JobQueue)
	}
	return nil
}
