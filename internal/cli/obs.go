package cli

import (
	"flag"
	"fmt"
	"log/slog"
	"time"
)

// ObsFlags is the parsed observability flag set of a serving tool.
type ObsFlags struct {
	// SlowRequest is the latency threshold above which a request logs a
	// warn-level line carrying its per-stage engine trace
	// (-slow-request; 0 disables).
	SlowRequest time.Duration
	// DebugAddr, when non-empty, is the private listener serving
	// net/http/pprof and /metrics off the public mux (-debug-addr).
	DebugAddr string
	// LogLevel is the minimum level of the structured log (-log-level:
	// debug, info, warn, error).
	LogLevel string
}

// AddObsFlags registers the shared observability flags on fs and returns
// the struct the parsed values land in. Callers must Validate after
// parsing.
func AddObsFlags(fs *flag.FlagSet) *ObsFlags {
	f := &ObsFlags{}
	fs.DurationVar(&f.SlowRequest, "slow-request", time.Second,
		"log a warn line with per-stage engine timings for requests slower than this (0 = off)")
	fs.StringVar(&f.DebugAddr, "debug-addr", "",
		"serve net/http/pprof and /metrics on this private address (empty = off)")
	fs.StringVar(&f.LogLevel, "log-level", "info",
		"structured-log level: debug, info, warn, error")
	return f
}

// Validate rejects a negative threshold and an unknown log level.
func (f *ObsFlags) Validate() error {
	if f.SlowRequest < 0 {
		return fmt.Errorf("need -slow-request >= 0, got %v", f.SlowRequest)
	}
	_, err := f.Level()
	return err
}

// Level parses -log-level into a slog.Level.
func (f *ObsFlags) Level() (slog.Level, error) {
	switch f.LogLevel {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown -log-level %q (valid: debug, info, warn, error)", f.LogLevel)
}
