package cli

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"slices"
	"strings"
	"time"

	"repro"
	"repro/internal/report"
)

// EngineFlags is the parsed engine-related flag set of one tool.
type EngineFlags struct {
	// Parallel is the worker-pool width (-parallel).
	Parallel int
	// Timeout bounds the whole run; zero means none (-timeout).
	Timeout time.Duration
	// Progress enables per-level progress lines on stderr (-progress).
	Progress bool
	// ShardThreshold is the assignment count above which one level check
	// is split across idle workers (-shard-threshold; 0 = engine default,
	// negative = never shard).
	ShardThreshold int
	// CacheFile persists the decision cache at this path (-cache-file;
	// empty = in-memory only), so sweeps resume across runs.
	CacheFile string
	// GraphCacheBudget bounds the engine's exploration-graph cache in
	// total interned nodes (-graph-cache-budget; 0 = engine default,
	// negative = disable graph caching).
	GraphCacheBudget int
	// GraphDir persists expanded exploration graphs under this directory
	// (-graph-dir; empty = in-memory only), so model-checking runs
	// warm-start across processes. It needs graph caching enabled and is
	// ignored (with a warning) when -graph-cache-budget is negative.
	GraphDir string
	// Backend selects the level-decider backend (-backend; empty = the
	// engine default, "search"). Unknown names error from Engine/EngineOn
	// before any work runs.
	Backend string

	// Cache is the persistent cache opened for -cache-file; it is set by
	// OpenCache (and therefore by Engine) and nil when the flag is
	// unset. Tools that build their engines by hand read it for
	// WithCache and statistics.
	Cache *repro.PersistentCache
	// GraphStore is the exploration-graph store opened for -graph-dir;
	// set by OpenGraphStore (and therefore by Engine), nil when the flag
	// is unset.
	GraphStore *repro.GraphStore
}

// AddEngineFlags registers the shared engine flags on fs and returns the
// struct the parsed values land in.
func AddEngineFlags(fs *flag.FlagSet) *EngineFlags {
	f := &EngineFlags{}
	fs.IntVar(&f.Parallel, "parallel", runtime.NumCPU(),
		"worker count for this tool's parallel work (level checks, seed/size/experiment sweeps)")
	fs.DurationVar(&f.Timeout, "timeout", 0,
		"abort the run after this duration (e.g. 30s; 0 = no limit)")
	fs.BoolVar(&f.Progress, "progress", false,
		"print progress to stderr while the run advances")
	fs.IntVar(&f.ShardThreshold, "shard-threshold", 0,
		"assignment count above which one level check is sharded across idle workers (0 = engine default, negative = never shard)")
	fs.StringVar(&f.CacheFile, "cache-file", "",
		"persist the decision cache at this path (journal + snapshot), resuming prior runs' decisions")
	fs.IntVar(&f.GraphCacheBudget, "graph-cache-budget", 0,
		"node budget of the engine's exploration-graph cache (0 = engine default, negative = disable)")
	fs.StringVar(&f.GraphDir, "graph-dir", "",
		"persist expanded exploration graphs under this directory, warm-starting model checks across runs")
	fs.StringVar(&f.Backend, "backend", "",
		fmt.Sprintf("level-decider backend, one of %s (default %q)", strings.Join(repro.Backends(), ", "), "search"))
	return f
}

// Context returns the run context implied by the flags: background, or a
// deadline context when -timeout is set. The cancel func must be called
// (deferred) by the tool.
func (f *EngineFlags) Context() (context.Context, context.CancelFunc) {
	if f.Timeout > 0 {
		return context.WithTimeout(context.Background(), f.Timeout)
	}
	return context.WithCancel(context.Background())
}

// OpenGraphStore opens the -graph-dir exploration-graph store,
// memoizing it in f.GraphStore. With the flag unset it returns
// (nil, nil). The store has no close; callers persist dirty graphs by
// flushing the GraphCache it backs.
func (f *EngineFlags) OpenGraphStore() (*repro.GraphStore, error) {
	if f.GraphDir == "" {
		return nil, nil
	}
	if f.GraphStore != nil {
		return f.GraphStore, nil
	}
	gs, err := repro.OpenGraphStore(f.GraphDir)
	if err != nil {
		return nil, fmt.Errorf("-graph-dir: %w", err)
	}
	f.GraphStore = gs
	return gs, nil
}

// OpenCache opens the -cache-file persistent cache, memoizing the store
// in f.Cache. With the flag unset it returns (nil, nil). The caller (or
// Engine's cleanup) must Close the store to flush the journal; a caller
// closing the store itself should also clear f.Cache so a later open on
// the same flags does not reuse the closed store.
func (f *EngineFlags) OpenCache() (*repro.PersistentCache, error) {
	if f.CacheFile == "" {
		return nil, nil
	}
	if f.Cache != nil {
		return f.Cache, nil
	}
	pc, err := repro.OpenCache(f.CacheFile)
	if err != nil {
		return nil, fmt.Errorf("-cache-file: %w", err)
	}
	f.Cache = pc
	return pc, nil
}

// EngineOn builds a repro.Engine bound to a caller-supplied context —
// for tools that drive sweeps on a sub-context of their own (early-exit
// cancellation) or whose own progress rendering is the tool's voice, so
// the engine stays quiet (the -progress writer is NOT installed; pass
// repro.WithProgress in extra to opt in). The -cache-file persistent
// cache and the -graph-dir exploration-graph store are wired when set.
// The returned cleanup must be deferred: it flushes dirty exploration
// graphs to the -graph-dir store and closes the persistent cache
// (flushing its journal), reporting failures on stderr; canceling ctx
// remains the caller's job.
func (f *EngineFlags) EngineOn(ctx context.Context, extra ...repro.Option) (*repro.Engine, func(), error) {
	// Validate eagerly: options have no error channel, and a typo'd
	// backend should fail the tool at startup, not its first level check.
	if f.Backend != "" && !slices.Contains(repro.Backends(), f.Backend) {
		return nil, nil, fmt.Errorf("-backend: unknown backend %q (valid: %s)",
			f.Backend, strings.Join(repro.Backends(), ", "))
	}
	opts := []repro.Option{
		repro.WithContext(ctx),
		repro.WithParallelism(f.Parallel),
		repro.WithShardThreshold(f.ShardThreshold),
	}
	if f.Backend != "" {
		opts = append(opts, repro.WithBackend(f.Backend))
	}
	pc, err := f.OpenCache()
	if err != nil {
		return nil, nil, err
	}
	gs, err := f.OpenGraphStore()
	if err != nil {
		return nil, nil, err
	}
	var gc *repro.GraphCache
	switch {
	case gs != nil && f.GraphCacheBudget >= 0:
		gc = repro.NewGraphCache(f.GraphCacheBudget)
		gc.SetStore(gs)
		opts = append(opts, repro.WithGraphCache(gc))
	case gs != nil:
		fmt.Fprintln(os.Stderr, "-graph-dir: ignored, graph caching is disabled (-graph-cache-budget < 0)")
		fallthrough
	default:
		opts = append(opts, repro.WithGraphCacheBudget(f.GraphCacheBudget))
	}
	if pc != nil {
		opts = append(opts, repro.WithCache(pc.Cache()))
	}
	cleanup := func() {
		if gc != nil {
			if err := gc.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "graph-dir:", err)
			}
		}
		if pc != nil {
			if err := pc.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "cache-file:", err)
			}
			// Drop the memo: a later Engine/OpenCache on these flags
			// must reopen the store, not reuse a closed one that would
			// silently persist nothing.
			if f.Cache == pc {
				f.Cache = nil
			}
		}
	}
	return repro.New(append(opts, extra...)...), cleanup, nil
}

// Engine builds a repro.Engine from the flags plus any extra options:
// EngineOn on the flags' own run context, with the -progress writer
// installed. The returned cleanup must be deferred by the caller; it
// cancels the run context and closes the -cache-file store.
func (f *EngineFlags) Engine(extra ...repro.Option) (*repro.Engine, func(), error) {
	ctx, cancel := f.Context()
	var opts []repro.Option
	if f.Progress {
		opts = append(opts, repro.WithProgress(report.ProgressWriter(os.Stderr)))
	}
	eng, closeStore, err := f.EngineOn(ctx, append(opts, extra...)...)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	return eng, func() { cancel(); closeStore() }, nil
}

// Summary prints a decision cache's final statistics (and the
// persistent store's, when -cache-file is set) to stderr under
// -progress, as the run's closing line. Call it after the tool's main
// work, before cleanup, passing eng.Cache() — or any cache the tool
// runs on. The store is flushed first so the reported journal size
// covers this run's appends.
func (f *EngineFlags) Summary(c *repro.Cache) {
	if !f.Progress || c == nil {
		return
	}
	hits, misses, entries := c.Stats()
	fmt.Fprintf(os.Stderr, "[engine] cache: %d hits, %d misses, %d entries\n", hits, misses, entries)
	if f.Cache != nil {
		if err := f.Cache.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "cache-file:", err)
		}
		st := f.Cache.Stats()
		fmt.Fprintf(os.Stderr, "[engine] cache file %s: %d loaded, %d appended (journal %dB, snapshot %dB)\n",
			st.Path, st.Loaded, st.Appended, st.JournalBytes, st.SnapshotBytes)
	}
}
