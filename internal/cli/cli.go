// Package cli carries the flag plumbing shared by the cmd tools and
// examples: every tool that drives the analysis engine registers the same
// -parallel, -timeout and -progress flags and builds its engine (and a
// cancellable context) through EngineFlags.
package cli

import (
	"context"
	"flag"
	"os"
	"runtime"
	"time"

	"repro"
	"repro/internal/report"
)

// EngineFlags is the parsed engine-related flag set of one tool.
type EngineFlags struct {
	// Parallel is the worker-pool width (-parallel).
	Parallel int
	// Timeout bounds the whole run; zero means none (-timeout).
	Timeout time.Duration
	// Progress enables per-level progress lines on stderr (-progress).
	Progress bool
	// ShardThreshold is the assignment count above which one level check
	// is split across idle workers (-shard-threshold; 0 = engine default,
	// negative = never shard).
	ShardThreshold int
}

// AddEngineFlags registers the shared engine flags on fs and returns the
// struct the parsed values land in.
func AddEngineFlags(fs *flag.FlagSet) *EngineFlags {
	f := &EngineFlags{}
	fs.IntVar(&f.Parallel, "parallel", runtime.NumCPU(),
		"worker count for this tool's parallel work (level checks, seed/size/experiment sweeps)")
	fs.DurationVar(&f.Timeout, "timeout", 0,
		"abort the run after this duration (e.g. 30s; 0 = no limit)")
	fs.BoolVar(&f.Progress, "progress", false,
		"print progress to stderr while the run advances")
	fs.IntVar(&f.ShardThreshold, "shard-threshold", 0,
		"assignment count above which one level check is sharded across idle workers (0 = engine default, negative = never shard)")
	return f
}

// Context returns the run context implied by the flags: background, or a
// deadline context when -timeout is set. The cancel func must be called
// (deferred) by the tool.
func (f *EngineFlags) Context() (context.Context, context.CancelFunc) {
	if f.Timeout > 0 {
		return context.WithTimeout(context.Background(), f.Timeout)
	}
	return context.WithCancel(context.Background())
}

// Options expands the flags into engine options bound to ctx.
func (f *EngineFlags) Options(ctx context.Context) []repro.Option {
	opts := []repro.Option{
		repro.WithContext(ctx),
		repro.WithParallelism(f.Parallel),
		repro.WithShardThreshold(f.ShardThreshold),
	}
	if f.Progress {
		opts = append(opts, repro.WithProgress(report.ProgressWriter(os.Stderr)))
	}
	return opts
}

// Engine builds a repro.Engine from the flags plus any extra options.
// The returned cancel must be deferred by the caller.
func (f *EngineFlags) Engine(extra ...repro.Option) (*repro.Engine, context.CancelFunc) {
	ctx, cancel := f.Context()
	return repro.New(append(f.Options(ctx), extra...)...), cancel
}

// Shards resolves the sharding width for one level check driven outside
// the engine (a tool calling the sharded deciders directly): how many
// shards to split an enumeration of `assignments` across, given `idle`
// spare workers. It applies the -shard-threshold contract exactly as
// the engine does — 1 (serial) when sharding is disabled, no worker is
// idle, or the enumeration is at or below the threshold; the idle
// workers plus the check's own otherwise.
func (f *EngineFlags) Shards(assignments int64, idle int) int {
	thr := f.ShardThreshold
	if thr < 0 || idle < 1 {
		return 1
	}
	if thr == 0 {
		thr = repro.DefaultShardThreshold
	}
	if assignments <= int64(thr) {
		return 1
	}
	return idle + 1
}
