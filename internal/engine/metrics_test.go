package engine

import (
	"sync"
	"testing"

	"repro/internal/proto"
)

// TestMetricsAndSpanEvents pins the observability contract of the check
// paths: every Check brackets itself with check.start/check.done, the
// Metrics collector attributes the cold first walk to GraphExpand and
// the warm repeat to GraphWalk, and graph resolution is observed per
// call.
func TestMetricsAndSpanEvents(t *testing.T) {
	m := NewMetrics()
	var mu sync.Mutex
	var kinds []string
	eng := New(WithMetrics(m), WithProgress(func(ev Event) {
		mu.Lock()
		kinds = append(kinds, ev.Kind)
		mu.Unlock()
	}))
	if eng.Metrics() != m {
		t.Fatal("Metrics accessor lost the collector")
	}
	p := proto.NewCASRecoverable(2)
	req := CheckRequest{Inputs: []int{0, 1}, CrashQuota: []int{1, 1}}
	for i := 0; i < 2; i++ {
		if _, err := eng.Check(p, req); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"check.start", "check.done", "check.start", "check.done"}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	if got := m.GraphResolve.Snapshot().Count; got != 2 {
		t.Errorf("GraphResolve count = %d, want 2", got)
	}
	if got := m.GraphExpand.Snapshot().Count; got != 1 {
		t.Errorf("GraphExpand count = %d, want 1 (cold first walk)", got)
	}
	if got := m.GraphWalk.Snapshot().Count; got != 1 {
		t.Errorf("GraphWalk count = %d, want 1 (warm repeat)", got)
	}

	kinds = nil
	if _, err := eng.Theorem13(p, req); err != nil {
		t.Fatal(err)
	}
	if len(kinds) < 2 || kinds[0] != "chain.start" || kinds[len(kinds)-1] != "check.done" {
		t.Errorf("Theorem13 kinds = %v, want chain.start ... check.done", kinds)
	}

	kinds = nil
	if _, _, err := eng.CheckBatch(p, []CheckRequest{req, req}); err != nil {
		t.Fatal(err)
	}
	if len(kinds) < 2 || kinds[0] != "checkbatch.start" || kinds[len(kinds)-1] != "checkbatch.done" {
		t.Errorf("CheckBatch kinds = %v, want checkbatch.start ... checkbatch.done", kinds)
	}
}

// TestNilMetricsSafe proves an uninstrumented engine (the default)
// takes the same code path without panicking on the nil collector.
func TestNilMetricsSafe(t *testing.T) {
	var m *Metrics
	m.observeResolve(0)
	m.observeWalk(true, 0)
	partial := &Metrics{}
	partial.observeResolve(0)
	partial.observeWalk(false, 0)
}
