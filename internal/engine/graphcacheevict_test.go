package engine

import (
	"sync"
	"testing"
	"time"

	"repro/internal/graphstore"
	"repro/internal/model"
	"repro/internal/proto"
)

// slowStore wraps a GraphStore and delays every Spill, widening the
// window in which an eviction (enforce) races the asynchronous delta
// spill a Sync fired for the same entry.
type slowStore struct {
	inner GraphStore
	delay time.Duration
}

func (s *slowStore) Load(fp string, inputs []int) (*model.GraphSnapshot, error) {
	return s.inner.Load(fp, inputs)
}

func (s *slowStore) Spill(fp string, inputs []int, snap *model.GraphSnapshot) (int, error) {
	time.Sleep(s.delay)
	return s.inner.Spill(fp, inputs, snap)
}

// TestGraphCacheEvictionRacesSpill hammers a one-node-budget cache (so
// every Get evicts the least-recently-used graph) through a store whose
// spills are artificially slow: each Sync leaves a spill in flight that
// the next eviction then races. The guarantees under test, with -race
// in CI: no lost updates — after the dust settles the store holds every
// graph's complete expansion, so a fresh cache warm-loads each key and
// re-walks it with zero new expansions — and GraphStoreStats.Errors
// stays 0 throughout.
func TestGraphCacheEvictionRacesSpill(t *testing.T) {
	dir := t.TempDir()
	raw, err := graphstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewGraphCache(1)
	c.SetStore(&slowStore{inner: raw, delay: 2 * time.Millisecond})

	type key struct {
		p      model.Protocol
		inputs []int
	}
	var keys []key
	for _, p := range []model.Protocol{proto.NewCASRecoverable(2), proto.NewCASWaitFree(2)} {
		for _, inputs := range [][]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
			keys = append(keys, key{p, inputs})
		}
	}

	// Expected full expansion size per key, from an isolated graph.
	want := make([]uint64, len(keys))
	for i, k := range keys {
		g, err := model.NewGraph(k.p, k.inputs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Check(model.CheckOpts{Inputs: k.inputs}); err != nil {
			t.Fatal(err)
		}
		want[i] = g.Stats().Interned
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for i := range keys {
					// Stagger workers so Get/Sync/evict interleave
					// differently in each goroutine.
					kk := keys[(i+w)%len(keys)]
					g, err := c.Get(kk.p, kk.inputs)
					if err != nil {
						errs <- err
						return
					}
					if _, err := g.Check(model.CheckOpts{Inputs: kk.inputs}); err != nil {
						errs <- err
						return
					}
					c.Sync(g)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every key's complete expansion must land on disk: in-flight spills
	// export the full graph, so waiting on the raw store's contents is
	// the lost-update check.
	fps := make([]string, len(keys))
	for i, k := range keys {
		if fps[i], err = model.Fingerprint(k.p); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for i, k := range keys {
		for {
			snap, err := raw.Load(fps[i], k.inputs)
			if err != nil {
				t.Fatalf("key %d: load: %v", i, err)
			}
			if snap != nil && uint64(len(snap.Nodes)) == want[i] {
				break
			}
			if time.Now().After(deadline) {
				got := 0
				if snap != nil {
					got = len(snap.Nodes)
				}
				t.Fatalf("key %d: store has %d of %d nodes after racing spills (lost update)",
					i, got, want[i])
			}
			time.Sleep(time.Millisecond)
		}
	}

	if st := c.Stats(); st.Store == nil || st.Store.Errors != 0 {
		t.Fatalf("store errors after eviction/spill races: %+v", st.Store)
	}
	if st := c.Stats(); st.Evicted == 0 {
		t.Fatal("budget never forced an eviction; the race was not exercised")
	}

	// A fresh cache over the same directory must warm-load every key
	// completely: zero new expansions on a full re-walk.
	raw2, err := graphstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewGraphCache(0)
	c2.SetStore(raw2)
	for i, k := range keys {
		g, err := c2.Get(k.p, k.inputs)
		if err != nil {
			t.Fatal(err)
		}
		before := g.Stats()
		if _, err := g.Check(model.CheckOpts{Inputs: k.inputs}); err != nil {
			t.Fatal(err)
		}
		if after := g.Stats(); after.Expanded != before.Expanded {
			t.Fatalf("key %d: warm re-walk expanded %d new nodes, want 0 (spill lost data)",
				i, after.Expanded-before.Expanded)
		}
	}
	if st := c2.Stats(); st.Store == nil || st.Store.Errors != 0 {
		t.Fatalf("fresh cache hit store errors: %+v", st.Store)
	}
}
