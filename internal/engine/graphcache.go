package engine

import (
	"reflect"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/model"
)

// DefaultGraphCacheBudget is the node budget a GraphCache is built with
// when WithGraphCacheBudget is left at 0: the total number of interned
// exploration-graph nodes retained across all cached graphs (roughly two
// default-sized model-checker explorations).
const DefaultGraphCacheBudget = 4_000_000

// GraphStore is the persistence backend a GraphCache can spill to and
// warm-load from (internal/graphstore.Store implements it). Load
// returns (nil, nil) on a clean miss; Spill persists a snapshot's
// growth beyond what the store already holds and reports the node
// records written. Implementations must be safe for concurrent use.
type GraphStore interface {
	Load(fp string, inputs []int) (*model.GraphSnapshot, error)
	Spill(fp string, inputs []int, snap *model.GraphSnapshot) (int, error)
}

// GraphCache is a bounded LRU of live exploration graphs, keyed by
// protocol identity plus input vector, shared by Engine.Check,
// Engine.CheckBatch and Engine.Theorem13 — and, via WithGraphCache, by
// any number of engines (the reprod service installs one server-wide
// cache into its per-request engines). A cached graph keeps every node
// expansion it has ever performed, so repeated checks of the same
// protocol and inputs walk a warm graph and expand nothing.
//
// Graph construction is cheap (validation only; expansion is lazy), so
// builds run under the cache lock, which doubles as singleflight:
// concurrent requests for the same key always share one graph.
//
// # Protocol identity
//
// Two Get calls share a graph exactly when their protocols have equal
// structural fingerprints (model.Fingerprint — a canonical hash of the
// reachable state machine) and their input vectors are equal.
// Protocol.Name never enters the key: a registry-built protocol and a
// user-submitted descriptor compilation that are structurally identical
// share one cached graph, and two protocols that differ in any
// transition can never alias each other no matter what they are called.
// Nodes of a shared graph carry the local-state strings of whichever
// structurally-equal protocol built it first; traces rendered from them
// may therefore use that protocol's state names.
//
// # Eviction
//
// The cache is bounded by total interned nodes, not graph count: cached
// graphs keep growing as walks expand them, so the budget is re-checked
// against live node counts on every Get and least-recently-used graphs
// are dropped until the total fits (the entry just served is never
// evicted, and a single over-budget graph is tolerated until a newer one
// displaces it). Eviction only forgets the cache's reference — walks
// holding the evicted graph finish unharmed; the next Get of that key
// rebuilds cold.
//
// # Persistence
//
// With SetStore installed, the cache is the graph store's owner: a Get
// miss tries a warm load from disk before expanding cold, Sync (called
// by the engine after walks) spills a dirty graph's growth
// asynchronously — walks never block on the disk — eviction spills a
// dirty victim before forgetting it, and Flush spills everything
// synchronously for shutdown. A key whose load or spill errored is
// marked store-less and served purely in memory from then on.
type GraphCache struct {
	mu      sync.Mutex
	budget  uint64
	entries map[string]*gcEntry
	// byGraph indexes live entries by their graph, the Sync lookup.
	byGraph map[*model.Graph]*gcEntry
	// head is the most-recently-used entry, tail the eviction candidate.
	head, tail *gcEntry

	store GraphStore

	// keyBuf is the reusable key-composition scratch (guarded by mu);
	// warm Gets probe entries via an allocation-free string(keyBuf) map
	// lookup and only materialize a key string on a miss.
	keyBuf []byte

	hits, misses, evicted uint64
	st                    GraphStoreStats
}

// gcEntry is one cached graph on the intrusive LRU list.
type gcEntry struct {
	key        string
	g          *model.Graph
	prev, next *gcEntry

	// fp and inputs are the graph's store identity (the two halves of
	// key).
	fp     string
	inputs []int
	// spilledNodes/spilledExpanded are the snapshot counts known durable;
	// the entry is dirty while the live graph is ahead of them.
	spilledNodes    uint64
	spilledExpanded uint64
	// spilling gates the one async spill in flight per entry.
	spilling bool
	// noStore marks an entry the store cannot serve (load/spill error or
	// import validation failure): it lives purely in memory.
	noStore bool
}

// dirty reports whether the live graph has grown past the durable
// snapshot (lock held).
func (e *gcEntry) dirty() bool {
	st := e.g.Stats()
	return st.Interned > e.spilledNodes || st.Expanded > e.spilledExpanded
}

// GraphCacheStats is a snapshot of a GraphCache's counters.
type GraphCacheStats struct {
	// Hits and Misses count Get calls served from / building a graph.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evicted counts graphs dropped to fit the node budget.
	Evicted uint64 `json:"evicted"`
	// Graphs is the number of graphs currently cached.
	Graphs int `json:"graphs"`
	// Nodes is the total interned node count across cached graphs — the
	// quantity the budget bounds.
	Nodes uint64 `json:"nodes"`
	// Store holds the persistence counters; nil when no graph store is
	// installed.
	Store *GraphStoreStats `json:"store,omitempty"`
}

// GraphStoreStats counts the cache's traffic against its GraphStore.
type GraphStoreStats struct {
	// Loads counts Get misses served by a warm load from disk;
	// LoadedNodes their total imported node records. Misses counts Get
	// misses the store had no file for (cold expansions).
	Loads       uint64 `json:"loads"`
	LoadedNodes uint64 `json:"loadedNodes"`
	Misses      uint64 `json:"misses"`
	// Spills counts spills that wrote at least one node record;
	// SpilledNodes their total records (appends plus in-place
	// completions).
	Spills       uint64 `json:"spills"`
	SpilledNodes uint64 `json:"spilledNodes"`
	// Errors counts load failures, import validation failures and spill
	// failures; each marks its key store-less.
	Errors uint64 `json:"errors"`
}

// HitRate returns Hits / (Hits + Misses), or 0 before any Get.
func (s GraphCacheStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// NewGraphCache builds an empty cache with the given total-node budget
// (<= 0 selects DefaultGraphCacheBudget).
func NewGraphCache(budget int) *GraphCache {
	if budget <= 0 {
		budget = DefaultGraphCacheBudget
	}
	return &GraphCache{
		budget:  uint64(budget),
		entries: make(map[string]*gcEntry),
		byGraph: make(map[*model.Graph]*gcEntry),
	}
}

// SetStore installs the persistence backend. Install before serving
// traffic; entries cached earlier never associate with the store.
func (c *GraphCache) SetStore(s GraphStore) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store = s
}

// fpMemo caches model.Fingerprint results keyed by the Protocol
// interface value itself, so a caller re-checking the same protocol
// value (registry singletons, compiled descriptors held by jobs, bench
// loops) pays the SHA-256 closure walk once, not per Get. The map
// retains its protocol keys, which is what makes interface-value keying
// sound: a key can never be collected and have its address reused by a
// different protocol while the memo still maps it. Bounded, never
// evicted — entries are tiny next to the graphs the cache itself holds.
var (
	fpMemo     sync.Map // model.Protocol -> fingerprint string
	fpMemoSize atomic.Int64
)

const fpMemoCap = 4096

// fingerprintFor is model.Fingerprint through the memo. Protocols whose
// dynamic type is not comparable (slice/map/func fields) cannot be map
// keys and are hashed every time.
func fingerprintFor(p model.Protocol) (string, error) {
	t := reflect.TypeOf(p)
	if t == nil || !t.Comparable() {
		return model.Fingerprint(p)
	}
	if v, ok := fpMemo.Load(p); ok {
		return v.(string), nil
	}
	fp, err := model.Fingerprint(p)
	if err != nil {
		return "", err
	}
	if fpMemoSize.Load() < fpMemoCap {
		if _, loaded := fpMemo.LoadOrStore(p, fp); !loaded {
			fpMemoSize.Add(1)
		}
	}
	return fp, nil
}

// appendGraphKey canonicalizes the (protocol identity, inputs) cache key
// into dst: the protocol's structural fingerprint plus the input vector.
// Nothing nominal — in particular not Protocol.Name — enters the key.
func appendGraphKey(dst []byte, fp string, inputs []int) []byte {
	dst = append(dst, fp...)
	dst = append(dst, ";in="...)
	for _, in := range inputs {
		dst = strconv.AppendInt(dst, int64(in), 10)
		dst = append(dst, ',')
	}
	return dst
}

// Get returns the cached live graph for (p, inputs), building and caching
// it on a miss. Construction errors (invalid protocol, wrong inputs
// length, fingerprint budget exceeded) are returned without caching
// anything.
//
// With a store installed, a miss first tries a warm load: a snapshot on
// disk imports into the fresh graph before it is served, so the first
// check after a restart walks previously-expanded nodes instead of
// re-expanding them. The disk read runs under the cache lock —
// deliberately: it doubles as load singleflight, and the read it blocks
// concurrent Gets on is far cheaper than the re-expansion they would
// otherwise race into. A load or import failure degrades to a cold
// graph and marks the key store-less, never an error for the caller.
func (c *GraphCache) Get(p model.Protocol, inputs []int) (*model.Graph, error) {
	fp, err := fingerprintFor(p)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.keyBuf = appendGraphKey(c.keyBuf[:0], fp, inputs)
	if e, ok := c.entries[string(c.keyBuf)]; ok {
		c.hits++
		c.moveFront(e)
		c.enforce(e)
		return e.g, nil
	}
	g, err := model.NewGraph(p, inputs)
	if err != nil {
		return nil, err
	}
	c.misses++
	key := string(c.keyBuf)
	e := &gcEntry{key: key, g: g, fp: fp, inputs: append([]int(nil), inputs...)}
	if c.store != nil {
		switch snap, err := c.store.Load(fp, e.inputs); {
		case err != nil:
			c.st.Errors++
			e.noStore = true
		case snap == nil:
			c.st.Misses++
		default:
			if impErr := g.ImportSnapshot(snap); impErr != nil {
				// Structurally invalid on-disk data that slipped past the
				// container checksums: expand cold and leave the file alone.
				c.st.Errors++
				e.noStore = true
			} else {
				c.st.Loads++
				c.st.LoadedNodes += uint64(len(snap.Nodes))
				e.spilledNodes = uint64(len(snap.Nodes))
				e.spilledExpanded = uint64(snap.NumExpanded())
			}
		}
	}
	c.entries[key] = e
	c.byGraph[g] = e
	c.pushFront(e)
	c.enforce(e)
	return g, nil
}

// Sync notes that walks on g just completed and schedules an
// asynchronous spill of the graph's growth if it is dirty. It never
// blocks on the disk and is a no-op for a nil cache, an uncached graph,
// a clean entry, a store-less key, or an entry whose previous spill is
// still in flight. Engines call it after Check/CheckBatch/Theorem13.
func (c *GraphCache) Sync(g *model.Graph) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byGraph[g]
	if !ok || c.store == nil || e.noStore || e.spilling || !e.dirty() {
		return
	}
	e.spilling = true
	go c.spill(e)
}

// spill exports e's graph and persists the delta, then updates the
// entry's durable markers. Runs off the cache lock; the store
// serializes concurrent spills internally.
func (c *GraphCache) spill(e *gcEntry) {
	snap := e.g.Export()
	n, err := c.store.Spill(e.fp, e.inputs, snap)
	c.mu.Lock()
	defer c.mu.Unlock()
	e.spilling = false
	if err != nil {
		c.st.Errors++
		e.noStore = true
		return
	}
	if n > 0 {
		c.st.Spills++
		c.st.SpilledNodes += uint64(n)
	}
	if nodes := uint64(len(snap.Nodes)); nodes > e.spilledNodes {
		e.spilledNodes = nodes
	}
	if exp := uint64(snap.NumExpanded()); exp > e.spilledExpanded {
		e.spilledExpanded = exp
	}
}

// Flush synchronously spills every dirty entry — the shutdown path,
// called after request and job traffic has drained. It returns the
// first spill error; keys that already failed are skipped.
func (c *GraphCache) Flush() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	if c.store == nil {
		c.mu.Unlock()
		return nil
	}
	var dirty []*gcEntry
	for _, e := range c.entries {
		if !e.noStore && e.dirty() {
			dirty = append(dirty, e)
		}
	}
	c.mu.Unlock()

	var first error
	for _, e := range dirty {
		snap := e.g.Export()
		n, err := c.store.Spill(e.fp, e.inputs, snap)
		c.mu.Lock()
		if err != nil {
			c.st.Errors++
			e.noStore = true
			if first == nil {
				first = err
			}
		} else {
			if n > 0 {
				c.st.Spills++
				c.st.SpilledNodes += uint64(n)
			}
			if nodes := uint64(len(snap.Nodes)); nodes > e.spilledNodes {
				e.spilledNodes = nodes
			}
			if exp := uint64(snap.NumExpanded()); exp > e.spilledExpanded {
				e.spilledExpanded = exp
			}
		}
		c.mu.Unlock()
	}
	return first
}

// Stats snapshots the cache's counters.
func (c *GraphCache) Stats() GraphCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := GraphCacheStats{Hits: c.hits, Misses: c.misses, Evicted: c.evicted, Graphs: len(c.entries)}
	for _, e := range c.entries {
		st.Nodes += e.g.Stats().Interned
	}
	if c.store != nil {
		s := c.st
		st.Store = &s
	}
	return st
}

// Purge empties the cache, keeping the statistics (in-flight walks on
// formerly cached graphs are unaffected).
func (c *GraphCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*gcEntry)
	c.byGraph = make(map[*model.Graph]*gcEntry)
	c.head, c.tail = nil, nil
}

// enforce evicts least-recently-used entries (never keep) until the live
// node total fits the budget, spilling a dirty victim's growth to the
// store first so eviction never discards expansions a restart could
// have reused. Called with the lock held.
func (c *GraphCache) enforce(keep *gcEntry) {
	for len(c.entries) > 1 {
		var total uint64
		for _, e := range c.entries {
			total += e.g.Stats().Interned
		}
		if total <= c.budget {
			return
		}
		victim := c.tail
		if victim == nil || victim == keep {
			return
		}
		if c.store != nil && !victim.noStore && !victim.spilling && victim.dirty() {
			// Fire-and-forget: the goroutine keeps the evicted graph alive
			// exactly as an in-flight walk would, and the store serializes
			// it against every other spill.
			victim.spilling = true
			go c.spill(victim)
		}
		c.unlink(victim)
		delete(c.entries, victim.key)
		delete(c.byGraph, victim.g)
		c.evicted++
	}
}

// pushFront links e as the most-recently-used entry (lock held).
func (c *GraphCache) pushFront(e *gcEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// moveFront promotes e to most-recently-used (lock held).
func (c *GraphCache) moveFront(e *gcEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// unlink removes e from the LRU list (lock held).
func (c *GraphCache) unlink(e *gcEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
