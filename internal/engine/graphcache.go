package engine

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/model"
)

// DefaultGraphCacheBudget is the node budget a GraphCache is built with
// when WithGraphCacheBudget is left at 0: the total number of interned
// exploration-graph nodes retained across all cached graphs (roughly two
// default-sized model-checker explorations).
const DefaultGraphCacheBudget = 4_000_000

// GraphCache is a bounded LRU of live exploration graphs, keyed by
// protocol identity plus input vector, shared by Engine.Check,
// Engine.CheckBatch and Engine.Theorem13 — and, via WithGraphCache, by
// any number of engines (the reprod service installs one server-wide
// cache into its per-request engines). A cached graph keeps every node
// expansion it has ever performed, so repeated checks of the same
// protocol and inputs walk a warm graph and expand nothing.
//
// Graph construction is cheap (validation only; expansion is lazy), so
// builds run under the cache lock, which doubles as singleflight:
// concurrent requests for the same key always share one graph.
//
// # Protocol identity
//
// Two Get calls share a graph exactly when their protocols have equal
// structural fingerprints (model.Fingerprint — a canonical hash of the
// reachable state machine) and their input vectors are equal.
// Protocol.Name never enters the key: a registry-built protocol and a
// user-submitted descriptor compilation that are structurally identical
// share one cached graph, and two protocols that differ in any
// transition can never alias each other no matter what they are called.
// Nodes of a shared graph carry the local-state strings of whichever
// structurally-equal protocol built it first; traces rendered from them
// may therefore use that protocol's state names.
//
// # Eviction
//
// The cache is bounded by total interned nodes, not graph count: cached
// graphs keep growing as walks expand them, so the budget is re-checked
// against live node counts on every Get and least-recently-used graphs
// are dropped until the total fits (the entry just served is never
// evicted, and a single over-budget graph is tolerated until a newer one
// displaces it). Eviction only forgets the cache's reference — walks
// holding the evicted graph finish unharmed; the next Get of that key
// rebuilds cold.
type GraphCache struct {
	mu      sync.Mutex
	budget  uint64
	entries map[string]*gcEntry
	// head is the most-recently-used entry, tail the eviction candidate.
	head, tail *gcEntry

	hits, misses, evicted uint64
}

// gcEntry is one cached graph on the intrusive LRU list.
type gcEntry struct {
	key        string
	g          *model.Graph
	prev, next *gcEntry
}

// GraphCacheStats is a snapshot of a GraphCache's counters.
type GraphCacheStats struct {
	// Hits and Misses count Get calls served from / building a graph.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evicted counts graphs dropped to fit the node budget.
	Evicted uint64 `json:"evicted"`
	// Graphs is the number of graphs currently cached.
	Graphs int `json:"graphs"`
	// Nodes is the total interned node count across cached graphs — the
	// quantity the budget bounds.
	Nodes uint64 `json:"nodes"`
}

// HitRate returns Hits / (Hits + Misses), or 0 before any Get.
func (s GraphCacheStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// NewGraphCache builds an empty cache with the given total-node budget
// (<= 0 selects DefaultGraphCacheBudget).
func NewGraphCache(budget int) *GraphCache {
	if budget <= 0 {
		budget = DefaultGraphCacheBudget
	}
	return &GraphCache{budget: uint64(budget), entries: make(map[string]*gcEntry)}
}

// graphKey canonicalizes the (protocol identity, inputs) cache key: the
// protocol's structural fingerprint plus the input vector. Nothing
// nominal — in particular not Protocol.Name — enters the key.
func graphKey(p model.Protocol, inputs []int) (string, error) {
	fp, err := model.Fingerprint(p)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(fp)
	b.WriteString(";in=")
	for _, in := range inputs {
		fmt.Fprintf(&b, "%d,", in)
	}
	return b.String(), nil
}

// Get returns the cached live graph for (p, inputs), building and caching
// it on a miss. Construction errors (invalid protocol, wrong inputs
// length, fingerprint budget exceeded) are returned without caching
// anything.
func (c *GraphCache) Get(p model.Protocol, inputs []int) (*model.Graph, error) {
	key, err := graphKey(p, inputs)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.moveFront(e)
		c.enforce(e)
		return e.g, nil
	}
	g, err := model.NewGraph(p, inputs)
	if err != nil {
		return nil, err
	}
	c.misses++
	e := &gcEntry{key: key, g: g}
	c.entries[key] = e
	c.pushFront(e)
	c.enforce(e)
	return g, nil
}

// Stats snapshots the cache's counters.
func (c *GraphCache) Stats() GraphCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := GraphCacheStats{Hits: c.hits, Misses: c.misses, Evicted: c.evicted, Graphs: len(c.entries)}
	for _, e := range c.entries {
		st.Nodes += e.g.Stats().Interned
	}
	return st
}

// Purge empties the cache, keeping the statistics (in-flight walks on
// formerly cached graphs are unaffected).
func (c *GraphCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*gcEntry)
	c.head, c.tail = nil, nil
}

// enforce evicts least-recently-used entries (never keep) until the live
// node total fits the budget. Called with the lock held.
func (c *GraphCache) enforce(keep *gcEntry) {
	for len(c.entries) > 1 {
		var total uint64
		for _, e := range c.entries {
			total += e.g.Stats().Interned
		}
		if total <= c.budget {
			return
		}
		victim := c.tail
		if victim == nil || victim == keep {
			return
		}
		c.unlink(victim)
		delete(c.entries, victim.key)
		c.evicted++
	}
}

// pushFront links e as the most-recently-used entry (lock held).
func (c *GraphCache) pushFront(e *gcEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// moveFront promotes e to most-recently-used (lock held).
func (c *GraphCache) moveFront(e *gcEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// unlink removes e from the LRU list (lock held).
func (c *GraphCache) unlink(e *gcEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
