// Package engine is the concurrent analysis engine behind the repro
// facade: a long-lived, option-configured object that runs the paper's
// discerning/recording level checks across a worker pool, memoizes
// sub-decisions in a shared cache, threads context cancellation through
// the hot search loops (internal/discern, internal/record,
// internal/model), and reports structured progress events.
//
// The design follows the long-lived-engine idiom of production consensus
// stacks: construct once with functional options, submit many workloads,
// share caches between them.
//
// # Concurrency and ownership
//
// One Engine is safe for concurrent use by multiple goroutines;
// independent level checks of one Analyze call — and of concurrent
// Analyze calls — interleave freely on the pool. A Cache may back any
// number of engines at once (WithCache); its singleflight layer
// guarantees concurrent identical level checks run the underlying
// decider exactly once. CheckBatch shares one exploration graph
// (model.Graph) per distinct input vector across the batch's concurrent
// walks. Progress consumers are invoked under an engine-held mutex, so
// one emission at a time; the consumer must not call back into the
// engine.
//
// # Byte-stability guarantees
//
// Sharded and serial level checks return identical results, including
// the witness chosen (the lowest-ranked one in the deterministic tuple
// enumeration). CheckBatch results are byte-identical to serial Check
// calls of the same requests — both run the one exploration code path,
// model.(*Graph).Check. Witnesses served from the cache are deep copies,
// so callers may mutate what they receive without corrupting later
// analyses.
package engine
