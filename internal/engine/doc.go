// Package engine is the concurrent analysis engine behind the repro
// facade: a long-lived, option-configured object that runs the paper's
// discerning/recording level checks across a worker pool, memoizes
// sub-decisions in a shared cache, threads context cancellation through
// the hot search loops (internal/discern, internal/record,
// internal/model), and reports structured progress events.
//
// The design follows the long-lived-engine idiom of production consensus
// stacks: construct once with functional options, submit many workloads,
// share caches between them.
//
// # Concurrency and ownership
//
// One Engine is safe for concurrent use by multiple goroutines;
// independent level checks of one Analyze call — and of concurrent
// Analyze calls — interleave freely on the pool. A Cache may back any
// number of engines at once (WithCache); its singleflight layer
// guarantees concurrent identical level checks run the underlying
// decider exactly once. Progress consumers are invoked under an
// engine-held mutex, so one emission at a time; the consumer must not
// call back into the engine.
//
// # The exploration-graph cache
//
// Check, CheckBatch and Theorem13 resolve their model.Graphs through a
// GraphCache: a bounded LRU keyed by protocol identity + input vector,
// engine-private by default (WithGraphCacheBudget) or shared across
// engines (WithGraphCache — the reprod service installs one server-wide
// cache into its per-request engines). The cache owns only references:
// graphs are built under the cache lock (cheap validation; expansion is
// lazy and singleflight inside the graph), the node budget is enforced
// against live node counts on every resolution, and evicting a graph
// never invalidates walks already running on it — they hold their own
// reference and finish unharmed. A negative budget disables caching and
// restores fresh-graph-per-call behavior.
//
// # Observability
//
// Check, CheckBatch and Theorem13 bracket their work with
// ".start"/".done" progress events, so a consumer sees spans, not just
// outcomes — the reprod service forwards them onto job SSE streams and
// into per-request slow-request traces. WithMetrics installs a shared
// Metrics collector of lock-free latency histograms (internal/obs)
// split by phase: graph resolution, cold walks that expanded state
// space, and warm walks that reused it. Observation costs two atomic
// adds per walk and allocates nothing, so instrumented and bare engines
// have the same hot path.
//
// # Byte-stability guarantees
//
// Sharded and serial level checks return identical results, including
// the witness chosen (the lowest-ranked one in the deterministic tuple
// enumeration). Check, CheckBatch and Theorem13 results are
// byte-identical whether their graphs are cold, warm, shared with
// concurrent calls, or rebuilt after eviction — all run the one
// exploration code path, model.(*Graph).Check, whose walks are
// deterministic overlays. Witnesses served from the decision cache are
// deep copies, so callers may mutate what they receive without
// corrupting later analyses.
package engine
