package engine

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/types"
)

func TestWithBackendSelectsDecider(t *testing.T) {
	e := New()
	if got := e.Backend(); got != "search" {
		t.Fatalf("default backend = %q, want search", got)
	}
	e = New(WithBackend("bitset"))
	if got := e.Backend(); got != "bitset" {
		t.Fatalf("backend = %q, want bitset", got)
	}
}

func TestBackendsListed(t *testing.T) {
	want := []string{"auto", "bitset", "search"}
	if got := Backends(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Backends() = %v, want %v", got, want)
	}
}

func TestUnknownBackendFailsLevelCheck(t *testing.T) {
	e := New(WithBackend("no-such-backend"))
	if got := e.Backend(); got != "no-such-backend" {
		t.Fatalf("Backend() = %q (unresolved names pass through)", got)
	}
	if _, err := e.Analyze(types.TestAndSet()); err == nil {
		t.Fatal("Analyze with unknown backend succeeded")
	}
	if _, _, err := e.Discerning(types.TestAndSet(), 2); err == nil {
		t.Fatal("Discerning with unknown backend succeeded")
	}
}

// TestBackendsAgreeOnAnalyses drives both backends through the full
// engine path (pooled levels, auto-sharding, private caches) and
// compares the complete analyses.
func TestBackendsAgreeOnAnalyses(t *testing.T) {
	search := New(WithBackend("search"), WithCache(NewCache()))
	bitset := New(WithBackend("bitset"), WithCache(NewCache()))
	for _, tt := range []string{"tnn:3,2", "swap:2", "queue:2", "tas"} {
		st, err := search.Resolve(tt)
		if err != nil {
			t.Fatal(err)
		}
		sa, err := search.AnalyzeTo(st, 4)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := bitset.AnalyzeTo(st, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sa, ba) {
			t.Errorf("%s: analyses diverged:\nsearch: %+v\nbitset: %+v", tt, sa, ba)
		}
	}
}

func TestDeciderRunsCounted(t *testing.T) {
	m := NewMetrics()
	e := New(WithBackend("bitset"), WithMetrics(m), WithCache(NewCache()))
	if _, _, err := e.Discerning(types.TestAndSet(), 2); err != nil {
		t.Fatal(err)
	}
	runs := m.DeciderRuns()
	if runs["bitset"] != 1 {
		t.Fatalf("DeciderRuns = %v, want bitset:1", runs)
	}
	// A cache hit runs no backend and must not count.
	if _, _, err := e.Discerning(types.TestAndSet(), 2); err != nil {
		t.Fatal(err)
	}
	if runs := m.DeciderRuns(); runs["bitset"] != 1 {
		t.Fatalf("DeciderRuns after cache hit = %v, want bitset:1", runs)
	}
}

func TestCheckRequestBackendValidated(t *testing.T) {
	e := New()
	p, err := e.ResolveProtocol("tas-reg")
	if err != nil {
		t.Fatal(err)
	}
	inputs := []int{0, 1}
	if _, err := e.Check(p, CheckRequest{Inputs: inputs, Backend: "no-such-backend"}); err == nil {
		t.Fatal("Check with unknown backend succeeded")
	}
	if _, err := e.Theorem13(p, CheckRequest{Inputs: inputs, Backend: "no-such-backend"}); err == nil {
		t.Fatal("Theorem13 with unknown backend succeeded")
	}
	items, _, err := e.CheckBatch(p, []CheckRequest{
		{Inputs: inputs, Backend: "no-such-backend"},
		{Inputs: inputs, Backend: "bitset"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Err == nil {
		t.Fatal("batch item with unknown backend succeeded")
	}
	if items[1].Err != nil || !items[1].OK() {
		t.Fatalf("batch item with valid backend failed: %+v", items[1])
	}
	// A valid override on Check passes through.
	if _, err := e.Check(p, CheckRequest{Inputs: inputs, Backend: "bitset", Ctx: context.Background()}); err != nil {
		t.Fatal(err)
	}
}
