package engine

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/proto"
)

// batchObservable projects a model.Result onto its observable fields for
// byte-identity comparison between batch and serial runs.
type batchObservable struct {
	Nodes      int
	Truncated  bool
	Violations []string
}

func observe(r *model.Result) batchObservable {
	out := batchObservable{Nodes: r.Nodes, Truncated: r.Truncated}
	for _, v := range r.Violations {
		out.Violations = append(out.Violations, v.String())
	}
	return out
}

func TestCheckBatchMatchesSerial(t *testing.T) {
	p := proto.NewCASRecoverable(2)
	reqs := []CheckRequest{
		{Inputs: []int{0, 1}},
		{Inputs: []int{0, 1}, CrashQuota: []int{1, 1}},
		{Inputs: []int{0, 1}, CrashQuota: []int{2, 2}},
		{Inputs: []int{1, 1}, CrashQuota: []int{1, 1}},
		{Inputs: []int{0, 1}, CrashQuota: []int{1, 1}}, // duplicate of [1]
	}
	e := New(WithParallelism(4))
	items, gs, err := e.CheckBatch(p, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(reqs) {
		t.Fatalf("got %d items for %d requests", len(items), len(reqs))
	}
	serial := New(WithParallelism(1))
	for i, req := range reqs {
		if items[i].Err != nil {
			t.Fatalf("item %d: %v", i, items[i].Err)
		}
		want, err := serial.Check(p, req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(observe(items[i].Result), observe(want)) {
			t.Fatalf("item %d diverged from serial:\n got %+v\nwant %+v",
				i, observe(items[i].Result), observe(want))
		}
	}
	if gs.Expanded == 0 {
		t.Fatalf("no expansions recorded: %+v", gs)
	}
	if gs.Reused == 0 {
		t.Fatalf("batch with duplicate and nested-quota requests reused nothing: %+v", gs)
	}
}

// TestCheckBatchIdenticalPrefixExpandsOnce is the acceptance criterion:
// N identical requests expand the shared prefix exactly once.
func TestCheckBatchIdenticalPrefixExpandsOnce(t *testing.T) {
	p := proto.NewCASWaitFree(2)
	req := CheckRequest{Inputs: []int{0, 1}, CrashQuota: []int{1, 1}}
	const nreq = 8

	// One request alone: every expansion is fresh.
	_, one, err := New().CheckBatch(p, []CheckRequest{req})
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]CheckRequest, nreq)
	for i := range reqs {
		reqs[i] = req
	}
	items, gs, err := New(WithParallelism(4)).CheckBatch(p, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("item %d: %v", i, it.Err)
		}
	}
	if gs.Expanded != one.Expanded {
		t.Fatalf("%d identical requests expanded %d nodes, want the single-request %d",
			nreq, gs.Expanded, one.Expanded)
	}
	if want := (nreq - 1) * one.Expanded; gs.Reused < want {
		t.Fatalf("reuse %d below the (n-1) full walks %d", gs.Reused, want)
	}
}

func TestCheckBatchPerItemErrors(t *testing.T) {
	p := proto.NewCASWaitFree(2)
	reqs := []CheckRequest{
		{Inputs: []int{0, 1}},
		{Inputs: []int{0}},       // wrong length: per-item error
		{Inputs: []int{0, 1, 1}}, // wrong length: per-item error
		{Inputs: []int{1, 0}},    // fine
	}
	items, _, err := New().CheckBatch(p, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Err != nil || items[3].Err != nil {
		t.Fatalf("well-formed items failed: %v / %v", items[0].Err, items[3].Err)
	}
	for _, i := range []int{1, 2} {
		if items[i].Err == nil {
			t.Fatalf("malformed item %d did not error", i)
		}
		if !strings.Contains(items[i].Err.Error(), "inputs") {
			t.Fatalf("item %d error %q does not mention inputs", i, items[i].Err)
		}
	}
}

// TestCheckBatchPerRequestCancel cancels one request mid-batch; only that
// item may fail.
func TestCheckBatchPerRequestCancel(t *testing.T) {
	p := proto.NewCASRecoverable(2)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := []CheckRequest{
		{Inputs: []int{0, 1}, CrashQuota: []int{1, 1}},
		{Inputs: []int{0, 1}, CrashQuota: []int{1, 1}, Ctx: canceled},
		{Inputs: []int{0, 1}, CrashQuota: []int{2, 2}},
	}
	items, _, err := New(WithParallelism(2)).CheckBatch(p, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Err != nil || items[2].Err != nil {
		t.Fatalf("live items failed: %v / %v", items[0].Err, items[2].Err)
	}
	if items[1].Err == nil {
		t.Fatal("canceled item did not error")
	}
}

// TestCheckBatchEngineCancelMidBatch cancels the engine context while a
// batch runs: in-flight and unfed items error, the call itself returns
// the items (per-item errors), and nothing hangs.
func TestCheckBatchEngineCancelMidBatch(t *testing.T) {
	p := proto.NewCASRecoverable(2)
	ctx, cancel := context.WithCancel(context.Background())
	e := New(WithContext(ctx), WithParallelism(1))

	var once sync.Once
	gate := make(chan struct{})
	// Cancel as soon as the first item reports done, so later feeds stop.
	e.progress = func(ev Event) {
		if ev.Kind == "check.done" {
			once.Do(func() { cancel(); close(gate) })
		}
	}
	reqs := make([]CheckRequest, 16)
	for i := range reqs {
		reqs[i] = CheckRequest{Inputs: []int{0, 1}, CrashQuota: []int{2, 2}}
	}
	done := make(chan struct{})
	var items []CheckItem
	var err error
	go func() {
		items, _, err = e.CheckBatch(p, reqs)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("CheckBatch hung after engine cancellation")
	}
	if err != nil {
		t.Fatal(err)
	}
	<-gate
	var failed int
	for _, it := range items {
		if it.Err != nil {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("engine cancellation mid-batch failed no items")
	}
}

func TestResolveProtocol(t *testing.T) {
	e := New()
	for _, desc := range []string{"tnn-wf:3,2", "tnn-rec:3,2,2", "cas-wf:2", "cas-rec", "tas-reg"} {
		p, err := e.ResolveProtocol(desc)
		if err != nil {
			t.Fatalf("%s: %v", desc, err)
		}
		if p.Procs() < 1 {
			t.Fatalf("%s: bad protocol", desc)
		}
	}
	if _, err := e.ResolveProtocol("nope"); err == nil || !strings.Contains(err.Error(), "valid names") {
		t.Fatalf("unknown protocol error should list valid names, got %v", err)
	}
	if _, err := e.ResolveProtocol("tnn-wf:2,2"); err == nil {
		t.Fatal("tnn-wf with n == n' should error")
	}
}
