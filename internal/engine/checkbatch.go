package engine

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/model"
	"repro/internal/pool"
	"repro/internal/registry"
)

// CheckItem is one CheckBatch outcome: the model-checking result, or the
// per-request error that prevented it. Exactly one field is set.
type CheckItem struct {
	Result *model.Result
	Err    error
}

// OK reports whether the item completed and found no violations.
func (it CheckItem) OK() bool { return it.Err == nil && it.Result != nil && it.Result.OK() }

// inputsKey canonicalizes an input vector as a graph-group key.
func inputsKey(inputs []int) string {
	var b strings.Builder
	for _, in := range inputs {
		b.WriteString(strconv.Itoa(in))
		b.WriteByte(',')
	}
	return b.String()
}

// requestCtx resolves the context one request runs under: the engine
// context alone, or — when the request carries its own — a context that
// is done as soon as either is. The returned stop func must be called
// (deferred) to release the linkage.
func (e *Engine) requestCtx(reqCtx context.Context) (context.Context, func()) {
	if reqCtx == nil {
		return e.ctx, func() {}
	}
	ctx, cancel := context.WithCancelCause(reqCtx)
	stop := context.AfterFunc(e.ctx, func() { cancel(context.Cause(e.ctx)) })
	return ctx, func() { stop(); cancel(nil) }
}

// CheckBatch model-checks many requests against one protocol over shared
// exploration graphs: requests with the same input vector walk one
// canonical, singleflight-expanded state graph (see model.Graph), so
// common schedule prefixes and valency subtrees are expanded once and
// shared, while per-request crash quotas, node budgets and liveness
// settings are resolved as overlays during each walk. Requests run
// concurrently on the engine's worker pool. The graphs come from the
// engine's graph cache, so a later batch (or Check, or Theorem13) of the
// same protocol and inputs walks them warm and expands nothing.
//
// Results are positionally aligned with reqs and byte-identical to
// serial Engine.Check calls of the same requests. Errors are
// per-item — a malformed request (wrong inputs length) or a canceled
// per-request context (CheckRequest.Ctx) fails only its own item. The
// returned GraphStats aggregates reuse attributed to this batch: the
// counter deltas of its graphs over the call (a fully warm batch reports
// Expanded == 0; concurrent calls sharing a cached graph may blur the
// attribution, never the results). CheckBatch itself errors only when
// the engine context is done or the protocol fails validation.
func (e *Engine) CheckBatch(p model.Protocol, reqs []CheckRequest) ([]CheckItem, model.GraphStats, error) {
	var agg model.GraphStats
	if err := e.ctx.Err(); err != nil {
		return nil, agg, err
	}
	if err := model.Validate(p); err != nil {
		return nil, agg, err
	}
	start := time.Now()
	e.emit(Event{Kind: "checkbatch.start", Type: p.Name(), N: len(reqs)})
	items := make([]CheckItem, len(reqs))

	// Group requests by input vector; each group shares one graph (served
	// from the engine's graph cache when enabled). Graph resolution
	// errors (wrong inputs length) are per-item.
	graphs := make(map[string]*model.Graph)
	before := make(map[*model.Graph]model.GraphStats)
	graphFor := make([]*model.Graph, len(reqs))
	for i, req := range reqs {
		if err := e.checkBackend(req); err != nil {
			items[i].Err = err
			continue
		}
		k := inputsKey(req.Inputs)
		g, ok := graphs[k]
		if !ok {
			var err error
			g, err = e.graphFor(p, req.Inputs)
			if err != nil {
				items[i].Err = err
				continue
			}
			graphs[k] = g
			if _, seen := before[g]; !seen {
				before[g] = g.Stats()
			}
		}
		graphFor[i] = g
	}

	fed, _ := pool.Run(e.ctx, len(reqs), e.parallelism, func(i int) error {
		g := graphFor[i]
		if g == nil {
			return nil // malformed item, already recorded
		}
		req := reqs[i]
		ctx, stop := e.requestCtx(req.Ctx)
		defer stop()
		itemBefore := g.Stats()
		itemStart := time.Now()
		res, err := g.Check(model.CheckOpts{
			Ctx:          ctx,
			Inputs:       req.Inputs,
			CrashQuota:   req.CrashQuota,
			MaxNodes:     e.maxNodes(req),
			SkipLiveness: req.SkipLiveness,
		})
		if err != nil {
			items[i].Err = err
			return nil // per-item failure must not starve the batch
		}
		// Cold/warm attribution can blur when concurrent items share one
		// graph (see Metrics); durations stay exact.
		e.metrics.observeWalk(g.Stats().Sub(itemBefore).Expanded > 0, time.Since(itemStart))
		items[i].Result = res
		e.emit(Event{Kind: "check.done", Type: p.Name(), N: i, OK: res.OK(),
			Elapsed: time.Since(itemStart), Detail: fmt.Sprintf("%d nodes", res.Nodes)})
		return nil
	})
	// Items the feed never reached (engine context fired) carry the
	// cancellation as their per-item error.
	for i := fed; i < len(reqs); i++ {
		if items[i].Err == nil && items[i].Result == nil {
			if err := e.ctx.Err(); err != nil {
				items[i].Err = err
			} else {
				items[i].Err = fmt.Errorf("engine: batch feed stopped early")
			}
		}
	}

	ok := true
	for _, it := range items {
		if !it.OK() {
			ok = false
			break
		}
	}
	for g, prev := range before {
		agg.Add(g.Stats().Sub(prev))
		e.graphs.Sync(g)
	}
	e.emit(Event{Kind: "checkbatch.done", Type: p.Name(), N: len(reqs), OK: ok,
		Elapsed: time.Since(start),
		Detail: fmt.Sprintf("%d requests over %d graphs: %d expanded, %d reused (%.0f%% shared)",
			len(reqs), len(graphs), agg.Expanded, agg.Reused, 100*agg.HitRate())})
	return items, agg, nil
}

// ResolveProtocol parses a protocol registry descriptor such as
// "tnn-wf:3,2" or "cas-rec:3" into a model-checkable protocol. Unknown
// names error with the list of valid descriptors.
func (e *Engine) ResolveProtocol(desc string) (model.Protocol, error) {
	return registry.ParseProtocol(desc)
}
