package engine

import (
	"time"

	"repro/internal/obs"
)

// Metrics collects the engine-side latency histograms the observability
// layer exposes: where graph time goes, split by phase. All fields are
// optional — a nil *Metrics (the default) and nil fields disable
// collection with a single branch on the hot path, no allocation.
//
// Walk classification is by counter delta over the walk: a walk whose
// graph grew (Expanded > 0) is a cold expansion, one that grew nothing
// is a warm walk. Concurrent walks sharing one cached graph can blur
// the attribution (one walk's expansion lands in a neighbor's delta),
// which skews the split between the two histograms, never the
// durations themselves.
type Metrics struct {
	// GraphResolve observes how long resolving the exploration graph
	// took: a cache hit, a store-backed warm load, or building the
	// graph shell.
	GraphResolve *obs.Histogram
	// GraphExpand observes walks that expanded new state-space nodes.
	GraphExpand *obs.Histogram
	// GraphWalk observes walks over fully warm graphs (no expansion).
	GraphWalk *obs.Histogram
}

// NewMetrics returns a Metrics with every histogram allocated.
func NewMetrics() *Metrics {
	return &Metrics{
		GraphResolve: &obs.Histogram{},
		GraphExpand:  &obs.Histogram{},
		GraphWalk:    &obs.Histogram{},
	}
}

func (m *Metrics) observeResolve(d time.Duration) {
	if m == nil || m.GraphResolve == nil {
		return
	}
	m.GraphResolve.Observe(d)
}

func (m *Metrics) observeWalk(expanded bool, d time.Duration) {
	if m == nil {
		return
	}
	h := m.GraphWalk
	if expanded {
		h = m.GraphExpand
	}
	if h != nil {
		h.Observe(d)
	}
}

// WithMetrics installs a shared metrics collector. The reprod service
// passes one collector to every per-request engine so the process-wide
// /metrics histograms aggregate across requests. A nil collector (the
// default) disables collection.
func WithMetrics(m *Metrics) Option {
	return func(e *Engine) { e.metrics = m }
}

// Metrics returns the engine's metrics collector (nil when disabled).
func (e *Engine) Metrics() *Metrics { return e.metrics }
