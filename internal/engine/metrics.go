package engine

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Metrics collects the engine-side latency histograms the observability
// layer exposes: where graph time goes, split by phase. All fields are
// optional — a nil *Metrics (the default) and nil fields disable
// collection with a single branch on the hot path, no allocation.
//
// Walk classification is by counter delta over the walk: a walk whose
// graph grew (Expanded > 0) is a cold expansion, one that grew nothing
// is a warm walk. Concurrent walks sharing one cached graph can blur
// the attribution (one walk's expansion lands in a neighbor's delta),
// which skews the split between the two histograms, never the
// durations themselves.
type Metrics struct {
	// GraphResolve observes how long resolving the exploration graph
	// took: a cache hit, a store-backed warm load, or building the
	// graph shell.
	GraphResolve *obs.Histogram
	// GraphExpand observes walks that expanded new state-space nodes.
	GraphExpand *obs.Histogram
	// GraphWalk observes walks over fully warm graphs (no expansion).
	GraphWalk *obs.Histogram

	// deciderRuns counts level decisions actually computed (memo-cache
	// misses), labeled by the deciding backend's name. Lazily allocated
	// under decMu so the zero Metrics and NewMetrics both work.
	decMu       sync.Mutex
	deciderRuns map[string]uint64
}

// NewMetrics returns a Metrics with every histogram allocated.
func NewMetrics() *Metrics {
	return &Metrics{
		GraphResolve: &obs.Histogram{},
		GraphExpand:  &obs.Histogram{},
		GraphWalk:    &obs.Histogram{},
	}
}

func (m *Metrics) observeResolve(d time.Duration) {
	if m == nil || m.GraphResolve == nil {
		return
	}
	m.GraphResolve.Observe(d)
}

func (m *Metrics) observeWalk(expanded bool, d time.Duration) {
	if m == nil {
		return
	}
	h := m.GraphWalk
	if expanded {
		h = m.GraphExpand
	}
	if h != nil {
		h.Observe(d)
	}
}

func (m *Metrics) observeDecide(backend string) {
	if m == nil {
		return
	}
	m.decMu.Lock()
	if m.deciderRuns == nil {
		m.deciderRuns = make(map[string]uint64)
	}
	m.deciderRuns[backend]++
	m.decMu.Unlock()
}

// DeciderRuns snapshots the per-backend count of level decisions
// computed (cache hits are not counted — they ran no backend). The
// returned map is a copy; nil receivers return nil.
func (m *Metrics) DeciderRuns() map[string]uint64 {
	if m == nil {
		return nil
	}
	m.decMu.Lock()
	defer m.decMu.Unlock()
	if len(m.deciderRuns) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(m.deciderRuns))
	for k, v := range m.deciderRuns {
		out[k] = v
	}
	return out
}

// WithMetrics installs a shared metrics collector. The reprod service
// passes one collector to every per-request engine so the process-wide
// /metrics histograms aggregate across requests. A nil collector (the
// default) disables collection.
func WithMetrics(m *Metrics) Option {
	return func(e *Engine) { e.metrics = m }
}

// Metrics returns the engine's metrics collector (nil when disabled).
func (e *Engine) Metrics() *Metrics { return e.metrics }
