package engine

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/proto"
	"repro/internal/spec"
	"repro/internal/types"
)

// zoo is the analysis corpus shared by the equivalence tests: readable
// and non-readable, bounded and unbounded, small and multi-level types.
func zoo() []*spec.FiniteType {
	return []*spec.FiniteType{
		types.Register(2),
		types.TestAndSet(),
		types.Swap(2),
		types.FetchAdd(3),
		types.CompareAndSwap(2),
		types.StickyBit(),
		types.Queue(2),
		types.PeekQueue(2),
		types.Stack(2),
		types.Counter(3),
		types.MaxRegister(3),
		types.Tnn(4, 2),
		types.TnnReadable(4),
		types.XFour(),
		types.Product(types.TestAndSet(), types.Register(2)),
		types.Trivial(),
	}
}

// sameAnalysis compares every externally observable field of two
// analyses of the same type.
func sameAnalysis(t *testing.T, name string, got, want *core.Analysis) {
	t.Helper()
	if got.ConsensusNumber != want.ConsensusNumber {
		t.Errorf("%s: cons=%d, want %d", name, got.ConsensusNumber, want.ConsensusNumber)
	}
	if got.RecoverableConsensusNumber != want.RecoverableConsensusNumber {
		t.Errorf("%s: rcons=%d, want %d", name, got.RecoverableConsensusNumber, want.RecoverableConsensusNumber)
	}
	if got.Readable != want.Readable || got.MaxN != want.MaxN {
		t.Errorf("%s: readable/maxN mismatch", name)
	}
	for n := 2; n <= want.MaxN; n++ {
		if got.Discerning[n] != want.Discerning[n] {
			t.Errorf("%s: discerning[%d]=%v, want %v", name, n, got.Discerning[n], want.Discerning[n])
		}
		if got.Recording[n] != want.Recording[n] {
			t.Errorf("%s: recording[%d]=%v, want %v", name, n, got.Recording[n], want.Recording[n])
		}
		if (got.DiscerningWitness[n] != nil) != want.Discerning[n] {
			t.Errorf("%s: discerning witness presence at n=%d wrong", name, n)
		}
		if (got.RecordingWitness[n] != nil) != want.Recording[n] {
			t.Errorf("%s: recording witness presence at n=%d wrong", name, n)
		}
	}
}

// TestParallelMatchesSerial is the acceptance gate: a parallel engine
// produces the same Analysis as the serial core facade on the full zoo.
func TestParallelMatchesSerial(t *testing.T) {
	const maxN = 4
	eng := New(WithParallelism(runtime.NumCPU()), WithMaxN(maxN))
	for _, ft := range zoo() {
		want, err := core.Analyze(ft, maxN)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Analyze(ft)
		if err != nil {
			t.Fatal(err)
		}
		sameAnalysis(t, ft.Name(), got, want)
	}
}

// TestAnalyzeAllMatchesSerial checks the flattened many-type pool run.
func TestAnalyzeAllMatchesSerial(t *testing.T) {
	const maxN = 3
	ts := zoo()
	eng := New(WithParallelism(4), WithMaxN(maxN))
	got, err := eng.AnalyzeAll(ts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ts) {
		t.Fatalf("got %d analyses for %d types", len(got), len(ts))
	}
	for i, ft := range ts {
		want, err := core.Analyze(ft, maxN)
		if err != nil {
			t.Fatal(err)
		}
		sameAnalysis(t, ft.Name(), got[i], want)
	}
}

// TestOptions is the table-driven options check.
func TestOptions(t *testing.T) {
	cache := NewCache()
	ctx := context.Background()
	for _, tc := range []struct {
		name  string
		opts  []Option
		check func(t *testing.T, e *Engine)
	}{
		{"defaults", nil, func(t *testing.T, e *Engine) {
			if e.parallelism != runtime.NumCPU() {
				t.Errorf("parallelism=%d, want NumCPU", e.parallelism)
			}
			if e.maxN != 5 || e.cache == nil || e.ctx != context.Background() {
				t.Error("unexpected defaults")
			}
		}},
		{"parallelism-clamped", []Option{WithParallelism(-3)}, func(t *testing.T, e *Engine) {
			if e.parallelism != 1 {
				t.Errorf("parallelism=%d, want 1", e.parallelism)
			}
		}},
		{"explicit", []Option{WithContext(ctx), WithParallelism(7), WithMaxN(3),
			WithBudget(1234), WithCache(cache)}, func(t *testing.T, e *Engine) {
			if e.parallelism != 7 || e.maxN != 3 || e.budget != 1234 || e.cache != cache {
				t.Error("options not applied")
			}
		}},
		{"nil-cache-replaced", []Option{WithCache(nil)}, func(t *testing.T, e *Engine) {
			if e.cache == nil {
				t.Error("nil cache not replaced")
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) { tc.check(t, New(tc.opts...)) })
	}
}

// TestBadMaxN checks that an out-of-range limit errors at analyze time.
func TestBadMaxN(t *testing.T) {
	eng := New(WithMaxN(1))
	if _, err := eng.Analyze(types.TestAndSet()); err == nil {
		t.Error("Analyze with maxN=1 should fail")
	}
	if _, err := eng.AnalyzeAll(zoo()); err == nil {
		t.Error("AnalyzeAll with maxN=1 should fail")
	}
	if _, err := eng.AnalyzeTo(types.TestAndSet(), 0); err == nil {
		t.Error("AnalyzeTo with maxN=0 should fail")
	}
}

// TestCancellation covers the cancellation paths: pre-canceled contexts
// fail fast everywhere, and a deadline interrupts a long level search.
func TestCancellation(t *testing.T) {
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	eng := New(WithContext(canceled))
	if _, err := eng.Analyze(types.TestAndSet()); !errors.Is(err, context.Canceled) {
		t.Errorf("Analyze on canceled ctx: err=%v, want Canceled", err)
	}
	if _, err := eng.AnalyzeAll(zoo()); !errors.Is(err, context.Canceled) {
		t.Errorf("AnalyzeAll on canceled ctx: err=%v, want Canceled", err)
	}
	if _, err := eng.Check(proto.NewCASRecoverable(2),
		CheckRequest{Inputs: []int{0, 1}}); !errors.Is(err, context.Canceled) {
		t.Errorf("Check on canceled ctx: err=%v, want Canceled", err)
	}
	if _, err := eng.Theorem13(proto.NewCASRecoverable(2),
		CheckRequest{Inputs: []int{0, 1}}); !errors.Is(err, context.Canceled) {
		t.Errorf("Theorem13 on canceled ctx: err=%v, want Canceled", err)
	}

	// A deadline mid-search: XFive at n=7 is far beyond the deadline, so
	// the decider's per-assignment poll must surface DeadlineExceeded.
	ctx, cancel2 := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel2()
	deadlined := New(WithContext(ctx), WithMaxN(7), WithParallelism(2))
	start := time.Now()
	_, err := deadlined.Analyze(types.XFive())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline analysis: err=%v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %s, want well under the full search time", elapsed)
	}
}

// TestCacheHits checks that a second Analyze of the same type is served
// from the cache, including across distinct (but structurally equal)
// type instances and across engines sharing a cache.
func TestCacheHits(t *testing.T) {
	cache := NewCache()
	eng := New(WithMaxN(3), WithCache(cache))
	if _, err := eng.Analyze(types.TestAndSet()); err != nil {
		t.Fatal(err)
	}
	hits0, misses0, entries0 := cache.Stats()
	if hits0 != 0 || misses0 != 4 || entries0 != 4 {
		t.Fatalf("first analysis: hits=%d misses=%d entries=%d, want 0/4/4", hits0, misses0, entries0)
	}
	// A fresh instance of the same structural type must hit every level.
	if _, err := eng.Analyze(types.TestAndSet()); err != nil {
		t.Fatal(err)
	}
	hits1, misses1, _ := cache.Stats()
	if hits1 != 4 || misses1 != misses0 {
		t.Errorf("second analysis: hits=%d misses=%d, want 4 hits and no new misses", hits1, misses1)
	}
	// A second engine sharing the cache also hits.
	other := New(WithMaxN(3), WithCache(cache))
	if _, err := other.Analyze(types.TestAndSet()); err != nil {
		t.Fatal(err)
	}
	hits2, _, _ := cache.Stats()
	if hits2 != 8 {
		t.Errorf("shared-cache engine: hits=%d, want 8", hits2)
	}
	// Cached results carry the same witnesses semantics.
	a, err := other.Analyze(types.TestAndSet())
	if err != nil {
		t.Fatal(err)
	}
	if a.ConsensusNumber != 2 || a.RecoverableConsensusNumber != 1 {
		t.Errorf("cached TAS analysis: cons=%d rcons=%d, want 2/1",
			a.ConsensusNumber, a.RecoverableConsensusNumber)
	}
	cache.Purge()
	if _, _, entries := cache.Stats(); entries != 0 {
		t.Error("purge left entries behind")
	}
}

// TestCacheSingleflight checks that concurrent requests for one key
// share a single computation instead of racing to redo it.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache()
	k := propKey{fp: 42, prop: Discerning, n: 3}
	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	compute := func() (propResult, error) {
		if computes.Add(1) == 1 {
			close(started)
		}
		<-release
		return propResult{ok: true}, nil
	}
	const callers = 8
	var wg sync.WaitGroup
	results := make([]bool, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, _, err := c.do(context.Background(), k, compute)
			if err != nil {
				t.Error(err)
			}
			results[g] = res.ok
		}(g)
	}
	<-started // one computer is in flight; the rest must wait, not compute
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times for one key, want 1", n)
	}
	for g, ok := range results {
		if !ok {
			t.Errorf("caller %d got wrong result", g)
		}
	}
	// A waiter's own deadline bounds its wait on someone else's
	// computation: it must not hang until the computer finishes.
	kw := propKey{fp: 44, prop: Discerning, n: 5}
	slowStarted := make(chan struct{})
	slowRelease := make(chan struct{})
	computing := make(chan struct{})
	go func() {
		defer close(computing)
		c.do(context.Background(), kw, func() (propResult, error) {
			close(slowStarted)
			<-slowRelease
			return propResult{ok: true}, nil
		})
	}()
	<-slowStarted
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	_, _, werr := c.do(wctx, kw, func() (propResult, error) {
		t.Error("waiter must not compute while another call is in flight")
		return propResult{}, nil
	})
	wcancel()
	if !errors.Is(werr, context.DeadlineExceeded) {
		t.Errorf("deadlined waiter: err=%v, want DeadlineExceeded", werr)
	}
	close(slowRelease)
	<-computing

	// A failed compute is not memoized; the next caller retries.
	ke := propKey{fp: 43, prop: Recording, n: 2}
	if _, _, err := c.do(context.Background(), ke, func() (propResult, error) {
		return propResult{}, context.Canceled
	}); !errors.Is(err, context.Canceled) {
		t.Errorf("compute error not propagated: %v", err)
	}
	res, cached, err := c.do(context.Background(), ke, func() (propResult, error) {
		return propResult{ok: true}, nil
	})
	if err != nil || cached || !res.ok {
		t.Errorf("retry after failed compute: res=%+v cached=%v err=%v", res, cached, err)
	}
}

// TestWitnessIsolation checks that mutating a returned witness cannot
// corrupt the cache: later analyses of the same type must see the
// original witness, not the caller's edits.
func TestWitnessIsolation(t *testing.T) {
	eng := New(WithMaxN(3))
	a1, err := eng.Analyze(types.TestAndSet())
	if err != nil {
		t.Fatal(err)
	}
	w1 := a1.DiscerningWitness[2]
	if w1 == nil {
		t.Fatal("TAS should have a 2-discerning witness")
	}
	saved := append([]int(nil), w1.Teams...)
	for i := range w1.Teams {
		w1.Teams[i] = 99 // caller vandalizes the returned slice
	}
	w1.Ops[0] = 77
	a2, err := eng.Analyze(types.TestAndSet()) // cache hit
	if err != nil {
		t.Fatal(err)
	}
	w2 := a2.DiscerningWitness[2]
	if w2 == w1 {
		t.Fatal("cache served the caller's witness pointer")
	}
	for i, v := range saved {
		if w2.Teams[i] != v {
			t.Fatalf("cached witness corrupted by caller mutation: teams=%v, want %v", w2.Teams, saved)
		}
	}
}

// TestProgressEvents checks emission order, kinds and the Cached flag.
func TestProgressEvents(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	eng := New(WithMaxN(3), WithParallelism(4), WithProgress(func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}))
	if _, err := eng.Analyze(types.TestAndSet()); err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 { // start + 4 levels + done
		t.Fatalf("got %d events, want 6: %+v", len(events), events)
	}
	if events[0].Kind != "analyze.start" || events[len(events)-1].Kind != "analyze.done" {
		t.Errorf("bad event bracketing: first=%s last=%s", events[0].Kind, events[len(events)-1].Kind)
	}
	levels := 0
	for _, ev := range events[1 : len(events)-1] {
		if ev.Kind != "level.done" || ev.Cached {
			t.Errorf("unexpected mid event %+v", ev)
		}
		levels++
	}
	if levels != 4 {
		t.Errorf("got %d level events, want 4", levels)
	}
	events = nil
	if _, err := eng.Analyze(types.TestAndSet()); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.Kind == "level.done" && !ev.Cached {
			t.Errorf("second analysis level event not cached: %+v", ev)
		}
	}
}

// TestCheckAndTheorem13 drives the model checker through the engine.
func TestCheckAndTheorem13(t *testing.T) {
	eng := New()
	pr := proto.NewCASRecoverable(2)
	res, err := eng.Check(pr, CheckRequest{Inputs: []int{0, 1}, CrashQuota: []int{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("CAS recoverable should check clean: %v", res.Violations)
	}
	chain, err := eng.Theorem13(pr, CheckRequest{Inputs: []int{0, 1}, CrashQuota: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !chain.Recording {
		t.Error("chain should reach an n-recording configuration")
	}
}

// TestBudgetTruncates checks WithBudget maps onto exploration truncation.
func TestBudgetTruncates(t *testing.T) {
	eng := New(WithBudget(3))
	res, err := eng.Check(proto.NewCASRecoverable(3), CheckRequest{Inputs: []int{0, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("a 3-node budget must truncate the exploration")
	}
	// A per-request override beats the engine budget.
	res, err = eng.Check(proto.NewCASRecoverable(2),
		CheckRequest{Inputs: []int{0, 1}, MaxNodes: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Error("request-level MaxNodes override ignored")
	}
}

// TestResolve checks descriptor parsing and the unknown-name error.
func TestResolve(t *testing.T) {
	eng := New()
	ft, err := eng.Resolve("tnn:5,2")
	if err != nil {
		t.Fatal(err)
	}
	if !ft.Equal(types.Tnn(5, 2)) {
		t.Error("resolved tnn:5,2 differs from types.Tnn(5,2)")
	}
	_, err = eng.Resolve("nosuchtype")
	if err == nil {
		t.Fatal("unknown descriptor should fail")
	}
	for _, name := range []string{"tas", "tnn", "x4", "product"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-descriptor error should list %q: %v", name, err)
		}
	}
}

// TestConcurrentEngineUse hammers one engine from several goroutines —
// meaningful under -race.
func TestConcurrentEngineUse(t *testing.T) {
	eng := New(WithMaxN(3), WithParallelism(4), WithProgress(func(Event) {}))
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ft := zoo()[g%len(zoo())]
			if _, err := eng.Analyze(ft); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestFingerprint pins the cache-key contract: structural equality means
// equal fingerprints, structural difference means (almost surely)
// different ones.
func TestFingerprint(t *testing.T) {
	if types.TestAndSet().Fingerprint() != types.TestAndSet().Fingerprint() {
		t.Error("equal types must share a fingerprint")
	}
	if types.TestAndSet().Fingerprint() == types.StickyBit().Fingerprint() {
		t.Error("distinct types should not collide")
	}
	if types.Tnn(5, 2).Fingerprint() == types.Tnn(5, 3).Fingerprint() {
		t.Error("distinct parameters should not collide")
	}
}

// TestEngineCheckMatchesModel pins engine.Check to model.Check results.
func TestEngineCheckMatchesModel(t *testing.T) {
	pr := proto.NewTnnWaitFree(3, 2, 4)
	inputs := []int{1, 1, 1, 1}
	want, err := model.Check(pr, model.CheckOpts{Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	got, err := New().Check(pr, CheckRequest{Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	if got.Nodes != want.Nodes || len(got.Violations) != len(want.Violations) {
		t.Errorf("engine check: nodes=%d violations=%d, want %d/%d",
			got.Nodes, len(got.Violations), want.Nodes, len(want.Violations))
	}
}
