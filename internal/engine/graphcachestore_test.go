package engine

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/graphstore"
	"repro/internal/model"
	"repro/internal/proto"
)

// TestGraphCacheWarmRestart is the persistence acceptance criterion at
// the engine layer: a second process (fresh cache, fresh store over the
// same directory) serves a previously-checked protocol with zero new
// node expansions and byte-identical results.
func TestGraphCacheWarmRestart(t *testing.T) {
	dir := t.TempDir()
	p := proto.NewCASRecoverable(2)
	reqs := []CheckRequest{
		{Inputs: []int{0, 1}},
		{Inputs: []int{0, 1}, CrashQuota: []int{1, 1}},
	}

	// First life: expand, then flush on "shutdown".
	s1, err := graphstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewGraphCache(0)
	c1.SetStore(s1)
	e1 := New(WithGraphCache(c1))
	var want []batchObservable
	for _, req := range reqs {
		r, err := e1.Check(p, req)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, observe(r))
	}
	if err := c1.Flush(); err != nil {
		t.Fatal(err)
	}
	st1 := c1.Stats()
	if st1.Store == nil || st1.Store.Spills == 0 || st1.Store.SpilledNodes == 0 {
		t.Fatalf("first life spilled nothing: %+v", st1.Store)
	}

	// Second life: the same directory through fresh everything.
	s2, err := graphstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewGraphCache(0)
	c2.SetStore(s2)
	e2 := New(WithGraphCache(c2))
	g, err := c2.Get(p, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	before := g.Stats()
	if before.Expanded == 0 {
		t.Fatal("warm load imported no expansions")
	}
	for i, req := range reqs {
		r, err := e2.Check(p, req)
		if err != nil {
			t.Fatal(err)
		}
		if got := observe(r); !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("restarted check %d diverged:\n got %+v\nwant %+v", i, got, want[i])
		}
	}
	if after := g.Stats(); after.Expanded != before.Expanded {
		t.Fatalf("restarted checks expanded %d new nodes, want 0", after.Expanded-before.Expanded)
	}
	st2 := c2.Stats()
	if st2.Store == nil || st2.Store.Loads != 1 || st2.Store.LoadedNodes == 0 {
		t.Fatalf("second life did not warm-load: %+v", st2.Store)
	}
}

// TestGraphCacheSyncSpillsAsync: Sync alone (no Flush) persists a dirty
// graph, and a clean graph re-Synced spills nothing new.
func TestGraphCacheSyncSpillsAsync(t *testing.T) {
	dir := t.TempDir()
	s, err := graphstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewGraphCache(0)
	c.SetStore(s)
	e := New(WithGraphCache(c))
	p := proto.NewCASWaitFree(2)
	if _, err := e.Check(p, CheckRequest{Inputs: []int{0, 1}}); err != nil {
		t.Fatal(err)
	}
	// The spill is asynchronous; wait for its counters.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := c.Stats(); st.Store != nil && st.Store.Spills > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("async spill never landed: %+v", c.Stats().Store)
		}
		time.Sleep(time.Millisecond)
	}
	spilled := c.Stats().Store.SpilledNodes
	// Warm repeat: nothing new to spill.
	if _, err := e.Check(p, CheckRequest{Inputs: []int{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Store.SpilledNodes != spilled {
		t.Fatalf("clean graph spilled %d more nodes", st.Store.SpilledNodes-spilled)
	}
}

// TestGraphCacheEvictionSpills: evicting a dirty graph persists it, so
// the next Get of that key warm-loads instead of re-expanding.
func TestGraphCacheEvictionSpills(t *testing.T) {
	dir := t.TempDir()
	s, err := graphstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewGraphCache(1) // one-node budget: every new graph evicts the last
	c.SetStore(s)
	e := New(WithGraphCache(c))
	pA := proto.NewCASWaitFree(2)
	pB := proto.NewTASConsensus()
	if _, err := e.Check(pA, CheckRequest{Inputs: []int{0, 1}}); err != nil {
		t.Fatal(err)
	}
	// Checking B evicts A (budget 1); the eviction must spill A.
	if _, err := e.Check(pB, CheckRequest{Inputs: []int{0, 1}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	var gotA bool
	for !gotA {
		st := c.Stats()
		gotA = st.Store != nil && st.Store.SpilledNodes > 0
		if time.Now().After(deadline) {
			t.Fatalf("evicted graph never spilled: %+v", st.Store)
		}
		if !gotA {
			time.Sleep(time.Millisecond)
		}
	}
	// Drain in-flight spills (A's eviction spill and B's sync spill can
	// interleave); then a fresh Get of A must warm-load.
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	waitForSpilled(t, c, pA)
	g, err := c.Get(pA, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats().Expanded == 0 {
		t.Fatalf("re-Get of the evicted graph expanded cold: %+v", g.Stats())
	}
}

// waitForSpilled waits until the store can serve p's graph, bounding
// the async eviction spill the test depends on.
func waitForSpilled(t *testing.T, c *GraphCache, p model.Protocol) {
	t.Helper()
	fp, err := model.Fingerprint(p)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		store := c.store
		c.mu.Unlock()
		snap, err := store.Load(fp, []int{0, 1})
		if err == nil && snap != nil && snap.NumExpanded() > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("store never received the evicted graph")
		}
		time.Sleep(time.Millisecond)
	}
}
