package engine

import (
	"context"
	"sync"

	"repro/internal/discern"
	"repro/internal/record"
)

// propKey identifies one memoized sub-decision: one property of one type
// at one process count. Types are identified by structural fingerprint, so
// two independently constructed but identical types share entries.
type propKey struct {
	fp   uint64
	prop Property
	n    int
}

// propResult is a memoized decision. At most one of the witness fields is
// set, matching the property. Witnesses are immutable once computed, so
// sharing the pointers across goroutines and engines is safe.
type propResult struct {
	ok bool
	dw *discern.Witness
	rw *record.Witness
}

// call tracks one in-flight computation for singleflight deduplication.
type call struct {
	done chan struct{}
	res  propResult
	err  error
}

// Cache memoizes decider results across Analyze calls and across engines,
// with singleflight semantics: concurrent requests for the same key share
// one computation instead of racing to redo the exponential search. It is
// safe for concurrent use. A single Cache may back any number of engines
// (see WithCache); the zero value is not usable — construct with NewCache.
type Cache struct {
	mu           sync.Mutex
	m            map[propKey]propResult
	inflight     map[propKey]*call
	sink         func(Entry)
	hits, misses uint64
}

// NewCache returns an empty decision cache.
func NewCache() *Cache {
	return &Cache{
		m:        make(map[propKey]propResult),
		inflight: make(map[propKey]*call),
	}
}

// do returns the memoized result for k, waiting on an in-flight
// computation of the same key if one exists, or running compute and
// memoizing its result otherwise. cached reports whether the result was
// served without running compute in this call. Waiting is bounded by the
// caller's own ctx — a deadlined engine does not hang on another
// engine's longer-lived computation. A failed compute (e.g. cancellation
// of the computing engine's context) is not memoized; waiters whose own
// context is still live retry, possibly becoming the computer themselves.
func (c *Cache) do(ctx context.Context, k propKey, compute func() (propResult, error)) (res propResult, cached bool, err error) {
	for {
		c.mu.Lock()
		if r, ok := c.m[k]; ok {
			c.hits++
			c.mu.Unlock()
			return r, true, nil
		}
		if cl, ok := c.inflight[k]; ok {
			c.hits++
			c.mu.Unlock()
			select {
			case <-cl.done:
			case <-ctx.Done():
				return propResult{}, false, ctx.Err()
			}
			if cl.err != nil {
				// The computer was canceled; try again under our own
				// context (compute itself polls it).
				continue
			}
			return cl.res, true, nil
		}
		c.misses++
		cl := &call{done: make(chan struct{})}
		c.inflight[k] = cl
		c.mu.Unlock()

		cl.res, cl.err = compute()
		c.mu.Lock()
		delete(c.inflight, k)
		var sink func(Entry)
		if cl.err == nil {
			c.m[k] = cl.res
			sink = c.sink
		}
		c.mu.Unlock()
		close(cl.done)
		if sink != nil {
			sink(entryOf(k, cl.res))
		}
		return cl.res, false, cl.err
	}
}

// Stats reports the cumulative hit/miss counts and the number of distinct
// memoized decisions.
func (c *Cache) Stats() (hits, misses uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.m)
}

// Purge empties the cache, keeping the statistics.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[propKey]propResult)
}

// Entry is the exported form of one memoized decision, the unit of the
// cache's snapshot/restore API (Range, Insert, SetSink): the key and
// value types themselves stay unexported. At most one witness pointer is
// set, matching Prop, and only when OK. Witnesses are shared, not
// cloned — they are immutable by the cache's contract.
type Entry struct {
	// FP is the type's structural fingerprint
	// (spec.FiniteType.Fingerprint), stable across processes.
	FP uint64
	// Prop and N identify the level check.
	Prop Property
	N    int
	// OK is the decision.
	OK bool
	// DiscernWitness certifies a positive discerning decision.
	DiscernWitness *discern.Witness
	// RecordWitness certifies a positive recording decision.
	RecordWitness *record.Witness
}

// entryOf converts an internal key/result pair to its exported form.
func entryOf(k propKey, r propResult) Entry {
	return Entry{FP: k.fp, Prop: k.prop, N: k.n, OK: r.ok,
		DiscernWitness: r.dw, RecordWitness: r.rw}
}

// Range calls fn for every memoized decision, stopping early when fn
// returns false. The iteration order is unspecified. The entries are a
// snapshot taken under the lock, so fn may call back into the cache.
func (c *Cache) Range(fn func(Entry) bool) {
	c.mu.Lock()
	entries := make([]Entry, 0, len(c.m))
	for k, r := range c.m {
		entries = append(entries, entryOf(k, r))
	}
	c.mu.Unlock()
	for _, e := range entries {
		if !fn(e) {
			return
		}
	}
}

// Insert memoizes a completed decision without running a computation —
// the warm-load path of a persistent store. An entry for a key that is
// already memoized overwrites it. Insert does not fire the sink and does
// not count as a hit or a miss.
func (c *Cache) Insert(e Entry) {
	k := propKey{fp: e.FP, prop: e.Prop, n: e.N}
	c.mu.Lock()
	c.m[k] = propResult{ok: e.OK, dw: e.DiscernWitness, rw: e.RecordWitness}
	c.mu.Unlock()
}

// SetSink installs fn as the cache's persistence hook: every newly
// computed decision (not a hit, not an Insert) is passed to fn right
// after it is memoized, outside the cache lock, from the goroutine that
// computed it. fn must be safe for concurrent use. One sink at a time;
// nil uninstalls. Install the sink before handing the cache to engines —
// decisions computed earlier are not replayed (Range covers those).
func (c *Cache) SetSink(fn func(Entry)) {
	c.mu.Lock()
	c.sink = fn
	c.mu.Unlock()
}
