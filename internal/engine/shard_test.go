package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/discern"
	"repro/internal/record"
	"repro/internal/spec"
	"repro/internal/types"
)

// TestShardedEngineMatchesSerial: an engine forced to shard every level
// (threshold 1) produces the same Analysis as the serial core facade on
// the full zoo.
func TestShardedEngineMatchesSerial(t *testing.T) {
	const maxN = 4
	eng := New(WithParallelism(4), WithMaxN(maxN), WithShardThreshold(1))
	for _, ft := range zoo() {
		want, err := core.Analyze(ft, maxN)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Analyze(ft)
		if err != nil {
			t.Fatal(err)
		}
		sameAnalysis(t, ft.Name(), got, want)
	}
}

// TestLevelAPI: the single-level Discerning/Recording calls agree with
// the serial deciders, shard when the space is large, and feed the same
// cache Analyze consults.
func TestLevelAPI(t *testing.T) {
	cache := NewCache()
	eng := New(WithParallelism(4), WithShardThreshold(1), WithCache(cache))
	ft := types.Tnn(4, 2)

	ok, w, err := eng.Discerning(ft, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantOK, wantW := discern.IsNDiscerning(ft, 4)
	if ok != wantOK || (w == nil) != (wantW == nil) {
		t.Fatalf("Discerning(tnn42, 4) = (%v, %v), serial (%v, %v)", ok, w, wantOK, wantW)
	}
	if w != nil && w.String() != wantW.String() {
		t.Fatalf("sharded witness %s, serial %s", w, wantW)
	}

	rok, rw, err := eng.Recording(ft, 2)
	if err != nil {
		t.Fatal(err)
	}
	rWantOK, rWantW := record.IsNRecording(ft, 2)
	if rok != rWantOK || (rw == nil) != (rWantW == nil) {
		t.Fatalf("Recording(tnn42, 2) = (%v, %v), serial (%v, %v)", rok, rw, rWantOK, rWantW)
	}

	// The level decisions must land in the shared cache: an Analyze over
	// the same type re-serves them.
	_, misses0, _ := cache.Stats()
	if _, err := eng.AnalyzeTo(ft, 4); err != nil {
		t.Fatal(err)
	}
	_, misses1, _ := cache.Stats()
	if misses1-misses0 != 2*3-2 {
		t.Errorf("Analyze after level calls recomputed %d levels, want %d new only",
			misses1-misses0, 2*3-2)
	}

	if _, _, err := eng.Discerning(ft, 1); err == nil {
		t.Error("Discerning with n=1 must error, not panic")
	}
	if _, _, err := eng.Recording(ft, 0); err == nil {
		t.Error("Recording with n=0 must error, not panic")
	}
}

// TestShardEvents: a dedicated large-level call on a sharding engine
// emits per-shard progress events bracketed by the usual level event.
func TestShardEvents(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	eng := New(WithParallelism(4), WithShardThreshold(1), WithProgress(func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}))
	ft := types.Tnn(4, 2)
	if _, _, err := eng.Discerning(ft, 3); err != nil {
		t.Fatal(err)
	}
	var shardEvents, levelEvents int
	for _, ev := range events {
		switch ev.Kind {
		case "shard.done":
			shardEvents++
			if ev.Property != Discerning || ev.N != 3 || !strings.Contains(ev.Detail, "/") {
				t.Errorf("malformed shard event %+v", ev)
			}
		case "level.done":
			levelEvents++
		}
	}
	if shardEvents == 0 {
		t.Error("no shard.done events from a sharded level check")
	}
	if levelEvents != 1 {
		t.Errorf("got %d level.done events, want 1", levelEvents)
	}
}

// TestShardsFor pins the auto-sharding policy: disabled thresholds and
// busy pools stay serial; an otherwise-idle pool claims every worker.
func TestShardsFor(t *testing.T) {
	big := types.Tnn(5, 2) // plenty of ops: a large assignment space at n=5
	small := types.Register(2)
	for _, tc := range []struct {
		name   string
		eng    *Engine
		t      *typeArg
		active int
		want   int
	}{
		// The default threshold must activate for a real huge level
		// (Tnn(5,2) at n=6 is the benchmark workload: 28 assignments,
		// ~80ms serial) while keeping genuinely small levels serial.
		{"default-huge-level", New(WithParallelism(8)), &typeArg{big, 6}, 1, 8},
		{"disabled", New(WithParallelism(8), WithShardThreshold(-1)), &typeArg{big, 5}, 1, 1},
		{"serial-pool", New(WithParallelism(1)), &typeArg{big, 5}, 1, 1},
		{"small-level", New(WithParallelism(8), WithShardThreshold(0)), &typeArg{small, 2}, 1, 1},
		{"idle-pool", New(WithParallelism(8), WithShardThreshold(1)), &typeArg{big, 5}, 1, 8},
		{"busy-pool", New(WithParallelism(8), WithShardThreshold(1)), &typeArg{big, 5}, 8, 1},
		{"half-busy", New(WithParallelism(8), WithShardThreshold(1)), &typeArg{big, 5}, 4, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tc.eng.active.Store(int32(tc.active))
			if got := tc.eng.shardsFor(tc.t.ft, tc.t.n); got != tc.want {
				t.Errorf("shardsFor=%d, want %d", got, tc.want)
			}
		})
	}
}

type typeArg struct {
	ft *spec.FiniteType
	n  int
}

// TestShardedCancellationThroughEngine: a deadline interrupts a sharded
// huge-level search promptly.
func TestShardedCancellationThroughEngine(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	eng := New(WithContext(ctx), WithParallelism(4), WithShardThreshold(1))
	start := time.Now()
	_, _, err := eng.Discerning(types.XFive(), 7)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadlined sharded level: err=%v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %s, want well under the full search time", elapsed)
	}
}
