package engine

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/proto"
)

// TestGraphCacheWarmCheckBatch is the tentpole acceptance criterion:
// repeating an identical batch on one engine walks warm cached graphs —
// the second batch expands zero nodes, reports cache hits, and returns
// byte-identical results.
func TestGraphCacheWarmCheckBatch(t *testing.T) {
	p := proto.NewCASRecoverable(2)
	reqs := []CheckRequest{
		{Inputs: []int{0, 1}},
		{Inputs: []int{0, 1}, CrashQuota: []int{1, 1}},
		{Inputs: []int{1, 0}, CrashQuota: []int{1, 1}},
	}
	e := New(WithParallelism(2))

	cold, coldGS, err := e.CheckBatch(p, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if coldGS.Expanded == 0 {
		t.Fatalf("cold batch expanded nothing: %+v", coldGS)
	}
	warm, warmGS, err := e.CheckBatch(p, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if warmGS.Expanded != 0 {
		t.Fatalf("warm batch expanded %d nodes, want 0 (stats %+v)", warmGS.Expanded, warmGS)
	}
	if warmGS.Reused == 0 {
		t.Fatalf("warm batch reused nothing: %+v", warmGS)
	}
	for i := range reqs {
		if cold[i].Err != nil || warm[i].Err != nil {
			t.Fatalf("item %d errored: cold %v warm %v", i, cold[i].Err, warm[i].Err)
		}
		if !reflect.DeepEqual(observe(cold[i].Result), observe(warm[i].Result)) {
			t.Fatalf("item %d: warm result diverged from cold:\n got %+v\nwant %+v",
				i, observe(warm[i].Result), observe(cold[i].Result))
		}
	}
	st := e.GraphCacheStats()
	if st.Hits == 0 {
		t.Fatalf("graph cache served no hits: %+v", st)
	}
	if st.Graphs != 2 || st.Misses != 2 { // two distinct input vectors
		t.Fatalf("expected 2 cached graphs from 2 misses, got %+v", st)
	}
	if st.Nodes == 0 {
		t.Fatalf("cached graphs report no nodes: %+v", st)
	}
}

// TestGraphCacheServesCheckAndTheorem13 checks that all three entry
// points share one cached graph: a Check warms it, a Theorem13 chain and
// a batch walk it without expanding.
func TestGraphCacheServesCheckAndTheorem13(t *testing.T) {
	p := proto.NewCASRecoverable(2)
	in := []int{1, 0}
	quota := []int{0, 1}
	e := New(WithParallelism(2))

	if _, err := e.Check(p, CheckRequest{Inputs: in, CrashQuota: quota, SkipLiveness: true}); err != nil {
		t.Fatal(err)
	}
	g, err := e.GraphCache().Get(p, in)
	if err != nil {
		t.Fatal(err)
	}
	afterCheck := g.Stats()

	chain, err := e.Theorem13(p, CheckRequest{Inputs: in, CrashQuota: quota})
	if err != nil {
		t.Fatal(err)
	}
	if !chain.Recording {
		t.Fatalf("CAS chain should end n-recording:\n%s", chain)
	}
	afterChain := g.Stats()
	if afterChain.Expanded != afterCheck.Expanded {
		t.Fatalf("chain expanded %d new nodes over the warmed graph",
			afterChain.Expanded-afterCheck.Expanded)
	}

	if _, gs, err := e.CheckBatch(p, []CheckRequest{{Inputs: in, CrashQuota: quota, SkipLiveness: true}}); err != nil {
		t.Fatal(err)
	} else if gs.Expanded != 0 {
		t.Fatalf("batch after check+chain expanded %d nodes, want 0", gs.Expanded)
	}
}

// TestGraphCacheEviction forces eviction with a tiny node budget and
// checks the counters move while results stay correct.
func TestGraphCacheEviction(t *testing.T) {
	p := proto.NewCASRecoverable(2)
	e := New(WithParallelism(1), WithGraphCacheBudget(1))
	inputSets := [][]int{{0, 1}, {1, 0}, {1, 1}, {0, 0}}
	want := make([]batchObservable, len(inputSets))
	for i, in := range inputSets {
		r, err := model.Check(p, model.CheckOpts{Inputs: in, CrashQuota: []int{1, 1}})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = observe(r)
	}
	for round := 0; round < 3; round++ {
		for i, in := range inputSets {
			res, err := e.Check(p, CheckRequest{Inputs: in, CrashQuota: []int{1, 1}})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(observe(res), want[i]) {
				t.Fatalf("round %d inputs %v: result diverged under eviction churn", round, in)
			}
		}
	}
	st := e.GraphCacheStats()
	if st.Evicted == 0 {
		t.Fatalf("a 1-node budget across %d input vectors evicted nothing: %+v", len(inputSets), st)
	}
	if st.Graphs > 1 {
		t.Fatalf("over-budget cache retains %d graphs: %+v", st.Graphs, st)
	}
}

// TestGraphCacheDisabled checks WithGraphCacheBudget(-1) restores
// fresh-graph-per-call behavior: no cache, zero stats, correct results.
func TestGraphCacheDisabled(t *testing.T) {
	p := proto.NewCASWaitFree(2)
	e := New(WithGraphCacheBudget(-1))
	if e.GraphCache() != nil {
		t.Fatal("negative budget should disable the graph cache")
	}
	req := CheckRequest{Inputs: []int{0, 1}, CrashQuota: []int{1, 1}}
	_, gs1, err := e.CheckBatch(p, []CheckRequest{req})
	if err != nil {
		t.Fatal(err)
	}
	_, gs2, err := e.CheckBatch(p, []CheckRequest{req})
	if err != nil {
		t.Fatal(err)
	}
	if gs2.Expanded != gs1.Expanded || gs2.Expanded == 0 {
		t.Fatalf("disabled cache should re-expand per batch: first %+v then %+v", gs1, gs2)
	}
	if st := e.GraphCacheStats(); st != (GraphCacheStats{}) {
		t.Fatalf("disabled cache reports stats: %+v", st)
	}
}

// TestGraphCacheIdentity checks the cache key separates protocols and
// input vectors: distinct (protocol, inputs) never share a graph, equal
// ones always do.
func TestGraphCacheIdentity(t *testing.T) {
	c := NewGraphCache(0)
	g1, err := c.Get(proto.NewCASRecoverable(2), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := c.Get(proto.NewCASRecoverable(2), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("identical (protocol, inputs) got distinct graphs")
	}
	if g3, _ := c.Get(proto.NewCASRecoverable(2), []int{1, 0}); g3 == g1 {
		t.Fatal("different inputs shared a graph")
	}
	if g4, _ := c.Get(proto.NewCASWaitFree(2), []int{0, 1}); g4 == g1 {
		t.Fatal("different protocols shared a graph")
	}
	if g5, _ := c.Get(proto.NewTnnRecoverable(3, 2, 2), []int{0, 1}); g5 == g1 {
		t.Fatal("different protocol families shared a graph")
	}
	if _, err := c.Get(proto.NewCASRecoverable(2), []int{0}); err == nil {
		t.Fatal("wrong-length inputs should error, not cache")
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 4 {
		t.Fatalf("want 1 hit / 4 misses, got %+v", st)
	}
}

// TestGraphCacheConcurrentChurn is the race test for the tentpole:
// goroutines hammer CheckBatch and Theorem13 on one engine whose tiny
// graph-cache budget keeps eviction churning, across two protocols and
// mixed quotas. Every result must stay byte-identical to its serial
// twin. Run under -race this is the cache's data-race check.
func TestGraphCacheConcurrentChurn(t *testing.T) {
	type workload struct {
		p     model.Protocol
		req   CheckRequest
		want  batchObservable
		chain bool
	}
	var work []workload
	addCheck := func(p model.Protocol, req CheckRequest) {
		r, err := model.Check(p, model.CheckOpts{
			Inputs: req.Inputs, CrashQuota: req.CrashQuota, SkipLiveness: req.SkipLiveness,
		})
		if err != nil {
			t.Fatal(err)
		}
		work = append(work, workload{p: p, req: req, want: observe(r)})
	}
	cas := proto.NewCASRecoverable(2)
	tnn := proto.NewTnnRecoverable(3, 2, 2)
	addCheck(cas, CheckRequest{Inputs: []int{0, 1}, CrashQuota: []int{1, 1}})
	addCheck(cas, CheckRequest{Inputs: []int{1, 0}, CrashQuota: []int{2, 2}})
	addCheck(tnn, CheckRequest{Inputs: []int{0, 1}, CrashQuota: []int{0, 2}})
	addCheck(tnn, CheckRequest{Inputs: []int{1, 1}, CrashQuota: []int{1, 1}})
	work = append(work, workload{p: cas, req: CheckRequest{Inputs: []int{1, 0}, CrashQuota: []int{0, 1}}, chain: true})
	work = append(work, workload{p: tnn, req: CheckRequest{Inputs: []int{1, 0}, CrashQuota: []int{0, 2}}, chain: true})

	// Budget of 1 node: every Get over-budget, eviction on every touch.
	e := New(WithParallelism(4), WithGraphCacheBudget(1))
	wantChain := make(map[int]string)
	for i, w := range work {
		if !w.chain {
			continue
		}
		ch, err := model.Theorem13Chain(w.p, w.req.Inputs, w.req.CrashQuota)
		if err != nil {
			t.Fatal(err)
		}
		wantChain[i] = ch.String()
	}

	const workers = 8
	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for i, w := range work {
					if w.chain {
						ch, err := e.Theorem13(w.p, w.req)
						if err != nil {
							errs <- fmt.Errorf("worker %d work %d: %v", wkr, i, err)
							return
						}
						if ch.String() != wantChain[i] {
							errs <- fmt.Errorf("worker %d work %d: chain diverged under churn", wkr, i)
							return
						}
						continue
					}
					items, _, err := e.CheckBatch(w.p, []CheckRequest{w.req, w.req})
					if err != nil {
						errs <- fmt.Errorf("worker %d work %d: %v", wkr, i, err)
						return
					}
					for j, it := range items {
						if it.Err != nil {
							errs <- fmt.Errorf("worker %d work %d item %d: %v", wkr, i, j, it.Err)
							return
						}
						if !reflect.DeepEqual(observe(it.Result), w.want) {
							errs <- fmt.Errorf("worker %d work %d item %d: result diverged under churn", wkr, i, j)
							return
						}
					}
				}
			}
		}(wkr)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := e.GraphCacheStats()
	if st.Evicted == 0 {
		t.Fatalf("churn test evicted nothing: %+v", st)
	}
}

// TestTheorem13GraphBackedMatchesSerial is the chain byte-identity
// property test at the engine level: the graph-cached chain must render
// identically to the pre-cache per-stage construction for the registry
// protocols.
func TestTheorem13GraphBackedMatchesSerial(t *testing.T) {
	cases := []struct {
		desc   string
		inputs []int
		quota  []int
	}{
		{"cas-rec:2", []int{1, 0}, []int{0, 1}},
		{"cas-rec:3", []int{1, 0, 0}, []int{0, 1, 1}},
		{"tnn-rec:4,2", []int{1, 0}, []int{0, 2}},
		{"tnn-rec:5,2", []int{1, 0}, []int{0, 2}},
	}
	e := New(WithParallelism(2))
	for _, tc := range cases {
		p, err := e.ResolveProtocol(tc.desc)
		if err != nil {
			t.Fatal(err)
		}
		want, err := model.Theorem13ChainOpts(p, tc.inputs, tc.quota,
			model.ChainOpts{FreshGraphPerStage: true})
		if err != nil {
			t.Fatalf("%s serial: %v", tc.desc, err)
		}
		got, err := e.Theorem13(p, CheckRequest{Inputs: tc.inputs, CrashQuota: tc.quota})
		if err != nil {
			t.Fatalf("%s graph-backed: %v", tc.desc, err)
		}
		if got.String() != want.String() {
			t.Fatalf("%s: graph-backed chain diverged:\n got %s\nwant %s",
				tc.desc, got, want)
		}
		// Run it again: the whole chain must now be served from the warm
		// cached graph without any new expansion.
		g, err := e.GraphCache().Get(p, tc.inputs)
		if err != nil {
			t.Fatal(err)
		}
		beforeRerun := g.Stats()
		if _, err := e.Theorem13(p, CheckRequest{Inputs: tc.inputs, CrashQuota: tc.quota}); err != nil {
			t.Fatal(err)
		}
		if after := g.Stats(); after.Expanded != beforeRerun.Expanded {
			t.Fatalf("%s: repeated chain expanded %d new nodes",
				tc.desc, after.Expanded-beforeRerun.Expanded)
		}
	}
}
