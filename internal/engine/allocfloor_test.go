package engine

import (
	"testing"

	"repro/internal/proto"
)

// TestWarmCheckAllocFloor is the in-repo allocation ratchet for the
// warm Check hot path: a headless engine re-checking a cached,
// fully-expanded graph. The packed-word encoding, open-addressed walk
// overlay, interned fingerprint memo, and pooled key buffer brought the
// path from 87 allocs/op down to 9 — all nine are the per-call Result
// and its arenas, which outlive the call and cannot be pooled. The
// bound below leaves headroom for incidental runtime variation but sits
// far under the pre-pack figure, so any change that reintroduces
// per-visit or per-key allocations fails here before it reaches the
// CI bench gate.
func TestWarmCheckAllocFloor(t *testing.T) {
	e := New(WithParallelism(1))
	pr := proto.NewCASWaitFree(2)
	req := CheckRequest{Inputs: []int{0, 1}}
	if _, err := e.Check(pr, req); err != nil { // prime the graph cache
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := e.Check(pr, req); err != nil {
			t.Fatal(err)
		}
	})
	const limit = 20
	if allocs > limit {
		t.Errorf("warm Check allocates %.1f allocs/op, ratchet is %d (measured floor: 9)",
			allocs, limit)
	}
}
