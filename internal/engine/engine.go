package engine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/decider"
	"repro/internal/discern"
	"repro/internal/model"
	"repro/internal/pool"
	"repro/internal/record"
	"repro/internal/registry"
	"repro/internal/spec"
)

// Property names one of the paper's two level properties.
type Property string

// The two properties the engine decides per level.
const (
	Discerning Property = "discerning"
	Recording  Property = "recording"
)

// Event is one structured progress report. Events are emitted from worker
// goroutines; the consumer installed with WithProgress must be safe for
// concurrent use (the engine serializes emissions with a mutex, so a
// consumer that only writes to a terminal needs no extra locking).
type Event struct {
	// Kind is "analyze.start", "level.done", "shard.done",
	// "analyze.done", "check.start", "check.done", "checkbatch.start",
	// "checkbatch.done", "chain.start", or "chain.stage". The ".start"
	// kinds are span-begin markers paired with the matching ".done"
	// event, letting a consumer (job SSE streams, the slow-request
	// trace) see where a request's time went.
	Kind string
	// Type is the analyzed type's name (analyze/level events) or the
	// protocol's name (check/chain/checkbatch events).
	Type string
	// Property and N identify the level check for "level.done". For
	// "check.done" emitted inside a batch, N is the request's index; for
	// "checkbatch.done" it is the batch size.
	Property Property
	N        int
	// OK is the level check's outcome (or overall success for
	// "analyze.done"/"check.done").
	OK bool
	// Cached reports that the result came from the memo cache.
	Cached bool
	// Elapsed is the wall-clock cost of the unit of work.
	Elapsed time.Duration
	// Detail carries kind-specific extras (critical class for
	// "chain.stage", node counts for "check.done", shard index and
	// scanned-assignment counts for "shard.done", shared-graph
	// expanded/reused counters for "checkbatch.done").
	Detail string
}

// Engine is the analysis engine. Construct with New; the zero value is
// not usable.
type Engine struct {
	ctx            context.Context
	parallelism    int
	progress       func(Event)
	progressMu     sync.Mutex
	cache          *Cache
	graphs         *GraphCache
	graphBudget    int
	maxN           int
	budget         int
	shardThreshold int
	metrics        *Metrics
	backendName    string
	dec            decider.Decider
	decErr         error
	// active counts the level checks currently executing, the basis of
	// the idle-worker estimate that sizes auto-sharding.
	active atomic.Int32
}

// DefaultShardThreshold is the assignment count above which a level
// check is sharded across idle workers when WithShardThreshold is left
// at 0 (see that option). Below it the per-shard setup cost is not
// worth splitting: small levels finish in microseconds. The constant is
// calibrated to the symmetry-reduced space C(numOps+n-1, n), which
// stays small even when per-assignment cost explodes with n — the
// realistic huge levels (3-op types at n=5..7) have 21–36 assignments
// and multi-millisecond sweeps, so the cutoff sits just below them.
const DefaultShardThreshold = 16

// Option configures an Engine.
type Option func(*Engine)

// WithContext installs the context that cancels every search the engine
// runs: level checks, model-checker explorations and Theorem 13 chains.
// The default is context.Background().
func WithContext(ctx context.Context) Option {
	return func(e *Engine) { e.ctx = ctx }
}

// WithParallelism sets the worker-pool width for level checks. Values
// below 1 are clamped to 1. The default is runtime.NumCPU().
func WithParallelism(k int) Option {
	return func(e *Engine) { e.parallelism = k }
}

// WithProgress installs a progress consumer. Emissions are serialized by
// the engine. A nil fn disables progress (the default).
func WithProgress(fn func(Event)) Option {
	return func(e *Engine) { e.progress = fn }
}

// WithCache installs a shared decision cache, letting several engines
// (or sequential rebuilds of one engine) reuse sub-decisions. A nil cache
// is replaced by a fresh one. The default is a fresh private cache.
func WithCache(c *Cache) Option {
	return func(e *Engine) { e.cache = c }
}

// WithMaxN sets the largest process count Analyze checks (the default
// is 5). AnalyzeTo overrides it per call.
func WithMaxN(n int) Option {
	return func(e *Engine) { e.maxN = n }
}

// WithGraphCache installs a shared exploration-graph cache, letting
// several engines (the reprod service's per-request engines, say) reuse
// expanded state spaces. A nil cache is replaced by a fresh private one.
// The default is a fresh private cache with the engine's
// WithGraphCacheBudget.
func WithGraphCache(c *GraphCache) Option {
	return func(e *Engine) { e.graphs = c }
}

// WithGraphCacheBudget bounds the engine's private graph cache: the total
// number of interned exploration-graph nodes retained across cached
// graphs before least-recently-used graphs are evicted. 0 (the default)
// selects DefaultGraphCacheBudget; a negative budget disables graph
// caching entirely (every Check/CheckBatch/Theorem13 builds fresh
// graphs, the pre-cache behavior). Ignored when WithGraphCache installs
// a shared cache, which carries its own budget.
func WithGraphCacheBudget(nodes int) Option {
	return func(e *Engine) { e.graphBudget = nodes }
}

// WithBudget bounds the model checker's explored state space, in nodes,
// for Check and Theorem13 (0 means the checker's default). Explorations
// that exceed the budget come back Truncated, exactly as with
// model.CheckOpts.MaxNodes.
func WithBudget(states int) Option {
	return func(e *Engine) { e.budget = states }
}

// WithShardThreshold controls auto-sharding of single level checks: a
// level whose symmetry-reduced operation-assignment count exceeds the
// threshold is split across the engine's idle workers (one shard per
// idle worker plus the level's own), so a single huge-n check uses the
// whole pool instead of pinning one core. Sharded and serial checks
// return identical results. 0 (the default) selects
// DefaultShardThreshold; a negative threshold disables sharding
// entirely.
func WithShardThreshold(assignments int) Option {
	return func(e *Engine) { e.shardThreshold = assignments }
}

// WithBackend selects the level-decider backend by registry name (see
// internal/decider): "" or "search" is the recursive-search decider the
// engine always had, "bitset" the semi-symbolic frontier-sweep decider,
// "auto" the per-call dispatcher (bitset up to its n cap, search above).
// Every backend returns byte-identical results, so engines with
// different backends may safely share one decision cache. An unknown
// name surfaces as an error from the first level check (option
// application has no error channel); validate eagerly with
// decider.Get when the name is untrusted.
func WithBackend(name string) Option {
	return func(e *Engine) { e.backendName = name }
}

// Backends lists the registered level-decider backend names, sorted.
func Backends() []string { return decider.Names() }

// New constructs an Engine from the given options.
func New(opts ...Option) *Engine {
	e := &Engine{
		ctx:         context.Background(),
		parallelism: runtime.NumCPU(),
		maxN:        5,
	}
	for _, o := range opts {
		o(e)
	}
	if e.parallelism < 1 {
		e.parallelism = 1
	}
	if e.cache == nil {
		e.cache = NewCache()
	}
	if e.graphs == nil && e.graphBudget >= 0 {
		e.graphs = NewGraphCache(e.graphBudget)
	}
	e.dec, e.decErr = decider.Get(e.backendName)
	// An out-of-range maxN is reported by Analyze/AnalyzeAll, not here:
	// option application has no error channel.
	return e
}

// MaxN returns the engine's configured analysis limit.
func (e *Engine) MaxN() int { return e.maxN }

// Backend returns the resolved level-decider backend name (the default
// when WithBackend was not used, or the unresolved name verbatim when
// it did not resolve — the error surfaces from the first level check).
func (e *Engine) Backend() string {
	if e.dec != nil {
		return e.dec.Name()
	}
	return e.backendName
}

// Cache returns the engine's decision cache (for stats and sharing).
func (e *Engine) Cache() *Cache { return e.cache }

// GraphCache returns the engine's exploration-graph cache, or nil when
// graph caching is disabled (WithGraphCacheBudget < 0).
func (e *Engine) GraphCache() *GraphCache { return e.graphs }

// GraphCacheStats snapshots the graph cache's counters (zero when graph
// caching is disabled).
func (e *Engine) GraphCacheStats() GraphCacheStats {
	if e.graphs == nil {
		return GraphCacheStats{}
	}
	return e.graphs.Stats()
}

// graphFor resolves the exploration graph a check of (p, inputs) walks:
// the cached live graph, or a fresh one-shot graph when caching is
// disabled.
func (e *Engine) graphFor(p model.Protocol, inputs []int) (*model.Graph, error) {
	start := time.Now()
	var g *model.Graph
	var err error
	if e.graphs != nil {
		g, err = e.graphs.Get(p, inputs)
	} else {
		g, err = model.NewGraph(p, inputs)
	}
	if err == nil {
		e.metrics.observeResolve(time.Since(start))
	}
	return g, err
}

// emit serializes progress emissions.
func (e *Engine) emit(ev Event) {
	if e.progress == nil {
		return
	}
	e.progressMu.Lock()
	e.progress(ev)
	e.progressMu.Unlock()
}

// levelJob is one unit of pool work: decide one property of one type at
// one process count and write the outcome into the job's analysis.
type levelJob struct {
	t    *spec.FiniteType
	fp   uint64
	prop Property
	n    int
	a    *core.Analysis
	mu   *sync.Mutex // guards a's maps
}

// shardsFor sizes the auto-sharding of one level check: 1 (serial) when
// sharding is disabled, the level's assignment space is below the
// threshold, or no workers are idle; otherwise one shard per idle worker
// plus the level's own. The estimate is taken once at job start — two
// concurrent jobs may both count the same worker as idle and briefly
// oversubscribe the pool with goroutines, which Go's scheduler absorbs.
func (e *Engine) shardsFor(t *spec.FiniteType, n int) int {
	thr := e.shardThreshold
	if thr < 0 || e.parallelism <= 1 {
		return 1
	}
	if thr == 0 {
		thr = DefaultShardThreshold
	}
	if discern.NewTupleSpace(t.NumOps(), n, false).Count() <= int64(thr) {
		return 1
	}
	idle := e.parallelism - int(e.active.Load())
	if idle < 1 {
		return 1
	}
	return idle + 1
}

// shardProgress adapts one level job's shard reports onto the engine's
// event stream.
func (e *Engine) shardProgress(j levelJob) func(discern.ShardReport) {
	if e.progress == nil {
		return nil
	}
	return func(rep discern.ShardReport) {
		e.emit(Event{Kind: "shard.done", Type: j.t.Name(), Property: j.prop, N: j.n,
			OK: rep.Found, Elapsed: rep.Elapsed,
			Detail: fmt.Sprintf("shard %d/%d, %d assignments", rep.Shard+1, rep.Shards, rep.Scanned)})
	}
}

// run decides the job, consulting and feeding the cache. Level checks
// whose assignment space is large enough — and for which workers are
// idle — are sharded across the pool (see WithShardThreshold).
func (e *Engine) run(j levelJob) error {
	start := time.Now()
	if e.decErr != nil {
		return e.decErr
	}
	e.active.Add(1)
	defer e.active.Add(-1)
	key := propKey{fp: j.fp, prop: j.prop, n: j.n}
	// The cache key carries no backend: every backend returns identical
	// results (the contract internal/decider/difftest enforces), so a
	// decision computed by one is served to all.
	res, cached, err := e.cache.do(e.ctx, key, func() (propResult, error) {
		var r propResult
		var err error
		shards := e.shardsFor(j.t, j.n)
		switch j.prop {
		case Discerning:
			if shards > 1 {
				r.ok, r.dw, err = e.dec.ShardedIsNDiscerning(e.ctx, j.t, j.n, shards, e.shardProgress(j))
			} else {
				r.ok, r.dw, err = e.dec.IsNDiscerning(e.ctx, j.t, j.n)
			}
		case Recording:
			if shards > 1 {
				r.ok, r.rw, err = e.dec.ShardedIsNRecording(e.ctx, j.t, j.n, shards, e.shardProgress(j))
			} else {
				r.ok, r.rw, err = e.dec.IsNRecording(e.ctx, j.t, j.n)
			}
		}
		return r, err
	})
	if err != nil {
		return err
	}
	if !cached {
		e.metrics.observeDecide(e.dec.Name())
	}
	// Witnesses are served as deep copies: their Teams/Ops slices are
	// exported, and the cached originals outlive any one call (the
	// Default engine's cache is process-wide), so a caller mutating an
	// Analysis must not corrupt later analyses.
	j.mu.Lock()
	switch j.prop {
	case Discerning:
		j.a.Discerning[j.n] = res.ok
		if res.ok {
			j.a.DiscerningWitness[j.n] = res.dw.Clone()
		}
	case Recording:
		j.a.Recording[j.n] = res.ok
		if res.ok {
			j.a.RecordingWitness[j.n] = res.rw.Clone()
		}
	}
	j.mu.Unlock()
	e.emit(Event{Kind: "level.done", Type: j.t.Name(), Property: j.prop, N: j.n,
		OK: res.ok, Cached: cached, Elapsed: time.Since(start)})
	return nil
}

// runPool drains jobs through the shared worker pool, stopping early on
// the first error or on engine-context cancellation (later jobs are
// skipped, in-flight ones finish).
func (e *Engine) runPool(jobs []levelJob) error {
	// Heaviest levels first: the pool's makespan is bounded by its
	// largest job, so schedule high n (exponentially dominant) early.
	sort.SliceStable(jobs, func(i, k int) bool { return jobs[i].n > jobs[k].n })

	fed, err := pool.Run(e.ctx, len(jobs), e.parallelism,
		func(i int) error { return e.run(jobs[i]) })
	if err != nil {
		return err
	}
	if fed < len(jobs) {
		// Feeding stopped early, which only the context can cause when
		// no job errored; the analysis maps are incomplete.
		if cerr := e.ctx.Err(); cerr != nil {
			return cerr
		}
		return fmt.Errorf("engine: job feed stopped early")
	}
	return nil
}

// newAnalysis prepares an empty Analysis shell for t.
func newAnalysis(t *spec.FiniteType, maxN int) *core.Analysis {
	return &core.Analysis{
		Type:              t,
		MaxN:              maxN,
		Readable:          t.Readable(),
		Discerning:        make(map[int]bool, maxN-1),
		Recording:         make(map[int]bool, maxN-1),
		DiscerningWitness: make(map[int]*discern.Witness),
		RecordingWitness:  make(map[int]*record.Witness),
	}
}

// jobsFor expands one type into its 2*(maxN-1) level jobs.
func jobsFor(t *spec.FiniteType, maxN int, a *core.Analysis, mu *sync.Mutex) []levelJob {
	fp := t.Fingerprint()
	jobs := make([]levelJob, 0, 2*(maxN-1))
	for n := 2; n <= maxN; n++ {
		for _, prop := range []Property{Discerning, Recording} {
			jobs = append(jobs, levelJob{t: t, fp: fp, prop: prop, n: n, a: a, mu: mu})
		}
	}
	return jobs
}

// finish derives the hierarchy positions once every level is decided.
func finish(a *core.Analysis) {
	a.ConsensusNumber = core.LevelOf(a.Discerning, a.MaxN)
	a.RecoverableConsensusNumber = core.LevelOf(a.Recording, a.MaxN)
}

// Analyze computes the discerning/recording spectrum of t for all
// n in [2, MaxN] and derives hierarchy positions, running the level
// checks concurrently on the engine's pool. The result is identical to
// core.Analyze(t, e.MaxN()).
func (e *Engine) Analyze(t *spec.FiniteType) (*core.Analysis, error) {
	return e.AnalyzeTo(t, e.maxN)
}

// AnalyzeTo is Analyze with an explicit process-count limit overriding
// the engine's MaxN.
func (e *Engine) AnalyzeTo(t *spec.FiniteType, maxN int) (*core.Analysis, error) {
	if maxN < 2 {
		return nil, fmt.Errorf("engine: need maxN >= 2, got %d", maxN)
	}
	if err := e.ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	e.emit(Event{Kind: "analyze.start", Type: t.Name(), N: maxN})
	a := newAnalysis(t, maxN)
	var mu sync.Mutex
	if err := e.runPool(jobsFor(t, maxN, a, &mu)); err != nil {
		return nil, err
	}
	finish(a)
	e.emit(Event{Kind: "analyze.done", Type: t.Name(), N: maxN, OK: true,
		Elapsed: time.Since(start)})
	return a, nil
}

// AnalyzeAll analyzes every type in ts up to the engine's MaxN, flattening
// all level checks of all types into one pool run so small types do not
// serialize behind large ones. Results are returned in input order.
func (e *Engine) AnalyzeAll(ts []*spec.FiniteType) ([]*core.Analysis, error) {
	if e.maxN < 2 {
		return nil, fmt.Errorf("engine: need maxN >= 2, got %d", e.maxN)
	}
	if err := e.ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]*core.Analysis, len(ts))
	var jobs []levelJob
	var mu sync.Mutex
	for i, t := range ts {
		out[i] = newAnalysis(t, e.maxN)
		jobs = append(jobs, jobsFor(t, e.maxN, out[i], &mu)...)
	}
	if err := e.runPool(jobs); err != nil {
		return nil, err
	}
	for _, a := range out {
		finish(a)
	}
	return out, nil
}

// Discerning decides one discerning level of t (n >= 2), serving and
// feeding the engine's cache. When the level's assignment space is large
// and workers are idle — in particular for a dedicated call like this
// one, where the whole pool minus one worker is idle — the enumeration
// is sharded across the pool, turning a single huge-n check from
// one-core to all-core while returning exactly the serial result.
func (e *Engine) Discerning(t *spec.FiniteType, n int) (bool, *discern.Witness, error) {
	a, err := e.level(t, Discerning, n)
	if err != nil {
		return false, nil, err
	}
	return a.Discerning[n], a.DiscerningWitness[n], nil
}

// Recording is Discerning for the recording property.
func (e *Engine) Recording(t *spec.FiniteType, n int) (bool, *record.Witness, error) {
	a, err := e.level(t, Recording, n)
	if err != nil {
		return false, nil, err
	}
	return a.Recording[n], a.RecordingWitness[n], nil
}

// level runs one level job outside any Analyze sweep.
func (e *Engine) level(t *spec.FiniteType, prop Property, n int) (*core.Analysis, error) {
	if n < 2 {
		return nil, fmt.Errorf("engine: need n >= 2, got %d", n)
	}
	if err := e.ctx.Err(); err != nil {
		return nil, err
	}
	a := newAnalysis(t, n)
	var mu sync.Mutex
	if err := e.run(levelJob{t: t, fp: t.Fingerprint(), prop: prop, n: n, a: a, mu: &mu}); err != nil {
		return nil, err
	}
	return a, nil
}

// CheckRequest parameterizes one model-checking run.
type CheckRequest struct {
	// Inputs is the binary input of each process.
	Inputs []int
	// CrashQuota[p] bounds process p's crashes (nil: crash-free).
	CrashQuota []int
	// MaxNodes overrides the engine's budget for this run (0: use the
	// engine budget, which itself defaults to the checker's default).
	MaxNodes int
	// SkipLiveness disables the recoverable wait-freedom (cycle) check.
	SkipLiveness bool
	// Backend optionally overrides the engine's level-decider backend
	// for this request ("" keeps the engine's). Unknown names fail the
	// request up front with the decider registry's error, so a wire
	// request carrying a bad backend is rejected at the engine boundary
	// rather than deep inside a run. Model-checking walks themselves run
	// no level decider; the override binds the backend any level
	// decisions made on behalf of this request would use.
	Backend string
	// Ctx, when non-nil, cancels this request independently of the
	// engine context; the run stops as soon as either is done. Inside
	// CheckBatch this is the per-request cancellation handle — one
	// canceled request fails only its own item.
	Ctx context.Context
}

// maxNodes resolves a request's node bound against the engine budget.
func (e *Engine) maxNodes(req CheckRequest) int {
	if req.MaxNodes > 0 {
		return req.MaxNodes
	}
	return e.budget
}

// checkBackend validates a request's backend override against the
// registry (and surfaces the engine's own unresolved backend, if any).
func (e *Engine) checkBackend(req CheckRequest) error {
	if e.decErr != nil {
		return e.decErr
	}
	if req.Backend == "" {
		return nil
	}
	_, err := decider.Get(req.Backend)
	return err
}

// Check model-checks a consensus protocol under the engine's context and
// state budget (plus the request's own context, when set). The walk runs
// on the engine's cached exploration graph for (p, inputs): a repeat
// check on one engine walks a warm graph and expands nothing. For many
// requests against one protocol, CheckBatch amortizes the state-space
// expansion across them within a single call as well.
func (e *Engine) Check(p model.Protocol, req CheckRequest) (*model.Result, error) {
	if err := e.checkBackend(req); err != nil {
		return nil, err
	}
	start := time.Now()
	// Event payloads (Name, Sprintf details) are built only when a
	// progress sink exists — a warm headless Check emits nothing and
	// must allocate nothing for it.
	if e.progress != nil {
		e.emit(Event{Kind: "check.start", Type: p.Name()})
	}
	ctx, stop := e.requestCtx(req.Ctx)
	defer stop()
	g, err := e.graphFor(p, req.Inputs)
	if err != nil {
		return nil, err
	}
	before := g.Stats()
	walkStart := time.Now()
	res, err := g.Check(model.CheckOpts{
		Ctx:          ctx,
		Inputs:       req.Inputs,
		CrashQuota:   req.CrashQuota,
		MaxNodes:     e.maxNodes(req),
		SkipLiveness: req.SkipLiveness,
	})
	if err != nil {
		return nil, err
	}
	e.metrics.observeWalk(g.Stats().Sub(before).Expanded > 0, time.Since(walkStart))
	e.graphs.Sync(g)
	if e.progress != nil {
		e.emit(Event{Kind: "check.done", Type: p.Name(), OK: res.OK(),
			Elapsed: time.Since(start), Detail: fmt.Sprintf("%d nodes", res.Nodes)})
	}
	return res, nil
}

// Theorem13 runs the mechanized Theorem 13 chain construction under the
// engine's context and state budget, reporting each stage as a progress
// event. All chain stages walk the engine's cached exploration graph for
// (p, inputs), so the chain expands the overlapping per-stage state
// spaces once — and a repeated chain (or a Check of the same protocol
// and inputs) reuses them again.
func (e *Engine) Theorem13(p model.Protocol, req CheckRequest) (*model.Chain, error) {
	if err := e.checkBackend(req); err != nil {
		return nil, err
	}
	start := time.Now()
	if e.progress != nil {
		e.emit(Event{Kind: "chain.start", Type: p.Name()})
	}
	ctx, stop := e.requestCtx(req.Ctx)
	defer stop()
	g, err := e.graphFor(p, req.Inputs)
	if err != nil {
		return nil, err
	}
	before := g.Stats()
	walkStart := time.Now()
	chain, err := model.Theorem13ChainOpts(p, req.Inputs, req.CrashQuota, model.ChainOpts{
		Ctx:      ctx,
		MaxNodes: e.maxNodes(req),
		Graph:    g,
		OnStage: func(stage int, info *model.CriticalInfo) {
			e.emit(Event{Kind: "chain.stage", Type: p.Name(), N: stage,
				Detail: info.Class})
		},
	})
	if err != nil {
		return chain, err
	}
	e.metrics.observeWalk(g.Stats().Sub(before).Expanded > 0, time.Since(walkStart))
	e.graphs.Sync(g)
	if e.progress != nil {
		e.emit(Event{Kind: "check.done", Type: p.Name(), OK: chain.Recording,
			Elapsed: time.Since(start), Detail: fmt.Sprintf("%d stages", len(chain.Stages))})
	}
	return chain, nil
}

// Resolve parses a registry descriptor such as "tnn:5,2" or
// "product:tas,register:2" into a type. Unknown names error with the
// list of valid descriptors.
func (e *Engine) Resolve(desc string) (*spec.FiniteType, error) {
	return registry.Parse(desc)
}
