package schedule

import (
	"fmt"
	"strconv"
	"strings"
)

// Event is one element of a schedule: a step by, or crash of, process P.
type Event struct {
	P     int
	Crash bool
}

// Step returns a step event for process p.
func Step(p int) Event { return Event{P: p} }

// Crash returns a crash event for process p.
func Crash(p int) Event { return Event{P: p, Crash: true} }

// String renders the event in the paper's notation: "p3" or "c3".
func (e Event) String() string {
	if e.Crash {
		return "c" + strconv.Itoa(e.P)
	}
	return "p" + strconv.Itoa(e.P)
}

// Schedule is a finite sequence of events.
type Schedule []Event

// Steps builds a crash-free schedule from a sequence of process ids.
func Steps(procs ...int) Schedule {
	s := make(Schedule, len(procs))
	for i, p := range procs {
		s[i] = Step(p)
	}
	return s
}

// String renders the schedule in the paper's notation, e.g. "p0 p2 c2 p1".
// The empty schedule renders as "<>".
func (s Schedule) String() string {
	if len(s) == 0 {
		return "<>"
	}
	parts := make([]string, len(s))
	for i, e := range s {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}

// Append returns a new schedule consisting of s followed by events. The
// receiver is not modified.
func (s Schedule) Append(events ...Event) Schedule {
	out := make(Schedule, 0, len(s)+len(events))
	out = append(out, s...)
	out = append(out, events...)
	return out
}

// Concat returns s followed by t as a new schedule.
func (s Schedule) Concat(t Schedule) Schedule { return s.Append(t...) }

// CrashFree reports whether the schedule contains no crash events.
func (s Schedule) CrashFree() bool {
	for _, e := range s {
		if e.Crash {
			return false
		}
	}
	return true
}

// StepsBy returns the number of steps (not crashes) taken by processes for
// which include returns true.
func (s Schedule) StepsBy(include func(p int) bool) int {
	n := 0
	for _, e := range s {
		if !e.Crash && include(e.P) {
			n++
		}
	}
	return n
}

// CrashesOf returns the number of crash events of process p.
func (s Schedule) CrashesOf(p int) int {
	n := 0
	for _, e := range s {
		if e.Crash && e.P == p {
			n++
		}
	}
	return n
}

// AtMostOncePerProcess reports whether the schedule is crash-free and
// contains at most one step per process, i.e. whether it belongs to S(P)
// for P = the set of processes appearing in it.
func (s Schedule) AtMostOncePerProcess() bool {
	seen := make(map[int]bool, len(s))
	for _, e := range s {
		if e.Crash || seen[e.P] {
			return false
		}
		seen[e.P] = true
	}
	return true
}

// Parse parses the rendering produced by String: whitespace-separated
// events "p<i>" and "c<i>", or "<>" for the empty schedule.
func Parse(text string) (Schedule, error) {
	text = strings.TrimSpace(text)
	if text == "" || text == "<>" {
		return Schedule{}, nil
	}
	fields := strings.Fields(text)
	out := make(Schedule, 0, len(fields))
	for _, f := range fields {
		if len(f) < 2 || (f[0] != 'p' && f[0] != 'c') {
			return nil, fmt.Errorf("bad event %q", f)
		}
		id, err := strconv.Atoi(f[1:])
		if err != nil || id < 0 {
			return nil, fmt.Errorf("bad process id in event %q", f)
		}
		out = append(out, Event{P: id, Crash: f[0] == 'c'})
	}
	return out, nil
}

// EnumerateS enumerates the set S(P') of Section 2: all schedules (including
// the empty one) that contain at most one step of every process in procs and
// no crashes. The schedules are passed to visit; enumeration stops early if
// visit returns false. The visited slice is reused between calls — callers
// that retain a schedule must copy it.
func EnumerateS(procs []int, visit func(Schedule) bool) {
	used := make([]bool, len(procs))
	cur := make(Schedule, 0, len(procs))
	if !visit(cur) {
		return
	}
	var rec func() bool
	rec = func() bool {
		for i, p := range procs {
			if used[i] {
				continue
			}
			used[i] = true
			cur = append(cur, Step(p))
			if !visit(cur) {
				return false
			}
			if !rec() {
				return false
			}
			cur = cur[:len(cur)-1]
			used[i] = false
		}
		return true
	}
	rec()
}

// CountS returns |S(P')| for a process set of size m: the number of
// sequences of distinct processes of length 0..m.
func CountS(m int) int {
	total := 0
	perm := 1
	for k := 0; k <= m; k++ {
		total += perm
		perm *= m - k
	}
	return total
}
