package schedule

import "fmt"

// Budget describes the crash-budgeted execution sets E_z(C) and E*_z(C) of
// Section 3 for a system of n processes: a schedule is admissible if p0
// never crashes and, for every process p_i with i >= 1, the number of
// crashes by p_i is at most z*n times the number of steps collectively
// taken by p_0, ..., p_{i-1}.
//
// E_z requires the bound to hold for the full schedule only; E*_z requires
// it for every prefix (E*_z is prefix-closed, E_z is not — see the paper's
// example after the definitions).
type Budget struct {
	// N is the number of processes in the system (processes are 0..N-1).
	N int
	// Z is the multiplier z; the per-process crash bound is Z*N times the
	// steps of lower-identifier processes.
	Z int
}

// InE reports whether the schedule belongs to E_z: p0 crash-free and, for
// each p_i (i >= 1), crashes(p_i) <= z*n * steps(p_0..p_{i-1}) over the
// whole schedule.
func (b Budget) InE(s Schedule) bool {
	return b.check(s, false)
}

// InEStar reports whether the schedule belongs to E*_z: the E_z condition
// holds for every prefix of the schedule.
func (b Budget) InEStar(s Schedule) bool {
	return b.check(s, true)
}

func (b Budget) check(s Schedule, everyPrefix bool) bool {
	steps := make([]int, b.N)   // steps[i] = steps taken by p_i so far
	crashes := make([]int, b.N) // crashes[i] = crashes of p_i so far
	ok := func() bool {
		if crashes[0] > 0 {
			return false
		}
		lower := 0
		for i := 1; i < b.N; i++ {
			lower += steps[i-1]
			if crashes[i] > b.Z*b.N*lower {
				return false
			}
		}
		return true
	}
	for _, e := range s {
		if e.P < 0 || e.P >= b.N {
			return false
		}
		if e.Crash {
			crashes[e.P]++
		} else {
			steps[e.P]++
		}
		if everyPrefix && !ok() {
			return false
		}
	}
	return ok()
}

// MaxCrashes returns, for the given schedule prefix, the number of further
// crashes process p could take immediately while keeping the schedule in
// E*_z. It returns 0 for p = 0.
func (b Budget) MaxCrashes(s Schedule, p int) int {
	if p <= 0 || p >= b.N {
		return 0
	}
	lower := 0
	for _, e := range s {
		if !e.Crash && e.P < p {
			lower++
		}
	}
	allowed := b.Z*b.N*lower - s.CrashesOf(p)
	if allowed < 0 {
		return 0
	}
	return allowed
}

// Validate checks the budget parameters.
func (b Budget) Validate() error {
	if b.N < 1 {
		return fmt.Errorf("budget: need N >= 1, got %d", b.N)
	}
	if b.Z < 1 {
		return fmt.Errorf("budget: need Z >= 1, got %d", b.Z)
	}
	return nil
}
