package schedule

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestEventString(t *testing.T) {
	if got := Step(3).String(); got != "p3" {
		t.Errorf("Step(3) = %q", got)
	}
	if got := Crash(0).String(); got != "c0" {
		t.Errorf("Crash(0) = %q", got)
	}
}

func TestScheduleStringAndParse(t *testing.T) {
	tests := []struct {
		s    Schedule
		text string
	}{
		{Schedule{}, "<>"},
		{Steps(0), "p0"},
		{Steps(0, 2, 1), "p0 p2 p1"},
		{Schedule{Step(1), Crash(1), Step(0)}, "p1 c1 p0"},
	}
	for _, tc := range tests {
		if got := tc.s.String(); got != tc.text {
			t.Errorf("String() = %q, want %q", got, tc.text)
		}
		back, err := Parse(tc.text)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.text, err)
			continue
		}
		if !reflect.DeepEqual(back, tc.s) && !(len(back) == 0 && len(tc.s) == 0) {
			t.Errorf("Parse(%q) = %v, want %v", tc.text, back, tc.s)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"x0", "p", "pX", "p-1", "q1 p2"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseRoundTripProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		s := make(Schedule, 0, len(raw))
		for _, b := range raw {
			s = append(s, Event{P: int(b % 7), Crash: b%2 == 0})
		}
		back, err := Parse(s.String())
		if err != nil {
			return false
		}
		if len(back) != len(s) {
			return false
		}
		for i := range s {
			if back[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAppendDoesNotMutate(t *testing.T) {
	s := Steps(0, 1)
	u := s.Append(Crash(1))
	if len(s) != 2 {
		t.Error("Append mutated the receiver")
	}
	if len(u) != 3 || !u[2].Crash {
		t.Errorf("Append result wrong: %v", u)
	}
	v := s.Concat(Steps(2, 3))
	if len(v) != 4 || v[3].P != 3 {
		t.Errorf("Concat result wrong: %v", v)
	}
}

func TestCounting(t *testing.T) {
	s := Schedule{Step(0), Step(1), Crash(1), Step(1), Crash(2), Crash(1)}
	if got := s.StepsBy(func(p int) bool { return p <= 1 }); got != 3 {
		t.Errorf("StepsBy = %d, want 3", got)
	}
	if got := s.CrashesOf(1); got != 2 {
		t.Errorf("CrashesOf(1) = %d, want 2", got)
	}
	if got := s.CrashesOf(0); got != 0 {
		t.Errorf("CrashesOf(0) = %d, want 0", got)
	}
	if s.CrashFree() {
		t.Error("CrashFree on crashing schedule")
	}
	if !Steps(0, 1, 2).CrashFree() {
		t.Error("Steps schedule should be crash-free")
	}
}

func TestAtMostOncePerProcess(t *testing.T) {
	if !Steps(0, 2, 1).AtMostOncePerProcess() {
		t.Error("distinct steps should qualify")
	}
	if Steps(0, 1, 0).AtMostOncePerProcess() {
		t.Error("repeated process should not qualify")
	}
	if (Schedule{Step(0), Crash(1)}).AtMostOncePerProcess() {
		t.Error("schedules with crashes should not qualify")
	}
	if !(Schedule{}).AtMostOncePerProcess() {
		t.Error("empty schedule should qualify")
	}
}

// TestEnumerateS checks the S(P') enumeration against the paper's example:
// S({p0, p2}) = { <>, p0, p2, p0 p2, p2 p0 }.
func TestEnumerateS(t *testing.T) {
	var got []string
	EnumerateS([]int{0, 2}, func(s Schedule) bool {
		got = append(got, s.String())
		return true
	})
	want := []string{"<>", "p0", "p0 p2", "p2", "p2 p0"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("EnumerateS = %v, want %v", got, want)
	}
}

func TestEnumerateSEarlyStop(t *testing.T) {
	count := 0
	EnumerateS([]int{0, 1, 2}, func(s Schedule) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d schedules, want 3", count)
	}
}

func TestCountS(t *testing.T) {
	// |S(P)| = sum over k of m!/(m-k)!.
	tests := []struct{ m, want int }{
		{0, 1}, {1, 2}, {2, 5}, {3, 16}, {4, 65}, {5, 326},
	}
	for _, tc := range tests {
		if got := CountS(tc.m); got != tc.want {
			t.Errorf("CountS(%d) = %d, want %d", tc.m, got, tc.want)
		}
	}
	// Cross-check against the enumerator.
	for m := 0; m <= 5; m++ {
		procs := make([]int, m)
		for i := range procs {
			procs[i] = i
		}
		n := 0
		EnumerateS(procs, func(Schedule) bool { n++; return true })
		if n != CountS(m) {
			t.Errorf("enumerated %d schedules for m=%d, CountS says %d", n, m, CountS(m))
		}
	}
}

// TestBudgetPaperExample reproduces the example after the E definitions in
// Section 3: for n = 2, exec(C, p1 c1 p0) is in E_1(C) but not E*_1(C).
func TestBudgetPaperExample(t *testing.T) {
	b := Budget{N: 2, Z: 1}
	s, err := Parse("p1 c1 p0")
	if err != nil {
		t.Fatal(err)
	}
	if !b.InE(s) {
		t.Error("p1 c1 p0 should be in E_1")
	}
	if b.InEStar(s) {
		t.Error("p1 c1 p0 should NOT be in E*_1 (prefix p1 c1 violates the bound)")
	}
}

func TestBudgetP0NeverCrashes(t *testing.T) {
	b := Budget{N: 3, Z: 2}
	s := Schedule{Step(1), Crash(0)}
	if b.InE(s) || b.InEStar(s) {
		t.Error("schedules where p0 crashes are never admissible")
	}
}

func TestBudgetBounds(t *testing.T) {
	b := Budget{N: 2, Z: 1}
	// p0 takes 1 step: p1 may crash up to z*n*1 = 2 times.
	ok := Schedule{Step(0), Crash(1), Crash(1)}
	if !b.InEStar(ok) {
		t.Error("2 crashes after one p0 step should be within E*_1")
	}
	tooMany := Schedule{Step(0), Crash(1), Crash(1), Crash(1)}
	if b.InEStar(tooMany) || b.InE(tooMany) {
		t.Error("3 crashes after one p0 step should exceed the budget")
	}
}

func TestBudgetOutOfRangeProcess(t *testing.T) {
	b := Budget{N: 2, Z: 1}
	if b.InE(Schedule{Step(5)}) {
		t.Error("steps of out-of-range processes should be rejected")
	}
}

// TestBudgetPrefixClosureProperty checks Observation 3's engine-level
// counterpart: E*_z is prefix-closed.
func TestBudgetPrefixClosureProperty(t *testing.T) {
	b := Budget{N: 3, Z: 1}
	f := func(raw []uint8) bool {
		s := make(Schedule, 0, len(raw))
		for _, x := range raw {
			s = append(s, Event{P: int(x) % 3, Crash: x%3 == 0 && x%2 == 0})
		}
		if !b.InEStar(s) {
			return true // nothing to check
		}
		for i := 0; i <= len(s); i++ {
			if !b.InEStar(s[:i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestBudgetCrashFreeExtension checks Observation 4's engine-level
// counterpart: appending crash-free events preserves membership.
func TestBudgetCrashFreeExtension(t *testing.T) {
	b := Budget{N: 3, Z: 1}
	base := Schedule{Step(0), Crash(1), Step(1)}
	if !b.InEStar(base) {
		t.Fatal("base should be admissible")
	}
	ext := base.Concat(Steps(2, 1, 0, 2))
	if !b.InEStar(ext) || !b.InE(ext) {
		t.Error("crash-free extension must preserve membership")
	}
}

func TestMaxCrashes(t *testing.T) {
	b := Budget{N: 2, Z: 1}
	if got := b.MaxCrashes(Schedule{}, 1); got != 0 {
		t.Errorf("before any p0 step, p1 may crash %d times, want 0", got)
	}
	if got := b.MaxCrashes(Steps(0), 1); got != 2 {
		t.Errorf("after one p0 step, p1 may crash %d times, want 2", got)
	}
	if got := b.MaxCrashes(Schedule{Step(0), Crash(1)}, 1); got != 1 {
		t.Errorf("after one p0 step and one crash, MaxCrashes = %d, want 1", got)
	}
	if got := b.MaxCrashes(Steps(0), 0); got != 0 {
		t.Errorf("p0 may never crash, got %d", got)
	}
}

func TestBudgetValidate(t *testing.T) {
	if err := (Budget{N: 2, Z: 1}).Validate(); err != nil {
		t.Errorf("valid budget rejected: %v", err)
	}
	if err := (Budget{N: 0, Z: 1}).Validate(); err == nil {
		t.Error("N=0 accepted")
	}
	if err := (Budget{N: 2, Z: 0}).Validate(); err == nil {
		t.Error("Z=0 accepted")
	}
}
