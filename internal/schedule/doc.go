// Package schedule implements schedules and the schedule sets used by the
// paper's valency argument: S(P') (at most one step per process, no
// crashes) and the crash-budgeted execution sets E_z and E*_z of Section 3.
//
// A schedule is a sequence of events; each event is either a step by a
// process p_i or a crash c_i of process p_i. The schedule of an execution
// is the sequence of processes that take steps and crashes that occur in
// it (Section 2).
//
// Schedules are plain slices with value semantics; their String
// rendering is the paper's notation and is stable — violation traces and
// test goldens depend on it.
package schedule
