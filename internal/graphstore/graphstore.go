package graphstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/model"
)

// Magic is the 8-byte tag opening every graph-store file.
const Magic = "RPRGRAPH"

// Version is the newest file-format version this package writes. Files
// with a newer version are refused (not silently truncated): they hold
// valid data from a newer build, which must not be destroyed.
const Version = 1

const (
	// pageMaxRecords bounds the node records of one page; a spill larger
	// than this splits into several pages, each independently CRC'd.
	pageMaxRecords = 4096
	// maxPayload is the sanity cap on one page's payload length; a
	// corrupted length field beyond it reads as a torn page.
	maxPayload = 1 << 26
	// succNone encodes an absent successor reference (-1).
	succNone = ^uint32(0)
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Store is an open graph-store directory. It is safe for concurrent
// use; all file access is serialized internally. Construct with Open;
// the zero value is not usable.
type Store struct {
	dir string

	mu    sync.Mutex
	files map[string]*fileState
	stats Stats
}

// fileState tracks the durable good prefix of one key's file, the
// bookkeeping delta spills extend from.
type fileState struct {
	// nodes and dict count the node records and dictionary entries of the
	// good prefix; goodLen is its byte length.
	nodes   int
	dict    int
	goodLen int64
	// unexpanded holds the persisted indices whose records are not Done
	// yet; a spill completes them with in-place update records.
	unexpanded map[int]struct{}
	// fps mirrors the persisted nodes' 128-bit fingerprints, the prefix-
	// compatibility check for spills of graphs this process never loaded.
	fps []nodeID
	// bad marks a key whose file hit a write error or an incompatible
	// in-memory graph; further spills are skipped until the next Open.
	bad bool
}

type nodeID struct{ hi, lo uint64 }

// Stats counts a store's traffic since Open.
type Stats struct {
	// Loads counts successful warm loads; LoadedNodes their total node
	// records. Misses counts loads that found no file.
	Loads       uint64 `json:"loads"`
	LoadedNodes uint64 `json:"loadedNodes"`
	Misses      uint64 `json:"misses"`
	// Spills counts successful spills that wrote at least one page;
	// SpilledNodes their total node records (appends plus updates).
	Spills       uint64 `json:"spills"`
	SpilledNodes uint64 `json:"spilledNodes"`
	// Errors counts refused loads and failed or skipped-as-bad spills.
	Errors uint64 `json:"errors"`
}

// Open opens (creating if absent) the graph store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("graphstore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, files: make(map[string]*fileState)}, nil
}

// Dir returns the directory the store was opened with.
func (s *Store) Dir() string { return s.dir }

// Stats reports the store's traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// fileName maps a (fingerprint, inputs) key to its file. The
// fingerprint is already a 64-char hex string; inputs join with '_'
// after a "-in" separator, so distinct keys cannot collide.
func fileName(fp string, inputs []int) string {
	var b strings.Builder
	b.WriteString(fp)
	b.WriteString("-in")
	for i, in := range inputs {
		if i > 0 {
			b.WriteByte('_')
		}
		fmt.Fprintf(&b, "%d", in)
	}
	b.WriteString(".graph")
	return b.String()
}

func (s *Store) path(fp string, inputs []int) string {
	return filepath.Join(s.dir, fileName(fp, inputs))
}

// Load reads the good prefix of the key's file as a snapshot. A missing
// file is a miss: (nil, nil). A file with an alien header or a newer
// format version is an error, and the key is marked bad so spills never
// touch the foreign file. A corrupted tail silently shortens the
// snapshot — the caller imports whatever loaded and re-expands the
// rest.
func (s *Store) Load(fp string, inputs []int) (*model.GraphSnapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, st, err := s.load(fp, inputs)
	if err != nil {
		s.stats.Errors++
		s.files[fileName(fp, inputs)] = &fileState{bad: true}
		return nil, err
	}
	s.files[fileName(fp, inputs)] = st
	if snap == nil {
		s.stats.Misses++
		return nil, nil
	}
	s.stats.Loads++
	s.stats.LoadedNodes += uint64(len(snap.Nodes))
	return snap, nil
}

// load reads the file without touching counters or the state map;
// callers hold s.mu. A missing file returns (nil, zero-state, nil).
func (s *Store) load(fp string, inputs []int) (*model.GraphSnapshot, *fileState, error) {
	path := s.path(fp, inputs)
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, &fileState{unexpanded: make(map[int]struct{})}, nil
	}
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()

	hdr, hdrLen, err := readHeader(f, path)
	if err != nil {
		return nil, nil, err
	}
	st := &fileState{unexpanded: make(map[int]struct{})}
	if hdr == nil {
		// Torn header: nothing was ever durably stored. The next spill
		// rewrites the file from offset 0.
		return nil, st, nil
	}
	if err := hdr.matches(fp, inputs); err != nil {
		return nil, nil, fmt.Errorf("graphstore: %s: %w", path, err)
	}

	snap := &model.GraphSnapshot{
		Procs:   int(hdr.procs),
		Objects: int(hdr.objects),
		Inputs:  append([]int(nil), inputs...),
	}
	st.goodLen = hdrLen
	off := hdrLen
	var page []byte
	for {
		var pfx [8]byte
		if _, err := io.ReadFull(f, pfx[:]); err != nil {
			break // clean end or torn page-length prefix
		}
		plen := binary.LittleEndian.Uint32(pfx[0:4])
		want := binary.LittleEndian.Uint32(pfx[4:8])
		if plen == 0 || plen > maxPayload {
			break
		}
		if cap(page) < int(plen) {
			page = make([]byte, plen)
		}
		page = page[:plen]
		if _, err := io.ReadFull(f, page); err != nil {
			break
		}
		if crc32.Checksum(page, castagnoli) != want {
			break
		}
		if !applyPage(snap, st, page) {
			break
		}
		off += 8 + int64(plen)
		st.goodLen = off
	}
	if len(snap.Nodes) == 0 {
		// A bare header (or one whose first page tore) carries no nodes;
		// load it as a miss so the caller expands cold, but keep the
		// header's good prefix so the next spill appends after it.
		return nil, st, nil
	}
	return snap, st, nil
}

// header is the decoded file header.
type fileHeader struct {
	version uint32
	procs   uint32
	objects uint32
	fp      string
	inputs  []int32
}

func (h *fileHeader) matches(fp string, inputs []int) error {
	if h.fp != fp {
		return fmt.Errorf("file holds fingerprint %.12s…, key is %.12s…", h.fp, fp)
	}
	if len(h.inputs) != len(inputs) {
		return fmt.Errorf("file holds %d inputs, key has %d", len(h.inputs), len(inputs))
	}
	for i, in := range h.inputs {
		if int(in) != inputs[i] {
			return fmt.Errorf("file built for inputs %v, key is %v", h.inputs, inputs)
		}
	}
	return nil
}

// readHeader decodes and verifies the file header. A short (torn)
// header returns (nil, 0, nil): nothing durable. An alien magic or a
// newer version is an error — the file must not be truncated or
// overwritten. A checksum-failing header with our magic reads as torn:
// the file never held durable pages a truncation could destroy, because
// every write path makes the header durable before the first page.
func readHeader(f *os.File, path string) (*fileHeader, int64, error) {
	var fixed [24]byte
	if _, err := io.ReadFull(f, fixed[:]); err != nil {
		return nil, 0, nil
	}
	if string(fixed[0:8]) != Magic {
		return nil, 0, fmt.Errorf("graphstore: %s has no graph-store header (refusing to overwrite; move the file aside to start fresh)", path)
	}
	version := binary.LittleEndian.Uint32(fixed[8:12])
	if version > Version {
		return nil, 0, fmt.Errorf("graphstore: %s is format version %d, newer than this build's %d", path, version, Version)
	}
	h := &fileHeader{
		version: version,
		procs:   binary.LittleEndian.Uint32(fixed[12:16]),
		objects: binary.LittleEndian.Uint32(fixed[16:20]),
	}
	varLen := binary.LittleEndian.Uint32(fixed[20:24])
	if varLen > 1<<16 {
		return nil, 0, nil
	}
	varPart := make([]byte, varLen+4) // variable section + CRC
	if _, err := io.ReadFull(f, varPart); err != nil {
		return nil, 0, nil
	}
	crc := binary.LittleEndian.Uint32(varPart[varLen:])
	sum := crc32.Checksum(fixed[:], castagnoli)
	sum = crc32.Update(sum, castagnoli, varPart[:varLen])
	if sum != crc {
		return nil, 0, nil
	}
	v := varPart[:varLen]
	if len(v) < 2 {
		return nil, 0, nil
	}
	fpLen := int(binary.LittleEndian.Uint16(v[0:2]))
	v = v[2:]
	if len(v) < fpLen+2 {
		return nil, 0, nil
	}
	h.fp = string(v[:fpLen])
	v = v[fpLen:]
	nIn := int(binary.LittleEndian.Uint16(v[0:2]))
	v = v[2:]
	if len(v) != 4*nIn {
		return nil, 0, nil
	}
	for i := 0; i < nIn; i++ {
		h.inputs = append(h.inputs, int32(binary.LittleEndian.Uint32(v[4*i:])))
	}
	return h, 24 + int64(varLen) + 4, nil
}

// encodeHeader renders the header for (fp, inputs, procs, objects).
func encodeHeader(fp string, inputs []int, procs, objects int) []byte {
	var varPart []byte
	varPart = binary.LittleEndian.AppendUint16(varPart, uint16(len(fp)))
	varPart = append(varPart, fp...)
	varPart = binary.LittleEndian.AppendUint16(varPart, uint16(len(inputs)))
	for _, in := range inputs {
		varPart = binary.LittleEndian.AppendUint32(varPart, uint32(int32(in)))
	}
	out := make([]byte, 0, 24+len(varPart)+4)
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = binary.LittleEndian.AppendUint32(out, uint32(procs))
	out = binary.LittleEndian.AppendUint32(out, uint32(objects))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(varPart)))
	out = append(out, varPart...)
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, castagnoli))
}

// recordSize is the fixed width of one node record for the dimensions.
func recordSize(procs, objects int) int {
	return 4 + 16 + 4*procs + 4*objects + procs + procs + 1 + 4*procs + 4*procs
}

// applyPage parses one checksummed payload and applies it to the
// snapshot under construction. It is all-or-nothing: on any structural
// inconsistency it applies nothing and returns false, ending the scan
// at the previous page — so a loaded snapshot never holds a dangling
// successor reference from a half-applied batch.
func applyPage(snap *model.GraphSnapshot, st *fileState, page []byte) bool {
	procs, objects := snap.Procs, snap.Objects
	if len(page) < 4 {
		return false
	}
	nDict := int(binary.LittleEndian.Uint32(page[0:4]))
	page = page[4:]
	var newStates []string
	for i := 0; i < nDict; i++ {
		if len(page) < 2 {
			return false
		}
		slen := int(binary.LittleEndian.Uint16(page[0:2]))
		page = page[2:]
		if len(page) < slen {
			return false
		}
		newStates = append(newStates, string(page[:slen]))
		page = page[slen:]
	}
	if len(page) < 4 {
		return false
	}
	nRec := int(binary.LittleEndian.Uint32(page[0:4]))
	page = page[4:]
	rs := recordSize(procs, objects)
	if len(page) != nRec*rs {
		return false
	}

	type parsed struct {
		idx int
		nd  model.SnapshotNode
	}
	recs := make([]parsed, 0, nRec)
	dictLen := len(snap.States) + len(newStates)
	nodes := len(snap.Nodes)
	for r := 0; r < nRec; r++ {
		b := page[r*rs : (r+1)*rs]
		idx := int(binary.LittleEndian.Uint32(b[0:4]))
		if idx > nodes {
			return false
		}
		if idx == nodes {
			nodes++
		}
		nd := model.SnapshotNode{
			FPHi:      binary.LittleEndian.Uint64(b[4:12]),
			FPLo:      binary.LittleEndian.Uint64(b[12:20]),
			States:    make([]uint32, procs),
			Vals:      make([]int32, objects),
			Outs:      make([]int8, procs),
			Decided:   make([]int8, procs),
			StepSucc:  make([]int32, procs),
			CrashSucc: make([]int32, procs),
		}
		o := 20
		for p := 0; p < procs; p++ {
			sid := binary.LittleEndian.Uint32(b[o:])
			if int(sid) >= dictLen {
				return false
			}
			nd.States[p] = sid
			o += 4
		}
		for j := 0; j < objects; j++ {
			nd.Vals[j] = int32(binary.LittleEndian.Uint32(b[o:]))
			o += 4
		}
		for p := 0; p < procs; p++ {
			nd.Outs[p] = int8(b[o])
			o++
		}
		for p := 0; p < procs; p++ {
			nd.Decided[p] = int8(b[o])
			o++
		}
		nd.Done = b[o] != 0
		o++
		for p := 0; p < procs; p++ {
			v := binary.LittleEndian.Uint32(b[o:])
			if v == succNone {
				nd.StepSucc[p] = -1
			} else if v >= 1<<31 {
				return false
			} else {
				nd.StepSucc[p] = int32(v)
			}
			o += 4
		}
		for p := 0; p < procs; p++ {
			v := binary.LittleEndian.Uint32(b[o:])
			if v == succNone {
				nd.CrashSucc[p] = -1
			} else if v >= 1<<31 {
				return false
			} else {
				nd.CrashSucc[p] = int32(v)
			}
			o += 4
		}
		recs = append(recs, parsed{idx: idx, nd: nd})
	}

	// Whole page parsed: apply.
	snap.States = append(snap.States, newStates...)
	st.dict = len(snap.States)
	for _, r := range recs {
		id := nodeID{r.nd.FPHi, r.nd.FPLo}
		if r.idx == len(snap.Nodes) {
			snap.Nodes = append(snap.Nodes, r.nd)
			st.fps = append(st.fps, id)
		} else {
			snap.Nodes[r.idx] = r.nd
			st.fps[r.idx] = id
		}
		if r.nd.Done {
			delete(st.unexpanded, r.idx)
		} else {
			st.unexpanded[r.idx] = struct{}{}
		}
	}
	st.nodes = len(snap.Nodes)
	return true
}

// encodeRecord appends one node record for position idx.
func encodeRecord(dst []byte, idx int, nd *model.SnapshotNode) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(idx))
	dst = binary.LittleEndian.AppendUint64(dst, nd.FPHi)
	dst = binary.LittleEndian.AppendUint64(dst, nd.FPLo)
	for _, sid := range nd.States {
		dst = binary.LittleEndian.AppendUint32(dst, sid)
	}
	for _, v := range nd.Vals {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	for _, o := range nd.Outs {
		dst = append(dst, byte(o))
	}
	for _, d := range nd.Decided {
		dst = append(dst, byte(d))
	}
	if nd.Done {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	for _, si := range nd.StepSucc {
		if si < 0 {
			dst = binary.LittleEndian.AppendUint32(dst, succNone)
		} else {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(si))
		}
	}
	for _, ci := range nd.CrashSucc {
		if ci < 0 {
			dst = binary.LittleEndian.AppendUint32(dst, succNone)
		} else {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(ci))
		}
	}
	return dst
}

// Spill persists the snapshot's growth beyond the key's durable prefix:
// new dictionary entries, update records completing previously
// unexpanded nodes, and append records for new nodes, batched into
// CRC'd pages and fsynced. It returns the number of node records
// written (0 when the file is already current, the key is marked bad,
// or the snapshot is not an extension of the persisted prefix). A write
// error marks the key bad — later spills skip it — and is returned.
func (s *Store) Spill(fp string, inputs []int, snap *model.GraphSnapshot) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := fileName(fp, inputs)
	st, ok := s.files[key]
	if !ok {
		// First touch of this key in this process: establish the durable
		// prefix from the file (usually a miss; the file may exist if an
		// earlier process wrote it and this one expanded cold).
		_, fresh, err := s.load(fp, inputs)
		if err != nil {
			s.stats.Errors++
			s.files[key] = &fileState{bad: true}
			return 0, err
		}
		st = fresh
		s.files[key] = st
	}
	if st.bad {
		s.stats.Errors++
		return 0, nil
	}
	// The snapshot must extend the persisted prefix node for node. A
	// shorter snapshot (a concurrent export raced a longer spill) or a
	// fingerprint mismatch (the in-memory graph grew in a different
	// order, e.g. it never warm-loaded this file) is a safe no-op /
	// permanent skip respectively.
	if len(snap.Nodes) < st.nodes || len(snap.States) < st.dict {
		return 0, nil
	}
	for i, id := range st.fps {
		if snap.Nodes[i].FPHi != id.hi || snap.Nodes[i].FPLo != id.lo {
			st.bad = true
			s.stats.Errors++
			return 0, nil
		}
	}

	var updates []int
	for idx := range st.unexpanded {
		if snap.Nodes[idx].Done {
			updates = append(updates, idx)
		}
	}
	newDict := snap.States[st.dict:]
	appends := len(snap.Nodes) - st.nodes
	if len(updates) == 0 && appends == 0 && len(newDict) == 0 {
		return 0, nil
	}

	written, err := s.write(fp, inputs, snap, st, updates, newDict)
	if err != nil {
		st.bad = true
		s.stats.Errors++
		return 0, err
	}
	// Commit the new durable prefix.
	for _, idx := range updates {
		delete(st.unexpanded, idx)
	}
	for i := st.nodes; i < len(snap.Nodes); i++ {
		st.fps = append(st.fps, nodeID{snap.Nodes[i].FPHi, snap.Nodes[i].FPLo})
		if !snap.Nodes[i].Done {
			st.unexpanded[i] = struct{}{}
		}
	}
	st.nodes = len(snap.Nodes)
	st.dict = len(snap.States)
	s.stats.Spills++
	s.stats.SpilledNodes += uint64(written)
	return written, nil
}

// write performs the file I/O of one spill: truncate to the good
// prefix, (re)write the header if none is durable, append the delta
// pages, fsync, and advance goodLen.
func (s *Store) write(fp string, inputs []int, snap *model.GraphSnapshot, st *fileState, updates []int, newDict []string) (int, error) {
	f, err := os.OpenFile(s.path(fp, inputs), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if fi, err := f.Stat(); err != nil {
		return 0, err
	} else if fi.Size() != st.goodLen {
		if err := f.Truncate(st.goodLen); err != nil {
			return 0, err
		}
	}
	if _, err := f.Seek(st.goodLen, io.SeekStart); err != nil {
		return 0, err
	}
	var out []byte
	if st.goodLen == 0 {
		out = append(out, encodeHeader(fp, inputs, snap.Procs, snap.Objects)...)
	}

	// One record stream: updates first (they complete nodes already on
	// disk), then the new tail. The dictionary delta rides in the first
	// page; it must, because records in that page may reference it.
	type ref struct{ idx int }
	stream := make([]ref, 0, len(updates)+len(snap.Nodes)-st.nodes)
	for _, idx := range updates {
		stream = append(stream, ref{idx})
	}
	for i := st.nodes; i < len(snap.Nodes); i++ {
		stream = append(stream, ref{i})
	}
	written := 0
	for start := 0; start < len(stream) || (start == 0 && len(stream) == 0); start += pageMaxRecords {
		end := start + pageMaxRecords
		if end > len(stream) {
			end = len(stream)
		}
		var payload []byte
		if start == 0 {
			payload = binary.LittleEndian.AppendUint32(payload, uint32(len(newDict)))
			for _, str := range newDict {
				payload = binary.LittleEndian.AppendUint16(payload, uint16(len(str)))
				payload = append(payload, str...)
			}
		} else {
			payload = binary.LittleEndian.AppendUint32(payload, 0)
		}
		payload = binary.LittleEndian.AppendUint32(payload, uint32(end-start))
		for _, r := range stream[start:end] {
			payload = encodeRecord(payload, r.idx, &snap.Nodes[r.idx])
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
		out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
		out = append(out, payload...)
		written += end - start
		if len(stream) == 0 {
			break
		}
	}
	if _, err := f.Write(out); err != nil {
		return 0, err
	}
	if err := f.Sync(); err != nil {
		return 0, err
	}
	// The header (when freshly written) is part of out, so one advance
	// covers both.
	st.goodLen += int64(len(out))
	return written, nil
}
