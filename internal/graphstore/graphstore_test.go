package graphstore_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/graphstore"
	"repro/internal/model"
	"repro/internal/registry"
)

// walkObs projects a walk result onto its caller-observable fields; two
// graphs are interchangeable iff every walk agrees on these.
type walkObs struct {
	Nodes      int
	Truncated  bool
	Violations []string
}

func observe(r *model.Result) walkObs {
	out := walkObs{Nodes: r.Nodes, Truncated: r.Truncated}
	for _, v := range r.Violations {
		out.Violations = append(out.Violations,
			fmt.Sprintf("%s|%s|%s|%s", v.Kind, v.Trace, v.Config, v.Detail))
	}
	return out
}

// testProtocol returns a protocol, its fingerprint key, inputs, and the
// walk options the tests exercise (crash-free plus crash-budgeted).
func testProtocol(t *testing.T, desc string) (model.Protocol, string, []int, []model.CheckOpts) {
	t.Helper()
	pr, err := registry.ParseProtocol(desc)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := model.Fingerprint(pr)
	if err != nil {
		t.Fatal(err)
	}
	n := pr.Procs()
	inputs := make([]int, n)
	quota := make([]int, n)
	for p := range inputs {
		inputs[p] = p % 2
		quota[p] = 1
	}
	return pr, fp, inputs, []model.CheckOpts{
		{Inputs: inputs},
		{Inputs: inputs, CrashQuota: quota},
	}
}

// expand builds a graph and runs every walk, returning the graph and
// the expected observations.
func expand(t *testing.T, pr model.Protocol, inputs []int, walks []model.CheckOpts) (*model.Graph, []walkObs) {
	t.Helper()
	g, err := model.NewGraph(pr, inputs)
	if err != nil {
		t.Fatal(err)
	}
	var want []walkObs
	for _, opts := range walks {
		r, err := g.Check(opts)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, observe(r))
	}
	return g, want
}

// verifyWarm loads the key from the store, imports whatever loaded (or
// expands cold on miss/corruption), runs every walk, and requires the
// observations to match the fresh expansion — the "never a wrong
// answer" property every corruption test reduces to. It returns the
// number of nodes warm-loaded (0 = cold).
func verifyWarm(t *testing.T, s *graphstore.Store, pr model.Protocol, fp string, inputs []int, walks []model.CheckOpts, want []walkObs) int {
	t.Helper()
	g, err := model.NewGraph(pr, inputs)
	if err != nil {
		t.Fatal(err)
	}
	loaded := 0
	snap, err := s.Load(fp, inputs)
	if err == nil && snap != nil {
		if impErr := g.ImportSnapshot(snap); impErr == nil {
			loaded = len(snap.Nodes)
		} else {
			// A snapshot that passed the container CRCs but fails import
			// validation degrades to cold expansion.
			g, err = model.NewGraph(pr, inputs)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, opts := range walks {
		r, err := g.Check(opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := observe(r); !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("warm walk %d diverged from fresh expansion:\n got %+v\nwant %+v", i, got, want[i])
		}
	}
	return loaded
}

func storeFile(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("expected 1 store file, found %d", len(ents))
	}
	return filepath.Join(dir, ents[0].Name())
}

// TestStoreRoundTrip spills a fully expanded graph and requires the
// loaded snapshot to be byte-identical to the export, warm walks to
// match fresh ones with zero re-expansion, and a re-spill to be a
// no-op.
func TestStoreRoundTrip(t *testing.T) {
	for _, desc := range []string{"tnn-wf:3,2", "tnn-rec:3,2,2", "cas-wf:2", "cas-rec:2", "tas-reg"} {
		t.Run(desc, func(t *testing.T) {
			pr, fp, inputs, walks := testProtocol(t, desc)
			s, err := graphstore.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			g, want := expand(t, pr, inputs, walks)
			snap := g.Export()
			written, err := s.Spill(fp, inputs, snap)
			if err != nil {
				t.Fatal(err)
			}
			if written != len(snap.Nodes) {
				t.Fatalf("spilled %d of %d nodes", written, len(snap.Nodes))
			}
			got, err := s.Load(fp, inputs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, snap) {
				t.Fatal("loaded snapshot is not byte-identical to the export")
			}
			warm, err := model.NewGraph(pr, inputs)
			if err != nil {
				t.Fatal(err)
			}
			if err := warm.ImportSnapshot(got); err != nil {
				t.Fatal(err)
			}
			before := warm.Stats()
			for i, opts := range walks {
				r, err := warm.Check(opts)
				if err != nil {
					t.Fatal(err)
				}
				if o := observe(r); !reflect.DeepEqual(o, want[i]) {
					t.Fatalf("warm walk %d diverged", i)
				}
			}
			if after := warm.Stats(); after.Expanded != before.Expanded {
				t.Fatalf("warm walks expanded %d new nodes", after.Expanded-before.Expanded)
			}
			if again, err := s.Spill(fp, inputs, warm.Export()); err != nil || again != 0 {
				t.Fatalf("re-spill of a current file wrote %d records (err %v)", again, err)
			}
			st := s.Stats()
			if st.Spills != 1 || st.Loads != 1 || st.Errors != 0 {
				t.Fatalf("unexpected counters %+v", st)
			}
		})
	}
}

// TestStoreIncrementalSpill grows a file across three spills — a
// truncated walk first (leaving unexpanded frontier nodes on disk),
// then the full expansion — and requires the final load to equal the
// final export: appends and in-place completion records compose.
func TestStoreIncrementalSpill(t *testing.T) {
	pr, fp, inputs, walks := testProtocol(t, "cas-rec:2")
	s, err := graphstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g, err := model.NewGraph(pr, inputs)
	if err != nil {
		t.Fatal(err)
	}
	// A tiny node budget leaves interned-but-unexpanded frontier nodes.
	if _, err := g.Check(model.CheckOpts{Inputs: inputs, MaxNodes: 10}); err != nil {
		t.Fatal(err)
	}
	partial := g.Export()
	if partial.NumExpanded() == len(partial.Nodes) {
		t.Fatal("truncated walk left no unexpanded nodes; test needs a smaller budget")
	}
	if _, err := s.Spill(fp, inputs, partial); err != nil {
		t.Fatal(err)
	}

	var want []walkObs
	for _, opts := range walks {
		r, err := g.Check(opts)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, observe(r))
	}
	full := g.Export()
	written, err := s.Spill(fp, inputs, full)
	if err != nil {
		t.Fatal(err)
	}
	if written == 0 {
		t.Fatal("second spill wrote nothing")
	}
	got, err := s.Load(fp, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, full) {
		t.Fatal("incrementally spilled file does not load back to the full export")
	}
	if loaded := verifyWarm(t, s, pr, fp, inputs, walks, want); loaded != len(full.Nodes) {
		t.Fatalf("warm-loaded %d nodes, want %d", loaded, len(full.Nodes))
	}
}

// TestStoreTornFinalPage truncates the file at every byte length in a
// corpus of cuts and requires each truncation to degrade to a partial
// warm load or a cold expansion with correct answers — and the next
// spill to repair the file completely.
func TestStoreTornFinalPage(t *testing.T) {
	pr, fp, inputs, walks := testProtocol(t, "cas-wf:2")
	dir := t.TempDir()
	s, err := graphstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	g, want := expand(t, pr, inputs, walks)
	full := g.Export()
	if _, err := s.Spill(fp, inputs, full); err != nil {
		t.Fatal(err)
	}
	path := storeFile(t, dir)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cuts := []int{0, 1, 7, 8, 23, len(pristine) / 4, len(pristine) / 2, len(pristine) - 1}
	for step := 1; step < len(pristine); step += 97 {
		cuts = append(cuts, step)
	}
	for _, cut := range cuts {
		if cut < 0 || cut >= len(pristine) {
			continue
		}
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			if err := os.WriteFile(path, pristine[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			// A fresh store sees the torn file with no memory of it.
			s2, err := graphstore.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			loaded := verifyWarm(t, s2, pr, fp, inputs, walks, want)
			if loaded > len(full.Nodes) {
				t.Fatalf("torn file loaded %d nodes, more than were ever written", loaded)
			}
			// Repair: spill the full snapshot and require a byte-identical
			// reload.
			if _, err := s2.Spill(fp, inputs, full); err != nil {
				t.Fatalf("repair spill: %v", err)
			}
			got, err := s2.Load(fp, inputs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, full) {
				t.Fatal("repaired file does not load back to the full export")
			}
		})
	}
}

// TestStoreBitFlip flips single bits across the file and requires every
// corruption to be contained: the load either refuses, shortens to a
// good prefix, or the import rejects the record — and every walk still
// answers exactly like a fresh expansion.
func TestStoreBitFlip(t *testing.T) {
	pr, fp, inputs, walks := testProtocol(t, "cas-wf:2")
	dir := t.TempDir()
	s, err := graphstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	g, want := expand(t, pr, inputs, walks)
	if _, err := s.Spill(fp, inputs, g.Export()); err != nil {
		t.Fatal(err)
	}
	path := storeFile(t, dir)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	positions := []int{0, 3, 8, 12, 30, 60}
	for p := 0; p < len(pristine); p += 53 {
		positions = append(positions, p)
	}
	for _, pos := range positions {
		if pos >= len(pristine) {
			continue
		}
		for _, bit := range []uint{0, 6} {
			t.Run(fmt.Sprintf("pos=%d_bit=%d", pos, bit), func(t *testing.T) {
				mut := append([]byte(nil), pristine...)
				mut[pos] ^= 1 << bit
				if err := os.WriteFile(path, mut, 0o644); err != nil {
					t.Fatal(err)
				}
				s2, err := graphstore.Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				verifyWarm(t, s2, pr, fp, inputs, walks, want)
			})
		}
	}
	// Restore so TempDir cleanup isn't the only thing touching the file.
	if err := os.WriteFile(path, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestStoreRefusals: a missing file is a miss, an alien file and a
// newer-version file are errors and are never truncated or overwritten
// by subsequent spills.
func TestStoreRefusals(t *testing.T) {
	pr, fp, inputs, _ := testProtocol(t, "cas-wf:2")
	dir := t.TempDir()
	s, err := graphstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap, err := s.Load(fp, inputs); err != nil || snap != nil {
		t.Fatalf("missing file: snap=%v err=%v, want nil/nil", snap, err)
	}

	g, err := model.NewGraph(pr, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Check(model.CheckOpts{Inputs: inputs}); err != nil {
		t.Fatal(err)
	}

	// Alien file at the key's path.
	s2, err := graphstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fp+"-in0_1.graph")
	alien := []byte("this is not a graph-store file, hands off\n")
	if err := os.WriteFile(path, alien, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Load(fp, inputs); err == nil {
		t.Fatal("alien file loaded without error")
	}
	if n, _ := s2.Spill(fp, inputs, g.Export()); n != 0 {
		t.Fatalf("spill over an alien file wrote %d records", n)
	}
	if got, _ := os.ReadFile(path); !reflect.DeepEqual(got, alien) {
		t.Fatal("alien file was modified")
	}

	// Newer-version file: valid header bytes with a bumped version.
	s3, err := graphstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s3.Spill(fp, inputs, g.Export()); err != nil {
		t.Fatal(err)
	}
	newerPath := storeFile(t, s3.Dir())
	data, err := os.ReadFile(newerPath)
	if err != nil {
		t.Fatal(err)
	}
	data[8] = byte(graphstore.Version + 1) // little-endian version low byte
	if err := os.WriteFile(newerPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s4, err := graphstore.Open(s3.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s4.Load(fp, inputs); err == nil {
		t.Fatal("newer-version file loaded without error")
	}
	if n, _ := s4.Spill(fp, inputs, g.Export()); n != 0 {
		t.Fatal("spill over a newer-version file wrote records")
	}
	if got, _ := os.ReadFile(newerPath); !reflect.DeepEqual(got, data) {
		t.Fatal("newer-version file was modified")
	}
}
