package graphstore_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graphstore"
	"repro/internal/model"
	"repro/internal/registry"
)

// FuzzGraphstoreLoad hands the loader arbitrary file bytes for a fixed
// store key. The contract under test is the one the crash-recovery
// design leans on: Load returns the good prefix of whatever is on disk,
// or an error — it never panics, whatever a torn write, a bit flip, or
// an adversarial file put there. Seeds include a genuine Spill output
// and systematically damaged variants of it, so the fuzzer starts at
// the format's interesting boundaries instead of random noise.
func FuzzGraphstoreLoad(f *testing.F) {
	pr, err := registry.ParseProtocol("tas-reg")
	if err != nil {
		f.Fatal(err)
	}
	fp, err := model.Fingerprint(pr)
	if err != nil {
		f.Fatal(err)
	}
	inputs := []int{0, 1}
	dir := f.TempDir()
	s, err := graphstore.Open(dir)
	if err != nil {
		f.Fatal(err)
	}
	g, err := model.NewGraph(pr, inputs)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := g.Check(model.CheckOpts{Inputs: inputs}); err != nil {
		f.Fatal(err)
	}
	if _, err := s.Spill(fp, inputs, g.Export()); err != nil {
		f.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		f.Fatalf("expected 1 spilled file, got %d (err %v)", len(ents), err)
	}
	valid, err := os.ReadFile(filepath.Join(dir, ents[0].Name()))
	if err != nil {
		f.Fatal(err)
	}
	name := ents[0].Name()

	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-3])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add([]byte(graphstore.Magic))
	f.Add([]byte(strings.Repeat("A", 256)))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := graphstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := s.Load(fp, inputs)
		if err != nil {
			if snap != nil {
				t.Fatal("Load returned both a snapshot and an error")
			}
			return
		}
		if snap == nil {
			return // treated as a miss (e.g. empty / alien-but-benign file)
		}
		// Whatever prefix loaded must be importable-or-rejected, never a
		// crash, and an accepted import must support a full walk.
		warm, err := model.NewGraph(pr, inputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := warm.ImportSnapshot(snap); err != nil {
			return
		}
		if _, err := warm.Check(model.CheckOpts{Inputs: inputs}); err != nil {
			t.Fatalf("walk over imported good-prefix failed: %v", err)
		}
	})
}
