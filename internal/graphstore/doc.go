// Package graphstore persists expanded exploration graphs
// (internal/model.Graph) across process restarts, so a restarted reprod
// serves warm /v1/check traffic without re-expanding state spaces it
// already paid for.
//
// # Layout and identity
//
// A store owns one directory. Each (structural fingerprint, input
// vector) key — the same key engine.GraphCache uses — maps to one file,
// written as a checksummed binary header followed by append-only pages.
// Every page carries its own CRC-32C and holds a batch of fixed-width
// node records (128-bit node fingerprint, dictionary-indexed
// configuration, packed output-history/decision vectors, successor
// indices) plus the local-state dictionary entries the batch introduces.
// Node records refer to other nodes by intern-order position, and pages
// only ever append nodes or complete previously-unexpanded ones, so the
// file is a monotone log of model.GraphSnapshot growth.
//
// # Crash safety
//
// Load is a sequential scan with internal/store's corruption tolerance:
// it stops at the first torn or checksum-failing page and returns the
// good prefix, which is always a valid snapshot (pages apply
// all-or-nothing, so no successor reference can dangle). The next spill
// truncates the file to that good prefix before appending. A file whose
// header is torn loads as empty and is rewritten; a file with an alien
// header or a newer format version is refused outright — never
// truncated or overwritten. Records that pass the container checksums
// are verified once more on import (model.Graph.ImportSnapshot
// recomputes each node fingerprint), so a corrupted file degrades to a
// partial warm load or a clean re-expansion, never a wrong graph.
//
// # Concurrency and ownership
//
// A Store serializes all file access behind one mutex; Load and Spill
// may be called from any goroutine. The intended owner is
// engine.GraphCache, which loads on cache miss and spills snapshot
// deltas asynchronously after walks complete — walks never block on the
// disk. The store assumes it is the directory's only writer.
package graphstore
