package types

import (
	"fmt"

	"repro/internal/spec"
)

// Product composes two types into a single type whose objects behave as an
// independent pair: the value set is the Cartesian product of the component
// value sets, and the operation set is the disjoint union of the component
// operation sets, each acting on its own component.
//
// Product types model "a process may access several objects of different
// types" at the granularity of a single object, and are used by the
// robustness experiments (E7): by Theorems 13/14, the consensus and
// recoverable consensus power of Product(a, b) must not exceed the maximum
// power of a and b when both are readable and deterministic.
//
// Response disambiguation: responses of b's operations are offset by
// ProductRespOffset so they cannot collide with responses of a's
// operations. (Within the deciders only per-process response comparisons
// matter, but keeping them disjoint also makes traces unambiguous.)
func Product(a, b *spec.FiniteType) *spec.FiniteType {
	bld := spec.NewBuilder(fmt.Sprintf("product(%s,%s)", a.Name(), b.Name()))

	name := func(va, vb int) string {
		return "(" + a.ValueName(spec.Value(va)) + "," + b.ValueName(spec.Value(vb)) + ")"
	}
	for va := 0; va < a.NumValues(); va++ {
		for vb := 0; vb < b.NumValues(); vb++ {
			bld.Values(name(va, vb))
		}
	}
	for o := 0; o < a.NumOps(); o++ {
		bld.Ops("L." + a.OpName(spec.Op(o)))
	}
	for o := 0; o < b.NumOps(); o++ {
		bld.Ops("R." + b.OpName(spec.Op(o)))
	}

	for va := 0; va < a.NumValues(); va++ {
		for vb := 0; vb < b.NumValues(); vb++ {
			from := name(va, vb)
			for o := 0; o < a.NumOps(); o++ {
				e := a.Apply(spec.Value(va), spec.Op(o))
				bld.Transition(from, "L."+a.OpName(spec.Op(o)), e.Resp, name(int(e.Next), vb))
			}
			for o := 0; o < b.NumOps(); o++ {
				e := b.Apply(spec.Value(vb), spec.Op(o))
				bld.Transition(from, "R."+b.OpName(spec.Op(o)),
					ProductRespOffset+e.Resp, name(va, int(e.Next)))
			}
		}
	}
	return bld.MustBuild()
}

// ProductRespOffset is added to every response of the second component of a
// Product type to keep the two components' response spaces disjoint.
const ProductRespOffset spec.Response = 1 << 16
