package types

import (
	"testing"
	"testing/quick"

	"repro/internal/spec"
)

// zoo returns every constructor instance exercised by the generic tests.
func zoo() map[string]*spec.FiniteType {
	return map[string]*spec.FiniteType{
		"register":  Register(3),
		"tas":       TestAndSet(),
		"swap":      Swap(3),
		"faa":       FetchAdd(4),
		"cas":       CompareAndSwap(3),
		"sticky":    StickyBit(),
		"counter":   Counter(4),
		"maxreg":    MaxRegister(3),
		"queue":     Queue(2),
		"peekqueue": PeekQueue(2),
		"stack":     Stack(2),
		"trivial":   Trivial(),
		"tnn52":     Tnn(5, 2),
		"tnn21":     Tnn(2, 1),
		"product":   Product(TestAndSet(), Register(2)),
		"productQ":  Product(Queue(1), TestAndSet()),
		"productRR": Product(Register(2), Register(2)),
	}
}

func TestZooValidates(t *testing.T) {
	for name, ft := range zoo() {
		t.Run(name, func(t *testing.T) {
			if err := ft.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
		})
	}
}

func TestZooDeterminismProperty(t *testing.T) {
	// Applying the same operation to the same value always yields the same
	// effect; this is guaranteed structurally, so the property test checks
	// that repeated Apply calls are stable and in-range.
	for name, ft := range zoo() {
		ft := ft
		t.Run(name, func(t *testing.T) {
			f := func(v uint8, o uint8) bool {
				val := spec.Value(int(v) % ft.NumValues())
				op := spec.Op(int(o) % ft.NumOps())
				e1 := ft.Apply(val, op)
				e2 := ft.Apply(val, op)
				return e1 == e2 && int(e1.Next) >= 0 && int(e1.Next) < ft.NumValues()
			}
			if err := quick.Check(f, nil); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestReadabilityFlags(t *testing.T) {
	tests := []struct {
		name     string
		ft       *spec.FiniteType
		readable bool
	}{
		{"register", Register(2), true},
		{"tas", TestAndSet(), true},
		{"swap", Swap(2), true},
		{"faa", FetchAdd(3), true},
		{"cas", CompareAndSwap(2), true},
		{"sticky", StickyBit(), true},
		{"counter", Counter(3), true},
		{"maxreg", MaxRegister(3), true},
		{"queue", Queue(2), false},
		// A one-value type is vacuously readable: its no-op uniquely
		// identifies the only value.
		{"trivial", Trivial(), true},
		{"tnn", Tnn(5, 2), false},
		{"tnn42", Tnn(4, 2), false},
		// For n' = n-1 the destructive branch of opR is unreachable
		// (i <= n-1 = n'), so opR is a true Read and T_{n,n-1} is readable.
		{"tnn-min", Tnn(2, 1), true},
		{"tnn32", Tnn(3, 2), true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.ft.Readable(); got != tc.readable {
				t.Errorf("Readable() = %v, want %v", got, tc.readable)
			}
		})
	}
}

func TestRegisterSemantics(t *testing.T) {
	r := Register(3)
	w2, _ := r.OpByName("write2")
	read, _ := r.OpByName("read")
	e := r.Apply(0, w2)
	if e.Resp != RespOK {
		t.Errorf("write response = %d, want RespOK", e.Resp)
	}
	if got := r.ValueName(e.Next); got != "v2" {
		t.Errorf("after write2, value = %s, want v2", got)
	}
	e = r.Apply(e.Next, read)
	if got := r.ValueName(e.Next); got != "v2" {
		t.Errorf("read changed value to %s", got)
	}
}

func TestTASSemantics(t *testing.T) {
	ft := TestAndSet()
	tas, _ := ft.OpByName("TAS")
	if e := ft.Apply(0, tas); e.Resp != 0 || ft.ValueName(e.Next) != "1" {
		t.Errorf("first TAS: got resp=%d next=%s", e.Resp, ft.ValueName(e.Next))
	}
	if e := ft.Apply(1, tas); e.Resp != 1 || ft.ValueName(e.Next) != "1" {
		t.Errorf("second TAS: got resp=%d next=%s", e.Resp, ft.ValueName(e.Next))
	}
}

func TestSwapSemantics(t *testing.T) {
	s := Swap(3)
	swap1, _ := s.OpByName("swap1")
	swap2, _ := s.OpByName("swap2")
	e := s.Apply(0, swap1)
	if e.Resp != 0 {
		t.Errorf("swap1 on v0 returned %d, want 0", e.Resp)
	}
	e = s.Apply(e.Next, swap2)
	if e.Resp != 1 {
		t.Errorf("swap2 on v1 returned %d, want 1", e.Resp)
	}
	if s.ValueName(e.Next) != "v2" {
		t.Errorf("value after swap2 = %s", s.ValueName(e.Next))
	}
}

func TestFetchAddSemantics(t *testing.T) {
	f := FetchAdd(3)
	faa, _ := f.OpByName("FAA")
	v := spec.Value(0)
	for i := 0; i < 5; i++ {
		e := f.Apply(v, faa)
		if int(e.Resp) != i%3 {
			t.Errorf("FAA #%d returned %d, want %d", i, e.Resp, i%3)
		}
		v = e.Next
	}
}

func TestCASSemantics(t *testing.T) {
	c := CompareAndSwap(2)
	cas0, _ := c.OpByName("cas0")
	cas1, _ := c.OpByName("cas1")
	bot, _ := c.ValueByName("bot")

	e := c.Apply(bot, cas0)
	if e.Resp != 100 {
		t.Errorf("first CAS response = %d, want success(100)", e.Resp)
	}
	if c.ValueName(e.Next) != "v0" {
		t.Errorf("value after cas0 = %s", c.ValueName(e.Next))
	}
	e2 := c.Apply(e.Next, cas1)
	if e2.Resp != 200 {
		t.Errorf("losing CAS response = %d, want lost:v0(200)", e2.Resp)
	}
	if e2.Next != e.Next {
		t.Error("losing CAS changed the value")
	}
}

func TestStickyBitSemantics(t *testing.T) {
	s := StickyBit()
	set0, _ := s.OpByName("set0")
	set1, _ := s.OpByName("set1")
	bot, _ := s.ValueByName("bot")
	e := s.Apply(bot, set1)
	if e.Resp != 1 {
		t.Errorf("first set1 returned %d, want 1", e.Resp)
	}
	e2 := s.Apply(e.Next, set0)
	if e2.Resp != 1 || e2.Next != e.Next {
		t.Errorf("sticky bit moved: resp=%d next=%s", e2.Resp, s.ValueName(e2.Next))
	}
}

func TestCounterSaturates(t *testing.T) {
	c := Counter(3)
	inc, _ := c.OpByName("inc")
	v := spec.Value(0)
	for i := 0; i < 5; i++ {
		v = c.Apply(v, inc).Next
	}
	if c.ValueName(v) != "2" {
		t.Errorf("counter = %s, want saturated at 2", c.ValueName(v))
	}
}

func TestMaxRegisterSemantics(t *testing.T) {
	m := MaxRegister(4)
	w2, _ := m.OpByName("wmax2")
	w1, _ := m.OpByName("wmax1")
	v := m.Apply(0, w2).Next
	v = m.Apply(v, w1).Next // lower write must not reduce the value
	if m.ValueName(v) != "2" {
		t.Errorf("max register = %s, want 2", m.ValueName(v))
	}
}

func TestQueueSemantics(t *testing.T) {
	q := Queue(2)
	enq0, _ := q.OpByName("enq0")
	enq1, _ := q.OpByName("enq1")
	deq, _ := q.OpByName("deq")
	empty, _ := q.ValueByName("q")

	if e := q.Apply(empty, deq); e.Resp != 99 || e.Next != empty {
		t.Errorf("deq on empty: resp=%d", e.Resp)
	}
	v := q.Apply(empty, enq0).Next
	v = q.Apply(v, enq1).Next
	// Full: further enqueues drop.
	v2 := q.Apply(v, enq0).Next
	if v2 != v {
		t.Error("enqueue on full queue changed value")
	}
	e := q.Apply(v, deq)
	if e.Resp != 0 {
		t.Errorf("FIFO violated: deq returned %d, want 0", e.Resp)
	}
	e = q.Apply(e.Next, deq)
	if e.Resp != 1 {
		t.Errorf("FIFO violated: second deq returned %d, want 1", e.Resp)
	}
}

func TestPeekQueueSemantics(t *testing.T) {
	q := PeekQueue(2)
	if !q.Readable() {
		t.Fatal("peek-queue must be readable")
	}
	enq1, _ := q.OpByName("enq1")
	peek, _ := q.OpByName("peek")
	deq, _ := q.OpByName("deq")
	empty, _ := q.ValueByName("q")
	v := q.Apply(empty, enq1).Next
	e := q.Apply(v, peek)
	if e.Next != v {
		t.Error("peek changed the queue")
	}
	if e.Resp != RespReadBase+spec.Response(int(v)) {
		t.Errorf("peek response %d does not identify the value", e.Resp)
	}
	if e := q.Apply(v, deq); e.Resp != 1 || e.Next != empty {
		t.Errorf("deq after enq1: resp=%d", e.Resp)
	}
}

func TestStackLIFO(t *testing.T) {
	s := Stack(2)
	push0, _ := s.OpByName("push0")
	push1, _ := s.OpByName("push1")
	pop, _ := s.OpByName("pop")
	empty, _ := s.ValueByName("s")

	if e := s.Apply(empty, pop); e.Resp != 99 {
		t.Errorf("pop on empty: %d", e.Resp)
	}
	v := s.Apply(empty, push0).Next
	v = s.Apply(v, push1).Next
	// Full: drops.
	if e := s.Apply(v, push0); e.Next != v {
		t.Error("push on full stack changed value")
	}
	e := s.Apply(v, pop)
	if e.Resp != 1 {
		t.Errorf("LIFO violated: first pop = %d, want 1", e.Resp)
	}
	if e2 := s.Apply(e.Next, pop); e2.Resp != 0 {
		t.Errorf("LIFO violated: second pop = %d, want 0", e2.Resp)
	}
}

func TestConstructorPanics(t *testing.T) {
	tests := []struct {
		name string
		fn   func()
	}{
		{"register0", func() { Register(0) }},
		{"swap0", func() { Swap(0) }},
		{"faa1", func() { FetchAdd(1) }},
		{"cas1", func() { CompareAndSwap(1) }},
		{"counter1", func() { Counter(1) }},
		{"maxreg1", func() { MaxRegister(1) }},
		{"queue0", func() { Queue(0) }},
		{"queue5", func() { Queue(5) }},
		{"peekqueue0", func() { PeekQueue(0) }},
		{"stack9", func() { Stack(9) }},
		{"tnn equal", func() { Tnn(2, 2) }},
		{"tnn zero", func() { Tnn(1, 0) }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestProductIndependence(t *testing.T) {
	p := Product(TestAndSet(), Register(2))
	ltas, ok := p.OpByName("L.TAS")
	if !ok {
		t.Fatal("missing L.TAS")
	}
	rw1, ok := p.OpByName("R.write1")
	if !ok {
		t.Fatal("missing R.write1")
	}
	// Initial value is (0, v0) = index 0.
	e := p.Apply(0, ltas)
	if e.Resp != 0 {
		t.Errorf("L.TAS resp = %d, want 0", e.Resp)
	}
	e2 := p.Apply(e.Next, rw1)
	if e2.Resp != ProductRespOffset+RespOK {
		t.Errorf("R.write1 resp = %d, want offset+ok", e2.Resp)
	}
	if got := p.ValueName(e2.Next); got != "(1,v1)" {
		t.Errorf("value = %s, want (1,v1)", got)
	}
}

func TestProductSize(t *testing.T) {
	a, b := TestAndSet(), Register(2)
	p := Product(a, b)
	if got, want := p.NumValues(), a.NumValues()*b.NumValues(); got != want {
		t.Errorf("NumValues = %d, want %d", got, want)
	}
	if got, want := p.NumOps(), a.NumOps()+b.NumOps(); got != want {
		t.Errorf("NumOps = %d, want %d", got, want)
	}
}
