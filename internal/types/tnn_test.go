package types

import (
	"testing"

	"repro/internal/spec"
)

// TestTnnFigure3 checks the state machine of T_{5,2} transition-by-
// transition against Figure 3 of the paper (Experiment E1).
func TestTnnFigure3(t *testing.T) {
	ft := Tnn(5, 2)

	if got, want := ft.NumValues(), 10; got != want {
		t.Fatalf("T[5,2] has %d values, want 2n = %d", got, want)
	}
	if got, want := ft.NumOps(), 3; got != want {
		t.Fatalf("T[5,2] has %d ops, want %d", got, want)
	}

	op0, _ := ft.OpByName("op0")
	op1, _ := ft.OpByName("op1")
	opR, _ := ft.OpByName("opR")
	val := func(name string) spec.Value {
		v, ok := ft.ValueByName(name)
		if !ok {
			t.Fatalf("missing value %q", name)
		}
		return v
	}

	type want struct {
		from string
		op   spec.Op
		resp spec.Response
		next string
	}
	// The respRead helper mirrors the encoding used by Tnn: the read-like
	// responses identify the value read.
	respRead := func(name string) spec.Response {
		return RespReadBase + spec.Response(int(val(name)))
	}

	wants := []want{
		// Figure 3, center: op0/op1 from s.
		{"s", op0, TnnResp0, "s0,1"},
		{"s", op1, TnnResp1, "s1,1"},
		// opR on s returns s.
		{"s", opR, respRead("s"), "s"},
		// Chains: op0,op1 return x and advance.
		{"s0,1", op0, TnnResp0, "s0,2"},
		{"s0,1", op1, TnnResp0, "s0,2"},
		{"s0,2", op0, TnnResp0, "s0,3"},
		{"s0,3", op1, TnnResp0, "s0,4"},
		{"s0,4", op0, TnnResp0, "s_bot"},
		{"s0,4", op1, TnnResp0, "s_bot"},
		{"s1,1", op0, TnnResp1, "s1,2"},
		{"s1,2", op1, TnnResp1, "s1,3"},
		{"s1,3", op0, TnnResp1, "s1,4"},
		{"s1,4", op1, TnnResp1, "s_bot"},
		// opR is read-like for i <= n' = 2.
		{"s0,1", opR, respRead("s0,1"), "s0,1"},
		{"s0,2", opR, respRead("s0,2"), "s0,2"},
		{"s1,1", opR, respRead("s1,1"), "s1,1"},
		{"s1,2", opR, respRead("s1,2"), "s1,2"},
		// opR is destructive for i > n'.
		{"s0,3", opR, TnnRespBot, "s_bot"},
		{"s0,4", opR, TnnRespBot, "s_bot"},
		{"s1,3", opR, TnnRespBot, "s_bot"},
		{"s1,4", opR, TnnRespBot, "s_bot"},
		// s_bot absorbs everything with response bot.
		{"s_bot", op0, TnnRespBot, "s_bot"},
		{"s_bot", op1, TnnRespBot, "s_bot"},
		{"s_bot", opR, TnnRespBot, "s_bot"},
	}
	for _, w := range wants {
		e := ft.Apply(val(w.from), w.op)
		if e.Resp != w.resp || e.Next != val(w.next) {
			t.Errorf("%s --%s--> got (%s, %s), want (%s, %s)",
				w.from, ft.OpName(w.op),
				ft.RespName(e.Resp), ft.ValueName(e.Next),
				ft.RespName(w.resp), w.next)
		}
	}
}

// TestTnnFirstOpDeterminesResponses checks the property the wait-free
// algorithm relies on (Section 4): the first operation applied to a fresh
// object determines the responses of the next n-1 op0/op1 operations.
func TestTnnFirstOpDeterminesResponses(t *testing.T) {
	for _, params := range []struct{ n, np int }{{2, 1}, {3, 1}, {3, 2}, {5, 2}, {6, 4}} {
		ft := Tnn(params.n, params.np)
		op0, _ := ft.OpByName("op0")
		op1, _ := ft.OpByName("op1")
		s, _ := ft.ValueByName("s")
		for first, firstOp := range []spec.Op{op0, op1} {
			e := ft.Apply(s, firstOp)
			if int(e.Resp) != first {
				t.Errorf("T[%d,%d]: first %s returned %d, want %d",
					params.n, params.np, ft.OpName(firstOp), e.Resp, first)
			}
			v := e.Next
			for k := 2; k <= params.n; k++ {
				// Alternate op0/op1 to show the op identity is irrelevant.
				op := op0
				if k%2 == 0 {
					op = op1
				}
				e = ft.Apply(v, op)
				if int(e.Resp) != first {
					t.Errorf("T[%d,%d]: op #%d returned %d, want %d",
						params.n, params.np, k, e.Resp, first)
				}
				v = e.Next
			}
			if ft.ValueName(v) != "s_bot" {
				t.Errorf("T[%d,%d]: after n ops value = %s, want s_bot",
					params.n, params.np, ft.ValueName(v))
			}
			// Further ops return bot.
			if e := ft.Apply(v, op0); e.Resp != TnnRespBot {
				t.Errorf("op after exhaustion returned %d, want bot", e.Resp)
			}
		}
	}
}

// TestTnnValueHelpers checks the index helpers against ValueByName.
func TestTnnValueHelpers(t *testing.T) {
	for _, params := range []struct{ n, np int }{{2, 1}, {5, 2}, {4, 3}} {
		ft := Tnn(params.n, params.np)
		for x := 0; x <= 1; x++ {
			for i := 1; i <= params.n-1; i++ {
				want, ok := ft.ValueByName(TnnValueName(x, i))
				if !ok {
					t.Fatalf("T[%d,%d]: missing %s", params.n, params.np, TnnValueName(x, i))
				}
				if got := TnnValue(params.n, x, i); got != want {
					t.Errorf("TnnValue(%d,%d,%d) = %d, want %d", params.n, x, i, got, want)
				}
			}
		}
		want, _ := ft.ValueByName("s_bot")
		if got := TnnBot(params.n); got != want {
			t.Errorf("TnnBot(%d) = %d, want %d", params.n, got, want)
		}
	}
}

// TestTnnOpRDestructionThreshold checks that opR's behaviour switches
// exactly at i = n' for a sweep of (n, n') pairs.
func TestTnnOpRDestructionThreshold(t *testing.T) {
	for n := 2; n <= 6; n++ {
		for np := 1; np < n; np++ {
			ft := Tnn(n, np)
			opR, _ := ft.OpByName("opR")
			for x := 0; x <= 1; x++ {
				for i := 1; i <= n-1; i++ {
					v, _ := ft.ValueByName(TnnValueName(x, i))
					e := ft.Apply(v, opR)
					if i <= np {
						if e.Next != v {
							t.Errorf("T[%d,%d]: opR on s%d,%d should not move", n, np, x, i)
						}
						if e.Resp == TnnRespBot {
							t.Errorf("T[%d,%d]: opR on s%d,%d returned bot", n, np, x, i)
						}
					} else {
						if ft.ValueName(e.Next) != "s_bot" || e.Resp != TnnRespBot {
							t.Errorf("T[%d,%d]: opR on s%d,%d should destroy, got (%s,%s)",
								n, np, x, i, ft.RespName(e.Resp), ft.ValueName(e.Next))
						}
					}
				}
			}
		}
	}
}
