package types

import (
	"fmt"

	"repro/internal/spec"
)

// Responses of the T_{n,n'} family. Read-like responses of opR use
// RespReadBase + value index, so "opR returned value w" is encoded exactly
// like a Read response for w.
const (
	// TnnResp0 is returned by op0/op1 when the first operation applied to
	// the object was op0.
	TnnResp0 spec.Response = 0
	// TnnResp1 is returned by op0/op1 when the first operation applied to
	// the object was op1.
	TnnResp1 spec.Response = 1
	// TnnRespBot is the bottom response, returned once the object has been
	// exhausted (value s_bot) or when opR is applied to s_{x,i} with i > n'.
	TnnRespBot spec.Response = 3
)

// TnnValueName returns the paper's name for the values of T_{n,n'}:
// "s" (initial), "s_bot", and "s{x},{i}" for x in {0,1}, i in {1..n-1}.
func TnnValueName(x, i int) string { return fmt.Sprintf("s%d,%d", x, i) }

// Tnn constructs the type T_{n,n'} of Section 4 of the paper, defined for
// all n > n' >= 1. T_{n,n'} is deterministic and non-readable; the paper
// proves it has consensus number n (Lemma 15) and recoverable consensus
// number n' (Lemma 16).
//
// The type has 2n values: s, s_bot, and s_{x,i} for x in {0,1},
// i in {1..n-1}. It has three operations:
//
//   - op0 applied to s returns 0 and moves to s_{0,1}; op1 applied to s
//     returns 1 and moves to s_{1,1}.
//   - op0/op1 applied to s_{x,i} with i < n-1 return x and move to
//     s_{x,i+1}; applied to s_{x,n-1} they return x and move to s_bot.
//   - Any operation applied to s_bot returns bot and leaves the value.
//   - opR applied to s returns s; applied to s_{x,i} with i <= n' it
//     returns s_{x,i}; in both cases the value is unchanged. Applied to
//     s_{x,i} with i > n', opR returns bot and moves to s_bot — this
//     destructive read is what caps the recoverable consensus number.
//
// Figure 3 of the paper is the state machine of Tnn(5, 2).
//
// Note that for n' = n-1 the destructive branch of opR is unreachable
// (every counter value i <= n-1 = n' is read-like), so T_{n,n-1} happens to
// be readable; for n' < n-1 the type is non-readable, which is the regime
// Section 4 is about.
func Tnn(n, nPrime int) *spec.FiniteType {
	if n <= nPrime || nPrime < 1 {
		panic(fmt.Sprintf("Tnn: need n > n' >= 1, got n=%d n'=%d", n, nPrime))
	}
	b := spec.NewBuilder(fmt.Sprintf("T[%d,%d]", n, nPrime))

	// Values, in a fixed order: s, then s_{0,1..n-1}, then s_{1,1..n-1},
	// then s_bot.
	b.Values("s")
	for x := 0; x <= 1; x++ {
		for i := 1; i <= n-1; i++ {
			b.Values(TnnValueName(x, i))
		}
	}
	b.Values("s_bot")

	b.Ops("op0", "op1", "opR")
	b.NameResponse(TnnResp0, "0")
	b.NameResponse(TnnResp1, "1")
	b.NameResponse(TnnRespBot, "bot")

	// op0 and op1 from the initial value.
	b.Transition("s", "op0", TnnResp0, TnnValueName(0, 1))
	b.Transition("s", "op1", TnnResp1, TnnValueName(1, 1))

	// op0/op1 from s_{x,i}: return x, advance the counter (to s_bot from
	// s_{x,n-1}).
	for x := 0; x <= 1; x++ {
		resp := TnnResp0
		if x == 1 {
			resp = TnnResp1
		}
		for i := 1; i <= n-1; i++ {
			next := "s_bot"
			if i < n-1 {
				next = TnnValueName(x, i+1)
			}
			b.Transition(TnnValueName(x, i), "op0", resp, next)
			b.Transition(TnnValueName(x, i), "op1", resp, next)
		}
	}

	// Everything applied to s_bot returns bot and leaves the value.
	b.Transition("s_bot", "op0", TnnRespBot, "s_bot")
	b.Transition("s_bot", "op1", TnnRespBot, "s_bot")
	b.Transition("s_bot", "opR", TnnRespBot, "s_bot")

	// opR: read-like on s and on s_{x,i} with i <= n'; destructive on
	// s_{x,i} with i > n'. Read-like responses are encoded as
	// RespReadBase + value index so they uniquely identify the value read.
	readResp := func(valueName string, idx int) spec.Response {
		r := RespReadBase + spec.Response(idx)
		b.NameResponse(r, "read:"+valueName)
		return r
	}
	b.Transition("s", "opR", readResp("s", 0), "s")
	idx := 1
	for x := 0; x <= 1; x++ {
		for i := 1; i <= n-1; i++ {
			name := TnnValueName(x, i)
			if i <= nPrime {
				b.Transition(name, "opR", readResp(name, idx), name)
			} else {
				b.Transition(name, "opR", TnnRespBot, "s_bot")
			}
			idx++
		}
	}

	return b.MustBuild()
}

// TnnValue returns the spec.Value of a named T_{n,n'} state in the value
// ordering used by Tnn: s=0, then s_{0,1..n-1}, s_{1,1..n-1}, s_bot=2n-1.
func TnnValue(n, x, i int) spec.Value {
	// s_{x,i} with i in [1, n-1].
	return spec.Value(1 + x*(n-1) + (i - 1))
}

// TnnBot returns the spec.Value of s_bot for the given n.
func TnnBot(n int) spec.Value { return spec.Value(2*n - 1) }
