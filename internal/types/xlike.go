package types

import (
	"fmt"

	"repro/internal/spec"
)

// TnnReadable ("Y_n") is a readable cousin of T_{n,n'}: a first-team
// recording chain of length n-1 with a TRUE Read operation (no destructive
// opR). Its values are s, s_{x,i} (x in {0,1}, i in 1..n-1) and s_bot; its
// operations are op0, op1 and read:
//
//   - op_x on s returns x and moves to s_{x,1};
//   - op0/op1 on s_{x,i} return x and advance to s_{x,i+1}, erasing to
//     s_bot from s_{x,n-1};
//   - anything on s_bot returns bot and stays;
//   - read returns the current value and does not change it.
//
// The deciders certify (see internal/core tests and Experiment E9):
//
//   - n-discerning and not (n+1)-discerning, so by Ruppert's theorem its
//     consensus number is exactly n;
//   - (n-1)-recording and not n-recording, so by the paper's Theorem 14
//     its recoverable consensus number is exactly n-1.
//
// Y_n is therefore a readable, deterministic type whose recoverable
// consensus number is strictly below its consensus number — the readable
// counterpart of the paper's separation. (DFFR's X_n achieves the larger
// gap cons - rcons = 2; its definition appears in DFFR [4], not in this
// paper, so this repository certifies the gap-1 family exactly and hunts
// for gap-2 instances with cmd/xsearch — see DESIGN.md and EXPERIMENTS.md.)
// XFour is a readable deterministic type with consensus number exactly 4
// and recoverable consensus number exactly 2 — a concrete instance of the
// paper's corollary that "for all n >= 4 there exists a readable type with
// consensus number n and recoverable consensus number n-2" (here n = 4).
//
// The type was found by the randomized search in internal/xsearch
// (Sample(seed=1994, numValues=5)) and is frozen here as an explicit
// transition table. Its signature is certified by the deciders (see the
// E9 tests in internal/core):
//
//   - readable, 4-discerning, not 5-discerning  =>  cons = 4 (Ruppert);
//   - 2-recording, not 3-recording              =>  rcons = 2 (Theorem 14);
//
// and independently, not 3-recording plus DFFR's Theorem 5 (cons n >= 4
// implies (n-2)-recording) re-derives cons <= 4.
//
// Every (value, op) pair returns a distinct response (responses are the
// pair's index; read responses identify values). The interesting witness
// starts from value v4.
func XFour() *spec.FiniteType {
	b := spec.NewBuilder("X4")
	b.Values("v0", "v1", "v2", "v3", "v4")
	b.Ops("a", "b", "read")
	type tr struct {
		from, op string
		resp     spec.Response
		next     string
	}
	for _, t := range []tr{
		{"v0", "a", 0, "v4"},
		{"v0", "b", 1, "v0"},
		{"v1", "a", 2, "v0"},
		{"v1", "b", 3, "v1"},
		{"v2", "a", 4, "v3"},
		{"v2", "b", 5, "v4"},
		{"v3", "a", 6, "v3"},
		{"v3", "b", 7, "v2"},
		{"v4", "a", 8, "v3"},
		{"v4", "b", 9, "v1"},
	} {
		b.Transition(t.from, t.op, t.resp, t.next)
	}
	b.ReadOp("read", RespReadBase)
	return b.MustBuild()
}

// XFive is a readable deterministic type with consensus number exactly 5
// and recoverable consensus number exactly 3 — the paper's corollary
// instance for n = 5 (cons = n, rcons = n-2). Found by the randomized
// search in internal/xsearch (Sample(seed=17534, numValues=7)) and frozen
// here; the deciders certify 5-discerning, not 6-discerning, 3-recording,
// not 4-recording (see the E9 tests in internal/core).
func XFive() *spec.FiniteType {
	b := spec.NewBuilder("X5")
	b.Values("v0", "v1", "v2", "v3", "v4", "v5", "v6")
	b.Ops("a", "b", "read")
	type tr struct {
		from, op string
		resp     spec.Response
		next     string
	}
	for _, t := range []tr{
		{"v0", "a", 0, "v0"},
		{"v0", "b", 1, "v3"},
		{"v1", "a", 2, "v6"},
		{"v1", "b", 3, "v1"},
		{"v2", "a", 4, "v1"},
		{"v2", "b", 5, "v2"},
		{"v3", "a", 6, "v3"},
		{"v3", "b", 7, "v5"},
		{"v4", "a", 8, "v6"},
		{"v4", "b", 9, "v5"},
		{"v5", "a", 10, "v0"},
		{"v5", "b", 11, "v2"},
		{"v6", "a", 12, "v5"},
		{"v6", "b", 13, "v2"},
	} {
		b.Transition(t.from, t.op, t.resp, t.next)
	}
	b.ReadOp("read", RespReadBase)
	return b.MustBuild()
}

func TnnReadable(n int) *spec.FiniteType {
	if n < 2 {
		panic(fmt.Sprintf("TnnReadable: need n >= 2, got %d", n))
	}
	b := spec.NewBuilder(fmt.Sprintf("Y[%d]", n))

	b.Values("s")
	for x := 0; x <= 1; x++ {
		for i := 1; i <= n-1; i++ {
			b.Values(TnnValueName(x, i))
		}
	}
	b.Values("s_bot")

	b.Ops("op0", "op1", "read")
	b.NameResponse(TnnResp0, "0")
	b.NameResponse(TnnResp1, "1")
	b.NameResponse(TnnRespBot, "bot")

	b.Transition("s", "op0", TnnResp0, TnnValueName(0, 1))
	b.Transition("s", "op1", TnnResp1, TnnValueName(1, 1))
	for x := 0; x <= 1; x++ {
		resp := TnnResp0
		if x == 1 {
			resp = TnnResp1
		}
		for i := 1; i <= n-1; i++ {
			next := "s_bot"
			if i < n-1 {
				next = TnnValueName(x, i+1)
			}
			b.Transition(TnnValueName(x, i), "op0", resp, next)
			b.Transition(TnnValueName(x, i), "op1", resp, next)
		}
	}
	b.Transition("s_bot", "op0", TnnRespBot, "s_bot")
	b.Transition("s_bot", "op1", TnnRespBot, "s_bot")
	b.ReadOp("read", RespReadBase)

	return b.MustBuild()
}
