package types

import "testing"

func TestTnnReadableStructure(t *testing.T) {
	for n := 2; n <= 5; n++ {
		ft := TnnReadable(n)
		if err := ft.Validate(); err != nil {
			t.Errorf("Y[%d]: %v", n, err)
		}
		if !ft.Readable() {
			t.Errorf("Y[%d] must be readable", n)
		}
		if got, want := ft.NumValues(), 2*n; got != want {
			t.Errorf("Y[%d] has %d values, want %d", n, got, want)
		}
	}
}

func TestTnnReadableChains(t *testing.T) {
	ft := TnnReadable(4)
	op0, _ := ft.OpByName("op0")
	op1, _ := ft.OpByName("op1")
	s, _ := ft.ValueByName("s")

	// First op1 fixes the team to 1; three more ops exhaust to s_bot.
	e := ft.Apply(s, op1)
	if e.Resp != TnnResp1 {
		t.Errorf("first op1 returned %d", e.Resp)
	}
	v := e.Next
	for i := 0; i < 3; i++ {
		e = ft.Apply(v, op0)
		if e.Resp != TnnResp1 {
			t.Errorf("op #%d returned %d, want 1", i+2, e.Resp)
		}
		v = e.Next
	}
	if ft.ValueName(v) != "s_bot" {
		t.Errorf("after n ops value = %s", ft.ValueName(v))
	}
	if e := ft.Apply(v, op1); e.Resp != TnnRespBot {
		t.Errorf("op on s_bot returned %d", e.Resp)
	}
}

func TestTnnReadablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n=1")
		}
	}()
	TnnReadable(1)
}
