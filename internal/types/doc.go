// Package types provides the zoo of deterministic object types used
// throughout the reproduction: classical types (registers, test-and-set,
// swap, fetch-and-add, compare-and-swap, queues, sticky bits, counters),
// the paper's non-readable family T_{n,n'} (Section 4), and a readable
// family XLike(n) with the discerning/recording spectrum of DFFR's X_n.
//
// Every constructor returns a *spec.FiniteType whose transition table is
// total and deterministic (enforced by the spec.Builder). Constructors
// are pure: equal parameters produce structurally identical types with
// equal fingerprints, which is what lets the decision cache and the
// persistent store recognize them across calls and processes.
package types
