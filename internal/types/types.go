package types

import (
	"fmt"

	"repro/internal/spec"
)

// Response code conventions shared by the zoo. Each constructor documents
// its own responses; the constants below are the common ones.
const (
	// RespOK is returned by operations whose response carries no
	// information (e.g. a register Write).
	RespOK spec.Response = 1000
	// RespReadBase is the base response code used for Read responses:
	// reading a value with index i returns RespReadBase + i.
	RespReadBase spec.Response = 2000
)

// Register returns a readable read/write register over k values
// ("v0"..."v{k-1}"), with Write_i operations (response RespOK) and a Read
// operation. Registers have consensus number 1.
func Register(k int) *spec.FiniteType {
	if k < 1 {
		panic(fmt.Sprintf("Register: need k >= 1, got %d", k))
	}
	b := spec.NewBuilder(fmt.Sprintf("register[%d]", k))
	names := make([]string, k)
	for i := range names {
		names[i] = fmt.Sprintf("v%d", i)
	}
	b.Values(names...)
	for i := 0; i < k; i++ {
		b.Ops(fmt.Sprintf("write%d", i))
	}
	b.Ops("read")
	b.NameResponse(RespOK, "ok")
	for _, from := range names {
		for i := 0; i < k; i++ {
			b.Transition(from, fmt.Sprintf("write%d", i), RespOK, names[i])
		}
	}
	b.ReadOp("read", RespReadBase)
	return b.MustBuild()
}

// TestAndSet returns a readable test-and-set bit: TAS returns the old value
// (0 or 1) and sets the bit; Read returns the current value. Test-and-set
// has consensus number 2 (Herlihy) and recoverable consensus number 1
// (Golab): it is 2-discerning but not 2-recording.
func TestAndSet() *spec.FiniteType {
	b := spec.NewBuilder("test-and-set")
	b.Values("0", "1")
	b.Ops("TAS", "read")
	b.NameResponse(0, "0")
	b.NameResponse(1, "1")
	b.Transition("0", "TAS", 0, "1")
	b.Transition("1", "TAS", 1, "1")
	b.ReadOp("read", RespReadBase)
	return b.MustBuild()
}

// Swap returns a readable swap object over k values: Swap_i writes value i
// and returns the old value's index; Read returns the current value. Swap
// has consensus number 2.
func Swap(k int) *spec.FiniteType {
	if k < 1 {
		panic(fmt.Sprintf("Swap: need k >= 1, got %d", k))
	}
	b := spec.NewBuilder(fmt.Sprintf("swap[%d]", k))
	names := make([]string, k)
	for i := range names {
		names[i] = fmt.Sprintf("v%d", i)
	}
	b.Values(names...)
	for i := 0; i < k; i++ {
		b.Ops(fmt.Sprintf("swap%d", i))
	}
	b.Ops("read")
	for from := 0; from < k; from++ {
		for i := 0; i < k; i++ {
			b.Transition(names[from], fmt.Sprintf("swap%d", i), spec.Response(from), names[i])
		}
	}
	b.ReadOp("read", RespReadBase)
	return b.MustBuild()
}

// FetchAdd returns a readable fetch-and-add object over Z_m: FAA returns
// the old value and increments modulo m; Read returns the current value.
// Fetch-and-add has consensus number 2.
func FetchAdd(m int) *spec.FiniteType {
	if m < 2 {
		panic(fmt.Sprintf("FetchAdd: need modulus >= 2, got %d", m))
	}
	b := spec.NewBuilder(fmt.Sprintf("fetch-and-add[%d]", m))
	names := make([]string, m)
	for i := range names {
		names[i] = fmt.Sprintf("%d", i)
	}
	b.Values(names...)
	b.Ops("FAA", "read")
	for v := 0; v < m; v++ {
		b.Transition(names[v], "FAA", spec.Response(v), names[(v+1)%m])
	}
	b.ReadOp("read", RespReadBase)
	return b.MustBuild()
}

// CompareAndSwap returns a readable compare-and-swap object over the values
// {bot, v0, ..., v{k-1}}. CAS_i succeeds (response 1, value becomes vi) if
// the current value is bot, and otherwise fails, returning a response that
// identifies the current value. Read returns the current value.
// Compare-and-swap is n-discerning and n-recording for every n, so it has
// unbounded consensus number and unbounded recoverable consensus number.
func CompareAndSwap(k int) *spec.FiniteType {
	if k < 2 {
		panic(fmt.Sprintf("CompareAndSwap: need k >= 2 proposal values, got %d", k))
	}
	b := spec.NewBuilder(fmt.Sprintf("compare-and-swap[%d]", k))
	names := make([]string, 0, k+1)
	names = append(names, "bot")
	for i := 0; i < k; i++ {
		names = append(names, fmt.Sprintf("v%d", i))
	}
	b.Values(names...)
	for i := 0; i < k; i++ {
		b.Ops(fmt.Sprintf("cas%d", i))
	}
	b.Ops("read")
	// Response conventions: a successful CAS returns 100; a failed CAS
	// returns 200 + index of the value that was already installed.
	b.NameResponse(100, "success")
	for i := 0; i < k; i++ {
		b.NameResponse(200+spec.Response(i), "lost:"+names[i+1])
	}
	for i := 0; i < k; i++ {
		op := fmt.Sprintf("cas%d", i)
		b.Transition("bot", op, 100, names[i+1])
		for j := 0; j < k; j++ {
			b.Transition(names[j+1], op, 200+spec.Response(j), names[j+1])
		}
	}
	b.ReadOp("read", RespReadBase)
	return b.MustBuild()
}

// StickyBit returns a readable sticky bit: the first Set_i operation fixes
// the value to i; later Set operations return the fixed value and leave it
// unchanged. Read returns the current value. Sticky bits are n-discerning
// and n-recording for every n.
func StickyBit() *spec.FiniteType {
	b := spec.NewBuilder("sticky-bit")
	b.Values("bot", "0", "1")
	b.Ops("set0", "set1", "read")
	b.NameResponse(0, "stuck:0")
	b.NameResponse(1, "stuck:1")
	b.Transition("bot", "set0", 0, "0")
	b.Transition("bot", "set1", 1, "1")
	for _, v := range []string{"0", "1"} {
		r := spec.Response(0)
		if v == "1" {
			r = 1
		}
		b.Transition(v, "set0", r, v)
		b.Transition(v, "set1", r, v)
	}
	b.ReadOp("read", RespReadBase)
	return b.MustBuild()
}

// Counter returns a readable bounded counter over {0..m-1}: Inc increments
// (saturating at m-1) and returns RespOK (no information), Read returns the
// current value. Counters with uninformative Inc have consensus number 1.
func Counter(m int) *spec.FiniteType {
	if m < 2 {
		panic(fmt.Sprintf("Counter: need bound >= 2, got %d", m))
	}
	b := spec.NewBuilder(fmt.Sprintf("counter[%d]", m))
	names := make([]string, m)
	for i := range names {
		names[i] = fmt.Sprintf("%d", i)
	}
	b.Values(names...)
	b.Ops("inc", "read")
	b.NameResponse(RespOK, "ok")
	for v := 0; v < m; v++ {
		next := v + 1
		if next >= m {
			next = m - 1
		}
		b.Transition(names[v], "inc", RespOK, names[next])
	}
	b.ReadOp("read", RespReadBase)
	return b.MustBuild()
}

// MaxRegister returns a readable max-register over {0..m-1}: WriteMax_i
// raises the value to max(current, i) and returns RespOK; Read returns the
// current value. Max-registers have consensus number 1.
func MaxRegister(m int) *spec.FiniteType {
	if m < 2 {
		panic(fmt.Sprintf("MaxRegister: need bound >= 2, got %d", m))
	}
	b := spec.NewBuilder(fmt.Sprintf("max-register[%d]", m))
	names := make([]string, m)
	for i := range names {
		names[i] = fmt.Sprintf("%d", i)
	}
	b.Values(names...)
	for i := 0; i < m; i++ {
		b.Ops(fmt.Sprintf("wmax%d", i))
	}
	b.Ops("read")
	b.NameResponse(RespOK, "ok")
	for v := 0; v < m; v++ {
		for i := 0; i < m; i++ {
			next := v
			if i > v {
				next = i
			}
			b.Transition(names[v], fmt.Sprintf("wmax%d", i), RespOK, names[next])
		}
	}
	b.ReadOp("read", RespReadBase)
	return b.MustBuild()
}

// Queue returns a bounded FIFO queue holding at most cap elements from
// {0, 1}. Enq_i appends i (response RespOK; full queues drop the element),
// Deq removes and returns the head (response 0 or 1; empty queues return
// response 99). The queue is not readable (Deq mutates; Enq is
// uninformative). Queues have consensus number 2.
func Queue(capacity int) *spec.FiniteType {
	if capacity < 1 || capacity > 4 {
		panic(fmt.Sprintf("Queue: capacity must be in [1,4], got %d", capacity))
	}
	b := spec.NewBuilder(fmt.Sprintf("queue[%d]", capacity))
	// Values are queue contents as strings over {0,1}, length <= capacity.
	var states []string
	var gen func(prefix string)
	gen = func(prefix string) {
		states = append(states, "q"+prefix)
		if len(prefix) == capacity {
			return
		}
		gen(prefix + "0")
		gen(prefix + "1")
	}
	gen("")
	b.Values(states...)
	b.Ops("enq0", "enq1", "deq")
	b.NameResponse(RespOK, "ok")
	b.NameResponse(99, "empty")
	b.NameResponse(0, "0")
	b.NameResponse(1, "1")
	for _, st := range states {
		contents := st[1:]
		for i := 0; i < 2; i++ {
			next := st
			if len(contents) < capacity {
				next = st + fmt.Sprintf("%d", i)
			}
			b.Transition(st, fmt.Sprintf("enq%d", i), RespOK, next)
		}
		if len(contents) == 0 {
			b.Transition(st, "deq", 99, st)
		} else {
			head := spec.Response(contents[0] - '0')
			b.Transition(st, "deq", head, "q"+contents[1:])
		}
	}
	return b.MustBuild()
}

// PeekQueue returns the bounded FIFO queue augmented with a Peek
// operation that returns the entire queue contents without changing them
// — which makes the type readable. Herlihy showed the augmented queue has
// unbounded consensus number; the deciders confirm it is n-discerning and
// n-recording at every tested n (the head of the queue records the first
// enqueuer forever and Peek makes it observable).
func PeekQueue(capacity int) *spec.FiniteType {
	if capacity < 1 || capacity > 4 {
		panic(fmt.Sprintf("PeekQueue: capacity must be in [1,4], got %d", capacity))
	}
	b := spec.NewBuilder(fmt.Sprintf("peek-queue[%d]", capacity))
	var states []string
	var gen func(prefix string)
	gen = func(prefix string) {
		states = append(states, "q"+prefix)
		if len(prefix) == capacity {
			return
		}
		gen(prefix + "0")
		gen(prefix + "1")
	}
	gen("")
	b.Values(states...)
	b.Ops("enq0", "enq1", "deq", "peek")
	b.NameResponse(RespOK, "ok")
	b.NameResponse(99, "empty")
	b.NameResponse(0, "0")
	b.NameResponse(1, "1")
	for _, st := range states {
		contents := st[1:]
		for i := 0; i < 2; i++ {
			next := st
			if len(contents) < capacity {
				next = st + fmt.Sprintf("%d", i)
			}
			b.Transition(st, fmt.Sprintf("enq%d", i), RespOK, next)
		}
		if len(contents) == 0 {
			b.Transition(st, "deq", 99, st)
		} else {
			head := spec.Response(contents[0] - '0')
			b.Transition(st, "deq", head, "q"+contents[1:])
		}
	}
	b.ReadOp("peek", RespReadBase)
	return b.MustBuild()
}

// Stack returns a bounded LIFO stack holding at most cap elements from
// {0, 1}: Push_i (response RespOK; full stacks drop), Pop removes and
// returns the top (response 0 or 1; empty stacks return 99). Like the
// queue it is non-readable; stacks have consensus number 2.
func Stack(capacity int) *spec.FiniteType {
	if capacity < 1 || capacity > 4 {
		panic(fmt.Sprintf("Stack: capacity must be in [1,4], got %d", capacity))
	}
	b := spec.NewBuilder(fmt.Sprintf("stack[%d]", capacity))
	var states []string
	var gen func(prefix string)
	gen = func(prefix string) {
		states = append(states, "s"+prefix)
		if len(prefix) == capacity {
			return
		}
		gen(prefix + "0")
		gen(prefix + "1")
	}
	gen("")
	b.Values(states...)
	b.Ops("push0", "push1", "pop")
	b.NameResponse(RespOK, "ok")
	b.NameResponse(99, "empty")
	b.NameResponse(0, "0")
	b.NameResponse(1, "1")
	for _, st := range states {
		contents := st[1:]
		for i := 0; i < 2; i++ {
			next := st
			if len(contents) < capacity {
				next = st + fmt.Sprintf("%d", i)
			}
			b.Transition(st, fmt.Sprintf("push%d", i), RespOK, next)
		}
		if len(contents) == 0 {
			b.Transition(st, "pop", 99, st)
		} else {
			top := spec.Response(contents[len(contents)-1] - '0')
			b.Transition(st, "pop", top, "s"+contents[:len(contents)-1])
		}
	}
	return b.MustBuild()
}

// Trivial returns a one-value type whose single operation does nothing.
// It is not n-discerning or n-recording for any n >= 2. (It is vacuously
// readable: with a single value, the no-op identifies it.)
func Trivial() *spec.FiniteType {
	b := spec.NewBuilder("trivial")
	b.Values("v")
	b.Ops("noop")
	b.NameResponse(RespOK, "ok")
	b.Transition("v", "noop", RespOK, "v")
	return b.MustBuild()
}
