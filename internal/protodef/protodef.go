package protodef

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/model"
	"repro/internal/spec"
)

// Budgets for user-submitted descriptors. A descriptor is data from an
// untrusted client; every dimension that feeds the compiler or the model
// checker is bounded so one submission cannot demand unbounded work.
const (
	// MaxProcs bounds the process count (state spaces are exponential
	// in it).
	MaxProcs = 8
	// MaxTypes bounds the object-type definitions of one descriptor.
	MaxTypes = 8
	// MaxValues and MaxOps bound one type's value/operation tables.
	MaxValues = 64
	MaxOps    = 64
	// MaxObjects bounds the shared objects of one descriptor.
	MaxObjects = 8
	// MaxStates bounds one machine's local states.
	MaxStates = 1024
	// MaxOutputs bounds the output alphabet (decisions are indices
	// [0, Outputs)).
	MaxOutputs = 16
	// MaxNameLen bounds every name in a descriptor (protocol, type,
	// value, op, response, state).
	MaxNameLen = 128
)

// Descriptor is the JSON protocol-definition format: a complete
// state-machine description of a consensus protocol — object types as
// transition tables, shared objects with initial values, and one local
// state machine per process (or one shared by all). It is everything
// model.Protocol expresses, as data instead of code.
//
// Responses are named strings scoped to their type; the compiler interns
// them to dense spec.Response integers in first-appearance order, so two
// operations returning the same response name return the same response.
type Descriptor struct {
	// Name labels the compiled protocol in reports. It never enters the
	// structural fingerprint.
	Name string `json:"name"`
	// Procs is the process count.
	Procs int `json:"procs"`
	// Outputs is the size of the output alphabet; decisions must lie in
	// [0, Outputs). 0 defaults to 2 (binary consensus).
	Outputs int `json:"outputs,omitempty"`
	// Types defines the object types used by Objects.
	Types []TypeDef `json:"types"`
	// Objects declares the shared objects: a type reference plus the
	// initial value.
	Objects []ObjectDef `json:"objects"`
	// Machines holds the per-process local state machines. Exactly one
	// machine is shared by every process; otherwise len(Machines) must
	// equal Procs.
	Machines []MachineDef `json:"machines"`
}

// TypeDef defines one finite object type as a named transition table.
type TypeDef struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
	Ops    []OpDef  `json:"ops"`
}

// OpDef defines one operation: for every value of the type, the response
// returned and the successor value. The table must be total.
type OpDef struct {
	Name string `json:"name"`
	// Transitions must cover every value exactly once.
	Transitions []TransitionDef `json:"transitions"`
}

// TransitionDef is one cell of an operation's column: applying the
// operation to From returns Resp and moves the object to To.
type TransitionDef struct {
	From string `json:"from"`
	Resp string `json:"resp"`
	To   string `json:"to"`
}

// ObjectDef declares one shared object.
type ObjectDef struct {
	// Type names a TypeDef.
	Type string `json:"type"`
	// Init names the initial value.
	Init string `json:"init"`
}

// MachineDef is one process's local state machine.
type MachineDef struct {
	// Init names the initial states for consensus inputs 0 and 1 (two
	// entries; they may coincide).
	Init []string `json:"init"`
	// States lists the machine's states. Every state reachable from the
	// initial states must be defined.
	States []StateDef `json:"states"`
}

// StateDef is one local state: either a decision (Decide non-nil) or a
// pending operation (Apply non-nil) with a response-keyed successor map.
type StateDef struct {
	Name string `json:"name"`
	// Decide, when set, makes this an output state deciding *Decide.
	Decide *int `json:"decide,omitempty"`
	// Apply, when set, is the pending operation.
	Apply *ApplyDef `json:"apply,omitempty"`
	// Next maps response names of the applied operation to successor
	// state names. The reserved key "*" is a fallback for responses not
	// listed explicitly. Together they must cover every response the
	// operation can return.
	Next map[string]string `json:"next,omitempty"`
}

// ApplyDef identifies a pending operation: object index and operation
// name on that object's type.
type ApplyDef struct {
	Obj int    `json:"obj"`
	Op  string `json:"op"`
}

// Parse decodes and compiles a JSON descriptor in one step, rejecting
// unknown fields so client typos surface instead of silently defaulting.
func Parse(data []byte) (*Compiled, error) {
	var d Descriptor
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("protodef: decode: %w", err)
	}
	return Compile(&d)
}

// Compiled is a descriptor compiled into an executable protocol. It
// implements model.Protocol; local states are the descriptor's state
// names, so traces and violation reports read in the author's
// vocabulary.
type Compiled struct {
	name    string
	procs   int
	outputs int
	objects []model.ObjectSpec
	// machines[p] is process p's state machine (shared machines are
	// replicated by pointer).
	machines []*cmachine
	// src is the validated descriptor the protocol was compiled from,
	// kept for introspection (GET /v1/protocols/{fingerprint}).
	src *Descriptor
}

var _ model.Protocol = (*Compiled)(nil)

// cmachine is one compiled local state machine.
type cmachine struct {
	init   [2]string
	states map[string]*cstate
}

// cstate is one compiled local state.
type cstate struct {
	decided  bool
	decision int
	obj      int
	op       spec.Op
	next     map[spec.Response]string
	fallback string // "*" successor; "" when none
	hasFall  bool
}

// Name implements model.Protocol.
func (c *Compiled) Name() string { return c.name }

// Procs implements model.Protocol.
func (c *Compiled) Procs() int { return c.procs }

// Outputs returns the descriptor's output-alphabet size.
func (c *Compiled) Outputs() int { return c.outputs }

// Objects implements model.Protocol.
func (c *Compiled) Objects() []model.ObjectSpec {
	out := make([]model.ObjectSpec, len(c.objects))
	copy(out, c.objects)
	return out
}

// Init implements model.Protocol.
func (c *Compiled) Init(p, input int) string { return c.machines[p].init[input&1] }

// Poised implements model.Protocol.
func (c *Compiled) Poised(p int, state string) model.Action {
	st := c.machines[p].states[state]
	if st == nil {
		// Unreachable after validation; a defensive self-decide keeps the
		// checker panic-free if a caller hands a foreign state string.
		return model.Decide(0)
	}
	if st.decided {
		return model.Decide(st.decision)
	}
	return model.Apply(st.obj, st.op)
}

// Next implements model.Protocol. Validation guarantees every response
// of the applied operation resolves; the defensive self-loop (returning
// the state unchanged) can only trigger on states Poised never produced.
func (c *Compiled) Next(p int, state string, resp spec.Response) string {
	st := c.machines[p].states[state]
	if st == nil || st.decided {
		return state
	}
	if nx, ok := st.next[resp]; ok {
		return nx
	}
	if st.hasFall {
		return st.fallback
	}
	return state
}

// Descriptor returns the validated descriptor the protocol was compiled
// from. Callers must not mutate it.
func (c *Compiled) Descriptor() *Descriptor { return c.src }

// Compile validates d against the package budgets and structural rules
// and builds the executable protocol. The descriptor is not mutated; the
// returned Compiled retains it for introspection.
func Compile(d *Descriptor) (*Compiled, error) {
	if d == nil {
		return nil, fmt.Errorf("protodef: nil descriptor")
	}
	if err := checkName("protocol name", d.Name); err != nil {
		return nil, err
	}
	if d.Procs < 1 || d.Procs > MaxProcs {
		return nil, fmt.Errorf("protodef: procs %d out of range [1, %d]", d.Procs, MaxProcs)
	}
	outputs := d.Outputs
	if outputs == 0 {
		outputs = 2
	}
	if outputs < 1 || outputs > MaxOutputs {
		return nil, fmt.Errorf("protodef: outputs %d out of range [1, %d]", outputs, MaxOutputs)
	}

	types, respIdx, err := compileTypes(d.Types)
	if err != nil {
		return nil, err
	}

	if len(d.Objects) == 0 || len(d.Objects) > MaxObjects {
		return nil, fmt.Errorf("protodef: need 1..%d objects, got %d", MaxObjects, len(d.Objects))
	}
	objects := make([]model.ObjectSpec, len(d.Objects))
	objType := make([]string, len(d.Objects))
	for i, o := range d.Objects {
		t, ok := types[o.Type]
		if !ok {
			return nil, fmt.Errorf("protodef: object %d references undefined type %q", i, o.Type)
		}
		v, ok := t.ValueByName(o.Init)
		if !ok {
			return nil, fmt.Errorf("protodef: object %d: type %q has no value %q", i, o.Type, o.Init)
		}
		objects[i] = model.ObjectSpec{Type: t, Init: v}
		objType[i] = o.Type
	}

	switch {
	case len(d.Machines) == 1, len(d.Machines) == d.Procs:
	default:
		return nil, fmt.Errorf("protodef: need 1 shared machine or %d per-process machines, got %d",
			d.Procs, len(d.Machines))
	}
	c := &Compiled{
		name:    d.Name,
		procs:   d.Procs,
		outputs: outputs,
		objects: objects,
		src:     d,
	}
	compiled := make([]*cmachine, len(d.Machines))
	for mi := range d.Machines {
		m, err := compileMachine(&d.Machines[mi], mi, objects, objType, respIdx, outputs)
		if err != nil {
			return nil, err
		}
		compiled[mi] = m
	}
	c.machines = make([]*cmachine, d.Procs)
	for p := 0; p < d.Procs; p++ {
		if len(compiled) == 1 {
			c.machines[p] = compiled[0]
		} else {
			c.machines[p] = compiled[p]
		}
	}
	if err := model.Validate(c); err != nil {
		return nil, fmt.Errorf("protodef: compiled protocol invalid: %w", err)
	}
	return c, nil
}

// compileTypes builds the spec.FiniteType table for each TypeDef and the
// per-type response-name interning (name -> dense spec.Response).
func compileTypes(defs []TypeDef) (map[string]*spec.FiniteType, map[string]map[string]spec.Response, error) {
	if len(defs) == 0 || len(defs) > MaxTypes {
		return nil, nil, fmt.Errorf("protodef: need 1..%d types, got %d", MaxTypes, len(defs))
	}
	types := make(map[string]*spec.FiniteType, len(defs))
	respIdx := make(map[string]map[string]spec.Response, len(defs))
	for _, td := range defs {
		if err := checkName("type name", td.Name); err != nil {
			return nil, nil, err
		}
		if _, dup := types[td.Name]; dup {
			return nil, nil, fmt.Errorf("protodef: duplicate type %q", td.Name)
		}
		if len(td.Values) == 0 || len(td.Values) > MaxValues {
			return nil, nil, fmt.Errorf("protodef: type %q: need 1..%d values, got %d",
				td.Name, MaxValues, len(td.Values))
		}
		if len(td.Ops) == 0 || len(td.Ops) > MaxOps {
			return nil, nil, fmt.Errorf("protodef: type %q: need 1..%d ops, got %d",
				td.Name, MaxOps, len(td.Ops))
		}
		b := spec.NewBuilder(td.Name)
		for _, v := range td.Values {
			if err := checkName("value name", v); err != nil {
				return nil, nil, fmt.Errorf("protodef: type %q: %w", td.Name, err)
			}
		}
		b.Values(td.Values...)
		resp := make(map[string]spec.Response)
		for _, od := range td.Ops {
			if err := checkName("op name", od.Name); err != nil {
				return nil, nil, fmt.Errorf("protodef: type %q: %w", td.Name, err)
			}
			b.Ops(od.Name)
			if len(od.Transitions) != len(td.Values) {
				return nil, nil, fmt.Errorf("protodef: type %q op %q: %d transitions for %d values (the table must be total)",
					td.Name, od.Name, len(od.Transitions), len(td.Values))
			}
			for _, tr := range od.Transitions {
				if err := checkName("response name", tr.Resp); err != nil {
					return nil, nil, fmt.Errorf("protodef: type %q op %q: %w", td.Name, od.Name, err)
				}
				r, ok := resp[tr.Resp]
				if !ok {
					r = spec.Response(len(resp))
					resp[tr.Resp] = r
					b.NameResponse(r, tr.Resp)
				}
				b.Transition(tr.From, od.Name, r, tr.To)
			}
		}
		t, err := b.Build()
		if err != nil {
			return nil, nil, fmt.Errorf("protodef: type %q: %w", td.Name, err)
		}
		types[td.Name] = t
		respIdx[td.Name] = resp
	}
	return types, respIdx, nil
}

// compileMachine validates one machine's states and transitions against
// the objects it references and resolves response names to responses.
func compileMachine(md *MachineDef, mi int, objects []model.ObjectSpec, objType []string,
	respIdx map[string]map[string]spec.Response, outputs int) (*cmachine, error) {
	where := fmt.Sprintf("machine %d", mi)
	if len(md.States) == 0 || len(md.States) > MaxStates {
		return nil, fmt.Errorf("protodef: %s: need 1..%d states, got %d", where, MaxStates, len(md.States))
	}
	m := &cmachine{states: make(map[string]*cstate, len(md.States))}
	for _, sd := range md.States {
		if err := checkName("state name", sd.Name); err != nil {
			return nil, fmt.Errorf("protodef: %s: %w", where, err)
		}
		if _, dup := m.states[sd.Name]; dup {
			return nil, fmt.Errorf("protodef: %s: duplicate state %q", where, sd.Name)
		}
		switch {
		case sd.Decide != nil && sd.Apply != nil:
			return nil, fmt.Errorf("protodef: %s state %q: both decide and apply set", where, sd.Name)
		case sd.Decide == nil && sd.Apply == nil:
			return nil, fmt.Errorf("protodef: %s state %q: one of decide or apply required", where, sd.Name)
		case sd.Decide != nil:
			if len(sd.Next) > 0 {
				return nil, fmt.Errorf("protodef: %s state %q: decided states take no transitions", where, sd.Name)
			}
			if *sd.Decide < 0 || *sd.Decide >= outputs {
				return nil, fmt.Errorf("protodef: %s state %q: decision %d outside the output alphabet [0, %d)",
					where, sd.Name, *sd.Decide, outputs)
			}
			m.states[sd.Name] = &cstate{decided: true, decision: *sd.Decide}
		default:
			a := sd.Apply
			if a.Obj < 0 || a.Obj >= len(objects) {
				return nil, fmt.Errorf("protodef: %s state %q: object %d out of range [0, %d)",
					where, sd.Name, a.Obj, len(objects))
			}
			t := objects[a.Obj].Type
			op, ok := t.OpByName(a.Op)
			if !ok {
				return nil, fmt.Errorf("protodef: %s state %q: type %q has no op %q",
					where, sd.Name, objType[a.Obj], a.Op)
			}
			cs := &cstate{obj: a.Obj, op: op, next: make(map[spec.Response]string)}
			resp := respIdx[objType[a.Obj]]
			for name, to := range sd.Next {
				if name == "*" {
					cs.fallback, cs.hasFall = to, true
					continue
				}
				r, ok := resp[name]
				if !ok {
					return nil, fmt.Errorf("protodef: %s state %q: type %q has no response %q",
						where, sd.Name, objType[a.Obj], name)
				}
				cs.next[r] = to
			}
			m.states[sd.Name] = cs
		}
	}

	// Initial states.
	if len(md.Init) != 2 {
		return nil, fmt.Errorf("protodef: %s: init needs exactly 2 entries (inputs 0 and 1), got %d",
			where, len(md.Init))
	}
	for i, s := range md.Init {
		if _, ok := m.states[s]; !ok {
			return nil, fmt.Errorf("protodef: %s: init[%d] references undefined state %q", where, i, s)
		}
		m.init[i] = s
	}

	// Totality: every non-decided state must resolve every response its
	// operation can return (from any value), and every successor must be
	// a defined state.
	for name, cs := range m.states {
		if cs.decided {
			continue
		}
		t := objects[cs.obj].Type
		seen := make(map[spec.Response]bool)
		for v := 0; v < t.NumValues(); v++ {
			r := t.Apply(spec.Value(v), cs.op).Resp
			if seen[r] {
				continue
			}
			seen[r] = true
			to, ok := cs.next[r]
			if !ok {
				if !cs.hasFall {
					return nil, fmt.Errorf("protodef: %s state %q: no successor for response %q of op %q (add it to next or provide a \"*\" fallback)",
						where, name, t.RespName(r), t.OpName(cs.op))
				}
				to = cs.fallback
			}
			if _, ok := m.states[to]; !ok {
				return nil, fmt.Errorf("protodef: %s state %q: successor %q is not a defined state", where, name, to)
			}
		}
	}
	return m, nil
}

// checkName enforces the shared naming rules: non-empty, bounded length.
func checkName(what, s string) error {
	if s == "" {
		return fmt.Errorf("protodef: empty %s", what)
	}
	if len(s) > MaxNameLen {
		return fmt.Errorf("protodef: %s %q exceeds %d bytes", what, s[:32]+"...", MaxNameLen)
	}
	return nil
}
