// Package protodef makes protocols data: a JSON state-machine descriptor
// format for user-submitted consensus protocols, a validating compiler
// from descriptors to executable model.Protocol implementations, and the
// inverse exporter rendering any protocol back to a canonical
// descriptor.
//
// A Descriptor spells out everything model.Protocol expresses — object
// types as total transition tables, shared objects with initial values,
// and per-process local state machines whose states either decide an
// output or apply an operation and branch on its response. Compile
// validates a descriptor against hard budgets (MaxProcs, MaxTypes,
// MaxValues, MaxOps, MaxStates, ...) so untrusted submissions cannot
// demand unbounded work, then builds a Compiled protocol the engine
// checks exactly like a registry protocol.
//
// Identity is structural, never nominal. The Store registry keys
// protocols by model.Fingerprint — the canonical hash of the reachable
// state machine — so a submitted descriptor that is behaviorally
// identical to a registry protocol (whatever its names) resolves to the
// same fingerprint and shares the engine's cached exploration graphs.
// Describe completes the loop: Compile(Describe(pr)) fingerprints equal
// to pr for every valid protocol.
package protodef
