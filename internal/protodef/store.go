package protodef

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/model"
)

// DefaultStoreLimit bounds how many distinct protocols a Store accepts
// before Register starts rejecting new fingerprints. Registration is
// idempotent, so re-submitting a known protocol never counts against the
// limit.
const DefaultStoreLimit = 256

// ErrStoreFull is returned by Register when the store holds its limit of
// distinct fingerprints and the submitted protocol is a new one.
var ErrStoreFull = fmt.Errorf("protodef: protocol store full")

// Store is a fingerprint-keyed registry of user-submitted protocols. The
// structural fingerprint is the identity: registering two descriptors
// that compile to behaviorally identical protocols yields one entry, and
// callers resolve protocols by fingerprint exactly as the engine's
// GraphCache keys its graphs. A Store is safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	limit   int
	entries map[string]*Compiled
}

// NewStore builds an empty store admitting up to limit distinct
// fingerprints (<= 0 selects DefaultStoreLimit).
func NewStore(limit int) *Store {
	if limit <= 0 {
		limit = DefaultStoreLimit
	}
	return &Store{limit: limit, entries: make(map[string]*Compiled)}
}

// Register fingerprints the compiled protocol and stores it under that
// fingerprint. It returns the fingerprint and whether the protocol was
// already registered (in which case the previously stored compilation is
// retained and the submitted one discarded — the fingerprint guarantees
// they are behaviorally identical).
func (s *Store) Register(c *Compiled) (fp string, existed bool, err error) {
	fp, err = model.Fingerprint(c)
	if err != nil {
		return "", false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[fp]; ok {
		return fp, true, nil
	}
	if len(s.entries) >= s.limit {
		return "", false, ErrStoreFull
	}
	s.entries[fp] = c
	return fp, false, nil
}

// Get resolves a fingerprint to its registered protocol.
func (s *Store) Get(fp string) (*Compiled, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.entries[fp]
	return c, ok
}

// Len reports how many distinct protocols are registered.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Fingerprints lists the registered fingerprints in sorted order.
func (s *Store) Fingerprints() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.entries))
	for fp := range s.entries {
		out = append(out, fp)
	}
	sort.Strings(out)
	return out
}
