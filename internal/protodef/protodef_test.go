package protodef_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/protodef"
	"repro/internal/registry"
)

// registryDescriptors are the canonical instances of all five registry
// protocols, matching the serve/cmd defaults used elsewhere in the test
// suite.
var registryDescriptors = []string{
	"tnn-wf:3,2", "tnn-rec:3,2", "cas-wf:2", "cas-rec:2", "tas-reg",
}

// TestRoundTripFingerprintEqual is the package's central property: for
// every registry protocol, Describe -> JSON -> Parse -> Compile yields a
// protocol with the same structural fingerprint as the registry build —
// so descriptor submissions of known protocols share the registry's
// cached exploration graphs.
func TestRoundTripFingerprintEqual(t *testing.T) {
	for _, desc := range registryDescriptors {
		t.Run(desc, func(t *testing.T) {
			pr, err := registry.ParseProtocol(desc)
			if err != nil {
				t.Fatal(err)
			}
			want, err := model.Fingerprint(pr)
			if err != nil {
				t.Fatal(err)
			}
			d, err := protodef.Describe(pr)
			if err != nil {
				t.Fatal(err)
			}
			raw, err := json.Marshal(d)
			if err != nil {
				t.Fatal(err)
			}
			c, err := protodef.Parse(raw)
			if err != nil {
				t.Fatalf("compiled descriptor rejected: %v\n%s", err, raw)
			}
			got, err := model.Fingerprint(c)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("round-trip changed fingerprint: registry %s, descriptor %s", want, got)
			}
		})
	}
}

// TestDescribeDeterministic checks Describe is a pure function of the
// protocol's structure (canonical names, stable ordering).
func TestDescribeDeterministic(t *testing.T) {
	pr, err := registry.ParseProtocol("tnn-rec:3,2")
	if err != nil {
		t.Fatal(err)
	}
	a, err := protodef.Describe(pr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := protodef.Describe(pr)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("two Describe calls disagree:\n%s\n%s", ja, jb)
	}
}

// tasDescriptor builds a minimal hand-written descriptor: 2-process
// test-and-set consensus where the winner decides its own input.
func tasDescriptor() *protodef.Descriptor {
	d0, d1 := 0, 1
	return &protodef.Descriptor{
		Name:  "hand-tas",
		Procs: 2,
		Types: []protodef.TypeDef{{
			Name:   "tas",
			Values: []string{"clear", "set"},
			Ops: []protodef.OpDef{{
				Name: "tas",
				Transitions: []protodef.TransitionDef{
					{From: "clear", Resp: "won", To: "set"},
					{From: "set", Resp: "lost", To: "set"},
				},
			}},
		}},
		Objects: []protodef.ObjectDef{{Type: "tas", Init: "clear"}},
		Machines: []protodef.MachineDef{{
			Init: []string{"try0", "try1"},
			States: []protodef.StateDef{
				{Name: "try0", Apply: &protodef.ApplyDef{Obj: 0, Op: "tas"},
					Next: map[string]string{"won": "dec0", "lost": "dec1"}},
				{Name: "try1", Apply: &protodef.ApplyDef{Obj: 0, Op: "tas"},
					Next: map[string]string{"won": "dec1", "*": "dec0"}},
				{Name: "dec0", Decide: &d0},
				{Name: "dec1", Decide: &d1},
			},
		}},
	}
}

func TestCompileHandWritten(t *testing.T) {
	c, err := protodef.Compile(tasDescriptor())
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "hand-tas" || c.Procs() != 2 || c.Outputs() != 2 {
		t.Fatalf("compiled header wrong: %s procs=%d outputs=%d", c.Name(), c.Procs(), c.Outputs())
	}
	if got := c.Init(0, 0); got != "try0" {
		t.Fatalf("Init(0,0) = %q", got)
	}
	a := c.Poised(0, "try0")
	if a.Decided || a.Obj != 0 {
		t.Fatalf("Poised(try0) = %+v", a)
	}
	// Responses are interned in first-appearance order: won=0, lost=1.
	if got := c.Next(0, "try0", 0); got != "dec0" {
		t.Fatalf("Next(try0, won) = %q", got)
	}
	if got := c.Next(0, "try1", 1); got != "dec0" {
		t.Fatalf("fallback Next(try1, lost) = %q", got)
	}
	if d := c.Poised(0, "dec1"); !d.Decided || d.Decision != 1 {
		t.Fatalf("Poised(dec1) = %+v", d)
	}
}

func TestCompileRejectsInvalid(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*protodef.Descriptor)
	}{
		{"zero procs", func(d *protodef.Descriptor) { d.Procs = 0 }},
		{"too many procs", func(d *protodef.Descriptor) { d.Procs = protodef.MaxProcs + 1 }},
		{"unknown object type", func(d *protodef.Descriptor) { d.Objects[0].Type = "nope" }},
		{"unknown init value", func(d *protodef.Descriptor) { d.Objects[0].Init = "nope" }},
		{"missing machine", func(d *protodef.Descriptor) { d.Machines = nil }},
		{"bad machine count", func(d *protodef.Descriptor) {
			d.Machines = append(d.Machines, d.Machines[0], d.Machines[0])
		}},
		{"undefined init state", func(d *protodef.Descriptor) { d.Machines[0].Init[0] = "nope" }},
		{"one init entry", func(d *protodef.Descriptor) { d.Machines[0].Init = d.Machines[0].Init[:1] }},
		{"decision out of range", func(d *protodef.Descriptor) {
			big := 7
			d.Machines[0].States[2].Decide = &big
		}},
		{"decide and apply both set", func(d *protodef.Descriptor) {
			zero := 0
			d.Machines[0].States[0].Decide = &zero
		}},
		{"unknown op", func(d *protodef.Descriptor) { d.Machines[0].States[0].Apply.Op = "nope" }},
		{"object index out of range", func(d *protodef.Descriptor) { d.Machines[0].States[0].Apply.Obj = 3 }},
		{"unknown response", func(d *protodef.Descriptor) {
			d.Machines[0].States[0].Next = map[string]string{"nope": "dec0"}
		}},
		{"missing response successor", func(d *protodef.Descriptor) {
			d.Machines[0].States[0].Next = map[string]string{"won": "dec0"}
		}},
		{"undefined successor", func(d *protodef.Descriptor) {
			d.Machines[0].States[0].Next["won"] = "nope"
		}},
		{"duplicate state", func(d *protodef.Descriptor) {
			d.Machines[0].States = append(d.Machines[0].States, d.Machines[0].States[0])
		}},
		{"non-total op table", func(d *protodef.Descriptor) {
			d.Types[0].Ops[0].Transitions = d.Types[0].Ops[0].Transitions[:1]
		}},
		{"empty name", func(d *protodef.Descriptor) { d.Name = "" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := tasDescriptor()
			tc.mutate(d)
			if _, err := protodef.Compile(d); err == nil {
				t.Fatal("invalid descriptor compiled without error")
			}
		})
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := protodef.Parse([]byte(`{"name":"x","procs":2,"bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestStoreIdempotentByFingerprint(t *testing.T) {
	s := protodef.NewStore(0)
	c1, err := protodef.Compile(tasDescriptor())
	if err != nil {
		t.Fatal(err)
	}
	fp1, existed, err := s.Register(c1)
	if err != nil || existed {
		t.Fatalf("first Register: fp=%s existed=%v err=%v", fp1, existed, err)
	}
	// A renamed but structurally identical descriptor registers to the
	// same entry.
	d2 := tasDescriptor()
	d2.Name = "same-protocol-other-name"
	for i := range d2.Machines[0].States {
		d2.Machines[0].States[i].Name = "z" + d2.Machines[0].States[i].Name
	}
	d2.Machines[0].Init = []string{"ztry0", "ztry1"}
	for _, sd := range d2.Machines[0].States {
		for k, v := range sd.Next {
			sd.Next[k] = "z" + v
		}
	}
	c2, err := protodef.Compile(d2)
	if err != nil {
		t.Fatal(err)
	}
	fp2, existed, err := s.Register(c2)
	if err != nil || !existed {
		t.Fatalf("second Register: existed=%v err=%v", existed, err)
	}
	if fp1 != fp2 {
		t.Fatalf("renamed twin got a different fingerprint: %s vs %s", fp1, fp2)
	}
	if s.Len() != 1 {
		t.Fatalf("store holds %d entries, want 1", s.Len())
	}
	if got, ok := s.Get(fp1); !ok || got != c1 {
		t.Fatal("Get did not return the first registration")
	}
}

func TestStoreLimit(t *testing.T) {
	s := protodef.NewStore(1)
	c, err := protodef.Compile(tasDescriptor())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Register(c); err != nil {
		t.Fatal(err)
	}
	// Registering the same protocol again is idempotent, not a second slot.
	if _, existed, err := s.Register(c); err != nil || !existed {
		t.Fatalf("idempotent re-register failed: existed=%v err=%v", existed, err)
	}
	other, err := registry.ParseProtocol("cas-wf:2")
	if err != nil {
		t.Fatal(err)
	}
	od, err := protodef.Describe(other)
	if err != nil {
		t.Fatal(err)
	}
	oc, err := protodef.Compile(od)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Register(oc); !errors.Is(err, protodef.ErrStoreFull) {
		t.Fatalf("expected ErrStoreFull, got %v", err)
	}
}

func TestCompileBudgets(t *testing.T) {
	d := tasDescriptor()
	for i := 0; len(d.Machines[0].States) <= protodef.MaxStates; i++ {
		v := 0
		d.Machines[0].States = append(d.Machines[0].States,
			protodef.StateDef{Name: fmt.Sprintf("pad%d", i), Decide: &v})
	}
	if _, err := protodef.Compile(d); err == nil {
		t.Fatal("over-budget machine compiled without error")
	}
}
