package protodef_test

import (
	"encoding/json"
	"testing"

	"repro/internal/model"
	"repro/internal/protodef"
	"repro/internal/protogen"
)

// FuzzProtodefCompile feeds arbitrary bytes to the descriptor pipeline.
// The compiler must never panic on untrusted input (it is the body of
// POST /v1/protocols), and any input it accepts must survive the
// package's round-trip law: the canonical export (Describe) recompiles
// to a fingerprint-equal protocol. Seeds are generated descriptors plus
// a few malformed shapes; run longer with
// go test -run=^$ -fuzz=FuzzProtodefCompile ./internal/protodef.
func FuzzProtodefCompile(f *testing.F) {
	for seed := uint64(0); seed < 6; seed++ {
		data, err := json.Marshal(protogen.Generate(seed).Descriptor)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"name":"x","procs":1,"types":[{"name":"t","values":["a"],"ops":[{"name":"o","transitions":[{"from":"a","resp":"r","to":"a"}]}]}],"objects":[{"type":"t","init":"a"}],"machines":[{"init":["s","s"],"states":[{"name":"s","decide":0}]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := protodef.Parse(data)
		if err != nil {
			return // rejected input; the only requirement is no panic
		}
		want, err := model.Fingerprint(c)
		if err != nil {
			// The reachable closure exceeds the fingerprint state
			// budget; the round-trip law is out of reach for this input.
			return
		}
		exported, err := protodef.Describe(c)
		if err != nil {
			t.Fatalf("compiled and fingerprinted, but Describe failed: %v", err)
		}
		re, err := protodef.Compile(exported)
		if err != nil {
			t.Fatalf("canonical export does not recompile: %v", err)
		}
		got, err := model.Fingerprint(re)
		if err != nil {
			t.Fatalf("recompiled export does not fingerprint: %v", err)
		}
		if got != want {
			t.Fatalf("fingerprint changed across the Describe round-trip: %s -> %s", want, got)
		}
	})
}
