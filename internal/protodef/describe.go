package protodef

import (
	"fmt"
	"reflect"

	"repro/internal/model"
	"repro/internal/spec"
)

// Describe exports any model.Protocol as a canonical Descriptor: the
// same reachable-state closure the structural fingerprint canonicalizes
// (model.ReachableStates / model.FingerprintedResponses), rendered as
// data. All names in the output are canonical — types "t<i>", values
// "v<j>", ops "op<k>", responses "r<code>", states "s<bfs-index>" — so
// the result is a pure function of the protocol's structure.
//
// The round-trip law tying the package together: for any valid protocol
// pr, Compile(Describe(pr)) fingerprints equal to pr. Registry builds
// and their descriptor exports therefore share cached exploration
// graphs.
func Describe(pr model.Protocol) (*Descriptor, error) {
	if err := model.Validate(pr); err != nil {
		return nil, err
	}
	objs := pr.Objects()

	// Dedup object types by pointer and name them in first-use order.
	typeName := make(map[*spec.FiniteType]string)
	var typeDefs []TypeDef
	for _, o := range objs {
		if _, ok := typeName[o.Type]; ok {
			continue
		}
		name := fmt.Sprintf("t%d", len(typeDefs))
		typeName[o.Type] = name
		typeDefs = append(typeDefs, exportType(name, o.Type))
	}

	objDefs := make([]ObjectDef, len(objs))
	for i, o := range objs {
		objDefs[i] = ObjectDef{
			Type: typeName[o.Type],
			Init: fmt.Sprintf("v%d", int(o.Init)),
		}
	}

	outputs := 2
	if c, ok := pr.(interface{ Outputs() int }); ok {
		outputs = c.Outputs()
	}

	machines := make([]MachineDef, pr.Procs())
	for p := 0; p < pr.Procs(); p++ {
		m, maxDecision, err := exportMachine(pr, p, objs)
		if err != nil {
			return nil, err
		}
		machines[p] = m
		if maxDecision >= outputs {
			outputs = maxDecision + 1
		}
	}
	// Collapse to one shared machine when every process runs the same one.
	shared := true
	for p := 1; p < len(machines); p++ {
		if !reflect.DeepEqual(machines[p], machines[0]) {
			shared = false
			break
		}
	}
	if shared {
		machines = machines[:1]
	}

	return &Descriptor{
		Name:     pr.Name(),
		Procs:    pr.Procs(),
		Outputs:  outputs,
		Types:    typeDefs,
		Objects:  objDefs,
		Machines: machines,
	}, nil
}

// exportType renders one FiniteType as a TypeDef with canonical value,
// op and response names ("v<j>", "op<k>", "r<code>").
func exportType(name string, t *spec.FiniteType) TypeDef {
	td := TypeDef{Name: name}
	for v := 0; v < t.NumValues(); v++ {
		td.Values = append(td.Values, fmt.Sprintf("v%d", v))
	}
	for op := 0; op < t.NumOps(); op++ {
		od := OpDef{Name: fmt.Sprintf("op%d", op)}
		for v := 0; v < t.NumValues(); v++ {
			e := t.Apply(spec.Value(v), spec.Op(op))
			od.Transitions = append(od.Transitions, TransitionDef{
				From: fmt.Sprintf("v%d", v),
				Resp: fmt.Sprintf("r%d", int(e.Resp)),
				To:   fmt.Sprintf("v%d", int(e.Next)),
			})
		}
		td.Ops = append(td.Ops, od)
	}
	return td
}

// exportMachine renders process p's reachable local state machine with
// canonical state names ("s<bfs-index>") and returns the largest
// decision it reaches (-1 when none).
func exportMachine(pr model.Protocol, p int, objs []model.ObjectSpec) (MachineDef, int, error) {
	states, err := model.ReachableStates(pr, p)
	if err != nil {
		return MachineDef{}, 0, err
	}
	id := make(map[string]int, len(states))
	for i, s := range states {
		id[s] = i
	}
	canon := func(s string) string { return fmt.Sprintf("s%d", id[s]) }

	m := MachineDef{Init: []string{canon(pr.Init(p, 0)), canon(pr.Init(p, 1))}}
	maxDecision := -1
	for _, st := range states {
		sd := StateDef{Name: canon(st)}
		a := pr.Poised(p, st)
		if a.Decided {
			d := a.Decision
			sd.Decide = &d
			if d > maxDecision {
				maxDecision = d
			}
		} else {
			sd.Apply = &ApplyDef{Obj: a.Obj, Op: fmt.Sprintf("op%d", int(a.Op))}
			edges, err := model.FingerprintedResponses(pr, p, st)
			if err != nil {
				return MachineDef{}, 0, err
			}
			sd.Next = make(map[string]string, len(edges))
			for _, e := range edges {
				sd.Next[fmt.Sprintf("r%d", int(e.Resp))] = canon(e.Next)
			}
		}
		m.States = append(m.States, sd)
	}
	return m, maxDecision, nil
}
