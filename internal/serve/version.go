package serve

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
)

// APIRevision is the integer revision of the /v1 API surface, echoed by
// GET /v1/version and as the X-Reprod-Api header on every /v1 response.
// It bumps when the wire contract changes compatibly (new endpoints,
// new response fields); incompatible changes would bump the /v1 path
// prefix instead.
//
// Revision history:
//
//	1 — /v1/analyze, /v1/batch, /v1/check, /v1/stats, /v1/compact,
//	    /v1/protocols, /v1/jobs (+SSE events).
//	2 — coded error envelopes ({code, error}), GET /v1/version, the
//	    X-Reprod-Api header, and graph persistence counters in
//	    /v1/stats.
const APIRevision = 2

// apiHeader is the response header carrying APIRevision on /v1 routes.
const apiHeader = "X-Reprod-Api"

// VersionResponse is the body of GET /v1/version.
type VersionResponse struct {
	// Module is the server binary's main-module version as recorded by
	// the Go toolchain ("(devel)" for non-released builds).
	Module string `json:"module"`
	// GoVersion built the binary.
	GoVersion string `json:"goVersion"`
	// APIRevision is the /v1 wire-contract revision (see APIRevision).
	APIRevision int `json:"apiRevision"`
}

// moduleVersion resolves the main module's version from build info.
func moduleVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "(devel)"
}

// handleVersion serves GET /v1/version.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, VersionResponse{
		Module:      moduleVersion(),
		GoVersion:   runtime.Version(),
		APIRevision: APIRevision,
	})
}

// stampAPIRevision adds the X-Reprod-Api header to /v1 responses, so
// clients can detect the server's wire-contract revision on any call
// (including errors) without a separate /v1/version round trip.
func stampAPIRevision(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/v1/") {
		w.Header().Set(apiHeader, strconv.Itoa(APIRevision))
	}
}
