package serve

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// expoSample is one parsed exposition sample line.
type expoSample struct {
	name   string // full series name, e.g. reprod_http_request_duration_seconds_bucket
	labels map[string]string
	value  float64
}

// parseExposition parses Prometheus text format 0.0.4 strictly enough
// to catch the mistakes hand-rolled emitters make: HELP/TYPE must
// precede a family's first sample, TYPE must be a known type, samples
// must parse, label syntax must be well-formed.
func parseExposition(t *testing.T, text string) (types map[string]string, samples []expoSample) {
	t.Helper()
	types = make(map[string]string)
	helped := make(map[string]bool)
	// family resolves a series name to its metric family: histogram
	// series use the family name + _bucket/_sum/_count.
	family := func(name string) string {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && types[base] == "histogram" {
				return base
			}
		}
		return name
	}
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			helped[parts[0]] = true
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, parts[1])
			}
			if !helped[parts[0]] {
				t.Fatalf("line %d: TYPE before HELP for %s", ln+1, parts[0])
			}
			types[parts[0]] = parts[1]
		case strings.HasPrefix(line, "#"):
			// comment
		case strings.TrimSpace(line) == "":
			t.Fatalf("line %d: blank line in exposition", ln+1)
		default:
			s := parseSample(t, ln+1, line)
			fam := family(s.name)
			if !helped[fam] || types[fam] == "" {
				t.Fatalf("line %d: sample %s before HELP/TYPE of family %s", ln+1, s.name, fam)
			}
			samples = append(samples, s)
		}
	}
	return types, samples
}

func parseSample(t *testing.T, ln int, line string) expoSample {
	t.Helper()
	s := expoSample{labels: make(map[string]string)}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		s.name = line[:i]
		j := strings.IndexByte(line, '}')
		if j < i {
			t.Fatalf("line %d: unterminated label set: %q", ln, line)
		}
		for _, pair := range strings.Split(line[i+1:j], ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				t.Fatalf("line %d: malformed label %q", ln, pair)
			}
			unq, err := strconv.Unquote(v)
			if err != nil {
				t.Fatalf("line %d: label value not quoted: %q", ln, pair)
			}
			s.labels[k] = unq
		}
		rest = line[j+1:]
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("line %d: malformed sample: %q", ln, line)
		}
		s.name, rest = fields[0], fields[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		t.Fatalf("line %d: unparseable sample value: %q", ln, line)
	}
	s.value = v
	return s
}

// labelsKey canonicalizes a label set minus `le` for grouping one
// histogram's series.
func labelsKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, labels[k])
	}
	return b.String()
}

// TestMetricsExpositionWellFormed drives real traffic through the
// server, then parses /metrics and checks the format invariants a
// Prometheus scraper relies on: HELP and TYPE precede every family's
// samples, histogram buckets are cumulative (monotone non-decreasing in
// le order), every histogram's +Inf bucket equals its _count, and _sum
// is consistent with the observations.
func TestMetricsExpositionWellFormed(t *testing.T) {
	s := New(Config{MaxN: 2})
	if code, body := post(t, s, "/v1/check", `{"protocol":"cas-wf:2","requests":[{"inputs":[0,1]}]}`); code != http.StatusOK {
		t.Fatalf("check = %d %s", code, body)
	}
	if code, _ := post(t, s, "/v1/analyze", `{"type":"tas"}`); code != http.StatusOK {
		t.Fatal("analyze failed")
	}
	if code, _ := post(t, s, "/v1/analyze", `{"type":"garbage"}`); code != http.StatusBadRequest {
		t.Fatal("bad analyze not rejected")
	}
	code, body := get(t, s, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}

	types, samples := parseExposition(t, string(body))

	// The failing request must be counted too (middleware counting).
	var saw4xx bool
	for _, smp := range samples {
		if smp.name == "reprod_requests_total" &&
			smp.labels["endpoint"] == "analyze" && smp.labels["code"] == "4xx" && smp.value == 1 {
			saw4xx = true
		}
	}
	if !saw4xx {
		t.Error("reprod_requests_total missing the 4xx analyze sample")
	}

	// Histogram invariants, per family and label set.
	type histo struct {
		buckets []expoSample // in emission order
		sum     float64
		count   float64
		hasInf  bool
		inf     float64
	}
	histos := make(map[string]*histo)
	hkey := func(fam string, labels map[string]string) string { return fam + "|" + labelsKey(labels) }
	get := func(k string) *histo {
		if histos[k] == nil {
			histos[k] = &histo{}
		}
		return histos[k]
	}
	nHist := 0
	for _, smp := range samples {
		switch {
		case strings.HasSuffix(smp.name, "_bucket") && types[strings.TrimSuffix(smp.name, "_bucket")] == "histogram":
			h := get(hkey(strings.TrimSuffix(smp.name, "_bucket"), smp.labels))
			if smp.labels["le"] == "+Inf" {
				h.hasInf, h.inf = true, smp.value
			} else {
				if _, err := strconv.ParseFloat(smp.labels["le"], 64); err != nil {
					t.Fatalf("unparseable le bound %q", smp.labels["le"])
				}
				h.buckets = append(h.buckets, smp)
			}
		case strings.HasSuffix(smp.name, "_sum") && types[strings.TrimSuffix(smp.name, "_sum")] == "histogram":
			get(hkey(strings.TrimSuffix(smp.name, "_sum"), smp.labels)).sum = smp.value
		case strings.HasSuffix(smp.name, "_count") && types[strings.TrimSuffix(smp.name, "_count")] == "histogram":
			get(hkey(strings.TrimSuffix(smp.name, "_count"), smp.labels)).count = smp.value
		}
	}
	for key, h := range histos {
		nHist++
		if !h.hasInf {
			t.Errorf("%s: no +Inf bucket", key)
			continue
		}
		if h.inf != h.count {
			t.Errorf("%s: +Inf bucket %g != _count %g", key, h.inf, h.count)
		}
		prevLe := math.Inf(-1)
		prevV := -1.0
		for _, b := range h.buckets {
			le, _ := strconv.ParseFloat(b.labels["le"], 64)
			if le <= prevLe {
				t.Errorf("%s: le bounds not increasing: %g after %g", key, le, prevLe)
			}
			if b.value < prevV {
				t.Errorf("%s: cumulative bucket decreased: %g after %g", key, b.value, prevV)
			}
			if b.value > h.inf {
				t.Errorf("%s: bucket %g exceeds +Inf %g", key, b.value, h.inf)
			}
			prevLe, prevV = le, b.value
		}
		if h.count > 0 && h.sum <= 0 {
			t.Errorf("%s: %g observations but sum %g", key, h.count, h.sum)
		}
	}
	// The request-duration histogram (several endpoints) and the three
	// engine graph phases must all be present.
	if nHist < 5 {
		t.Errorf("only %d histogram series parsed, want request + engine histograms", nHist)
	}
}
