package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// writeHistogram emits one histogram series in exposition form:
// cumulative _bucket samples (le bounds shared by every obs.Histogram,
// so label sets are byte-stable), the +Inf bucket, _sum and _count.
// labels ("" or `endpoint="check"`) is merged into every sample's label
// set.
func writeHistogram(b *strings.Builder, name, labels string, snap obs.Snapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	for i, bound := range obs.BucketBounds() {
		fmt.Fprintf(b, "%s_bucket{%s%sle=%q} %d\n",
			name, labels, sep, strconv.FormatFloat(bound, 'g', -1, 64), snap.Cumulative[i])
	}
	fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, snap.Count)
	if labels == "" {
		fmt.Fprintf(b, "%s_sum %g\n%s_count %d\n", name, snap.Sum, name, snap.Count)
		return
	}
	fmt.Fprintf(b, "%s_sum{%s} %g\n%s_count{%s} %d\n", name, labels, snap.Sum, name, labels, snap.Count)
}

// handleMetrics serves the server's counters in Prometheus text
// exposition format (version 0.0.4) on GET /metrics: request totals and
// latency histograms per endpoint (fed by the instrument middleware, so
// every endpoint and every status is covered), engine-side graph-phase
// histograms, decision-cache and shared-graph reuse, job and store
// state, and uptime. Scalars also appear as JSON on /v1/stats; this
// endpoint exists so a scraper needs no translation layer.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	counter := func(name, help string, pairs ...struct {
		labels string
		value  float64
	}) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, p := range pairs {
			fmt.Fprintf(&b, "%s%s %g\n", name, p.labels, p.value)
		}
	}
	gauge := func(name, help string, value float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, value)
	}
	lv := func(labels string, v float64) struct {
		labels string
		value  float64
	} {
		return struct {
			labels string
			value  float64
		}{labels, v}
	}

	// Requests by endpoint and status class, from the middleware: every
	// route is counted, success or failure. Endpoint order is the
	// registration order; only observed (endpoint, class) pairs emit.
	var reqPairs []struct {
		labels string
		value  float64
	}
	for _, name := range s.endpointOrder {
		es := s.endpoints[name]
		for c, class := range statusClasses {
			n := es.byClass[c].Load()
			if n == 0 {
				continue
			}
			reqPairs = append(reqPairs,
				lv(fmt.Sprintf(`{endpoint=%q,code=%q}`, name, class), float64(n)))
		}
	}
	counter("reprod_requests_total", "Requests served by endpoint and status class.", reqPairs...)
	counter("reprod_requests_failed_total", "Requests answered with an error status.",
		lv("", float64(s.failed.Load())))

	// Per-endpoint latency histograms (endpoints that served traffic).
	const durName = "reprod_http_request_duration_seconds"
	fmt.Fprintf(&b, "# HELP %s Request latency by endpoint.\n# TYPE %s histogram\n", durName, durName)
	for _, name := range s.endpointOrder {
		snap := s.endpoints[name].latency.Snapshot()
		if snap.Count == 0 {
			continue
		}
		writeHistogram(&b, durName, fmt.Sprintf("endpoint=%q", name), snap)
	}

	// Engine-side graph-phase histograms, aggregated across every
	// per-request and per-job engine: resolve = graph cache resolution
	// (hit, warm disk load, or shell build), expand = walks that grew
	// the state space, walk = fully warm walks.
	const engName = "reprod_engine_graph_duration_seconds"
	fmt.Fprintf(&b, "# HELP %s Engine graph time by phase (resolve, expand, walk).\n# TYPE %s histogram\n", engName, engName)
	for _, ph := range []struct {
		phase string
		h     *obs.Histogram
	}{
		{"resolve", s.engMetrics.GraphResolve},
		{"expand", s.engMetrics.GraphExpand},
		{"walk", s.engMetrics.GraphWalk},
	} {
		writeHistogram(&b, engName, fmt.Sprintf("phase=%q", ph.phase), ph.h.Snapshot())
	}

	// Level decisions computed per backend (cache hits run no backend
	// and are visible in reprod_cache_requests_total instead). Sorted so
	// the exposition is byte-stable across scrapes.
	if runs := s.engMetrics.DeciderRuns(); len(runs) > 0 {
		backends := make([]string, 0, len(runs))
		for name := range runs {
			backends = append(backends, name)
		}
		sort.Strings(backends)
		var decPairs []struct {
			labels string
			value  float64
		}
		for _, name := range backends {
			decPairs = append(decPairs, lv(fmt.Sprintf(`{backend=%q}`, name), float64(runs[name])))
		}
		counter("reprod_decider_total", "Level decisions computed by level-decider backend.", decPairs...)
	}

	counter("reprod_types_analyzed_total", "Type analyses completed across analyze and batch.",
		lv("", float64(s.typesDone.Load())))
	counter("reprod_check_items_total", "Model-check items completed across check batches.",
		lv("", float64(s.checkItems.Load())))

	hits, misses, entries := s.cfg.Cache.Stats()
	counter("reprod_cache_requests_total", "Decision-cache lookups by outcome.",
		lv(`{outcome="hit"}`, float64(hits)),
		lv(`{outcome="miss"}`, float64(misses)))
	gauge("reprod_cache_entries", "Distinct memoized level decisions.", float64(entries))

	counter("reprod_graph_expansions_total",
		"Shared-exploration-graph successor computations by outcome (expanded = performed, reused = amortized away).",
		lv(`{outcome="expanded"}`, float64(s.graphExpanded.Load())),
		lv(`{outcome="reused"}`, float64(s.graphReused.Load())))

	var gc engine.GraphCacheStats
	if s.graphs != nil {
		gc = s.graphs.Stats()
	}
	counter("reprod_graph_cache_requests_total", "Exploration-graph cache resolutions by outcome.",
		lv(`{outcome="hit"}`, float64(gc.Hits)),
		lv(`{outcome="miss"}`, float64(gc.Misses)))
	counter("reprod_graph_cache_evicted_total", "Cached exploration graphs evicted to fit the node budget.",
		lv("", float64(gc.Evicted)))
	gauge("reprod_graph_cache_graphs", "Exploration graphs currently cached.", float64(gc.Graphs))
	gauge("reprod_graph_cache_nodes", "Interned nodes across cached exploration graphs.", float64(gc.Nodes))
	if gc.Store != nil {
		counter("reprod_graph_store_loads_total", "Graph-cache misses served warm from the on-disk graph store.",
			lv("", float64(gc.Store.Loads)))
		counter("reprod_graph_store_misses_total", "Graph-store lookups that found no stored graph.",
			lv("", float64(gc.Store.Misses)))
		counter("reprod_graph_store_spills_total", "Dirty exploration graphs spilled to the graph store.",
			lv("", float64(gc.Store.Spills)))
		counter("reprod_graph_store_nodes_total", "Exploration-graph nodes moved through the graph store by direction.",
			lv(`{direction="loaded"}`, float64(gc.Store.LoadedNodes)),
			lv(`{direction="spilled"}`, float64(gc.Store.SpilledNodes)))
		counter("reprod_graph_store_errors_total", "Graph-store I/O failures (each degrades one key to in-memory operation).",
			lv("", float64(gc.Store.Errors)))
	}
	counter("reprod_store_compactions_total", "On-demand store compactions served OK.",
		lv("", float64(s.compacted.Load())))

	js := s.jobsMgr.Stats()
	gauge("reprod_jobs_queued", "Async jobs waiting to run.", float64(js.Queued))
	gauge("reprod_jobs_running", "Async jobs currently running.", float64(js.Running))
	counter("reprod_jobs_done_total", "Async jobs finished by terminal state.",
		lv(`{outcome="done"}`, float64(js.Done)),
		lv(`{outcome="failed"}`, float64(js.Failed)),
		lv(`{outcome="canceled"}`, float64(js.Canceled)))
	counter("reprod_jobs_rejected_total", "Async job submissions refused by the queue bound.",
		lv("", float64(js.Rejected)))
	gauge("reprod_protocols_registered", "Distinct user-submitted protocols registered by fingerprint.",
		float64(s.protocols.Len()))

	gauge("reprod_inflight_requests", "Requests holding an analysis slot.", float64(s.inflight.Load()))
	gauge("reprod_uptime_seconds", "Seconds since the server started.", time.Since(s.start).Seconds())

	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		gauge("reprod_store_journal_bytes", "Decision-store journal size on disk.", float64(st.JournalBytes))
		gauge("reprod_store_snapshot_bytes", "Decision-store snapshot size on disk.", float64(st.SnapshotBytes))
		counter("reprod_store_decisions_total", "Decisions by origin.",
			lv(`{origin="loaded"}`, float64(st.Loaded)),
			lv(`{origin="appended"}`, float64(st.Appended)))
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, b.String())
}

// MetricsHandler exposes the /metrics exposition as a standalone
// handler, for mounting on a private debug listener (cmd/reprod's
// -debug-addr) alongside pprof.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(s.handleMetrics)
}
