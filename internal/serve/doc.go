// Package serve implements the reprod analysis service: an HTTP JSON
// facade over the analysis engine, built for one long-lived process
// serving many clients against one shared decision cache (optionally
// disk-backed via internal/store).
//
// Endpoints:
//
//	POST /v1/analyze  {"type":"tnn:5,2","maxN":5}       one type
//	POST /v1/batch    {"types":["tas","x4"],"maxN":4}   many types
//	POST /v1/check    {"protocol":"cas-rec:2","requests":[...]}  batched model checking
//	POST /v1/compact                                    fold the store journal into a snapshot
//	GET  /healthz                                       liveness
//	GET  /v1/stats                                      cache/graph/store/traffic counters
//	GET  /metrics                                       the same, Prometheus text format
//
// /v1/check model-checks a batch of requests against one registry-named
// protocol over shared exploration graphs (model.Graph via
// engine.CheckBatch): requests with the same input vector expand common
// state-space prefixes once. Errors are per-item — one malformed or
// timed-out item never fails the batch — and each item may carry its own
// timeoutMs.
//
// # Concurrency and ownership
//
// Each request runs on its own short-lived engine bound to the request
// context (so per-request timeouts and client disconnects cancel the
// search), while every engine shares the server's one decision cache —
// concurrent identical analyze requests therefore collapse into one
// computation via the cache's singleflight, and previously decided
// levels are served without recomputation — and the server's one
// exploration-graph cache (engine.GraphCache, Config.GraphCacheBudget),
// so repeated check/chain traffic for the same protocol and inputs
// walks warm graphs across requests. A semaphore bounds the number of
// requests analyzing at once; the engines' worker pools interleave on
// the scheduler below that bound. The server never closes its Store —
// the owning process (cmd/reprod) flushes it at shutdown, preserving the
// one-process-per-cache-path ownership contract; /v1/compact runs on the
// store's flusher goroutine, serialized with appends, so it is safe
// under live traffic.
//
// # Byte-stability guarantees
//
// Responses are deterministic functions of the request and the engine's
// deterministic results: identical analyze requests yield byte-identical
// bodies whether computed or served warm from the cache, and check items
// are byte-identical to serial Engine.Check runs.
//
// The Server is an http.Handler, so tests drive it without sockets.
package serve
