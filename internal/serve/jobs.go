package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/model"
)

// sseHeartbeat is the idle interval after which the SSE handler emits a
// comment line so intermediaries do not drop a quiet stream.
const sseHeartbeat = 15 * time.Second

// JobRequest is the body of POST /v1/jobs: the kind selects which of the
// payloads below describes the work. Jobs run asynchronously on the
// job worker pool — the reply is the queued job (poll GET /v1/jobs/{id},
// or stream GET /v1/jobs/{id}/events).
type JobRequest struct {
	// Kind is "analyze", "check" or "theorem13".
	Kind string `json:"kind"`
	// Priority orders the queue (higher first; same-priority jobs run in
	// submission order).
	Priority int `json:"priority,omitempty"`
	// TimeoutMs bounds the job's run (0 = server default).
	TimeoutMs int `json:"timeoutMs,omitempty"`

	// Analyze is the payload for kind "analyze" — the same body as
	// POST /v1/analyze.
	Analyze *AnalyzeRequest `json:"analyze,omitempty"`
	// Check is the payload for kind "check" — the same body as
	// POST /v1/check.
	Check *CheckRequestBody `json:"check,omitempty"`
	// Theorem13 is the payload for kind "theorem13".
	Theorem13 *Theorem13Request `json:"theorem13,omitempty"`
}

// Theorem13Request describes one Theorem 13 chain-construction job.
type Theorem13Request struct {
	// Protocol is a protocol registry descriptor; ProtocolFingerprint a
	// /v1/protocols registration. Exactly one must be given.
	Protocol            string `json:"protocol,omitempty"`
	ProtocolFingerprint string `json:"protocolFingerprint,omitempty"`
	// Inputs is the binary input of each process.
	Inputs []int `json:"inputs"`
	// CrashQuota[p] bounds process p's crashes per chain stage.
	CrashQuota []int `json:"crashQuota,omitempty"`
	// MaxNodes bounds each stage's explored state space (0 = server
	// default; capped at the server's CheckMaxNodes).
	MaxNodes int `json:"maxNodes,omitempty"`
	// Backend selects the level-decider backend ("" = the server
	// default). Unknown names answer 400 invalid_argument at submission.
	Backend string `json:"backend,omitempty"`
}

// Theorem13Response is a theorem13 job's result.
type Theorem13Response struct {
	Protocol  string `json:"protocol"`
	Recording bool   `json:"recording"`
	// Stages lists each chain stage's Observation 11 class.
	Stages []Theorem13Stage `json:"stages"`
	// Rendered is the chain's human-readable rendering.
	Rendered string `json:"rendered"`
}

// Theorem13Stage is one stage of a rendered chain.
type Theorem13Stage struct {
	Stage int    `json:"stage"`
	Class string `json:"class"`
}

// progressEvent is the wire form of one engine progress event inside a
// job's event stream.
type progressEvent struct {
	Kind      string  `json:"kind"`
	Type      string  `json:"type,omitempty"`
	Property  string  `json:"property,omitempty"`
	N         int     `json:"n,omitempty"`
	OK        bool    `json:"ok"`
	Cached    bool    `json:"cached,omitempty"`
	ElapsedMs float64 `json:"elapsedMs,omitempty"`
	Detail    string  `json:"detail,omitempty"`
}

func progressJSON(ev engine.Event) progressEvent {
	return progressEvent{
		Kind: ev.Kind, Type: ev.Type, Property: string(ev.Property), N: ev.N,
		OK: ev.OK, Cached: ev.Cached, ElapsedMs: float64(ev.Elapsed.Microseconds()) / 1000,
		Detail: ev.Detail,
	}
}

// jobEngine builds the engine one job runs on: bound to the job's
// context (not any request's), running the backend the submission
// resolved, sharing the server-wide caches, streaming every engine
// progress event into the job's subscribable stream.
func (s *Server) jobEngine(ctx context.Context, j *jobs.Job, maxN int, backend string) *engine.Engine {
	opts := []engine.Option{
		engine.WithContext(ctx),
		engine.WithCache(s.cfg.Cache),
		engine.WithParallelism(s.cfg.Parallelism),
		engine.WithShardThreshold(s.cfg.ShardThreshold),
		engine.WithMaxN(maxN),
		engine.WithMetrics(s.engMetrics),
		engine.WithBackend(backend),
		engine.WithProgress(func(ev engine.Event) { j.Publish(ev.Kind, progressJSON(ev)) }),
	}
	if s.graphs != nil {
		opts = append(opts, engine.WithGraphCache(s.graphs))
	} else {
		opts = append(opts, engine.WithGraphCacheBudget(-1))
	}
	return engine.New(opts...)
}

// handleJobSubmit serves POST /v1/jobs. The request is validated fully
// at submission — protocol/type resolution, bounds — so a queued job can
// only fail on execution errors, and bad requests answer 400 instead of
// becoming failed jobs. A full queue answers 429.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.failBody(w, err)
		return
	}
	spec, err := s.jobSpec(req)
	if err != nil {
		var iae invalidArgError
		if errors.As(err, &iae) {
			s.failBackend(w, iae.err)
			return
		}
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, err := s.jobsMgr.Submit(spec)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		s.fail(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, jobs.ErrClosed):
		s.failCode(w, http.StatusServiceUnavailable, CodeShuttingDown, "%v", err)
		return
	case err != nil:
		s.fail(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.View())
}

// invalidArgError marks a submission failure that must answer with the
// invalid_argument coded envelope rather than the generic bad_request:
// a field named a value outside its fixed set (an unknown level-decider
// backend). jobSpec wraps, handleJobSubmit unwraps.
type invalidArgError struct{ err error }

func (e invalidArgError) Error() string { return e.err.Error() }
func (e invalidArgError) Unwrap() error { return e.err }

// jobSpec validates a JobRequest and builds the jobs.Spec running it.
// Validation is complete at submission — including the backend name, so
// an unknown backend is a 400 invalid_argument answer, never a queued
// job that fails at run time.
func (s *Server) jobSpec(req JobRequest) (jobs.Spec, error) {
	spec := jobs.Spec{
		Kind:     req.Kind,
		Priority: req.Priority,
		Timeout:  time.Duration(req.TimeoutMs) * time.Millisecond,
	}
	switch req.Kind {
	case "analyze":
		if req.Analyze == nil {
			return spec, fmt.Errorf(`kind "analyze" needs an "analyze" payload`)
		}
		t, label, err := s.resolveAnalyzeType(*req.Analyze)
		if err != nil {
			return spec, err
		}
		maxN, err := s.resolveMaxN(req.Analyze.MaxN)
		if err != nil {
			return spec, err
		}
		backend, err := s.resolveBackend(req.Analyze.Backend)
		if err != nil {
			return spec, invalidArgError{err}
		}
		spec.Label = "analyze " + label
		spec.Run = func(ctx context.Context, j *jobs.Job) (any, error) {
			a, err := s.jobEngine(ctx, j, maxN, backend).Analyze(t)
			if err != nil {
				return nil, err
			}
			s.typesDone.Add(1)
			return AnalyzeResponse{Type: label, Analysis: analysisJSON(a)}, nil
		}

	case "check":
		if req.Check == nil {
			return spec, fmt.Errorf(`kind "check" needs a "check" payload`)
		}
		body := *req.Check
		p, label, err := s.resolveProtocol(body.Protocol, body.ProtocolFingerprint)
		if err != nil {
			return spec, err
		}
		if len(body.Requests) == 0 {
			return spec, fmt.Errorf("check needs at least one request")
		}
		if len(body.Requests) > s.cfg.BatchLimit {
			return spec, fmt.Errorf("batch of %d check requests exceeds the limit of %d",
				len(body.Requests), s.cfg.BatchLimit)
		}
		backend, err := s.resolveBackend(body.Backend)
		if err != nil {
			return spec, invalidArgError{err}
		}
		spec.Label = "check " + label
		spec.Run = func(ctx context.Context, j *jobs.Job) (any, error) {
			return s.runCheckBatch(ctx, s.jobEngine(ctx, j, s.cfg.MaxN, backend), p, label, body.Requests)
		}

	case "theorem13":
		if req.Theorem13 == nil {
			return spec, fmt.Errorf(`kind "theorem13" needs a "theorem13" payload`)
		}
		body := *req.Theorem13
		p, label, err := s.resolveProtocol(body.Protocol, body.ProtocolFingerprint)
		if err != nil {
			return spec, err
		}
		if len(body.Inputs) != p.Procs() {
			return spec, fmt.Errorf("theorem13 needs %d inputs for %s, got %d",
				p.Procs(), label, len(body.Inputs))
		}
		backend, err := s.resolveBackend(body.Backend)
		if err != nil {
			return spec, invalidArgError{err}
		}
		spec.Label = "theorem13 " + label
		spec.Run = func(ctx context.Context, j *jobs.Job) (any, error) {
			eng := s.jobEngine(ctx, j, s.cfg.MaxN, backend)
			chain, err := eng.Theorem13(p, engine.CheckRequest{
				Inputs:     body.Inputs,
				CrashQuota: body.CrashQuota,
				MaxNodes:   s.resolveCheckMaxNodes(body.MaxNodes),
			})
			if err != nil {
				return nil, err
			}
			resp := Theorem13Response{Protocol: label, Recording: chain.Recording, Rendered: chain.String()}
			for i, st := range chain.Stages {
				resp.Stages = append(resp.Stages, Theorem13Stage{Stage: i, Class: st.Info.Class})
			}
			return resp, nil
		}

	default:
		return spec, fmt.Errorf("unknown job kind %q (valid: analyze, check, theorem13)", req.Kind)
	}
	return spec, nil
}

// runCheckBatch runs one model-check batch on eng and renders the shared
// response shape. It is the common execution path of POST /v1/check and
// check jobs, so both feed the same server counters.
func (s *Server) runCheckBatch(ctx context.Context, eng *engine.Engine, p model.Protocol,
	label string, items []CheckItemRequest) (CheckResponse, error) {
	reqs := make([]engine.CheckRequest, len(items))
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	for i, item := range items {
		reqs[i] = engine.CheckRequest{
			Inputs:       item.Inputs,
			CrashQuota:   item.CrashQuota,
			MaxNodes:     s.resolveCheckMaxNodes(item.MaxNodes),
			SkipLiveness: item.SkipLiveness,
		}
		if item.TimeoutMs > 0 {
			itemCtx, c := context.WithTimeout(ctx, time.Duration(item.TimeoutMs)*time.Millisecond)
			cancels = append(cancels, c)
			reqs[i].Ctx = itemCtx
		}
	}
	results, gs, err := eng.CheckBatch(p, reqs)
	if err != nil {
		return CheckResponse{}, err
	}
	resp := CheckResponse{Protocol: label, Graph: gs}
	for _, it := range results {
		var out CheckItemResult
		switch {
		case it.Err != nil:
			out.Error = it.Err.Error()
		default:
			out.OK = it.Result.OK()
			out.Nodes = it.Result.Nodes
			out.Truncated = it.Result.Truncated
			for _, v := range it.Result.Violations {
				out.Violations = append(out.Violations, ViolationJSON{
					Kind: v.Kind, Trace: v.Trace.String(), Config: v.Config.String(), Detail: v.Detail,
				})
			}
			s.checkItems.Add(1)
		}
		resp.Results = append(resp.Results, out)
	}
	s.graphExpanded.Add(gs.Expanded)
	s.graphReused.Add(gs.Reused)
	return resp, nil
}

// handleJobGet serves GET /v1/jobs/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobsMgr.Get(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, "no job %q (finished jobs are remembered up to a history limit)", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

// handleJobCancel serves DELETE /v1/jobs/{id}: best-effort cancellation.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobsMgr.Get(id)
	if !ok {
		s.fail(w, http.StatusNotFound, "no job %q", id)
		return
	}
	s.jobsMgr.Cancel(id)
	writeJSON(w, http.StatusOK, j.View())
}

// handleJobEvents serves GET /v1/jobs/{id}/events as Server-Sent Events:
// the job's retained replay buffer, then live progress until a terminal
// lifecycle event ("job.done"/"job.failed"/"job.canceled") ends the
// stream. Reconnecting clients resume after the standard Last-Event-ID
// header. The stream also ends when the client goes away or the server
// drains the job manager during shutdown.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobsMgr.Get(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.fail(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	var after int64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			after = n
		}
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	replay, ch, unsubscribe := j.Subscribe(after)
	defer unsubscribe()

	terminal := false
	emit := func(e jobs.Event) {
		data, err := json.Marshal(e.Data)
		if err != nil || e.Data == nil {
			data = []byte("{}")
		}
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Kind, data)
		if strings.HasPrefix(e.Kind, "job.") && jobs.State(strings.TrimPrefix(e.Kind, "job.")).Terminal() {
			terminal = true
		}
	}
	for _, e := range replay {
		emit(e)
	}
	fl.Flush()
	if terminal {
		return
	}

	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case e, open := <-ch:
			if !open {
				// Stream closed: terminal event delivered (then we already
				// returned below), this subscriber was dropped as too slow,
				// or the manager is draining. If the job did reach a
				// terminal state, synthesize the terminal event so the
				// client always sees one.
				if v := j.View(); !terminal && v.State.Terminal() {
					emit(jobs.Event{Seq: v.Events, Kind: "job." + string(v.State),
						Data: map[string]any{"state": v.State, "error": v.Error}})
					fl.Flush()
				}
				return
			}
			emit(e)
			fl.Flush()
			if terminal {
				return
			}
		case <-heartbeat.C:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
