package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// syncBuf is a concurrency-safe log sink: the middleware logs from
// handler goroutines while the test reads.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// logLines decodes every complete JSON log line currently in the buffer.
func (s *syncBuf) logLines(t *testing.T) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(s.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line not JSON: %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

// findLog returns the first log record with the given msg and matching
// fields, or nil.
func findLog(recs []map[string]any, msg string, fields map[string]string) map[string]any {
	for _, rec := range recs {
		if rec["msg"] != msg {
			continue
		}
		ok := true
		for k, v := range fields {
			if got, _ := rec[k].(string); got != v {
				ok = false
				break
			}
		}
		if ok {
			return rec
		}
	}
	return nil
}

// TestIntegrationObservability is the end-to-end trace of one request
// through the observability layer, and what CI runs race-enabled: a
// /v1/check with a caller-chosen X-Request-Id produces (1) an echoed
// response header, (2) one structured access-log line carrying the same
// ID, (3) a slow-request warn line whose trace shows per-stage engine
// timings, (4) a latency observation in the endpoint's histogram on
// /metrics and /v1/stats, and (5) the same ID inside a coded error
// envelope on a failing request. Job SSE streams expose the engine's
// span begin/end events with elapsed timings.
func TestIntegrationObservability(t *testing.T) {
	var logs syncBuf
	srv := New(Config{
		MaxN:        3,
		Parallelism: 2,
		Logger:      obs.NewLogger(&logs, slog.LevelInfo),
		SlowRequest: time.Nanosecond, // everything is slow: exercise the trace dump
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	// ---- One traced check request.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/check",
		strings.NewReader(`{"protocol":"cas-wf:2","requests":[{"inputs":[0,1]},{"inputs":[0,1]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.HeaderRequestID, "obs-itest-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.HeaderRequestID); got != "obs-itest-1" {
		t.Fatalf("echoed request ID = %q, want the caller's", got)
	}

	// ---- The access log and the slow-request trace carry the ID. The
	// access line is written after the response is sent; poll briefly.
	var access, slow map[string]any
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		recs := logs.logLines(t)
		access = findLog(recs, "http.access", map[string]string{"request_id": "obs-itest-1"})
		slow = findLog(recs, "http.slow", map[string]string{"request_id": "obs-itest-1"})
		if access != nil && slow != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if access == nil {
		t.Fatalf("no access-log line for the request:\n%s", logs.String())
	}
	if access["endpoint"] != "check" || access["method"] != "POST" || access["status"] != float64(200) {
		t.Errorf("access line fields wrong: %v", access)
	}
	if slow == nil {
		t.Fatalf("no slow-request line despite 1ns threshold:\n%s", logs.String())
	}
	trace, _ := slow["trace"].(string)
	for _, stage := range []string{"checkbatch.start", "check.done", "checkbatch.done"} {
		if !strings.Contains(trace, stage) {
			t.Errorf("slow trace missing stage %q: %q", stage, trace)
		}
	}

	// ---- The latency landed in the endpoint histogram and /v1/stats.
	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	if !strings.Contains(string(body), `reprod_http_request_duration_seconds_count{endpoint="check"} 1`) {
		t.Fatalf("check latency not in histogram:\n%s", body)
	}
	code, body = get(t, srv, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if ls, ok := stats.Latency["check"]; !ok || ls.Count != 1 || ls.P99 <= 0 {
		t.Fatalf("stats latency summary wrong: %+v", stats.Latency)
	}

	// ---- Errors carry the ID in the envelope.
	req, err = http.NewRequest(http.MethodPost, ts.URL+"/v1/check", strings.NewReader(`{"protocol":"nope","requests":[{"inputs":[0,1]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.HeaderRequestID, "obs-itest-2")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var envelope errorResponse
	err = json.NewDecoder(resp.Body).Decode(&envelope)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest || envelope.Code != CodeBadRequest {
		t.Fatalf("bad check = %d %+v", resp.StatusCode, envelope)
	}
	if envelope.RequestID != "obs-itest-2" {
		t.Fatalf("error envelope requestId = %q, want the caller's", envelope.RequestID)
	}

	// ---- A request without an ID gets a generated one.
	code, _ = post(t, srv, "/v1/check", `{"protocol":"cas-wf:2","requests":[{"inputs":[0,1]}]}`)
	if code != http.StatusOK {
		t.Fatalf("check = %d", code)
	}

	// ---- Job SSE streams show per-stage engine timings.
	codeSubmit, respBody := httpPost(t, ts.URL+"/v1/jobs",
		`{"kind":"check","check":{"protocol":"cas-wf:2","requests":[{"inputs":[0,1]}]}}`)
	if codeSubmit != http.StatusAccepted {
		t.Fatalf("job submit = %d %s", codeSubmit, respBody)
	}
	var view struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(respBody, &view); err != nil {
		t.Fatal(err)
	}
	sresp, err := http.Get(ts.URL + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	events := readSSE(t, bufio.NewReader(sresp.Body))
	var sawStart, sawTimed bool
	for _, ev := range events {
		if ev.Event == "checkbatch.start" {
			sawStart = true
		}
		if ev.Event == "checkbatch.done" && strings.Contains(ev.Data, "elapsedMs") {
			sawTimed = true
		}
	}
	if !sawStart || !sawTimed {
		t.Fatalf("SSE stream missing span events (start=%v timed=%v): %+v", sawStart, sawTimed, events)
	}
}

// TestMiddlewarePanicRecovery pins the panic path: a panicking handler
// answers a coded 500 envelope carrying the request ID, the panic is
// logged with a stack, and the failure is counted against the endpoint.
func TestMiddlewarePanicRecovery(t *testing.T) {
	var logs syncBuf
	s := New(Config{Logger: obs.NewLogger(&logs, slog.LevelInfo)})
	es := &endpointStats{}
	h := s.instrument("boom", es, func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))

	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var envelope errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil {
		t.Fatalf("panic reply not a JSON envelope: %q", rec.Body.String())
	}
	if envelope.Code != CodeInternal || envelope.RequestID == "" {
		t.Fatalf("envelope = %+v, want internal + request ID", envelope)
	}
	if es.byClass[5].Load() != 1 {
		t.Errorf("5xx class not counted: %d", es.byClass[5].Load())
	}
	recs := logs.logLines(t)
	pl := findLog(recs, "http.panic", nil)
	if pl == nil {
		t.Fatalf("no http.panic log line:\n%s", logs.String())
	}
	if stack, _ := pl["stack"].(string); !strings.Contains(stack, "middleware_test") {
		t.Errorf("panic log has no useful stack: %v", pl)
	}
}

// TestRequestIDGeneration covers the middleware's identity decisions:
// absent and invalid client IDs are replaced by generated ones, valid
// ones are kept.
func TestRequestIDGeneration(t *testing.T) {
	s := New(Config{})
	for _, c := range []struct {
		sent     string
		wantKept bool
	}{
		{"", false},
		{"bad id with spaces", false},
		{strings.Repeat("x", 200), false},
		{"good-id_1:2/3", true},
	} {
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		if c.sent != "" {
			req.Header.Set(obs.HeaderRequestID, c.sent)
		}
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		got := rec.Header().Get(obs.HeaderRequestID)
		if c.wantKept && got != c.sent {
			t.Errorf("valid ID %q replaced by %q", c.sent, got)
		}
		if !c.wantKept && (got == c.sent || !obs.ValidRequestID(got)) {
			t.Errorf("sent %q, got echo %q — want a generated valid ID", c.sent, got)
		}
	}
}
