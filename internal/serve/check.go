package serve

import (
	"net/http"

	"repro/internal/model"
)

// DefaultCheckMaxNodes bounds one model-check item's explored state
// space when Config.CheckMaxNodes is 0. It matches the model checker's
// own default.
const DefaultCheckMaxNodes = 2_000_000

// CheckItemRequest is one element of a POST /v1/check batch.
type CheckItemRequest struct {
	// Inputs is the binary input of each process (length must equal the
	// protocol's process count — violations are per-item errors).
	Inputs []int `json:"inputs"`
	// CrashQuota[p] bounds process p's crashes (absent: crash-free).
	CrashQuota []int `json:"crashQuota,omitempty"`
	// MaxNodes bounds this item's explored state space (0 = server
	// default; capped at the server's CheckMaxNodes).
	MaxNodes int `json:"maxNodes,omitempty"`
	// SkipLiveness disables the recoverable wait-freedom (cycle) check.
	SkipLiveness bool `json:"skipLiveness,omitempty"`
	// TimeoutMs bounds this item's exploration independently of the
	// whole request's timeout; an expired item fails alone.
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// CheckRequestBody is the body of POST /v1/check.
type CheckRequestBody struct {
	// Protocol is a protocol registry descriptor ("tnn-wf:3,2",
	// "cas-rec:2", "tas-reg", ...).
	Protocol string `json:"protocol,omitempty"`
	// ProtocolFingerprint, instead of Protocol, selects a protocol
	// registered via POST /v1/protocols by its structural fingerprint.
	ProtocolFingerprint string `json:"protocolFingerprint,omitempty"`
	// Requests is the batch; all items run over shared exploration
	// graphs (one per distinct input vector).
	Requests []CheckItemRequest `json:"requests"`
	// Backend selects the level-decider backend for the whole batch
	// ("" = the server default). Unknown names answer 400
	// invalid_argument.
	Backend string `json:"backend,omitempty"`
}

// ViolationJSON is the wire form of one property violation.
type ViolationJSON struct {
	Kind   string `json:"kind"`
	Trace  string `json:"trace"`
	Config string `json:"config"`
	Detail string `json:"detail"`
}

// CheckItemResult is one element of a check response: the model-checking
// outcome, or the per-item error that prevented it.
type CheckItemResult struct {
	Error      string          `json:"error,omitempty"`
	OK         bool            `json:"ok"`
	Nodes      int             `json:"nodes,omitempty"`
	Truncated  bool            `json:"truncated,omitempty"`
	Violations []ViolationJSON `json:"violations,omitempty"`
}

// CheckResponse is the body of a POST /v1/check reply.
type CheckResponse struct {
	Protocol string            `json:"protocol"`
	Results  []CheckItemResult `json:"results"`
	// Graph reports the batch's shared-exploration-graph reuse.
	Graph model.GraphStats `json:"graph"`
}

// resolveCheckMaxNodes applies the server's default and ceiling to one
// item's node budget.
func (s *Server) resolveCheckMaxNodes(reqMax int) int {
	ceiling := s.cfg.CheckMaxNodes
	if reqMax <= 0 || reqMax > ceiling {
		return ceiling
	}
	return reqMax
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req CheckRequestBody
	if err := decodeBody(w, r, &req); err != nil {
		s.failBody(w, err)
		return
	}
	p, label, err := s.resolveProtocol(req.Protocol, req.ProtocolFingerprint)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Requests) == 0 {
		s.fail(w, http.StatusBadRequest, "check needs at least one request")
		return
	}
	if len(req.Requests) > s.cfg.BatchLimit {
		s.fail(w, http.StatusBadRequest, "batch of %d check requests exceeds the limit of %d",
			len(req.Requests), s.cfg.BatchLimit)
		return
	}
	backend, err := s.resolveBackend(req.Backend)
	if err != nil {
		s.failBackend(w, err)
		return
	}
	release, err := s.acquire(r)
	if err != nil {
		s.fail(w, http.StatusServiceUnavailable, "no analysis slot: %v", err)
		return
	}
	defer release()
	eng, cancel := s.requestEngine(r, s.cfg.MaxN, backend)
	defer cancel()

	// runCheckBatch turns per-item timeouts into per-request contexts on
	// the engine batch; only engine-level failures (context, invalid
	// protocol) land in err — item failures are reported per item.
	resp, err := s.runCheckBatch(r.Context(), eng, p, label, req.Requests)
	if err != nil {
		s.fail(w, analysisStatus(err), "check %s: %v", label, err)
		return
	}
	s.checked.Add(1)
	writeJSON(w, http.StatusOK, resp)
}
