package serve

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
)

// TestCompactEndpoint exercises POST /v1/compact against a real store:
// decisions computed by an analyze request are journaled, the compaction
// folds them into a snapshot, and the counters land in stats + metrics.
func TestCompactEndpoint(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "decisions.repro"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := New(Config{Cache: st.Cache(), Store: st, MaxN: 2})

	if code, body := post(t, s, "/v1/analyze", `{"type":"tas"}`); code != http.StatusOK {
		t.Fatalf("analyze = %d %s", code, body)
	}
	code, body := post(t, s, "/v1/compact", "")
	if code != http.StatusOK {
		t.Fatalf("compact = %d %s", code, body)
	}
	var resp CompactResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Compacted {
		t.Fatalf("compact response: %+v", resp)
	}
	if resp.Store.SnapshotBytes == 0 {
		t.Fatalf("compaction produced no snapshot: %+v", resp.Store)
	}

	code, body = get(t, s, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Compactions != 1 {
		t.Fatalf("compactions counter = %d, want 1", stats.Compactions)
	}
	if _, body := get(t, s, "/metrics"); !strings.Contains(string(body), "reprod_store_compactions_total 1") {
		t.Fatal("metrics missing reprod_store_compactions_total")
	}
}

// TestCompactWithoutStore answers 409: there is nothing to compact on a
// memory-only server, and that is a caller configuration error, not a
// server fault.
func TestCompactWithoutStore(t *testing.T) {
	s := New(Config{})
	code, body := post(t, s, "/v1/compact", "")
	if code != http.StatusConflict {
		t.Fatalf("compact without store = %d %s, want 409", code, body)
	}
}

// TestCheckGraphCacheAcrossRequests is the service-level tentpole check:
// two identical /v1/check requests — separate HTTP requests, separate
// request engines — share the server-wide graph cache, so the second
// expands nothing and the cache reports hits.
func TestCheckGraphCacheAcrossRequests(t *testing.T) {
	s := New(Config{})
	body1 := `{"protocol":"cas-rec:2","requests":[{"inputs":[0,1],"crashQuota":[1,1]}]}`
	code, resp1 := post(t, s, "/v1/check", body1)
	if code != http.StatusOK {
		t.Fatalf("first check = %d %s", code, resp1)
	}
	code, resp2 := post(t, s, "/v1/check", body1)
	if code != http.StatusOK {
		t.Fatalf("second check = %d %s", code, resp2)
	}
	var r1, r2 CheckResponse
	if err := json.Unmarshal(resp1, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(resp2, &r2); err != nil {
		t.Fatal(err)
	}
	if r1.Graph.Expanded == 0 {
		t.Fatalf("first request expanded nothing: %+v", r1.Graph)
	}
	if r2.Graph.Expanded != 0 {
		t.Fatalf("second request re-expanded %d nodes — graph cache not shared across requests", r2.Graph.Expanded)
	}
	if r1.Results[0].Nodes != r2.Results[0].Nodes || !r2.Results[0].OK {
		t.Fatalf("cached walk diverged: %+v vs %+v", r1.Results[0], r2.Results[0])
	}

	code, body := get(t, s, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.GraphCache.Hits == 0 || stats.GraphCache.Graphs == 0 || stats.GraphCache.Nodes == 0 {
		t.Fatalf("graph cache stats not threaded: %+v", stats.GraphCache)
	}
	if _, body := get(t, s, "/metrics"); !strings.Contains(string(body), `reprod_graph_cache_requests_total{outcome="hit"}`) {
		t.Fatal("metrics missing reprod_graph_cache_requests_total")
	}
}
