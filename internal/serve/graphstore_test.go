package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/graphstore"
)

// TestIntegrationGraphStoreWarmRestart is the persistence acceptance
// criterion end to end: a server restarted over the same -graph-dir
// serves a previously-checked protocol's /v1/check with ZERO new node
// expansions (the response's graph.expanded is the batch's expansion
// delta) and byte-identical results.
func TestIntegrationGraphStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	body := `{"protocol":"cas-rec:2","requests":[{"inputs":[0,1]},{"inputs":[0,1],"crashQuota":[1,1]}]}`

	// First life: expand, then flush on shutdown.
	gs1, err := graphstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := New(Config{MaxN: 3, GraphStore: gs1})
	code, cold := post(t, srv1, "/v1/check", body)
	if code != http.StatusOK {
		t.Fatalf("cold check = %d %s", code, cold)
	}
	var coldResp CheckResponse
	if err := json.Unmarshal(cold, &coldResp); err != nil {
		t.Fatal(err)
	}
	if coldResp.Graph.Expanded == 0 {
		t.Fatalf("cold check expanded nothing: %+v", coldResp.Graph)
	}
	if err := srv1.FlushGraphs(); err != nil {
		t.Fatal(err)
	}

	// Second life: a fresh server over the same directory.
	gs2, err := graphstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(Config{MaxN: 3, GraphStore: gs2})

	// The revision header rides on every /v1 response.
	req := httptest.NewRequest(http.MethodPost, "/v1/check", strings.NewReader(body))
	rec := httptest.NewRecorder()
	srv2.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Reprod-Api"); got != strconv.Itoa(APIRevision) {
		t.Errorf("X-Reprod-Api = %q, want %d", got, APIRevision)
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("warm check = %d %s", rec.Code, rec.Body.Bytes())
	}
	var warmResp CheckResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &warmResp); err != nil {
		t.Fatal(err)
	}
	if warmResp.Graph.Expanded != 0 {
		t.Fatalf("restarted server expanded %d nodes for a stored graph, want 0", warmResp.Graph.Expanded)
	}
	if !reflect.DeepEqual(warmResp.Results, coldResp.Results) {
		t.Fatalf("warm results diverged:\n got %+v\nwant %+v", warmResp.Results, coldResp.Results)
	}

	// The warm load is visible in stats and metrics.
	_, statsBody := get(t, srv2, "/v1/stats")
	var stats StatsResponse
	if err := json.Unmarshal(statsBody, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.GraphStore == nil || stats.GraphStore.Loads != 1 || stats.GraphStore.LoadedNodes == 0 {
		t.Fatalf("stats graphStore = %+v, want 1 load", stats.GraphStore)
	}
	_, metrics := get(t, srv2, "/metrics")
	for _, m := range []string{
		"reprod_graph_store_loads_total 1",
		`reprod_graph_store_nodes_total{direction="loaded"}`,
		"reprod_graph_store_errors_total 0",
	} {
		if !bytes.Contains(metrics, []byte(m)) {
			t.Errorf("metrics missing %q", m)
		}
	}
}

// TestVersionEndpoint pins the GET /v1/version contract.
func TestVersionEndpoint(t *testing.T) {
	s := New(Config{})
	code, body := get(t, s, "/v1/version")
	if code != http.StatusOK {
		t.Fatalf("version = %d %s", code, body)
	}
	var v VersionResponse
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.APIRevision != APIRevision || v.GoVersion == "" || v.Module == "" {
		t.Fatalf("version = %+v", v)
	}
}
