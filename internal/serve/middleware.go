package serve

import (
	"log/slog"
	"net/http"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// endpointStats is one endpoint's middleware-collected instrumentation:
// a latency histogram plus request totals by status class. Built once at
// route registration; all fields are concurrency-safe.
type endpointStats struct {
	latency obs.Histogram
	// byClass[c] counts responses with status in [100c, 100c+100);
	// index 0 collects nothing (no 0xx statuses exist).
	byClass [6]atomic.Uint64
}

// statusClasses are the reprod_requests_total `code` label values, by
// byClass index.
var statusClasses = [6]string{"0xx", "1xx", "2xx", "3xx", "4xx", "5xx"}

func classIndex(status int) int {
	c := status / 100
	if c < 0 || c >= len(statusClasses) {
		return 0
	}
	return c
}

// statusWriter wraps a ResponseWriter to capture the response status for
// the access log and per-endpoint counters. It forwards Flush so
// streaming handlers (the job SSE endpoint type-asserts http.Flusher)
// keep working behind the middleware.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.wrote = true
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.wrote = true
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) status() int {
	if w.wrote {
		return w.code
	}
	return http.StatusOK
}

// instrument wraps one route with the server's observability middleware:
//
//   - request identity: a client-supplied X-Request-Id (validated) or a
//     generated one is installed on the request context — every
//     InfoContext log line carries it — and echoed on the response
//     header before the handler runs, so even error envelopes written
//     mid-handler can reference it.
//   - a per-request obs.Trace on the context; the request engine streams
//     its progress events into it (see requestEngine), and the
//     slow-request log dumps it when the request exceeds the threshold.
//   - panic recovery: a panicking handler answers a coded 500 envelope
//     (when nothing was written yet) and logs the stack instead of
//     tearing down the connection silently.
//   - instrumentation: one access-log line, a latency observation in the
//     endpoint's histogram, and a status-class increment in
//     reprod_requests_total — for every endpoint and every outcome,
//     success or failure.
func (s *Server) instrument(endpoint string, es *endpointStats, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(obs.HeaderRequestID)
		if !obs.ValidRequestID(id) {
			id = obs.NewRequestID()
		}
		w.Header().Set(obs.HeaderRequestID, id)
		tr := obs.NewTrace()
		ctx := obs.WithTrace(obs.WithRequestID(r.Context(), id), tr)
		r = r.WithContext(ctx)
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if rec := recover(); rec != nil {
				s.logger.ErrorContext(ctx, "http.panic",
					slog.String("endpoint", endpoint),
					slog.Any("panic", rec),
					slog.String("stack", string(debug.Stack())))
				if !sw.wrote {
					s.failCode(sw, http.StatusInternalServerError, CodeInternal, "internal server error")
				}
			}
			elapsed := time.Since(start)
			status := sw.status()
			es.latency.Observe(elapsed)
			es.byClass[classIndex(status)].Add(1)
			s.logger.InfoContext(ctx, "http.access",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("endpoint", endpoint),
				slog.Int("status", status),
				slog.Duration("elapsed", elapsed))
			if s.cfg.SlowRequest > 0 && elapsed >= s.cfg.SlowRequest {
				s.logger.WarnContext(ctx, "http.slow",
					slog.String("endpoint", endpoint),
					slog.Int("status", status),
					slog.Duration("elapsed", elapsed),
					slog.String("trace", tr.String()))
			}
		}()
		h(sw, r)
	}
}

// traceProgress adapts engine progress events onto a request trace.
func traceProgress(tr *obs.Trace) func(engine.Event) {
	return func(ev engine.Event) {
		detail := ev.Type
		if ev.Detail != "" {
			detail = ev.Type + ", " + ev.Detail
		}
		tr.Add(ev.Kind, detail, ev.Elapsed)
	}
}
