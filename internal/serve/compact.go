package serve

import (
	"net/http"

	"repro/internal/store"
)

// CompactResponse is the body of a POST /v1/compact reply: the store's
// statistics after the compaction.
type CompactResponse struct {
	Compacted bool        `json:"compacted"`
	Store     store.Stats `json:"store"`
}

// handleCompact folds the decision store's journal into a fresh snapshot
// on demand (POST /v1/compact). Compaction runs on the store's flusher
// goroutine, serialized with appends and flushes, so it is safe while
// analysis traffic is in flight; the handler blocks until the snapshot
// is durable. Servers without a persistent store answer 409.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		s.fail(w, http.StatusConflict, "no persistent store configured (start with -cache-file)")
		return
	}
	if err := s.cfg.Store.Compact(); err != nil {
		s.fail(w, http.StatusInternalServerError, "compact: %v", err)
		return
	}
	s.compacted.Add(1)
	writeJSON(w, http.StatusOK, CompactResponse{Compacted: true, Store: s.cfg.Store.Stats()})
}
