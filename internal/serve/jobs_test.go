package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/model"
	"repro/internal/protodef"
	"repro/internal/registry"
)

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	ID    string
	Event string
	Data  string
}

// readSSE consumes a text/event-stream until the job's terminal event
// (or EOF), returning every parsed event.
func readSSE(t *testing.T, r *bufio.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return events
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if cur.Event != "" || cur.Data != "" {
				events = append(events, cur)
				if state, ok := strings.CutPrefix(cur.Event, "job."); ok && jobs.State(state).Terminal() {
					return events
				}
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			cur.ID = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		}
	}
}

// TestIntegrationJobsProtocolsSSE is the async subsystem's end-to-end
// contract, and what CI runs race-enabled:
//
//  1. A user-submitted descriptor that is structurally identical to the
//     registry's tnn-wf:3,2 registers under the registry build's exact
//     fingerprint (identity is structure, not names), and re-registering
//     is idempotent.
//  2. A /v1/check via that fingerprint reuses the exploration graph a
//     registry-named check already cached — the hit shows up in
//     /v1/stats under "graphCache".
//  3. A check job submitted to POST /v1/jobs streams at least one
//     engine progress event and a terminal "job.done" over SSE, and the
//     finished job's result is retrievable from GET /v1/jobs/{id}.
func TestIntegrationJobsProtocolsSSE(t *testing.T) {
	srv := New(Config{MaxN: 3, Parallelism: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	// ---- Descriptor twin of a registry protocol.
	reg, err := registry.ParseProtocol("tnn-wf:3,2")
	if err != nil {
		t.Fatal(err)
	}
	wantFP, err := model.Fingerprint(reg)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := protodef.Describe(reg)
	if err != nil {
		t.Fatal(err)
	}
	desc.Name = "my-tnn-twin" // nominal data must not matter
	body, err := json.Marshal(desc)
	if err != nil {
		t.Fatal(err)
	}

	code, respBody := httpPost(t, ts.URL+"/v1/protocols", string(body))
	if code != http.StatusCreated {
		t.Fatalf("register = %d %s, want 201", code, respBody)
	}
	var pr ProtocolResponse
	if err := json.Unmarshal(respBody, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Fingerprint != wantFP {
		t.Fatalf("registered fingerprint %s, want registry build's %s", pr.Fingerprint, wantFP)
	}
	if code, _ = httpPost(t, ts.URL+"/v1/protocols", string(body)); code != http.StatusOK {
		t.Fatalf("re-register = %d, want 200 (idempotent)", code)
	}
	code, detail := httpGet(t, ts.URL+"/v1/protocols/"+pr.Fingerprint)
	if code != http.StatusOK || !bytes.Contains(detail, []byte(`"descriptor"`)) {
		t.Fatalf("protocol detail = %d %s", code, detail)
	}

	// ---- Registry-named check warms the graph cache...
	checkItems := `"requests":[{"inputs":[0,1,1]},{"inputs":[0,1,1],"crashQuota":[1,0,0]}]`
	code, respBody = httpPost(t, ts.URL+"/v1/check", `{"protocol":"tnn-wf:3,2",`+checkItems+`}`)
	if code != http.StatusOK {
		t.Fatalf("named check = %d %s", code, respBody)
	}
	stats := httpGetStats(t, ts.URL)
	if stats.GraphCache.Misses == 0 {
		t.Fatalf("named check did not populate the graph cache: %+v", stats.GraphCache)
	}
	misses := stats.GraphCache.Misses

	// ---- ...and the fingerprint-addressed check walks the same graph.
	code, respBody = httpPost(t, ts.URL+"/v1/check",
		`{"protocolFingerprint":"`+pr.Fingerprint+`",`+checkItems+`}`)
	if code != http.StatusOK {
		t.Fatalf("fingerprint check = %d %s", code, respBody)
	}
	stats = httpGetStats(t, ts.URL)
	if stats.GraphCache.Hits == 0 {
		t.Fatalf("fingerprint check missed the cached graph: %+v", stats.GraphCache)
	}
	if stats.GraphCache.Misses != misses {
		t.Fatalf("fingerprint check expanded a new graph (misses %d -> %d): structural identity broken",
			misses, stats.GraphCache.Misses)
	}

	// ---- Async job with SSE progress.
	code, respBody = httpPost(t, ts.URL+"/v1/jobs",
		`{"kind":"check","check":{"protocolFingerprint":"`+pr.Fingerprint+`",`+checkItems+`}}`)
	if code != http.StatusAccepted {
		t.Fatalf("job submit = %d %s, want 202", code, respBody)
	}
	var view jobs.View
	if err := json.Unmarshal(respBody, &view); err != nil {
		t.Fatal(err)
	}
	if view.ID == "" || view.State.Terminal() {
		t.Fatalf("submitted job view wrong: %+v", view)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type = %q", ct)
	}
	events := readSSE(t, bufio.NewReader(resp.Body))
	var progress int
	terminal := ""
	for _, e := range events {
		if strings.HasPrefix(e.Event, "job.") {
			if jobs.State(strings.TrimPrefix(e.Event, "job.")).Terminal() {
				terminal = e.Event
			}
			continue
		}
		progress++
	}
	if progress < 1 {
		t.Errorf("SSE stream carried no engine progress events: %+v", events)
	}
	if terminal != "job.done" {
		t.Errorf("SSE terminal event = %q, want job.done (stream: %+v)", terminal, events)
	}

	code, respBody = httpGet(t, ts.URL+"/v1/jobs/"+view.ID)
	if code != http.StatusOK {
		t.Fatalf("job get = %d %s", code, respBody)
	}
	var done jobs.View
	if err := json.Unmarshal(respBody, &done); err != nil {
		t.Fatal(err)
	}
	if done.State != jobs.StateDone || done.Result == nil {
		t.Fatalf("finished job view wrong: %+v", done)
	}

	// ---- Jobs and protocols surface in stats and metrics.
	stats = httpGetStats(t, ts.URL)
	if stats.Jobs.Done < 1 {
		t.Errorf("stats jobs.done = %d, want >= 1", stats.Jobs.Done)
	}
	if stats.Protocols != 1 {
		t.Errorf("stats protocols = %d, want 1", stats.Protocols)
	}
	code, metrics := httpGet(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	for _, m := range []string{
		"reprod_jobs_queued", "reprod_jobs_running",
		`reprod_jobs_done_total{outcome="done"}`, "reprod_jobs_rejected_total",
		"reprod_protocols_registered 1",
	} {
		if !bytes.Contains(metrics, []byte(m)) {
			t.Errorf("metrics missing %q", m)
		}
	}
}

// httpGet GETs against a real socket.
func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestJobQueueFullAnswers429 pins the backpressure contract: with one
// worker pinned by a blocking job and a one-slot queue already holding a
// job, POST /v1/jobs answers 429 without disturbing the queued work.
func TestJobQueueFullAnswers429(t *testing.T) {
	srv := New(Config{MaxN: 2, JobWorkers: 1, JobQueue: 1})
	defer srv.Shutdown(context.Background())

	release := make(chan struct{})
	started := make(chan struct{})
	blocker, err := srv.jobsMgr.Submit(jobs.Spec{
		Kind: "test.block",
		Run: func(ctx context.Context, j *jobs.Job) (any, error) {
			close(started)
			select {
			case <-release:
				return "released", nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started // worker is pinned; the queue is empty again

	// Fill the single queue slot over HTTP.
	submit := `{"kind":"analyze","analyze":{"type":"register:2"}}`
	code, body := post(t, srv, "/v1/jobs", submit)
	if code != http.StatusAccepted {
		t.Fatalf("queue-filling submit = %d %s, want 202", code, body)
	}

	// The next submission must bounce with 429.
	code, body = post(t, srv, "/v1/jobs", submit)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-queue submit = %d %s, want 429", code, body)
	}
	if !bytes.Contains(body, []byte(`"code": "`+CodeQueueFull+`"`)) {
		t.Fatalf("429 body has no %s code: %s", CodeQueueFull, body)
	}
	st := srv.jobsMgr.Stats()
	if st.Rejected != 1 || st.Queued != 1 || st.Running != 1 {
		t.Fatalf("stats after rejection = %+v", st)
	}

	// Releasing the blocker drains the queue; everything finishes.
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		st = srv.jobsMgr.Stats()
		if st.Queued == 0 && st.Running == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue did not drain: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v := blocker.View(); v.State != jobs.StateDone {
		t.Fatalf("blocker finished as %s, want done", v.State)
	}
}

// TestJobValidationAndLifecycleHTTP covers the submission-time validation
// contract (bad requests are 400s, not failed jobs) and cancellation.
func TestJobValidationAndLifecycleHTTP(t *testing.T) {
	srv := New(Config{MaxN: 3})
	defer srv.Shutdown(context.Background())

	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"kind":"frobnicate"}`, http.StatusBadRequest},
		{`{"kind":"analyze"}`, http.StatusBadRequest},                                 // no payload
		{`{"kind":"analyze","analyze":{"type":"nosuchtype"}}`, http.StatusBadRequest}, // unresolvable
		{`{"kind":"check","check":{"protocol":"tas-reg","requests":[]}}`, http.StatusBadRequest},
		{`{"kind":"check","check":{"protocol":"tas-reg","protocolFingerprint":"abc","requests":[{"inputs":[0,1]}]}}`,
			http.StatusBadRequest}, // both selectors
		{`{"kind":"check","check":{"protocolFingerprint":"deadbeef","requests":[{"inputs":[0,1]}]}}`,
			http.StatusBadRequest}, // unknown fingerprint
		{`{"kind":"theorem13","theorem13":{"protocol":"tas-reg","inputs":[0]}}`, http.StatusBadRequest},
	} {
		code, body := post(t, srv, "/v1/jobs", tc.body)
		if code != tc.want {
			t.Errorf("POST /v1/jobs %s = %d %s, want %d", tc.body, code, body, tc.want)
		}
	}
	if st := srv.jobsMgr.Stats(); st.Failed != 0 {
		t.Errorf("validation errors became failed jobs: %+v", st)
	}

	// Unknown job paths 404.
	if code, _ := get(t, srv, "/v1/jobs/nope"); code != http.StatusNotFound {
		t.Errorf("GET unknown job = %d, want 404", code)
	}
	if code, _ := get(t, srv, "/v1/jobs/nope/events"); code != http.StatusNotFound {
		t.Errorf("GET unknown job events = %d, want 404", code)
	}

	// A theorem13 job runs end to end and renders a chain.
	code, body := post(t, srv, "/v1/jobs",
		`{"kind":"theorem13","theorem13":{"protocol":"cas-rec:2","inputs":[0,1],"crashQuota":[0,1]}}`)
	if code != http.StatusAccepted {
		t.Fatalf("theorem13 submit = %d %s", code, body)
	}
	var view jobs.View
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	j, ok := srv.jobsMgr.Get(view.ID)
	if !ok {
		t.Fatal("submitted job not found")
	}
	_, ch, cancel := j.Subscribe(0)
	defer cancel()
	deadline := time.After(30 * time.Second)
	for !j.State().Terminal() {
		select {
		case <-ch:
		case <-deadline:
			t.Fatal("theorem13 job did not finish")
		}
	}
	code, body = get(t, srv, "/v1/jobs/"+view.ID)
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"rendered"`)) {
		t.Fatalf("theorem13 result = %d %s", code, body)
	}
}

// TestProtocolRegisterErrors pins the registration error contract.
func TestProtocolRegisterErrors(t *testing.T) {
	srv := New(Config{MaxN: 2})
	defer srv.Shutdown(context.Background())

	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"not json", `{{{`, http.StatusBadRequest},
		{"unknown field", `{"name":"x","bogus":1}`, http.StatusBadRequest},
		{"invalid descriptor", `{"name":"x","procs":1}`, http.StatusBadRequest},
	} {
		code, body := post(t, srv, "/v1/protocols", tc.body)
		if code != tc.want {
			t.Errorf("%s: POST /v1/protocols = %d %s, want %d", tc.name, code, body, tc.want)
		}
	}
	if code, _ := get(t, srv, "/v1/protocols/"+strings.Repeat("0", 64)); code != http.StatusNotFound {
		t.Errorf("GET unknown protocol = %d, want 404", code)
	}
}

// TestAnalyzeByFingerprint covers /v1/analyze addressing a registered
// protocol's object type by fingerprint.
func TestAnalyzeByFingerprint(t *testing.T) {
	srv := New(Config{MaxN: 3})
	defer srv.Shutdown(context.Background())

	reg, err := registry.ParseProtocol("cas-rec:2")
	if err != nil {
		t.Fatal(err)
	}
	desc, err := protodef.Describe(reg)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(desc)
	if err != nil {
		t.Fatal(err)
	}
	code, resp := post(t, srv, "/v1/protocols", string(body))
	if code != http.StatusCreated {
		t.Fatalf("register = %d %s", code, resp)
	}
	var pr ProtocolResponse
	if err := json.Unmarshal(resp, &pr); err != nil {
		t.Fatal(err)
	}

	code, resp = post(t, srv, "/v1/analyze",
		fmt.Sprintf(`{"protocolFingerprint":%q}`, pr.Fingerprint))
	if code != http.StatusOK {
		t.Fatalf("analyze by fingerprint = %d %s", code, resp)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(resp, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Analysis == nil || ar.Analysis.ConsensusNumber == "" {
		t.Fatalf("fingerprint analysis wrong: %+v", ar.Analysis)
	}

	// Both or neither selector is a 400.
	if code, _ := post(t, srv, "/v1/analyze",
		fmt.Sprintf(`{"type":"tas","protocolFingerprint":%q}`, pr.Fingerprint)); code != http.StatusBadRequest {
		t.Errorf("analyze with both selectors = %d, want 400", code)
	}
	if code, _ := post(t, srv, "/v1/analyze", `{}`); code != http.StatusBadRequest {
		t.Errorf("analyze with no selector = %d, want 400", code)
	}
}
