package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/model"
	"repro/internal/protodef"
	"repro/internal/registry"
	"repro/internal/spec"
)

// ProtocolResponse is the body of a POST /v1/protocols reply: the
// submitted protocol's structural identity.
type ProtocolResponse struct {
	// Fingerprint is the structural fingerprint (model.Fingerprint) — the
	// identity accepted as protocolFingerprint by /v1/analyze, /v1/check
	// and /v1/jobs.
	Fingerprint string `json:"fingerprint"`
	Name        string `json:"name"`
	Procs       int    `json:"procs"`
	Outputs     int    `json:"outputs"`
	// Known reports that a structurally identical protocol was already
	// registered (its compilation is kept; names may differ).
	Known bool `json:"known"`
}

// ProtocolDetail is the body of a GET /v1/protocols/{fingerprint} reply.
type ProtocolDetail struct {
	ProtocolResponse
	// Descriptor is the registered protocol's validated descriptor.
	Descriptor *protodef.Descriptor `json:"descriptor"`
}

// handleProtocolRegister serves POST /v1/protocols: the body is a
// protodef JSON descriptor; the reply is its structural fingerprint.
// Registration is idempotent by fingerprint — resubmitting a known
// protocol (under any names) answers 200 with Known=true, a new one 201.
func (s *Server) handleProtocolRegister(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.failBody(w, err)
		return
	}
	c, err := protodef.Parse(body)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	fp, existed, err := s.protocols.Register(c)
	if err != nil {
		if errors.Is(err, protodef.ErrStoreFull) {
			s.fail(w, http.StatusInsufficientStorage, "%v", err)
			return
		}
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	status := http.StatusCreated
	if existed {
		status = http.StatusOK
		// Report the retained registration, not the resubmission.
		if kept, ok := s.protocols.Get(fp); ok {
			c = kept
		}
	}
	writeJSON(w, status, ProtocolResponse{
		Fingerprint: fp, Name: c.Name(), Procs: c.Procs(), Outputs: c.Outputs(), Known: existed,
	})
}

// handleProtocolGet serves GET /v1/protocols/{fingerprint}.
func (s *Server) handleProtocolGet(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fingerprint")
	c, ok := s.protocols.Get(fp)
	if !ok {
		s.fail(w, http.StatusNotFound, "no protocol registered under fingerprint %q", fp)
		return
	}
	writeJSON(w, http.StatusOK, ProtocolDetail{
		ProtocolResponse: ProtocolResponse{
			Fingerprint: fp, Name: c.Name(), Procs: c.Procs(), Outputs: c.Outputs(), Known: true,
		},
		Descriptor: c.Descriptor(),
	})
}

// resolveProtocol resolves the protocol of a check/theorem13 request:
// exactly one of name (a registry descriptor like "tnn-wf:3,2") or
// fingerprint (a /v1/protocols registration) must be given. The returned
// label echoes whichever identity the client used.
func (s *Server) resolveProtocol(name, fingerprint string) (model.Protocol, string, error) {
	switch {
	case name != "" && fingerprint != "":
		return nil, "", fmt.Errorf("give protocol or protocolFingerprint, not both")
	case fingerprint != "":
		c, ok := s.protocols.Get(fingerprint)
		if !ok {
			return nil, "", fmt.Errorf("no protocol registered under fingerprint %q (register it via POST /v1/protocols)", fingerprint)
		}
		return c, fingerprint, nil
	case name != "":
		p, err := registry.ParseProtocol(name)
		if err != nil {
			return nil, "", err
		}
		return p, name, nil
	}
	return nil, "", fmt.Errorf("protocol or protocolFingerprint required")
}

// resolveAnalyzeType resolves the type of an analyze request: a registry
// type descriptor, or — via protocolFingerprint — the single object type
// of a registered protocol.
func (s *Server) resolveAnalyzeType(req AnalyzeRequest) (*spec.FiniteType, string, error) {
	switch {
	case req.Type != "" && req.ProtocolFingerprint != "":
		return nil, "", fmt.Errorf("give type or protocolFingerprint, not both")
	case req.ProtocolFingerprint != "":
		c, ok := s.protocols.Get(req.ProtocolFingerprint)
		if !ok {
			return nil, "", fmt.Errorf("no protocol registered under fingerprint %q (register it via POST /v1/protocols)", req.ProtocolFingerprint)
		}
		var distinct []*spec.FiniteType
		seen := make(map[*spec.FiniteType]bool)
		for _, o := range c.Objects() {
			if !seen[o.Type] {
				seen[o.Type] = true
				distinct = append(distinct, o.Type)
			}
		}
		if len(distinct) != 1 {
			return nil, "", fmt.Errorf("protocol %q uses %d distinct object types; analyze is defined for single-type protocols",
				c.Name(), len(distinct))
		}
		return distinct[0], req.ProtocolFingerprint, nil
	}
	t, err := registry.Parse(req.Type)
	if err != nil {
		return nil, "", err
	}
	return t, req.Type, nil
}
