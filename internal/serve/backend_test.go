package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
)

// waitJobDone polls a job until it reaches the done state.
func waitJobDone(t *testing.T, s *Server, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		code, body := get(t, s, "/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("job get = %d %s", code, body)
		}
		var v struct {
			State jobs.State `json:"state"`
			Error string     `json:"error"`
		}
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.State == jobs.StateDone {
			return
		}
		if v.State.Terminal() {
			t.Fatalf("job ended %s: %s", v.State, v.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
}

// TestBackendSelection drives the backend field end to end: a bitset
// analyze answers the same analysis as the default backend, and both
// /v1/stats and /metrics report the per-backend decision counters.
func TestBackendSelection(t *testing.T) {
	s := New(Config{MaxN: 3})
	code, body := post(t, s, "/v1/analyze", `{"type":"tas","backend":"bitset"}`)
	if code != http.StatusOK {
		t.Fatalf("analyze backend=bitset = %d %s", code, body)
	}
	var resp AnalyzeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Analysis == nil || resp.Analysis.ConsensusNumber != "2" {
		t.Fatalf("bitset analysis wrong: %+v", resp.Analysis)
	}

	code, body = get(t, s, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats = %d %s", code, body)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Deciders["bitset"] == 0 {
		t.Fatalf("stats deciders = %v, want bitset > 0", stats.Deciders)
	}

	code, body = get(t, s, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	if !strings.Contains(string(body), `reprod_decider_total{backend="bitset"}`) {
		t.Fatalf("metrics missing reprod_decider_total{backend=\"bitset\"}:\n%s", body)
	}
}

// TestBackendDefaultConfig: Config.DefaultBackend applies when a request
// names no backend, and an unknown default is rejected per request.
func TestBackendDefaultConfig(t *testing.T) {
	s := New(Config{MaxN: 2, DefaultBackend: "bitset"})
	if code, body := post(t, s, "/v1/analyze", `{"type":"tas"}`); code != http.StatusOK {
		t.Fatalf("analyze with default backend = %d %s", code, body)
	}
	code, body := get(t, s, "/v1/stats")
	if code != http.StatusOK {
		t.Fatal("stats failed")
	}
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Deciders["bitset"] == 0 || stats.Deciders["search"] != 0 {
		t.Fatalf("deciders = %v, want only bitset", stats.Deciders)
	}
}

// TestBackendInvalidArgument: every endpoint carrying a backend field
// answers 400 with the invalid_argument code on an unknown name —
// including job submission, where the error must come at enqueue, not
// as a failed job.
func TestBackendInvalidArgument(t *testing.T) {
	s := New(Config{MaxN: 2})
	for _, tc := range []struct{ path, body string }{
		{"/v1/analyze", `{"type":"tas","backend":"nope"}`},
		{"/v1/batch", `{"types":["tas"],"backend":"nope"}`},
		{"/v1/check", `{"protocol":"tas-reg","requests":[{"inputs":[0,1]}],"backend":"nope"}`},
		{"/v1/jobs", `{"kind":"analyze","analyze":{"type":"tas","backend":"nope"}}`},
		{"/v1/jobs", `{"kind":"check","check":{"protocol":"tas-reg","requests":[{"inputs":[0,1]}],"backend":"nope"}}`},
		{"/v1/jobs", `{"kind":"theorem13","theorem13":{"protocol":"tas-reg","inputs":[0,1],"backend":"nope"}}`},
	} {
		code, body := post(t, s, tc.path, tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("POST %s %s = %d %s, want 400", tc.path, tc.body, code, body)
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		if er.Code != CodeInvalidArgument {
			t.Errorf("POST %s code = %q, want %q (%s)", tc.path, er.Code, CodeInvalidArgument, body)
		}
	}
	// No job may have been enqueued for the rejected submissions.
	if st := s.jobsMgr.Stats(); st.Queued != 0 || st.Running != 0 || st.Done != 0 || st.Failed != 0 {
		t.Fatalf("jobs ran despite invalid backend: %+v", st)
	}
}

// TestJobBackendRuns: a valid backend on a job submission is accepted
// and the job completes on that backend.
func TestJobBackendRuns(t *testing.T) {
	s := New(Config{MaxN: 2})
	code, body := post(t, s, "/v1/jobs", `{"kind":"analyze","analyze":{"type":"tas","backend":"bitset"}}`)
	if code != http.StatusAccepted {
		t.Fatalf("job submit = %d %s", code, body)
	}
	var v struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, s, v.ID)
	if runs := s.engMetrics.DeciderRuns(); runs["bitset"] == 0 {
		t.Fatalf("job ran no bitset decisions: %v", runs)
	}
}
