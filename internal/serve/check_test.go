package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func TestCheckBatchEndpoint(t *testing.T) {
	s := New(Config{})
	code, body := post(t, s, "/v1/check", `{
		"protocol": "cas-rec:2",
		"requests": [
			{"inputs": [0, 1]},
			{"inputs": [0, 1], "crashQuota": [1, 1]},
			{"inputs": [0, 1], "crashQuota": [1, 1]}
		]
	}`)
	if code != http.StatusOK {
		t.Fatalf("check = %d %s", code, body)
	}
	var resp CheckResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	for i, res := range resp.Results {
		if res.Error != "" || !res.OK || res.Nodes == 0 {
			t.Fatalf("item %d: %+v", i, res)
		}
	}
	// Items 1 and 2 are identical and item 0 is a prefix of their space:
	// the shared graph must have been reused.
	if resp.Graph.Expanded == 0 || resp.Graph.Reused == 0 {
		t.Fatalf("no shared-graph reuse reported: %+v", resp.Graph)
	}
	// Violating protocol: TAS+registers under individual crashes.
	code, body = post(t, s, "/v1/check", `{
		"protocol": "tas-reg",
		"requests": [{"inputs": [0, 1], "crashQuota": [1, 1]}]
	}`)
	if code != http.StatusOK {
		t.Fatalf("check = %d %s", code, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].OK || len(resp.Results[0].Violations) == 0 {
		t.Fatalf("tas-reg under crashes should violate, got %+v", resp.Results[0])
	}
	if resp.Results[0].Violations[0].Trace == "" || resp.Results[0].Violations[0].Kind == "" {
		t.Fatalf("violation missing trace/kind: %+v", resp.Results[0].Violations[0])
	}
}

// TestCheckPerItemErrors: one malformed item (wrong inputs length) must
// not fail the batch.
func TestCheckPerItemErrors(t *testing.T) {
	s := New(Config{})
	code, body := post(t, s, "/v1/check", `{
		"protocol": "cas-wf:2",
		"requests": [
			{"inputs": [0, 1]},
			{"inputs": [0, 1, 1]},
			{"inputs": [1, 0]}
		]
	}`)
	if code != http.StatusOK {
		t.Fatalf("check with one malformed item = %d %s", code, body)
	}
	var resp CheckResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Error != "" || !resp.Results[0].OK {
		t.Fatalf("item 0 should succeed: %+v", resp.Results[0])
	}
	if resp.Results[1].Error == "" || !strings.Contains(resp.Results[1].Error, "inputs") {
		t.Fatalf("item 1 should carry an inputs error: %+v", resp.Results[1])
	}
	if resp.Results[2].Error != "" || !resp.Results[2].OK {
		t.Fatalf("item 2 should succeed: %+v", resp.Results[2])
	}
}

// TestCheckPerItemTimeout: an item with an absurdly small timeout fails
// alone; its sibling completes.
func TestCheckPerItemTimeout(t *testing.T) {
	s := New(Config{})
	code, body := post(t, s, "/v1/check", `{
		"protocol": "cas-rec:2",
		"requests": [
			{"inputs": [0, 1], "crashQuota": [2, 2], "timeoutMs": 1},
			{"inputs": [0, 1]}
		]
	}`)
	if code != http.StatusOK {
		t.Fatalf("check = %d %s", code, body)
	}
	var resp CheckResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	// The 1ms item usually trips its deadline; if the machine is fast
	// enough to finish anyway, it must have finished correctly.
	if resp.Results[0].Error == "" && !resp.Results[0].OK {
		t.Fatalf("timed item neither errored nor completed: %+v", resp.Results[0])
	}
	if resp.Results[1].Error != "" || !resp.Results[1].OK {
		t.Fatalf("untimed sibling failed: %+v", resp.Results[1])
	}
}

func TestCheckRequestValidation(t *testing.T) {
	s := New(Config{BatchLimit: 2})
	for name, body := range map[string]string{
		"unknown protocol": `{"protocol":"nope","requests":[{"inputs":[0,1]}]}`,
		"empty batch":      `{"protocol":"cas-wf:2","requests":[]}`,
		"over limit":       `{"protocol":"cas-wf:2","requests":[{"inputs":[0,1]},{"inputs":[0,1]},{"inputs":[0,1]}]}`,
		"unknown field":    `{"protocol":"cas-wf:2","requests":[{"inputs":[0,1],"quota":[1,1]}]}`,
	} {
		code, respBody := post(t, s, "/v1/check", body)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: got %d %s, want 400", name, code, respBody)
		}
	}
}

// TestCheckStatsAndMetrics verifies graph counters surface on /v1/stats
// and /metrics.
func TestCheckStatsAndMetrics(t *testing.T) {
	s := New(Config{})
	code, body := post(t, s, "/v1/check", `{
		"protocol": "cas-wf:2",
		"requests": [{"inputs":[0,1]},{"inputs":[0,1]}]
	}`)
	if code != http.StatusOK {
		t.Fatalf("check = %d %s", code, body)
	}
	code, body = get(t, s, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Requests.Check != 1 || stats.ChecksRun != 2 {
		t.Fatalf("check counters wrong: %+v", stats.Requests)
	}
	if stats.Graph.Expanded == 0 || stats.Graph.Reused == 0 || stats.Graph.HitRate == 0 {
		t.Fatalf("graph counters not threaded to stats: %+v", stats.Graph)
	}
	code, body = get(t, s, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	text := string(body)
	for _, want := range []string{
		`reprod_requests_total{endpoint="check",code="2xx"} 1`,
		`reprod_http_request_duration_seconds_count{endpoint="check"} 1`,
		`reprod_engine_graph_duration_seconds_count{phase="resolve"}`,
		`reprod_graph_expansions_total{outcome="expanded"}`,
		`reprod_graph_expansions_total{outcome="reused"}`,
		`# TYPE reprod_cache_requests_total counter`,
		"reprod_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
}

// TestBatchPerItemErrorPaths re-checks the analyze-batch contract next to
// the check-batch one: a malformed descriptor mid-batch must not cost the
// other items their analyses.
func TestBatchPerItemErrorPaths(t *testing.T) {
	s := New(Config{MaxN: 3})
	code, body := post(t, s, "/v1/batch", `{"types":["tas","definitely-not-a-type","register:2"],"maxN":2}`)
	if code != http.StatusOK {
		t.Fatalf("batch = %d %s", code, body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	if resp.Results[0].Analysis == nil || resp.Results[0].Error != "" {
		t.Fatalf("tas should analyze: %+v", resp.Results[0])
	}
	if resp.Results[1].Analysis != nil || !strings.Contains(resp.Results[1].Error, "unknown type") {
		t.Fatalf("bad descriptor should carry its own error: %+v", resp.Results[1])
	}
	if resp.Results[2].Analysis == nil || resp.Results[2].Error != "" {
		t.Fatalf("register:2 should analyze: %+v", resp.Results[2])
	}
}
