package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// post drives the handler without sockets.
func post(t *testing.T, s *Server, path, body string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

func get(t *testing.T, s *Server, path string) (int, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Code, rec.Body.Bytes()
}

func TestHealthz(t *testing.T) {
	s := New(Config{})
	code, body := get(t, s, "/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz = %d %s", code, body)
	}
}

func TestAnalyzeTAS(t *testing.T) {
	s := New(Config{MaxN: 3})
	code, body := post(t, s, "/v1/analyze", `{"type":"tas"}`)
	if code != http.StatusOK {
		t.Fatalf("analyze = %d %s", code, body)
	}
	var resp AnalyzeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	a := resp.Analysis
	if a == nil || a.ConsensusNumber != "2" || a.RecoverableConsensusNumber != "1" || !a.Exact {
		t.Fatalf("tas analysis wrong: %+v", a)
	}
	if len(a.Levels) != 2 || !a.Levels[0].Discerning || a.Levels[0].DiscerningWitness == nil {
		t.Fatalf("tas levels wrong: %+v", a.Levels)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	s := New(Config{MaxN: 4})
	for _, tc := range []struct {
		path, body string
		want       int
	}{
		{"/v1/analyze", `{"type":"nosuchtype"}`, http.StatusBadRequest},
		{"/v1/analyze", `{"type":"tas","maxN":9}`, http.StatusBadRequest}, // above server ceiling
		{"/v1/analyze", `{"type":"tas","maxN":1}`, http.StatusBadRequest},
		{"/v1/analyze", `not json`, http.StatusBadRequest},
		{"/v1/analyze", `{"type":"tas","typo":1}`, http.StatusBadRequest}, // unknown field
		{"/v1/batch", `{"types":[]}`, http.StatusBadRequest},
	} {
		code, body := post(t, s, tc.path, tc.body)
		if code != tc.want {
			t.Errorf("POST %s %s = %d %s, want %d", tc.path, tc.body, code, body, tc.want)
		}
		var er struct {
			Code  string `json:"code"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &er); err != nil || er.Code != CodeBadRequest || er.Error == "" {
			t.Errorf("POST %s %s: want a %q error envelope, got %s", tc.path, tc.body, CodeBadRequest, body)
		}
	}
	// Wrong method routes to 405 via the pattern mux.
	if code, _ := get(t, s, "/v1/analyze"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/analyze = %d, want 405", code)
	}
	// Every failure above must be counted.
	_, body := get(t, s, "/v1/stats")
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Requests.Failed < 6 {
		t.Errorf("failed counter = %d, want >= 6", stats.Requests.Failed)
	}
}

func TestBatchMixedDescriptors(t *testing.T) {
	s := New(Config{MaxN: 3})
	code, body := post(t, s, "/v1/batch", `{"types":["tas","nosuchtype","register:2"]}`)
	if code != http.StatusOK {
		t.Fatalf("batch = %d %s", code, body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("want 3 results, got %d", len(resp.Results))
	}
	if resp.Results[0].Analysis == nil || resp.Results[0].Error != "" {
		t.Errorf("tas result wrong: %+v", resp.Results[0])
	}
	if resp.Results[1].Analysis != nil || resp.Results[1].Error == "" {
		t.Errorf("bad descriptor result wrong: %+v", resp.Results[1])
	}
	if resp.Results[2].Analysis == nil || resp.Results[2].Analysis.ConsensusNumber != "1" {
		t.Errorf("register result wrong: %+v", resp.Results[2])
	}
}

func TestRequestTimeout(t *testing.T) {
	s := New(Config{MaxN: 3, RequestTimeout: time.Nanosecond})
	code, body := post(t, s, "/v1/analyze", `{"type":"tas"}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("analyze under 1ns timeout = %d %s, want 504", code, body)
	}
}

func TestBatchLimit(t *testing.T) {
	s := New(Config{BatchLimit: 2})
	code, _ := post(t, s, "/v1/batch", `{"types":["tas","tas","tas"]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("over-limit batch = %d, want 400", code)
	}
}

// httpPost posts against a real socket (the integration path).
func httpPost(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func httpGetStats(t *testing.T, url string) StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestIntegrationConcurrentBatchAndWarmRestart is the service's
// end-to-end contract, and what CI runs race-enabled:
//
//  1. Run 1 starts on an ephemeral port with a fresh persistent cache,
//     serves a concurrent storm of identical analyzes plus a batch, and
//     must collapse the duplicates in the cache (singleflight): the
//     distinct decisions computed stay at the number of distinct levels,
//     everything else is hits.
//  2. Run 2 restarts the service on the same cache file: the same batch
//     must be served entirely from warm-loaded decisions (>= 90% hit
//     rate in /v1/stats, zero misses in fact) with responses
//     byte-identical to run 1's.
func TestIntegrationConcurrentBatchAndWarmRestart(t *testing.T) {
	cachePath := filepath.Join(t.TempDir(), "decisions")
	const batchBody = `{"types":["tas","tnn:3,1","y:3","register:2","tas"],"maxN":4}`
	const analyzeBody = `{"type":"tnn:3,1","maxN":4}`

	// ---- Run 1: cold cache, concurrent storm.
	st1, err := store.Open(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := New(Config{Cache: st1.Cache(), Store: st1, MaxN: 4, Parallelism: 4})
	ts1 := httptest.NewServer(srv1)

	const stormers = 8
	var wg sync.WaitGroup
	analyzeBodies := make([][]byte, stormers)
	for i := 0; i < stormers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body := httpPost(t, ts1.URL+"/v1/analyze", analyzeBody)
			if code != http.StatusOK {
				t.Errorf("storm analyze %d = %d %s", i, code, body)
			}
			analyzeBodies[i] = body
		}(i)
	}
	wg.Add(1)
	var batch1 []byte
	go func() {
		defer wg.Done()
		code, body := httpPost(t, ts1.URL+"/v1/batch", batchBody)
		if code != http.StatusOK {
			t.Errorf("batch = %d %s", code, body)
		}
		batch1 = body
	}()
	wg.Wait()
	for i := 1; i < stormers; i++ {
		if !bytes.Equal(analyzeBodies[0], analyzeBodies[i]) {
			t.Errorf("storm responses differ:\n%s\n%s", analyzeBodies[0], analyzeBodies[i])
		}
	}

	stats1 := httpGetStats(t, ts1.URL)
	// Distinct decisions across the storm + batch: 4 distinct types
	// ("tas" repeats in the batch, tnn:3,1 repeats across endpoints),
	// 2 properties, levels n=2..4.
	const distinct = 4 * 2 * 3
	if stats1.Cache.Misses != distinct {
		t.Errorf("run 1 computed %d decisions, want %d (singleflight leak?)", stats1.Cache.Misses, distinct)
	}
	if stats1.Cache.Hits == 0 {
		t.Error("run 1 saw no cache hits despite duplicate traffic")
	}
	if stats1.Store == nil || stats1.Store.Path != cachePath {
		t.Errorf("run 1 store stats missing: %+v", stats1.Store)
	}
	ts1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// ---- Run 2: warm restart against the same cache file.
	st2, err := store.Open(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Stats().Loaded != distinct {
		t.Fatalf("run 2 warm-loaded %d decisions, want %d", st2.Stats().Loaded, distinct)
	}
	srv2 := New(Config{Cache: st2.Cache(), Store: st2, MaxN: 4, Parallelism: 4})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()

	code, batch2 := httpPost(t, ts2.URL+"/v1/batch", batchBody)
	if code != http.StatusOK {
		t.Fatalf("run 2 batch = %d %s", code, batch2)
	}
	if !bytes.Equal(batch1, batch2) {
		t.Errorf("batch responses not byte-identical across restart:\n run1 %s\n run2 %s", batch1, batch2)
	}
	code, analyze2 := httpPost(t, ts2.URL+"/v1/analyze", analyzeBody)
	if code != http.StatusOK {
		t.Fatalf("run 2 analyze = %d %s", code, analyze2)
	}
	if !bytes.Equal(analyzeBodies[0], analyze2) {
		t.Errorf("analyze responses not byte-identical across restart:\n run1 %s\n run2 %s", analyzeBodies[0], analyze2)
	}

	stats2 := httpGetStats(t, ts2.URL)
	if stats2.Cache.Misses != 0 {
		t.Errorf("run 2 recomputed %d decisions, want 0", stats2.Cache.Misses)
	}
	if stats2.Cache.HitRate < 0.9 {
		t.Errorf("run 2 hit rate %.2f, want >= 0.90", stats2.Cache.HitRate)
	}
	if stats2.TypesAnalyzed == 0 || stats2.Requests.Batch != 1 {
		t.Errorf("run 2 request counters wrong: %+v", stats2.Requests)
	}
}

// TestStatsShape pins the stats fields external monitors rely on.
func TestStatsShape(t *testing.T) {
	s := New(Config{MaxN: 2})
	if code, body := post(t, s, "/v1/analyze", `{"type":"register:2"}`); code != http.StatusOK {
		t.Fatalf("analyze = %d %s", code, body)
	}
	_, body := get(t, s, "/v1/stats")
	for _, field := range []string{"uptimeSeconds", "hits", "misses", "entries", "hitRate", "typesAnalyzed", "inflight"} {
		if !bytes.Contains(body, []byte(fmt.Sprintf("%q", field))) {
			t.Errorf("stats body missing %q:\n%s", field, body)
		}
	}
}
