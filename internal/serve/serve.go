package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/decider"
	"repro/internal/discern"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/protodef"
	"repro/internal/record"
	"repro/internal/registry"
	"repro/internal/spec"
	"repro/internal/store"
)

// Defaults for zero Config fields.
const (
	// DefaultMaxN bounds analyses when Config.MaxN is 0.
	DefaultMaxN = 5
	// DefaultRequestTimeout bounds one request's analysis when
	// Config.RequestTimeout is 0.
	DefaultRequestTimeout = 30 * time.Second
	// DefaultBatchLimit bounds the descriptors of one batch request when
	// Config.BatchLimit is 0.
	DefaultBatchLimit = 256
	// maxBodyBytes bounds a request body.
	maxBodyBytes = 1 << 20
)

// Config parameterizes a Server.
type Config struct {
	// Cache is the decision cache shared by every request's engine; the
	// singleflight collapsing of concurrent identical requests lives
	// here. nil gets a fresh private cache. For persistence across
	// restarts, pass a store-backed cache (store.Open(...).Cache()).
	Cache *engine.Cache
	// Store, when non-nil, is reported by /v1/stats. The server never
	// closes it — the owning process flushes it at shutdown.
	Store *store.Store
	// MaxN is both the default and the ceiling of a request's maxN:
	// the service bounds the exponential work one request can demand.
	// Values below 2 (including the zero value) select DefaultMaxN —
	// levels start at n=2, so no smaller ceiling is servable.
	MaxN int
	// Parallelism is each request engine's worker-pool width
	// (0 = runtime.NumCPU()).
	Parallelism int
	// ShardThreshold is passed through to each request engine
	// (see engine.WithShardThreshold).
	ShardThreshold int
	// DefaultBackend is the level-decider backend requests run on when
	// they name none ("" = the engine default, "search"). Requests
	// override it per call with their "backend" field; unknown names —
	// here or in requests — answer 400 invalid_argument.
	DefaultBackend string
	// RequestTimeout bounds one request's analysis
	// (0 = DefaultRequestTimeout; negative = no timeout).
	RequestTimeout time.Duration
	// MaxConcurrent bounds the requests analyzing at once; further
	// requests queue until a slot frees or their context fires
	// (0 = 2 × Parallelism).
	MaxConcurrent int
	// BatchLimit bounds the descriptors of one batch request and the
	// items of one check request (0 = DefaultBatchLimit).
	BatchLimit int
	// CheckMaxNodes is both the default and the ceiling of one check
	// item's explored-state budget (0 = DefaultCheckMaxNodes): the
	// service bounds the memory one item can demand.
	CheckMaxNodes int
	// GraphCacheBudget bounds the server-wide exploration-graph cache
	// shared by every request's engine, in total interned nodes
	// (0 = engine.DefaultGraphCacheBudget; negative disables graph
	// caching — every request re-expands). Repeated /v1/check traffic
	// for the same protocol and inputs walks warm cached graphs instead
	// of re-expanding the state space per request.
	GraphCacheBudget int
	// GraphStore, when non-nil, backs the graph cache with an on-disk
	// store (graphstore.Open): cache misses try a disk load before
	// expanding, and expanded graphs spill back asynchronously, so a
	// restarted server serves previously-explored protocols warm. It is
	// ignored when graph caching is disabled (GraphCacheBudget < 0).
	// The owning process calls FlushGraphs at shutdown.
	GraphStore engine.GraphStore
	// JobWorkers bounds the async jobs running concurrently
	// (0 = jobs.DefaultWorkers). Jobs run outside the MaxConcurrent
	// request slots — this is their own admission control.
	JobWorkers int
	// JobQueue bounds the async jobs waiting to run; submissions beyond
	// it answer 429 (0 = jobs.DefaultQueueLimit).
	JobQueue int
	// JobTimeout bounds one job's run when the submission names no
	// timeout (0 = jobs.DefaultJobTimeout).
	JobTimeout time.Duration
	// Logger receives the server's structured logs: one access-log line
	// per request, slow-request traces, panic reports. Log calls carry
	// the request context, so a logger built with obs.NewLogger stamps
	// every line with the request ID. nil discards all logs (the
	// pre-observability behavior, and what most tests want).
	Logger *slog.Logger
	// SlowRequest is the latency threshold above which a request logs a
	// warn-level line with its per-stage engine trace attached. 0
	// disables the slow-request log.
	SlowRequest time.Duration
}

// Server is the reprod HTTP service. Construct with New.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	sem   chan struct{}
	start time.Time
	// graphs is the server-wide exploration-graph cache installed into
	// every per-request engine, so state spaces expanded for one request
	// serve all later ones.
	graphs *engine.GraphCache
	// jobsMgr runs the async job subsystem (POST /v1/jobs); Shutdown
	// drains it.
	jobsMgr *jobs.Manager
	// protocols is the fingerprint-keyed registry of user-submitted
	// protocols (POST /v1/protocols).
	protocols *protodef.Store
	// logger is Config.Logger or a nop logger, never nil.
	logger *slog.Logger
	// engMetrics collects engine-side latency histograms (graph
	// resolution, cold expansion, warm walks) across every per-request
	// and per-job engine.
	engMetrics *engine.Metrics
	// endpoints maps endpoint name to its middleware instrumentation;
	// read-only after New.
	endpoints map[string]*endpointStats
	// endpointOrder fixes the exposition order of endpoint series.
	endpointOrder []string

	analyzed  atomic.Uint64 // analyze requests served OK
	batched   atomic.Uint64 // batch requests served OK
	checked   atomic.Uint64 // check requests served OK
	failed    atomic.Uint64 // requests answered with an error status
	inflight  atomic.Int64  // requests holding an analysis slot
	typesDone atomic.Uint64 // type analyses completed across both endpoints

	checkItems    atomic.Uint64 // model-check items completed across check batches
	graphExpanded atomic.Uint64 // shared-graph expansions performed
	graphReused   atomic.Uint64 // shared-graph expansions amortized away
	compacted     atomic.Uint64 // on-demand store compactions served OK
}

// New builds a Server, normalizing zero Config fields to the defaults.
func New(cfg Config) *Server {
	if cfg.Cache == nil {
		cfg.Cache = engine.NewCache()
	}
	if cfg.MaxN < 2 {
		cfg.MaxN = DefaultMaxN
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.NumCPU()
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2 * cfg.Parallelism
	}
	if cfg.BatchLimit <= 0 {
		cfg.BatchLimit = DefaultBatchLimit
	}
	if cfg.CheckMaxNodes <= 0 {
		cfg.CheckMaxNodes = DefaultCheckMaxNodes
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux(), sem: make(chan struct{}, cfg.MaxConcurrent), start: time.Now()}
	if cfg.GraphCacheBudget >= 0 {
		s.graphs = engine.NewGraphCache(cfg.GraphCacheBudget)
		if cfg.GraphStore != nil {
			s.graphs.SetStore(cfg.GraphStore)
		}
	}
	s.jobsMgr = jobs.NewManager(jobs.Config{
		Workers:        cfg.JobWorkers,
		QueueLimit:     cfg.JobQueue,
		DefaultTimeout: cfg.JobTimeout,
	})
	s.protocols = protodef.NewStore(0)
	s.logger = cfg.Logger
	if s.logger == nil {
		s.logger = obs.NopLogger()
	}
	s.engMetrics = engine.NewMetrics()

	// Every route goes through the instrument middleware, so ALL
	// endpoints — including stats, version, metrics and health — are
	// request-ID-stamped, access-logged, latency-histogrammed and
	// counted in reprod_requests_total by status class. Routes sharing an
	// endpoint name share one stats bucket. The long-lived SSE stream
	// gets its own bucket so its connection lifetimes do not skew the
	// jobs CRUD latency histogram.
	s.endpoints = make(map[string]*endpointStats)
	for _, rt := range []struct {
		pattern  string
		endpoint string
		h        http.HandlerFunc
	}{
		{"POST /v1/analyze", "analyze", s.handleAnalyze},
		{"POST /v1/batch", "batch", s.handleBatch},
		{"POST /v1/check", "check", s.handleCheck},
		{"POST /v1/compact", "compact", s.handleCompact},
		{"POST /v1/protocols", "protocols", s.handleProtocolRegister},
		{"GET /v1/protocols/{fingerprint}", "protocols", s.handleProtocolGet},
		{"POST /v1/jobs", "jobs", s.handleJobSubmit},
		{"GET /v1/jobs/{id}", "jobs", s.handleJobGet},
		{"DELETE /v1/jobs/{id}", "jobs", s.handleJobCancel},
		{"GET /v1/jobs/{id}/events", "jobs.events", s.handleJobEvents},
		{"GET /v1/stats", "stats", s.handleStats},
		{"GET /v1/version", "version", s.handleVersion},
		{"GET /metrics", "metrics", s.handleMetrics},
		{"GET /healthz", "healthz", s.handleHealthz},
	} {
		es := s.endpoints[rt.endpoint]
		if es == nil {
			es = &endpointStats{}
			s.endpoints[rt.endpoint] = es
			s.endpointOrder = append(s.endpointOrder, rt.endpoint)
		}
		s.mux.HandleFunc(rt.pattern, s.instrument(rt.endpoint, es, rt.h))
	}
	return s
}

// Shutdown drains the async job subsystem: intake stops, queued jobs
// cancel, running jobs' contexts fire, and every job event stream ends
// with a terminal event — which in turn lets in-flight SSE handlers
// return. Call it BEFORE http.Server.Shutdown (so the streams can
// close) and before any store flush (so no job appends decisions after
// the final journal write). Bounded by ctx like http.Server.Shutdown.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.jobsMgr.Close(ctx)
}

// FlushGraphs synchronously spills every dirty cached exploration graph
// to the configured graph store. Call it AFTER Shutdown and the HTTP
// drain (so no job or request is still growing a graph mid-export) and
// before the process exits. A no-op without a graph cache or store.
func (s *Server) FlushGraphs() error {
	if s.graphs == nil {
		return nil
	}
	return s.graphs.Flush()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	stampAPIRevision(w, r)
	s.mux.ServeHTTP(w, r)
}

// AnalyzeRequest is the body of POST /v1/analyze.
type AnalyzeRequest struct {
	// Type is a registry descriptor ("tas", "tnn:5,2",
	// "product:tas,register:2", ...).
	Type string `json:"type"`
	// ProtocolFingerprint, instead of Type, selects the single object
	// type of a protocol registered via POST /v1/protocols.
	ProtocolFingerprint string `json:"protocolFingerprint,omitempty"`
	// MaxN overrides the analysis bound (0 = server default; capped at
	// the server's MaxN).
	MaxN int `json:"maxN,omitempty"`
	// Backend selects the level-decider backend ("search", "bitset",
	// "auto"; "" = the server default). Unknown names answer 400
	// invalid_argument.
	Backend string `json:"backend,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Types []string `json:"types"`
	MaxN  int      `json:"maxN,omitempty"`
	// Backend selects the level-decider backend for the whole batch
	// ("" = the server default).
	Backend string `json:"backend,omitempty"`
}

// Level is one row of a type's decision spectrum.
type Level struct {
	N          int  `json:"n"`
	Discerning bool `json:"discerning"`
	Recording  bool `json:"recording"`
	// The witnesses certify positive decisions (omitted otherwise).
	DiscerningWitness *discern.Witness `json:"discerningWitness,omitempty"`
	RecordingWitness  *record.Witness  `json:"recordingWitness,omitempty"`
}

// Analysis is the JSON rendering of one type's hierarchy analysis.
type Analysis struct {
	Name     string `json:"name"`
	Readable bool   `json:"readable"`
	MaxN     int    `json:"maxN"`
	// Exact reports whether the two numbers are exact hierarchy
	// positions (readable types) or decider indicators.
	Exact bool `json:"exact"`
	// ConsensusNumber and RecoverableConsensusNumber render as "k" or
	// ">=maxN" (cf. core.LevelString).
	ConsensusNumber            string  `json:"consensusNumber"`
	RecoverableConsensusNumber string  `json:"recoverableConsensusNumber"`
	Levels                     []Level `json:"levels"`
}

// TypeResult is one element of a batch response: the analysis, or the
// per-type error that prevented it.
type TypeResult struct {
	Type     string    `json:"type"`
	Error    string    `json:"error,omitempty"`
	Analysis *Analysis `json:"analysis,omitempty"`
}

// BatchResponse is the body of a POST /v1/batch reply.
type BatchResponse struct {
	Results []TypeResult `json:"results"`
}

// AnalyzeResponse is the body of a POST /v1/analyze reply.
type AnalyzeResponse struct {
	Type     string    `json:"type"`
	Analysis *Analysis `json:"analysis"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Requests      struct {
		Analyze uint64 `json:"analyze"`
		Batch   uint64 `json:"batch"`
		Check   uint64 `json:"check"`
		Failed  uint64 `json:"failed"`
	} `json:"requests"`
	Inflight      int64  `json:"inflight"`
	TypesAnalyzed uint64 `json:"typesAnalyzed"`
	ChecksRun     uint64 `json:"checksRun"`
	Cache         struct {
		Hits    uint64  `json:"hits"`
		Misses  uint64  `json:"misses"`
		Entries int     `json:"entries"`
		HitRate float64 `json:"hitRate"`
	} `json:"cache"`
	// Graph aggregates shared-exploration-graph reuse across every
	// /v1/check batch served so far.
	Graph struct {
		Expanded uint64  `json:"expanded"`
		Reused   uint64  `json:"reused"`
		HitRate  float64 `json:"hitRate"`
	} `json:"graph"`
	// GraphCache reports the server-wide exploration-graph cache: how
	// many check/chain graph resolutions found a live cached graph, how
	// many graphs were evicted to fit the node budget, and the cache's
	// current footprint.
	GraphCache struct {
		Hits    uint64  `json:"hits"`
		Misses  uint64  `json:"misses"`
		Evicted uint64  `json:"evicted"`
		Graphs  int     `json:"graphs"`
		Nodes   uint64  `json:"nodes"`
		HitRate float64 `json:"hitRate"`
	} `json:"graphCache"`
	// GraphStore reports the graph cache's on-disk persistence layer
	// (absent when no graph store is configured): warm loads served on
	// cache misses, nodes imported from and spilled to disk, and store
	// I/O errors (each of which degrades only that key to in-memory
	// operation, never a request).
	GraphStore *engine.GraphStoreStats `json:"graphStore,omitempty"`
	// Jobs reports the async job subsystem: queue and worker gauges plus
	// lifetime terminal-state and rejection totals.
	Jobs jobs.Stats `json:"jobs"`
	// Protocols is the number of distinct user-submitted protocols
	// registered by fingerprint.
	Protocols int `json:"protocols"`
	// Deciders counts level decisions actually computed (memo-cache
	// misses) per level-decider backend, across every request and job
	// engine. Absent until the first computed decision.
	Deciders map[string]uint64 `json:"deciders,omitempty"`
	// Compactions counts POST /v1/compact requests served OK.
	Compactions uint64       `json:"compactions"`
	Store       *store.Stats `json:"store,omitempty"`
	// Latency summarizes the middleware's per-endpoint latency
	// histograms (endpoints that served at least one request). The same
	// distributions are exported in full bucket form as
	// reprod_http_request_duration_seconds on /metrics.
	Latency map[string]LatencySummary `json:"latency,omitempty"`
}

// LatencySummary condenses one latency histogram for /v1/stats. The
// quantiles are bucket-interpolated estimates, in seconds.
type LatencySummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"meanSeconds"`
	P50   float64 `json:"p50Seconds"`
	P99   float64 `json:"p99Seconds"`
}

// Stable machine-readable error codes, the `code` field of every error
// envelope. Clients branch on these, never on the human-readable
// message: codes are API surface (frozen per API revision), messages
// are not.
const (
	// CodeBadRequest: the request is malformed or references something
	// invalid (bad body, unknown descriptor, out-of-range bound,
	// misconfigured endpoint).
	CodeBadRequest = "bad_request"
	// CodeNotFound: the named resource (job, registered protocol) does
	// not exist.
	CodeNotFound = "not_found"
	// CodeQueueFull: admission control rejected or cut the request —
	// the job queue is full, or no analysis slot freed in time.
	CodeQueueFull = "queue_full"
	// CodeShuttingDown: the server is draining; retry against another
	// instance.
	CodeShuttingDown = "shutting_down"
	// CodeTimeout: the request's analysis deadline fired, or the client
	// went away mid-analysis.
	CodeTimeout = "timeout"
	// CodeTooLarge: the request body or the stored artifact exceeds a
	// size limit.
	CodeTooLarge = "too_large"
	// CodeInvalidArgument: a request field names something that does not
	// exist in a fixed value set (today: an unknown level-decider
	// backend). Distinct from bad_request so clients can tell a typo'd
	// enum value from a structurally malformed request.
	CodeInvalidArgument = "invalid_argument"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal = "internal"
)

// errorResponse is the uniform error body: a stable machine-readable
// code plus a human-readable message, stamped with the request ID so a
// client error report can be joined against the server's access log.
type errorResponse struct {
	Code  string `json:"code"`
	Error string `json:"error"`
	// RequestID echoes the request's X-Request-Id (absent on error
	// paths outside the instrumented mux).
	RequestID string `json:"requestId,omitempty"`
}

// codeForStatus derives the error code a status implies. The two
// ambiguous statuses are overridden at their call sites: 503 defaults
// to queue_full (the no-free-slot answer) and is shutting_down only on
// the drain path, via failCode.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest, http.StatusConflict:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return CodeQueueFull
	case http.StatusRequestEntityTooLarge, http.StatusInsufficientStorage:
		return CodeTooLarge
	case http.StatusGatewayTimeout, statusClientClosedRequest:
		return CodeTimeout
	}
	return CodeInternal
}

// writeJSON writes one JSON response body.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

// fail answers with a coded JSON error and counts it; the code is
// derived from the status (failCode overrides it where one status
// serves two conditions).
func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.failCode(w, status, codeForStatus(status), format, args...)
}

// failCode is fail with an explicit machine-readable code. The request
// ID comes from the response header the middleware stamped before the
// handler ran.
func (s *Server) failCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	s.failed.Add(1)
	writeJSON(w, status, errorResponse{
		Code:      code,
		Error:     fmt.Sprintf(format, args...),
		RequestID: w.Header().Get(obs.HeaderRequestID),
	})
}

// failBody answers a request-body decode failure: an over-limit body is
// 413 too_large, anything else 400 bad_request.
func (s *Server) failBody(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		s.fail(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
		return
	}
	s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
}

// decodeBody parses a bounded JSON request body, rejecting unknown
// fields so client typos surface instead of silently defaulting.
func decodeBody(w http.ResponseWriter, r *http.Request, into any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(into)
}

// resolveMaxN applies the server's default and ceiling to a request maxN.
func (s *Server) resolveMaxN(reqMaxN int) (int, error) {
	if reqMaxN == 0 {
		return s.cfg.MaxN, nil
	}
	if reqMaxN < 2 || reqMaxN > s.cfg.MaxN {
		return 0, fmt.Errorf("maxN %d out of range [2, %d]", reqMaxN, s.cfg.MaxN)
	}
	return reqMaxN, nil
}

// resolveBackend applies the server default to a request's backend and
// validates the result against the decider registry. A failed
// resolution is answered 400 invalid_argument (see failBackend).
func (s *Server) resolveBackend(reqBackend string) (string, error) {
	name := reqBackend
	if name == "" {
		name = s.cfg.DefaultBackend
	}
	if name == "" {
		return "", nil
	}
	if _, err := decider.Get(name); err != nil {
		return "", err
	}
	return name, nil
}

// failBackend answers an unknown-backend resolution failure with the
// invalid_argument coded envelope.
func (s *Server) failBackend(w http.ResponseWriter, err error) {
	s.failCode(w, http.StatusBadRequest, CodeInvalidArgument, "%v", err)
}

// acquire takes one analysis slot, waiting until the request context
// fires. It returns a release func, or an error when the wait is cut.
func (s *Server) acquire(r *http.Request) (func(), error) {
	select {
	case s.sem <- struct{}{}:
		s.inflight.Add(1)
		return func() { s.inflight.Add(-1); <-s.sem }, nil
	case <-r.Context().Done():
		return nil, r.Context().Err()
	}
}

// requestEngine builds the short-lived engine for one request: bound to
// the request context plus the per-request timeout, analyzing up to
// maxN on the resolved backend, sharing the server's cache. The
// returned cancel must be deferred.
func (s *Server) requestEngine(r *http.Request, maxN int, backend string) (*engine.Engine, context.CancelFunc) {
	ctx := r.Context()
	cancel := context.CancelFunc(func() {})
	if s.cfg.RequestTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
	}
	opts := []engine.Option{
		engine.WithContext(ctx),
		engine.WithCache(s.cfg.Cache),
		engine.WithParallelism(s.cfg.Parallelism),
		engine.WithShardThreshold(s.cfg.ShardThreshold),
		engine.WithMaxN(maxN),
		engine.WithMetrics(s.engMetrics),
		engine.WithBackend(backend),
	}
	if s.graphs != nil {
		opts = append(opts, engine.WithGraphCache(s.graphs))
	} else {
		opts = append(opts, engine.WithGraphCacheBudget(-1))
	}
	// Stream the engine's stage events into the request's trace, so the
	// slow-request log can say where the time went.
	if tr := obs.TraceFrom(r.Context()); tr != nil {
		opts = append(opts, engine.WithProgress(traceProgress(tr)))
	}
	return engine.New(opts...), cancel
}

// analysisJSON renders a core.Analysis.
func analysisJSON(a *core.Analysis) *Analysis {
	out := &Analysis{
		Name:                       a.Type.Name(),
		Readable:                   a.Readable,
		MaxN:                       a.MaxN,
		Exact:                      a.Readable,
		ConsensusNumber:            core.LevelString(a.ConsensusNumber, a.MaxN),
		RecoverableConsensusNumber: core.LevelString(a.RecoverableConsensusNumber, a.MaxN),
	}
	for n := 2; n <= a.MaxN; n++ {
		out.Levels = append(out.Levels, Level{
			N:                 n,
			Discerning:        a.Discerning[n],
			Recording:         a.Recording[n],
			DiscerningWitness: a.DiscerningWitness[n],
			RecordingWitness:  a.RecordingWitness[n],
		})
	}
	return out
}

// analysisStatus maps an engine error to an HTTP status: a deadline is
// the request timeout (504); a canceled context is a client that went
// away (499, nginx's convention — no reply reaches it, but logs and
// stats should not blame the server); anything else is internal.
func analysisStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	}
	return http.StatusInternalServerError
}

// statusClientClosedRequest is nginx's 499.
const statusClientClosedRequest = 499

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.failBody(w, err)
		return
	}
	t, label, err := s.resolveAnalyzeType(req)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	maxN, err := s.resolveMaxN(req.MaxN)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	backend, err := s.resolveBackend(req.Backend)
	if err != nil {
		s.failBackend(w, err)
		return
	}
	release, err := s.acquire(r)
	if err != nil {
		s.fail(w, http.StatusServiceUnavailable, "no analysis slot: %v", err)
		return
	}
	defer release()
	eng, cancel := s.requestEngine(r, maxN, backend)
	defer cancel()
	a, err := eng.Analyze(t)
	if err != nil {
		s.fail(w, analysisStatus(err), "analyze %s: %v", label, err)
		return
	}
	s.analyzed.Add(1)
	s.typesDone.Add(1)
	writeJSON(w, http.StatusOK, AnalyzeResponse{Type: label, Analysis: analysisJSON(a)})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.failBody(w, err)
		return
	}
	if len(req.Types) == 0 {
		s.fail(w, http.StatusBadRequest, "batch needs at least one type descriptor")
		return
	}
	if len(req.Types) > s.cfg.BatchLimit {
		s.fail(w, http.StatusBadRequest, "batch of %d types exceeds the limit of %d", len(req.Types), s.cfg.BatchLimit)
		return
	}
	maxN, err := s.resolveMaxN(req.MaxN)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	backend, err := s.resolveBackend(req.Backend)
	if err != nil {
		s.failBackend(w, err)
		return
	}

	// Resolve every descriptor first: a typo in one must not cost the
	// others their analysis (or the client a 400 after seconds of work).
	results := make([]TypeResult, len(req.Types))
	var idx []int
	var resolved []*spec.FiniteType
	for i, desc := range req.Types {
		results[i].Type = desc
		t, err := registry.Parse(desc)
		if err != nil {
			results[i].Error = err.Error()
			continue
		}
		idx = append(idx, i)
		resolved = append(resolved, t)
	}

	if len(resolved) > 0 {
		release, err := s.acquire(r)
		if err != nil {
			s.fail(w, http.StatusServiceUnavailable, "no analysis slot: %v", err)
			return
		}
		defer release()
		eng, cancel := s.requestEngine(r, maxN, backend)
		defer cancel()
		// One flat pool run for the whole batch: levels of all types
		// interleave, and duplicate descriptors collapse in the cache.
		analyses, err := eng.AnalyzeAll(resolved)
		if err != nil {
			s.fail(w, analysisStatus(err), "batch analysis: %v", err)
			return
		}
		for i, a := range analyses {
			results[idx[i]].Analysis = analysisJSON(a)
			s.typesDone.Add(1)
		}
	}
	s.batched.Add(1)
	writeJSON(w, http.StatusOK, BatchResponse{Results: results})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var resp StatsResponse
	resp.UptimeSeconds = time.Since(s.start).Seconds()
	resp.Requests.Analyze = s.analyzed.Load()
	resp.Requests.Batch = s.batched.Load()
	resp.Requests.Check = s.checked.Load()
	resp.Requests.Failed = s.failed.Load()
	resp.Inflight = s.inflight.Load()
	resp.TypesAnalyzed = s.typesDone.Load()
	resp.ChecksRun = s.checkItems.Load()
	resp.Graph.Expanded = s.graphExpanded.Load()
	resp.Graph.Reused = s.graphReused.Load()
	if total := resp.Graph.Expanded + resp.Graph.Reused; total > 0 {
		resp.Graph.HitRate = float64(resp.Graph.Reused) / float64(total)
	}
	var gc engine.GraphCacheStats
	if s.graphs != nil {
		gc = s.graphs.Stats()
	}
	resp.GraphCache.Hits = gc.Hits
	resp.GraphCache.Misses = gc.Misses
	resp.GraphCache.Evicted = gc.Evicted
	resp.GraphCache.Graphs = gc.Graphs
	resp.GraphCache.Nodes = gc.Nodes
	resp.GraphCache.HitRate = gc.HitRate()
	resp.GraphStore = gc.Store
	resp.Jobs = s.jobsMgr.Stats()
	resp.Protocols = s.protocols.Len()
	resp.Deciders = s.engMetrics.DeciderRuns()
	resp.Compactions = s.compacted.Load()
	hits, misses, entries := s.cfg.Cache.Stats()
	resp.Cache.Hits = hits
	resp.Cache.Misses = misses
	resp.Cache.Entries = entries
	if total := hits + misses; total > 0 {
		resp.Cache.HitRate = float64(hits) / float64(total)
	}
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		resp.Store = &st
	}
	for name, es := range s.endpoints {
		snap := es.latency.Snapshot()
		if snap.Count == 0 {
			continue
		}
		if resp.Latency == nil {
			resp.Latency = make(map[string]LatencySummary)
		}
		resp.Latency[name] = LatencySummary{
			Count: snap.Count,
			Mean:  snap.Mean(),
			P50:   snap.Quantile(0.5),
			P99:   snap.Quantile(0.99),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
