// Package lineariz is a linearizability checker for concurrent histories
// over finite-type objects (Wing & Gong's algorithm): given a history of
// invocation/response intervals on a single object, it searches for a
// total order that (a) respects real-time precedence (an operation that
// responded before another was invoked must linearize first) and (b)
// replays through the sequential specification producing exactly the
// observed responses.
//
// It verifies the repository's concurrent substrates (nvm.Store, the
// universal construction) against their sequential specifications, and is
// general enough for any recorded history. The checker is a pure
// function of the history and safe for concurrent use; its worst case is
// exponential in the number of overlapping operations, as inherent to
// the problem.
package lineariz
