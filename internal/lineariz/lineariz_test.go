package lineariz

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/nvm"
	"repro/internal/spec"
	"repro/internal/types"
)

func op(t *spec.FiniteType, name string) spec.Op {
	o, ok := t.OpByName(name)
	if !ok {
		panic("missing op " + name)
	}
	return o
}

// TestSequentialHistoryAccepted: a strictly sequential correct history is
// linearizable.
func TestSequentialHistoryAccepted(t *testing.T) {
	ft := types.TestAndSet()
	h := History{
		Type: ft, Init: 0,
		Ops: []Op{
			{ID: 1, Op: op(ft, "TAS"), Resp: 0, Invoke: 0, Respond: 1},
			{ID: 2, Op: op(ft, "TAS"), Resp: 1, Invoke: 2, Respond: 3},
		},
	}
	res, err := Check(h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linearizable {
		t.Fatal("sequential history rejected")
	}
	if len(res.Order) != 2 || res.Order[0] != 1 {
		t.Errorf("order = %v", res.Order)
	}
}

// TestWrongResponseRejected: two TAS winners cannot both exist.
func TestWrongResponseRejected(t *testing.T) {
	ft := types.TestAndSet()
	h := History{
		Type: ft, Init: 0,
		Ops: []Op{
			{ID: 1, Op: op(ft, "TAS"), Resp: 0, Invoke: 0, Respond: 1},
			{ID: 2, Op: op(ft, "TAS"), Resp: 0, Invoke: 2, Respond: 3},
		},
	}
	res, err := Check(h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Linearizable {
		t.Fatal("two TAS winners accepted")
	}
}

// TestConcurrentReorderingAllowed: overlapping operations may linearize in
// either order, so a "later-invoked" winner is fine while intervals
// overlap.
func TestConcurrentReorderingAllowed(t *testing.T) {
	ft := types.TestAndSet()
	h := History{
		Type: ft, Init: 0,
		Ops: []Op{
			// Both invoked before either responds: the second-invoked op
			// may still be the winner.
			{ID: 1, Op: op(ft, "TAS"), Resp: 1, Invoke: 0, Respond: 10},
			{ID: 2, Op: op(ft, "TAS"), Resp: 0, Invoke: 1, Respond: 9},
		},
	}
	res, err := Check(h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linearizable {
		t.Fatal("legal concurrent reordering rejected")
	}
	if res.Order[0] != 2 {
		t.Errorf("winner should linearize first, order = %v", res.Order)
	}
}

// TestRealTimeOrderEnforced: the same reordering is illegal when the
// intervals do NOT overlap.
func TestRealTimeOrderEnforced(t *testing.T) {
	ft := types.TestAndSet()
	h := History{
		Type: ft, Init: 0,
		Ops: []Op{
			{ID: 1, Op: op(ft, "TAS"), Resp: 1, Invoke: 0, Respond: 1},
			{ID: 2, Op: op(ft, "TAS"), Resp: 0, Invoke: 2, Respond: 3},
		},
	}
	res, err := Check(h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Linearizable {
		t.Fatal("real-time violation accepted: op 1 lost before op 2 won")
	}
}

// TestQueueFIFOHistory: a queue history with out-of-order dequeues is
// rejected.
func TestQueueFIFOHistory(t *testing.T) {
	q := types.Queue(2)
	good := History{
		Type: q, Init: 0,
		Ops: []Op{
			{ID: 1, Op: op(q, "enq0"), Resp: types.RespOK, Invoke: 0, Respond: 1},
			{ID: 2, Op: op(q, "enq1"), Resp: types.RespOK, Invoke: 2, Respond: 3},
			{ID: 3, Op: op(q, "deq"), Resp: 0, Invoke: 4, Respond: 5},
			{ID: 4, Op: op(q, "deq"), Resp: 1, Invoke: 6, Respond: 7},
		},
	}
	res, err := Check(good)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linearizable {
		t.Fatal("correct FIFO history rejected")
	}

	bad := good
	bad.Ops = append([]Op(nil), good.Ops...)
	bad.Ops[2].Resp = 1 // dequeued the later element first
	bad.Ops[3].Resp = 0
	res, err = Check(bad)
	if err != nil {
		t.Fatal(err)
	}
	if res.Linearizable {
		t.Fatal("LIFO dequeue order accepted for a queue")
	}
}

// TestErrors covers argument validation.
func TestErrors(t *testing.T) {
	ft := types.TestAndSet()
	if _, err := Check(History{Type: nil}); err == nil {
		t.Error("nil type accepted")
	}
	if _, err := Check(History{Type: ft, Init: 99}); err == nil {
		t.Error("bad init accepted")
	}
	if _, err := Check(History{Type: ft, Init: 0, Ops: []Op{
		{ID: 1, Op: 0, Resp: 0, Invoke: 5, Respond: 5},
	}}); err == nil {
		t.Error("empty interval accepted")
	}
	if _, err := Check(History{Type: ft, Init: 0, Ops: []Op{
		{ID: 1, Op: 99, Resp: 0, Invoke: 0, Respond: 1},
	}}); err == nil {
		t.Error("unknown op accepted")
	}
}

// TestNvmStoreHistoriesLinearizable records real concurrent histories
// against nvm.Store (which serializes via a mutex) and verifies each is
// linearizable — the store is the repository's "hardware" and this is its
// correctness certificate.
func TestNvmStoreHistoriesLinearizable(t *testing.T) {
	ft := types.FetchAdd(16)
	faa := op(ft, "FAA")
	const workers = 4
	const each = 8

	store := nvm.MustNewStore(nvm.Cell{Type: ft, Init: 0})
	var clock int64
	var mu sync.Mutex
	var ops []Op
	var wg sync.WaitGroup
	id := int64(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < each; k++ {
				inv := atomic.AddInt64(&clock, 1)
				resp := store.Apply(0, faa)
				rsp := atomic.AddInt64(&clock, 1)
				myID := atomic.AddInt64(&id, 1)
				mu.Lock()
				ops = append(ops, Op{
					ID: int(myID), Proc: w, Op: faa, Resp: resp,
					Invoke: inv, Respond: rsp,
				})
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	res, err := Check(History{Type: ft, Init: 0, Ops: ops})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linearizable {
		t.Fatal("nvm.Store produced a non-linearizable history")
	}
	if len(res.Order) != workers*each {
		t.Errorf("order has %d entries", len(res.Order))
	}
}
