package lineariz

import (
	"fmt"
	"sort"

	"repro/internal/spec"
)

// Op is one completed operation in a history: the operation applied, the
// response observed, and its real-time interval [Invoke, Respond) in some
// global clock (any strictly monotonic event counter works).
type Op struct {
	// ID identifies the operation (for reporting).
	ID int
	// Proc is the invoking process (informational).
	Proc int
	// Op is the applied operation.
	Op spec.Op
	// Resp is the observed response.
	Resp spec.Response
	// Invoke and Respond are the interval endpoints; Invoke < Respond.
	Invoke, Respond int64
}

// History is a set of completed operations on one object.
type History struct {
	Type *spec.FiniteType
	Init spec.Value
	Ops  []Op
}

// Result reports the linearizability verdict.
type Result struct {
	// Linearizable reports the verdict.
	Linearizable bool
	// Order is a witnessing linearization (operation IDs in linearized
	// order) when Linearizable.
	Order []int
	// Explored counts search states (for diagnostics and benches).
	Explored int
}

// Check decides whether the history is linearizable. The search is
// exponential in the worst case but fast for realistic histories: at each
// step only minimal operations (those not preceded in real time by a
// pending one) whose response matches the current value can be chosen.
func Check(h History) (*Result, error) {
	if h.Type == nil {
		return nil, fmt.Errorf("lineariz: nil type")
	}
	if int(h.Init) < 0 || int(h.Init) >= h.Type.NumValues() {
		return nil, fmt.Errorf("lineariz: initial value out of range")
	}
	n := len(h.Ops)
	if n > 63 {
		return nil, fmt.Errorf("lineariz: history too large (%d ops, max 63)", n)
	}
	for i, op := range h.Ops {
		if op.Invoke >= op.Respond {
			return nil, fmt.Errorf("lineariz: op %d has empty interval", op.ID)
		}
		if int(op.Op) < 0 || int(op.Op) >= h.Type.NumOps() {
			return nil, fmt.Errorf("lineariz: op %d applies unknown operation", op.ID)
		}
		_ = i
	}

	// Sort by invocation for stable iteration; indices refer to sorted
	// order below.
	ops := make([]Op, n)
	copy(ops, h.Ops)
	sort.Slice(ops, func(i, j int) bool { return ops[i].Invoke < ops[j].Invoke })

	// precedes[i] = bitmask of operations that must linearize before i
	// (they responded before i was invoked).
	precedes := make([]uint64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if ops[j].Respond <= ops[i].Invoke {
				precedes[i] |= 1 << uint(j)
			}
		}
	}

	res := &Result{}
	// Memoize failed (chosenMask, value) states.
	type memoKey struct {
		mask uint64
		val  spec.Value
	}
	failed := make(map[memoKey]bool)
	order := make([]int, 0, n)

	var search func(mask uint64, val spec.Value) bool
	search = func(mask uint64, val spec.Value) bool {
		res.Explored++
		if mask == (uint64(1)<<uint(n))-1 {
			return true
		}
		key := memoKey{mask: mask, val: val}
		if failed[key] {
			return false
		}
		for i := 0; i < n; i++ {
			bit := uint64(1) << uint(i)
			if mask&bit != 0 {
				continue
			}
			// All real-time predecessors must already be linearized.
			if precedes[i]&^mask != 0 {
				continue
			}
			e := h.Type.Apply(val, ops[i].Op)
			if e.Resp != ops[i].Resp {
				continue
			}
			order = append(order, ops[i].ID)
			if search(mask|bit, e.Next) {
				return true
			}
			order = order[:len(order)-1]
		}
		failed[key] = true
		return false
	}

	if search(0, h.Init) {
		res.Linearizable = true
		res.Order = append([]int(nil), order...)
	}
	return res, nil
}
