package spec

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Value identifies a value of a type. Values are indices into the type's
// value table, in the range [0, NumValues).
type Value int

// Op identifies an operation of a type. Operations are indices into the
// type's operation table, in the range [0, NumOps).
type Op int

// Response is the result returned by applying an operation. Responses are
// opaque integers; two responses are "the same" exactly when the integers
// are equal. Types may attach human-readable names to responses.
type Response int

// Effect is the outcome of applying one operation to one value: the
// response returned to the caller and the resulting value of the object.
type Effect struct {
	Resp Response
	Next Value
}

// FiniteType is a deterministic sequential specification over finite sets
// of values and operations. The zero value is not usable; construct
// instances with a Builder.
type FiniteType struct {
	name       string
	valueNames []string
	opNames    []string
	respNames  map[Response]string
	// table[v][o] is the effect of applying operation o to value v.
	table [][]Effect
	// readOps caches the operations that behave as Read (see IsReadOp).
	readOps []Op
}

// Name returns the type's human-readable name.
func (t *FiniteType) Name() string { return t.name }

// NumValues returns the number of values of the type.
func (t *FiniteType) NumValues() int { return len(t.valueNames) }

// NumOps returns the number of operations of the type.
func (t *FiniteType) NumOps() int { return len(t.opNames) }

// ValueName returns the human-readable name of value v.
func (t *FiniteType) ValueName(v Value) string {
	if int(v) < 0 || int(v) >= len(t.valueNames) {
		return fmt.Sprintf("?value(%d)", int(v))
	}
	return t.valueNames[v]
}

// OpName returns the human-readable name of operation o.
func (t *FiniteType) OpName(o Op) string {
	if int(o) < 0 || int(o) >= len(t.opNames) {
		return fmt.Sprintf("?op(%d)", int(o))
	}
	return t.opNames[o]
}

// RespName returns the human-readable name of response r, or a numeric
// placeholder if the response was never named.
func (t *FiniteType) RespName(r Response) string {
	if s, ok := t.respNames[r]; ok {
		return s
	}
	return fmt.Sprintf("resp(%d)", int(r))
}

// OpByName returns the operation with the given name.
func (t *FiniteType) OpByName(name string) (Op, bool) {
	for i, s := range t.opNames {
		if s == name {
			return Op(i), true
		}
	}
	return 0, false
}

// ValueByName returns the value with the given name.
func (t *FiniteType) ValueByName(name string) (Value, bool) {
	for i, s := range t.valueNames {
		if s == name {
			return Value(i), true
		}
	}
	return 0, false
}

// Apply applies operation o to an object with value v and returns the
// response and resulting value, per the type's sequential specification.
func (t *FiniteType) Apply(v Value, o Op) Effect {
	return t.table[v][o]
}

// ApplyAll applies the operations in ops, in order, starting from value v,
// and returns the final value.
func (t *FiniteType) ApplyAll(v Value, ops []Op) Value {
	for _, o := range ops {
		v = t.table[v][o].Next
	}
	return v
}

// IsReadOp reports whether operation o behaves as the Read operation of
// Section 2: for every value v, applying o leaves the value unchanged, and
// the response uniquely identifies v (distinct values yield distinct
// responses).
func (t *FiniteType) IsReadOp(o Op) bool {
	seen := make(map[Response]bool, t.NumValues())
	for v := 0; v < t.NumValues(); v++ {
		e := t.table[v][o]
		if e.Next != Value(v) {
			return false
		}
		if seen[e.Resp] {
			return false
		}
		seen[e.Resp] = true
	}
	return true
}

// ReadOps returns the operations that behave as Read.
func (t *FiniteType) ReadOps() []Op {
	out := make([]Op, len(t.readOps))
	copy(out, t.readOps)
	return out
}

// Readable reports whether the type supports a Read operation.
func (t *FiniteType) Readable() bool { return len(t.readOps) > 0 }

// TransitionTable renders the full transition table as text, one line per
// (value, operation) pair. This is the textual form of a state-machine
// diagram such as Figure 3 of the paper.
func (t *FiniteType) TransitionTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "type %s: %d values, %d operations", t.name, t.NumValues(), t.NumOps())
	if t.Readable() {
		b.WriteString(" (readable)")
	}
	b.WriteByte('\n')
	for v := 0; v < t.NumValues(); v++ {
		for o := 0; o < t.NumOps(); o++ {
			e := t.table[v][o]
			fmt.Fprintf(&b, "  %s --%s/%s--> %s\n",
				t.valueNames[v], t.opNames[o], t.RespName(e.Resp), t.valueNames[e.Next])
		}
	}
	return b.String()
}

// Dot renders the type's state machine in Graphviz DOT format, with one
// node per value and one edge per (value, operation) transition. Edges that
// share source, destination and response are merged, matching the visual
// style of Figure 3 in the paper.
func (t *FiniteType) Dot() string {
	type edge struct {
		from, to Value
		resp     Response
	}
	labels := make(map[edge][]string)
	var order []edge
	for v := 0; v < t.NumValues(); v++ {
		for o := 0; o < t.NumOps(); o++ {
			e := t.table[v][o]
			k := edge{from: Value(v), to: e.Next, resp: e.Resp}
			if _, ok := labels[k]; !ok {
				order = append(order, k)
			}
			labels[k] = append(labels[k], t.opNames[o])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=circle];\n", t.name)
	for v := 0; v < t.NumValues(); v++ {
		fmt.Fprintf(&b, "  v%d [label=%q];\n", v, t.valueNames[v])
	}
	for _, k := range order {
		ops := labels[k]
		sort.Strings(ops)
		fmt.Fprintf(&b, "  v%d -> v%d [label=%q];\n",
			int(k.from), int(k.to),
			fmt.Sprintf("%s / %s", strings.Join(ops, ","), t.RespName(k.resp)))
	}
	b.WriteString("}\n")
	return b.String()
}

// Validate re-checks the structural invariants of the type: non-empty value
// and operation sets, and a total, in-range transition table. Builders
// enforce this at construction; Validate exists so deserialized or
// programmatically mutated tables can be re-verified.
func (t *FiniteType) Validate() error {
	if t.NumValues() == 0 {
		return errors.New("type has no values")
	}
	if t.NumOps() == 0 {
		return errors.New("type has no operations")
	}
	if len(t.table) != t.NumValues() {
		return fmt.Errorf("table has %d rows, want %d", len(t.table), t.NumValues())
	}
	for v, row := range t.table {
		if len(row) != t.NumOps() {
			return fmt.Errorf("value %q: table row has %d entries, want %d",
				t.valueNames[v], len(row), t.NumOps())
		}
		for o, e := range row {
			if int(e.Next) < 0 || int(e.Next) >= t.NumValues() {
				return fmt.Errorf("transition (%q, %q): resulting value %d out of range",
					t.valueNames[v], t.opNames[o], int(e.Next))
			}
		}
	}
	return nil
}

// Equal reports whether two types have identical structure: the same value
// names, operation names and transition tables. Response names are ignored;
// response identity (the integers) is compared.
func (t *FiniteType) Equal(u *FiniteType) bool {
	if t.NumValues() != u.NumValues() || t.NumOps() != u.NumOps() {
		return false
	}
	for i, s := range t.valueNames {
		if u.valueNames[i] != s {
			return false
		}
	}
	for i, s := range t.opNames {
		if u.opNames[i] != s {
			return false
		}
	}
	for v := range t.table {
		for o := range t.table[v] {
			if t.table[v][o] != u.table[v][o] {
				return false
			}
		}
	}
	return true
}
