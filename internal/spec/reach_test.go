package spec

import "testing"

func buildChain(t *testing.T) *FiniteType {
	t.Helper()
	// a --op--> b --op--> c (absorbing); plus a read.
	b := NewBuilder("chain")
	b.Values("a", "b", "c")
	b.Ops("op", "read")
	b.Transition("a", "op", 0, "b")
	b.Transition("b", "op", 1, "c")
	b.Transition("c", "op", 2, "c")
	b.ReadOp("read", 100)
	ft, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

func TestReachable(t *testing.T) {
	ft := buildChain(t)
	op, _ := ft.OpByName("op")

	all := ft.Reachable(0, nil)
	if !all[0] || !all[1] || !all[2] {
		t.Errorf("from a, everything should be reachable: %v", all)
	}
	fromC := ft.Reachable(2, nil)
	if fromC[0] || fromC[1] || !fromC[2] {
		t.Errorf("c is absorbing: %v", fromC)
	}
	// With only the read op, nothing moves.
	read, _ := ft.OpByName("read")
	onlyRead := ft.Reachable(0, []Op{read})
	if onlyRead[1] || onlyRead[2] {
		t.Errorf("read-only reachability should be trivial: %v", onlyRead)
	}
	if got := ft.ReachableCount(1, []Op{op}); got != 2 {
		t.Errorf("from b via op: %d values, want 2", got)
	}
}

func TestAbsorbing(t *testing.T) {
	ft := buildChain(t)
	if ft.Absorbing(0) || ft.Absorbing(1) {
		t.Error("a and b are not absorbing")
	}
	if !ft.Absorbing(2) {
		t.Error("c is absorbing")
	}
	vals := ft.AbsorbingValues()
	if len(vals) != 1 || vals[0] != 2 {
		t.Errorf("AbsorbingValues = %v", vals)
	}
}
