// Package spec defines deterministic sequential specifications of shared
// object types, following Section 2 of "Determining Recoverable Consensus
// Numbers" (Ovens, PODC 2024).
//
// A type defines a finite set of values, a finite set of operations, and a
// deterministic transition function: applying an operation op to an object
// with value v yields exactly one response and exactly one resulting value.
// A type is readable if it supports an operation that returns the current
// value of the object without changing it.
//
// All deciders in this repository (n-discerning, n-recording) operate on
// the FiniteType representation defined here.
//
// FiniteType values are immutable after construction (the Builder
// enforces a total, deterministic table) and safe to share across
// goroutines and engines. Fingerprint is a structural hash that is
// stable across processes — it keys the decision cache and the
// persistent store, so two independently constructed but identical types
// share cached decisions, and changing the fingerprint algorithm is a
// store-format break. The JSON encoding round-trips byte-identically.
package spec
