package spec

// Reachable returns the set of values reachable from start by applying
// any sequence of the given operations (including the empty sequence), as
// a boolean slice indexed by value. A nil ops slice means all operations.
func (t *FiniteType) Reachable(start Value, ops []Op) []bool {
	if ops == nil {
		ops = make([]Op, t.NumOps())
		for i := range ops {
			ops[i] = Op(i)
		}
	}
	seen := make([]bool, t.NumValues())
	stack := []Value{start}
	seen[start] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, o := range ops {
			next := t.Apply(v, o).Next
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return seen
}

// ReachableCount returns the number of values reachable from start.
func (t *FiniteType) ReachableCount(start Value, ops []Op) int {
	n := 0
	for _, ok := range t.Reachable(start, ops) {
		if ok {
			n++
		}
	}
	return n
}

// Absorbing reports whether value v is absorbing: every operation applied
// to v leaves the value at v (like s_bot of T_{n,n'}).
func (t *FiniteType) Absorbing(v Value) bool {
	for o := 0; o < t.NumOps(); o++ {
		if t.Apply(v, Op(o)).Next != v {
			return false
		}
	}
	return true
}

// AbsorbingValues returns all absorbing values of the type.
func (t *FiniteType) AbsorbingValues() []Value {
	var out []Value
	for v := 0; v < t.NumValues(); v++ {
		if t.Absorbing(Value(v)) {
			out = append(out, Value(v))
		}
	}
	return out
}
