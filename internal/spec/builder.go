package spec

import (
	"fmt"
)

// Builder constructs FiniteType instances incrementally. A Builder is not
// safe for concurrent use. The typical flow is:
//
//	b := spec.NewBuilder("test-and-set")
//	b.Values("0", "1")
//	b.Ops("TAS", "Read")
//	b.Transition("0", "TAS", 0, "1")
//	...
//	t, err := b.Build()
type Builder struct {
	name       string
	valueNames []string
	valueIdx   map[string]Value
	opNames    []string
	opIdx      map[string]Op
	respNames  map[Response]string
	// transitions[valueName][opName] = effect
	transitions map[string]map[string]Effect
	errs        []error
}

// NewBuilder returns a Builder for a type with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:        name,
		valueIdx:    make(map[string]Value),
		opIdx:       make(map[string]Op),
		respNames:   make(map[Response]string),
		transitions: make(map[string]map[string]Effect),
	}
}

// Values declares the values of the type, in order. The first declared
// value has index 0. Duplicate names are recorded as errors.
func (b *Builder) Values(names ...string) *Builder {
	for _, n := range names {
		if _, dup := b.valueIdx[n]; dup {
			b.errs = append(b.errs, fmt.Errorf("duplicate value name %q", n))
			continue
		}
		b.valueIdx[n] = Value(len(b.valueNames))
		b.valueNames = append(b.valueNames, n)
	}
	return b
}

// Ops declares the operations of the type, in order.
func (b *Builder) Ops(names ...string) *Builder {
	for _, n := range names {
		if _, dup := b.opIdx[n]; dup {
			b.errs = append(b.errs, fmt.Errorf("duplicate operation name %q", n))
			continue
		}
		b.opIdx[n] = Op(len(b.opNames))
		b.opNames = append(b.opNames, n)
	}
	return b
}

// NameResponse attaches a human-readable name to a response code. Naming is
// optional and affects only rendering.
func (b *Builder) NameResponse(r Response, name string) *Builder {
	b.respNames[r] = name
	return b
}

// Transition records that applying op to an object with value from returns
// resp and changes the value to next. Values and operations must already be
// declared. Redefining a transition is recorded as an error, since the
// specification must be deterministic.
func (b *Builder) Transition(from, op string, resp Response, next string) *Builder {
	if _, ok := b.valueIdx[from]; !ok {
		b.errs = append(b.errs, fmt.Errorf("transition from undeclared value %q", from))
		return b
	}
	if _, ok := b.valueIdx[next]; !ok {
		b.errs = append(b.errs, fmt.Errorf("transition to undeclared value %q", next))
		return b
	}
	if _, ok := b.opIdx[op]; !ok {
		b.errs = append(b.errs, fmt.Errorf("transition via undeclared operation %q", op))
		return b
	}
	row, ok := b.transitions[from]
	if !ok {
		row = make(map[string]Effect)
		b.transitions[from] = row
	}
	if _, dup := row[op]; dup {
		b.errs = append(b.errs, fmt.Errorf(
			"non-deterministic specification: transition (%q, %q) defined twice", from, op))
		return b
	}
	row[op] = Effect{Resp: resp, Next: b.valueIdx[next]}
	return b
}

// ReadOp declares op to be a Read operation: for every value v it returns a
// response that uniquely identifies v (the value's index, offset by base)
// and leaves the value unchanged. base lets callers keep Read responses
// disjoint from other responses.
func (b *Builder) ReadOp(op string, base Response) *Builder {
	if _, ok := b.opIdx[op]; !ok {
		b.errs = append(b.errs, fmt.Errorf("ReadOp on undeclared operation %q", op))
		return b
	}
	for i, vn := range b.valueNames {
		r := base + Response(i)
		b.NameResponse(r, "read:"+vn)
		b.Transition(vn, op, r, vn)
	}
	return b
}

// Build validates the accumulated specification and returns the type. It
// fails if any declaration error occurred or if the transition table is not
// total (some (value, operation) pair lacks a transition).
func (b *Builder) Build() (*FiniteType, error) {
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("type %q: %d specification error(s), first: %w",
			b.name, len(b.errs), b.errs[0])
	}
	if len(b.valueNames) == 0 {
		return nil, fmt.Errorf("type %q has no values", b.name)
	}
	if len(b.opNames) == 0 {
		return nil, fmt.Errorf("type %q has no operations", b.name)
	}
	table := make([][]Effect, len(b.valueNames))
	for v, vn := range b.valueNames {
		table[v] = make([]Effect, len(b.opNames))
		for o, on := range b.opNames {
			e, ok := b.transitions[vn][on]
			if !ok {
				return nil, fmt.Errorf("type %q: missing transition (%q, %q)", b.name, vn, on)
			}
			table[v][o] = e
		}
	}
	respNames := make(map[Response]string, len(b.respNames))
	for k, v := range b.respNames {
		respNames[k] = v
	}
	t := &FiniteType{
		name:       b.name,
		valueNames: append([]string(nil), b.valueNames...),
		opNames:    append([]string(nil), b.opNames...),
		respNames:  respNames,
		table:      table,
	}
	for o := 0; o < t.NumOps(); o++ {
		if t.IsReadOp(Op(o)) {
			t.readOps = append(t.readOps, Op(o))
		}
	}
	return t, nil
}

// MustBuild is Build that panics on error. It is intended for statically
// known specifications (package-level type zoo constructors and tests).
func (b *Builder) MustBuild() *FiniteType {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}
