package spec

import (
	"encoding/json"
	"fmt"
)

// typeJSON is the serialized form of a FiniteType. The transition table is
// stored as a map from "value/op" to {resp, next} so that hand-written JSON
// files stay readable.
type typeJSON struct {
	Name        string                    `json:"name"`
	Values      []string                  `json:"values"`
	Ops         []string                  `json:"ops"`
	RespNames   map[string]string         `json:"respNames,omitempty"`
	Transitions map[string]transitionJSON `json:"transitions"`
}

type transitionJSON struct {
	Resp int    `json:"resp"`
	Next string `json:"next"`
}

// MarshalJSON implements json.Marshaler.
func (t *FiniteType) MarshalJSON() ([]byte, error) {
	out := typeJSON{
		Name:        t.name,
		Values:      t.valueNames,
		Ops:         t.opNames,
		Transitions: make(map[string]transitionJSON, t.NumValues()*t.NumOps()),
	}
	if len(t.respNames) > 0 {
		out.RespNames = make(map[string]string, len(t.respNames))
		for r, n := range t.respNames {
			out.RespNames[fmt.Sprintf("%d", int(r))] = n
		}
	}
	for v := 0; v < t.NumValues(); v++ {
		for o := 0; o < t.NumOps(); o++ {
			e := t.table[v][o]
			key := t.valueNames[v] + "/" + t.opNames[o]
			out.Transitions[key] = transitionJSON{Resp: int(e.Resp), Next: t.valueNames[e.Next]}
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler. The decoded type is validated
// for totality and determinism.
func (t *FiniteType) UnmarshalJSON(data []byte) error {
	var in typeJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	b := NewBuilder(in.Name)
	b.Values(in.Values...)
	b.Ops(in.Ops...)
	for rs, n := range in.RespNames {
		var r int
		if _, err := fmt.Sscanf(rs, "%d", &r); err != nil {
			return fmt.Errorf("bad response key %q: %w", rs, err)
		}
		b.NameResponse(Response(r), n)
	}
	for key, tr := range in.Transitions {
		var from, op string
		if n, err := fmt.Sscanf(key, "%s", &from); n != 1 || err != nil {
			return fmt.Errorf("bad transition key %q", key)
		}
		// Split on the last '/' so value names may contain '/' only if op
		// names do not; keep it simple: first '/' is the separator and
		// neither side may contain '/'.
		idx := -1
		for i, c := range key {
			if c == '/' {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("bad transition key %q: missing '/'", key)
		}
		from, op = key[:idx], key[idx+1:]
		b.Transition(from, op, Response(tr.Resp), tr.Next)
	}
	built, err := b.Build()
	if err != nil {
		return err
	}
	*t = *built
	return nil
}
