package spec

import (
	"encoding/json"
	"strings"
	"testing"
)

func buildTAS(t *testing.T) *FiniteType {
	t.Helper()
	b := NewBuilder("tas")
	b.Values("0", "1")
	b.Ops("TAS", "read")
	b.Transition("0", "TAS", 0, "1")
	b.Transition("1", "TAS", 1, "1")
	b.ReadOp("read", 100)
	ft, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return ft
}

func TestBuilderBasics(t *testing.T) {
	ft := buildTAS(t)
	if got, want := ft.Name(), "tas"; got != want {
		t.Errorf("Name = %q, want %q", got, want)
	}
	if got, want := ft.NumValues(), 2; got != want {
		t.Errorf("NumValues = %d, want %d", got, want)
	}
	if got, want := ft.NumOps(), 2; got != want {
		t.Errorf("NumOps = %d, want %d", got, want)
	}
	if err := ft.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestApply(t *testing.T) {
	ft := buildTAS(t)
	tas, _ := ft.OpByName("TAS")
	read, _ := ft.OpByName("read")
	zero, _ := ft.ValueByName("0")
	one, _ := ft.ValueByName("1")

	tests := []struct {
		name string
		v    Value
		op   Op
		want Effect
	}{
		{"TAS on 0 wins", zero, tas, Effect{Resp: 0, Next: one}},
		{"TAS on 1 loses", one, tas, Effect{Resp: 1, Next: one}},
		{"read 0", zero, read, Effect{Resp: 100, Next: zero}},
		{"read 1", one, read, Effect{Resp: 101, Next: one}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := ft.Apply(tc.v, tc.op); got != tc.want {
				t.Errorf("Apply(%d, %d) = %+v, want %+v", tc.v, tc.op, got, tc.want)
			}
		})
	}
}

func TestApplyAll(t *testing.T) {
	ft := buildTAS(t)
	tas, _ := ft.OpByName("TAS")
	read, _ := ft.OpByName("read")
	if got := ft.ApplyAll(0, []Op{read, tas, tas, read}); got != 1 {
		t.Errorf("ApplyAll = %d, want 1", got)
	}
	if got := ft.ApplyAll(0, nil); got != 0 {
		t.Errorf("ApplyAll(empty) = %d, want 0", got)
	}
}

func TestReadability(t *testing.T) {
	ft := buildTAS(t)
	read, _ := ft.OpByName("read")
	tas, _ := ft.OpByName("TAS")
	if !ft.Readable() {
		t.Error("TAS type should be readable")
	}
	if !ft.IsReadOp(read) {
		t.Error("read should be a Read operation")
	}
	if ft.IsReadOp(tas) {
		t.Error("TAS should not be a Read operation")
	}
	if ops := ft.ReadOps(); len(ops) != 1 || ops[0] != read {
		t.Errorf("ReadOps = %v, want [%d]", ops, read)
	}
}

func TestNotReadable(t *testing.T) {
	// An operation that leaves every value unchanged but returns the same
	// response everywhere is not a Read (it does not identify the value).
	b := NewBuilder("blind")
	b.Values("a", "b")
	b.Ops("peek")
	b.Transition("a", "peek", 7, "a")
	b.Transition("b", "peek", 7, "b")
	ft, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if ft.Readable() {
		t.Error("blind type should not be readable")
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name  string
		build func() (*FiniteType, error)
	}{
		{"no values", func() (*FiniteType, error) {
			return NewBuilder("x").Ops("o").Build()
		}},
		{"no ops", func() (*FiniteType, error) {
			return NewBuilder("x").Values("v").Build()
		}},
		{"missing transition", func() (*FiniteType, error) {
			return NewBuilder("x").Values("v").Ops("o").Build()
		}},
		{"duplicate value", func() (*FiniteType, error) {
			b := NewBuilder("x").Values("v", "v").Ops("o")
			b.Transition("v", "o", 0, "v")
			return b.Build()
		}},
		{"duplicate op", func() (*FiniteType, error) {
			b := NewBuilder("x").Values("v").Ops("o", "o")
			b.Transition("v", "o", 0, "v")
			return b.Build()
		}},
		{"undeclared from", func() (*FiniteType, error) {
			b := NewBuilder("x").Values("v").Ops("o")
			b.Transition("w", "o", 0, "v")
			b.Transition("v", "o", 0, "v")
			return b.Build()
		}},
		{"undeclared next", func() (*FiniteType, error) {
			b := NewBuilder("x").Values("v").Ops("o")
			b.Transition("v", "o", 0, "w")
			return b.Build()
		}},
		{"undeclared op", func() (*FiniteType, error) {
			b := NewBuilder("x").Values("v").Ops("o")
			b.Transition("v", "q", 0, "v")
			b.Transition("v", "o", 0, "v")
			return b.Build()
		}},
		{"non-deterministic", func() (*FiniteType, error) {
			b := NewBuilder("x").Values("v").Ops("o")
			b.Transition("v", "o", 0, "v")
			b.Transition("v", "o", 1, "v")
			return b.Build()
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.build(); err == nil {
				t.Error("Build succeeded, want error")
			}
		})
	}
}

func TestTransitionTableRendering(t *testing.T) {
	ft := buildTAS(t)
	txt := ft.TransitionTable()
	for _, want := range []string{"type tas", "(readable)", "0 --TAS/", "--> 1"} {
		if !strings.Contains(txt, want) {
			t.Errorf("TransitionTable missing %q in:\n%s", want, txt)
		}
	}
}

func TestDot(t *testing.T) {
	ft := buildTAS(t)
	dot := ft.Dot()
	for _, want := range []string{"digraph", "v0 -> v1", "rankdir=LR"} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot missing %q in:\n%s", want, dot)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	ft := buildTAS(t)
	data, err := json.Marshal(ft)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back FiniteType
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !ft.Equal(&back) {
		t.Errorf("round-trip mismatch:\n%s\nvs\n%s", ft.TransitionTable(), back.TransitionTable())
	}
	if !back.Readable() {
		t.Error("decoded type lost readability")
	}
}

func TestEqual(t *testing.T) {
	a := buildTAS(t)
	b := buildTAS(t)
	if !a.Equal(b) {
		t.Error("identical builds should be Equal")
	}
	c := NewBuilder("tas").Values("0", "1").Ops("TAS", "read")
	c.Transition("0", "TAS", 5, "1") // different response
	c.Transition("1", "TAS", 1, "1")
	c.ReadOp("read", 100)
	cf, err := c.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if a.Equal(cf) {
		t.Error("types with different responses should not be Equal")
	}
}

func TestNameHelpers(t *testing.T) {
	ft := buildTAS(t)
	if got := ft.ValueName(0); got != "0" {
		t.Errorf("ValueName(0) = %q", got)
	}
	if got := ft.ValueName(99); !strings.Contains(got, "?") {
		t.Errorf("ValueName(out of range) = %q, want placeholder", got)
	}
	if got := ft.OpName(99); !strings.Contains(got, "?") {
		t.Errorf("OpName(out of range) = %q, want placeholder", got)
	}
	if got := ft.RespName(12345); !strings.Contains(got, "12345") {
		t.Errorf("RespName(unnamed) = %q, want numeric placeholder", got)
	}
	if _, ok := ft.OpByName("nope"); ok {
		t.Error("OpByName should fail for unknown op")
	}
	if _, ok := ft.ValueByName("nope"); ok {
		t.Error("ValueByName should fail for unknown value")
	}
}
