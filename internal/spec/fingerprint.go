package spec

import "hash/fnv"

// Fingerprint returns a 64-bit structural hash of the type: its name,
// value names, operation names and full transition table. Two types with
// equal fingerprints are, for caching purposes, treated as the same type;
// the engine's memoization cache uses the fingerprint (together with the
// property name and process count) as its key. The hash is FNV-1a and is
// stable within a process; it is not a cryptographic commitment.
func (t *FiniteType) Fingerprint() uint64 {
	h := fnv.New64a()
	writeString := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	writeInt := func(v int) {
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	writeString(t.name)
	writeInt(t.NumValues())
	for _, s := range t.valueNames {
		writeString(s)
	}
	writeInt(t.NumOps())
	for _, s := range t.opNames {
		writeString(s)
	}
	for _, row := range t.table {
		for _, e := range row {
			writeInt(int(e.Resp))
			writeInt(int(e.Next))
		}
	}
	return h.Sum64()
}
