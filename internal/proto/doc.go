// Package proto implements concrete consensus protocols as deterministic
// step machines for the model checker in internal/model:
//
//   - the paper's wait-free n-process consensus algorithm using one
//     T_{n,n'} object (Section 4, Lemma 15 lower bound);
//   - the paper's recoverable n'-process consensus algorithm using one
//     T_{n,n'} object (Section 4, Lemma 16 lower bound);
//   - wait-free and recoverable consensus from compare-and-swap
//     (baselines with unbounded consensus number);
//   - the classic 2-process consensus from test-and-set plus registers,
//     which is correct crash-free but fails under individual crashes
//     (Golab's separation, Experiment E8);
//   - team-consensus constructions driven by discerning/recording
//     witnesses.
//
// Local states are short strings; "d<v>" is a decided state with output v.
// Protocol values are immutable after construction and safe to share
// across concurrent model-checking runs — the registry
// (internal/registry.ParseProtocol) names the parameterized families for
// the cmd tools and the /v1/check endpoint.
package proto
