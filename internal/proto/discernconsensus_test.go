package proto

import (
	"testing"

	"repro/internal/discern"
	"repro/internal/model"
	"repro/internal/schedule"
	"repro/internal/spec"
	"repro/internal/types"
)

func discernWitnessFor(t *testing.T, ft *spec.FiniteType, n int) *discern.Witness {
	t.Helper()
	ok, w := discern.IsNDiscerning(ft, n)
	if !ok {
		t.Fatalf("%s is not %d-discerning", ft.Name(), n)
	}
	return w
}

// TestDiscernConsensusWaitFree model-checks Ruppert's construction for
// agreement and wait-freedom in crash-free executions, across the
// readable zoo — including X4 at its full consensus number 4.
func TestDiscernConsensusWaitFree(t *testing.T) {
	cases := []struct {
		ft *spec.FiniteType
		n  int
	}{
		{types.TestAndSet(), 2},
		{types.Swap(3), 2},
		{types.FetchAdd(8), 2},
		{types.CompareAndSwap(2), 3},
		{types.StickyBit(), 3},
		{types.XFour(), 4},
		{types.TnnReadable(4), 4},
	}
	for _, c := range cases {
		dc, err := NewDiscernTeamConsensus(c.ft, discernWitnessFor(t, c.ft, c.n))
		if err != nil {
			t.Fatalf("%s n=%d: %v", c.ft.Name(), c.n, err)
		}
		res, err := model.Check(dc, model.CheckOpts{
			Inputs:   make([]int, c.n),
			Validity: func(int) bool { return true },
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) > 0 {
			t.Errorf("%s n=%d: %v", c.ft.Name(), c.n, res.Violations[0])
		}
	}
}

// TestDiscernConsensusFirstApplierTeamWins: running one process's apply
// first forces its team on everyone.
func TestDiscernConsensusFirstApplierTeamWins(t *testing.T) {
	ft := types.XFour()
	dc, err := NewDiscernTeamConsensus(ft, discernWitnessFor(t, ft, 4))
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]int, 4)
	for first := 0; first < 4; first++ {
		var sigma schedule.Schedule
		// first applies and reads, then the rest.
		sigma = sigma.Append(schedule.Step(first), schedule.Step(first))
		for p := 0; p < 4; p++ {
			if p == first {
				continue
			}
			sigma = sigma.Append(schedule.Step(p), schedule.Step(p))
		}
		cfg := model.Exec(dc, model.InitialConfig(dc, inputs), sigma, inputs)
		want := dc.Team(first)
		for p := 0; p < 4; p++ {
			got, ok := model.Decision(dc, cfg, p)
			if !ok {
				t.Fatalf("first=%d: p%d undecided", first, p)
			}
			if got != want {
				t.Errorf("first=%d: p%d decided %d, want %d", first, p, got, want)
			}
		}
	}
}

// TestDiscernConsensusNotCrashSafe: unlike the recording-based protocol,
// Ruppert's construction breaks under individual crashes on a type whose
// recording level is below its discerning level — TAS at n = 2 — because
// a recovered process re-applies its operation. This is Golab's gap, at
// the witness-construction level.
func TestDiscernConsensusNotCrashSafe(t *testing.T) {
	ft := types.TestAndSet()
	dc, err := NewDiscernTeamConsensus(ft, discernWitnessFor(t, ft, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := model.Check(dc, model.CheckOpts{
		Inputs:     []int{0, 0},
		CrashQuota: []int{2, 2},
		Validity:   func(int) bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Error("expected the wait-free construction to break under crashes on TAS")
	}
}

// TestDiscernConsensusRejects covers constructor validation.
func TestDiscernConsensusRejects(t *testing.T) {
	// Non-readable type.
	ft := types.Tnn(3, 1)
	if ok, w := discern.IsNDiscerning(ft, 3); ok {
		if _, err := NewDiscernTeamConsensus(ft, w); err == nil {
			t.Error("non-readable type accepted")
		}
	} else {
		t.Fatal("T[3,1] should be 3-discerning")
	}
	// Bogus witness: both TAS processes in colliding configurations.
	bogus := &discern.Witness{N: 2, U: 1, Teams: []int{0, 1}, Ops: []spec.Op{0, 0}}
	if _, err := NewDiscernTeamConsensus(types.TestAndSet(), bogus); err == nil {
		t.Error("non-verifying witness accepted")
	}
}
