package proto

import (
	"testing"

	"repro/internal/model"
	"repro/internal/record"
	"repro/internal/schedule"
	"repro/internal/spec"
	"repro/internal/types"
)

func witnessFor(t *testing.T, ft *spec.FiniteType, n int) *record.Witness {
	t.Helper()
	ok, w := record.IsNRecording(ft, n)
	if !ok {
		t.Fatalf("%s is not %d-recording", ft.Name(), n)
	}
	return w
}

// TestTeamConsensusAgreementUnderCrashes model-checks the recording-based
// team-consensus protocol for agreement and recoverable wait-freedom
// under individual crashes, over CAS and sticky-bit witnesses.
func TestTeamConsensusAgreementUnderCrashes(t *testing.T) {
	cases := []struct {
		ft *spec.FiniteType
		n  int
	}{
		{types.CompareAndSwap(2), 2},
		{types.CompareAndSwap(2), 3},
		{types.StickyBit(), 2},
		{types.StickyBit(), 3},
	}
	for _, c := range cases {
		tc, err := NewTeamConsensus(c.ft, witnessFor(t, c.ft, c.n))
		if err != nil {
			t.Fatalf("%s n=%d: %v", c.ft.Name(), c.n, err)
		}
		inputs := make([]int, c.n)
		quota := make([]int, c.n)
		for p := 1; p < c.n; p++ {
			quota[p] = 2
		}
		res, err := model.Check(tc, model.CheckOpts{
			Inputs:     inputs,
			CrashQuota: quota,
			// The task is team agreement: any team value is valid.
			Validity: func(int) bool { return true },
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) > 0 {
			t.Errorf("%s n=%d: %v", c.ft.Name(), c.n, res.Violations[0])
		}
	}
}

// TestTeamConsensusFirstMoverTeamWins: when a process runs first, every
// process decides that process's team.
func TestTeamConsensusFirstMoverTeamWins(t *testing.T) {
	ft := types.CompareAndSwap(2)
	tc, err := NewTeamConsensus(ft, witnessFor(t, ft, 3))
	if err != nil {
		t.Fatal(err)
	}
	inputs := []int{0, 0, 0}
	for first := 0; first < 3; first++ {
		cfg := model.InitialConfig(tc, inputs)
		// Run `first` solo to completion, then everyone else.
		var sigma schedule.Schedule
		for k := 0; k < 3; k++ {
			sigma = sigma.Append(schedule.Step(first))
		}
		for p := 0; p < 3; p++ {
			if p == first {
				continue
			}
			for k := 0; k < 3; k++ {
				sigma = sigma.Append(schedule.Step(p))
			}
		}
		cfg = model.Exec(tc, cfg, sigma, inputs)
		want := tc.Team(first)
		for p := 0; p < 3; p++ {
			got, ok := model.Decision(tc, cfg, p)
			if !ok {
				t.Fatalf("first=%d: p%d undecided", first, p)
			}
			if got != want {
				t.Errorf("first=%d: p%d decided team %d, want first mover's team %d",
					first, p, got, want)
			}
		}
	}
}

// TestTeamConsensusRejectsBadInputs: non-readable types and re-reachable
// initial values are rejected at construction.
func TestTeamConsensusRejectsBadInputs(t *testing.T) {
	// Non-readable: T_{4,2} is 3-recording but not readable.
	ft := types.Tnn(4, 2)
	if ok, w := record.IsNRecording(ft, 3); ok {
		if _, err := NewTeamConsensus(ft, w); err == nil {
			t.Error("non-readable type accepted")
		}
	} else {
		t.Fatal("T[4,2] should be 3-recording")
	}

	// Re-reachable u: build a readable two-value toggle where the witness
	// value can be re-produced. The toggle is 2-recording... it is not:
	// use a handcrafted witness to hit the guard instead.
	b := spec.NewBuilder("toggle")
	b.Values("u", "w")
	b.Ops("flip", "read")
	b.Transition("u", "flip", 0, "w")
	b.Transition("w", "flip", 1, "u")
	b.ReadOp("read", 100)
	toggle := b.MustBuild()
	w := &record.Witness{N: 2, U: 0, Teams: []int{0, 1}, Ops: []spec.Op{0, 0}}
	if _, err := NewTeamConsensus(toggle, w); err == nil {
		t.Error("witness with intersecting/re-reachable values accepted")
	}
}

// TestTeamConsensusSoloDecidesOwnTeam: a process running alone decides its
// own team (it is the first mover).
func TestTeamConsensusSoloDecidesOwnTeam(t *testing.T) {
	ft := types.StickyBit()
	tc, err := NewTeamConsensus(ft, witnessFor(t, ft, 2))
	if err != nil {
		t.Fatal(err)
	}
	inputs := []int{0, 0}
	for p := 0; p < 2; p++ {
		cfg := model.InitialConfig(tc, inputs)
		for k := 0; k < 3; k++ {
			cfg = model.Step(tc, cfg, p)
		}
		got, ok := model.Decision(tc, cfg, p)
		if !ok || got != tc.Team(p) {
			t.Errorf("solo p%d decided (%d,%v), want own team %d", p, got, ok, tc.Team(p))
		}
	}
}
