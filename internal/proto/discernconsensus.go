package proto

import (
	"fmt"

	"repro/internal/discern"
	"repro/internal/model"
	"repro/internal/spec"
)

// DiscernTeamConsensus is the core of Ruppert's sufficiency theorem
// ("n-discerning readable types have consensus number >= n"), as a
// checkable protocol: given a readable type with an n-discerning witness,
// the n processes agree wait-free (crash-free!) on which TEAM's operation
// was applied first.
//
// Each process p applies its witness operation o_p once, then reads the
// object, and decides the team determined by the pair (own response,
// value read). The pair is guaranteed to lie in R_{x,p} for exactly one
// team x — the team of the actual first applier — because:
//
//   - the schedule of appliers before p's read is a schedule in S(P)
//     containing p (each process applies at most once);
//   - the read does not change the value, so the value read is the
//     "resulting value" of that schedule;
//   - the witness guarantees R_{0,p} and R_{1,p} are disjoint.
//
// Unlike TeamConsensus (the recording-based recoverable protocol), this
// one is only wait-free: a crash between the apply and the read leaves
// the process unable to tell whether it applied, and re-applying breaks
// the at-most-once premise. That asymmetry is precisely the paper's
// subject.
type DiscernTeamConsensus struct {
	ft      *spec.FiniteType
	witness *discern.Witness
	readOp  spec.Op
	// teamOf maps (process, response, value-read) to the first team.
	teamOf map[discernKey]int
}

type discernKey struct {
	p    int
	resp spec.Response
	val  spec.Value
}

var _ model.Protocol = (*DiscernTeamConsensus)(nil)

// NewDiscernTeamConsensus builds the protocol from a readable type and an
// n-discerning witness, rejecting non-readable types and non-verifying
// witnesses.
func NewDiscernTeamConsensus(ft *spec.FiniteType, w *discern.Witness) (*DiscernTeamConsensus, error) {
	if !ft.Readable() {
		return nil, fmt.Errorf("discern consensus needs a readable type, %s is not", ft.Name())
	}
	n := w.N
	teamOf := make(map[discernKey]int)

	// Enumerate all schedules in S(P); for each process in the schedule,
	// record (its response, every later value) -> first team. "Every
	// later value" because the read may happen after more appliers.
	inSched := make([]bool, n)
	resps := make([]spec.Response, n)
	order := make([]int, 0, n)
	conflict := false
	var dfs func(v spec.Value, team int)
	dfs = func(v spec.Value, team int) {
		for _, j := range order {
			k := discernKey{p: j, resp: resps[j], val: v}
			if old, ok := teamOf[k]; ok && old != team {
				conflict = true
				return
			}
			teamOf[k] = team
		}
		for p := 0; p < n; p++ {
			if inSched[p] {
				continue
			}
			e := ft.Apply(v, w.Ops[p])
			inSched[p] = true
			resps[p] = e.Resp
			order = append(order, p)
			dfs(e.Next, team)
			order = order[:len(order)-1]
			inSched[p] = false
		}
	}
	for f := 0; f < n; f++ {
		e := ft.Apply(w.U, w.Ops[f])
		inSched[f] = true
		resps[f] = e.Resp
		order = append(order, f)
		dfs(e.Next, w.Teams[f])
		order = order[:len(order)-1]
		inSched[f] = false
	}
	if conflict {
		return nil, fmt.Errorf("witness does not verify: R sets intersect")
	}
	return &DiscernTeamConsensus{
		ft: ft, witness: w, readOp: ft.ReadOps()[0], teamOf: teamOf,
	}, nil
}

func (d *DiscernTeamConsensus) Name() string {
	return fmt.Sprintf("discern-consensus[%s,n=%d]", d.ft.Name(), d.witness.N)
}

func (d *DiscernTeamConsensus) Procs() int { return d.witness.N }

func (d *DiscernTeamConsensus) Objects() []model.ObjectSpec {
	return []model.ObjectSpec{{Type: d.ft, Init: d.witness.U}}
}

func (d *DiscernTeamConsensus) Init(p, input int) string { return "apply" }

func (d *DiscernTeamConsensus) Poised(p int, state string) model.Action {
	if v, ok := parseDecided(state); ok {
		return model.Decide(v)
	}
	if state == "apply" {
		return model.Apply(0, d.witness.Ops[p])
	}
	// state is "read:<resp>"
	return model.Apply(0, d.readOp)
}

func (d *DiscernTeamConsensus) Next(p int, state string, resp spec.Response) string {
	if state == "apply" {
		return fmt.Sprintf("read:%d", int(resp))
	}
	// The read response identifies the value; recover the own-op response
	// from the state.
	var own int
	if _, err := fmt.Sscanf(state, "read:%d", &own); err != nil {
		return decidedState(0)
	}
	val := d.valueOfReadResp(resp)
	team, ok := d.teamOf[discernKey{p: p, resp: spec.Response(own), val: val}]
	if !ok {
		// Unreachable for a verified witness in crash-free executions.
		team = d.witness.Teams[p]
	}
	return decidedState(team)
}

func (d *DiscernTeamConsensus) valueOfReadResp(resp spec.Response) spec.Value {
	for v := 0; v < d.ft.NumValues(); v++ {
		if d.ft.Apply(spec.Value(v), d.readOp).Resp == resp {
			return spec.Value(v)
		}
	}
	return 0
}

// Team reports the team of process p under the protocol's witness.
func (d *DiscernTeamConsensus) Team(p int) int { return d.witness.Teams[p] }
