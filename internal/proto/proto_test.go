package proto

import (
	"testing"

	"repro/internal/model"
	"repro/internal/spec"
)

// TestAllProtocolsValidate runs the structural validator over the whole
// protocol suite.
func TestAllProtocolsValidate(t *testing.T) {
	prs := []model.Protocol{
		NewTnnWaitFree(3, 2, 3),
		NewTnnWaitFree(5, 2, 6),
		NewTnnRecoverable(4, 2, 2),
		NewTnnRecoverable(3, 1, 2),
		NewCASWaitFree(4),
		NewCASRecoverable(3),
		NewTASConsensus(),
	}
	for _, pr := range prs {
		if err := model.Validate(pr); err != nil {
			t.Errorf("%s: %v", pr.Name(), err)
		}
		if pr.Name() == "" {
			t.Error("empty protocol name")
		}
	}
}

// TestTnnWaitFreeStates walks the state machine of a single process.
func TestTnnWaitFreeStates(t *testing.T) {
	pr := NewTnnWaitFree(3, 1, 3)
	st := pr.Init(0, 1)
	a := pr.Poised(0, st)
	if a.Decided {
		t.Fatal("initial state should not be decided")
	}
	if a.Obj != 0 {
		t.Errorf("poised on object %d", a.Obj)
	}
	// Response 1 (first mover was op1) leads to deciding 1.
	next := pr.Next(0, st, 1)
	if v, ok := decisionOf(pr, 0, next); !ok || v != 1 {
		t.Errorf("after resp 1: state %q", next)
	}
	// Bot response falls back to deciding 0.
	next = pr.Next(0, st, 3)
	if v, ok := decisionOf(pr, 0, next); !ok || v != 0 {
		t.Errorf("after bot: state %q", next)
	}
}

// TestTnnRecoverableStates checks the opR dispatch of the paper's
// algorithm: s -> apply own op; s_{v,i} -> decide v; bot -> decide 0.
func TestTnnRecoverableStates(t *testing.T) {
	pr := NewTnnRecoverable(4, 2, 2)
	ft := pr.Objects()[0].Type

	st := pr.Init(1, 0)
	if st != "in0" {
		t.Fatalf("Init = %q", st)
	}
	a := pr.Poised(1, st)
	opR, _ := ft.OpByName("opR")
	if a.Op != opR {
		t.Errorf("first action should be opR, got %s", ft.OpName(a.Op))
	}

	// opR returned read:s -> move to applying own op.
	s, _ := ft.ValueByName("s")
	readS := ft.Apply(s, opR).Resp
	next := pr.Next(1, st, readS)
	if next != "apply0" {
		t.Errorf("after read:s, state %q", next)
	}
	op0, _ := ft.OpByName("op0")
	if got := pr.Poised(1, next); got.Op != op0 {
		t.Errorf("apply0 poised on %s", ft.OpName(got.Op))
	}

	// opR returned read:s_{1,2} -> decide 1.
	v12, _ := ft.ValueByName("s1,2")
	read12 := ft.Apply(v12, opR).Resp
	next = pr.Next(1, st, read12)
	if v, ok := decisionOf(pr, 1, next); !ok || v != 1 {
		t.Errorf("after read:s1,2: state %q", next)
	}

	// opR returned read:s_{0,1} -> decide 0.
	v01, _ := ft.ValueByName("s0,1")
	read01 := ft.Apply(v01, opR).Resp
	next = pr.Next(1, st, read01)
	if v, ok := decisionOf(pr, 1, next); !ok || v != 0 {
		t.Errorf("after read:s0,1: state %q", next)
	}
}

// TestCASRecoverableIdempotent: a process that CAS-succeeded and re-runs
// from scratch must re-decide its own value via the read.
func TestCASRecoverableIdempotent(t *testing.T) {
	pr := NewCASRecoverable(2)
	cfg := model.InitialConfig(pr, []int{1, 0})
	// p0 runs to completion: read (bot), cas1 wins.
	cfg = model.Step(pr, cfg, 0)
	cfg = model.Step(pr, cfg, 0)
	if v, ok := model.Decision(pr, cfg, 0); !ok || v != 1 {
		t.Fatalf("p0 should have decided 1")
	}
	// Crash p0; re-run solo: read now sees v1, decide 1 again.
	cfg = model.CrashProc(pr, cfg, 0, 1)
	cfg = model.Step(pr, cfg, 0)
	if v, ok := model.Decision(pr, cfg, 0); !ok || v != 1 {
		t.Errorf("p0 re-decided %v (ok=%v), want 1", v, ok)
	}
}

// TestTASWinnerFlipsAfterCrash walks the exact failure of Experiment E8 at
// the step-machine level.
func TestTASWinnerFlipsAfterCrash(t *testing.T) {
	pr := NewTASConsensus()
	inputs := []int{1, 0}
	cfg := model.InitialConfig(pr, inputs)
	// p0: write, TAS (wins) -> decided 1.
	cfg = model.Step(pr, cfg, 0)
	cfg = model.Step(pr, cfg, 0)
	if v, ok := model.Decision(pr, cfg, 0); !ok || v != 1 {
		t.Fatalf("p0 should have decided its input 1")
	}
	// p1 completes: write, TAS (loses), read R0=1 -> decides 1.
	cfg = model.Step(pr, cfg, 1)
	cfg = model.Step(pr, cfg, 1)
	cfg = model.Step(pr, cfg, 1)
	if v, ok := model.Decision(pr, cfg, 1); !ok || v != 1 {
		t.Fatalf("p1 should have adopted 1")
	}
	// Crash p0 and re-run: write, TAS loses now, read R1=0 -> decides 0.
	cfg = model.CrashProc(pr, cfg, 0, 1)
	cfg = model.Step(pr, cfg, 0)
	cfg = model.Step(pr, cfg, 0)
	cfg = model.Step(pr, cfg, 0)
	if v, ok := model.Decision(pr, cfg, 0); !ok || v != 0 {
		t.Errorf("p0 re-decision = %v, want the flip to 0", v)
	}
}

// decisionOf resolves a state's decision via the protocol interface.
func decisionOf(pr model.Protocol, p int, state string) (int, bool) {
	a := pr.Poised(p, state)
	if !a.Decided {
		return 0, false
	}
	return a.Decision, true
}

// TestDecidedStatesAreNoOps: stepping a decided process must not change
// the configuration.
func TestDecidedStatesAreNoOps(t *testing.T) {
	pr := NewCASWaitFree(2)
	cfg := model.InitialConfig(pr, []int{0, 1})
	cfg = model.Step(pr, cfg, 0) // p0 decides
	if _, ok := model.Decision(pr, cfg, 0); !ok {
		t.Fatal("p0 should have decided")
	}
	after := model.Step(pr, cfg, 0)
	if !after.Equal(cfg) {
		t.Error("no-op step changed the configuration")
	}
}

// TestResponsesInRange: every protocol state transition stays within the
// object's response space (guards against stale response constants).
func TestResponsesInRange(t *testing.T) {
	prs := []model.Protocol{
		NewTnnWaitFree(4, 2, 4),
		NewTnnRecoverable(4, 2, 2),
		NewCASWaitFree(3),
		NewCASRecoverable(3),
		NewTASConsensus(),
	}
	for _, pr := range prs {
		objs := pr.Objects()
		for p := 0; p < pr.Procs(); p++ {
			for input := 0; input <= 1; input++ {
				visited := map[string]bool{}
				var walk func(state string, depth int)
				walk = func(state string, depth int) {
					if visited[state] || depth > 32 {
						return
					}
					visited[state] = true
					a := pr.Poised(p, state)
					if a.Decided {
						return
					}
					ft := objs[a.Obj].Type
					// Feed every response the object could produce in any
					// value; the protocol must return a nonempty state.
					for v := 0; v < ft.NumValues(); v++ {
						e := ft.Apply(spec.Value(v), a.Op)
						next := pr.Next(p, state, e.Resp)
						if next == "" {
							t.Errorf("%s: empty state after %s resp %d",
								pr.Name(), state, e.Resp)
							return
						}
						walk(next, depth+1)
					}
				}
				walk(pr.Init(p, input), 0)
			}
		}
	}
}
