package proto

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/record"
	"repro/internal/spec"
)

// TeamConsensus is the core mechanism of DFFR's Theorem 8 ("n-recording
// readable types solve recoverable consensus"), as a checkable protocol:
// given a readable type with an n-recording witness, the n processes
// agree on WHICH TEAM's operation was applied first.
//
// Each process p:
//
//	read the object:
//	  - value != u: decide team(value)  (the recording property makes the
//	    team function well defined on every reachable value)
//	  - value == u: apply o_p, then read again and decide team(value)
//
// Crash-recovery safety relies on u not being re-reachable by the witness
// operations (u not in U_0 nor U_1): then "read returned u" proves the
// process has not applied its own operation yet, so no operation is ever
// applied twice — the property the U sets' schedule set S(P) requires.
// NewTeamConsensus rejects witnesses without this guarantee.
//
// The decision is the team index (0 or 1). Full binary consensus
// additionally requires mapping teams back to input values, which is the
// part of DFFR's construction that lives in their paper; this protocol
// isolates the recording mechanism itself (see DESIGN.md).
type TeamConsensus struct {
	ft      *spec.FiniteType
	witness *record.Witness
	readOp  spec.Op
	// teamOf[v] is the team whose first move can produce value v
	// (-1 for u itself and unreachable values).
	teamOf []int
}

var _ model.Protocol = (*TeamConsensus)(nil)

// NewTeamConsensus builds the protocol from a readable type and an
// n-recording witness for it. It fails if the type is not readable, the
// witness does not verify, or u is re-reachable (which would break
// at-most-once application under crashes).
func NewTeamConsensus(ft *spec.FiniteType, w *record.Witness) (*TeamConsensus, error) {
	if !ft.Readable() {
		return nil, fmt.Errorf("team consensus needs a readable type, %s is not", ft.Name())
	}
	reads := ft.ReadOps()

	// Recompute the U sets from the witness and derive the team map.
	teamOf := make([]int, ft.NumValues())
	for i := range teamOf {
		teamOf[i] = -1
	}
	n := w.N
	inSched := make([]bool, n)
	conflict := false
	var dfs func(v spec.Value, team int)
	dfs = func(v spec.Value, team int) {
		if teamOf[v] >= 0 && teamOf[v] != team {
			conflict = true
			return
		}
		teamOf[v] = team
		for p := 0; p < n; p++ {
			if inSched[p] {
				continue
			}
			inSched[p] = true
			dfs(ft.Apply(v, w.Ops[p]).Next, team)
			inSched[p] = false
		}
	}
	for f := 0; f < n; f++ {
		inSched[f] = true
		dfs(ft.Apply(w.U, w.Ops[f]).Next, w.Teams[f])
		inSched[f] = false
	}
	if conflict {
		return nil, fmt.Errorf("witness does not verify: U sets intersect")
	}
	if teamOf[w.U] >= 0 {
		return nil, fmt.Errorf(
			"u is re-reachable (u in U_%d): crash-safe at-most-once application is not guaranteed",
			teamOf[w.U])
	}
	return &TeamConsensus{ft: ft, witness: w, readOp: reads[0], teamOf: teamOf}, nil
}

func (t *TeamConsensus) Name() string {
	return fmt.Sprintf("team-consensus[%s,n=%d]", t.ft.Name(), t.witness.N)
}

func (t *TeamConsensus) Procs() int { return t.witness.N }

func (t *TeamConsensus) Objects() []model.ObjectSpec {
	return []model.ObjectSpec{{Type: t.ft, Init: t.witness.U}}
}

// Init ignores the input: the task is team agreement, not binary
// consensus on inputs.
func (t *TeamConsensus) Init(p, input int) string { return "read1" }

func (t *TeamConsensus) Poised(p int, state string) model.Action {
	if v, ok := parseDecided(state); ok {
		return model.Decide(v)
	}
	switch state {
	case "read1", "read2":
		return model.Apply(0, t.readOp)
	default: // "apply"
		return model.Apply(0, t.witness.Ops[p])
	}
}

func (t *TeamConsensus) Next(p int, state string, resp spec.Response) string {
	switch state {
	case "read1":
		v := t.valueOfReadResp(resp)
		if v == t.witness.U {
			return "apply"
		}
		return decidedState(t.teamOf[v])
	case "apply":
		return "read2"
	default: // "read2"
		v := t.valueOfReadResp(resp)
		if team := t.teamOf[v]; team >= 0 {
			return decidedState(team)
		}
		// Unreachable for a verified witness: after our own operation the
		// value is in U_0 or U_1. Decide our own team defensively.
		return decidedState(t.witness.Teams[p])
	}
}

// valueOfReadResp inverts the read operation's response to the value it
// identifies.
func (t *TeamConsensus) valueOfReadResp(resp spec.Response) spec.Value {
	for v := 0; v < t.ft.NumValues(); v++ {
		if t.ft.Apply(spec.Value(v), t.readOp).Resp == resp {
			return spec.Value(v)
		}
	}
	return 0
}

// Team reports the team of process p under the protocol's witness.
func (t *TeamConsensus) Team(p int) int { return t.witness.Teams[p] }
