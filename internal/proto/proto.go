package proto

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/types"
)

// decidedState encodes a decision as a state string.
func decidedState(v int) string { return "d" + strconv.Itoa(v) }

// parseDecided reports whether state is a decided state and its value.
func parseDecided(state string) (int, bool) {
	if !strings.HasPrefix(state, "d") {
		return 0, false
	}
	v, err := strconv.Atoi(state[1:])
	if err != nil {
		return 0, false
	}
	return v, true
}

// mustOp resolves an operation by name or panics (protocol construction
// is static).
func mustOp(t *spec.FiniteType, name string) spec.Op {
	o, ok := t.OpByName(name)
	if !ok {
		panic(fmt.Sprintf("type %s has no operation %q", t.Name(), name))
	}
	return o
}

// mustValue resolves a value by name or panics.
func mustValue(t *spec.FiniteType, name string) spec.Value {
	v, ok := t.ValueByName(name)
	if !ok {
		panic(fmt.Sprintf("type %s has no value %q", t.Name(), name))
	}
	return v
}

// ---------------------------------------------------------------------------
// T_{n,n'} wait-free consensus (Section 4, first algorithm).
// ---------------------------------------------------------------------------

// TnnWaitFree is the paper's one-shot wait-free consensus algorithm: a
// process with input x applies op_x to a fresh T_{n,n'} object and decides
// the response. It solves wait-free consensus for up to n processes; run
// with procs = n+1 it is expected to fail (the (n+1)-th operation returns
// bot and the process has no valid decision — it decides 0, which the
// checker flags).
type TnnWaitFree struct {
	N, NPrime int
	NumProcs  int

	ft       *spec.FiniteType
	op0, op1 spec.Op
}

var _ model.Protocol = (*TnnWaitFree)(nil)

// NewTnnWaitFree builds the protocol for numProcs processes over one
// T_{n,n'} object.
func NewTnnWaitFree(n, nPrime, numProcs int) *TnnWaitFree {
	ft := types.Tnn(n, nPrime)
	return &TnnWaitFree{
		N: n, NPrime: nPrime, NumProcs: numProcs,
		ft:  ft,
		op0: mustOp(ft, "op0"),
		op1: mustOp(ft, "op1"),
	}
}

func (t *TnnWaitFree) Name() string {
	return fmt.Sprintf("tnn-wait-free[n=%d,n'=%d,procs=%d]", t.N, t.NPrime, t.NumProcs)
}

func (t *TnnWaitFree) Procs() int { return t.NumProcs }

func (t *TnnWaitFree) Objects() []model.ObjectSpec {
	return []model.ObjectSpec{{Type: t.ft, Init: mustValue(t.ft, "s")}}
}

func (t *TnnWaitFree) Init(p, input int) string { return "in" + strconv.Itoa(input) }

func (t *TnnWaitFree) Poised(p int, state string) model.Action {
	if v, ok := parseDecided(state); ok {
		return model.Decide(v)
	}
	if state == "in0" {
		return model.Apply(0, t.op0)
	}
	return model.Apply(0, t.op1)
}

func (t *TnnWaitFree) Next(p int, state string, resp spec.Response) string {
	switch resp {
	case types.TnnResp0:
		return decidedState(0)
	case types.TnnResp1:
		return decidedState(1)
	default:
		// bot: only reachable with more than n processes; the algorithm
		// has no correct decision — decide 0 so the checker can exhibit
		// the failure.
		return decidedState(0)
	}
}

// ---------------------------------------------------------------------------
// T_{n,n'} recoverable consensus (Section 4, second algorithm).
// ---------------------------------------------------------------------------

// TnnRecoverable is the paper's recoverable wait-free consensus algorithm
// for n' processes over one T_{n,n'} object:
//
//	apply opR:
//	  - response s_{v,i}: decide v
//	  - response bot:     decide 0 (the paper argues this cannot happen
//	                      with at most n' processes)
//	  - response s:       apply op_x (x = own input) and decide the
//	                      response
//
// A crash resets the process to the opR step, which is safe: opR is
// read-like while the counter is at most n', and a process applies op_x at
// most once in its life because it only does so after seeing the initial
// value s.
type TnnRecoverable struct {
	N, NPrime int
	NumProcs  int

	ft            *spec.FiniteType
	op0, op1, opR spec.Op
	readS         spec.Response
}

var _ model.Protocol = (*TnnRecoverable)(nil)

// NewTnnRecoverable builds the protocol for numProcs processes. The paper
// proves it correct for numProcs <= n'; with numProcs = n'+1 the crash-burn
// adversary defeats it (Experiment E5).
func NewTnnRecoverable(n, nPrime, numProcs int) *TnnRecoverable {
	ft := types.Tnn(n, nPrime)
	s := mustValue(ft, "s")
	return &TnnRecoverable{
		N: n, NPrime: nPrime, NumProcs: numProcs,
		ft:    ft,
		op0:   mustOp(ft, "op0"),
		op1:   mustOp(ft, "op1"),
		opR:   mustOp(ft, "opR"),
		readS: ft.Apply(s, mustOp(ft, "opR")).Resp,
	}
}

func (t *TnnRecoverable) Name() string {
	return fmt.Sprintf("tnn-recoverable[n=%d,n'=%d,procs=%d]", t.N, t.NPrime, t.NumProcs)
}

func (t *TnnRecoverable) Procs() int { return t.NumProcs }

func (t *TnnRecoverable) Objects() []model.ObjectSpec {
	return []model.ObjectSpec{{Type: t.ft, Init: mustValue(t.ft, "s")}}
}

func (t *TnnRecoverable) Init(p, input int) string { return "in" + strconv.Itoa(input) }

func (t *TnnRecoverable) Poised(p int, state string) model.Action {
	if v, ok := parseDecided(state); ok {
		return model.Decide(v)
	}
	switch state {
	case "in0", "in1":
		return model.Apply(0, t.opR)
	case "apply0":
		return model.Apply(0, t.op0)
	default: // "apply1"
		return model.Apply(0, t.op1)
	}
}

func (t *TnnRecoverable) Next(p int, state string, resp spec.Response) string {
	switch state {
	case "in0", "in1":
		// Response of opR.
		switch {
		case resp == t.readS:
			return "apply" + state[2:]
		case resp == types.TnnRespBot:
			return decidedState(0)
		default:
			// resp identifies a value s_{v,i}; recover v from the value
			// index encoded in the read response.
			idx := int(resp - types.RespReadBase)
			v := t.teamOfValueIndex(idx)
			return decidedState(v)
		}
	default:
		// Response of op_x.
		switch resp {
		case types.TnnResp0:
			return decidedState(0)
		case types.TnnResp1:
			return decidedState(1)
		default:
			return decidedState(0) // bot: unreachable with <= n' processes
		}
	}
}

// teamOfValueIndex maps a value index of T_{n,n'} to the team x of
// s_{x,i}; the value ordering is s, s_{0,1..n-1}, s_{1,1..n-1}, s_bot.
func (t *TnnRecoverable) teamOfValueIndex(idx int) int {
	if idx <= 0 || idx >= 2*t.N-1 {
		return 0 // s or s_bot: not a team value; arbitrary
	}
	if idx <= t.N-1 {
		return 0
	}
	return 1
}

// ---------------------------------------------------------------------------
// Compare-and-swap consensus (wait-free baseline).
// ---------------------------------------------------------------------------

// CASWaitFree solves wait-free binary consensus for any number of
// processes with a single compare-and-swap object: apply cas_x; on success
// decide x, otherwise decide the installed value.
type CASWaitFree struct {
	NumProcs int

	ft         *spec.FiniteType
	cas0, cas1 spec.Op
}

var _ model.Protocol = (*CASWaitFree)(nil)

// NewCASWaitFree builds the protocol.
func NewCASWaitFree(numProcs int) *CASWaitFree {
	ft := types.CompareAndSwap(2)
	return &CASWaitFree{
		NumProcs: numProcs,
		ft:       ft,
		cas0:     mustOp(ft, "cas0"),
		cas1:     mustOp(ft, "cas1"),
	}
}

func (c *CASWaitFree) Name() string { return fmt.Sprintf("cas-wait-free[procs=%d]", c.NumProcs) }
func (c *CASWaitFree) Procs() int   { return c.NumProcs }

func (c *CASWaitFree) Objects() []model.ObjectSpec {
	return []model.ObjectSpec{{Type: c.ft, Init: mustValue(c.ft, "bot")}}
}

func (c *CASWaitFree) Init(p, input int) string { return "in" + strconv.Itoa(input) }

func (c *CASWaitFree) Poised(p int, state string) model.Action {
	if v, ok := parseDecided(state); ok {
		return model.Decide(v)
	}
	if state == "in0" {
		return model.Apply(0, c.cas0)
	}
	return model.Apply(0, c.cas1)
}

func (c *CASWaitFree) Next(p int, state string, resp spec.Response) string {
	if resp == 100 { // success
		return decidedState(int(state[2] - '0'))
	}
	return decidedState(int(resp - 200)) // lost: decide installed value
}

// ---------------------------------------------------------------------------
// Compare-and-swap recoverable consensus.
// ---------------------------------------------------------------------------

// CASRecoverable solves recoverable wait-free binary consensus for any
// number of processes: read the CAS object; if a value is installed decide
// it, otherwise cas_x and decide the response. Crashes are harmless: the
// read-first structure makes every step idempotent, and a process that
// crashed after a successful CAS re-reads the installed value.
type CASRecoverable struct {
	NumProcs int

	ft               *spec.FiniteType
	cas0, cas1, read spec.Op
	readBot          spec.Response
}

var _ model.Protocol = (*CASRecoverable)(nil)

// NewCASRecoverable builds the protocol.
func NewCASRecoverable(numProcs int) *CASRecoverable {
	ft := types.CompareAndSwap(2)
	return &CASRecoverable{
		NumProcs: numProcs,
		ft:       ft,
		cas0:     mustOp(ft, "cas0"),
		cas1:     mustOp(ft, "cas1"),
		read:     mustOp(ft, "read"),
		readBot:  ft.Apply(mustValue(ft, "bot"), mustOp(ft, "read")).Resp,
	}
}

func (c *CASRecoverable) Name() string {
	return fmt.Sprintf("cas-recoverable[procs=%d]", c.NumProcs)
}
func (c *CASRecoverable) Procs() int { return c.NumProcs }

func (c *CASRecoverable) Objects() []model.ObjectSpec {
	return []model.ObjectSpec{{Type: c.ft, Init: mustValue(c.ft, "bot")}}
}

func (c *CASRecoverable) Init(p, input int) string { return "in" + strconv.Itoa(input) }

func (c *CASRecoverable) Poised(p int, state string) model.Action {
	if v, ok := parseDecided(state); ok {
		return model.Decide(v)
	}
	switch state {
	case "in0", "in1":
		return model.Apply(0, c.read)
	case "try0":
		return model.Apply(0, c.cas0)
	default: // "try1"
		return model.Apply(0, c.cas1)
	}
}

func (c *CASRecoverable) Next(p int, state string, resp spec.Response) string {
	switch state {
	case "in0", "in1":
		if resp == c.readBot {
			return "try" + state[2:]
		}
		// read:v_j — value index j+1, proposal j.
		return decidedState(int(resp-types.RespReadBase) - 1)
	default:
		if resp == 100 {
			return decidedState(int(state[3] - '0'))
		}
		return decidedState(int(resp - 200))
	}
}

// ---------------------------------------------------------------------------
// Test-and-set 2-process consensus (crash-free correct; crash-unsafe).
// ---------------------------------------------------------------------------

// TASConsensus is the classic 2-process consensus algorithm from one
// test-and-set object and two single-writer registers: write your input to
// your register, TAS; the winner decides its own input, the loser reads
// the winner's register and decides that. It is wait-free correct for two
// crash-free processes. Under individual crashes it is NOT correct: a
// winner that crashes between TAS and deciding re-executes, loses its own
// TAS, and adopts the other register, which may hold a stale or unwritten
// value. Golab proved no algorithm from TAS and registers can work; the
// checker exhibits the failure on this one (Experiment E8).
type TASConsensus struct {
	ft  *spec.FiniteType
	reg *spec.FiniteType

	tas            spec.Op
	writeOp        [2]spec.Op // write0 / write1 on a register
	readOp         spec.Op
	regReadBase    spec.Response
	regInitialName string
}

var _ model.Protocol = (*TASConsensus)(nil)

// NewTASConsensus builds the protocol. Registers are three-valued
// {v0, v1, v2} with initial value v2 ("unwritten"); a loser that reads an
// unwritten register decides 0 arbitrarily (the checker will flag the
// resulting validity violation under crashes).
func NewTASConsensus() *TASConsensus {
	reg := types.Register(3)
	ft := types.TestAndSet()
	return &TASConsensus{
		ft:  ft,
		reg: reg,
		tas: mustOp(ft, "TAS"),
		writeOp: [2]spec.Op{
			mustOp(reg, "write0"),
			mustOp(reg, "write1"),
		},
		readOp:         mustOp(reg, "read"),
		regReadBase:    types.RespReadBase,
		regInitialName: "v2",
	}
}

func (t *TASConsensus) Name() string { return "tas-register-2consensus" }
func (t *TASConsensus) Procs() int   { return 2 }

// Objects: 0 = the TAS bit, 1 = p0's register, 2 = p1's register.
func (t *TASConsensus) Objects() []model.ObjectSpec {
	return []model.ObjectSpec{
		{Type: t.ft, Init: mustValue(t.ft, "0")},
		{Type: t.reg, Init: mustValue(t.reg, t.regInitialName)},
		{Type: t.reg, Init: mustValue(t.reg, t.regInitialName)},
	}
}

func (t *TASConsensus) Init(p, input int) string { return "in" + strconv.Itoa(input) }

func (t *TASConsensus) Poised(p int, state string) model.Action {
	if v, ok := parseDecided(state); ok {
		return model.Decide(v)
	}
	switch state {
	case "in0", "in1":
		x := int(state[2] - '0')
		return model.Apply(1+p, t.writeOp[x])
	case "tas0", "tas1":
		return model.Apply(0, t.tas)
	default: // "readother"
		return model.Apply(1+(1-p), t.readOp)
	}
}

func (t *TASConsensus) Next(p int, state string, resp spec.Response) string {
	switch state {
	case "in0", "in1":
		return "tas" + state[2:]
	case "tas0", "tas1":
		if resp == 0 { // won the TAS
			return decidedState(int(state[3] - '0'))
		}
		return "readother"
	default: // "readother"
		v := int(resp - t.regReadBase)
		if v > 1 {
			v = 0 // unwritten register: no valid decision exists
		}
		return decidedState(v)
	}
}
