package sim_test

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/algo"
	"repro/internal/sim"
)

func programs(a *algo.Algorithm, n int) []sim.Program {
	out := make([]sim.Program, n)
	for p := 0; p < n; p++ {
		out[p] = a.Program(p)
	}
	return out
}

// TestTnnRecoverableUnderRandomCrashes fuzzes the paper's recoverable
// algorithm with seeded random adversaries: agreement and validity must
// hold for every seed, input vector and crash pattern within n' processes.
func TestTnnRecoverableUnderRandomCrashes(t *testing.T) {
	cases := []struct{ n, np int }{{3, 2}, {4, 2}, {5, 3}, {6, 4}}
	for _, c := range cases {
		a := algo.TnnRecoverable(c.n, c.np)
		for seed := int64(0); seed < 30; seed++ {
			for m := 0; m < 1<<uint(c.np); m++ {
				inputs := make([]int, c.np)
				for p := range inputs {
					inputs[p] = (m >> uint(p)) & 1
				}
				adv := adversary.NewRandom(seed, 0.3, 4)
				res, err := sim.Run(a.Cells, programs(a, c.np), inputs, adv, sim.Options{})
				if err != nil {
					t.Fatalf("%s seed %d inputs %v: %v", a.Name, seed, inputs, err)
				}
				if err := res.VerifyConsensus(inputs); err != nil {
					t.Errorf("%s seed %d inputs %v: %v\nschedule: %s",
						a.Name, seed, inputs, err, res.Schedule)
				}
			}
		}
	}
}

// TestTnnWaitFreeCrashFree runs the wait-free algorithm with the fair
// round-robin adversary (no crashes).
func TestTnnWaitFreeCrashFree(t *testing.T) {
	a := algo.TnnWaitFree(4, 2)
	inputs := []int{0, 1, 1, 0}
	res, err := sim.Run(a.Cells, programs(a, 4), inputs, &adversary.RoundRobin{}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.VerifyConsensus(inputs); err != nil {
		t.Error(err)
	}
	if res.Crashes != 0 {
		t.Errorf("round-robin adversary crashed %d times", res.Crashes)
	}
	if res.Steps != 4 {
		t.Errorf("one-shot algorithm took %d steps for 4 processes, want 4", res.Steps)
	}
}

// TestCASRecoverableUnderCrashStorm hits every process with a burst of
// crashes right before each of its first steps.
func TestCASRecoverableUnderCrashStorm(t *testing.T) {
	a := algo.CASRecoverable()
	for n := 2; n <= 5; n++ {
		inputs := make([]int, n)
		for p := range inputs {
			inputs[p] = p % 2
		}
		targets := make([]int, n)
		for p := range targets {
			targets[p] = p
		}
		adv := &adversary.CrashStorm{Targets: targets, Times: 3}
		res, err := sim.Run(a.Cells, programs(a, n), inputs, adv, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.VerifyConsensus(inputs); err != nil {
			t.Errorf("n=%d: %v\nschedule: %s", n, err, res.Schedule)
		}
		if res.Crashes != 3*n {
			t.Errorf("n=%d: expected %d crashes, got %d", n, 3*n, res.Crashes)
		}
	}
}

// TestTnnRecoverableUnderBudgetedAdversary uses the E*_z-respecting
// adversary, whose crash pattern follows the paper's budget discipline.
func TestTnnRecoverableUnderBudgetedAdversary(t *testing.T) {
	a := algo.TnnRecoverable(5, 3)
	inputs := []int{1, 0, 1}
	for seed := int64(0); seed < 20; seed++ {
		adv := adversary.NewBudgeted(seed, 3, 1, 0.4)
		res, err := sim.Run(a.Cells, programs(a, 3), inputs, adv, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.VerifyConsensus(inputs); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestTASBreaksOnCrashAfterDecide is Experiment E8 at runtime: run the
// crash-free-correct TAS algorithm to completion, then model a process
// that crashes AFTER deciding by re-executing its program solo over the
// same non-volatile store. The TAS winner re-runs, loses its own TAS and
// adopts the other register — an agreement violation with its own earlier
// output, exactly the failure mode behind Golab's separation (TAS has
// consensus number 2 but recoverable consensus number 1).
func TestTASBreaksOnCrashAfterDecide(t *testing.T) {
	a := algo.TASConsensus()
	inputs := []int{1, 0}
	res, err := sim.Run(a.Cells, programs(a, 2), inputs, &adversary.RoundRobin{}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.VerifyConsensus(inputs); err != nil {
		t.Fatalf("crash-free run should be correct: %v", err)
	}
	broken := false
	for p := 0; p < 2; p++ {
		redecision := sim.RunSolo(res.Store, a.Program(p), p, inputs[p])
		if redecision != res.Decisions[p] {
			broken = true
		}
	}
	if !broken {
		t.Error("no process re-decided inconsistently; expected the TAS winner to flip")
	}
}

// TestRecoverableAlgosReDecideConsistently is the positive counterpart:
// the paper's T_{n,n'} algorithm and the CAS baseline must re-decide the
// SAME value when a process crashes after deciding and re-runs.
func TestRecoverableAlgosReDecideConsistently(t *testing.T) {
	for _, a := range []*algoPack{
		{algo.TnnRecoverable(4, 2), 2},
		{algo.TnnRecoverable(5, 3), 3},
		{algo.CASRecoverable(), 3},
	} {
		inputs := make([]int, a.n)
		for p := range inputs {
			inputs[p] = (p + 1) % 2
		}
		res, err := sim.Run(a.alg.Cells, programs(a.alg, a.n), inputs,
			adversary.NewRandom(11, 0.3, 3), sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.VerifyConsensus(inputs); err != nil {
			t.Fatalf("%s: %v", a.alg.Name, err)
		}
		for p := 0; p < a.n; p++ {
			if re := sim.RunSolo(res.Store, a.alg.Program(p), p, inputs[p]); re != res.Decisions[p] {
				t.Errorf("%s: p%d decided %d but re-decided %d after crash-after-decide",
					a.alg.Name, p, res.Decisions[p], re)
			}
		}
	}
}

type algoPack struct {
	alg *algo.Algorithm
	n   int
}

// TestDeterminism: the same adversary seed must produce the same schedule.
func TestDeterminism(t *testing.T) {
	a := algo.TnnRecoverable(4, 2)
	inputs := []int{0, 1}
	run := func() string {
		adv := adversary.NewRandom(7, 0.3, 3)
		res, err := sim.Run(a.Cells, programs(a, 2), inputs, adv, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Schedule.String()
	}
	s1, s2 := run(), run()
	if s1 != s2 {
		t.Errorf("non-deterministic schedules:\n%s\n%s", s1, s2)
	}
}

// TestRunArgumentErrors checks argument validation.
func TestRunArgumentErrors(t *testing.T) {
	a := algo.CASRecoverable()
	if _, err := sim.Run(a.Cells, nil, nil, &adversary.RoundRobin{}, sim.Options{}); err == nil {
		t.Error("no processes accepted")
	}
	if _, err := sim.Run(a.Cells, programs(a, 2), []int{0}, &adversary.RoundRobin{}, sim.Options{}); err == nil {
		t.Error("input arity mismatch accepted")
	}
}

// TestMaxEventsAborts checks that a pathological adversary cannot hang the
// runtime: crashing a process forever must trip MaxEvents.
func TestMaxEventsAborts(t *testing.T) {
	a := algo.CASRecoverable()
	adv := &foreverCrash{}
	_, err := sim.Run(a.Cells, programs(a, 2), []int{0, 1}, adv, sim.Options{MaxEvents: 500})
	if err == nil {
		t.Error("expected MaxEvents abort")
	}
}

type foreverCrash struct{}

func (f *foreverCrash) Next(runnable []int, crashes []int, steps int) (int, bool) {
	return runnable[0], true
}
