package sim

import (
	"fmt"
	"sync"

	"repro/internal/nvm"
	"repro/internal/schedule"
	"repro/internal/spec"
)

// Ctx is the interface a process program uses to interact with shared
// memory. Programs must perform ALL inter-process communication through
// Apply; anything else is local (volatile) state.
type Ctx struct {
	pid   int
	input int
	store *nvm.Store
	rt    *runtime // nil for solo (unscheduled) execution
}

// PID returns the process identifier.
func (c *Ctx) PID() int { return c.pid }

// Input returns the process's consensus input.
func (c *Ctx) Input() int { return c.input }

// Apply performs one shared-memory step: it blocks until the scheduler
// grants this process a step, then applies op to object obj. If the
// adversary chose to crash the process instead, Apply never returns: the
// program is aborted and restarted from its initial state.
func (c *Ctx) Apply(obj int, op spec.Op) spec.Response {
	if c.rt != nil {
		c.rt.awaitGrant(c.pid)
	}
	return c.store.Apply(obj, op)
}

// Program is a process's code: it runs to completion and returns a
// decision. After a crash it is re-invoked from the top with a fresh Ctx.
type Program func(ctx *Ctx) int

// crashSignal aborts a program run; the process runner recovers it.
type crashSignal struct{}

// abortSignal terminates a process goroutine for good (run aborted).
type abortSignal struct{}

// Adversary decides the next event. runnable lists the processes that
// have not yet decided; crashes[p] counts crashes injected into p so far;
// steps is the number of steps granted so far. The adversary returns the
// process to schedule and whether it crashes instead of stepping.
type Adversary interface {
	Next(runnable []int, crashes []int, steps int) (p int, crash bool)
}

// Result reports one run.
type Result struct {
	// Decisions[p] is the decision of process p.
	Decisions []int
	// Schedule is the sequence of granted steps and injected crashes.
	Schedule schedule.Schedule
	// Steps and Crashes are the totals.
	Steps   int
	Crashes int
	// Store is the non-volatile memory after the run. Because it models
	// NVM, it can be handed back to RunSolo to model processes that crash
	// AFTER deciding and re-execute from their initial state.
	Store *nvm.Store
}

// VerifyConsensus checks agreement and validity of the result against the
// inputs.
func (r *Result) VerifyConsensus(inputs []int) error {
	for p := 1; p < len(r.Decisions); p++ {
		if r.Decisions[p] != r.Decisions[0] {
			return fmt.Errorf("agreement violated: p0 decided %d, p%d decided %d",
				r.Decisions[0], p, r.Decisions[p])
		}
	}
	for p, d := range r.Decisions {
		ok := false
		for _, in := range inputs {
			if d == in {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("validity violated: p%d decided %d, not an input", p, d)
		}
	}
	return nil
}

// runtime coordinates the scheduler and the process goroutines.
type runtime struct {
	store *nvm.Store
	// grant[p] delivers one token per allowed step; a crash token is
	// delivered as a closed-over flag.
	grant []chan grantMsg
	// ready[p] signals that p is blocked waiting for a grant (i.e. it is
	// about to perform a step) or has decided.
	ready chan readyMsg
}

type grantMsg struct {
	crash bool
}

type readyMsg struct {
	pid     int
	decided bool
	value   int
}

func (rt *runtime) awaitGrant(pid int) {
	rt.ready <- readyMsg{pid: pid}
	g, ok := <-rt.grant[pid]
	if !ok {
		panic(abortSignal{})
	}
	if g.crash {
		panic(crashSignal{})
	}
}

// Options configures a run.
type Options struct {
	// MaxEvents aborts runs whose adversary never lets the protocol finish
	// (default 1,000,000).
	MaxEvents int
}

// Run executes programs (one per process) with the given inputs over a
// fresh store built from cells, scheduling with adv. It returns the
// decisions and the schedule, or an error if the run was aborted.
func Run(cells []nvm.Cell, programs []Program, inputs []int, adv Adversary, opts Options) (*Result, error) {
	n := len(programs)
	if n == 0 {
		return nil, fmt.Errorf("sim: no processes")
	}
	if len(inputs) != n {
		return nil, fmt.Errorf("sim: %d inputs for %d processes", len(inputs), n)
	}
	store, err := nvm.NewStore(cells...)
	if err != nil {
		return nil, err
	}
	maxEvents := opts.MaxEvents
	if maxEvents == 0 {
		maxEvents = 1_000_000
	}

	rt := &runtime{
		store: store,
		grant: make([]chan grantMsg, n),
		ready: make(chan readyMsg),
	}
	for p := range rt.grant {
		rt.grant[p] = make(chan grantMsg)
	}

	res := &Result{Decisions: make([]int, n), Store: store}
	decided := make([]bool, n)
	crashes := make([]int, n)

	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for {
				value, outcome := runOnce(programs[p],
					&Ctx{pid: p, input: inputs[p], store: store, rt: rt})
				switch outcome {
				case ranDecided:
					rt.ready <- readyMsg{pid: p, decided: true, value: value}
					return
				case ranAborted:
					return
				}
				// ranCrashed: restart the program from its initial state.
			}
		}(p)
	}

	// Scheduler: wait until every undecided process is parked at a grant
	// point, then let the adversary pick an event.
	waiting := make([]bool, n)
	numParked := 0
	numDecided := 0
	// abort terminates every live process goroutine (a closed grant
	// channel panics the program with abortSignal) and waits for them to
	// exit; in-flight ready messages are drained.
	abort := func() {
		for p := 0; p < n; p++ {
			close(rt.grant[p])
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			wg.Wait()
		}()
		for {
			select {
			case <-rt.ready:
			case <-done:
				return
			}
		}
	}

	for numDecided < n {
		if res.Steps+res.Crashes > maxEvents {
			abort()
			return nil, fmt.Errorf("sim: exceeded %d events without termination", maxEvents)
		}
		// Wait until every live process is parked at a grant point (the
		// run stays deterministic: at most one process is ever running
		// between grants).
		if numParked+numDecided < n {
			msg := <-rt.ready
			if msg.decided {
				decided[msg.pid] = true
				res.Decisions[msg.pid] = msg.value
				numDecided++
			} else {
				waiting[msg.pid] = true
				numParked++
			}
			continue
		}
		var runnable []int
		for p := 0; p < n; p++ {
			if waiting[p] {
				runnable = append(runnable, p)
			}
		}
		pick, crash := adv.Next(runnable, crashes, res.Steps)
		if pick < 0 || pick >= n || !waiting[pick] {
			abort()
			return nil, fmt.Errorf("sim: adversary picked non-runnable process %d", pick)
		}
		waiting[pick] = false
		numParked--
		if crash {
			crashes[pick]++
			res.Crashes++
			res.Schedule = append(res.Schedule, schedule.Crash(pick))
			rt.grant[pick] <- grantMsg{crash: true}
		} else {
			res.Steps++
			res.Schedule = append(res.Schedule, schedule.Step(pick))
			rt.grant[pick] <- grantMsg{}
		}
	}
	wg.Wait()
	return res, nil
}

// RunSolo executes one program to completion over an existing store,
// without a scheduler and without crashes, and returns its decision. It
// models a process that crashed (possibly after deciding) and now runs
// alone from its initial state: the paper's model requires it to output a
// value consistent with every earlier output, which callers check by
// comparing against the original run's decisions.
func RunSolo(store *nvm.Store, program Program, pid, input int) int {
	return program(&Ctx{pid: pid, input: input, store: store})
}

// runOutcome is the result of one program attempt.
type runOutcome int

const (
	ranDecided runOutcome = iota
	ranCrashed
	ranAborted
)

// runOnce runs one attempt of a program, converting crash and abort
// signals into outcomes.
func runOnce(prog Program, ctx *Ctx) (value int, outcome runOutcome) {
	defer func() {
		if r := recover(); r != nil {
			switch r.(type) {
			case crashSignal:
				outcome = ranCrashed
			case abortSignal:
				outcome = ranAborted
			default:
				panic(r)
			}
		}
	}()
	return prog(ctx), ranDecided
}
