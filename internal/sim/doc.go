// Package sim is the concurrent crash-recovery runtime: it executes
// process programs as goroutines over a non-volatile store, under a
// deterministic scheduler driven by an adversary that chooses, before
// every shared-memory step, which process moves next and whether it
// crashes instead.
//
// Crash semantics follow Section 2 of the paper exactly: a crashed process
// loses all local state (its program is aborted via a panic that the
// runtime recovers, and restarted from the top, so ordinary Go local
// variables are the volatile state), while the nvm.Store it accesses is
// never reset.
//
// The runtime is fully deterministic for a deterministic adversary: only
// one process runs between grants, so every run with the same adversary
// produces the same schedule — which is what lets the integration tests
// replay simulator schedules inside the model checker. One Run owns its
// programs and store for the duration of the call; independent Runs are
// safe to execute concurrently (the seed sweeps in cmd/crashsim do).
package sim
