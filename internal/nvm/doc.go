// Package nvm simulates non-volatile main memory for the crash-recovery
// model of Section 2: a store of typed object cells whose values survive
// process crashes, with linearizable (mutex-serialized) operation
// application and access statistics.
//
// Go's garbage-collected runtime cannot host real persistent memory, so
// this package is the substitution documented in DESIGN.md: object values
// live in an explicit store that the simulation layer never resets, while
// process-local state (ordinary Go variables in a process's program) is
// wiped by restarting the program — exactly the crash semantics the paper
// assumes.
//
// A Store is safe for concurrent use (every Apply is serialized by one
// mutex, which is also what makes it linearizable); it is owned by one
// simulation run but deliberately survives that run's crashes and
// restarts.
package nvm
