package nvm

import (
	"sync"
	"testing"

	"repro/internal/spec"
	"repro/internal/types"
)

func TestStoreBasics(t *testing.T) {
	ft := types.TestAndSet()
	s := MustNewStore(Cell{Type: ft, Init: 0}, Cell{Type: ft, Init: 1})
	if s.NumObjects() != 2 {
		t.Fatalf("NumObjects = %d", s.NumObjects())
	}
	tas, _ := ft.OpByName("TAS")
	if r := s.Apply(0, tas); r != 0 {
		t.Errorf("first TAS on obj0 = %d, want 0", r)
	}
	if r := s.Apply(0, tas); r != 1 {
		t.Errorf("second TAS on obj0 = %d, want 1", r)
	}
	if r := s.Apply(1, tas); r != 1 {
		t.Errorf("TAS on pre-set obj1 = %d, want 1", r)
	}
	if v := s.Value(0); ft.ValueName(v) != "1" {
		t.Errorf("obj0 value = %s", ft.ValueName(v))
	}
	if got := s.OpCount(0); got != 2 {
		t.Errorf("OpCount(0) = %d", got)
	}
	if got := s.TotalOps(); got != 3 {
		t.Errorf("TotalOps = %d", got)
	}
	if snap := s.Snapshot(); len(snap) != 2 || snap[0] != 1 {
		t.Errorf("Snapshot = %v", snap)
	}
	if s.Type(0) != ft {
		t.Error("Type accessor broken")
	}
}

func TestStoreErrors(t *testing.T) {
	if _, err := NewStore(); err == nil {
		t.Error("empty store accepted")
	}
	if _, err := NewStore(Cell{Type: nil}); err == nil {
		t.Error("nil type accepted")
	}
	if _, err := NewStore(Cell{Type: types.TestAndSet(), Init: 99}); err == nil {
		t.Error("out-of-range init accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewStore should panic on error")
		}
	}()
	MustNewStore()
}

// TestLinearizability hammers a fetch-and-add object from many goroutines:
// because FetchAdd responses are the pre-increment values, a linearizable
// store must hand out each residue class the right number of times.
func TestLinearizability(t *testing.T) {
	const (
		m       = 64
		workers = 8
		perW    = 200
	)
	ft := types.FetchAdd(m)
	s := MustNewStore(Cell{Type: ft, Init: 0})
	faa, _ := ft.OpByName("FAA")

	var mu sync.Mutex
	seen := make(map[spec.Response]int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make(map[spec.Response]int)
			for i := 0; i < perW; i++ {
				local[s.Apply(0, faa)]++
			}
			mu.Lock()
			for k, v := range local {
				seen[k] += v
			}
			mu.Unlock()
		}()
	}
	wg.Wait()

	total := workers * perW
	want := total / m // total is a multiple of m
	for r := 0; r < m; r++ {
		if got := seen[spec.Response(r)]; got != want {
			t.Fatalf("response %d seen %d times, want %d (non-linearizable interleaving?)",
				r, got, want)
		}
	}
	if got := s.OpCount(0); got != int64(total) {
		t.Errorf("OpCount = %d, want %d", got, total)
	}
}
