package nvm

import (
	"fmt"
	"sync"

	"repro/internal/spec"
)

// Cell declares one object: its type and initial value.
type Cell struct {
	Type *spec.FiniteType
	Init spec.Value
}

// Store is a collection of non-volatile object cells. All methods are safe
// for concurrent use; each Apply is atomic, so the store is a linearizable
// implementation of its objects.
type Store struct {
	mu    sync.Mutex
	types []*spec.FiniteType
	vals  []spec.Value
	ops   []int64 // per-object applied-operation counts
}

// NewStore builds a store with the given cells.
func NewStore(cells ...Cell) (*Store, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("nvm: store needs at least one cell")
	}
	s := &Store{
		types: make([]*spec.FiniteType, len(cells)),
		vals:  make([]spec.Value, len(cells)),
		ops:   make([]int64, len(cells)),
	}
	for i, c := range cells {
		if c.Type == nil {
			return nil, fmt.Errorf("nvm: cell %d has nil type", i)
		}
		if int(c.Init) < 0 || int(c.Init) >= c.Type.NumValues() {
			return nil, fmt.Errorf("nvm: cell %d initial value %d out of range", i, int(c.Init))
		}
		s.types[i] = c.Type
		s.vals[i] = c.Init
	}
	return s, nil
}

// MustNewStore is NewStore that panics on error (static construction).
func MustNewStore(cells ...Cell) *Store {
	s, err := NewStore(cells...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumObjects returns the number of cells.
func (s *Store) NumObjects() int { return len(s.types) }

// Type returns the type of object obj.
func (s *Store) Type(obj int) *spec.FiniteType { return s.types[obj] }

// Apply atomically applies op to object obj per its sequential
// specification and returns the response.
func (s *Store) Apply(obj int, op spec.Op) spec.Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.types[obj].Apply(s.vals[obj], op)
	s.vals[obj] = e.Next
	s.ops[obj]++
	return e.Resp
}

// Value returns the current value of object obj. It exists for inspection
// and verification; processes in the model interact only through Apply.
func (s *Store) Value(obj int) spec.Value {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vals[obj]
}

// OpCount returns the number of operations applied to object obj.
func (s *Store) OpCount(obj int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops[obj]
}

// TotalOps returns the number of operations applied across all objects.
func (s *Store) TotalOps() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, n := range s.ops {
		total += n
	}
	return total
}

// Snapshot returns a copy of all object values (for verification).
func (s *Store) Snapshot() []spec.Value {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]spec.Value, len(s.vals))
	copy(out, s.vals)
	return out
}
