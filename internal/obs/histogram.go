package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of finite histogram buckets. Bounds are
// log-spaced powers of two microseconds: bound i is 1µs·2^i, so the
// finite range spans 1µs to ~17.9 minutes (2^30 µs ≈ 1074 s); slower
// observations land in the +Inf overflow bucket. The spacing gives
// every histogram — sub-millisecond engine stages and multi-second
// HTTP requests alike — about 10 buckets per three decades with zero
// float math on the observe path.
const NumBuckets = 31

// bucketBounds are the shared upper bounds in seconds, identical for
// every Histogram so exposition label sets are stable.
var bucketBounds = func() [NumBuckets]float64 {
	var b [NumBuckets]float64
	for i := range b {
		b[i] = float64(uint64(1)<<i) / 1e6
	}
	return b
}()

// BucketBounds returns the shared upper bounds (in seconds) of the
// finite buckets, smallest first. The returned slice is a copy.
func BucketBounds() []float64 {
	b := make([]float64, NumBuckets)
	copy(b, bucketBounds[:])
	return b
}

// Histogram is a lock-free latency histogram over the package's fixed
// log-spaced buckets. The zero value is ready to use; all methods are
// safe for concurrent use. Observe performs two atomic adds and no
// allocation, cheap enough for per-walk engine hot paths.
type Histogram struct {
	// counts[i] is the number of observations in bucket i (NOT
	// cumulative); counts[NumBuckets] is the +Inf overflow bucket.
	counts [NumBuckets + 1]atomic.Uint64
	// sumNanos accumulates total observed duration. An int64 of
	// nanoseconds overflows after ~292 years of accumulated latency —
	// beyond any process lifetime.
	sumNanos atomic.Int64
}

// bucketIndex returns the index of the smallest bound >= d, or
// NumBuckets for the overflow bucket. Bound i is 1µs·2^i, so the index
// is the bit length of the ceiling-microsecond value minus one... which
// bits.Len64(us-1) computes directly: us=1 → 0, us=2 → 1, us=3 → 2.
func bucketIndex(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns <= 1000 { // includes zero and negative clock anomalies
		return 0
	}
	us := uint64(ns+999) / 1000
	idx := bits.Len64(us - 1)
	if idx >= NumBuckets {
		return NumBuckets
	}
	return idx
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketIndex(d)].Add(1)
	h.sumNanos.Add(d.Nanoseconds())
}

// Snapshot is a point-in-time view of a Histogram, in the cumulative
// form Prometheus histogram series use.
type Snapshot struct {
	// Cumulative[i] counts observations <= BucketBounds()[i];
	// Cumulative[NumBuckets] is the +Inf bucket and always equals Count.
	Cumulative [NumBuckets + 1]uint64
	// Count is the total number of observations.
	Count uint64
	// Sum is the total observed time in seconds.
	Sum float64
}

// Snapshot captures the histogram. The bucket/count invariant
// (+Inf == Count, buckets monotone) holds within one snapshot even
// under concurrent Observe calls, because Count is derived from the
// same per-bucket loads; Sum may lag observations that raced the
// snapshot.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	var running uint64
	for i := 0; i <= NumBuckets; i++ {
		running += h.counts[i].Load()
		s.Cumulative[i] = running
	}
	s.Count = running
	s.Sum = float64(h.sumNanos.Load()) / 1e9
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) in seconds by linear
// interpolation inside the containing bucket. Observations in the +Inf
// bucket report the largest finite bound. Returns 0 for an empty
// histogram.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	for i := 0; i <= NumBuckets; i++ {
		if float64(s.Cumulative[i]) >= rank {
			if i >= NumBuckets {
				return bucketBounds[NumBuckets-1]
			}
			lower := 0.0
			prev := uint64(0)
			if i > 0 {
				lower = bucketBounds[i-1]
				prev = s.Cumulative[i-1]
			}
			width := bucketBounds[i] - lower
			inBucket := float64(s.Cumulative[i] - prev)
			if inBucket == 0 {
				return bucketBounds[i]
			}
			frac := (rank - float64(prev)) / inBucket
			return lower + width*frac
		}
	}
	return bucketBounds[NumBuckets-1]
}

// Mean returns the average observation in seconds (0 when empty).
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}
