package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// HeaderRequestID is the HTTP header carrying a request's correlation
// ID: clients may send one, the server generates one when absent, and
// every response (success or error envelope) echoes it.
const HeaderRequestID = "X-Request-Id"

// maxRequestIDLen bounds an accepted inbound request ID. Anything
// longer (or containing non-token bytes) is replaced by a generated ID
// so a hostile client cannot inject log noise or unbounded labels.
const maxRequestIDLen = 128

// ctxKey is the private context-key namespace.
type ctxKey int

const (
	requestIDKey ctxKey = iota
	traceKey
)

// NewRequestID returns a fresh 16-hex-character random request ID.
// Randomness comes from crypto/rand; on the (effectively impossible)
// failure of the system randomness source it degrades to a fixed
// sentinel rather than panicking in a request path.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "rid-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// ValidRequestID reports whether a caller-supplied request ID is safe to
// adopt: non-empty, at most maxRequestIDLen bytes, and built from the
// URL-and-log-safe token alphabet [A-Za-z0-9._:/+-].
func ValidRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == ':' || c == '/' || c == '+' || c == '-':
		default:
			return false
		}
	}
	return true
}

// WithRequestID returns a context carrying the request ID. Loggers from
// NewLogger stamp it on every record logged under the context, and the
// typed client forwards it as the X-Request-Id header.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom returns the context's request ID, or "" when none is
// set.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}
