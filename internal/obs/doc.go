// Package obs is the dependency-free observability core every layer of
// the reproduction instruments itself with: request identity, structured
// logging, latency histograms, and per-request span traces. It imports
// only the standard library, so any package — engine, serve, client,
// cmd — can depend on it without cycles or third-party baggage.
//
// The four pieces:
//
//   - Request identity: NewRequestID generates a compact random ID,
//     WithRequestID/RequestIDFrom carry it on a context, and
//     HeaderRequestID names the X-Request-Id header it rides on between
//     client, server and log.
//   - Logging: NewLogger builds a log/slog JSON logger whose handler
//     pulls the request ID out of the context of every Log call, so one
//     grep over request_id= reconstructs a request's full story.
//     NopLogger is the disabled default (Enabled reports false, records
//     are never formatted).
//   - Histogram: a lock-free latency histogram over fixed log-spaced
//     (powers-of-two microseconds) buckets. Observe is a two-atomic-add
//     operation with no allocation and no float math, cheap enough for
//     the engine's per-walk hot path; Snapshot renders the cumulative
//     bucket view a Prometheus histogram series needs, plus estimated
//     quantiles for human-readable summaries.
//   - Trace: a bounded, mutex-guarded span recorder carried on the
//     request context. The engine's progress events land here as spans;
//     the HTTP middleware dumps them into the slow-request log so "why
//     was this check slow" is answered by the log line itself.
//
// # Concurrency and ownership
//
// Histogram is safe for fully concurrent Observe/Snapshot with no locks
// (counters are independent atomics; a snapshot is internally consistent
// for the bucket/count invariant Prometheus requires, while Sum may lag
// by in-flight observations). Trace serializes Add/Spans with a mutex
// and hard-caps retained spans, so a runaway emitter degrades to a
// dropped-span counter, never unbounded memory. Loggers returned by
// NewLogger are slog loggers and inherit slog's concurrency contract.
//
// # Byte-stability guarantees
//
// Bucket bounds are fixed at compile time and identical across every
// histogram, so exposition label sets (le="...") are stable across
// processes and versions; request IDs are random by construction and
// carry no ordering or host information.
package obs
