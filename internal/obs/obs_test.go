package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Fatalf("two generated IDs collide: %q", a)
	}
	if len(a) != 16 || !ValidRequestID(a) {
		t.Fatalf("generated ID %q not a valid 16-hex token", a)
	}
	for id, want := range map[string]bool{
		"abc-123":                true,
		"trace/7:retry+1":        true,
		"":                       false,
		"has space":              false,
		"newline\nhere":          false,
		strings.Repeat("x", 129): false,
		strings.Repeat("x", 128): true,
	} {
		if got := ValidRequestID(id); got != want {
			t.Errorf("ValidRequestID(%q) = %v, want %v", id, got, want)
		}
	}
	ctx := WithRequestID(context.Background(), "rid-1")
	if got := RequestIDFrom(ctx); got != "rid-1" {
		t.Fatalf("RequestIDFrom = %q", got)
	}
	if got := RequestIDFrom(context.Background()); got != "" {
		t.Fatalf("RequestIDFrom(empty) = %q", got)
	}
}

// TestLoggerInjectsRequestID proves the context handler stamps
// request_id on records logged under a request-scoped context — the
// mechanism that makes one grep reconstruct a request.
func TestLoggerInjectsRequestID(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, slog.LevelInfo)
	ctx := WithRequestID(context.Background(), "rid-xyz")
	lg.InfoContext(ctx, "http.access", slog.String("endpoint", "check"))
	lg.With(slog.String("component", "serve")).InfoContext(ctx, "derived")
	lg.InfoContext(context.Background(), "no-rid")
	lg.DebugContext(ctx, "below-level")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	for i, want := range []string{"rid-xyz", "rid-xyz", ""} {
		var rec map[string]any
		if err := json.Unmarshal([]byte(lines[i]), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		got, _ := rec["request_id"].(string)
		if got != want {
			t.Errorf("line %d request_id = %q, want %q (%s)", i, got, want, lines[i])
		}
	}
	if !strings.Contains(lines[1], `"component":"serve"`) {
		t.Errorf("WithAttrs lost on wrapped handler: %s", lines[1])
	}
}

func TestNopLogger(t *testing.T) {
	lg := NopLogger()
	if lg.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("nop logger claims to be enabled")
	}
	lg.Error("must not panic")
}

func TestTrace(t *testing.T) {
	tr := NewTrace()
	tr.Add("check.start", "tnn-wf", 0)
	tr.Add("check.done", "17 nodes", 3*time.Millisecond)
	spans, dropped := tr.Spans()
	if len(spans) != 2 || dropped != 0 {
		t.Fatalf("spans = %d dropped = %d", len(spans), dropped)
	}
	if spans[1].Name != "check.done" || spans[1].Elapsed != 3*time.Millisecond {
		t.Fatalf("span wrong: %+v", spans[1])
	}
	s := tr.String()
	for _, want := range []string{"check.start(tnn-wf)", "check.done(17 nodes)=3ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("trace %q missing %q", s, want)
		}
	}
	// The cap degrades to counting, never unbounded growth.
	for i := 0; i < maxTraceSpans+10; i++ {
		tr.Add("level.done", "", time.Microsecond)
	}
	spans, dropped = tr.Spans()
	if len(spans) != maxTraceSpans || dropped != 12 {
		t.Fatalf("after overflow: %d spans, %d dropped", len(spans), dropped)
	}
	if !strings.Contains(tr.String(), "+12 dropped") {
		t.Errorf("dropped count not rendered: %q", tr.String())
	}
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("trace lost on context")
	}
	if TraceFrom(context.Background()) != nil {
		t.Fatal("phantom trace")
	}
}
