package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestBucketIndex pins the bucket boundaries: bound i is 1µs·2^i with
// <= semantics, sub-microsecond (and garbage negative) durations land
// in bucket 0, and beyond-range durations land in the overflow bucket.
func TestBucketIndex(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0},
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + time.Nanosecond, 1},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},         // 1024µs bound is index 10
		{time.Second, 20},              // ~1.05s bound is index 20
		{17 * time.Minute, 30},         // inside the largest finite bucket
		{18 * time.Minute, NumBuckets}, // past 2^30 µs: overflow
		{24 * time.Hour, NumBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// The <=-bound semantics must agree with the exported bounds.
	bounds := BucketBounds()
	for i, b := range bounds {
		d := time.Duration(b * 1e9)
		if got := bucketIndex(d); got != i {
			t.Errorf("bound %d (%v): bucketIndex = %d, want %d", i, d, got, i)
		}
	}
}

// TestHistogramSnapshotInvariants drives concurrent observers and
// checks the Prometheus invariants on every snapshot taken while they
// run: cumulative buckets are monotone and the +Inf bucket equals the
// count.
func TestHistogramSnapshotInvariants(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			d := time.Duration(g+1) * 37 * time.Microsecond
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(d)
				}
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		s := h.Snapshot()
		for j := 1; j <= NumBuckets; j++ {
			if s.Cumulative[j] < s.Cumulative[j-1] {
				t.Fatalf("snapshot %d: bucket %d (%d) < bucket %d (%d)",
					i, j, s.Cumulative[j], j-1, s.Cumulative[j-1])
			}
		}
		if s.Cumulative[NumBuckets] != s.Count {
			t.Fatalf("snapshot %d: +Inf bucket %d != count %d", i, s.Cumulative[NumBuckets], s.Count)
		}
	}
	close(stop)
	wg.Wait()
}

// TestHistogramQuantile checks the interpolation against a known
// distribution.
func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := (Snapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	// 90 fast observations, 10 slow ones: p50 must sit in the fast
	// bucket, p99 in the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(80 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if p50 := s.Quantile(0.5); p50 <= 0 || p50 > 16e-6 {
		t.Errorf("p50 = %v, want in the (8µs,16µs] bucket", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 64e-3 || p99 > 131e-3 {
		t.Errorf("p99 = %v, want in the slow bucket", p99)
	}
	if mean := s.Mean(); math.Abs(mean-(90*10e-6+10*80e-3)/100) > 1e-9 {
		t.Errorf("mean = %v", mean)
	}
	// Overflow observations report the largest finite bound.
	var o Histogram
	o.Observe(time.Hour)
	if q := o.Snapshot().Quantile(0.5); q != BucketBounds()[NumBuckets-1] {
		t.Errorf("overflow quantile = %v, want last bound", q)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
}
