package obs

import (
	"context"
	"io"
	"log/slog"
)

// contextHandler decorates a slog.Handler with attributes derived from
// the Log call's context: currently the request ID. It is what makes
// `logger.InfoContext(ctx, ...)` carry request_id without every call
// site threading it by hand.
type contextHandler struct {
	inner slog.Handler
}

func (h contextHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h contextHandler) Handle(ctx context.Context, r slog.Record) error {
	if id := RequestIDFrom(ctx); id != "" {
		r.AddAttrs(slog.String("request_id", id))
	}
	return h.inner.Handle(ctx, r)
}

func (h contextHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return contextHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h contextHandler) WithGroup(name string) slog.Handler {
	return contextHandler{inner: h.inner.WithGroup(name)}
}

// NewLogger builds the structured JSON logger the service logs with:
// one JSON object per line on w, RFC3339Nano timestamps (slog's JSON
// default), and the context's request ID injected as request_id on
// every record logged through a request-scoped context.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(contextHandler{inner: slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})})
}

// nopHandler is a handler that is never enabled, so records are not
// even formatted. (slog.DiscardHandler needs Go 1.24; this module
// supports 1.23.)
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// NopLogger returns a logger that drops everything without formatting
// it — the default when no logger is configured, so library code can
// log unconditionally instead of nil-checking.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }
