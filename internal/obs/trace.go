package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// maxTraceSpans bounds the spans one Trace retains; later spans are
// counted, not stored, so a pathological emitter cannot grow a request's
// memory without bound.
const maxTraceSpans = 64

// Span is one timed stage of a request: an engine progress event
// (level check, graph walk, chain stage) rendered as where-time-went
// evidence.
type Span struct {
	// Name is the stage kind ("check.done", "level.done", ...).
	Name string
	// Detail carries stage-specific context (type name, node counts).
	Detail string
	// Elapsed is the stage's wall-clock cost (zero for begin markers).
	Elapsed time.Duration
	// At is the span's offset from the trace's start.
	At time.Duration
}

// Trace is a bounded per-request span recorder. The HTTP middleware
// installs one on the request context; the request's engine streams its
// progress events into it; the slow-request log dumps it. Safe for
// concurrent use.
type Trace struct {
	start time.Time

	mu      sync.Mutex
	spans   []Span
	dropped int
}

// NewTrace starts an empty trace; offsets are measured from now.
func NewTrace() *Trace {
	return &Trace{start: time.Now()}
}

// Add records one span.
func (t *Trace) Add(name, detail string, elapsed time.Duration) {
	at := time.Since(t.start)
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxTraceSpans {
		t.dropped++
		return
	}
	t.spans = append(t.spans, Span{Name: name, Detail: detail, Elapsed: elapsed, At: at})
}

// Spans returns a copy of the recorded spans in arrival order, plus the
// count of spans dropped past the retention cap.
func (t *Trace) Spans() ([]Span, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out, t.dropped
}

// String renders the trace as one compact where-time-went line:
// "name(detail)=elapsed@offset; ...", with a "+N dropped" suffix when
// the cap was hit. Begin markers (zero elapsed) render without the
// duration.
func (t *Trace) String() string {
	spans, dropped := t.Spans()
	var b strings.Builder
	for i, s := range spans {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(s.Name)
		if s.Detail != "" {
			fmt.Fprintf(&b, "(%s)", s.Detail)
		}
		if s.Elapsed > 0 {
			fmt.Fprintf(&b, "=%s", s.Elapsed.Round(10*time.Microsecond))
		}
		fmt.Fprintf(&b, "@%s", s.At.Round(10*time.Microsecond))
	}
	if dropped > 0 {
		fmt.Fprintf(&b, " (+%d dropped)", dropped)
	}
	return b.String()
}

// WithTrace returns a context carrying the trace.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey, t)
}

// TraceFrom returns the context's trace, or nil when none is installed.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}
