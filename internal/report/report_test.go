package report

import (
	"strings"
	"testing"
)

// TestPaperSuiteAllPass runs the entire experiment suite; every experiment
// must reproduce its paper claim.
func TestPaperSuiteAllPass(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite takes ~10s")
	}
	outcomes := PaperSuite().RunAll(nil)
	if len(outcomes) != 15 {
		t.Fatalf("suite ran %d experiments, want 15", len(outcomes))
	}
	for _, o := range outcomes {
		if !o.Pass {
			t.Errorf("%s (%s) failed:\n%s\n%s", o.ID, o.Title, strings.Join(o.Rows, "\n"), o.Detail)
		}
		if len(o.Rows) == 0 {
			t.Errorf("%s produced no rows", o.ID)
		}
	}
}

func TestFilter(t *testing.T) {
	outcomes := PaperSuite().RunAll([]string{"e1"})
	if len(outcomes) != 1 || outcomes[0].ID != "E1" {
		t.Fatalf("filter broke: %+v", outcomes)
	}
}

func TestIDs(t *testing.T) {
	ids := PaperSuite().IDs()
	if len(ids) != 15 || ids[0] != "E1" || ids[14] != "E15" {
		t.Errorf("IDs = %v", ids)
	}
}

func TestRenderAndMarkdown(t *testing.T) {
	outcomes := PaperSuite().RunAll([]string{"E1"})
	txt := Render(outcomes)
	for _, want := range []string{"E1", "PASS", "paper:", "experiments passed"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Render missing %q", want)
		}
	}
	md := Markdown(outcomes)
	for _, want := range []string{"### E1", "**Paper claim.**", "```"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q", want)
		}
	}
}

func TestRenderFailCase(t *testing.T) {
	out := []Outcome{{ID: "EX", Title: "t", Claim: "c", Rows: []string{"r"}, Pass: false, Detail: "boom"}}
	txt := Render(out)
	for _, want := range []string{"FAIL", "boom", "0/1 experiments passed"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Render missing %q:\n%s", want, txt)
		}
	}
	md := Markdown(out)
	for _, want := range []string{"(FAIL)", "_boom_"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
}

func TestSortByID(t *testing.T) {
	out := []Outcome{{ID: "E10"}, {ID: "E2"}, {ID: "E1"}}
	SortByID(out)
	if out[0].ID != "E1" || out[1].ID != "E2" || out[2].ID != "E10" {
		t.Errorf("sorted = %v", out)
	}
}
