// Package report defines the experiment harness: one Experiment per paper
// artifact (figure, lemma, theorem or derived table), each of which
// re-derives the paper's claim from the library and reports
// paper-vs-measured rows. cmd/experiments runs the suite and prints the
// tables recorded in EXPERIMENTS.md.
package report

import (
	"fmt"
	"sort"
	"strings"
)

// Outcome of one experiment.
type Outcome struct {
	// ID is the experiment identifier (E1..E11).
	ID string
	// Title summarizes the experiment.
	Title string
	// Claim is the paper's claim being reproduced.
	Claim string
	// Rows are the measured table rows (already formatted).
	Rows []string
	// Pass reports whether every measured row matched the claim.
	Pass bool
	// Detail carries failure diagnostics.
	Detail string
}

// Experiment is one runnable reproduction unit.
type Experiment struct {
	ID    string
	Title string
	Claim string
	Run   func() (rows []string, pass bool, detail string)
}

// Suite is an ordered collection of experiments.
type Suite struct {
	experiments []Experiment
}

// Add appends an experiment.
func (s *Suite) Add(e Experiment) { s.experiments = append(s.experiments, e) }

// IDs lists the registered experiment IDs in order.
func (s *Suite) IDs() []string {
	out := make([]string, len(s.experiments))
	for i, e := range s.experiments {
		out[i] = e.ID
	}
	return out
}

// RunAll executes every experiment (or only those whose ID is in filter,
// if filter is nonempty) and returns outcomes in registration order.
func (s *Suite) RunAll(filter []string) []Outcome {
	want := make(map[string]bool, len(filter))
	for _, id := range filter {
		want[strings.ToUpper(strings.TrimSpace(id))] = true
	}
	var out []Outcome
	for _, e := range s.experiments {
		if len(want) > 0 && !want[strings.ToUpper(e.ID)] {
			continue
		}
		rows, pass, detail := e.Run()
		out = append(out, Outcome{
			ID: e.ID, Title: e.Title, Claim: e.Claim,
			Rows: rows, Pass: pass, Detail: detail,
		})
	}
	return out
}

// Render formats outcomes as a text report.
func Render(outcomes []Outcome) string {
	var b strings.Builder
	passed := 0
	for _, o := range outcomes {
		status := "PASS"
		if !o.Pass {
			status = "FAIL"
		} else {
			passed++
		}
		fmt.Fprintf(&b, "== %s: %s [%s]\n", o.ID, o.Title, status)
		fmt.Fprintf(&b, "   paper: %s\n", o.Claim)
		for _, row := range o.Rows {
			fmt.Fprintf(&b, "   %s\n", row)
		}
		if o.Detail != "" {
			fmt.Fprintf(&b, "   detail: %s\n", o.Detail)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%d/%d experiments passed\n", passed, len(outcomes))
	return b.String()
}

// Markdown formats outcomes as the EXPERIMENTS.md body.
func Markdown(outcomes []Outcome) string {
	var b strings.Builder
	for _, o := range outcomes {
		status := "PASS"
		if !o.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "### %s — %s (%s)\n\n", o.ID, o.Title, status)
		fmt.Fprintf(&b, "**Paper claim.** %s\n\n**Measured.**\n\n```\n", o.Claim)
		for _, row := range o.Rows {
			fmt.Fprintf(&b, "%s\n", row)
		}
		b.WriteString("```\n\n")
		if o.Detail != "" {
			fmt.Fprintf(&b, "_%s_\n\n", o.Detail)
		}
	}
	return b.String()
}

// SortByID orders outcomes E1 < E2 < ... < E10 (numeric suffix).
func SortByID(outcomes []Outcome) {
	num := func(id string) int {
		n := 0
		for _, c := range id {
			if c >= '0' && c <= '9' {
				n = n*10 + int(c-'0')
			}
		}
		return n
	}
	sort.SliceStable(outcomes, func(i, j int) bool {
		return num(outcomes[i].ID) < num(outcomes[j].ID)
	})
}
