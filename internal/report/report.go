package report

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/spec"
)

// Analyzer computes a type's discerning/recording spectrum up to maxN.
// Both the serial reference (core.Analyze, the default) and the
// concurrent memoizing engine (engine.Engine) satisfy it; cmd tools
// inject an engine via PaperSuiteWith so experiments share its decision
// cache — including a -cache-file persistent one across runs.
type Analyzer interface {
	AnalyzeTo(t *spec.FiniteType, maxN int) (*core.Analysis, error)
}

// coreAnalyzer is the default Analyzer: the serial reference decider.
type coreAnalyzer struct{}

func (coreAnalyzer) AnalyzeTo(t *spec.FiniteType, maxN int) (*core.Analysis, error) {
	return core.Analyze(t, maxN)
}

// Outcome of one experiment.
type Outcome struct {
	// ID is the experiment identifier (E1..E11).
	ID string
	// Title summarizes the experiment.
	Title string
	// Claim is the paper's claim being reproduced.
	Claim string
	// Rows are the measured table rows (already formatted).
	Rows []string
	// Pass reports whether every measured row matched the claim.
	Pass bool
	// Skipped reports that the experiment never ran (the run context
	// was canceled before it started); Pass is false but the outcome is
	// not a reproduction failure.
	Skipped bool
	// Detail carries failure diagnostics.
	Detail string
}

// Experiment is one runnable reproduction unit.
type Experiment struct {
	ID    string
	Title string
	Claim string
	Run   func() (rows []string, pass bool, detail string)
}

// Suite is an ordered collection of experiments.
type Suite struct {
	experiments []Experiment
}

// Add appends an experiment.
func (s *Suite) Add(e Experiment) { s.experiments = append(s.experiments, e) }

// IDs lists the registered experiment IDs in order.
func (s *Suite) IDs() []string {
	out := make([]string, len(s.experiments))
	for i, e := range s.experiments {
		out[i] = e.ID
	}
	return out
}

// RunAll executes every experiment (or only those whose ID is in filter,
// if filter is nonempty) and returns outcomes in registration order.
func (s *Suite) RunAll(filter []string) []Outcome {
	return s.RunAllOpts(context.Background(), filter, 1, nil)
}

// RunAllOpts is RunAll with cancellation, a worker pool, and an optional
// per-outcome progress hook: up to workers experiments run concurrently,
// outcomes still come back in registration order, and onDone (if
// non-nil) is called as each experiment finishes, serialized, in
// completion order. Cancellation is best-effort: an experiment already
// running when ctx fires completes normally, while experiments not yet
// started are reported as failed with the context error.
func (s *Suite) RunAllOpts(ctx context.Context, filter []string, workers int, onDone func(Outcome)) []Outcome {
	want := make(map[string]bool, len(filter))
	for _, id := range filter {
		want[strings.ToUpper(strings.TrimSpace(id))] = true
	}
	var selected []Experiment
	for _, e := range s.experiments {
		if len(want) > 0 && !want[strings.ToUpper(e.ID)] {
			continue
		}
		selected = append(selected, e)
	}
	out := make([]Outcome, len(selected))
	var doneMu sync.Mutex
	// Every index is fed (nil pool context): runOne itself converts a
	// canceled ctx into a "not run" outcome, so late experiments are
	// reported rather than silently dropped.
	pool.Run(nil, len(selected), workers, func(i int) error {
		e := selected[i]
		if err := ctx.Err(); err != nil {
			out[i] = Outcome{ID: e.ID, Title: e.Title, Claim: e.Claim,
				Pass: false, Skipped: true, Detail: fmt.Sprintf("not run: %v", err)}
		} else {
			rows, pass, detail := e.Run()
			out[i] = Outcome{ID: e.ID, Title: e.Title, Claim: e.Claim,
				Rows: rows, Pass: pass, Detail: detail}
		}
		if onDone != nil {
			doneMu.Lock()
			onDone(out[i])
			doneMu.Unlock()
		}
		return nil
	})
	return out
}

// Render formats outcomes as a text report.
func Render(outcomes []Outcome) string {
	var b strings.Builder
	passed, skipped := 0, 0
	for _, o := range outcomes {
		status := "PASS"
		switch {
		case o.Skipped:
			status = "SKIP"
			skipped++
		case !o.Pass:
			status = "FAIL"
		default:
			passed++
		}
		fmt.Fprintf(&b, "== %s: %s [%s]\n", o.ID, o.Title, status)
		fmt.Fprintf(&b, "   paper: %s\n", o.Claim)
		for _, row := range o.Rows {
			fmt.Fprintf(&b, "   %s\n", row)
		}
		if o.Detail != "" {
			fmt.Fprintf(&b, "   detail: %s\n", o.Detail)
		}
		b.WriteByte('\n')
	}
	if skipped > 0 {
		fmt.Fprintf(&b, "%d/%d experiments passed (%d skipped)\n",
			passed, len(outcomes)-skipped, skipped)
	} else {
		fmt.Fprintf(&b, "%d/%d experiments passed\n", passed, len(outcomes))
	}
	return b.String()
}

// Markdown formats outcomes as the EXPERIMENTS.md body.
func Markdown(outcomes []Outcome) string {
	var b strings.Builder
	for _, o := range outcomes {
		status := "PASS"
		switch {
		case o.Skipped:
			status = "SKIP"
		case !o.Pass:
			status = "FAIL"
		}
		fmt.Fprintf(&b, "### %s — %s (%s)\n\n", o.ID, o.Title, status)
		fmt.Fprintf(&b, "**Paper claim.** %s\n\n**Measured.**\n\n```\n", o.Claim)
		for _, row := range o.Rows {
			fmt.Fprintf(&b, "%s\n", row)
		}
		b.WriteString("```\n\n")
		if o.Detail != "" {
			fmt.Fprintf(&b, "_%s_\n\n", o.Detail)
		}
	}
	return b.String()
}

// SortByID orders outcomes E1 < E2 < ... < E10 (numeric suffix).
func SortByID(outcomes []Outcome) {
	num := func(id string) int {
		n := 0
		for _, c := range id {
			if c >= '0' && c <= '9' {
				n = n*10 + int(c-'0')
			}
		}
		return n
	}
	sort.SliceStable(outcomes, func(i, j int) bool {
		return num(outcomes[i].ID) < num(outcomes[j].ID)
	})
}
