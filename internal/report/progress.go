package report

import (
	"fmt"
	"io"
	"time"

	"repro/internal/engine"
)

// ProgressLine renders one engine progress event as a single log line,
// the format the cmd tools print to stderr under -progress.
func ProgressLine(ev engine.Event) string {
	switch ev.Kind {
	case "analyze.start":
		return fmt.Sprintf("[engine] %s: analyzing n=2..%d", ev.Type, ev.N)
	case "level.done":
		suffix := ""
		if ev.Cached {
			suffix = ", cached"
		}
		return fmt.Sprintf("[engine] %s: %d-%s=%s (%s%s)",
			ev.Type, ev.N, ev.Property, yesNo(ev.OK), ev.Elapsed.Round(10*time.Microsecond), suffix)
	case "shard.done":
		return fmt.Sprintf("[engine] %s: %d-%s %s (%s)",
			ev.Type, ev.N, ev.Property, ev.Detail, ev.Elapsed.Round(10*time.Microsecond))
	case "analyze.done":
		return fmt.Sprintf("[engine] %s: analysis done in %s", ev.Type, ev.Elapsed.Round(10*time.Microsecond))
	case "check.start":
		return fmt.Sprintf("[engine] %s: checking", ev.Type)
	case "check.done":
		return fmt.Sprintf("[engine] %s: check %s (%s, %s)",
			ev.Type, passFail(ev.OK), ev.Detail, ev.Elapsed.Round(10*time.Microsecond))
	case "checkbatch.start":
		return fmt.Sprintf("[engine] %s: batch checking %d requests", ev.Type, ev.N)
	case "checkbatch.done":
		return fmt.Sprintf("[engine] %s: batch check %s (%s, %s)",
			ev.Type, passFail(ev.OK), ev.Detail, ev.Elapsed.Round(10*time.Microsecond))
	case "chain.start":
		return fmt.Sprintf("[engine] %s: building Theorem 13 chain", ev.Type)
	case "chain.stage":
		return fmt.Sprintf("[engine] %s: chain stage %d is %s", ev.Type, ev.N, ev.Detail)
	}
	return fmt.Sprintf("[engine] %s: %s", ev.Type, ev.Kind)
}

// ProgressWriter returns an engine progress consumer that writes one
// ProgressLine per event to w.
func ProgressWriter(w io.Writer) func(engine.Event) {
	return func(ev engine.Event) { fmt.Fprintln(w, ProgressLine(ev)) }
}

func yesNo(ok bool) string {
	if ok {
		return "yes"
	}
	return "no"
}

func passFail(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAIL"
}
