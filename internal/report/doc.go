// Package report defines the experiment harness: one Experiment per paper
// artifact (figure, lemma, theorem or derived table), each of which
// re-derives the paper's claim from the library and reports
// paper-vs-measured rows. cmd/experiments runs the suite and prints the
// tables recorded in EXPERIMENTS.md.
//
// The package also renders engine progress events (ProgressLine,
// ProgressWriter): one stable log line per event kind — level decisions,
// shard completions, model-check and batch-check summaries with their
// shared-graph reuse counters — which is the -progress voice of every
// cmd tool. Experiments run their independent sub-derivations on the
// shared worker pool; rows are collected in a deterministic order so two
// runs of a suite produce identical tables.
package report
