package report

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/discern"
	"repro/internal/model"
	"repro/internal/proto"
	"repro/internal/record"
	"repro/internal/spec"
	"repro/internal/types"
	"repro/internal/universal"
)

// PaperSuite builds the full experiment suite E1..E11 of DESIGN.md,
// running every spectrum analysis on the serial reference analyzer.
func PaperSuite() *Suite {
	return PaperSuiteWith(nil)
}

// PaperSuiteWith is PaperSuite with the analysis-heavy experiments (E7,
// E9, E10) routed through az — typically a repro engine, so their level
// decisions are memoized, parallel, and (with a persistent cache) reused
// across runs. A nil az selects the serial reference analyzer,
// core.Analyze. Experiments that measure decider cost (E11) or pin the
// deciders themselves (E8) always call them directly: routing those
// through a cache would fake their point.
func PaperSuiteWith(az Analyzer) *Suite {
	if az == nil {
		az = coreAnalyzer{}
	}
	s := &Suite{}
	s.Add(e1Figure3())
	s.Add(e2TnnWaitFree())
	s.Add(e3TnnUpperBound())
	s.Add(e4TnnRecoverable())
	s.Add(e5TnnRecoverableUpperBound())
	s.Add(e6CriticalSearch())
	s.Add(e7Robustness(az))
	s.Add(e8TASGap())
	s.Add(e9XFamilies(az))
	s.Add(e10ZooTable(az))
	s.Add(e11DeciderScaling())
	s.Add(e12Universality())
	s.Add(e13Theorem13Chain())
	s.Add(e14TeamConsensus())
	s.Add(e15RuppertVsRecording())
	return s
}

// allInputs enumerates binary input vectors for n processes.
func allInputs(n int) [][]int {
	var out [][]int
	for m := 0; m < 1<<uint(n); m++ {
		in := make([]int, n)
		for p := 0; p < n; p++ {
			in[p] = (m >> uint(p)) & 1
		}
		out = append(out, in)
	}
	return out
}

// checkProtocol explores a protocol over every input vector and reports
// whether any violation was found.
func checkProtocol(pr model.Protocol, quota []int) (violated bool, first string, err error) {
	for _, in := range allInputs(pr.Procs()) {
		res, err := model.Check(pr, model.CheckOpts{Inputs: in, CrashQuota: quota})
		if err != nil {
			return false, "", err
		}
		if len(res.Violations) > 0 {
			return true, fmt.Sprintf("inputs %v: %s", in, res.Violations[0]), nil
		}
	}
	return false, "", nil
}

func uniformQuota(n, k int, spareP0 bool) []int {
	q := make([]int, n)
	for p := range q {
		if p == 0 && spareP0 {
			continue
		}
		q[p] = k
	}
	return q
}

// e1Figure3 re-derives the state machine of T_{5,2} and diffs it against
// the hand-coded expectation from Figure 3.
func e1Figure3() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "Figure 3 — state machine of T_{5,2}",
		Claim: "T_{5,2} has 10 values; op0/op1 record and replay the first team for 4 ops then exhaust; opR reads for i<=2 and destroys for i>2",
		Run: func() ([]string, bool, string) {
			ft := types.Tnn(5, 2)
			rows := []string{
				fmt.Sprintf("values=%d ops=%d readable=%v", ft.NumValues(), ft.NumOps(), ft.Readable()),
			}
			pass := ft.NumValues() == 10 && ft.NumOps() == 3 && !ft.Readable()
			// Walk the chain from s under op1, as in Figure 3's lower arm.
			op1, _ := ft.OpByName("op1")
			opR, _ := ft.OpByName("opR")
			v, _ := ft.ValueByName("s")
			var chain []string
			for i := 0; i < 5; i++ {
				e := ft.Apply(v, op1)
				chain = append(chain, ft.ValueName(e.Next))
				if i < 4 && e.Resp != types.TnnResp1 {
					pass = false
				}
				v = e.Next
			}
			rows = append(rows, "op1 chain from s: "+strings.Join(chain, " -> "))
			if chain[4] != "s_bot" {
				pass = false
			}
			// opR destroys s_{1,3}.
			v3, _ := ft.ValueByName("s1,3")
			e := ft.Apply(v3, opR)
			rows = append(rows, fmt.Sprintf("opR on s1,3: resp=%s next=%s",
				ft.RespName(e.Resp), ft.ValueName(e.Next)))
			if e.Resp != types.TnnRespBot || ft.ValueName(e.Next) != "s_bot" {
				pass = false
			}
			// opR reads s_{1,2}.
			v2, _ := ft.ValueByName("s1,2")
			e = ft.Apply(v2, opR)
			rows = append(rows, fmt.Sprintf("opR on s1,2: resp=%s next=%s",
				ft.RespName(e.Resp), ft.ValueName(e.Next)))
			if e.Next != v2 {
				pass = false
			}
			return rows, pass, ""
		},
	}
}

// e2TnnWaitFree model-checks Lemma 15's lower bound.
func e2TnnWaitFree() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "Lemma 15 (lower bound) — T_{n,n'} solves wait-free n-consensus",
		Claim: "the one-shot algorithm decides the first mover's input for n processes, over all schedules and inputs",
		Run: func() ([]string, bool, string) {
			var rows []string
			pass := true
			for _, c := range []struct{ n, np int }{{2, 1}, {3, 1}, {3, 2}, {4, 2}, {5, 2}} {
				violated, first, err := checkProtocol(proto.NewTnnWaitFree(c.n, c.np, c.n), nil)
				if err != nil {
					return rows, false, err.Error()
				}
				ok := !violated
				pass = pass && ok
				rows = append(rows, fmt.Sprintf("T[%d,%d] x %d procs: violations=%v %s",
					c.n, c.np, c.n, violated, first))
			}
			return rows, pass, ""
		},
	}
}

// e3TnnUpperBound model-checks Lemma 15's upper bound shape.
func e3TnnUpperBound() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "Lemma 15 (upper bound) — T_{n,n'} fails at n+1 processes",
		Claim: "cons(T_{n,n'}) <= n: with n+1 processes the (n+1)-th operation returns bot and the algorithm breaks; the decider confirms not (n+1)-discerning",
		Run: func() ([]string, bool, string) {
			var rows []string
			pass := true
			for _, c := range []struct{ n, np int }{{2, 1}, {3, 2}, {4, 2}} {
				violated, _, err := checkProtocol(proto.NewTnnWaitFree(c.n, c.np, c.n+1), nil)
				if err != nil {
					return rows, false, err.Error()
				}
				okD, _ := discern.IsNDiscerning(types.Tnn(c.n, c.np), c.n+1)
				rows = append(rows, fmt.Sprintf(
					"T[%d,%d] x %d procs: algorithm breaks=%v, %d-discerning=%v",
					c.n, c.np, c.n+1, violated, c.n+1, okD))
				pass = pass && violated && !okD
			}
			return rows, pass, ""
		},
	}
}

// e4TnnRecoverable model-checks Lemma 16's lower bound under crashes.
func e4TnnRecoverable() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "Lemma 16 (lower bound) — T_{n,n'} solves recoverable n'-consensus",
		Claim: "the opR-first algorithm is agreement/validity/recoverable-wait-freedom correct for n' processes under individual crashes",
		Run: func() ([]string, bool, string) {
			var rows []string
			pass := true
			cases := []struct{ n, np, crashes int }{{3, 2, 2}, {4, 2, 3}, {5, 2, 3}, {4, 3, 2}}
			for _, c := range cases {
				pr := proto.NewTnnRecoverable(c.n, c.np, c.np)
				violated, first, err := checkProtocol(pr, uniformQuota(c.np, c.crashes, false))
				if err != nil {
					return rows, false, err.Error()
				}
				rows = append(rows, fmt.Sprintf(
					"T[%d,%d] x %d procs, <=%d crashes each: violations=%v %s",
					c.n, c.np, c.np, c.crashes, violated, first))
				pass = pass && !violated
			}
			return rows, pass, ""
		},
	}
}

// e5TnnRecoverableUpperBound model-checks Lemma 16's upper bound shape.
func e5TnnRecoverableUpperBound() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "Lemma 16 (upper bound) — T_{n,n'} recoverable algorithm fails at n'+1 processes",
		Claim: "rcons(T_{n,n'}) <= n': the crash-burn adversary pushes the counter past n', opR destroys the object, and agreement breaks",
		Run: func() ([]string, bool, string) {
			var rows []string
			pass := true
			for _, c := range []struct{ n, np int }{{3, 1}, {4, 2}, {5, 2}, {4, 3}} {
				pr := proto.NewTnnRecoverable(c.n, c.np, c.np+1)
				violated, first, err := checkProtocol(pr, uniformQuota(c.np+1, 2, false))
				if err != nil {
					return rows, false, err.Error()
				}
				rows = append(rows, fmt.Sprintf(
					"T[%d,%d] x %d procs: violation found=%v %s",
					c.n, c.np, c.np+1, violated, shorten(first, 90)))
				pass = pass && violated
			}
			return rows, pass, ""
		},
	}
}

// e6CriticalSearch exercises the valency engine of Section 3.
func e6CriticalSearch() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "Section 3 machinery (Figures 1-2) — critical executions and Observation 11",
		Claim: "critical executions exist and terminate; both teams nonempty (Lemma 7); all processes poised on one object (Lemma 9); configurations classify per Observation 11",
		Run: func() ([]string, bool, string) {
			var rows []string
			pass := true
			cases := []struct {
				pr    model.Protocol
				quota []int
				want  string
			}{
				{proto.NewCASWaitFree(2), nil, "n-recording"},
				{proto.NewCASWaitFree(3), nil, "n-recording"},
				{proto.NewTnnWaitFree(3, 2, 3), nil, "colliding"},
				{proto.NewTnnRecoverable(4, 2, 2), []int{0, 2}, ""},
			}
			for _, c := range cases {
				inputs := make([]int, c.pr.Procs())
				for p := range inputs {
					inputs[p] = p % 2
				}
				res, err := model.Check(c.pr, model.CheckOpts{Inputs: inputs, CrashQuota: c.quota})
				if err != nil {
					return rows, false, err.Error()
				}
				info, err := model.FindCritical(res)
				if err != nil {
					return rows, false, err.Error()
				}
				teams := [2]int{}
				for _, t := range info.Teams {
					teams[t]++
				}
				ok := teams[0] > 0 && teams[1] > 0 && (c.want == "" || info.Class == c.want)
				pass = pass && ok
				rows = append(rows, fmt.Sprintf(
					"%s: critical after [%s], teams %d/%d, class=%s",
					c.pr.Name(), info.Trace, teams[0], teams[1], info.Class))
			}
			return rows, pass, ""
		},
	}
}

// levelLeq compares hierarchy levels treating Unbounded as +infinity.
func levelLeq(a, b int) bool {
	if b == core.Unbounded {
		return true
	}
	if a == core.Unbounded {
		return false
	}
	return a <= b
}

// levelMax returns the larger hierarchy level (Unbounded dominates).
func levelMax(a, b int) int {
	if a == core.Unbounded || b == core.Unbounded {
		return core.Unbounded
	}
	if a > b {
		return a
	}
	return b
}

// e7Robustness checks Theorem 14's empirical content on product objects,
// and probes the paper's open problem on non-readable components.
func e7Robustness(az Analyzer) Experiment {
	return Experiment{
		ID:    "E7",
		Title: "Theorems 13/14 — robustness on composite (product) objects",
		Claim: "combining readable deterministic types never raises the recording level above the strongest component; for non-readable components robustness is the paper's open problem (Section 5)",
		Run: func() ([]string, bool, string) {
			var rows []string
			pass := true
			pairs := []struct {
				a, b *spec.FiniteType
			}{
				{types.TestAndSet(), types.TestAndSet()},
				{types.TestAndSet(), types.Register(2)},
				{types.Swap(2), types.FetchAdd(3)},
				{types.Register(2), types.Register(2)},
				{types.TestAndSet(), types.StickyBit()},
			}
			const maxN = 3
			for _, pc := range pairs {
				// An injected engine's AnalyzeTo can fail (context
				// cancellation); the serial reference cannot. Report,
				// don't dereference nil.
				la, errA := az.AnalyzeTo(pc.a, maxN)
				lb, errB := az.AnalyzeTo(pc.b, maxN)
				lp, errP := az.AnalyzeTo(types.Product(pc.a, pc.b), maxN)
				for _, err := range []error{errA, errB, errP} {
					if err != nil {
						return rows, false, err.Error()
					}
				}
				max := levelMax(la.RecoverableConsensusNumber, lb.RecoverableConsensusNumber)
				got := lp.RecoverableConsensusNumber
				ok := levelLeq(got, max)
				pass = pass && ok
				rows = append(rows, fmt.Sprintf("%s x %s: recording(product)=%s vs max(components)=%s",
					pc.a.Name(), pc.b.Name(),
					core.LevelString(got, maxN), core.LevelString(max, maxN)))
			}
			// Open-problem probe (informational, does not gate pass): the
			// capacity-1 queue is non-readable, and its recording level is
			// unbounded by the letter of the definition even though its
			// recoverable consensus number is not established; Theorem 14
			// says nothing about such components.
			lq, errQ := az.AnalyzeTo(types.Queue(1), maxN)
			lpq, errPQ := az.AnalyzeTo(types.Product(types.TestAndSet(), types.Queue(1)), maxN)
			if errQ != nil || errPQ != nil {
				return rows, false, errors.Join(errQ, errPQ).Error()
			}
			rows = append(rows, fmt.Sprintf(
				"open-problem probe: recording(queue[1])=%s, recording(tas x queue[1])=%s (non-readable; no Theorem 14 constraint)",
				core.LevelString(lq.RecoverableConsensusNumber, maxN),
				core.LevelString(lpq.RecoverableConsensusNumber, maxN)))
			return rows, pass, ""
		},
	}
}

// e8TASGap reproduces Golab's separation.
func e8TASGap() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "Golab's separation — test-and-set: cons 2, rcons 1",
		Claim: "TAS is 2-discerning but not 2-recording; the classic TAS+register algorithm is crash-free correct and fails under individual crashes",
		Run: func() ([]string, bool, string) {
			var rows []string
			okD, _ := discern.IsNDiscerning(types.TestAndSet(), 2)
			okR, _ := record.IsNRecording(types.TestAndSet(), 2)
			rows = append(rows, fmt.Sprintf("2-discerning=%v 2-recording=%v", okD, okR))
			pass := okD && !okR

			crashFreeViolated, _, err := checkProtocol(proto.NewTASConsensus(), nil)
			if err != nil {
				return rows, false, err.Error()
			}
			crashViolated, first, err := checkProtocol(proto.NewTASConsensus(), []int{2, 2})
			if err != nil {
				return rows, false, err.Error()
			}
			rows = append(rows, fmt.Sprintf("crash-free violations=%v; with crashes violations=%v",
				crashFreeViolated, crashViolated))
			if crashViolated {
				rows = append(rows, "counterexample: "+shorten(first, 110))
			}
			pass = pass && !crashFreeViolated && crashViolated
			return rows, pass, ""
		},
	}
}

// e9XFamilies certifies the separation families.
func e9XFamilies(az Analyzer) Experiment {
	return Experiment{
		ID:    "E9",
		Title: "Corollary (Section 5) — readable types with rcons = cons - 2",
		Claim: "for n >= 4 there is a readable type with consensus number n and recoverable consensus number n-2 (X4, X5); the chain family Y_n realizes gap 1",
		Run: func() ([]string, bool, string) {
			var rows []string
			pass := true
			check := func(ft *spec.FiniteType, maxN, wantCons, wantRcons int) {
				a, err := az.AnalyzeTo(ft, maxN)
				if err != nil {
					pass = false
					return
				}
				ok := a.ConsensusNumber == wantCons && a.RecoverableConsensusNumber == wantRcons
				pass = pass && ok
				rows = append(rows, fmt.Sprintf("%s: cons=%s rcons=%s (want %d/%d)",
					ft.Name(),
					core.LevelString(a.ConsensusNumber, maxN),
					core.LevelString(a.RecoverableConsensusNumber, maxN),
					wantCons, wantRcons))
			}
			check(types.XFour(), 5, 4, 2)
			check(types.XFive(), 6, 5, 3)
			check(types.TnnReadable(4), 5, 4, 3)
			return rows, pass, ""
		},
	}
}

// e10ZooTable derives the hierarchy table for the zoo.
func e10ZooTable(az Analyzer) Experiment {
	return Experiment{
		ID:    "E10",
		Title: "Derived table — consensus vs recoverable consensus numbers of the zoo",
		Claim: "register 1/1; TAS 2/1; swap 2/1; fetch-and-add 2/1; CAS inf/inf; sticky inf/inf; augmented (peekable) queue inf/inf; X4 4/2; Y4 4/3",
		Run: func() ([]string, bool, string) {
			type entry struct {
				ft          *spec.FiniteType
				maxN        int
				cons, rcons int // expected (Unbounded for inf)
			}
			zoo := []entry{
				{types.Register(2), 4, 1, 1},
				{types.TestAndSet(), 4, 2, 1},
				{types.Swap(2), 4, 2, 1},
				{types.FetchAdd(6), 4, 2, 1},
				{types.CompareAndSwap(2), 4, core.Unbounded, core.Unbounded},
				{types.StickyBit(), 4, core.Unbounded, core.Unbounded},
				// Herlihy's augmented queue: Peek makes the recorded head
				// observable, so the type keeps unbounded power even
				// under crash-recovery.
				{types.PeekQueue(2), 4, core.Unbounded, core.Unbounded},
				{types.XFour(), 5, 4, 2},
				{types.TnnReadable(4), 5, 4, 3},
			}
			var rows []string
			pass := true
			for _, e := range zoo {
				a, err := az.AnalyzeTo(e.ft, e.maxN)
				if err != nil {
					return rows, false, err.Error()
				}
				ok := a.ConsensusNumber == e.cons && a.RecoverableConsensusNumber == e.rcons
				pass = pass && ok
				rows = append(rows, fmt.Sprintf("%-22s cons=%-4s rcons=%-4s readable=%v",
					e.ft.Name(),
					core.LevelString(a.ConsensusNumber, e.maxN),
					core.LevelString(a.RecoverableConsensusNumber, e.maxN),
					a.Readable))
			}
			return rows, pass, ""
		},
	}
}

// e11DeciderScaling measures decider cost growth (the decidability claim).
func e11DeciderScaling() Experiment {
	return Experiment{
		ID:    "E11",
		Title: "Decidability in practice — decider work vs n",
		Claim: "n-discerning and n-recording are decidable in finite time for finite types (Ruppert; DFFR); cost grows with |S(P)| = sum of n!/(n-k)!",
		Run: func() ([]string, bool, string) {
			var rows []string
			ft := types.CompareAndSwap(2)
			for n := 2; n <= 5; n++ {
				okD, _ := discern.IsNDiscerning(ft, n)
				okR, _ := record.IsNRecording(ft, n)
				rows = append(rows, fmt.Sprintf("cas n=%d: discerning=%v recording=%v", n, okD, okR))
				if !okD || !okR {
					return rows, false, "CAS must stay discerning and recording at every n"
				}
			}
			rows = append(rows, "timings: see BenchmarkE11Deciders in bench_test.go")
			return rows, true, ""
		},
	}
}

// e12Universality exercises the recoverable universal construction cited
// in Section 1 (recoverable consensus is universal, with detectability).
func e12Universality() Experiment {
	return Experiment{
		ID:    "E12",
		Title: "Section 1 universality — recoverable objects from recoverable consensus",
		Claim: "any object has a recoverable wait-free linearizable implementation from recoverable-consensus objects and registers, with detectability after crashes (Berryhill et al.; DFFR)",
		Run: func() ([]string, bool, string) {
			var rows []string
			pass := true
			for _, ft := range []*spec.FiniteType{
				types.Queue(2), types.FetchAdd(8), types.Tnn(3, 1),
			} {
				u, err := universal.New(ft, 0, 3)
				if err != nil {
					return rows, false, err.Error()
				}
				applied, crashes := 0, 0
				// Deterministic crash sweep: each process applies ops,
				// crashing at every step boundary once.
				for pid := 0; pid < 3; pid++ {
					for k := 0; k < 6; k++ {
						op := spec.Op(k % ft.NumOps())
						budget := k % 5
						_, err := u.InvokeSteps(pid, op, budget)
						for err == universal.ErrCrashed {
							crashes++
							_, _, err = u.RecoverSteps(pid, 8)
						}
						if err != nil {
							return rows, false, err.Error()
						}
						applied++
					}
				}
				// Verify: the deduplicated log respects program order and
				// replays consistently.
				last := map[int]int{}
				for _, e := range u.DedupedLog() {
					if e.Seq <= last[e.Pid] {
						pass = false
					}
					last[e.Pid] = e.Seq
				}
				rows = append(rows, fmt.Sprintf(
					"universal %-14s: %d invocations, %d crashes recovered, %d linearized, final value %s",
					ft.Name(), applied, crashes, len(u.DedupedLog()), ft.ValueName(u.Value())))
			}
			return rows, pass, ""
		},
	}
}

// e13Theorem13Chain mechanizes the proof of Theorem 13 (Figures 1-2): the
// chain of critical configurations must reach an n-recording one for
// correct recoverable algorithms.
func e13Theorem13Chain() Experiment {
	return Experiment{
		ID:    "E13",
		Title: "Theorem 13 mechanized — the chain construction of Figures 1-2",
		Claim: "for a correct recoverable consensus algorithm, iterating critical-execution search with the v-hiding (lambda crashes) and colliding (p_{n-1} c_{n-1}) moves reaches an n-recording configuration within n-1 stages",
		Run: func() ([]string, bool, string) {
			var rows []string
			pass := true
			cases := []struct {
				pr    model.Protocol
				procs int
			}{
				{proto.NewCASRecoverable(2), 2},
				{proto.NewCASRecoverable(3), 3},
				{proto.NewTnnRecoverable(4, 2, 2), 2},
				{proto.NewTnnRecoverable(4, 3, 3), 3},
			}
			for _, c := range cases {
				inputs := make([]int, c.procs)
				inputs[0] = 1
				quota := make([]int, c.procs)
				for p := 1; p < c.procs; p++ {
					quota[p] = 2
				}
				chain, err := model.Theorem13Chain(c.pr, inputs, quota)
				if err != nil {
					return rows, false, err.Error()
				}
				rows = append(rows, fmt.Sprintf("%s: %d stage(s), recording=%v",
					c.pr.Name(), len(chain.Stages), chain.Recording))
				pass = pass && chain.Recording && len(chain.Stages) <= c.procs
			}
			return rows, pass, ""
		},
	}
}

// e14TeamConsensus exercises DFFR Theorem 8's core mechanism: a readable
// n-recording type yields recoverable agreement on the first mover's team.
func e14TeamConsensus() Experiment {
	return Experiment{
		ID:    "E14",
		Title: "DFFR Theorem 8 mechanism — team consensus from n-recording witnesses",
		Claim: "for readable n-recording types (with u not re-reachable), read-guarded one-shot application solves recoverable team agreement among n processes under individual crashes",
		Run: func() ([]string, bool, string) {
			var rows []string
			pass := true
			cases := []struct {
				ft *spec.FiniteType
				n  int
			}{
				{types.CompareAndSwap(2), 2},
				{types.CompareAndSwap(2), 3},
				{types.StickyBit(), 3},
				{types.XFour(), 2},
			}
			for _, c := range cases {
				ok, w := record.IsNRecording(c.ft, c.n)
				if !ok {
					return rows, false, fmt.Sprintf("%s not %d-recording", c.ft.Name(), c.n)
				}
				tc, err := proto.NewTeamConsensus(c.ft, w)
				if err != nil {
					return rows, false, err.Error()
				}
				quota := make([]int, c.n)
				for p := 1; p < c.n; p++ {
					quota[p] = 2
				}
				res, err := model.Check(tc, model.CheckOpts{
					Inputs:     make([]int, c.n),
					CrashQuota: quota,
					Validity:   func(int) bool { return true },
				})
				if err != nil {
					return rows, false, err.Error()
				}
				okRun := len(res.Violations) == 0
				pass = pass && okRun
				rows = append(rows, fmt.Sprintf(
					"%s n=%d: %d states explored, agreement+wait-freedom hold=%v",
					c.ft.Name(), c.n, res.Nodes, okRun))
			}
			return rows, pass, ""
		},
	}
}

// e15RuppertVsRecording contrasts the two witness-driven constructions:
// Ruppert's discerning-based team consensus is wait-free but crash-unsafe
// on types whose recording level is below their discerning level, while
// the recording-based construction survives crashes — the hierarchy gap
// reproduced at the construction level.
func e15RuppertVsRecording() Experiment {
	return Experiment{
		ID:    "E15",
		Title: "Ruppert's construction vs the recording construction — the gap, mechanized",
		Claim: "discerning witnesses give wait-free consensus for readable types (Ruppert); under individual crashes the same construction fails exactly on types that are discerning but not recording (TAS), while recording witnesses stay safe",
		Run: func() ([]string, bool, string) {
			var rows []string
			pass := true

			// Ruppert's construction, crash-free, across the readable zoo.
			for _, c := range []struct {
				ft *spec.FiniteType
				n  int
			}{
				{types.TestAndSet(), 2},
				{types.CompareAndSwap(2), 3},
				{types.XFour(), 4},
			} {
				ok, w := discern.IsNDiscerning(c.ft, c.n)
				if !ok {
					return rows, false, fmt.Sprintf("%s not %d-discerning", c.ft.Name(), c.n)
				}
				dc, err := proto.NewDiscernTeamConsensus(c.ft, w)
				if err != nil {
					return rows, false, err.Error()
				}
				res, err := model.Check(dc, model.CheckOpts{
					Inputs: make([]int, c.n), Validity: func(int) bool { return true },
				})
				if err != nil {
					return rows, false, err.Error()
				}
				okRun := len(res.Violations) == 0
				pass = pass && okRun
				rows = append(rows, fmt.Sprintf(
					"Ruppert on %s n=%d (crash-free): correct=%v", c.ft.Name(), c.n, okRun))
			}

			// The same construction under crashes on TAS must break...
			ok, w := discern.IsNDiscerning(types.TestAndSet(), 2)
			if !ok {
				return rows, false, "TAS not 2-discerning"
			}
			dc, err := proto.NewDiscernTeamConsensus(types.TestAndSet(), w)
			if err != nil {
				return rows, false, err.Error()
			}
			res, err := model.Check(dc, model.CheckOpts{
				Inputs: []int{0, 0}, CrashQuota: []int{2, 2},
				Validity: func(int) bool { return true },
			})
			if err != nil {
				return rows, false, err.Error()
			}
			broke := len(res.Violations) > 0
			pass = pass && broke
			rows = append(rows, fmt.Sprintf(
				"Ruppert on test-and-set n=2 WITH crashes: breaks=%v (TAS is not 2-recording)", broke))

			// ...while the recording construction on CAS stays safe with
			// the same crash budget (E14 covers the full sweep).
			okR, wr := record.IsNRecording(types.CompareAndSwap(2), 2)
			if !okR {
				return rows, false, "CAS not 2-recording"
			}
			tc, err := proto.NewTeamConsensus(types.CompareAndSwap(2), wr)
			if err != nil {
				return rows, false, err.Error()
			}
			res, err = model.Check(tc, model.CheckOpts{
				Inputs: []int{0, 0}, CrashQuota: []int{2, 2},
				Validity: func(int) bool { return true },
			})
			if err != nil {
				return rows, false, err.Error()
			}
			safe := len(res.Violations) == 0
			pass = pass && safe
			rows = append(rows, fmt.Sprintf(
				"recording construction on compare-and-swap n=2 WITH crashes: correct=%v", safe))
			return rows, pass, ""
		},
	}
}

func shorten(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
