package model_test

import (
	"testing"

	"repro/internal/model"
	"repro/internal/proto"
	"repro/internal/schedule"
	"repro/internal/spec"
	"repro/internal/types"
)

// allInputs enumerates every binary input vector for n processes.
func allInputs(n int) [][]int {
	var out [][]int
	for m := 0; m < 1<<uint(n); m++ {
		in := make([]int, n)
		for p := 0; p < n; p++ {
			in[p] = (m >> uint(p)) & 1
		}
		out = append(out, in)
	}
	return out
}

// quota returns a uniform crash quota with p0 crash-free (matching the
// paper's E sets, where p0 never crashes).
func quota(n, k int) []int {
	q := make([]int, n)
	for p := 1; p < n; p++ {
		q[p] = k
	}
	return q
}

func checkAllInputs(t *testing.T, pr model.Protocol, crashes []int, wantOK bool) {
	t.Helper()
	anyViolation := false
	for _, in := range allInputs(pr.Procs()) {
		res, err := model.Check(pr, model.CheckOpts{Inputs: in, CrashQuota: crashes})
		if err != nil {
			t.Fatalf("%s inputs %v: %v", pr.Name(), in, err)
		}
		if res.Truncated {
			t.Fatalf("%s inputs %v: exploration truncated", pr.Name(), in)
		}
		if len(res.Violations) > 0 {
			anyViolation = true
			if wantOK {
				t.Errorf("%s inputs %v: unexpected %v", pr.Name(), in, res.Violations[0])
			}
		}
	}
	if !wantOK && !anyViolation {
		t.Errorf("%s: expected a violation for some input vector, found none", pr.Name())
	}
}

// TestTnnWaitFreeConsensus is Experiment E2: the paper's one-shot algorithm
// solves wait-free consensus for n processes over T_{n,n'}, exhaustively
// over all schedules and input vectors (crash-free, as wait-freedom
// requires).
func TestTnnWaitFreeConsensus(t *testing.T) {
	for _, c := range []struct{ n, np int }{{2, 1}, {3, 1}, {3, 2}, {4, 2}, {5, 2}} {
		pr := proto.NewTnnWaitFree(c.n, c.np, c.n)
		checkAllInputs(t, pr, nil, true)
	}
}

// TestTnnConsensusUpperBound is Experiment E3: the same algorithm run with
// n+1 processes fails (the (n+1)-th operation returns bot), matching
// Lemma 15's upper bound cons(T_{n,n'}) <= n.
func TestTnnConsensusUpperBound(t *testing.T) {
	for _, c := range []struct{ n, np int }{{2, 1}, {3, 2}, {4, 2}} {
		pr := proto.NewTnnWaitFree(c.n, c.np, c.n+1)
		checkAllInputs(t, pr, nil, false)
	}
}

// TestTnnRecoverableConsensus is Experiment E4: the paper's opR-first
// algorithm solves recoverable consensus for n' processes under individual
// crashes (every process except p0 may crash up to k times).
func TestTnnRecoverableConsensus(t *testing.T) {
	cases := []struct {
		n, np, procs, crashes int
	}{
		{3, 1, 1, 3},
		{3, 2, 2, 2},
		{4, 2, 2, 3},
		{5, 2, 2, 3},
		{4, 3, 3, 2},
		{5, 4, 4, 1},
	}
	for _, c := range cases {
		pr := proto.NewTnnRecoverable(c.n, c.np, c.procs)
		checkAllInputs(t, pr, quota(c.procs, c.crashes), true)
	}
}

// TestTnnRecoverableAllCanCrash strengthens E4: correctness must not
// depend on p0 being crash-free (the paper's E sets spare p0 only for the
// impossibility argument; the algorithm tolerates crashes by everyone).
func TestTnnRecoverableAllCanCrash(t *testing.T) {
	pr := proto.NewTnnRecoverable(4, 2, 2)
	q := []int{2, 2}
	checkAllInputs(t, pr, q, true)
}

// TestTnnRecoverableUpperBound is Experiment E5: with n'+1 processes the
// crash-burn adversary (repeatedly crashing processes so that opR is
// applied to a counter value above n') defeats the algorithm, matching
// Lemma 16's upper bound rcons(T_{n,n'}) <= n'.
func TestTnnRecoverableUpperBound(t *testing.T) {
	cases := []struct {
		n, np, crashes int
	}{
		{3, 1, 2},
		{4, 2, 2},
		{5, 2, 2},
		{4, 3, 2},
	}
	for _, c := range cases {
		pr := proto.NewTnnRecoverable(c.n, c.np, c.np+1)
		checkAllInputs(t, pr, quota(c.np+1, c.crashes), false)
	}
}

// TestTnnRecoverableUpperBoundExplicitAdversary exhibits the Lemma 16 proof
// strategy as one concrete schedule for T_{3,1} with 2 processes: the
// counter is pushed past n' = 1 by both processes applying op_x, then a
// crashed process re-runs opR, gets bot, and decides the fallback value,
// disagreeing with the first decider.
func TestTnnRecoverableUpperBoundExplicitAdversary(t *testing.T) {
	pr := proto.NewTnnRecoverable(3, 1, 2)
	inputs := []int{1, 0} // p0 has input 1, p1 has input 0
	cfg := model.InitialConfig(pr, inputs)

	// p0: opR sees s -> will apply op1. p1: opR sees s -> will apply op0.
	// p0: op1 -> s_{1,1}, decides 1. p1: op0 on s_{1,1} -> s_{1,2},
	// decides 1 too... but if p1 crashes after its op (before deciding),
	// it re-runs opR on s_{1,2} with 2 > n' = 1: destructive, returns
	// bot, and p1 decides the fallback 0 — disagreeing with p0.
	sigma, err := schedule.Parse("p0 p1 p0 p0 p1 c1 p1 p1")
	if err != nil {
		t.Fatal(err)
	}
	final := model.Exec(pr, cfg, sigma, inputs)
	d0, ok0 := model.Decision(pr, final, 0)
	d1, ok1 := model.Decision(pr, final, 1)
	if !ok0 || !ok1 {
		t.Fatalf("both processes should have decided; got %v/%v in %s", ok0, ok1, final)
	}
	if d0 == d1 {
		t.Fatalf("adversary schedule failed to split decisions: both decided %d", d0)
	}
}

// TestCASWaitFree checks the CAS baseline solves wait-free consensus for
// 2..4 processes.
func TestCASWaitFree(t *testing.T) {
	for n := 2; n <= 4; n++ {
		checkAllInputs(t, proto.NewCASWaitFree(n), nil, true)
	}
}

// TestCASRecoverable checks the CAS baseline solves recoverable consensus
// under individual crashes, including crashes of p0.
func TestCASRecoverable(t *testing.T) {
	for n := 2; n <= 3; n++ {
		q := make([]int, n)
		for p := range q {
			q[p] = 2
		}
		checkAllInputs(t, proto.NewCASRecoverable(n), q, true)
	}
}

// TestTASCrashFreeCorrect checks the classic TAS algorithm is correct
// without crashes.
func TestTASCrashFreeCorrect(t *testing.T) {
	checkAllInputs(t, proto.NewTASConsensus(), nil, true)
}

// TestTASRecoverableGap is Experiment E8: under individual crashes the TAS
// algorithm fails, exhibiting Golab's separation (TAS has consensus number
// 2 but recoverable consensus number 1).
func TestTASRecoverableGap(t *testing.T) {
	checkAllInputs(t, proto.NewTASConsensus(), []int{0, 2}, false)
}

// TestViolationTraceReplays checks that a reported violation's trace
// actually replays to the reported configuration.
func TestViolationTraceReplays(t *testing.T) {
	pr := proto.NewTASConsensus()
	inputs := []int{1, 0}
	res, err := model.Check(pr, model.CheckOpts{Inputs: inputs, CrashQuota: []int{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Skip("no violation for this input vector")
	}
	v := res.Violations[0]
	replayed := model.Exec(pr, model.InitialConfig(pr, inputs), v.Trace, inputs)
	if !replayed.Equal(v.Config) {
		t.Errorf("trace does not replay to the violating configuration:\n trace %s\n got  %s\n want %s",
			v.Trace, replayed, v.Config)
	}
	if v.String() == "" {
		t.Error("violation should render")
	}
}

// TestWaitFreedomViolationDetected checks the liveness detector on a
// protocol that spins forever: a process that keeps re-reading a register.
func TestWaitFreedomViolationDetected(t *testing.T) {
	pr := &spinner{}
	res, err := model.Check(pr, model.CheckOpts{Inputs: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.Violations {
		if v.Kind == "wait-freedom" {
			found = true
		}
	}
	if !found {
		t.Error("spinner should violate wait-freedom")
	}
}

// spinner is a one-process protocol that reads a register forever.
type spinner struct{}

var (
	spinnerReg = types.Register(2)

	_ model.Protocol = (*spinner)(nil)
)

func (s *spinner) Name() string { return "spinner" }
func (s *spinner) Procs() int   { return 1 }
func (s *spinner) Objects() []model.ObjectSpec {
	return []model.ObjectSpec{{Type: spinnerReg, Init: 0}}
}
func (s *spinner) Init(p, input int) string { return "spin" }
func (s *spinner) Poised(p int, state string) model.Action {
	op, _ := spinnerReg.OpByName("read")
	return model.Apply(0, op)
}
func (s *spinner) Next(p int, state string, resp spec.Response) string { return "spin" }

// TestCheckInputErrors checks argument validation.
func TestCheckInputErrors(t *testing.T) {
	pr := proto.NewCASWaitFree(2)
	if _, err := model.Check(pr, model.CheckOpts{Inputs: []int{0}}); err == nil {
		t.Error("wrong input arity accepted")
	}
	if _, err := model.Check(pr, model.CheckOpts{Inputs: []int{0, 1}, CrashQuota: []int{1}}); err == nil {
		t.Error("wrong quota arity accepted")
	}
}
