package model_test

import (
	"testing"

	"repro/internal/model"
	"repro/internal/proto"
	"repro/internal/schedule"
)

// TestIndistinguishabilityTransfer reproduces the indistinguishability
// principle of Section 2 (citing Attiya-Ellen): if two configurations are
// indistinguishable to a process and all objects have the same values,
// the process behaves identically from both. We build two executions of
// the CAS protocol that p1 cannot distinguish and check its solo run
// decides the same value.
func TestIndistinguishabilityTransfer(t *testing.T) {
	pr := proto.NewCASRecoverable(3)
	inputs := []int{0, 1, 1}
	c0 := model.InitialConfig(pr, inputs)

	// Execution A: p0 reads, then CASes 0 (wins).
	cfgA := model.Exec(pr, c0, schedule.Steps(0, 0), inputs)
	// Execution B: p0 reads, CASes, then crashes — p1 took no steps in
	// either, and the object values match.
	sigmaB := schedule.Schedule{
		schedule.Step(0), schedule.Step(0), schedule.Crash(0),
	}
	cfgB := model.Exec(pr, c0, sigmaB, inputs)

	if !cfgA.IndistinguishableTo(cfgB, 1) {
		t.Fatal("p1 should not distinguish the configurations")
	}
	if !cfgA.SameObjectValues(cfgB) {
		t.Fatal("objects should have the same values")
	}
	// p1's solo run from both configurations must decide the same value.
	soloA := model.Exec(pr, cfgA, schedule.Steps(1, 1), inputs)
	soloB := model.Exec(pr, cfgB, schedule.Steps(1, 1), inputs)
	dA, okA := model.Decision(pr, soloA, 1)
	dB, okB := model.Decision(pr, soloB, 1)
	if !okA || !okB || dA != dB {
		t.Errorf("solo decisions differ: (%d,%v) vs (%d,%v)", dA, okA, dB, okB)
	}
}

// TestIndistinguishableSet checks the ~Q relation helper.
func TestIndistinguishableSet(t *testing.T) {
	pr := proto.NewCASWaitFree(3)
	inputs := []int{0, 1, 0}
	c0 := model.InitialConfig(pr, inputs)
	c1 := model.Exec(pr, c0, schedule.Steps(0), inputs)
	set := c0.IndistinguishableSet(c1)
	if len(set) != 2 || set[0] != 1 || set[1] != 2 {
		t.Errorf("IndistinguishableSet = %v, want [1 2]", set)
	}
}

// TestObservation2UnivalencePersists: once an execution is v-univalent,
// every extension is v-univalent (valence can only shrink along edges).
func TestObservation2UnivalencePersists(t *testing.T) {
	pr := proto.NewTnnRecoverable(4, 2, 2)
	inputs := []int{0, 1}
	res, err := model.Check(pr, model.CheckOpts{Inputs: inputs, CrashQuota: []int{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Walk a few schedules; whenever a node is univalent, check every
	// successor reachable by one more event keeps the same valence.
	for _, sigma := range []string{"p0", "p0 p1", "p0 p0", "p1 c1 p1", "p0 p1 c1"} {
		s, err := schedule.Parse(sigma)
		if err != nil {
			t.Fatal(err)
		}
		nd := res.Node(s)
		if nd == nil {
			continue
		}
		v := res.Valence(nd)
		if v != model.Valence0 && v != model.Valence1 {
			continue
		}
		for _, ext := range []string{"p0", "p1", "c1"} {
			e, _ := schedule.Parse(ext)
			child := res.Node(s.Concat(e))
			if child == nil {
				continue
			}
			if cv := res.Valence(child); cv != v && cv != 0 {
				t.Errorf("univalence not preserved: [%s] valence %d, [%s %s] valence %d",
					sigma, v, sigma, ext, cv)
			}
		}
	}
}

// TestObservation5UnivalenceTransfers: two explored nodes with identical
// configurations (same states, same object values) have the same valence
// even when reached by different executions with the same crash usage.
func TestObservation5UnivalenceTransfers(t *testing.T) {
	pr := proto.NewCASWaitFree(3)
	inputs := []int{0, 1, 1}
	res, err := model.Check(pr, model.CheckOpts{Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	// p1 and p2 both have input 1; the configurations after "p1 p2" and
	// "p2 p1" differ (different processes won), but after "p0 p1 p2" and
	// "p0 p2 p1" the CAS is already decided by p0, so the configurations
	// coincide and so must the valences.
	a, _ := schedule.Parse("p0 p1 p2")
	b, _ := schedule.Parse("p0 p2 p1")
	na, nb := res.Node(a), res.Node(b)
	if na == nil || nb == nil {
		t.Fatal("nodes not explored")
	}
	if !model.NodeConfig(na).Equal(model.NodeConfig(nb)) {
		t.Fatal("configurations should coincide")
	}
	if res.Valence(na) != res.Valence(nb) {
		t.Error("valences differ for identical configurations")
	}
}

// TestLemma8CriticalConfigBivalent: the configuration at the end of a
// critical execution is itself bivalent with respect to executions from
// it (Lemma 8) — engine-level: the critical node's valence is Bivalent.
func TestLemma8CriticalConfigBivalent(t *testing.T) {
	pr := proto.NewCASWaitFree(2)
	res, err := model.Check(pr, model.CheckOpts{Inputs: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	info, err := model.FindCritical(res)
	if err != nil {
		t.Fatal(err)
	}
	nd := res.Node(info.Trace)
	if nd == nil {
		t.Fatal("critical node not found by schedule lookup")
	}
	if res.Valence(nd) != model.Bivalent {
		t.Error("critical configuration must be bivalent (Lemma 8)")
	}
}

// TestLemma10ValueCollisionStructure inspects a colliding critical
// configuration (T_{n,n'} wait-free at n processes): per Lemma 10's
// contrapositive setup, there exist schedules from both teams driving the
// object to the same value — here s_bot, reached by full schedules.
func TestLemma10ValueCollisionStructure(t *testing.T) {
	pr := proto.NewTnnWaitFree(3, 2, 3)
	inputs := []int{0, 1, 1}
	res, err := model.Check(pr, model.CheckOpts{Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	info, err := model.FindCritical(res)
	if err != nil {
		t.Fatal(err)
	}
	if info.Class != "colliding" {
		t.Fatalf("expected colliding class, got %s", info.Class)
	}
	// The collision value must be in both U sets.
	found := false
	for v := range info.U[0] {
		if info.U[1][v] {
			found = true
		}
	}
	if !found {
		t.Error("colliding classification without a shared U value")
	}
}

// TestExecMatchesStepByStep: Exec is the fold of Step/CrashProc.
func TestExecMatchesStepByStep(t *testing.T) {
	pr := proto.NewTnnRecoverable(3, 1, 2)
	inputs := []int{1, 0}
	sigma, _ := schedule.Parse("p0 p1 c1 p1 p0 p1")
	byExec := model.Exec(pr, model.InitialConfig(pr, inputs), sigma, inputs)
	cfg := model.InitialConfig(pr, inputs)
	for _, e := range sigma {
		if e.Crash {
			cfg = model.CrashProc(pr, cfg, e.P, inputs[e.P])
		} else {
			cfg = model.Step(pr, cfg, e.P)
		}
	}
	if !byExec.Equal(cfg) {
		t.Error("Exec disagrees with manual folding")
	}
}
