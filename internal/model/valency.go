package model

import (
	"fmt"

	"repro/internal/schedule"
	"repro/internal/spec"
)

// Valence values: which of {0, 1} can still be decided from a node.
const (
	ValenceNone = 0
	Valence0    = 1 << 0
	Valence1    = 1 << 1
	Bivalent    = Valence0 | Valence1
)

// valency computes, for every explored node, the set of binary decisions
// reachable from it, by backward closure from deciding nodes. The
// computation is cycle-safe and linear in the size of the explored graph.
func (r *Result) valency() map[*node]int {
	if r.valences != nil {
		return r.valences
	}
	preds := make(map[*node][]*node, r.count)
	var deciding [2][]*node
	for _, nd := range r.order {
		for _, s := range r.allSucc(nd) {
			preds[s] = append(preds[s], nd)
		}
		for p := 0; p < r.pr.Procs(); p++ {
			if v := nd.gn.decided[p]; v == 0 || v == 1 {
				deciding[v] = append(deciding[v], nd)
			}
		}
	}
	val := make(map[*node]int, r.count)
	for v := 0; v <= 1; v++ {
		bit := 1 << uint(v)
		queue := append([]*node(nil), deciding[v]...)
		for _, nd := range queue {
			val[nd] |= bit
		}
		for len(queue) > 0 {
			nd := queue[0]
			queue = queue[1:]
			for _, p := range preds[nd] {
				if val[p]&bit == 0 {
					val[p] |= bit
					queue = append(queue, p)
				}
			}
		}
	}
	r.valences = val
	return val
}

// Valence returns the decision-reachability mask of a node with respect to
// the explored (crash-budgeted) execution set: Bivalent if both 0 and 1
// are decidable, Valence0/Valence1 if univalent, ValenceNone if no
// decision is reachable (only possible for truncated or broken protocols).
func (r *Result) Valence(nd *node) int {
	return r.valency()[nd]
}

// CriticalInfo describes a critical execution found by FindCritical and
// its Observation 11 classification.
type CriticalInfo struct {
	// Trace is the critical execution alpha (a schedule from the initial
	// configuration).
	Trace schedule.Schedule
	// Config is the critical configuration C-alpha.
	Config Config
	// Object is the object every process is poised to access (Lemma 9).
	Object int
	// Teams[p] is the valency of the step of p from the critical
	// configuration: p is "on team v" (Section 3).
	Teams []int
	// U[x] is the set of object values reachable by nonempty schedules in
	// S(P) starting with a team-x process, each process applying its
	// poised operation (the sets U_v before Observation 11).
	U [2]map[spec.Value]bool
	// Class is "n-recording", "0-hiding", "1-hiding", or "colliding"
	// (Observation 11's trichotomy; n-recording takes priority when both
	// n-recording and v-hiding hold).
	Class string
}

// ErrNoCritical is returned when no critical execution exists in the
// explored graph (e.g. the initial configuration is already univalent).
var ErrNoCritical = fmt.Errorf("model: no critical execution found")

// FindCritical searches the explored graph for a critical execution in the
// sense of Lemma 6(a), with respect to the crash-budgeted execution set
// explored by Check: an execution alpha such that alpha is bivalent and
// every nonempty extension within the budget is univalent. It returns the
// first such execution found by BFS (hence a shortest one) together with
// its classification.
func FindCritical(r *Result) (*CriticalInfo, error) {
	if r.Truncated {
		return nil, fmt.Errorf("model: exploration truncated; criticality would be unsound")
	}
	val := r.valency()
	if val[r.init]&Bivalent != Bivalent {
		return nil, fmt.Errorf("%w: initial configuration is not bivalent", ErrNoCritical)
	}
	// BFS through bivalent nodes.
	seen := map[*node]bool{r.init: true}
	queue := []*node{r.init}
	for len(queue) > 0 {
		nd := queue[0]
		queue = queue[1:]
		succ := r.allSucc(nd)
		anyBivalent := false
		for _, s := range succ {
			if val[s]&Bivalent == Bivalent {
				anyBivalent = true
				if !seen[s] {
					seen[s] = true
					queue = append(queue, s)
				}
			}
		}
		if !anyBivalent {
			return r.classify(nd)
		}
	}
	return nil, fmt.Errorf("%w: all bivalent nodes have bivalent successors (cycle of bivalence)", ErrNoCritical)
}

// classify computes Lemma 9 (same object), the team structure and the
// Observation 11 classification for a critical node.
func (r *Result) classify(nd *node) (*CriticalInfo, error) {
	n := r.pr.Procs()
	val := r.valency()
	objs := r.pr.Objects()

	info := &CriticalInfo{
		Trace:  nd.trace(),
		Config: nd.cfg,
		Teams:  make([]int, n),
		U:      [2]map[spec.Value]bool{make(map[spec.Value]bool), make(map[spec.Value]bool)},
	}

	// Lemma 9: every process is poised to apply an operation to the same
	// object in the critical configuration.
	obj := -1
	ops := make([]spec.Op, n)
	for p := 0; p < n; p++ {
		a := r.pr.Poised(p, nd.cfg.States[p])
		if a.Decided {
			return nil, fmt.Errorf("model: process p%d already decided in critical configuration", p)
		}
		if obj == -1 {
			obj = a.Obj
		} else if a.Obj != obj {
			return nil, fmt.Errorf("model: Lemma 9 violated — p%d poised on object %d, others on %d",
				p, a.Obj, obj)
		}
		ops[p] = a.Op
	}
	info.Object = obj

	// Teams: the valency of each step successor. In a critical node every
	// successor is univalent. No process has decided (checked above), so
	// the node's expansion carries exactly one step successor per
	// process — read canonically instead of recomputing the transition.
	for i, p := range nd.gn.stepP {
		cn := r.lookup(nd.gn.stepSucc[i], nd.used)
		if cn == nil {
			return nil, fmt.Errorf("model: internal error — step successor of critical node not explored")
		}
		switch val[cn] {
		case Valence0:
			info.Teams[p] = 0
		case Valence1:
			info.Teams[p] = 1
		default:
			return nil, fmt.Errorf("model: step of p%d from critical node is not univalent (mask %d)",
				p, val[cn])
		}
	}

	// U_x sets: all object values produced by nonempty schedules in S(P)
	// whose first process is on team x, each process applying its poised
	// operation to the common object.
	ft := objs[obj].Type
	cur := nd.cfg.Vals[obj]
	inSched := make([]bool, n)
	var dfs func(v spec.Value, team int)
	dfs = func(v spec.Value, team int) {
		info.U[team][v] = true
		for p := 0; p < n; p++ {
			if inSched[p] {
				continue
			}
			inSched[p] = true
			dfs(ft.Apply(v, ops[p]).Next, team)
			inSched[p] = false
		}
	}
	for p := 0; p < n; p++ {
		inSched[p] = true
		dfs(ft.Apply(cur, ops[p]).Next, info.Teams[p])
		inSched[p] = false
	}

	info.Class = classifyUTeams(info.U, info.Teams, cur)
	return info, nil
}

// classifyUTeams implements Observation 11's trichotomy given the U sets,
// the team assignment and the current object value.
func classifyUTeams(u [2]map[spec.Value]bool, teams []int, cur spec.Value) string {
	disjoint := true
	for v := range u[0] {
		if u[1][v] {
			disjoint = false
			break
		}
	}
	if !disjoint {
		return "colliding"
	}
	teamSize := [2]int{}
	for _, t := range teams {
		teamSize[t]++
	}
	for x := 0; x <= 1; x++ {
		if u[x][cur] {
			if teamSize[1-x] == 1 {
				return "n-recording"
			}
			return fmt.Sprintf("%d-hiding", x)
		}
	}
	// cur not in either U set and the sets are disjoint: n-recording with
	// a vacuous side condition.
	return "n-recording"
}
