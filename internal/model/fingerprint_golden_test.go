package model_test

import (
	"testing"

	"repro/internal/model"
	"repro/internal/registry"
)

// TestFingerprintGolden pins the structural fingerprints of the five
// registry protocols at their canonical instances. The fingerprint is a
// wire- and cache-visible identity (GraphCache keys, the /v1/protocols
// registry, and — per ROADMAP — future on-disk graph snapshots), so any
// change to its canonicalization must be deliberate: if this test fails,
// either revert the accidental change or, for an intentional format
// change, update the goldens and treat every persisted fingerprint as
// invalidated.
func TestFingerprintGolden(t *testing.T) {
	golden := map[string]string{
		"cas-rec:2":   "0c287da0fa1ad681f4c906685a09c60880be0dd52792e643277d778e2f22c178",
		"cas-wf:2":    "a979ba50253b370b05d2a8efd31da93d598980297c2b3df5a113a474de7f4328",
		"tas-reg":     "46ca24919a3654cde4272cffebac07fcd931e173a0292c75af69f6dcd04870a4",
		"tnn-rec:3,2": "8d30e1fb88b9a8eac08ad492b82a2582175604f07b7facbc3076c9dddcf17210",
		"tnn-wf:3,2":  "2e89bcc93f2fa0c39caf1f94989e53c1734aeed8e497b9399eece3a9642207b3",
	}
	for desc, want := range golden {
		pr, err := registry.ParseProtocol(desc)
		if err != nil {
			t.Fatalf("%s: %v", desc, err)
		}
		got, err := model.Fingerprint(pr)
		if err != nil {
			t.Fatalf("%s: %v", desc, err)
		}
		if got != want {
			t.Errorf("%s: fingerprint drifted\n  got  %s\n  want %s", desc, got, want)
		}
	}
}
