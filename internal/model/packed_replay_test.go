package model_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/protogen"
	"repro/internal/schedule"
)

// refNode is one node of the reference explorer: the pre-pack serial
// representation, where identity is the raw strings themselves.
type refNode struct {
	cfg    model.Config
	used   []int
	outs   []int8
	parent *refNode
	via    schedule.Event
	succ   []*refNode
}

// refKey is the string identity the pre-pack explorer dedups on —
// exactly the (configuration, crash-usage, output-history) triple, with
// no dictionaries, packing, or hashing anywhere.
func refKey(cfg model.Config, used []int, outs []int8) string {
	var b strings.Builder
	for _, s := range cfg.States {
		b.WriteString(s)
		b.WriteByte(0)
	}
	b.WriteByte(1)
	for _, v := range cfg.Vals {
		fmt.Fprintf(&b, "%d,", v)
	}
	b.WriteByte(1)
	for _, o := range outs {
		fmt.Fprintf(&b, "%d,", o)
	}
	b.WriteByte(1)
	for _, u := range used {
		fmt.Fprintf(&b, "%d,", u)
	}
	return b.String()
}

// refViolation mirrors model.Violation in comparable string form.
type refViolation struct {
	kind, trace, config, detail string
}

type refResult struct {
	nodes      int
	truncated  bool
	violations []refViolation
}

func refTrace(nd *refNode) schedule.Schedule {
	var rev []schedule.Event
	for cur := nd; cur.parent != nil; cur = cur.parent {
		rev = append(rev, cur.via)
	}
	out := make(schedule.Schedule, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// refCheck is an independent serial model checker sharing NO code with
// Graph.Check beyond the primitive transition functions: plain
// string-keyed map dedup, per-node Decision calls, recursion-free
// liveness DFS over a map. It reproduces the checker's observable
// contract — BFS discovery order, first-witness-per-kind violations
// with identical detail strings, MaxNodes truncation, wait-freedom
// cycle detection — so any divergence from the packed-word graph is a
// packed-encoding bug, not a modeling choice.
func refCheck(pr model.Protocol, inputs []int, quota []int, maxNodes int) *refResult {
	n := pr.Procs()
	res := &refResult{}
	seen := [3]bool{}
	kindIdx := map[string]int{"agreement": 0, "validity": 1, "wait-freedom": 2}
	report := func(kind string, nd *refNode, detail string) {
		if seen[kindIdx[kind]] {
			return
		}
		seen[kindIdx[kind]] = true
		res.violations = append(res.violations, refViolation{
			kind: kind, trace: refTrace(nd).String(), config: nd.cfg.String(), detail: detail,
		})
	}
	valid := func(d int) bool {
		for _, in := range inputs {
			if d == in {
				return true
			}
		}
		return false
	}
	decidedVec := func(cfg model.Config) []int8 {
		out := make([]int8, n)
		for p := 0; p < n; p++ {
			if v, ok := model.Decision(pr, cfg, p); ok {
				out[p] = int8(v)
			} else {
				out[p] = -1
			}
		}
		return out
	}
	merge := func(outs []int8, dec []int8) []int8 {
		copied := append([]int8(nil), outs...)
		for p, v := range dec {
			if v >= 0 && copied[p] == -1 {
				copied[p] = v
			}
		}
		return copied
	}
	checkSafety := func(nd *refNode, parentOuts []int8) {
		dec := decidedVec(nd.cfg)
		for p := 0; p < n; p++ {
			if v := dec[p]; v >= 0 {
				if prev := parentOuts[p]; prev >= 0 && prev != v {
					report("agreement", nd, fmt.Sprintf(
						"p%d output %d, crashed, and re-decided %d", p, prev, v))
				}
			}
		}
		first, firstP := -1, -1
		for p := 0; p < n; p++ {
			v := nd.outs[p]
			if v < 0 {
				continue
			}
			if !valid(int(v)) {
				report("validity", nd, fmt.Sprintf(
					"p%d decided %d, not an input of any process", p, v))
			}
			if first == -1 {
				first, firstP = int(v), p
			} else if int(v) != first {
				report("agreement", nd, fmt.Sprintf(
					"p%d decided %d but p%d decided %d", firstP, first, p, v))
			}
		}
	}

	fresh := make([]int8, n)
	for i := range fresh {
		fresh[i] = -1
	}
	rootCfg := model.InitialConfig(pr, inputs)
	root := &refNode{cfg: rootCfg, used: make([]int, n), outs: merge(fresh, decidedVec(rootCfg))}
	index := map[string]*refNode{refKey(root.cfg, root.used, root.outs): root}
	order := []*refNode{root}
	queue := []*refNode{root}
	checkSafety(root, fresh)
	count := 1
	for len(queue) > 0 && count <= maxNodes {
		nd := queue[0]
		queue = queue[1:]
		dec := decidedVec(nd.cfg)
		for p := 0; p < n; p++ {
			if dec[p] >= 0 {
				continue
			}
			next := model.Step(pr, nd.cfg, p)
			outs := merge(nd.outs, decidedVec(next))
			k := refKey(next, nd.used, outs)
			child := index[k]
			if child == nil {
				child = &refNode{cfg: next, used: nd.used, outs: outs,
					parent: nd, via: schedule.Step(p)}
				index[k] = child
				order = append(order, child)
				count++
				checkSafety(child, nd.outs)
				queue = append(queue, child)
			}
			nd.succ = append(nd.succ, child)
		}
		for p := 0; p < len(quota); p++ {
			if nd.used[p] >= quota[p] {
				continue
			}
			if nd.cfg.States[p] == pr.Init(p, inputs[p]) {
				continue
			}
			next := model.CrashProc(pr, nd.cfg, p, inputs[p])
			used := append([]int(nil), nd.used...)
			used[p]++
			k := refKey(next, used, nd.outs)
			if index[k] == nil {
				child := &refNode{cfg: next, used: used, outs: nd.outs,
					parent: nd, via: schedule.Crash(p)}
				index[k] = child
				order = append(order, child)
				count++
				checkSafety(child, nd.outs)
				queue = append(queue, child)
			}
		}
	}
	res.truncated = count > maxNodes
	res.nodes = count

	if !res.truncated {
		const (
			white = 0
			gray  = 1
			black = 2
		)
		color := make(map[*refNode]int, count)
		type frame struct {
			nd  *refNode
			idx int
		}
	sweep:
		for _, start := range order {
			if color[start] != white {
				continue
			}
			stack := []frame{{nd: start}}
			color[start] = gray
			for len(stack) > 0 {
				f := &stack[len(stack)-1]
				if f.idx < len(f.nd.succ) {
					child := f.nd.succ[f.idx]
					f.idx++
					switch color[child] {
					case white:
						color[child] = gray
						stack = append(stack, frame{nd: child})
					case gray:
						report("wait-freedom", child, fmt.Sprintf(
							"cycle of crash-free steps through %s: some process runs forever without deciding",
							child.cfg))
						break sweep
					}
					continue
				}
				color[f.nd] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return res
}

func compareToRef(t *testing.T, label string, res *model.Result, ref *refResult) {
	t.Helper()
	if res.Nodes != ref.nodes || res.Truncated != ref.truncated {
		t.Errorf("%s: nodes/truncated = (%d, %v), reference = (%d, %v)",
			label, res.Nodes, res.Truncated, ref.nodes, ref.truncated)
	}
	if len(res.Violations) != len(ref.violations) {
		t.Errorf("%s: %d violations, reference %d (%v vs %+v)",
			label, len(res.Violations), len(ref.violations), res.Violations, ref.violations)
		return
	}
	for i, v := range res.Violations {
		rv := ref.violations[i]
		if v.Kind != rv.kind || v.Trace.String() != rv.trace ||
			v.Config.String() != rv.config || v.Detail != rv.detail {
			t.Errorf("%s: violation %d = {%s %s %s %s}, reference {%s %s %s %s}",
				label, i, v.Kind, v.Trace, v.Config, v.Detail,
				rv.kind, rv.trace, rv.config, rv.detail)
		}
	}
}

// TestPackedCheckMatchesReplay is the packed-encoding property test:
// across the protogen corpus, Graph.Check on the packed-word,
// open-addressed graph must be byte-identical — node counts, truncation,
// violation kinds, traces, configurations and detail strings — to the
// pre-pack string-keyed serial replay, both on a cold graph and again on
// the same (now warm) graph.
func TestPackedCheckMatchesReplay(t *testing.T) {
	const seeds = 120
	const maxNodes = 200_000
	for seed := uint64(0); seed < seeds; seed++ {
		a := protogen.Generate(seed)
		pr := a.Compiled
		ref := refCheck(pr, a.Inputs, a.CrashQuota, maxNodes)

		g, err := model.NewGraph(pr, a.Inputs)
		if err != nil {
			t.Fatalf("seed %d: NewGraph: %v", seed, err)
		}
		opts := model.CheckOpts{Inputs: a.Inputs, CrashQuota: a.CrashQuota, MaxNodes: maxNodes}
		cold, err := g.Check(opts)
		if err != nil {
			t.Fatalf("seed %d: cold Check: %v", seed, err)
		}
		compareToRef(t, fmt.Sprintf("seed %d cold", seed), cold, ref)
		warm, err := g.Check(opts)
		if err != nil {
			t.Fatalf("seed %d: warm Check: %v", seed, err)
		}
		compareToRef(t, fmt.Sprintf("seed %d warm", seed), warm, ref)
	}
}
