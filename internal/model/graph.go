package model

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/schedule"
)

// Graph is a canonicalized, lazily-expanded exploration graph for one
// (protocol, inputs) pair, shared across many Check runs. Node identity
// is a packed fixed-width word encoding of the (configuration,
// output-history) pair — local states translated through per-process
// dictionaries built at NewGraph from the protocol's canonical
// reachable state machine (the same closure model.Fingerprint hashes) —
// so interning hashes with a word-mix loop and compares with == over
// words, never a per-string byte loop. Nodes live in an open-addressed
// table (power-of-two capacity, linear probing); hash collisions only
// cost probe steps, equality is always confirmed over the full packed
// identity, so hashing is a pure speedup, never a correctness input.
// Each node's successors are computed exactly once, with singleflight
// semantics: concurrent walks that reach an unexpanded node agree on
// one expander, the rest block until it is done.
//
// Crash usage is deliberately NOT part of a graph node's identity:
// transitions depend only on the configuration and the output history, so
// the same canonical node serves every path to its configuration no
// matter how many crashes the path spent. Each walk layers its own
// (node, crash-usage) bookkeeping on top (see Graph.Check), preserving
// the serial checker's (configuration, crash-usage, output-history)
// dedup exactly. This is what lets walks with different crash quotas —
// and the stages of a Theorem 13 chain, whose per-stage quotas reset —
// share every transition, output-merge and hash computation.
//
// A Graph is safe for concurrent use; Graph.Check may be called from any
// number of goroutines. Results are byte-identical to a fresh serial
// exploration of the same options (model.Check itself runs on a one-shot
// Graph, so there is exactly one exploration code path).
type Graph struct {
	pr     Protocol
	inputs []int
	enc    *encoding

	mu sync.Mutex
	// table is the open-addressed interned-node index: power-of-two
	// capacity, linear probing on gnode.hash, grown at 3/4 load. Guarded
	// by mu, like the dictionary extensions (encoding.extend).
	table []*gnode
	live  int
	// order lists the canonical nodes in intern order. It is the
	// deterministic spine of Export/ImportSnapshot: successor references
	// in a snapshot are positions in this list, and an imported graph
	// preserves the list exactly, so export -> import -> export
	// round-trips byte-identically.
	order []*gnode

	// rootOnce memoizes the empty-StartTrace walk root — every plain
	// Check on a warm graph starts there, so the initial configuration,
	// its decision vector and its intern lookup are paid once per graph,
	// not once per walk.
	rootOnce sync.Once
	rootNode *gnode

	// negOuts is the shared all-undecided output vector (read-only), the
	// parent history of every walk root's safety check.
	negOuts []int8

	// scratch pools per-expansion decision/output/packing buffers,
	// frontier pools per-walk BFS queues, and postSweep pools the
	// liveness DFS's color/stack scratch, so steady-state walks over a
	// warm graph allocate only their own Result structures.
	scratch   sync.Pool
	frontier  sync.Pool
	postSweep sync.Pool

	interned atomic.Uint64
	expanded atomic.Uint64
	reused   atomic.Uint64
}

// GraphStats counts a graph's reuse: how many canonical nodes exist, how
// many expansions were performed, and how many expansion requests were
// served from already-expanded nodes. Reused/(Expanded+Reused) is the
// share of successor computations the graph amortized away.
type GraphStats struct {
	// Interned is the number of distinct canonical nodes in the store.
	Interned uint64 `json:"interned"`
	// Expanded is the number of node expansions performed (each computes
	// the node's step and crash successors exactly once).
	Expanded uint64 `json:"expanded"`
	// Reused is the number of expansion requests answered by an
	// already-expanded node — work some earlier walk (or an earlier visit
	// of this walk) already paid for.
	Reused uint64 `json:"reused"`
}

// HitRate returns Reused / (Expanded + Reused), or 0 before any walk.
func (s GraphStats) HitRate() float64 {
	if total := s.Expanded + s.Reused; total > 0 {
		return float64(s.Reused) / float64(total)
	}
	return 0
}

// Add accumulates other into s.
func (s *GraphStats) Add(other GraphStats) {
	s.Interned += other.Interned
	s.Expanded += other.Expanded
	s.Reused += other.Reused
}

// Sub returns the counter delta s - prev, the per-call attribution when a
// long-lived cached graph serves many calls.
func (s GraphStats) Sub(prev GraphStats) GraphStats {
	return GraphStats{
		Interned: s.Interned - prev.Interned,
		Expanded: s.Expanded - prev.Expanded,
		Reused:   s.Reused - prev.Reused,
	}
}

// nodeFP is the 128-bit hashed fingerprint a snapshot node record is
// verified by (see graph_io.go). The RUNTIME node index probes packed
// words instead; this fingerprint survives because the on-disk graph
// store format embeds it per record, and keeping it keeps every v1
// store file loadable byte-identically.
type nodeFP struct{ hi, lo uint64 }

// FNV-1a 128-bit parameters (offset basis and prime).
const (
	fnvOffset128Hi = 0x6c62272e07bb0142
	fnvOffset128Lo = 0x62b821756295c58d
	fnvPrime128Hi  = 0x0000000001000000
	fnvPrime128Lo  = 0x000000000000013b
)

// hash128 accumulates an FNV-1a 128-bit hash with no allocation. It is
// the snapshot-record fingerprint, not the hot-path hash: interning
// probes hashWords over the packed identity instead.
type hash128 struct{ hi, lo uint64 }

func newHash128() hash128 { return hash128{hi: fnvOffset128Hi, lo: fnvOffset128Lo} }

func (h *hash128) writeByte(b byte) {
	lo := h.lo ^ uint64(b)
	// Multiply the 128-bit state by the FNV prime, mod 2^128.
	carry, newLo := bits.Mul64(lo, fnvPrime128Lo)
	h.hi = h.hi*fnvPrime128Lo + lo*fnvPrime128Hi + carry
	h.lo = newLo
}

func (h *hash128) writeString(s string) {
	for i := 0; i < len(s); i++ {
		h.writeByte(s[i])
	}
	h.writeByte(0xff) // terminator: "ab","c" must not alias "a","bc"
}

// fingerprintOf hashes a node's identity for snapshot records — the
// stable per-record integrity check of the RPRGRAPH v1 store format.
// (A weak spot — object values hashed mod 2^16 — is irrelevant here:
// ImportSnapshot compares the recomputed fingerprint for equality, it
// never indexes by it.)
func fingerprintOf(cfg Config, outs []int8) nodeFP {
	h := newHash128()
	for _, s := range cfg.States {
		h.writeString(s)
	}
	h.writeByte(0xfe)
	for _, v := range cfg.Vals {
		h.writeByte(byte(v))
		h.writeByte(byte(uint16(v) >> 8))
	}
	h.writeByte(0xfe)
	for _, o := range outs {
		h.writeByte(byte(o))
	}
	return nodeFP{hi: h.hi, lo: h.lo}
}

// gnode is one canonical node of the shared graph. All fields except the
// expansion set are written once at intern time and read-only afterwards;
// the expansion set (stepSucc, stepP, crashSucc) is written exactly once
// inside the sync.Once and published by the expanded flag.
type gnode struct {
	cfg  Config
	outs []int8
	// words is the packed fixed-width identity (see encoding) and hash
	// its mix — both the graph's intern index key and the walk overlay's
	// probe hash, computed exactly once per canonical node.
	words []uint64
	hash  uint64
	// decided[p] is p's decision visible in cfg (-1 if undecided),
	// precomputed so per-request safety checks need no Protocol calls.
	decided []int8

	once sync.Once
	done atomic.Bool
	// stepSucc[i] is the step successor via process stepP[i]; decided
	// processes take no-op steps and are omitted, exactly as in the
	// serial BFS.
	stepSucc []*gnode
	stepP    []int
	// crashSucc[p] is the crash successor of process p, nil when p is in
	// its initial state (crashing it changes nothing and only burns
	// quota, so every walk skips it).
	crashSucc []*gnode
}

// NewGraph validates the protocol and builds an empty shared graph for
// the given input vector. Every Check run on the graph must use exactly
// these inputs — crash transitions and the validity default depend on
// them, so they are part of the graph's identity. Building includes the
// packed-encoding dictionaries (the canonical per-process reachable
// state closures); protocols whose closure exceeds the fingerprint
// budget, or whose objects have more than 2^16 values, are refused.
func NewGraph(pr Protocol, inputs []int) (*Graph, error) {
	if err := Validate(pr); err != nil {
		return nil, err
	}
	if len(inputs) != pr.Procs() {
		return nil, fmt.Errorf("model: %d inputs for %d processes", len(inputs), pr.Procs())
	}
	enc, err := newEncoding(pr)
	if err != nil {
		return nil, err
	}
	in := make([]int, len(inputs))
	copy(in, inputs)
	return &Graph{
		pr: pr, inputs: in, enc: enc,
		table:   make([]*gnode, 64),
		negOuts: freshOuts(pr.Procs()),
	}, nil
}

// Inputs returns the input vector the graph is built for.
func (g *Graph) Inputs() []int {
	out := make([]int, len(g.inputs))
	copy(out, g.inputs)
	return out
}

// Stats snapshots the graph's reuse counters.
func (g *Graph) Stats() GraphStats {
	return GraphStats{
		Interned: g.interned.Load(),
		Expanded: g.expanded.Load(),
		Reused:   g.reused.Load(),
	}
}

// decisionVec computes the per-process decision vector of cfg (-1 for
// undecided processes), the shared-graph form of repeated Decision calls.
func decisionVec(pr Protocol, cfg Config) []int8 {
	out := make([]int8, pr.Procs())
	decisionVecInto(out, pr, cfg)
	return out
}

// decisionVecInto is decisionVec into a caller-owned buffer (the
// expansion scratch), so probing an already-interned successor costs no
// allocation.
func decisionVecInto(dst []int8, pr Protocol, cfg Config) {
	for p := range dst {
		if v, ok := Decision(pr, cfg, p); ok {
			dst[p] = int8(v)
		} else {
			dst[p] = -1
		}
	}
}

// mergeDecided extends a path's output history with a decision vector,
// returning outs unchanged (same slice) if nothing new was decided — the
// same copy-on-write contract as mergeOuts, driven by the precomputed
// vector instead of fresh Decision calls.
func mergeDecided(outs []int8, decided []int8) []int8 {
	var copied []int8
	for p, v := range decided {
		if v >= 0 && outs[p] == -1 {
			if copied == nil {
				copied = make([]int8, len(outs))
				copy(copied, outs)
			}
			copied[p] = v
		}
	}
	if copied == nil {
		return outs
	}
	return copied
}

// mergeDecidedInto is mergeDecided with the copy landing in a
// caller-owned scratch buffer. It returns either outs itself (owned=true:
// nothing new was decided, the graph-owned slice may be shared) or
// scratch (owned=false: the caller must copy before retaining).
func mergeDecidedInto(outs, decided, scratch []int8) (res []int8, owned bool) {
	changed := false
	for p, v := range decided {
		if v >= 0 && outs[p] == -1 {
			changed = true
			break
		}
	}
	if !changed {
		return outs, true
	}
	copy(scratch, outs)
	for p, v := range decided {
		if v >= 0 && scratch[p] == -1 {
			scratch[p] = v
		}
	}
	return scratch, false
}

// exScratch is one expansion's reusable buffers, including the packing
// buffer interning hashes through.
type exScratch struct {
	dec   []int8
	outs  []int8
	words []uint64
}

func (g *Graph) getScratch() *exScratch {
	if v := g.scratch.Get(); v != nil {
		return v.(*exScratch)
	}
	n := g.pr.Procs()
	return &exScratch{dec: make([]int8, n), outs: make([]int8, n), words: make([]uint64, g.enc.words)}
}

// probeLocked finds the canonical node with the given packed identity,
// or nil. Lock held.
func (g *Graph) probeLocked(h uint64, words []uint64) *gnode {
	mask := uint64(len(g.table) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		nd := g.table[i]
		if nd == nil {
			return nil
		}
		if nd.hash == h && wordsEqual(nd.words, words) {
			return nd
		}
	}
}

// insertLocked adds a fresh node to the open-addressed index, growing at
// 3/4 load. Lock held; the caller has already probed for absence.
func (g *Graph) insertLocked(nd *gnode) {
	if (g.live+1)*4 >= len(g.table)*3 {
		g.growLocked()
	}
	mask := uint64(len(g.table) - 1)
	i := nd.hash & mask
	for g.table[i] != nil {
		i = (i + 1) & mask
	}
	g.table[i] = nd
	g.live++
}

// growLocked doubles the index and rehashes from the stored hashes —
// packed identities are never re-hashed after intern.
func (g *Graph) growLocked() {
	next := make([]*gnode, len(g.table)*2)
	mask := uint64(len(next) - 1)
	for _, nd := range g.table {
		if nd == nil {
			continue
		}
		i := nd.hash & mask
		for next[i] != nil {
			i = (i + 1) & mask
		}
		next[i] = nd
	}
	g.table = next
}

// intern returns the canonical node for (cfg, outs), creating it with the
// given decision vector if absent. cfg is always caller-built and fresh
// (Step/CrashProc clone), so it is adopted as-is; outs is adopted only
// when outsOwned (a graph-owned or walk-root slice) and copied out of the
// expansion scratch otherwise; decided is always copied on create, so
// callers may pass scratch. Packing runs outside the lock against the
// dictionary snapshot; the miss fallback (impossible for deterministic
// protocols) extends the dictionaries under the lock.
func (g *Graph) intern(cfg Config, outs []int8, outsOwned bool, decided []int8) *gnode {
	sc := g.getScratch()
	w := sc.words
	if !g.enc.packInto(w, cfg, outs) {
		g.mu.Lock()
		g.enc.mustPackInto(w, cfg, outs)
		g.mu.Unlock()
	}
	h := hashWords(w)
	g.mu.Lock()
	if nd := g.probeLocked(h, w); nd != nil {
		g.mu.Unlock()
		g.scratch.Put(sc)
		return nd
	}
	if !outsOwned {
		outs = append([]int8(nil), outs...)
	}
	nd := &gnode{cfg: cfg, outs: outs, decided: append([]int8(nil), decided...),
		words: append([]uint64(nil), w...), hash: h}
	g.insertLocked(nd)
	g.order = append(g.order, nd)
	g.mu.Unlock()
	g.interned.Add(1)
	g.scratch.Put(sc)
	return nd
}

// find returns the canonical node for (cfg, outs) without creating it, or
// nil — the lookup behind post-exploration analyses (Result.Node, crash
// successors in valency sweeps). A dictionary miss means no such node
// was ever interned.
func (g *Graph) find(cfg Config, outs []int8) *gnode {
	sc := g.getScratch()
	defer g.scratch.Put(sc)
	if !g.enc.packInto(sc.words, cfg, outs) {
		return nil
	}
	h := hashWords(sc.words)
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.probeLocked(h, sc.words)
}

// ensure expands nd's successors if no walk has yet, with singleflight
// semantics: concurrent callers agree on one expander and the rest wait.
// The expansion performs the Step/CrashProc transitions, output merges
// and packing/hashing the serial BFS would redo per request.
func (g *Graph) ensure(nd *gnode) {
	if nd.done.Load() {
		g.reused.Add(1)
		return
	}
	fresh := false
	nd.once.Do(func() {
		n := g.pr.Procs()
		sc := g.getScratch()
		for p := 0; p < n; p++ {
			if nd.decided[p] >= 0 {
				continue
			}
			next := Step(g.pr, nd.cfg, p)
			decisionVecInto(sc.dec, g.pr, next)
			outs, owned := mergeDecidedInto(nd.outs, sc.dec, sc.outs)
			nd.stepSucc = append(nd.stepSucc, g.intern(next, outs, owned, sc.dec))
			nd.stepP = append(nd.stepP, p)
		}
		nd.crashSucc = make([]*gnode, n)
		for p := 0; p < n; p++ {
			if nd.cfg.States[p] == g.pr.Init(p, g.inputs[p]) {
				continue
			}
			next := CrashProc(g.pr, nd.cfg, p, g.inputs[p])
			decisionVecInto(sc.dec, g.pr, next)
			nd.crashSucc[p] = g.intern(next, nd.outs, true, sc.dec)
		}
		g.scratch.Put(sc)
		g.expanded.Add(1)
		nd.done.Store(true)
		fresh = true
	})
	if !fresh {
		g.reused.Add(1)
	}
}

// root interns the walk's starting node: the initial configuration with
// the start trace applied. Crashes inside the trace do not consume the
// walk's crash quota, and outputs are merged only across steps, exactly
// as in the serial exploration. The empty-StartTrace root — every plain
// Check — is memoized, so warm walks skip the initial-configuration
// rebuild entirely.
func (g *Graph) root(startTrace schedule.Schedule) *gnode {
	if len(startTrace) == 0 {
		g.rootOnce.Do(func() { g.rootNode = g.buildRoot(nil) })
		return g.rootNode
	}
	return g.buildRoot(startTrace)
}

func (g *Graph) buildRoot(startTrace schedule.Schedule) *gnode {
	initCfg := InitialConfig(g.pr, g.inputs)
	initOuts := mergeDecided(freshOuts(g.pr.Procs()), decisionVec(g.pr, initCfg))
	for _, e := range startTrace {
		if e.Crash {
			initCfg = CrashProc(g.pr, initCfg, e.P, g.inputs[e.P])
		} else {
			initCfg = Step(g.pr, initCfg, e.P)
			initOuts = mergeDecided(initOuts, decisionVec(g.pr, initCfg))
		}
	}
	return g.intern(initCfg, initOuts, true, decisionVec(g.pr, initCfg))
}

// getFrontier returns a pooled, empty BFS queue buffer.
func (g *Graph) getFrontier() *[]*node {
	if v := g.frontier.Get(); v != nil {
		return v.(*[]*node)
	}
	buf := make([]*node, 0, 1024)
	return &buf
}

// putFrontier clears and returns a queue buffer to the pool. Clearing
// drops the walk's node pointers so pooling never retains a finished
// walk's Result.
func (g *Graph) putFrontier(buf *[]*node) {
	q := *buf
	clear(q)
	*buf = q[:0]
	g.frontier.Put(buf)
}

// Check explores the graph under the given options and verifies
// agreement, validity and recoverable wait-freedom, sharing every node
// expansion with concurrent and past walks. opts.Inputs must equal the
// graph's inputs. The walk's own structures — crash-usage overlays,
// discovery parents, BFS order, violation traces, node counts — are
// private to the call, so the returned Result is identical to a serial
// model.Check of the same options.
func (g *Graph) Check(opts CheckOpts) (*Result, error) {
	n := g.pr.Procs()
	if len(opts.Inputs) != n {
		return nil, fmt.Errorf("model: %d inputs for %d processes", len(opts.Inputs), n)
	}
	for p, in := range opts.Inputs {
		if in != g.inputs[p] {
			return nil, fmt.Errorf("model: graph built for inputs %v, check requested %v", g.inputs, opts.Inputs)
		}
	}
	quota := opts.CrashQuota
	if quota != nil && len(quota) != n {
		return nil, fmt.Errorf("model: %d crash quotas for %d processes", len(quota), n)
	}
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 2_000_000
	}

	// Pre-size the walk index from the graph's canonical node count: on a
	// warm graph it is the exact bucket bound, on a cold one a harmless
	// underestimate.
	hint := int(g.interned.Load())
	if hint > maxNodes {
		hint = maxNodes
	}
	r := &Result{pr: g.pr, g: g, inputs: opts.Inputs, arenaHint: hint + 1}
	r.nodes.init(hint + 1)
	r.order = make([]*node, 0, hint+1)
	w := walkState{r: r, validity: opts.Validity, inputs: opts.Inputs}
	rootG := g.root(opts.StartTrace)
	r.init = r.newNode()
	*r.init = node{cfg: rootG.cfg, used: r.newUsed(n), outs: rootG.outs, gn: rootG}
	r.add(r.init)

	var done <-chan struct{}
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return nil, err
		}
		done = opts.Ctx.Done()
	}

	// BFS over (configuration, crash-usage, output-history) walk nodes,
	// each backed by its canonical (configuration, output-history) graph
	// node plus this walk's crash-usage vector. The loop mirrors the
	// original serial exploration exactly; only the successor
	// computations are delegated to the shared graph. The queue buffer is
	// pooled; popping advances a head index so the backing array is
	// reused instead of reallocated walk after walk.
	fbuf := g.getFrontier()
	queue := (*fbuf)[:0]
	defer func() { *fbuf = queue; g.putFrontier(fbuf) }()
	queue = append(queue, r.init)
	head := 0
	w.checkSafety(r.init, g.negOuts)
	visited := 0
	for head < len(queue) && r.count <= maxNodes {
		if visited++; done != nil && visited%1024 == 0 {
			select {
			case <-done:
				return nil, opts.Ctx.Err()
			default:
			}
		}
		nd := queue[head]
		head++
		g.ensure(nd.gn)

		// Step successors (decided processes take no-op steps, which
		// cannot reach new configurations — omitted from the expansion).
		// Step children inherit the parent's crash-usage vector (shared,
		// read-only).
		for i, cg := range nd.gn.stepSucc {
			child := r.lookup(cg, nd.used)
			if child == nil {
				child = r.newNode()
				*child = node{cfg: cg.cfg, used: nd.used, outs: cg.outs,
					parent: nd, via: schedule.Step(nd.gn.stepP[i]), gn: cg}
				r.add(child)
				w.checkSafety(child, nd.outs)
				queue = append(queue, child)
			}
			nd.succ = append(nd.succ, child)
		}

		// Crash successors: quota is this walk's overlay on the shared
		// structure; the initial-state skip is baked into the expansion.
		// The usage vector is only materialized when the child is new.
		for p := 0; p < len(quota); p++ {
			if nd.used[p] >= quota[p] {
				continue
			}
			cg := nd.gn.crashSucc[p]
			if cg == nil {
				continue
			}
			if r.lookupPlus(cg, nd.used, p) == nil {
				used := r.newUsed(n)
				copy(used, nd.used)
				used[p]++
				child := r.newNode()
				*child = node{cfg: cg.cfg, used: used, outs: cg.outs,
					parent: nd, via: schedule.Crash(p), gn: cg}
				r.add(child)
				w.checkSafety(child, nd.outs)
				queue = append(queue, child)
			}
		}
	}
	if r.count > maxNodes {
		r.Truncated = true
	}
	r.Nodes = r.count

	if !opts.SkipLiveness && !r.Truncated {
		r.checkLiveness(&w)
	}
	return r, nil
}
