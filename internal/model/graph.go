package model

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/schedule"
)

// Graph is a canonicalized, lazily-expanded exploration graph for one
// (protocol, inputs) pair, shared across many Check runs. Nodes are
// interned by the same fingerprint Check always used — the
// (configuration, crash-usage, output-history) key — and each node's
// successors are computed exactly once, with singleflight semantics:
// concurrent walks that reach an unexpanded node agree on one expander,
// the rest block until it is done. Per-request concerns — crash quotas,
// node budgets, liveness, validity, cancellation — are resolved as
// overlays during the walk and never influence the shared structure, so
// requests with different quotas still share every transition,
// output-merge and key computation on their common prefix.
//
// A Graph is safe for concurrent use; Graph.Check may be called from any
// number of goroutines. Results are byte-identical to a fresh serial
// exploration of the same options (model.Check itself runs on a one-shot
// Graph, so there is exactly one exploration code path).
type Graph struct {
	pr     Protocol
	inputs []int

	mu    sync.Mutex
	nodes map[string]*gnode

	interned atomic.Uint64
	expanded atomic.Uint64
	reused   atomic.Uint64
}

// GraphStats counts a graph's reuse: how many canonical nodes exist, how
// many expansions were performed, and how many expansion requests were
// served from already-expanded nodes. Reused/(Expanded+Reused) is the
// share of successor computations the graph amortized away.
type GraphStats struct {
	// Interned is the number of distinct canonical nodes in the store.
	Interned uint64 `json:"interned"`
	// Expanded is the number of node expansions performed (each computes
	// the node's step and crash successors exactly once).
	Expanded uint64 `json:"expanded"`
	// Reused is the number of expansion requests answered by an
	// already-expanded node — work some earlier walk (or an earlier visit
	// of this walk) already paid for.
	Reused uint64 `json:"reused"`
}

// HitRate returns Reused / (Expanded + Reused), or 0 before any walk.
func (s GraphStats) HitRate() float64 {
	if total := s.Expanded + s.Reused; total > 0 {
		return float64(s.Reused) / float64(total)
	}
	return 0
}

// Add accumulates other into s.
func (s *GraphStats) Add(other GraphStats) {
	s.Interned += other.Interned
	s.Expanded += other.Expanded
	s.Reused += other.Reused
}

// gnode is one canonical node of the shared graph. All fields except the
// expansion set are written once at intern time and read-only afterwards;
// the expansion set (stepSucc, stepP, crashSucc) is written exactly once
// inside the sync.Once and published by the expanded flag.
type gnode struct {
	cfg  Config
	used []int // crashes used per process on every path to this node
	outs []int8
	key  string
	// decided[p] is p's decision visible in cfg (-1 if undecided),
	// precomputed so per-request safety checks need no Protocol calls.
	decided []int8

	once sync.Once
	done atomic.Bool
	// stepSucc[i] is the step successor via process stepP[i]; decided
	// processes take no-op steps and are omitted, exactly as in the
	// serial BFS.
	stepSucc []*gnode
	stepP    []int
	// crashSucc[p] is the crash successor of process p, nil when p is in
	// its initial state (crashing it changes nothing and only burns
	// quota, so every walk skips it).
	crashSucc []*gnode
}

// NewGraph validates the protocol and builds an empty shared graph for
// the given input vector. Every Check run on the graph must use exactly
// these inputs — crash transitions and the validity default depend on
// them, so they are part of the graph's identity.
func NewGraph(pr Protocol, inputs []int) (*Graph, error) {
	if err := Validate(pr); err != nil {
		return nil, err
	}
	if len(inputs) != pr.Procs() {
		return nil, fmt.Errorf("model: %d inputs for %d processes", len(inputs), pr.Procs())
	}
	in := make([]int, len(inputs))
	copy(in, inputs)
	return &Graph{pr: pr, inputs: in, nodes: make(map[string]*gnode)}, nil
}

// Inputs returns the input vector the graph is built for.
func (g *Graph) Inputs() []int {
	out := make([]int, len(g.inputs))
	copy(out, g.inputs)
	return out
}

// Stats snapshots the graph's reuse counters.
func (g *Graph) Stats() GraphStats {
	return GraphStats{
		Interned: g.interned.Load(),
		Expanded: g.expanded.Load(),
		Reused:   g.reused.Load(),
	}
}

// decisionVec computes the per-process decision vector of cfg (-1 for
// undecided processes), the shared-graph form of repeated Decision calls.
func decisionVec(pr Protocol, cfg Config) []int8 {
	n := pr.Procs()
	out := make([]int8, n)
	for p := 0; p < n; p++ {
		if v, ok := Decision(pr, cfg, p); ok {
			out[p] = int8(v)
		} else {
			out[p] = -1
		}
	}
	return out
}

// mergeDecided extends a path's output history with a decision vector,
// returning outs unchanged (same slice) if nothing new was decided — the
// same copy-on-write contract as mergeOuts, driven by the precomputed
// vector instead of fresh Decision calls.
func mergeDecided(outs []int8, decided []int8) []int8 {
	var copied []int8
	for p, v := range decided {
		if v >= 0 && outs[p] == -1 {
			if copied == nil {
				copied = make([]int8, len(outs))
				copy(copied, outs)
			}
			copied[p] = v
		}
	}
	if copied == nil {
		return outs
	}
	return copied
}

// intern returns the canonical node for (cfg, used, outs), creating it
// with the given decision vector if absent. The slices become shared,
// read-only graph state.
func (g *Graph) intern(cfg Config, used []int, outs []int8, decided []int8) *gnode {
	key := nodeKey(cfg, used, outs)
	g.mu.Lock()
	if nd, ok := g.nodes[key]; ok {
		g.mu.Unlock()
		return nd
	}
	nd := &gnode{cfg: cfg, used: used, outs: outs, key: key, decided: decided}
	g.nodes[key] = nd
	g.mu.Unlock()
	g.interned.Add(1)
	return nd
}

// ensure expands nd's successors if no walk has yet, with singleflight
// semantics: concurrent callers agree on one expander and the rest wait.
// The expansion performs the Step/CrashProc transitions, output merges
// and key constructions the serial BFS would redo per request.
func (g *Graph) ensure(nd *gnode) {
	if nd.done.Load() {
		g.reused.Add(1)
		return
	}
	fresh := false
	nd.once.Do(func() {
		n := g.pr.Procs()
		for p := 0; p < n; p++ {
			if nd.decided[p] >= 0 {
				continue
			}
			next := Step(g.pr, nd.cfg, p)
			dec := decisionVec(g.pr, next)
			outs := mergeDecided(nd.outs, dec)
			nd.stepSucc = append(nd.stepSucc, g.intern(next, nd.used, outs, dec))
			nd.stepP = append(nd.stepP, p)
		}
		nd.crashSucc = make([]*gnode, n)
		for p := 0; p < n; p++ {
			if nd.cfg.States[p] == g.pr.Init(p, g.inputs[p]) {
				continue
			}
			next := CrashProc(g.pr, nd.cfg, p, g.inputs[p])
			used := make([]int, n)
			copy(used, nd.used)
			used[p]++
			nd.crashSucc[p] = g.intern(next, used, nd.outs, decisionVec(g.pr, next))
		}
		g.expanded.Add(1)
		nd.done.Store(true)
		fresh = true
	})
	if !fresh {
		g.reused.Add(1)
	}
}

// root interns the walk's starting node: the initial configuration with
// the start trace applied. Crashes inside the trace do not consume the
// walk's crash quota, and outputs are merged only across steps, exactly
// as in the serial exploration.
func (g *Graph) root(startTrace schedule.Schedule) *gnode {
	n := g.pr.Procs()
	initCfg := InitialConfig(g.pr, g.inputs)
	initOuts := mergeDecided(freshOuts(n), decisionVec(g.pr, initCfg))
	for _, e := range startTrace {
		if e.Crash {
			initCfg = CrashProc(g.pr, initCfg, e.P, g.inputs[e.P])
		} else {
			initCfg = Step(g.pr, initCfg, e.P)
			initOuts = mergeDecided(initOuts, decisionVec(g.pr, initCfg))
		}
	}
	return g.intern(initCfg, make([]int, n), initOuts, decisionVec(g.pr, initCfg))
}

// Check explores the graph under the given options and verifies
// agreement, validity and recoverable wait-freedom, sharing every node
// expansion with concurrent and past walks. opts.Inputs must equal the
// graph's inputs. The walk's own structures — discovery parents, BFS
// order, violation traces, node counts — are private to the call, so the
// returned Result is identical to a serial model.Check of the same
// options.
func (g *Graph) Check(opts CheckOpts) (*Result, error) {
	n := g.pr.Procs()
	if len(opts.Inputs) != n {
		return nil, fmt.Errorf("model: %d inputs for %d processes", len(opts.Inputs), n)
	}
	for p, in := range opts.Inputs {
		if in != g.inputs[p] {
			return nil, fmt.Errorf("model: graph built for inputs %v, check requested %v", g.inputs, opts.Inputs)
		}
	}
	quota := opts.CrashQuota
	if quota == nil {
		quota = make([]int, n)
	}
	if len(quota) != n {
		return nil, fmt.Errorf("model: %d crash quotas for %d processes", len(quota), n)
	}
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 2_000_000
	}
	validity := opts.Validity
	if validity == nil {
		validity = func(d int) bool {
			for _, in := range opts.Inputs {
				if d == in {
					return true
				}
			}
			return false
		}
	}

	r := &Result{pr: g.pr, inputs: opts.Inputs, nodes: make(map[string]*node)}
	rootG := g.root(opts.StartTrace)
	r.init = &node{cfg: rootG.cfg, used: rootG.used, outs: rootG.outs, key: rootG.key, gn: rootG}
	r.nodes[r.init.key] = r.init
	r.order = append(r.order, r.init)

	seenKinds := make(map[string]bool)
	report := func(kind string, nd *node, detail string) {
		if seenKinds[kind] {
			return
		}
		seenKinds[kind] = true
		r.Violations = append(r.Violations, &Violation{
			Kind: kind, Trace: nd.trace(), Config: nd.cfg, Detail: detail,
		})
	}

	// checkSafety verifies agreement and validity over the path's output
	// history (parentOuts) extended by the decisions visible in nd's
	// configuration, read from the node's precomputed decision vector.
	// Outputs persist across crashes: a process that decided, crashed and
	// re-decided a different value is an agreement violation with its own
	// earlier output.
	checkSafety := func(nd *node, parentOuts []int8) {
		for p := 0; p < n; p++ {
			if v := nd.gn.decided[p]; v >= 0 {
				if prev := parentOuts[p]; prev >= 0 && prev != v {
					report("agreement", nd, fmt.Sprintf(
						"p%d output %d, crashed, and re-decided %d", p, prev, v))
				}
			}
		}
		first, firstP := -1, -1
		for p := 0; p < n; p++ {
			v := nd.outs[p]
			if v < 0 {
				continue
			}
			if !validity(int(v)) {
				report("validity", nd, fmt.Sprintf(
					"p%d decided %d, not an input of any process", p, v))
			}
			if first == -1 {
				first, firstP = int(v), p
			} else if int(v) != first {
				report("agreement", nd, fmt.Sprintf(
					"p%d decided %d but p%d decided %d", firstP, first, p, v))
			}
		}
	}

	var done <-chan struct{}
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return nil, err
		}
		done = opts.Ctx.Done()
	}

	// BFS over (configuration, crash-usage, output-history) nodes. The
	// loop mirrors the original serial exploration exactly; only the
	// successor computations are delegated to the shared graph.
	queue := []*node{r.init}
	checkSafety(r.init, freshOuts(n))
	visited := 0
	for len(queue) > 0 && len(r.nodes) <= maxNodes {
		if visited++; done != nil && visited%1024 == 0 {
			select {
			case <-done:
				return nil, opts.Ctx.Err()
			default:
			}
		}
		nd := queue[0]
		queue = queue[1:]
		g.ensure(nd.gn)

		// Step successors (decided processes take no-op steps, which
		// cannot reach new configurations — omitted from the expansion).
		for i, cg := range nd.gn.stepSucc {
			child, ok := r.nodes[cg.key]
			if !ok {
				child = &node{cfg: cg.cfg, used: cg.used, outs: cg.outs, key: cg.key,
					parent: nd, via: schedule.Step(nd.gn.stepP[i]), gn: cg}
				r.nodes[cg.key] = child
				r.order = append(r.order, child)
				checkSafety(child, nd.outs)
				queue = append(queue, child)
			}
			nd.succ = append(nd.succ, child)
		}

		// Crash successors: quota is this walk's overlay on the shared
		// structure; the initial-state skip is baked into the expansion.
		for p := 0; p < n; p++ {
			if nd.used[p] >= quota[p] {
				continue
			}
			cg := nd.gn.crashSucc[p]
			if cg == nil {
				continue
			}
			if _, ok := r.nodes[cg.key]; !ok {
				child := &node{cfg: cg.cfg, used: cg.used, outs: cg.outs, key: cg.key,
					parent: nd, via: schedule.Crash(p), gn: cg}
				r.nodes[cg.key] = child
				r.order = append(r.order, child)
				checkSafety(child, nd.outs)
				queue = append(queue, child)
			}
		}
	}
	if len(r.nodes) > maxNodes {
		r.Truncated = true
	}
	r.Nodes = len(r.nodes)

	if !opts.SkipLiveness && !r.Truncated {
		r.checkLiveness(report)
	}
	return r, nil
}
