package model

import (
	"fmt"
	"sync/atomic"
)

// encoding is a Graph's packed-word node layout: the per-process state
// dictionaries (canonical local-state string -> small integer, built
// once at NewGraph from the same reachable-state-machine closure
// model.Fingerprint canonicalizes) plus the fixed word widths a node
// identity packs into. With it, a (configuration, output-history) pair
// becomes ceil(n/4)+ceil(m/4)+ceil(n/8) uint64 words — state ids and
// object values 16 bits each, outputs 8 bits — so hashing is a word-mix
// loop and equality is == over words, with no per-string byte loops on
// the intern/lookup hot path.
//
// The closure over-approximates reachability (it applies each state's
// poised operation against every object value, a superset of the values
// real executions present), so every local state a walk can ever
// produce — Step successors, crash resets to initial states, StartTrace
// replays — is already in the dictionary. The copy-on-write fallback
// below exists only for states that cannot arise from a deterministic
// Protocol (and for snapshot imports carrying alien strings): extension
// swaps in a fresh map under the graph mutex, so concurrent lock-free
// readers never observe a map mutation.
type encoding struct {
	n, m int
	// sw/vw/ow are the word counts of the state, value and output
	// sections; words is their sum, the packed identity length.
	sw, vw, ow, words int
	// dicts is the per-process dictionary snapshot. Readers load it once
	// per packing; writers (extend, holding the graph mutex) replace the
	// whole slice, never mutate a published map.
	dicts atomic.Pointer[[]map[string]uint64]
}

// encodingStateLimit bounds one process's dictionary: state ids pack
// into 16 bits. The Fingerprint closure budget (2^14) is far below it;
// only a pathological Protocol could grow past it via extension.
const encodingStateLimit = 1 << 16

// newEncoding builds the packed layout for pr. It errors when an object
// type's value count does not fit the 16-bit value slots, or when the
// canonical closure of some process exceeds its budget — protocols the
// structural fingerprint (and therefore every cache identity) already
// refuses.
func newEncoding(pr Protocol) (*encoding, error) {
	n, m := pr.Procs(), len(pr.Objects())
	for i, o := range pr.Objects() {
		if o.Type.NumValues() > encodingStateLimit {
			return nil, fmt.Errorf("model: object %d has %d values, beyond the packed encoding's %d",
				i, o.Type.NumValues(), encodingStateLimit)
		}
	}
	e := &encoding{
		n: n, m: m,
		sw: (n + 3) / 4,
		vw: (m + 3) / 4,
		ow: (n + 7) / 8,
	}
	e.words = e.sw + e.vw + e.ow
	dicts := make([]map[string]uint64, n)
	for p := 0; p < n; p++ {
		lm, err := localMachine(pr, p)
		if err != nil {
			return nil, err
		}
		d := make(map[string]uint64, len(lm.states))
		for s, id := range lm.id {
			d[s] = uint64(id)
		}
		dicts[p] = d
	}
	e.dicts.Store(&dicts)
	return e, nil
}

// packInto writes the packed identity of (cfg, outs) into dst (length
// e.words). It returns false when some local state is missing from the
// dictionary snapshot — the caller must extend (under the graph mutex)
// and retry; true is the only outcome for states a deterministic
// protocol can produce.
func (e *encoding) packInto(dst []uint64, cfg Config, outs []int8) bool {
	dicts := *e.dicts.Load()
	for w := 0; w < e.sw; w++ {
		var word uint64
		base := w * 4
		for k := 0; k < 4 && base+k < e.n; k++ {
			id, ok := dicts[base+k][cfg.States[base+k]]
			if !ok {
				return false
			}
			word |= id << (16 * k)
		}
		dst[w] = word
	}
	for w := 0; w < e.vw; w++ {
		var word uint64
		base := w * 4
		for k := 0; k < 4 && base+k < e.m; k++ {
			word |= (uint64(uint16(cfg.Vals[base+k]))) << (16 * k)
		}
		dst[e.sw+w] = word
	}
	for w := 0; w < e.ow; w++ {
		var word uint64
		base := w * 8
		for k := 0; k < 8 && base+k < e.n; k++ {
			word |= uint64(uint8(outs[base+k])) << (8 * k)
		}
		dst[e.sw+e.vw+w] = word
	}
	return true
}

// extend grows process p's dictionary with state s via copy-on-write:
// the published map is never mutated, a fresh slice+map pair replaces
// the snapshot. Must be called with the graph mutex held (it is the
// only writer); concurrent packInto readers keep using the old
// snapshot and simply retry.
func (e *encoding) extend(p int, s string) {
	old := *e.dicts.Load()
	if _, ok := old[p][s]; ok {
		return // a racing retry already added it
	}
	if len(old[p]) >= encodingStateLimit {
		panic(fmt.Sprintf("model: process %d exceeds %d distinct local states; packed state ids are 16-bit",
			p, encodingStateLimit))
	}
	dicts := make([]map[string]uint64, len(old))
	copy(dicts, old)
	d := make(map[string]uint64, len(old[p])+1)
	for k, v := range old[p] {
		d[k] = v
	}
	d[s] = uint64(len(d))
	dicts[p] = d
	e.dicts.Store(&dicts)
}

// mustPackInto is packInto with the extension fallback: on a dictionary
// miss it extends (graph mutex required — see intern/find call sites)
// and repacks. It cannot fail.
func (e *encoding) mustPackInto(dst []uint64, cfg Config, outs []int8) {
	for !e.packInto(dst, cfg, outs) {
		dicts := *e.dicts.Load()
		for p, s := range cfg.States {
			if _, ok := dicts[p][s]; !ok {
				e.extend(p, s)
			}
		}
	}
}

// hashWords mixes a packed identity into the 64-bit hash the
// open-addressed tables probe with. Collisions only cost probe steps —
// equality is always confirmed over the full words — but the final
// avalanche matters: power-of-two tables index by the low bits.
func hashWords(ws []uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range ws {
		h ^= w
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	h *= 0x94d049bb133111eb
	h ^= h >> 29
	return h
}

// wordsEqual is the packed-identity equality: one comparison per word.
func wordsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, w := range a {
		if w != b[i] {
			return false
		}
	}
	return true
}
