package model_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/model"
	"repro/internal/protodef"
	"repro/internal/registry"
)

// snapshotProtocols is the property-test corpus: all five registry
// protocols plus seeded random protodef descriptors. Every entry must
// satisfy the snapshot contract — export/import round-trips
// byte-identically and an imported graph walks exactly like the fresh
// expansion it was exported from.
func snapshotProtocols(t *testing.T) []struct {
	name string
	pr   model.Protocol
} {
	t.Helper()
	var out []struct {
		name string
		pr   model.Protocol
	}
	for _, desc := range []string{"tnn-wf:3,2", "tnn-rec:3,2,2", "cas-wf:2", "cas-rec:2", "tas-reg"} {
		pr, err := registry.ParseProtocol(desc)
		if err != nil {
			t.Fatalf("registry %q: %v", desc, err)
		}
		out = append(out, struct {
			name string
			pr   model.Protocol
		}{desc, pr})
	}
	for seed := int64(1); seed <= 4; seed++ {
		pr := randomProtocol(t, seed)
		out = append(out, struct {
			name string
			pr   model.Protocol
		}{fmt.Sprintf("protodef-seed-%d", seed), pr})
	}
	return out
}

// randomProtocol compiles a small random protodef descriptor: a random
// total transition table over a few values and operations, and a shared
// machine mixing apply states (random successor wiring via the "*"
// fallback) with decide states. Every descriptor compiles because the
// fallback makes the successor map total by construction.
func randomProtocol(t *testing.T, seed int64) model.Protocol {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nVals := 2 + rng.Intn(2)
	nOps := 1 + rng.Intn(2)
	nResps := 2
	td := protodef.TypeDef{Name: "T"}
	for v := 0; v < nVals; v++ {
		td.Values = append(td.Values, fmt.Sprintf("v%d", v))
	}
	for o := 0; o < nOps; o++ {
		op := protodef.OpDef{Name: fmt.Sprintf("op%d", o)}
		for v := 0; v < nVals; v++ {
			op.Transitions = append(op.Transitions, protodef.TransitionDef{
				From: td.Values[v],
				Resp: fmt.Sprintf("r%d", rng.Intn(nResps)),
				To:   td.Values[rng.Intn(nVals)],
			})
		}
		td.Ops = append(td.Ops, op)
	}

	nApply := 2 + rng.Intn(3)
	var names []string
	for s := 0; s < nApply; s++ {
		names = append(names, fmt.Sprintf("s%d", s))
	}
	names = append(names, "d0", "d1")
	m := protodef.MachineDef{Init: []string{names[0], names[1%nApply]}}
	for s := 0; s < nApply; s++ {
		m.States = append(m.States, protodef.StateDef{
			Name:  names[s],
			Apply: &protodef.ApplyDef{Obj: 0, Op: td.Ops[rng.Intn(nOps)].Name},
			Next:  map[string]string{"*": names[rng.Intn(len(names))]},
		})
	}
	d0, d1 := 0, 1
	m.States = append(m.States,
		protodef.StateDef{Name: "d0", Decide: &d0},
		protodef.StateDef{Name: "d1", Decide: &d1},
	)

	d := &protodef.Descriptor{
		Name:     fmt.Sprintf("random-%d", seed),
		Procs:    2 + rng.Intn(2),
		Types:    []protodef.TypeDef{td},
		Objects:  []protodef.ObjectDef{{Type: "T", Init: td.Values[0]}},
		Machines: []protodef.MachineDef{m},
	}
	pr, err := protodef.Compile(d)
	if err != nil {
		t.Fatalf("seed %d: compile random descriptor: %v", seed, err)
	}
	return pr
}

func altInputs(n int) []int {
	in := make([]int, n)
	for p := range in {
		in[p] = p % 2
	}
	return in
}

// TestGraphSnapshotRoundTrip is the tentpole property test: for every
// corpus protocol, expand a graph by walking it, export, import into a
// fresh graph, and require (a) identical graph stats with zero new
// expansions on the imported side, (b) walk results byte-identical to
// the original's, and (c) a second export byte-identical to the first —
// the append-only store's byte-stability contract.
func TestGraphSnapshotRoundTrip(t *testing.T) {
	for _, tc := range snapshotProtocols(t) {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.pr.Procs()
			inputs := altInputs(n)
			quota := make([]int, n)
			quota[0] = 1
			optsList := []model.CheckOpts{
				{Inputs: inputs, MaxNodes: 200_000},
				{Inputs: inputs, CrashQuota: quota, MaxNodes: 200_000},
			}

			fresh, err := model.NewGraph(tc.pr, inputs)
			if err != nil {
				t.Fatal(err)
			}
			var want []checkObservables
			for _, opts := range optsList {
				r, err := fresh.Check(opts)
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, observablesOf(r))
			}
			snap := fresh.Export()
			st := fresh.Stats()
			if uint64(len(snap.Nodes)) != st.Interned {
				t.Fatalf("snapshot has %d nodes, graph interned %d", len(snap.Nodes), st.Interned)
			}
			if uint64(snap.NumExpanded()) != st.Expanded {
				t.Fatalf("snapshot has %d expanded nodes, graph expanded %d", snap.NumExpanded(), st.Expanded)
			}

			warm, err := model.NewGraph(tc.pr, inputs)
			if err != nil {
				t.Fatal(err)
			}
			if err := warm.ImportSnapshot(snap); err != nil {
				t.Fatal(err)
			}
			wst := warm.Stats()
			if wst.Interned != st.Interned || wst.Expanded != st.Expanded || wst.Reused != 0 {
				t.Fatalf("imported stats %+v, want interned/expanded %d/%d and no reuse", wst, st.Interned, st.Expanded)
			}

			for i, opts := range optsList {
				r, err := warm.Check(opts)
				if err != nil {
					t.Fatal(err)
				}
				if got := observablesOf(r); !reflect.DeepEqual(got, want[i]) {
					t.Fatalf("imported-graph walk %d diverged:\n got %+v\nwant %+v", i, got, want[i])
				}
			}
			after := warm.Stats()
			if after.Expanded != st.Expanded {
				t.Fatalf("walking the imported graph expanded %d new nodes",
					after.Expanded-st.Expanded)
			}
			if after.Interned != st.Interned {
				t.Fatalf("walking the imported graph interned %d new nodes",
					after.Interned-st.Interned)
			}

			if again := warm.Export(); !reflect.DeepEqual(again, snap) {
				t.Fatal("export -> import -> export is not byte-identical")
			}
		})
	}
}

// TestGraphSnapshotPartial exports before any walk (empty) and after a
// re-import re-expansion: unexpanded imported nodes must expand lazily
// into exactly the nodes the snapshot already names.
func TestGraphSnapshotPartial(t *testing.T) {
	pr, err := registry.ParseProtocol("cas-wf:2")
	if err != nil {
		t.Fatal(err)
	}
	inputs := []int{0, 1}
	g, err := model.NewGraph(pr, inputs)
	if err != nil {
		t.Fatal(err)
	}
	empty := g.Export()
	if len(empty.Nodes) != 0 {
		t.Fatalf("empty graph exported %d nodes", len(empty.Nodes))
	}
	g2, err := model.NewGraph(pr, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.ImportSnapshot(empty); err != nil {
		t.Fatalf("importing an empty snapshot: %v", err)
	}

	opts := model.CheckOpts{Inputs: inputs, CrashQuota: []int{1, 1}}
	want, err := g.Check(opts)
	if err != nil {
		t.Fatal(err)
	}
	snap := g.Export()
	// Mark the tail of the snapshot unexpanded: a store that lost its
	// final pages serves exactly this shape.
	for i := len(snap.Nodes) / 2; i < len(snap.Nodes); i++ {
		nd := &snap.Nodes[i]
		nd.Done = false
		for p := range nd.StepSucc {
			nd.StepSucc[p] = -1
			nd.CrashSucc[p] = -1
		}
	}
	partial, err := model.NewGraph(pr, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := partial.ImportSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	before := partial.Stats()
	if before.Expanded >= g.Stats().Expanded {
		t.Fatalf("partial import should carry fewer expansions: %+v", before)
	}
	got, err := partial.Check(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(observablesOf(got), observablesOf(want)) {
		t.Fatal("partial warm-load walk diverged from the fresh expansion")
	}
	if after := partial.Stats(); after.Interned != g.Stats().Interned {
		t.Fatalf("partial re-expansion interned %d nodes, fresh graph has %d",
			after.Interned, g.Stats().Interned)
	}
}

// TestGraphSnapshotImportErrors exercises the validation surface: every
// corrupted or mismatched snapshot must be rejected whole, and a
// non-empty graph must refuse imports.
func TestGraphSnapshotImportErrors(t *testing.T) {
	pr, err := registry.ParseProtocol("cas-wf:2")
	if err != nil {
		t.Fatal(err)
	}
	inputs := []int{0, 1}
	g, err := model.NewGraph(pr, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Check(model.CheckOpts{Inputs: inputs}); err != nil {
		t.Fatal(err)
	}
	snap := g.Export()

	fresh := func() *model.Graph {
		ng, err := model.NewGraph(pr, inputs)
		if err != nil {
			t.Fatal(err)
		}
		return ng
	}
	mutate := func(name string, fn func(s *model.GraphSnapshot)) {
		// Deep-copy through a round trip of the value so mutations never
		// leak between subtests.
		cp := *snap
		cp.Inputs = append([]int(nil), snap.Inputs...)
		cp.States = append([]string(nil), snap.States...)
		cp.Nodes = make([]model.SnapshotNode, len(snap.Nodes))
		for i, nd := range snap.Nodes {
			c := nd
			c.States = append([]uint32(nil), nd.States...)
			c.Vals = append([]int32(nil), nd.Vals...)
			c.Outs = append([]int8(nil), nd.Outs...)
			c.Decided = append([]int8(nil), nd.Decided...)
			c.StepSucc = append([]int32(nil), nd.StepSucc...)
			c.CrashSucc = append([]int32(nil), nd.CrashSucc...)
			cp.Nodes[i] = c
		}
		fn(&cp)
		if err := fresh().ImportSnapshot(&cp); err == nil {
			t.Errorf("%s: corrupted snapshot imported without error", name)
		}
	}

	mutate("flipped fingerprint", func(s *model.GraphSnapshot) { s.Nodes[0].FPHi ^= 1 })
	mutate("state out of dictionary", func(s *model.GraphSnapshot) {
		s.Nodes[0].States[0] = uint32(len(s.States)) + 7
	})
	mutate("object value out of range", func(s *model.GraphSnapshot) { s.Nodes[0].Vals[0] = 99 })
	mutate("successor out of range", func(s *model.GraphSnapshot) {
		for i := range s.Nodes {
			if !s.Nodes[i].Done {
				continue
			}
			for p := range s.Nodes[i].StepSucc {
				if s.Nodes[i].StepSucc[p] >= 0 {
					s.Nodes[i].StepSucc[p] = int32(len(s.Nodes)) + 1
					return
				}
			}
		}
		t.Fatal("no done node with a step successor")
	})
	mutate("duplicate node", func(s *model.GraphSnapshot) {
		nd := s.Nodes[0]
		nd.Done = false
		nd.StepSucc = append([]int32(nil), nd.StepSucc...)
		nd.CrashSucc = append([]int32(nil), nd.CrashSucc...)
		for p := range nd.StepSucc {
			nd.StepSucc[p] = -1
			nd.CrashSucc[p] = -1
		}
		s.Nodes = append(s.Nodes, nd)
	})
	mutate("wrong inputs", func(s *model.GraphSnapshot) { s.Inputs[0], s.Inputs[1] = 1, 0 })
	mutate("wrong shape", func(s *model.GraphSnapshot) { s.Procs++ })

	// A graph that already interned nodes refuses imports.
	busy := fresh()
	if _, err := busy.Check(model.CheckOpts{Inputs: inputs}); err != nil {
		t.Fatal(err)
	}
	if err := busy.ImportSnapshot(snap); err == nil {
		t.Fatal("import into a non-empty graph should fail")
	}
}
