package model_test

import (
	"testing"

	"repro/internal/model"
	"repro/internal/proto"
	"repro/internal/schedule"
	"repro/internal/spec"
)

// TestMaxNodesTruncates: a tiny node budget must truncate and mark the
// result not-OK without reporting spurious violations as facts.
func TestMaxNodesTruncates(t *testing.T) {
	pr := proto.NewCASRecoverable(3)
	res, err := model.Check(pr, model.CheckOpts{
		Inputs:     []int{0, 1, 0},
		CrashQuota: []int{2, 2, 2},
		MaxNodes:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("expected truncation")
	}
	if res.OK() {
		t.Error("truncated result must not be OK")
	}
	if _, err := model.FindCritical(res); err == nil {
		t.Error("FindCritical on truncated exploration must fail")
	}
}

// TestStartTraceExploresFromMidExecution: exploration rooted mid-run must
// see only the suffix behaviour.
func TestStartTraceExploresFromMidExecution(t *testing.T) {
	pr := proto.NewCASWaitFree(2)
	// After p0's step the protocol is decided for 0-univalence.
	start, _ := schedule.Parse("p0")
	res, err := model.Check(pr, model.CheckOpts{
		Inputs:     []int{0, 1},
		StartTrace: start,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Valence(res.InitNode()); v != model.Valence0 {
		t.Errorf("valence from mid-execution root = %d, want 0-univalent", v)
	}
	// Compare against a full exploration's node at the same schedule.
	full, err := model.Check(pr, model.CheckOpts{Inputs: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	nd := full.Node(start)
	if nd == nil {
		t.Fatal("full exploration lost the p0 node")
	}
	if !model.NodeConfig(nd).Equal(model.NodeConfig(res.InitNode())) {
		t.Error("StartTrace root differs from the full exploration's node")
	}
}

// TestStartTraceWithCrashGetsFreshQuota: crashes inside StartTrace must
// not consume the exploration's quota.
func TestStartTraceWithCrashGetsFreshQuota(t *testing.T) {
	pr := proto.NewTnnRecoverable(3, 2, 2)
	start, _ := schedule.Parse("p1 c1")
	res, err := model.Check(pr, model.CheckOpts{
		Inputs:     []int{0, 1},
		CrashQuota: []int{0, 1},
		StartTrace: start,
	})
	if err != nil {
		t.Fatal(err)
	}
	// p1 must still be crashable once: find a node where p1 has taken a
	// step and check a crash successor exists.
	after, _ := schedule.Parse("p1 c1")
	if res.Node(after) == nil {
		t.Error("crash within quota not explored after StartTrace crash")
	}
}

// TestReachableDecisions: decision reachability from the initial node of
// a mixed-input protocol includes both values.
func TestReachableDecisions(t *testing.T) {
	pr := proto.NewCASWaitFree(2)
	res, err := model.Check(pr, model.CheckOpts{Inputs: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	ds := res.ReachableDecisions(res.InitNode())
	if !ds[0] || !ds[1] {
		t.Errorf("ReachableDecisions = %v, want both values", ds)
	}
}

// TestValidateRejectsBrokenProtocols covers protocol validation.
func TestValidateRejectsBrokenProtocols(t *testing.T) {
	if err := model.Validate(&brokenProto{}); err == nil {
		t.Error("broken protocol accepted")
	}
}

type brokenProto struct{}

func (b *brokenProto) Name() string                { return "broken" }
func (b *brokenProto) Procs() int                  { return 0 } // invalid
func (b *brokenProto) Objects() []model.ObjectSpec { return nil }
func (b *brokenProto) Init(p, input int) string    { return "" }
func (b *brokenProto) Poised(p int, state string) model.Action {
	return model.Decide(0)
}
func (b *brokenProto) Next(p int, state string, resp spec.Response) string { return "" }
