package model

import (
	"fmt"

	"repro/internal/spec"
)

// ObjectSpec declares one shared object used by a protocol: its type and
// initial value. Objects model non-volatile memory: their values survive
// crashes.
type ObjectSpec struct {
	Type *spec.FiniteType
	Init spec.Value
}

// Action is what a process is poised to do in a local state: either apply
// an operation to an object, or it has decided (it only takes no-op steps).
type Action struct {
	// Decided marks an output state; Decision is the output value.
	Decided  bool
	Decision int
	// Obj and Op identify the pending operation when not decided.
	Obj int
	Op  spec.Op
}

// Decide returns a decided Action.
func Decide(v int) Action { return Action{Decided: true, Decision: v} }

// Apply returns an Action applying op to object obj.
func Apply(obj int, op spec.Op) Action { return Action{Obj: obj, Op: op} }

// Protocol is a deterministic consensus protocol for a fixed number of
// processes over a fixed set of shared objects. Local states are opaque
// strings; the empty string is reserved and must not be used as a state.
//
// The crash-recovery semantics of Section 2 are implemented by the
// checker, not the protocol: a crash of process p resets p's local state
// to Init(p, input) while all objects keep their values.
type Protocol interface {
	// Name identifies the protocol in reports.
	Name() string
	// Procs returns the number of processes.
	Procs() int
	// Objects returns the shared objects with their initial values.
	Objects() []ObjectSpec
	// Init returns the initial local state of process p with the given
	// consensus input (0 or 1).
	Init(p, input int) string
	// Poised returns what process p does next in the given local state.
	Poised(p int, state string) Action
	// Next returns p's local state after its pending operation returns
	// resp. It is never called on decided states.
	Next(p int, state string, resp spec.Response) string
}

// Validate performs basic structural checks on a protocol: process count,
// object specs in range, initial states defined.
func Validate(pr Protocol) error {
	if pr.Procs() < 1 {
		return fmt.Errorf("protocol %s: needs at least 1 process", pr.Name())
	}
	objs := pr.Objects()
	if len(objs) == 0 {
		return fmt.Errorf("protocol %s: needs at least 1 object", pr.Name())
	}
	for i, o := range objs {
		if o.Type == nil {
			return fmt.Errorf("protocol %s: object %d has nil type", pr.Name(), i)
		}
		if int(o.Init) < 0 || int(o.Init) >= o.Type.NumValues() {
			return fmt.Errorf("protocol %s: object %d initial value out of range", pr.Name(), i)
		}
	}
	for p := 0; p < pr.Procs(); p++ {
		for input := 0; input <= 1; input++ {
			st := pr.Init(p, input)
			if st == "" {
				return fmt.Errorf("protocol %s: empty initial state for p%d input %d",
					pr.Name(), p, input)
			}
			a := pr.Poised(p, st)
			if !a.Decided {
				if a.Obj < 0 || a.Obj >= len(objs) {
					return fmt.Errorf("protocol %s: p%d poised on object %d out of range",
						pr.Name(), p, a.Obj)
				}
				if int(a.Op) < 0 || int(a.Op) >= objs[a.Obj].Type.NumOps() {
					return fmt.Errorf("protocol %s: p%d poised on op %d out of range",
						pr.Name(), p, a.Op)
				}
			}
		}
	}
	return nil
}
